// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§VI). Each benchmark regenerates its artifact through
// the shared drivers in internal/expt and logs the resulting rows, so
//
//	go test -bench=. -benchmem
//
// reproduces every experiment at CI scale. Paper-scale runs use
// cmd/dynnbench with -train/-test/-neurons flags; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package dynnoffload

import (
	"strings"
	"sync"
	"testing"

	"dynnoffload/internal/core"
	"dynnoffload/internal/expt"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/serve"
)

// benchOpts are deliberately small: the benchmarks exist to regenerate every
// artifact end-to-end, not to reach paper-scale sample counts.
func benchOpts() expt.Options {
	o := expt.DefaultOptions()
	o.TrainSamples = 300
	o.TestSamples = 100
	o.Epochs = 8
	o.Neurons = 96
	return o
}

var (
	wbOnce sync.Once
	wb     *expt.Workbench
	wbErr  error
)

// workbench builds the shared fixture (model contexts + trained pilot) once
// across all benchmarks.
func workbench(b *testing.B) *expt.Workbench {
	b.Helper()
	wbOnce.Do(func() {
		wb, wbErr = expt.NewWorkbench(benchOpts())
	})
	if wbErr != nil {
		b.Fatal(wbErr)
	}
	return wb
}

// logTable renders a driver's output into the benchmark log.
func logTable(b *testing.B, t *expt.Table) {
	b.Helper()
	var sb strings.Builder
	t.Fprint(&sb)
	b.Log("\n" + sb.String())
}

func BenchmarkTableI(b *testing.B) {
	var t *expt.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = expt.TableI(2000, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

func BenchmarkTableII(b *testing.B) {
	var t *expt.Table
	for i := 0; i < b.N; i++ {
		t = expt.TableII()
	}
	logTable(b, t)
}

func BenchmarkHeuristicStudy(b *testing.B) {
	var t *expt.Table
	for i := 0; i < b.N; i++ {
		t = expt.HeuristicStudy(1000, 42)
	}
	logTable(b, t)
}

func BenchmarkLargestModel(b *testing.B) {
	var t *expt.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = expt.LargestModel(256, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

func BenchmarkTableIII(b *testing.B) {
	var t *expt.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = expt.TableIII(24, 1024, 256)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

func BenchmarkFig7(b *testing.B) {
	w := workbench(b)
	b.ResetTimer()
	var t *expt.Table
	for i := 0; i < b.N; i++ {
		t = expt.Fig7(w)
	}
	logTable(b, t)
}

func BenchmarkFig8(b *testing.B) {
	w := workbench(b)
	b.ResetTimer()
	var t *expt.Table
	for i := 0; i < b.N; i++ {
		t = expt.Fig8(w)
	}
	logTable(b, t)
}

func BenchmarkFig9(b *testing.B) {
	w := workbench(b)
	b.ResetTimer()
	var t *expt.Table
	for i := 0; i < b.N; i++ {
		t = expt.Fig9(w)
	}
	logTable(b, t)
}

func BenchmarkFig10(b *testing.B) {
	w := workbench(b)
	b.ResetTimer()
	var t *expt.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = expt.Fig10(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

func BenchmarkTableIV(b *testing.B) {
	opts := benchOpts()
	opts.TrainSamples = 250
	opts.TestSamples = 80
	var t *expt.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = expt.TableIV(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

func BenchmarkFig11(b *testing.B) {
	opts := benchOpts()
	opts.TrainSamples = 250
	opts.TestSamples = 80
	var t *expt.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = expt.Fig11(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

func BenchmarkFig12(b *testing.B) {
	w := workbench(b)
	b.ResetTimer()
	var t *expt.Table
	for i := 0; i < b.N; i++ {
		t = expt.Fig12(w)
	}
	logTable(b, t)
}

func BenchmarkMispredictions(b *testing.B) {
	w := workbench(b)
	b.ResetTimer()
	var t *expt.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = expt.Mispredictions(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

func BenchmarkMispredHandling(b *testing.B) {
	w := workbench(b)
	b.ResetTimer()
	var t *expt.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = expt.MispredHandling(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

func BenchmarkOverhead(b *testing.B) {
	w := workbench(b)
	b.ResetTimer()
	var t *expt.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = expt.Overhead(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// --- Ablation benches (DESIGN.md §5.6): micro-costs of the runtime pieces ---

func BenchmarkPilotInference(b *testing.B) {
	w := workbench(b)
	mb := w.Bench("Tree-LSTM")
	ex := mb.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Pilot.Resolve(ex); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSentinelPartition(b *testing.B) {
	w := workbench(b)
	mb := w.Bench("var-BERT")
	info := mb.Ctx.Paths[0]
	budget := mb.Ctx.Budget
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info.Analysis.Partition(budget)
	}
}

func BenchmarkGraphResolve(b *testing.B) {
	w := workbench(b)
	mb := w.Bench("var-BERT")
	static := mb.Model.Static()
	decisions := make([][]int, 0, len(mb.Test))
	for _, ex := range mb.Test {
		decisions = append(decisions, mb.Model.Decide(ex.Sample))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Resolve(static, decisions[i%len(decisions)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOffloadIteration(b *testing.B) {
	w := workbench(b)
	mb := w.Bench("var-BERT")
	eng := w.Engine(mb)
	info := mb.Ctx.Paths[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.SimulatePartition(info.Analysis, info.Blocks)
	}
}

// BenchmarkPlanCacheMiss pays plan compilation on every iteration: each run
// hits a cold engine, so the measured op is the liveness walks plus the first
// simulation — what a sweep grid point costs per path without the shared
// cache.
func BenchmarkPlanCacheMiss(b *testing.B) {
	w := workbench(b)
	mb := w.Bench("var-BERT")
	info := mb.Ctx.Paths[0]
	engines := make([]*core.Engine, b.N)
	for i := range engines {
		engines[i] = core.NewEngine(core.DefaultConfig(mb.Platform), w.Pilot)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engines[i].SimulatePartition(info.Analysis, info.Blocks)
	}
}

// BenchmarkPlanCacheHit times the shared L2 lookup by the engines' own cache
// keys on a warmed cache — the per-sample cost of skipping compilation.
func BenchmarkPlanCacheHit(b *testing.B) {
	w := workbench(b)
	mb := w.Bench("var-BERT")
	eng := w.Engine(mb)
	if _, err := eng.RunBatch(mb.Test, core.EpochOptions{}); err != nil {
		b.Fatal(err)
	}
	capacity := mb.Platform.GPU.MemBytes
	keys := make([]string, 0, len(mb.Test))
	for _, ex := range mb.Test {
		if k := core.PlanCacheKey(ex.Ctx.PathByKey(ex.TruthKey), capacity); k != "" {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		b.Fatal("no plan-cache keys to probe")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := w.Plans.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("plan cache cold after warmup")
		}
	}
}

// BenchmarkServeStep measures the mean cost per served request through the
// multi-tenant front end (admission, EDF batching, reservation, dispatch)
// under a saturating single-tenant stream; one op is one completed request.
func BenchmarkServeStep(b *testing.B) {
	w := workbench(b)
	mb := w.Bench("var-BERT")
	cfg := core.DefaultConfig(mb.Platform)
	cfg.Plans = w.Plans
	eng := core.NewEngine(cfg, w.Pilot)
	b.ResetTimer()
	rep, err := serve.Run(&serve.Backend{Engine: eng, Pool: mb.Test}, serve.Config{
		Tenants: []serve.TenantConfig{{
			Name: "bench", Requests: b.N, RatePerSec: 1e6,
			Seed: benchOpts().Seed + 7, MaxQueue: b.N,
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if int(rep.Total.Completed) != b.N {
		b.Fatalf("completed %d of %d requests", rep.Total.Completed, b.N)
	}
}
