package dynnoffload

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/distributed"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/serve"
)

// Re-exported cluster runtime types. Topology wires the simulated
// interconnect; ClusterEpochReport is a data-parallel training epoch's
// outcome; ClusterConfig/Placement/ClusterReport cover cluster serving, so
// cmd/* and downstream users import only this package.
type (
	Topology           = distributed.Topology
	ClusterEpochReport = distributed.EpochReport
	LinkSpec           = gpusim.LinkSpec
	LinkStats          = gpusim.LinkStats

	ClusterConfig = serve.ClusterConfig
	Placement     = serve.Placement
	ReplicaStats  = serve.ReplicaStats
	ScaleEvent    = serve.ScaleEvent
	ClusterReport = serve.ClusterReport
)

// Re-exported span tracing types: pass a Tracer built with
// NewTracer(WithAbsoluteTime()) to WithClusterTracer and write the collected
// spans with WriteChromeTrace.
type (
	Tracer       = obsv.Tracer
	TracerOption = obsv.TracerOption
	Span         = obsv.Span
	ChromeMeta   = obsv.ChromeMeta
)

var (
	NewTracer        = obsv.NewTracer
	WithAbsoluteTime = obsv.WithAbsoluteTime
	WriteChromeTrace = obsv.WriteChromeTrace
)

var (
	// DefaultTopology derives cluster wiring from a platform: its inter-GPU
	// link inside a node, its PCIe link across nodes.
	DefaultTopology = distributed.DefaultTopology
	// RingAllReduceNS is the closed-form ring all-reduce oracle the DES
	// schedule is validated against.
	RingAllReduceNS = distributed.RingAllReduceNS
	// ErrBadCluster covers invalid cluster configurations.
	ErrBadCluster = distributed.ErrBadCluster
)

// clusterSettings is the resolved configuration a Cluster runs under;
// NewCluster and System.Cluster assemble it from functional options.
type clusterSettings struct {
	gpus      int
	topology  Topology
	topoSet   bool
	gradBytes int64
	gradSet   bool
	tracer    *Tracer
	onDemand  bool
	online    OnlineConfig
	sysOpts   []Option
}

// ClusterOption mutates the cluster settings during NewCluster.
type ClusterOption func(*clusterSettings)

// WithGPUs sets the data-parallel width: one simulated GPU (one engine, one
// allocator, its own streams) per replica. Default 1.
func WithGPUs(n int) ClusterOption { return func(c *clusterSettings) { c.gpus = n } }

// WithTopology overrides the interconnect wiring (default: DefaultTopology
// of the system's platform).
func WithTopology(t Topology) ClusterOption {
	return func(c *clusterSettings) { c.topology = t; c.topoSet = true }
}

// WithGradVolume overrides the gradient bytes ring-all-reduced per training
// step (default: the model's total gradient footprint).
func WithGradVolume(bytes int64) ClusterOption {
	return func(c *clusterSettings) { c.gradBytes = bytes; c.gradSet = true }
}

// WithClusterTracer collects per-GPU engine spans plus allreduce/offload link
// spans on the shared cluster clock. Build the tracer with
// NewTracer(WithAbsoluteTime()) — dispatches on different GPUs genuinely
// overlap in virtual time.
func WithClusterTracer(tr *Tracer) ClusterOption {
	return func(c *clusterSettings) { c.tracer = tr }
}

// WithOnDemandServing makes Serve's replica engines run every request fully
// on demand instead of memoizing repeated samples — the always-on-demand
// baseline the serving evaluation compares against.
func WithOnDemandServing() ClusterOption {
	return func(c *clusterSettings) { c.onDemand = true }
}

// WithOnlineLearning turns on the serve→pilot feedback loop for this
// cluster's Serve runs: completed requests feed a bounded replay memory and
// the shared pilot retrains in-loop (per-tenant adapters when
// cfg.PerTenant). A ClusterConfig whose Online field is already enabled
// takes precedence over this default.
func WithOnlineLearning(cfg OnlineConfig) ClusterOption {
	cfg.Enabled = true
	return func(c *clusterSettings) { c.online = cfg }
}

// WithSystemOptions forwards options to the underlying NewSystem call
// (platform, pilot config, workers, fault injection). Only valid with
// NewCluster; System.Cluster already has its system.
func WithSystemOptions(opts ...Option) ClusterOption {
	return func(c *clusterSettings) { c.sysOpts = append(c.sysOpts, opts...) }
}

// Cluster couples a System with the cluster DES runtime: N engines on a
// shared virtual clock contending for a modeled interconnect, for
// data-parallel training epochs and replicated serving.
type Cluster struct {
	sys      *System
	gpus     int
	topology Topology
	grad     int64
	tracer   *Tracer
	onDemand bool
	online   OnlineConfig
}

// NewCluster builds a cluster over a fresh System for the model:
//
//	c, err := dynnoffload.NewCluster(model,
//		dynnoffload.WithGPUs(4),
//		dynnoffload.WithSystemOptions(dynnoffload.WithPlatform(dynnoffload.A100Platform())),
//	)
//
// Train the pilot once through c.TrainPilot (or c.System()), then TrainEpoch
// and Serve share it across every simulated GPU.
func NewCluster(model Model, opts ...ClusterOption) (*Cluster, error) {
	cs := clusterSettings{gpus: 1}
	for _, o := range opts {
		o(&cs)
	}
	sys, err := NewSystem(model, cs.sysOpts...)
	if err != nil {
		return nil, err
	}
	return sys.cluster(cs)
}

// Cluster builds a cluster runtime over this system (its platform, pilot,
// worker pool, and fault config). WithSystemOptions is rejected here — the
// system is already built.
func (s *System) Cluster(opts ...ClusterOption) (*Cluster, error) {
	cs := clusterSettings{gpus: 1}
	for _, o := range opts {
		o(&cs)
	}
	if len(cs.sysOpts) > 0 {
		return nil, fmt.Errorf("%w: WithSystemOptions applies to NewCluster, not System.Cluster", ErrBadCluster)
	}
	return s.cluster(cs)
}

func (s *System) cluster(cs clusterSettings) (*Cluster, error) {
	if cs.gpus < 1 {
		return nil, fmt.Errorf("%w: GPUs = %d", ErrBadCluster, cs.gpus)
	}
	if !cs.topoSet {
		cs.topology = DefaultTopology(s.cfg.Platform)
	}
	if !cs.gradSet {
		for _, ws := range s.cfg.Model.WeightStates() {
			cs.gradBytes += ws.Grad.Bytes()
		}
	}
	c := &Cluster{
		sys: s, gpus: cs.gpus, topology: cs.topology, grad: cs.gradBytes,
		tracer: cs.tracer, onDemand: cs.onDemand, online: cs.online,
	}
	// Validate the wiring now, not on first use.
	if _, err := distributed.New(c.trainConfig(), c.engines(false)); err != nil {
		return nil, err
	}
	return c, nil
}

// System exposes the underlying single-device system (pilot training,
// tracing, runner registry).
func (c *Cluster) System() *System { return c.sys }

// GPUs reports the cluster width.
func (c *Cluster) GPUs() int { return c.gpus }

// TrainPilot trains the shared pilot model; every simulated GPU serves from
// it afterwards.
func (c *Cluster) TrainPilot(samples []*dynn.Sample) (TrainResult, error) {
	return c.sys.TrainPilot(samples)
}

func (c *Cluster) trainConfig() distributed.Config {
	return distributed.Config{
		GPUs: c.gpus, Topology: c.topology, GradBytes: c.grad,
		Workers: c.sys.cfg.Workers, Tracer: c.tracer,
	}
}

// engines builds one fresh engine per GPU sharing the system's pilot: each
// gets its own allocator, streams, fault injector, and mis-prediction cache,
// so runs replay bit-identically. Serving engines memoize repeated requests
// (unless WithOnDemandServing); training engines never do.
func (c *Cluster) engines(serving bool) []*core.Engine {
	engines := make([]*core.Engine, c.gpus)
	for i := range engines {
		ecfg := c.sys.engineConfig()
		if serving {
			ecfg.ForceOnDemand = c.onDemand
			ecfg.MemoizeSamples = !c.onDemand
		}
		engines[i] = core.NewEngine(ecfg, c.sys.pilot)
	}
	return engines
}

// TrainEpoch runs one data-parallel epoch: samples shard round-robin across
// the GPUs, each GPU's offload traffic books onto its node's host/PCIe link,
// and gradients synchronize through a scheduled ring all-reduce contending
// for the same wires. Identical inputs replay bit-identical simulated
// aggregates at any worker count.
func (c *Cluster) TrainEpoch(samples []*dynn.Sample) (*ClusterEpochReport, error) {
	if c.sys.pilot == nil {
		return nil, fmt.Errorf("dynnoffload: %w (call TrainPilot)", ErrPilotNotTrained)
	}
	exs, err := c.sys.Examples(samples)
	if err != nil {
		return nil, err
	}
	dc, err := distributed.New(c.trainConfig(), c.engines(false))
	if err != nil {
		return nil, err
	}
	return dc.TrainEpoch(exs)
}

// Serve runs the multi-tenant serving front-end across the cluster's GPU
// replicas: one shared admission queue, home-affinity placement with
// least-loaded spill, per-replica memory ledgers, and (when configured)
// elastic replica scaling on sustained queue-delay pressure. Serving engines
// memoize repeated requests, mirroring System.Serve.
func (c *Cluster) Serve(pool []*dynn.Sample, cfg ClusterConfig) (*ClusterReport, error) {
	if c.sys.pilot == nil {
		return nil, fmt.Errorf("dynnoffload: %w (call TrainPilot)", ErrPilotNotTrained)
	}
	if cfg.Replicas != 0 && cfg.Replicas != c.gpus {
		return nil, fmt.Errorf("%w: %d replicas on a %d-GPU cluster", ErrBadCluster, cfg.Replicas, c.gpus)
	}
	exs, err := c.sys.Examples(pool)
	if err != nil {
		return nil, err
	}
	if cfg.Workers == 0 {
		cfg.Workers = c.sys.cfg.Workers
	}
	if cfg.Tracer == nil {
		cfg.Tracer = c.tracer
	}
	if !cfg.Online.Enabled {
		cfg.Online = c.online
	}
	return serve.RunCluster(&serve.ClusterBackend{Engines: c.engines(true), Pool: exs}, cfg)
}
