// Package nn implements the small neural-network machinery the pilot model
// is built from: fully-connected layers, activations (the paper's pilot uses
// LeakyReLU), SGD training, and a genetic hyper-parameter tuner (§V). It is
// deliberately minimal — the pilot model has ~3k parameters — but it is a
// real, trainable network: Table IV and Fig 11 are measured from it.
package nn

import (
	"fmt"
	"math"

	"dynnoffload/internal/mathx"
)

// Activation selects the nonlinearity applied after each hidden layer.
type Activation int

const (
	LeakyReLU Activation = iota
	ReLU
	Tanh
	Sigmoid
	Identity
)

func (a Activation) String() string {
	switch a {
	case LeakyReLU:
		return "leakyrelu"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	case Identity:
		return "identity"
	}
	return fmt.Sprintf("activation(%d)", int(a))
}

const leakySlope = 0.01

func (a Activation) apply(x float64) float64 {
	switch a {
	case LeakyReLU:
		if x < 0 {
			return leakySlope * x
		}
		return x
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Identity:
		return x
	}
	panic("nn: unknown activation") //dynnlint:ignore panicfree unknown activation is unreachable for the fixed enum; guards future edits
}

// deriv is the derivative expressed in terms of the activation output y.
func (a Activation) deriv(y float64) float64 {
	switch a {
	case LeakyReLU:
		if y < 0 {
			return leakySlope
		}
		return 1
	case ReLU:
		if y <= 0 {
			return 0
		}
		return 1
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	case Identity:
		return 1
	}
	panic("nn: unknown activation") //dynnlint:ignore panicfree unknown activation is unreachable for the fixed enum; guards future edits
}

// Layer is one fully-connected layer: out = act(W·in + b).
type Layer struct {
	In, Out int
	W       []float64 // Out×In row-major
	B       []float64 // Out
	Act     Activation

	// SGD momentum buffers, allocated lazily on first training step.
	vW, vB []float64
}

// NewLayer creates a layer with Kaiming-style initialization from rng.
func NewLayer(in, out int, act Activation, rng *mathx.RNG) *Layer {
	l := &Layer{In: in, Out: out, Act: act,
		W: make([]float64, in*out), B: make([]float64, out)}
	sigma := math.Sqrt(2 / float64(in))
	rng.NormVec(l.W, sigma)
	return l
}

// Params returns the number of trainable parameters.
func (l *Layer) Params() int { return len(l.W) + len(l.B) }

// Forward computes the layer output into out (length Out).
func (l *Layer) Forward(in, out []float64) {
	mathx.MatVec(l.W, l.Out, l.In, in, out)
	for i := range out {
		out[i] = l.Act.apply(out[i] + l.B[i])
	}
}

// MLP is a stack of fully-connected layers. Hidden layers share one
// activation; the final layer uses Identity so the network can regress
// unbounded block descriptors.
type MLP struct {
	Layers []*Layer
	// scratch activations, one slice per layer output plus the input.
	acts   [][]float64
	deltas [][]float64
}

// NewMLP builds an MLP with the given layer sizes (sizes[0] is the input
// width). All hidden layers use act; the output layer is linear.
func NewMLP(sizes []int, act Activation, rng *mathx.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes") //dynnlint:ignore panicfree malformed layer spec is a caller bug at model-construction time
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		a := act
		if i == len(sizes)-2 {
			a = Identity
		}
		m.Layers = append(m.Layers, NewLayer(sizes[i], sizes[i+1], a, rng))
	}
	m.initScratch()
	return m
}

func (m *MLP) initScratch() {
	m.acts = make([][]float64, len(m.Layers)+1)
	m.deltas = make([][]float64, len(m.Layers))
	m.acts[0] = make([]float64, m.Layers[0].In)
	for i, l := range m.Layers {
		m.acts[i+1] = make([]float64, l.Out)
		m.deltas[i] = make([]float64, l.Out)
	}
}

// InputSize returns the expected input width.
func (m *MLP) InputSize() int { return m.Layers[0].In }

// OutputSize returns the output width.
func (m *MLP) OutputSize() int { return m.Layers[len(m.Layers)-1].Out }

// Params returns the total number of trainable parameters.
func (m *MLP) Params() int {
	n := 0
	for _, l := range m.Layers {
		n += l.Params()
	}
	return n
}

// Forward runs inference, returning an internal slice valid until the next
// Forward/Train call on this MLP. Copy it if you need to keep it.
func (m *MLP) Forward(in []float64) []float64 {
	if len(in) != m.InputSize() {
		panic(fmt.Sprintf("nn: Forward input width %d, want %d", len(in), m.InputSize())) //dynnlint:ignore panicfree width mismatch is a caller bug; hot-path kernel fails fast like stdlib
	}
	copy(m.acts[0], in)
	for i, l := range m.Layers {
		l.Forward(m.acts[i], m.acts[i+1])
	}
	return m.acts[len(m.acts)-1]
}

// Infer runs inference like Forward but allocates fresh activation buffers
// instead of using the MLP's shared scratch, so any number of Infer calls may
// run concurrently on one MLP (the weights are read-only here). Training
// (TrainStep) must not run concurrently with Infer.
func (m *MLP) Infer(in []float64) []float64 {
	if len(in) != m.InputSize() {
		panic(fmt.Sprintf("nn: Infer input width %d, want %d", len(in), m.InputSize())) //dynnlint:ignore panicfree width mismatch is a caller bug; hot-path kernel fails fast like stdlib
	}
	cur := in
	for _, l := range m.Layers {
		out := make([]float64, l.Out)
		l.Forward(cur, out)
		cur = out
	}
	return cur
}

// gradClip bounds the output-delta norm per training step, preventing
// divergence at large hidden widths.
const gradClip = 4.0

// TrainStep performs one SGD-with-momentum step on (in, target) with MSE
// loss and returns the pre-update loss.
func (m *MLP) TrainStep(in, target []float64, lr, momentum float64) float64 {
	return m.TrainStepFrom(in, target, lr, momentum, 0)
}

// TrainStepFrom performs one SGD-with-momentum step like TrainStep but
// updates only layers with index >= from, leaving the earlier layers frozen.
// The full forward pass still runs (frozen layers shape the activations);
// backpropagation stops at layer from, since no earlier gradient is needed.
// from = 0 is a full TrainStep; from = len(Layers)-1 fine-tunes the head
// only — the online per-tenant adapter path.
func (m *MLP) TrainStepFrom(in, target []float64, lr, momentum float64, from int) float64 {
	out := m.Forward(in)
	if len(target) != len(out) {
		panic("nn: TrainStep target width mismatch") //dynnlint:ignore panicfree width mismatch is a caller bug; hot-path kernel fails fast like stdlib
	}
	if from < 0 || from >= len(m.Layers) {
		panic("nn: TrainStepFrom layer index out of range") //dynnlint:ignore panicfree bad freeze point is a caller bug; fail fast like the width checks
	}
	last := len(m.Layers) - 1
	var loss float64
	for i, o := range out {
		d := o - target[i]
		loss += d * d
		m.deltas[last][i] = 2 * d * m.Layers[last].Act.deriv(o)
	}
	loss /= float64(len(out))
	if nrm := mathx.L2(m.deltas[last]); nrm > gradClip {
		mathx.Scale(gradClip/nrm, m.deltas[last])
	}

	// Backpropagate deltas down to the first unfrozen layer.
	for li := last; li > from; li-- {
		l := m.Layers[li]
		mathx.MatVecT(l.W, l.Out, l.In, m.deltas[li], m.deltas[li-1])
		prev := m.acts[li]
		for i := range m.deltas[li-1] {
			m.deltas[li-1][i] *= m.Layers[li-1].Act.deriv(prev[i])
		}
	}
	// Momentum update on the unfrozen layers.
	for li := from; li < len(m.Layers); li++ {
		l := m.Layers[li]
		if l.vW == nil {
			l.vW = make([]float64, len(l.W))
			l.vB = make([]float64, len(l.B))
		}
		in := m.acts[li]
		if momentum > 0 {
			mathx.Scale(momentum, l.vW)
			mathx.Scale(momentum, l.vB)
			mathx.OuterAxpy(-lr, m.deltas[li], in, l.vW)
			mathx.Axpy(-lr, m.deltas[li], l.vB)
			mathx.Axpy(1, l.vW, l.W)
			mathx.Axpy(1, l.vB, l.B)
		} else {
			mathx.OuterAxpy(-lr, m.deltas[li], in, l.W)
			mathx.Axpy(-lr, m.deltas[li], l.B)
		}
	}
	return loss
}

// Loss returns the MSE of the network on (in, target) without updating.
func (m *MLP) Loss(in, target []float64) float64 {
	out := m.Forward(in)
	var loss float64
	for i, o := range out {
		d := o - target[i]
		loss += d * d
	}
	return loss / float64(len(out))
}

// Clone returns a deep copy (scratch buffers not shared).
func (m *MLP) Clone() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		nl := &Layer{In: l.In, Out: l.Out, Act: l.Act,
			W: append([]float64(nil), l.W...), B: append([]float64(nil), l.B...)}
		c.Layers = append(c.Layers, nl)
	}
	c.initScratch()
	return c
}
