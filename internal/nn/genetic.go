package nn

import (
	"sort"

	"dynnoffload/internal/mathx"
)

// Genome is a hyper-parameter assignment explored by the genetic tuner.
// The paper fine-tunes the pilot model's hyper-parameters with a genetic
// algorithm (§V); we tune hidden width, learning rate, and epoch count.
type Genome struct {
	Hidden int
	LR     float64
	Epochs int
}

// Fitness evaluates a genome; higher is better.
type Fitness func(Genome) float64

// TunerConfig controls the genetic search.
type TunerConfig struct {
	Population  int
	Generations int
	MutateProb  float64
	Seed        uint64

	HiddenChoices []int
	LRChoices     []float64
	EpochChoices  []int
}

// DefaultTunerConfig returns a small search space suitable for the pilot.
func DefaultTunerConfig() TunerConfig {
	return TunerConfig{
		Population:    8,
		Generations:   5,
		MutateProb:    0.25,
		Seed:          7,
		HiddenChoices: []int{128, 256, 512, 1024},
		LRChoices:     []float64{0.003, 0.01, 0.03},
		EpochChoices:  []int{3, 6, 10},
	}
}

type scored struct {
	g Genome
	f float64
}

// Tune runs the genetic search and returns the best genome found with its
// fitness. Fitness evaluations are memoized per distinct genome.
func Tune(cfg TunerConfig, fit Fitness) (Genome, float64) {
	rng := mathx.NewRNG(cfg.Seed)
	random := func() Genome {
		return Genome{
			Hidden: cfg.HiddenChoices[rng.Intn(len(cfg.HiddenChoices))],
			LR:     cfg.LRChoices[rng.Intn(len(cfg.LRChoices))],
			Epochs: cfg.EpochChoices[rng.Intn(len(cfg.EpochChoices))],
		}
	}
	memo := map[Genome]float64{}
	eval := func(g Genome) float64 {
		if f, ok := memo[g]; ok {
			return f
		}
		f := fit(g)
		memo[g] = f
		return f
	}

	pop := make([]scored, cfg.Population)
	for i := range pop {
		g := random()
		pop[i] = scored{g, eval(g)}
	}
	for gen := 0; gen < cfg.Generations; gen++ {
		sort.Slice(pop, func(i, j int) bool { return pop[i].f > pop[j].f })
		elite := pop[:max(2, cfg.Population/4)]
		next := append([]scored(nil), elite...)
		for len(next) < cfg.Population {
			a := elite[rng.Intn(len(elite))].g
			b := elite[rng.Intn(len(elite))].g
			child := crossover(a, b, rng)
			if rng.Float64() < cfg.MutateProb {
				child = mutate(child, cfg, rng)
			}
			next = append(next, scored{child, eval(child)})
		}
		pop = next
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].f > pop[j].f })
	return pop[0].g, pop[0].f
}

func crossover(a, b Genome, rng *mathx.RNG) Genome {
	c := a
	if rng.Intn(2) == 0 {
		c.LR = b.LR
	}
	if rng.Intn(2) == 0 {
		c.Epochs = b.Epochs
	}
	if rng.Intn(2) == 0 {
		c.Hidden = b.Hidden
	}
	return c
}

func mutate(g Genome, cfg TunerConfig, rng *mathx.RNG) Genome {
	switch rng.Intn(3) {
	case 0:
		g.Hidden = cfg.HiddenChoices[rng.Intn(len(cfg.HiddenChoices))]
	case 1:
		g.LR = cfg.LRChoices[rng.Intn(len(cfg.LRChoices))]
	default:
		g.Epochs = cfg.EpochChoices[rng.Intn(len(cfg.EpochChoices))]
	}
	return g
}
