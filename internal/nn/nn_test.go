package nn

import (
	"math"
	"testing"

	"dynnoffload/internal/mathx"
)

func TestActivationValues(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{LeakyReLU, 2, 2},
		{LeakyReLU, -2, -0.02},
		{ReLU, 2, 2},
		{ReLU, -2, 0},
		{Identity, -3.5, -3.5},
		{Tanh, 0, 0},
		{Sigmoid, 0, 0.5},
	}
	for _, c := range cases {
		if got := c.act.apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.act, c.x, got, c.want)
		}
	}
}

// TestActivationDerivNumerical checks deriv() against a finite difference.
func TestActivationDerivNumerical(t *testing.T) {
	const h = 1e-6
	for _, act := range []Activation{LeakyReLU, Tanh, Sigmoid, Identity} {
		for _, x := range []float64{-1.5, -0.2, 0.3, 2.0} {
			y := act.apply(x)
			numeric := (act.apply(x+h) - act.apply(x-h)) / (2 * h)
			analytic := act.deriv(y)
			if math.Abs(numeric-analytic) > 1e-4 {
				t.Errorf("%v deriv at %v: analytic %v vs numeric %v", act, x, analytic, numeric)
			}
		}
	}
}

func TestMLPShapes(t *testing.T) {
	rng := mathx.NewRNG(1)
	m := NewMLP([]int{4, 8, 3}, LeakyReLU, rng)
	if m.InputSize() != 4 || m.OutputSize() != 3 {
		t.Fatalf("sizes: in=%d out=%d", m.InputSize(), m.OutputSize())
	}
	wantParams := 4*8 + 8 + 8*3 + 3
	if m.Params() != wantParams {
		t.Errorf("Params = %d, want %d", m.Params(), wantParams)
	}
	out := m.Forward([]float64{1, 0, -1, 0.5})
	if len(out) != 3 {
		t.Errorf("output width %d", len(out))
	}
}

func TestMLPLearnsLinearMap(t *testing.T) {
	rng := mathx.NewRNG(2)
	m := NewMLP([]int{2, 16, 1}, LeakyReLU, rng)
	// target: y = 2a - b
	var lastLoss float64
	for epoch := 0; epoch < 400; epoch++ {
		lastLoss = 0
		for i := 0; i < 16; i++ {
			a, b := rng.Norm(), rng.Norm()
			lastLoss += m.TrainStep([]float64{a, b}, []float64{2*a - b}, 0.003, 0.9)
		}
	}
	if lastLoss/16 > 0.01 {
		t.Errorf("failed to learn linear map: loss %v", lastLoss/16)
	}
}

func TestMLPLearnsThreshold(t *testing.T) {
	// The pilot's core subtask: a linear decision boundary.
	rng := mathx.NewRNG(3)
	m := NewMLP([]int{3, 16, 1}, LeakyReLU, rng)
	data := make([][4]float64, 300)
	for i := range data {
		x := [3]float64{rng.Norm(), rng.Norm(), rng.Norm()}
		y := 0.0
		if x[0]+0.5*x[1]-x[2] > 0 {
			y = 1
		}
		data[i] = [4]float64{x[0], x[1], x[2], y}
	}
	for epoch := 0; epoch < 150; epoch++ {
		for _, d := range data {
			m.TrainStep(d[:3], d[3:], 0.02, 0.9)
		}
	}
	correct := 0
	for _, d := range data {
		out := m.Forward(d[:3])
		pred := 0.0
		if out[0] > 0.5 {
			pred = 1
		}
		if pred == d[3] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(data)); acc < 0.95 {
		t.Errorf("threshold accuracy %.3f < 0.95", acc)
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	rng := mathx.NewRNG(4)
	m := NewMLP([]int{2, 8, 2}, LeakyReLU, rng)
	in := []float64{0.5, -0.5}
	target := []float64{1, 0}
	first := m.Loss(in, target)
	for i := 0; i < 50; i++ {
		m.TrainStep(in, target, 0.05, 0)
	}
	if last := m.Loss(in, target); last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := mathx.NewRNG(5)
	m := NewMLP([]int{2, 4, 1}, LeakyReLU, rng)
	c := m.Clone()
	before := c.Forward([]float64{1, 1})[0]
	for i := 0; i < 20; i++ {
		m.TrainStep([]float64{1, 1}, []float64{5}, 0.1, 0)
	}
	if after := c.Forward([]float64{1, 1})[0]; after != before {
		t.Error("training the original changed the clone")
	}
}

func TestGradClipPreventsDivergence(t *testing.T) {
	rng := mathx.NewRNG(6)
	m := NewMLP([]int{2, 64, 2}, LeakyReLU, rng)
	for i := 0; i < 200; i++ {
		loss := m.TrainStep([]float64{100, -100}, []float64{1000, -1000}, 0.05, 0.9)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("diverged at step %d", i)
		}
	}
}

func TestGeneticTunerFindsBest(t *testing.T) {
	cfg := DefaultTunerConfig()
	// Fitness peaks at Hidden=512, LR=0.01, Epochs=10.
	fit := func(g Genome) float64 {
		f := 0.0
		if g.Hidden == 512 {
			f += 3
		}
		if g.LR == 0.01 {
			f += 2
		}
		if g.Epochs == 10 {
			f += 1
		}
		return f
	}
	best, score := Tune(cfg, fit)
	if score < 5 {
		t.Errorf("tuner found %+v (score %v), want near-optimal", best, score)
	}
}

func TestNewMLPPanicsOnShortSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMLP([]int{3}, LeakyReLU, mathx.NewRNG(1))
}

func TestTrainStepFromFreezesEarlyLayers(t *testing.T) {
	rng := mathx.NewRNG(6)
	m := NewMLP([]int{3, 8, 8, 2}, LeakyReLU, rng)
	frozenW := append([]float64(nil), m.Layers[0].W...)
	frozenW = append(frozenW, m.Layers[1].W...)
	headW := append([]float64(nil), m.Layers[2].W...)
	in := []float64{0.5, -0.25, 1}
	target := []float64{1, -1}
	first := m.Loss(in, target)
	head := len(m.Layers) - 1
	for i := 0; i < 60; i++ {
		m.TrainStepFrom(in, target, 0.05, 0.9, head)
	}
	got := append([]float64(nil), m.Layers[0].W...)
	got = append(got, m.Layers[1].W...)
	for i := range got {
		if got[i] != frozenW[i] {
			t.Fatalf("frozen weight %d moved under head-only training", i)
		}
	}
	moved := false
	for i := range headW {
		if m.Layers[head].W[i] != headW[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("head weights never moved")
	}
	if last := m.Loss(in, target); last >= first {
		t.Errorf("head-only training did not reduce loss: %v -> %v", first, last)
	}
}

func TestTrainStepFromZeroMatchesTrainStep(t *testing.T) {
	rng := mathx.NewRNG(7)
	a := NewMLP([]int{2, 6, 2}, LeakyReLU, rng)
	b := a.Clone()
	in := []float64{0.3, -0.8}
	target := []float64{0, 1}
	for i := 0; i < 25; i++ {
		la := a.TrainStep(in, target, 0.05, 0.9)
		lb := b.TrainStepFrom(in, target, 0.05, 0.9, 0)
		if la != lb {
			t.Fatalf("step %d: losses diverged %v vs %v", i, la, lb)
		}
	}
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if a.Layers[li].W[i] != b.Layers[li].W[i] {
				t.Fatalf("layer %d weight %d diverged", li, i)
			}
		}
	}
}
