package trace

import (
	"bytes"
	"testing"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
)

func buildIteration(t *testing.T) (*graph.Iteration, *tensor.Registry) {
	t.Helper()
	var reg tensor.Registry
	w := reg.New("w", tensor.Weight, tensor.F32, 8, 8)
	ws := graph.NewWeightState(&reg, w, true)
	x := reg.New("x", tensor.Input, tensor.F32, 2, 8)
	y := reg.New("y", tensor.Activation, tensor.F32, 2, 8)
	ops := []*graph.Op{graph.NewOp("matmul", 256, []*tensor.Meta{x, w}, []*tensor.Meta{y})}
	r := &graph.Resolved{ModelName: "t", Ops: ops}
	return graph.ExpandTraining(&reg, r, []*graph.WeightState{ws}, true), &reg
}

func TestFromIteration(t *testing.T) {
	it, _ := buildIteration(t)
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	tr := FromIteration("test", it, cm)

	wantOps := len(it.Forward) + len(it.Backward) + len(it.Optimizer)
	if len(tr.Records) != wantOps {
		t.Fatalf("records = %d, want %d", len(tr.Records), wantOps)
	}
	// Indexes are sequential and phases ordered fwd->bwd->opt.
	seenBackward, seenOpt := false, false
	for i, r := range tr.Records {
		if r.Index != i {
			t.Errorf("record %d has index %d", i, r.Index)
		}
		if r.TimeNS <= 0 {
			t.Errorf("record %d has non-positive time", i)
		}
		switch r.Phase {
		case Forward:
			if seenBackward || seenOpt {
				t.Error("forward after backward/optimizer")
			}
		case Backward:
			seenBackward = true
			if seenOpt {
				t.Error("backward after optimizer")
			}
		case Optimizer:
			seenOpt = true
		}
	}
	if !seenBackward || !seenOpt {
		t.Error("missing phases")
	}
	if tr.TotalTimeNS() <= 0 {
		t.Error("total time must be positive")
	}
	if tr.TotalBytes() <= 0 {
		t.Error("total bytes must be positive")
	}
}

func TestTensorLookups(t *testing.T) {
	it, _ := buildIteration(t)
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	tr := FromIteration("test", it, cm)

	bytes := tr.TensorBytes()
	kinds := tr.TensorKinds()
	if len(bytes) != len(tr.Tensors) || len(kinds) != len(tr.Tensors) {
		t.Fatal("lookup sizes mismatch")
	}
	var weights int
	for _, tt := range tr.Tensors {
		if bytes[tt.ID] != tt.Bytes {
			t.Errorf("bytes mismatch for %d", tt.ID)
		}
		if kinds[tt.ID] == tensor.Weight {
			weights++
		}
	}
	if weights != 1 {
		t.Errorf("weights in trace = %d, want 1", weights)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	it, _ := buildIteration(t)
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	tr := FromIteration("roundtrip", it, cm)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != tr.Model || len(got.Records) != len(tr.Records) || len(got.Tensors) != len(tr.Tensors) {
		t.Fatal("roundtrip lost data")
	}
	for i := range tr.Records {
		if got.Records[i].Name != tr.Records[i].Name ||
			got.Records[i].TimeNS != tr.Records[i].TimeNS ||
			got.Records[i].Sig != tr.Records[i].Sig {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{garbage")); err == nil {
		t.Error("bad JSON must error")
	}
}
