// Package trace records dynamic execution traces of resolved DyNN graphs:
// operator order, names, idiom signatures, tensor references, and simulated
// execution times. Traces are what the paper's offline training system feeds
// to the Sentinel partitioner to produce pilot-model labels (§V: "execution
// trace generator ... in a Json-formatted file").
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/idiom"
	"dynnoffload/internal/tensor"
)

// Phase labels which part of the training iteration an operator belongs to.
type Phase string

const (
	Forward   Phase = "forward"
	Backward  Phase = "backward"
	Optimizer Phase = "optimizer"
)

// OpRecord is one executed operator.
type OpRecord struct {
	Index   int             `json:"index"`
	Name    string          `json:"name"`
	Phase   Phase           `json:"phase"`
	Sig     idiom.Signature `json:"sig"`
	FLOPs   int64           `json:"flops"`
	Bytes   int64           `json:"bytes"`
	TimeNS  int64           `json:"time_ns"`
	Inputs  []int64         `json:"inputs"`
	Outputs []int64         `json:"outputs"`
}

// TensorRecord describes one tensor referenced by the trace.
type TensorRecord struct {
	ID    int64       `json:"id"`
	Name  string      `json:"name"`
	Kind  tensor.Kind `json:"kind"`
	Bytes int64       `json:"bytes"`
}

// Trace is a full dynamic execution trace of one training iteration.
type Trace struct {
	Model   string         `json:"model"`
	Records []OpRecord     `json:"records"`
	Tensors []TensorRecord `json:"tensors"`
}

// FromIteration profiles a training iteration under the given cost model.
func FromIteration(model string, it *graph.Iteration, cm gpusim.CostModel) *Trace {
	tr := &Trace{Model: model}
	seen := map[int64]bool{}
	record := func(op *graph.Op, phase Phase, idx int) OpRecord {
		r := OpRecord{
			Index: idx, Name: op.Name, Phase: phase, Sig: op.Sig,
			FLOPs: op.FLOPs, Bytes: op.Bytes(), TimeNS: cm.OpTime(op),
		}
		for _, t := range op.Inputs {
			r.Inputs = append(r.Inputs, t.ID)
			tr.addTensor(t, seen)
		}
		for _, t := range op.Outputs {
			r.Outputs = append(r.Outputs, t.ID)
			tr.addTensor(t, seen)
		}
		return r
	}
	idx := 0
	for _, op := range it.Forward {
		tr.Records = append(tr.Records, record(op, Forward, idx))
		idx++
	}
	for _, op := range it.Backward {
		tr.Records = append(tr.Records, record(op, Backward, idx))
		idx++
	}
	for _, op := range it.Optimizer {
		tr.Records = append(tr.Records, record(op, Optimizer, idx))
		idx++
	}
	return tr
}

func (tr *Trace) addTensor(t *tensor.Meta, seen map[int64]bool) {
	if seen[t.ID] {
		return
	}
	seen[t.ID] = true
	tr.Tensors = append(tr.Tensors, TensorRecord{ID: t.ID, Name: t.Name, Kind: t.Kind, Bytes: t.Bytes()})
}

// TotalTimeNS sums per-operator times (pure compute, no migration).
func (tr *Trace) TotalTimeNS() int64 {
	var t int64
	for _, r := range tr.Records {
		t += r.TimeNS
	}
	return t
}

// TotalBytes sums distinct tensor sizes.
func (tr *Trace) TotalBytes() int64 {
	var b int64
	for _, t := range tr.Tensors {
		b += t.Bytes
	}
	return b
}

// TensorBytes returns a lookup of tensor ID to size.
func (tr *Trace) TensorBytes() map[int64]int64 {
	m := make(map[int64]int64, len(tr.Tensors))
	for _, t := range tr.Tensors {
		m[t.ID] = t.Bytes
	}
	return m
}

// WriteJSON serializes the trace.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &tr, nil
}

// TensorKinds returns a lookup of tensor ID to kind.
func (tr *Trace) TensorKinds() map[int64]tensor.Kind {
	m := make(map[int64]tensor.Kind, len(tr.Tensors))
	for _, t := range tr.Tensors {
		m[t.ID] = t.Kind
	}
	return m
}
