package baselines

import (
	"fmt"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/sentinel"
)

// ZeROConfig tunes the ZeRO-Offload baseline [58]: profiling-guided
// offloading designed for static transformer models. Its PGO schedule is a
// capacity-greedy partition without DyNN-Offload's adaptive boundary search,
// and its optimizer runs on the CPU (the ZeRO-Offload design), modeled as a
// slowdown on optimizer-phase operators.
type ZeROConfig struct {
	CPUOptimizerSlowdown float64 // CPU Adam vs GPU Adam
}

// DefaultZeROConfig returns the ZeRO-Offload defaults.
func DefaultZeROConfig() ZeROConfig { return ZeROConfig{CPUOptimizerSlowdown: 4} }

// ErrDynamicModel is returned when ZeRO-Offload is asked to train a DyNN:
// its PGO schedule assumes an invariant computation graph (§VI-C: "ZeRO-
// Offload only works for static NN").
var ErrDynamicModel = fmt.Errorf("zero-offload: profiling-guided schedule requires a static computation graph")

// ZeRO simulates ZeRO-Offload on a static model. pipeline is a pre-built
// engine-style simulator supplied by the caller (core.Engine.SimulatePartition)
// so ZeRO executes under identical runtime semantics, differing only in its
// partition policy and CPU optimizer.
func ZeRO(an *sentinel.Analysis, plat gpusim.Platform, dynamic bool, cfg ZeROConfig,
	pipeline func(*sentinel.Analysis, []sentinel.Block) gpusim.Breakdown) (gpusim.Breakdown, error) {
	var bd gpusim.Breakdown
	if dynamic {
		return bd, ErrDynamicModel
	}
	total := an.Trace.TotalBytes()
	if total > plat.GPU.MemBytes+plat.CPUMemBytes {
		return bd, &ErrOOM{System: "zero-offload", Need: total, Have: plat.GPU.MemBytes + plat.CPUMemBytes}
	}
	blocks := greedyPartition(an, plat.GPU.MemBytes/2)
	if blocks == nil {
		return bd, &ErrOOM{System: "zero-offload", Need: an.MaxSingleOpBytes(), Have: plat.GPU.MemBytes / 2}
	}
	bd = pipeline(an, blocks)

	// CPU optimizer penalty over optimizer-phase records.
	var optNS int64
	for _, r := range an.Trace.Records {
		if r.Phase == "optimizer" {
			optNS += r.TimeNS
		}
	}
	bd.OverheadNS += int64(float64(optNS) * (cfg.CPUOptimizerSlowdown - 1))
	return bd, nil
}

// greedyPartition is the PGO schedule: capacity-greedy segmentation with no
// adaptive boundary refinement (contrast sentinel.Analysis.Partition).
func greedyPartition(an *sentinel.Analysis, budget int64) []sentinel.Block {
	n := an.NumOps()
	var blocks []sentinel.Block
	start := 0
	for start < n {
		end := start + 1
		if an.WorkingBytes(sentinel.Block{Start: start, End: end}) > budget {
			return nil
		}
		for end < n && an.WorkingBytes(sentinel.Block{Start: start, End: end + 1}) <= budget {
			end++
		}
		blocks = append(blocks, sentinel.Block{Start: start, End: end})
		start = end
	}
	return blocks
}
