package baselines

import (
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/tensor"
)

// UVMConfig tunes the unified-virtual-memory baseline (§VI-A): page-granular
// on-demand migration with fault latency, and the industry-standard 2×
// oversubscription cap ("the sum of CPU and GPU memory can be at most twice
// the size of the GPU memory").
type UVMConfig struct {
	Oversubscription float64 // max footprint as multiple of GPU memory
	FaultLatencyNS   int64   // GPU page-fault handling latency per faulting tensor
	FaultBWFraction  float64 // achievable link fraction during fault-driven migration
}

// DefaultUVMConfig returns the paper's UVM setup.
func DefaultUVMConfig() UVMConfig {
	return UVMConfig{Oversubscription: 2.0, FaultLatencyNS: 30_000, FaultBWFraction: 0.35}
}

// UVM simulates managed-memory training: tensors fault in at page
// granularity on first touch, evict page-LRU under pressure, and all
// migration is exposed (no prefetch — the paper argues the programmer cannot
// know access order a priori for a DyNN, so cudaMemPrefetchAsync is unusable).
func UVM(an *sentinel.Analysis, plat gpusim.Platform, cfg UVMConfig) (gpusim.Breakdown, error) {
	var bd gpusim.Breakdown
	peak := an.PeakResidentBytes()
	limit := int64(cfg.Oversubscription * float64(plat.GPU.MemBytes))
	if peak > limit {
		return bd, &ErrOOM{System: "uvm", Need: peak, Have: limit}
	}
	// Fits entirely: UVM degenerates to in-memory training after warm-up.
	if peak <= plat.GPU.MemBytes {
		bd.ComputeNS = an.TotalComputeNS()
		bd.PeakGPUBytes = an.PeakResidentBytes()
		return bd, nil
	}

	pt := gpusim.NewPageTable(plat.GPU.MemBytes)
	kinds := an.Trace.TensorKinds()
	for _, t := range an.Trace.Tensors {
		pt.Register(t.ID, t.Bytes)
	}
	// Warm start: persistent state (weights, moments, gradient buffers)
	// migrated in during earlier iterations and stays resident as long as it
	// fits — the steady-state regime the paper measures (one-epoch time
	// after warm-up, §VI-C).
	for _, id := range an.PersistentIDs() {
		pt.Access(id)
	}

	pageXfer := func(pages int) int64 {
		bytes := int64(pages) * gpusim.UVMPageSize
		return int64(float64(bytes) / (plat.Link.BW * cfg.FaultBWFraction) * 1e9)
	}

	for i, r := range an.Trace.Records {
		// Touch every referenced tensor; faults stall the compute stream.
		// Reads of non-resident data migrate from CPU; freshly produced
		// outputs are first-touch allocated on the device (no migration,
		// only the evictions they force).
		seen := map[int64]bool{}
		charge := func(faulted, evicted int) {
			if faulted+evicted == 0 {
				return
			}
			bd.Faults++
			bd.FaultNS += cfg.FaultLatencyNS
			bd.ExposedXferNS += pageXfer(faulted + evicted)
			bd.H2DBytes += int64(faulted) * gpusim.UVMPageSize
			bd.D2HBytes += int64(evicted) * gpusim.UVMPageSize
		}
		for _, id := range r.Inputs {
			if seen[id] {
				continue
			}
			seen[id] = true
			charge(pt.Access(id))
		}
		for _, id := range r.Outputs {
			if seen[id] {
				continue
			}
			seen[id] = true
			if an.Producer(id) == i {
				charge(0, pt.Allocate(id))
			} else {
				charge(pt.Access(id))
			}
		}
		bd.ComputeNS += r.TimeNS

		// The framework frees dead ephemeral tensors (activations, gradients,
		// workspace); their pages vanish without write-back.
		for _, id := range append(append([]int64{}, r.Inputs...), r.Outputs...) {
			if an.LastUse(id) == i {
				switch kinds[id] {
				case tensor.Activation, tensor.Gradient, tensor.Workspace:
					pt.Evict(id)
				}
			}
		}
	}
	bd.PeakGPUBytes = pt.Peak()
	return bd, nil
}
