package baselines

import (
	"fmt"
	"math"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/tensor"
)

// DTRConfig tunes dynamic tensor rematerialization [30].
type DTRConfig struct {
	// MaxRematOps bounds total rematerializations per iteration; exceeding it
	// models runaway recompute chains.
	MaxRematOps int
	// InterceptOverhead is the fractional runtime cost of DTR's operator
	// interception and metadata upkeep, charged on compute time. The DTR
	// paper itself reports 1.1-1.3x slowdown even without eviction pressure.
	InterceptOverhead float64
	// MaxTrackedTensors models the tensor-lifetime-tracking instability the
	// paper observed: "training a larger model with DTR suffers from system
	// crashes because of DTR's internal mechanism to track tensor lifetime"
	// (§VI-B). Iterations referencing more distinct tensors than this crash.
	MaxTrackedTensors int
}

// DefaultDTRConfig returns the DTR defaults.
func DefaultDTRConfig() DTRConfig {
	return DTRConfig{MaxRematOps: 5_000_000, InterceptOverhead: 0.15, MaxTrackedTensors: 60_000}
}

// dtrState is the per-run simulator state.
type dtrState struct {
	an    *sentinel.Analysis
	cfg   DTRConfig
	kinds map[int64]tensor.Kind

	capacity   int64
	used       int64
	peak       int64
	resident   map[int64]bool
	pinned     map[int64]bool
	lastAccess map[int64]int
	step       int

	rematOps int
	rematNS  int64

	// transients are tensors materialized only as intermediates of a
	// rematerialization chain. DTR cannot afford to cache them (caching the
	// chain is what caused the eviction pressure in the first place), so
	// they are dropped after the faulting operator completes — which is why
	// "the length of the computation chain increases superlinearly as the
	// memory budget decreases" (§VI-C).
	transients []int64
}

// rematerializable reports whether DTR may evict-and-recompute a tensor:
// it must have a producing operator, and weights/optimizer state are updated
// in place so they can never be replayed (§II-B: "some tensors cannot be
// rematerialized, leading to a tighter bound on memory saving").
func (s *dtrState) rematerializable(id int64) bool {
	if s.an.Producer(id) < 0 {
		return false
	}
	switch s.kinds[id] {
	case tensor.Weight, tensor.OptState:
		return false
	}
	return true
}

// DTR simulates training under dynamic tensor rematerialization: under
// memory pressure it evicts the resident rematerializable tensor minimizing
// the DTR heuristic h(t) = cost(t) / (mem(t) · staleness(t)), and recomputes
// evicted tensors on demand — recursively, since a parent's inputs may have
// been evicted too.
func DTR(an *sentinel.Analysis, plat gpusim.Platform, cfg DTRConfig) (gpusim.Breakdown, error) {
	var bd gpusim.Breakdown
	s := &dtrState{
		an: an, cfg: cfg, kinds: an.Trace.TensorKinds(),
		capacity: plat.GPU.MemBytes,
		resident: map[int64]bool{}, pinned: map[int64]bool{}, lastAccess: map[int64]int{},
	}

	if cfg.MaxTrackedTensors > 0 && len(an.Trace.Tensors) > cfg.MaxTrackedTensors {
		return bd, fmt.Errorf("dtr: %d tensors exceed lifetime-tracking capacity %d (DTR crash regime)",
			len(an.Trace.Tensors), cfg.MaxTrackedTensors)
	}
	// Persistent (non-rematerializable) tensors are always resident.
	var persistent int64
	for _, t := range an.Trace.Tensors {
		if !s.rematerializable(t.ID) {
			persistent += t.Bytes
		}
	}
	if persistent+an.MaxSingleOpBytes() > s.capacity {
		return bd, &ErrOOM{System: "dtr", Need: persistent + an.MaxSingleOpBytes(), Have: s.capacity}
	}
	for _, t := range an.Trace.Tensors {
		if !s.rematerializable(t.ID) {
			s.makeResident(t.ID)
		}
	}

	for i, r := range an.Trace.Records {
		s.step = i
		// Pin this op's tensors, ensure inputs (rematerializing as needed),
		// and allocate outputs.
		ids := append(append([]int64{}, r.Inputs...), r.Outputs...)
		for _, id := range ids {
			s.pinned[id] = true
		}
		for _, id := range r.Inputs {
			if s.an.Producer(id) == i {
				continue // first written by this very op (in-place init)
			}
			if err := s.ensure(id, 0); err != nil {
				return bd, err
			}
		}
		for _, id := range r.Outputs {
			if err := s.allocate(id); err != nil {
				return bd, err
			}
		}
		bd.ComputeNS += r.TimeNS
		for _, id := range ids {
			delete(s.pinned, id)
			s.lastAccess[id] = i
		}
		// Chain intermediates are not cached: drop them now.
		for _, id := range s.transients {
			if !s.pinned[id] {
				s.drop(id)
			}
		}
		s.transients = s.transients[:0]
		// Drop dead ephemerals for free (the framework frees them).
		for _, id := range ids {
			if s.an.LastUse(id) == i && s.rematerializable(id) {
				s.drop(id)
			}
		}
	}
	bd.RematNS = s.rematNS
	bd.OverheadNS = int64(cfg.InterceptOverhead * float64(bd.ComputeNS))
	bd.PeakGPUBytes = s.peak
	return bd, nil
}

const maxRematDepth = 512

// ensure makes a tensor resident, recursively rematerializing its producing
// chain when evicted ("rematerialization can be recursive ... no theoretical
// bound on depth", §II-B).
func (s *dtrState) ensure(id int64, depth int) error {
	if s.resident[id] {
		s.lastAccess[id] = s.step
		return nil
	}
	if !s.rematerializable(id) {
		// Persistent tensors were preloaded; reaching here is a bug.
		return fmt.Errorf("dtr: persistent tensor %d not resident", id)
	}
	if depth > maxRematDepth {
		return fmt.Errorf("dtr: rematerialization recursion exceeded %d (tensor %d, producer %d, step %d)", maxRematDepth, id, s.an.Producer(id), s.step)
	}
	p := s.an.Producer(id)
	rec := s.an.Trace.Records[p]
	// Recursively materialize the parent operation's arguments.
	for _, in := range rec.Inputs {
		s.pinned[in] = true
	}
	defer func() {
		for _, in := range rec.Inputs {
			delete(s.pinned, in)
		}
	}()
	for _, in := range rec.Inputs {
		if s.an.Producer(in) == p {
			continue // in-place: the op initializes this tensor itself
		}
		if err := s.ensure(in, depth+1); err != nil {
			return err
		}
	}
	// Replay the parent op.
	s.rematOps++
	if s.rematOps > s.cfg.MaxRematOps {
		return fmt.Errorf("dtr: rematerialization budget exceeded (%d ops) — DTR crash regime", s.cfg.MaxRematOps)
	}
	s.rematNS += rec.TimeNS
	for _, out := range rec.Outputs {
		if err := s.allocate(out); err != nil {
			return err
		}
		if out != id {
			s.transients = append(s.transients, out)
		}
	}
	if depth > 0 {
		s.transients = append(s.transients, id)
	}
	if !s.resident[id] {
		return s.allocate(id)
	}
	return nil
}

// allocate makes room for a tensor and marks it resident.
func (s *dtrState) allocate(id int64) error {
	if s.resident[id] {
		s.lastAccess[id] = s.step
		return nil
	}
	need := s.an.BytesOf(id)
	for s.used+need > s.capacity {
		if !s.evictOne() {
			return &ErrOOM{System: "dtr", Need: s.used + need, Have: s.capacity}
		}
	}
	s.makeResident(id)
	return nil
}

func (s *dtrState) makeResident(id int64) {
	if s.resident[id] {
		return
	}
	s.resident[id] = true
	s.used += s.an.BytesOf(id)
	if s.used > s.peak {
		s.peak = s.used
	}
	s.lastAccess[id] = s.step
}

func (s *dtrState) drop(id int64) {
	if !s.resident[id] {
		return
	}
	delete(s.resident, id)
	s.used -= s.an.BytesOf(id)
}

// evictOne removes the unpinned rematerializable resident tensor minimizing
// the DTR heuristic. Returns false if nothing is evictable.
func (s *dtrState) evictOne() bool {
	best := int64(-1)
	bestH := math.Inf(1)
	for id := range s.resident {
		if s.pinned[id] || !s.rematerializable(id) {
			continue
		}
		p := s.an.Producer(id)
		cost := float64(s.an.Trace.Records[p].TimeNS) + 1
		mem := float64(s.an.BytesOf(id)) + 1
		stale := float64(s.step-s.lastAccess[id]) + 1
		h := cost / (mem * stale)
		if h < bestH {
			bestH = h
			best = id
		}
	}
	if best < 0 {
		return false
	}
	s.drop(best)
	return true
}
