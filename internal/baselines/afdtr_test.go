package baselines

import (
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/trace"
)

// TestDTRAlphaFoldRecycling guards the weight-shared Repeat (recycling)
// interaction with DTR: aliased tensors' gradients must not be read before
// any backward op produces them, and a roomy budget must need no remat.
func TestDTRAlphaFoldRecycling(t *testing.T) {
	m := dynn.NewAlphaFold(dynn.AlphaFoldConfig{Blocks: 3, SeqLen: 48, MSADim: 32, PairDim: 32, Batch: 4, Seed: 3})
	r, err := graph.Resolve(m.Static(), []int{0, 0, 1}) // 2 recycles
	if err != nil {
		t.Fatal(err)
	}
	it := graph.ExpandTraining(m.Registry(), r, m.WeightStates(), true)
	cm := gpusim.NewCostModel(gpusim.A100Platform())
	tr := trace.FromIteration(m.Name(), it, cm)
	an := sentinel.NewAnalysis(tr, cm)

	// No tensor may be read before its first production (weights excluded:
	// the optimizer is their only producer).
	kinds := tr.TensorKinds()
	for i, rec := range tr.Records {
		for _, in := range rec.Inputs {
			if p := an.Producer(in); p > i && kinds[in] != 1 /* Weight */ {
				t.Fatalf("op %d reads tensor %d produced at op %d", i, in, p)
			}
		}
	}

	plat := gpusim.A100Platform().WithMemory(tr.TotalBytes() * 11 / 10)
	bd, err := DTR(an, plat, DefaultDTRConfig())
	if err != nil {
		t.Fatalf("roomy DTR failed: %v", err)
	}
	if bd.RematNS != 0 {
		t.Errorf("roomy DTR rematerialized %d ns", bd.RematNS)
	}
}
