// Package baselines implements the systems DyNN-Offload is compared against
// (§VI-A): unmodified PyTorch (in-GPU-memory training), CUDA unified virtual
// memory (UVM), dynamic tensor rematerialization (DTR), and ZeRO-Offload
// (PGO-based offloading for static NNs). All run over the same traces and
// cost model as the DyNN-Offload runtime, so comparisons isolate the policy.
package baselines

import (
	"fmt"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/sentinel"
)

// ErrOOM marks an infeasible configuration (the red 'x' in Fig 9).
type ErrOOM struct {
	System string
	Need   int64
	Have   int64
}

func (e *ErrOOM) Error() string {
	return fmt.Sprintf("%s: out of memory: need %d bytes, have %d", e.System, e.Need, e.Have)
}

// PyTorch simulates unmodified in-memory training: every tensor is resident
// from first to last use. It fails with ErrOOM if the liveness peak exceeds
// GPU memory.
func PyTorch(an *sentinel.Analysis, plat gpusim.Platform) (gpusim.Breakdown, error) {
	var bd gpusim.Breakdown
	peak := an.PeakResidentBytes()
	if peak > plat.GPU.MemBytes {
		return bd, &ErrOOM{System: "pytorch", Need: peak, Have: plat.GPU.MemBytes}
	}
	bd.ComputeNS = an.TotalComputeNS()
	bd.PeakGPUBytes = peak
	return bd, nil
}
