package baselines

import (
	"errors"
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/trace"
)

// analysisDeep builds a deeper var-BERT whose activation span gives DTR a
// real eviction window.
func analysisDeep(t *testing.T, batch int, plat gpusim.Platform) *sentinel.Analysis {
	t.Helper()
	m := dynn.NewVarBERT(dynn.VarBERTConfig{Layers: 12, Hidden: 128, SeqLen: 64, Batch: batch, Seed: 1})
	r, err := graph.Resolve(m.Static(), make([]int, m.Static().NumSites))
	if err != nil {
		t.Fatal(err)
	}
	it := graph.ExpandTraining(m.Registry(), r, m.WeightStates(), true)
	cm := gpusim.NewCostModel(plat)
	return sentinel.NewAnalysis(trace.FromIteration(m.Name(), it, cm), cm)
}

// analysisFor builds the iteration analysis of a small var-BERT at the given
// batch on the given platform.
func analysisFor(t *testing.T, batch int, plat gpusim.Platform) *sentinel.Analysis {
	t.Helper()
	m := dynn.NewVarBERT(dynn.VarBERTConfig{Layers: 4, Hidden: 128, SeqLen: 32, Batch: batch, Seed: 1})
	r, err := graph.Resolve(m.Static(), make([]int, m.Static().NumSites))
	if err != nil {
		t.Fatal(err)
	}
	it := graph.ExpandTraining(m.Registry(), r, m.WeightStates(), true)
	cm := gpusim.NewCostModel(plat)
	return sentinel.NewAnalysis(trace.FromIteration(m.Name(), it, cm), cm)
}

func TestPyTorchInMemory(t *testing.T) {
	plat := gpusim.RTXPlatform()
	an := analysisFor(t, 2, plat)
	bd, err := PyTorch(an, plat)
	if err != nil {
		t.Fatal(err)
	}
	if bd.ComputeNS != an.TotalComputeNS() {
		t.Error("PyTorch time must be pure compute")
	}
	if bd.ExposedXferNS != 0 {
		t.Error("PyTorch must not migrate")
	}
}

func TestPyTorchOOM(t *testing.T) {
	plat := gpusim.RTXPlatform()
	an := analysisFor(t, 2, plat)
	small := plat.WithMemory(an.PeakResidentBytes() / 2)
	_, err := PyTorch(an, small)
	var oom *ErrOOM
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOOM, got %v", err)
	}
	if oom.Error() == "" {
		t.Error("empty error text")
	}
}

func TestUVMUnderPressure(t *testing.T) {
	plat := gpusim.RTXPlatform()
	an := analysisFor(t, 2, plat)
	peak := an.PeakResidentBytes()

	// Fits: equal to PyTorch.
	fit, err := UVM(an, plat, DefaultUVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fit.FaultNS != 0 {
		t.Error("fitting UVM must not fault")
	}

	// Pressured: slower than PyTorch compute, with faults and traffic.
	pressured := plat.WithMemory(peak * 6 / 10)
	bd, err := UVM(an, pressured, DefaultUVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if bd.Faults == 0 || bd.ExposedXferNS == 0 {
		t.Error("pressured UVM must fault and migrate")
	}
	if bd.TotalNS() <= an.TotalComputeNS() {
		t.Error("pressured UVM cannot match pure compute")
	}

	// Beyond 2x oversubscription: OOM.
	tiny := plat.WithMemory(peak / 3)
	if _, err := UVM(an, tiny, DefaultUVMConfig()); err == nil {
		t.Error("beyond-oversubscription UVM must OOM")
	}
}

func TestDTRUnderPressure(t *testing.T) {
	plat := gpusim.RTXPlatform()
	an := analysisDeep(t, 8, plat)
	peak := an.PeakResidentBytes()
	persistent := an.PersistentBytes()

	// Fits entirely: no remat.
	fit, err := DTR(an, plat, DefaultDTRConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fit.RematNS != 0 {
		t.Error("roomy DTR must not rematerialize")
	}

	// Activation pressure: scan down until eviction starts; remat must
	// appear before DTR's working floor (OOM).
	span := peak - persistent
	foundRemat := false
	for f := 98; f >= 40; f -= 2 {
		budget := persistent + span*int64(f)/100
		bd, err := DTR(an, plat.WithMemory(budget), DefaultDTRConfig())
		if err != nil {
			break // hit the working floor
		}
		if bd.PeakGPUBytes > budget {
			t.Errorf("DTR peak %d exceeded budget %d", bd.PeakGPUBytes, budget)
		}
		if bd.RematNS > 0 {
			foundRemat = true
			break
		}
	}
	if !foundRemat {
		t.Error("no budget produced rematerialization before the working floor")
	}

	// Below the non-evictable floor: OOM.
	if _, err := DTR(an, plat.WithMemory(persistent/2), DefaultDTRConfig()); err == nil {
		t.Error("sub-persistent DTR must fail")
	}
}

func TestDTRDegradesSuperlinearly(t *testing.T) {
	plat := gpusim.RTXPlatform()
	an := analysisFor(t, 4, plat)
	peak := an.PeakResidentBytes()
	persistent := an.PersistentBytes()
	span := peak - persistent

	var prev int64
	points := 0
	for _, f := range []float64{0.95, 0.85, 0.75, 0.65} {
		budget := persistent + int64(f*float64(span))
		bd, err := DTR(an, plat.WithMemory(budget), DefaultDTRConfig())
		if err != nil {
			// Tighter budgets eventually hit DTR's working floor (the
			// paper's red-x regime); stop the sweep there.
			break
		}
		if prev > 0 && bd.TotalNS() < prev {
			t.Errorf("DTR got faster with less memory at f=%v", f)
		}
		prev = bd.TotalNS()
		points++
	}
	if points < 2 {
		t.Fatalf("DTR feasible at only %d budget points", points)
	}
}

func TestDTRTrackingCrash(t *testing.T) {
	plat := gpusim.RTXPlatform()
	an := analysisFor(t, 2, plat)
	cfg := DefaultDTRConfig()
	cfg.MaxTrackedTensors = 3
	if _, err := DTR(an, plat, cfg); err == nil {
		t.Error("tensor-tracking overflow must crash")
	}
}

func TestZeRORejectsDynamic(t *testing.T) {
	plat := gpusim.RTXPlatform()
	an := analysisFor(t, 2, plat)
	pipeline := func(a *sentinel.Analysis, b []sentinel.Block) gpusim.Breakdown {
		return gpusim.Breakdown{ComputeNS: a.TotalComputeNS()}
	}
	if _, err := ZeRO(an, plat, true, DefaultZeROConfig(), pipeline); !errors.Is(err, ErrDynamicModel) {
		t.Errorf("want ErrDynamicModel, got %v", err)
	}
	bd, err := ZeRO(an, plat, false, DefaultZeROConfig(), pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if bd.OverheadNS <= 0 {
		t.Error("ZeRO must charge the CPU-optimizer penalty")
	}
}

func TestGreedyPartitionCoversOps(t *testing.T) {
	plat := gpusim.RTXPlatform()
	an := analysisFor(t, 2, plat)
	blocks := greedyPartition(an, an.MaxSingleOpBytes()*4)
	if blocks == nil {
		t.Fatal("greedy partition infeasible")
	}
	if err := sentinel.Validate(blocks, an.NumOps()); err != nil {
		t.Fatal(err)
	}
}
