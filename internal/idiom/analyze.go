package idiom

// Analyze classifies every statement of a kernel into idiom occurrences and
// returns the six occurrence counts. Classification rules (one statement can
// exhibit several idioms, each counted at most once per statement):
//
//   - scatter:   the LHS is an indirect access (B[C[i]] = ...).
//   - gather:    any RHS access is indirect (... = B[C[i]]).
//   - reduction: the statement accumulates (lhs += rhs) and the LHS rank is
//     strictly lower than the loop depth, i.e. at least one loop
//     variable is contracted away.
//   - transpose: some RHS access uses the LHS's subscript variables in a
//     different (permuted) order.
//   - stencil:   any access subscripts with a nonzero constant offset
//     (neighbour access such as A[i-1][j]).
//   - stream:    the LHS is direct and some RHS access is direct, offset-free
//     and uses exactly the LHS's subscript variables in the same
//     order (aligned element-wise traffic).
func Analyze(k Kernel) [NumIdioms]int {
	var counts [NumIdioms]int
	for _, s := range k.Stmts {
		for _, id := range classify(k, s) {
			counts[id]++
		}
	}
	return counts
}

func classify(k Kernel, s Stmt) []Idiom {
	var out []Idiom
	seen := map[Idiom]bool{}
	add := func(id Idiom) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}

	if s.LHS.IndirectVia != "" {
		add(Scatter)
	}
	for _, r := range s.RHS {
		if r.IndirectVia != "" {
			add(Gather)
		}
	}
	if s.Accum && len(s.LHS.Vars()) < len(k.LoopVars) {
		add(Reduction)
	}

	lhsVars := s.LHS.Vars()
	for _, r := range s.RHS {
		if r.IndirectVia != "" {
			continue
		}
		rv := r.Vars()
		if isPermutation(lhsVars, rv) && !equalStrings(lhsVars, rv) {
			add(Transpose)
		}
	}

	if s.LHS.hasOffset() {
		add(Stencil)
	}
	for _, r := range s.RHS {
		if r.hasOffset() {
			add(Stencil)
			break
		}
	}

	if s.LHS.IndirectVia == "" {
		for _, r := range s.RHS {
			if r.IndirectVia == "" && !r.hasOffset() && equalStrings(lhsVars, r.Vars()) && len(lhsVars) > 0 {
				add(Stream)
				break
			}
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func isPermutation(a, b []string) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	cnt := map[string]int{}
	for _, v := range a {
		cnt[v]++
	}
	for _, v := range b {
		cnt[v]--
		if cnt[v] < 0 {
			return false
		}
	}
	return true
}
