// Package idiom implements the paper's idiom-based operator representation
// (§IV-A2). Each ML operator is characterized by six pervasive memory-access
// idioms — transpose, gather, scatter, reduction, stream, stencil — and is
// encoded as a nine-element signature: six idiom occurrence counts plus three
// elements summarizing input-tensor dimensions.
//
// The paper counts idioms with an LLVM-based static analysis over operator
// kernels. This package substitutes a small loop-nest kernel IR plus an
// analyzer that classifies tensor accesses into the idioms; every operator in
// the registry carries a kernel description and its signature is *computed*
// from it, not hand-assigned.
package idiom

import "fmt"

// Idiom enumerates the six memory-access idioms of §IV-A2.
type Idiom int

const (
	Transpose Idiom = iota // A[i][j] = B[j][i]
	Gather                 // A[i][j] = B[C[i]]
	Scatter                // B[C[i]] = A[i][j]
	Reduction              // a += A[i][j]
	Stream                 // A[i][j] = A[i][j] + B[i][j]
	Stencil                // A[i][j] = A[i-1][j] + A[i+1][j]

	NumIdioms = 6
)

func (id Idiom) String() string {
	switch id {
	case Transpose:
		return "transpose"
	case Gather:
		return "gather"
	case Scatter:
		return "scatter"
	case Reduction:
		return "reduction"
	case Stream:
		return "stream"
	case Stencil:
		return "stencil"
	}
	return fmt.Sprintf("idiom(%d)", int(id))
}

// SigLen is the length of an operator signature: six idiom counts plus three
// input-dimension elements (§IV-A2: "a nine-element vector").
const SigLen = 9

// Signature is the nine-element operator vector. Elements 0–5 are idiom
// occurrence counts; elements 6–8 accumulate the first three input-tensor
// dimension sizes (as in the paper's matmul example, where they hold
// ar+br and ac+bc).
type Signature [SigLen]float64

// Counts returns just the six idiom counts.
func (s Signature) Counts() [NumIdioms]float64 {
	var c [NumIdioms]float64
	copy(c[:], s[:NumIdioms])
	return c
}

// WithDims returns a copy of s whose dimension elements (6–8) are the sums of
// the leading dimensions of the given input shapes.
func (s Signature) WithDims(inputShapes ...[]int) Signature {
	out := s
	out[6], out[7], out[8] = 0, 0, 0
	for _, shape := range inputShapes {
		for k := 0; k < 3 && k < len(shape); k++ {
			out[6+k] += float64(shape[k])
		}
	}
	return out
}

// Add returns the element-wise sum of two signatures; used when accumulating
// execution-block descriptors.
func (s Signature) Add(o Signature) Signature {
	var out Signature
	for i := range s {
		out[i] = s[i] + o[i]
	}
	return out
}

// IsControlFlow reports whether the signature is the all-zero dummy row used
// to mark a control statement in the AFM (§IV-A2).
func (s Signature) IsControlFlow() bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// ControlFlowRow is the dummy AFM row marking a control statement.
var ControlFlowRow = Signature{}
