package idiom

// This file defines the loop-nest kernel IR the idiom analyzer consumes. A
// kernel is a perfect loop nest over index variables with a body of
// assignment statements over indexed tensor accesses. The IR is rich enough
// to express the access patterns of the ~50 operators in the registry while
// staying trivially analyzable.

// Index is one subscript of a tensor access: a loop variable plus a constant
// offset (i, i+1, j-1, ...). An empty Var with zero Offset denotes a literal
// constant subscript.
type Index struct {
	Var    string
	Offset int
}

// Access is one tensor access. If IndirectVia is non-empty the access is
// subscripted through another tensor (B[C[i]] has Tensor "B", IndirectVia
// "C"), which is the defining feature of gather (read) and scatter (write).
type Access struct {
	Tensor      string
	Idx         []Index
	IndirectVia string
}

// Vars returns the subscript loop variables in order (empty strings skipped).
func (a Access) Vars() []string {
	var vs []string
	for _, ix := range a.Idx {
		if ix.Var != "" {
			vs = append(vs, ix.Var)
		}
	}
	return vs
}

// hasOffset reports whether any subscript carries a nonzero constant offset.
func (a Access) hasOffset() bool {
	for _, ix := range a.Idx {
		if ix.Offset != 0 {
			return true
		}
	}
	return false
}

// Stmt is one assignment in the loop body. Accum marks a compound assignment
// (lhs += rhs), the signature of a reduction when the LHS rank is lower than
// the loop depth.
type Stmt struct {
	LHS   Access
	Accum bool
	RHS   []Access
}

// Kernel is a named loop nest.
type Kernel struct {
	Name     string
	LoopVars []string
	Stmts    []Stmt
}

// A is a convenience constructor for a direct access A("X", "i", "j").
func A(tensor string, vars ...string) Access {
	acc := Access{Tensor: tensor}
	for _, v := range vars {
		acc.Idx = append(acc.Idx, Index{Var: v})
	}
	return acc
}

// AOff builds an access with explicit indices (offsets allowed).
func AOff(tensor string, idx ...Index) Access {
	return Access{Tensor: tensor, Idx: idx}
}

// AVia builds an indirect access: tensor subscripted through via.
func AVia(tensor, via string, vars ...string) Access {
	acc := A(tensor, vars...)
	acc.IndirectVia = via
	return acc
}
