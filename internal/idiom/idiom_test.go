package idiom

import (
	"testing"
	"testing/quick"
)

func TestAnalyzeEachIdiom(t *testing.T) {
	cases := []struct {
		name string
		k    Kernel
		want Idiom
	}{
		{"transpose", Kernel{LoopVars: []string{"i", "j"}, Stmts: []Stmt{
			{LHS: A("B", "i", "j"), RHS: []Access{A("A", "j", "i")}},
		}}, Transpose},
		{"gather", Kernel{LoopVars: []string{"i"}, Stmts: []Stmt{
			{LHS: A("B", "i"), RHS: []Access{AVia("A", "C", "i")}},
		}}, Gather},
		{"scatter", Kernel{LoopVars: []string{"i"}, Stmts: []Stmt{
			{LHS: AVia("B", "C", "i"), RHS: []Access{A("A", "i")}},
		}}, Scatter},
		{"reduction", Kernel{LoopVars: []string{"i"}, Stmts: []Stmt{
			{LHS: A("s"), Accum: true, RHS: []Access{A("A", "i")}},
		}}, Reduction},
		{"stream", Kernel{LoopVars: []string{"i"}, Stmts: []Stmt{
			{LHS: A("B", "i"), RHS: []Access{A("A", "i")}},
		}}, Stream},
		{"stencil", Kernel{LoopVars: []string{"i"}, Stmts: []Stmt{
			{LHS: A("B", "i"), RHS: []Access{AOff("A", Index{Var: "i", Offset: 1})}},
		}}, Stencil},
	}
	for _, c := range cases {
		counts := Analyze(c.k)
		if counts[c.want] != 1 {
			t.Errorf("%s: idiom %v count = %d, want 1 (counts %v)", c.name, c.want, counts[c.want], counts)
		}
	}
}

func TestAnalyzeMatmul(t *testing.T) {
	k, ok := Default.Kernel("matmul")
	if !ok {
		t.Fatal("matmul not registered")
	}
	counts := Analyze(k)
	if counts[Reduction] != 1 {
		t.Errorf("matmul reduction count = %d, want 1", counts[Reduction])
	}
	if counts[Gather] != 0 || counts[Scatter] != 0 {
		t.Errorf("matmul has spurious gather/scatter: %v", counts)
	}
}

func TestRegisteredSignatures(t *testing.T) {
	cases := map[string][6]float64{
		"add":            {0, 0, 0, 0, 1, 0},
		"transpose":      {1, 0, 0, 0, 0, 0},
		"embedding":      {0, 1, 0, 0, 0, 0},
		"embedding_grad": {0, 0, 1, 0, 0, 0},
		"sum":            {0, 0, 0, 1, 0, 0},
		"maxpool":        {0, 0, 0, 1, 0, 1},
		"softmax":        {0, 0, 0, 1, 1, 0},
		"layernorm":      {0, 0, 0, 2, 1, 0},
		"topk_gate":      {0, 1, 0, 1, 0, 0},
	}
	for name, want := range cases {
		sig := Default.MustSignature(name)
		got := sig.Counts()
		if got != want {
			t.Errorf("%s counts = %v, want %v", name, got, want)
		}
	}
}

func TestAliasesShareSignatures(t *testing.T) {
	// ReLU and Sigmoid are intentionally indistinguishable (§IV-A2).
	relu := Default.MustSignature("relu")
	sigmoid := Default.MustSignature("sigmoid")
	if relu != sigmoid {
		t.Error("relu and sigmoid must share a signature")
	}
	// But they have distinct global IDs (Fig 11 representation).
	r, _ := Default.GlobalID("relu")
	s, _ := Default.GlobalID("sigmoid")
	if r == s {
		t.Error("aliases must have distinct global IDs")
	}
}

func TestRouterOpsConcentrate(t *testing.T) {
	for i, name := range RouterOpNames {
		sig := Default.MustSignature(name)
		counts := sig.Counts()
		for j, c := range counts {
			if j == i && c < 16 {
				t.Errorf("%s column %d = %v, want large", name, j, c)
			}
			if j != i && c != 0 {
				t.Errorf("%s leaks into column %d: %v", name, j, c)
			}
		}
	}
}

func TestWithDims(t *testing.T) {
	sig := Default.MustSignature("matmul").WithDims([]int{3, 4}, []int{4, 5})
	if sig[6] != 7 || sig[7] != 9 || sig[8] != 0 {
		t.Errorf("dims = %v %v %v, want 7 9 0", sig[6], sig[7], sig[8])
	}
	// 4-D input only counts the first three dims.
	sig = Default.MustSignature("conv2d").WithDims([]int{2, 3, 4, 5})
	if sig[6] != 2 || sig[7] != 3 || sig[8] != 4 {
		t.Errorf("conv dims wrong: %v", sig[6:9])
	}
}

func TestSignatureAdd(t *testing.T) {
	a := Signature{1, 0, 0, 0, 0, 0, 2, 0, 0}
	b := Signature{0, 1, 0, 0, 0, 0, 3, 0, 0}
	c := a.Add(b)
	if c[0] != 1 || c[1] != 1 || c[6] != 5 {
		t.Errorf("Add wrong: %v", c)
	}
}

func TestControlFlowRow(t *testing.T) {
	if !ControlFlowRow.IsControlFlow() {
		t.Error("ControlFlowRow must be all zero")
	}
	if Default.MustSignature("matmul").IsControlFlow() {
		t.Error("matmul must not look like control flow")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register(Kernel{Name: "x", LoopVars: []string{"i"}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate registration")
		}
	}()
	r.Register(Kernel{Name: "x", LoopVars: []string{"i"}})
}

func TestRegistryUnknownOp(t *testing.T) {
	if _, ok := Default.Signature("no-such-op"); ok {
		t.Error("unknown op must not be found")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSignature must panic on unknown op")
		}
	}()
	Default.MustSignature("no-such-op")
}

func TestGlobalIDsDense(t *testing.T) {
	n := Default.NumOperators()
	seen := make([]bool, n)
	for _, name := range Default.Names() {
		id, ok := Default.GlobalID(name)
		if !ok || id < 0 || id >= n {
			t.Fatalf("bad global ID for %s: %d", name, id)
		}
		if seen[id] {
			t.Fatalf("duplicate global ID %d", id)
		}
		seen[id] = true
	}
}

func TestAnalyzeCountsNonNegative(t *testing.T) {
	f := func(accum bool, off int8) bool {
		k := Kernel{LoopVars: []string{"i", "j"}, Stmts: []Stmt{{
			LHS:   A("B", "i", "j"),
			Accum: accum,
			RHS:   []Access{AOff("A", Index{Var: "i", Offset: int(off % 3)}, Index{Var: "j"})},
		}}}
		for _, c := range Analyze(k) {
			if c < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
