package idiom

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps operator names to their kernel descriptions and (computed)
// idiom signatures. The paper observes that all ~300 common PyTorch operators
// decompose into the six idioms; here we register the operator set the model
// zoo emits, including aliases that share kernels (e.g. relu/sigmoid/tanh are
// all stream idioms and intentionally indistinguishable in the AFM, §IV-A2).
type Registry struct {
	mu      sync.RWMutex
	kernels map[string]Kernel
	sigs    map[string]Signature
	ids     map[string]int // global-ID representation for Fig 11
	ordered []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kernels: map[string]Kernel{},
		sigs:    map[string]Signature{},
		ids:     map[string]int{},
	}
}

// Register analyzes the kernel and stores its signature under k.Name.
// Registering the same name twice panics: operator identity must be stable.
func (r *Registry) Register(k Kernel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.kernels[k.Name]; dup {
		panic(fmt.Sprintf("idiom: duplicate operator %q", k.Name)) //dynnlint:ignore panicfree duplicate registration is a programmer error surfaced at package init
	}
	counts := Analyze(k)
	var sig Signature
	for i, c := range counts {
		sig[i] = float64(c)
	}
	r.kernels[k.Name] = k
	r.sigs[k.Name] = sig
	r.ids[k.Name] = len(r.ordered)
	r.ordered = append(r.ordered, k.Name)
}

// Alias registers name with the same kernel as existing. Aliases receive
// their own global ID (they are distinct operators under the global-ID
// representation of Fig 11) but identical idiom signatures.
func (r *Registry) Alias(name, existing string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.kernels[existing]
	if !ok {
		panic(fmt.Sprintf("idiom: alias target %q not registered", existing)) //dynnlint:ignore panicfree bad alias target is a programmer error surfaced at package init
	}
	if _, dup := r.kernels[name]; dup {
		panic(fmt.Sprintf("idiom: duplicate operator %q", name)) //dynnlint:ignore panicfree duplicate registration is a programmer error surfaced at package init
	}
	r.kernels[name] = k
	r.sigs[name] = r.sigs[existing]
	r.ids[name] = len(r.ordered)
	r.ordered = append(r.ordered, name)
}

// Signature returns the nine-element signature of an operator (dimension
// elements zero; fill with Signature.WithDims at graph-build time).
func (r *Registry) Signature(name string) (Signature, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sigs[name]
	return s, ok
}

// MustSignature is Signature but panics on unknown operators.
func (r *Registry) MustSignature(name string) Signature {
	s, ok := r.Signature(name)
	if !ok {
		panic(fmt.Sprintf("idiom: unknown operator %q", name))
	}
	return s
}

// GlobalID returns the unique integer ID of an operator, used by the
// global-ID baseline representation (Fig 11).
func (r *Registry) GlobalID(name string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.ids[name]
	return id, ok
}

// NumOperators returns the number of registered operator names.
func (r *Registry) NumOperators() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ordered)
}

// Names returns the registered operator names sorted alphabetically.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.ordered...)
	sort.Strings(out)
	return out
}

// Kernel returns the kernel description for an operator.
func (r *Registry) Kernel(name string) (Kernel, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.kernels[name]
	return k, ok
}

// Default is the global registry pre-populated with the operator set used by
// the model zoo.
var Default = NewRegistry()

func init() {
	reg := Default

	// --- dense linear algebra ---
	// matmul: C[i][j] += A[i][k] * B[k][j] — stream multiply feeding a
	// k-contraction (reduction).
	reg.Register(Kernel{
		Name:     "matmul",
		LoopVars: []string{"i", "j", "k"},
		Stmts: []Stmt{
			{LHS: A("C", "i", "j"), Accum: true, RHS: []Access{A("A", "i", "k"), A("B", "k", "j")}},
		},
	})
	reg.Alias("linear", "matmul")
	reg.Alias("matmul_grad_a", "matmul")
	reg.Alias("matmul_grad_b", "matmul")
	reg.Alias("attention_scores", "matmul")
	reg.Alias("attention_context", "matmul")

	// transpose: B[i][j] = A[j][i]
	reg.Register(Kernel{
		Name:     "transpose",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: A("B", "i", "j"), RHS: []Access{A("A", "j", "i")}},
		},
	})
	reg.Alias("permute", "transpose")

	// --- element-wise (stream) ---
	reg.Register(Kernel{
		Name:     "add",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: A("C", "i", "j"), RHS: []Access{A("A", "i", "j"), A("B", "i", "j")}},
		},
	})
	for _, alias := range []string{"mul", "bias_add", "relu", "sigmoid", "tanh",
		"leakyrelu", "gelu", "dropout", "scale", "residual_add", "mask",
		"elementwise_grad", "gate_mul", "copy", "cast"} {
		reg.Alias(alias, "add")
	}

	// --- reductions ---
	// sum: s[i] += A[i][j]
	reg.Register(Kernel{
		Name:     "sum",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: A("S", "i"), Accum: true, RHS: []Access{A("A", "i", "j")}},
		},
	})
	for _, alias := range []string{"mean", "max_reduce", "norm_stats", "mse_loss",
		"cross_entropy", "argmax"} {
		reg.Alias(alias, "sum")
	}

	// softmax: reduce then stream-normalize.
	reg.Register(Kernel{
		Name:     "softmax",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: A("M", "i"), Accum: true, RHS: []Access{A("A", "i", "j")}},
			{LHS: A("B", "i", "j"), RHS: []Access{A("A", "i", "j"), A("M", "i")}},
		},
	})
	reg.Alias("attention_softmax", "softmax")
	reg.Alias("softmax_grad", "softmax")

	// layernorm: stats reduction + stream normalization.
	reg.Register(Kernel{
		Name:     "layernorm",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: A("Mu", "i"), Accum: true, RHS: []Access{A("A", "i", "j")}},
			{LHS: A("Var", "i"), Accum: true, RHS: []Access{A("A", "i", "j")}},
			{LHS: A("B", "i", "j"), RHS: []Access{A("A", "i", "j"), A("Mu", "i")}},
		},
	})
	reg.Alias("batchnorm", "layernorm")
	reg.Alias("layernorm_grad", "layernorm")

	// --- gather / scatter ---
	// embedding lookup: E[i][j] = W[T[i]][j]
	reg.Register(Kernel{
		Name:     "embedding",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: A("E", "i", "j"), RHS: []Access{AVia("W", "T", "i", "j")}},
		},
	})
	reg.Alias("gather_rows", "embedding")
	reg.Alias("expert_combine", "embedding")
	reg.Alias("index_select", "embedding")

	// embedding gradient: W[T[i]][j] += G[i][j]
	reg.Register(Kernel{
		Name:     "embedding_grad",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: AVia("W", "T", "i", "j"), Accum: true, RHS: []Access{A("G", "i", "j")}},
		},
	})
	reg.Alias("scatter_add", "embedding_grad")
	reg.Alias("expert_dispatch", "embedding_grad")

	// MoE top-k gating: reduce scores then gather the chosen experts.
	reg.Register(Kernel{
		Name:     "topk_gate",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: A("Best", "i"), Accum: true, RHS: []Access{A("Scores", "i", "j")}},
			{LHS: A("Sel", "i"), RHS: []Access{AVia("Scores", "Best", "i")}},
		},
	})

	// --- stencils ---
	// conv2d expressed as a 3x1 neighbourhood accumulation per output point.
	reg.Register(Kernel{
		Name:     "conv2d",
		LoopVars: []string{"i", "j", "k"},
		Stmts: []Stmt{
			{LHS: A("B", "i", "j"), Accum: true, RHS: []Access{
				AOff("A", Index{Var: "i", Offset: -1}, Index{Var: "j"}),
				AOff("A", Index{Var: "i"}, Index{Var: "j"}),
				AOff("A", Index{Var: "i", Offset: 1}, Index{Var: "j"}),
			}},
		},
	})
	for _, alias := range []string{"conv1d", "conv2d_grad", "depthwise_conv",
		"conv_transpose", "upsample"} {
		reg.Alias(alias, "conv2d")
	}

	// pooling: neighbourhood reduction.
	reg.Register(Kernel{
		Name:     "maxpool",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: A("B", "i"), Accum: true, RHS: []Access{
				AOff("A", Index{Var: "i"}, Index{Var: "j", Offset: 1}),
			}},
		},
	})
	reg.Alias("avgpool", "maxpool")

	// --- recurrent cells: gate matmuls + stream gating ---
	reg.Register(Kernel{
		Name:     "lstm_cell",
		LoopVars: []string{"i", "j", "k"},
		Stmts: []Stmt{
			{LHS: A("G", "i", "j"), Accum: true, RHS: []Access{A("X", "i", "k"), A("W", "k", "j")}},
			{LHS: A("C", "i", "j"), RHS: []Access{A("G", "i", "j"), A("Cprev", "i", "j")}},
		},
	})
	reg.Alias("gru_cell", "lstm_cell")
	reg.Alias("lstm_cell_grad", "lstm_cell")
	reg.Alias("tree_compose", "lstm_cell")

	// --- optimizer updates (stream over weights + states) ---
	reg.Register(Kernel{
		Name:     "sgd_update",
		LoopVars: []string{"i"},
		Stmts: []Stmt{
			{LHS: A("W", "i"), RHS: []Access{A("W", "i"), A("G", "i")}},
		},
	})
	reg.Alias("adam_update", "sgd_update")

	// --- data movement / shape ops ---
	reg.Register(Kernel{
		Name:     "concat",
		LoopVars: []string{"i", "j"},
		Stmts: []Stmt{
			{LHS: A("C", "i", "j"), RHS: []Access{A("A", "i", "j")}},
		},
	})
	reg.Alias("split", "concat")
	reg.Alias("reshape", "concat")
	reg.Alias("slice", "concat")

	// --- AlphaFold evoformer specials ---
	// triangle multiplicative update: pair activations with a contraction.
	reg.Register(Kernel{
		Name:     "triangle_mult",
		LoopVars: []string{"i", "j", "k"},
		Stmts: []Stmt{
			{LHS: A("Z", "i", "j"), Accum: true, RHS: []Access{A("L", "i", "k"), A("R", "j", "k")}},
		},
	})
	// outer product mean: O[i][j] += M[s][i] * M[s][j] over sequences.
	reg.Register(Kernel{
		Name:     "outer_product_mean",
		LoopVars: []string{"s", "i", "j"},
		Stmts: []Stmt{
			{LHS: A("O", "i", "j"), Accum: true, RHS: []Access{A("M", "s", "i"), A("M", "s", "j")}},
		},
	})
}

// routerOccurrences is the idiom multiplicity of the router (control-flow
// metadata) operators: large enough that a router instance is clearly
// visible in a block's idiom sums next to ordinary operators.
const routerOccurrences = 48

// RouterOpNames lists the six router operators, one per idiom column, in
// idiom order. Router operators are emitted by DyNN branch arms as routing
// metadata; their idiom signatures concentrate on a single column, which
// makes control-flow decisions legible in execution-block descriptors.
var RouterOpNames = [NumIdioms]string{
	"router_transpose", "router_gather", "router_scatter",
	"router_reduction", "router_stream", "router_stencil",
}

func init() {
	stmtFor := func(id Idiom) Stmt {
		switch id {
		case Transpose:
			return Stmt{LHS: A("B", "i", "j"), RHS: []Access{A("A", "j", "i")}}
		case Gather:
			return Stmt{LHS: A("B", "i"), RHS: []Access{AVia("A", "C", "i")}}
		case Scatter:
			return Stmt{LHS: AVia("B", "C", "i"), RHS: []Access{A("A", "i")}}
		case Reduction:
			return Stmt{LHS: A("s"), Accum: true, RHS: []Access{A("A", "i")}}
		case Stream:
			return Stmt{LHS: A("B", "i"), RHS: []Access{A("A", "i")}}
		case Stencil:
			return Stmt{LHS: A("B", "i"), RHS: []Access{AOff("A", Index{Var: "i", Offset: 1})}}
		}
		panic("idiom: bad router idiom")
	}
	for id := Idiom(0); id < NumIdioms; id++ {
		stmts := make([]Stmt, routerOccurrences)
		for i := range stmts {
			stmts[i] = stmtFor(id)
		}
		Default.Register(Kernel{
			Name:     RouterOpNames[id],
			LoopVars: []string{"i", "j"},
			Stmts:    stmts,
		})
	}
}
