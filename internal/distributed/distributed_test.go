package distributed

import (
	"errors"
	"sync"
	"testing"

	"dynnoffload/internal/core"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
)

func TestRingAllReduce(t *testing.T) {
	link := gpusim.LinkSpec{BW: 10e9, LatencyNS: 1000}
	if RingAllReduceNS(link, 1<<30, 1) != 0 {
		t.Error("single GPU needs no all-reduce")
	}
	two := RingAllReduceNS(link, 1<<30, 2)
	four := RingAllReduceNS(link, 1<<30, 4)
	if two <= 0 || four <= two {
		t.Errorf("all-reduce times wrong: 2gpu=%d 4gpu=%d", two, four)
	}
	// Ring volume converges to 2x data; 4-GPU time < 2x the 2-GPU time.
	if four >= 2*two {
		t.Errorf("ring scaling wrong: %d vs %d", four, two)
	}
}

func TestRingAllReduceEdges(t *testing.T) {
	link := gpusim.LinkSpec{BW: 10e9, LatencyNS: 1000}
	// Degenerate group sizes: no ring, no time.
	for _, g := range []int{1, 0, -3} {
		if got := RingAllReduceNS(link, 1<<30, g); got != 0 {
			t.Errorf("gpus=%d: all-reduce = %d, want 0", g, got)
		}
	}
	// Zero bytes still pays the per-step link latency: 2(g-1) steps.
	for _, g := range []int{2, 4, 8} {
		want := int64(2*(g-1)) * link.LatencyNS
		if got := RingAllReduceNS(link, 0, g); got != want {
			t.Errorf("gpus=%d zero bytes: all-reduce = %d, want %d", g, got, want)
		}
	}
}

// bench is the shared cluster fixture: a Tree-CNN under memory pressure
// (its path peaks clear the double-buffer floor, so large paths genuinely
// migrate and produce host-link offload traffic), a trained pilot, and an
// example shard. Engines are built per cluster (the mis-prediction cache is
// per-GPU state).
type bench struct {
	exs  []*pilot.Example
	p    *pilot.Pilot
	plat gpusim.Platform
}

var (
	benchOnce sync.Once
	benchVal  bench
)

func testClusterBench(t *testing.T) *bench {
	t.Helper()
	benchOnce.Do(func() {
		m, err := dynn.ZooModel("Tree-CNN", 12, 42)
		if err != nil {
			panic(err)
		}
		base := gpusim.RTXPlatform()
		probe, err := pilot.NewModelContext(m, gpusim.NewCostModel(base), 0, 0)
		if err != nil {
			panic(err)
		}
		var maxPeak, maxOp int64
		for _, info := range probe.Paths {
			if b := info.Analysis.PeakResidentBytes(); b > maxPeak {
				maxPeak = b
			}
			if b := info.Analysis.MaxSingleOpBytes(); b > maxOp {
				maxOp = b
			}
		}
		budget := maxPeak / 2
		if floor := 9 * maxOp / 4; budget < floor {
			budget = floor
		}
		plat := base.WithMemory(budget)
		ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(plat), plat.GPU.MemBytes/2, 0)
		if err != nil {
			panic(err)
		}
		samples := dynn.GenerateSamples(33, 440, 8, 48)
		exs, err := pilot.BuildExamples(ctx, pilot.FeatureConfig{}, samples)
		if err != nil {
			panic(err)
		}
		p := pilot.New(pilot.Config{Neurons: 64, Epochs: 10, Seed: 2})
		p.Train(exs[:400])
		benchVal = bench{exs: exs[400:], p: p, plat: plat}
	})
	return &benchVal
}

func (b *bench) cluster(t *testing.T, gpus, workers int, gradBytes int64) *Cluster {
	t.Helper()
	engines := make([]*core.Engine, gpus)
	for i := range engines {
		engines[i] = core.NewEngine(core.DefaultConfig(b.plat), b.p)
	}
	topo := DefaultTopology(b.plat)
	topo.GPUsPerNode = 4
	c, err := New(Config{GPUs: gpus, Topology: topo, GradBytes: gradBytes, Workers: workers}, engines)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterEpochThroughputScales(t *testing.T) {
	b := testClusterBench(t)
	var prev *EpochReport
	for _, g := range []int{1, 2, 4} {
		rep, err := b.cluster(t, g, 2, 1<<20).TrainEpoch(b.exs)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Report.Samples != len(b.exs) {
			t.Fatalf("gpus=%d: %d samples, want %d", g, rep.Report.Samples, len(b.exs))
		}
		wantSteps := (len(b.exs) + g - 1) / g
		if rep.Steps != wantSteps {
			t.Errorf("gpus=%d: %d steps, want %d", g, rep.Steps, wantSteps)
		}
		var perGPU int
		for _, pg := range rep.PerGPU {
			perGPU += pg.Samples
		}
		if perGPU != rep.Report.Samples {
			t.Errorf("gpus=%d: per-GPU samples %d != total %d", g, perGPU, rep.Report.Samples)
		}
		if prev != nil {
			if rep.ThroughputPerSec <= prev.ThroughputPerSec {
				t.Errorf("throughput must grow with GPUs: %d gpus %.1f/s after %.1f/s",
					g, rep.ThroughputPerSec, prev.ThroughputPerSec)
			}
			if rep.MakespanNS >= prev.MakespanNS {
				t.Errorf("makespan must shrink with GPUs: %d gpus %dns after %dns",
					g, rep.MakespanNS, prev.MakespanNS)
			}
		}
		if g > 1 {
			if rep.AllReduceNS <= 0 {
				t.Errorf("gpus=%d: no exposed all-reduce time", g)
			}
			if rep.CommBytes <= 0 {
				t.Error("no gradient traffic recorded")
			}
		} else if rep.AllReduceNS != 0 || rep.CommBytes != 0 {
			t.Errorf("single GPU should not communicate: ar=%d bytes=%d", rep.AllReduceNS, rep.CommBytes)
		}
		if len(rep.Links) == 0 {
			t.Fatalf("gpus=%d: no link stats", g)
		}
		prev = rep
	}
}

// TestClusterCrossNodeLinkPressure: 8 GPUs on 4-GPU nodes push ring chunks
// through the shared per-node PCIe links; the same 8 GPUs on one node keep
// every hop on dedicated intra links. The cross-node epoch must expose more
// all-reduce time, and its host links must carry ring traffic on top of the
// offload traffic.
func TestClusterCrossNodeLinkPressure(t *testing.T) {
	b := testClusterBench(t)
	grad := int64(1 << 26)

	run := func(gpusPerNode int) *EpochReport {
		engines := make([]*core.Engine, 8)
		for i := range engines {
			engines[i] = core.NewEngine(core.DefaultConfig(b.plat), b.p)
		}
		topo := DefaultTopology(b.plat)
		topo.GPUsPerNode = gpusPerNode
		// NVLink-class intra links (the RTX platform's inter-GPU link is
		// itself PCIe, which would mask the fallback cost under test).
		topo.Intra = gpusim.LinkSpec{BW: 50e9, LatencyNS: 5_000}
		c, err := New(Config{GPUs: 8, Topology: topo, GradBytes: grad, Workers: 2}, engines)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.TrainEpoch(b.exs[:32])
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	cross := run(4) // two nodes: GPUs 3 and 7 hop over PCIe
	intra := run(8) // one node: all hops on the fast links
	// Makespans are not directly comparable here: the single-node layout
	// funnels all eight GPUs' offload traffic through one host link, which
	// costs it elsewhere. The controlled comparison is ring exposure.
	if cross.AllReduceNS <= intra.AllReduceNS {
		t.Errorf("cross-node all-reduce %dns not slower than intra-node %dns",
			cross.AllReduceNS, intra.AllReduceNS)
	}
	// The cross-node host links carry both offload bytes and ring chunks:
	// more traffic than the intra-node host links, which carry offload only.
	hostBytes := func(rep *EpochReport) int64 {
		var sum int64
		for _, l := range rep.Links {
			if l.Name[:len("link/pcie")] == "link/pcie" {
				sum += l.Bytes
			}
		}
		return sum
	}
	if hostBytes(cross) <= hostBytes(intra) {
		t.Errorf("cross-node host links carry %d bytes, intra %d — ring traffic missing",
			hostBytes(cross), hostBytes(intra))
	}
}

func TestClusterErrors(t *testing.T) {
	b := testClusterBench(t)
	topo := DefaultTopology(b.plat)
	eng := core.NewEngine(core.DefaultConfig(b.plat), b.p)

	if _, err := New(Config{GPUs: 0, Topology: topo}, nil); !errors.Is(err, ErrBadCluster) {
		t.Errorf("zero GPUs: %v", err)
	}
	if _, err := New(Config{GPUs: 2, Topology: topo}, []*core.Engine{eng}); !errors.Is(err, ErrBadCluster) {
		t.Errorf("engine count mismatch: %v", err)
	}
	if _, err := New(Config{GPUs: 1, Topology: topo}, []*core.Engine{nil}); !errors.Is(err, ErrBadCluster) {
		t.Errorf("nil engine: %v", err)
	}
	if _, err := New(Config{GPUs: 1}, []*core.Engine{eng}); !errors.Is(err, ErrBadCluster) {
		t.Errorf("zero-bandwidth topology: %v", err)
	}

	// Empty epoch is not an error, just empty.
	c := b.cluster(t, 2, 1, 1<<20)
	rep, err := c.TrainEpoch(nil)
	if err != nil || rep.Report.Samples != 0 || rep.MakespanNS != 0 {
		t.Errorf("empty epoch: rep=%+v err=%v", rep, err)
	}
}
