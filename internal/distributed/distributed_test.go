package distributed

import (
	"testing"

	"dynnoffload/internal/gpusim"
)

func TestRingAllReduce(t *testing.T) {
	link := gpusim.LinkSpec{BW: 10e9, LatencyNS: 1000}
	if RingAllReduceNS(link, 1<<30, 1) != 0 {
		t.Error("single GPU needs no all-reduce")
	}
	two := RingAllReduceNS(link, 1<<30, 2)
	four := RingAllReduceNS(link, 1<<30, 4)
	if two <= 0 || four <= two {
		t.Errorf("all-reduce times wrong: 2gpu=%d 4gpu=%d", two, four)
	}
	// Ring volume converges to 2x data; 4-GPU time < 2x the 2-GPU time.
	if four >= 2*two {
		t.Errorf("ring scaling wrong: %d vs %d", four, two)
	}
}

func TestScaleThroughput(t *testing.T) {
	cfg := Config{
		Platform:    gpusim.A100Platform(),
		NumGPUs:     8,
		GradBytes:   1 << 28,
		PerGPUBatch: 20,
	}
	res, err := Scale(cfg, 50_000_000, 100_000, 10_000, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].ThroughputPerSec <= res[i-1].ThroughputPerSec {
			t.Errorf("throughput must grow with GPUs: %v", res)
		}
	}
	if res[0].ScalingEfficiency != 1 {
		t.Errorf("base efficiency = %v", res[0].ScalingEfficiency)
	}
	// Efficiency declines with scale (communication) but stays positive.
	if res[3].ScalingEfficiency >= res[1].ScalingEfficiency {
		t.Error("efficiency must decline beyond the node boundary")
	}
	// Offload overhead is scale-independent (paper's Fig 10 point).
	for _, r := range res {
		if r.OffloadOverheadNS != 100_000 {
			t.Errorf("overhead changed with scale: %d", r.OffloadOverheadNS)
		}
	}
}

func TestRingAllReduceEdges(t *testing.T) {
	link := gpusim.LinkSpec{BW: 10e9, LatencyNS: 1000}
	// Degenerate group sizes: no ring, no time.
	for _, g := range []int{1, 0, -3} {
		if got := RingAllReduceNS(link, 1<<30, g); got != 0 {
			t.Errorf("gpus=%d: all-reduce = %d, want 0", g, got)
		}
	}
	// Zero bytes still pays the per-step link latency: 2(g-1) steps.
	for _, g := range []int{2, 4, 8} {
		want := int64(2*(g-1)) * link.LatencyNS
		if got := RingAllReduceNS(link, 0, g); got != want {
			t.Errorf("gpus=%d zero bytes: all-reduce = %d, want %d", g, got, want)
		}
	}
}

// TestScaleCrossNodeLinkFallback: GPU counts beyond the platform's per-node
// GPU count leave the NVLink-class interconnect and fall back to the PCIe
// link, so the all-reduce at the first cross-node point is slower than ideal
// intra-node scaling would predict.
func TestScaleCrossNodeLinkFallback(t *testing.T) {
	plat := gpusim.A100Platform() // 4 GPUs per node
	cfg := Config{Platform: plat, NumGPUs: 16, GradBytes: 1 << 28, PerGPUBatch: 20}
	res, err := Scale(cfg, 50_000_000, 0, 0, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	intra4, cross8 := res[1].AllReduceNS, res[2].AllReduceNS
	if want := RingAllReduceNS(plat.InterGPU, cfg.GradBytes, 4); intra4 != want {
		t.Errorf("4-GPU all-reduce = %d, want intra-node %d", intra4, want)
	}
	if want := RingAllReduceNS(plat.Link, cfg.GradBytes, 8); cross8 != want {
		t.Errorf("8-GPU all-reduce = %d, want PCIe fallback %d", cross8, want)
	}
	// The PCIe fallback must actually cost more than staying on NVLink would.
	if onNVLink := RingAllReduceNS(plat.InterGPU, cfg.GradBytes, 8); cross8 <= onNVLink {
		t.Errorf("cross-node fallback %d not slower than NVLink %d", cross8, onNVLink)
	}
}

func TestScaleErrors(t *testing.T) {
	cfg := Config{Platform: gpusim.A100Platform(), NumGPUs: 4, GradBytes: 1, PerGPUBatch: 1}
	if _, err := Scale(cfg, 1, 0, 0, []int{8}); err == nil {
		t.Error("exceeding NumGPUs must error")
	}
	cfg.NumGPUs = 0
	if _, err := Scale(cfg, 1, 0, 0, []int{1}); err == nil {
		t.Error("zero GPUs must error")
	}
}
