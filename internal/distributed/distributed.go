// Package distributed models data-parallel multi-GPU training for the
// paper's Fig 10 scalability study: each GPU trains its own batch under
// DyNN-Offload, and gradients are synchronized per iteration with a ring
// all-reduce over the inter-GPU interconnect.
package distributed

import (
	"fmt"

	"dynnoffload/internal/gpusim"
)

// Config describes the data-parallel run.
type Config struct {
	Platform    gpusim.Platform
	NumGPUs     int
	GradBytes   int64 // gradient volume all-reduced per iteration
	PerGPUBatch int
}

// Result reports one scaling point.
type Result struct {
	NumGPUs            int
	IterNS             int64 // per-iteration wall time
	AllReduceNS        int64
	ThroughputPerSec   float64 // samples/second
	ScalingEfficiency  float64 // vs linear scaling from 1 GPU
	OffloadOverheadNS  int64   // pilot + mapping overhead (constant per GPU)
	MispredictOnDemand int64   // exposed on-demand time from mis-predictions
}

// RingAllReduceNS returns the time of a ring all-reduce of n bytes across g
// GPUs: 2(g-1)/g of the data crosses each link, plus per-step latency.
func RingAllReduceNS(link gpusim.LinkSpec, bytes int64, gpus int) int64 {
	if gpus <= 1 {
		return 0
	}
	steps := int64(2 * (gpus - 1))
	volume := float64(2*(gpus-1)) / float64(gpus) * float64(bytes)
	return int64(volume/link.BW*1e9) + steps*link.LatencyNS
}

// Scale evaluates throughput at each GPU count given the single-GPU
// per-iteration time (which already includes DyNN-Offload's overheads —
// Fig 10's observation is that those overheads stay constant with scale).
func Scale(cfg Config, singleGPUIterNS, overheadNS, onDemandNS int64, gpuCounts []int) ([]Result, error) {
	if cfg.NumGPUs <= 0 {
		return nil, fmt.Errorf("distributed: NumGPUs must be positive")
	}
	var out []Result
	var baseThroughput float64
	for _, g := range gpuCounts {
		if g <= 0 || g > cfg.NumGPUs {
			return nil, fmt.Errorf("distributed: %d GPUs out of range (max %d)", g, cfg.NumGPUs)
		}
		// Intra-node GPUs use the fast interconnect; crossing nodes (beyond
		// the per-node GPU count) falls back to the PCIe link.
		link := cfg.Platform.InterGPU
		if g > cfg.Platform.NumGPUs {
			link = cfg.Platform.Link
		}
		ar := RingAllReduceNS(link, cfg.GradBytes, g)
		iter := singleGPUIterNS + ar
		tput := float64(g*cfg.PerGPUBatch) / (float64(iter) / 1e9)
		r := Result{
			NumGPUs:            g,
			IterNS:             iter,
			AllReduceNS:        ar,
			ThroughputPerSec:   tput,
			OffloadOverheadNS:  overheadNS,
			MispredictOnDemand: onDemandNS,
		}
		if g == gpuCounts[0] {
			baseThroughput = tput / float64(g)
		}
		r.ScalingEfficiency = tput / (baseThroughput * float64(g))
		out = append(out, r)
	}
	return out, nil
}
