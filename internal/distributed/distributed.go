// Package distributed is the cluster DES runtime behind the paper's Fig 10
// scalability study: N offload engines, one per simulated GPU, advance on a
// shared virtual clock and synchronize gradients with a ring all-reduce whose
// per-step sends are scheduled events on a modeled interconnect — dedicated
// intra-node links between ring neighbors, a shared per-node host/PCIe link
// for cross-node hops. Each GPU's layer-offload (H2D/D2H) traffic is booked
// on that same host link, so offload pressure and gradient communication
// contend for the wire on one timeline instead of being summed by a formula.
//
// The runtime inherits the repo's determinism contract: GPUs are stepped in
// index order, links are busy-until resources on simulated nanoseconds, and
// every engine dispatch goes through the three-phase pipeline — identical
// (seed, config) inputs replay bit-identical cluster reports at any worker
// count, fault-free or faulted.
//
// RingAllReduceNS, the paper's closed form, is kept as an oracle: on an
// uncontended interconnect the scheduled ring agrees with it to integer
// rounding (see oracle_test.go), and under injected PCIe contention it is
// strictly slower — which is exactly what the closed form cannot express.
package distributed

import (
	"errors"
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/pilot"
)

// Topology describes the cluster wiring.
type Topology struct {
	// GPUsPerNode packs GPUs onto nodes; <= 0 puts every GPU on one node.
	GPUsPerNode int
	// Intra is the in-node point-to-point link spec (NVLink class).
	Intra gpusim.LinkSpec
	// Cross is the per-node shared host/PCIe link spec, used by cross-node
	// ring hops and by every GPU's offload traffic.
	Cross gpusim.LinkSpec
}

// DefaultTopology derives the wiring from a platform: the platform's
// inter-GPU link inside a node, its PCIe link across nodes.
func DefaultTopology(p gpusim.Platform) Topology {
	return Topology{GPUsPerNode: p.NumGPUs, Intra: p.InterGPU, Cross: p.Link}
}

// Config describes the cluster run.
type Config struct {
	// GPUs is the data-parallel width; one engine per GPU.
	GPUs int
	// Topology is the interconnect wiring; zero links error out — use
	// DefaultTopology for a platform-derived default.
	Topology Topology
	// GradBytes is the gradient volume all-reduced per step.
	GradBytes int64
	// Workers is the engine fan-out per dispatch; <= 0 means GOMAXPROCS.
	// Results are identical at any value.
	Workers int
	// Tracer, when non-nil, collects per-sample engine spans and per-link
	// allreduce/offload spans on the shared cluster clock. Build it with
	// obsv.WithAbsoluteTime — dispatches on different GPUs genuinely overlap.
	Tracer *obsv.Tracer
}

// Cluster is the assembled runtime.
type Cluster struct {
	cfg Config
	eng []*core.Engine
	ic  *gpusim.Interconnect
}

// ErrBadCluster covers invalid cluster configurations.
var ErrBadCluster = errors.New("distributed: invalid cluster config")

// New validates the config and wires the interconnect. engines must hold one
// engine per GPU; they carry per-GPU state (the mis-prediction cache), so
// callers build them fresh per run for replayable results.
func New(cfg Config, engines []*core.Engine) (*Cluster, error) {
	if cfg.GPUs < 1 {
		return nil, fmt.Errorf("%w: GPUs = %d", ErrBadCluster, cfg.GPUs)
	}
	if len(engines) != cfg.GPUs {
		return nil, fmt.Errorf("%w: %d engines for %d GPUs", ErrBadCluster, len(engines), cfg.GPUs)
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("%w: engine %d is nil", ErrBadCluster, i)
		}
	}
	if cfg.Topology.Intra.BW <= 0 || cfg.Topology.Cross.BW <= 0 {
		return nil, fmt.Errorf("%w: topology needs positive link bandwidths", ErrBadCluster)
	}
	ic := gpusim.NewInterconnect(cfg.GPUs, cfg.Topology.GPUsPerNode, cfg.Topology.Intra, cfg.Topology.Cross)
	return &Cluster{cfg: cfg, eng: append([]*core.Engine(nil), engines...), ic: ic}, nil
}

// Interconnect exposes the wired links (tests and callers that pre-load
// contention).
func (c *Cluster) Interconnect() *gpusim.Interconnect { return c.ic }

// EpochReport is one cluster epoch's outcome.
type EpochReport struct {
	GPUs  int
	Steps int
	// Report merges every GPU's sample results (commutative sums, like the
	// single-engine epoch aggregate).
	Report core.EpochReport
	// PerGPU holds each GPU's own aggregate.
	PerGPU []core.EpochReport
	// MakespanNS is the shared-clock finish time of the slowest GPU.
	MakespanNS int64
	// AllReduceNS is the exposed all-reduce time summed over steps: how much
	// later the slowest GPU finished synchronization than it finished compute.
	AllReduceNS int64
	// CommBytes is the total gradient volume moved by ring sends.
	CommBytes int64
	// Links reports per-link traffic and utilization over the makespan.
	Links []gpusim.LinkStats
	// ThroughputPerSec is samples per simulated second across the cluster.
	ThroughputPerSec float64
	// Attribution decomposes the cluster's busy time into the serving
	// taxonomy's causes: per-sample device components summed over every GPU
	// (compute, exposed transfer, remat, fault) plus the epoch's exposed
	// all-reduce interference. This is the cluster-busy decomposition, not a
	// makespan decomposition — GPUs overlap on the shared clock.
	Attribution obsv.AttributionComponents
}

// TrainEpoch shards examples round-robin across the GPUs and runs the epoch
// as lock-stepped data-parallel steps on the shared clock: each GPU simulates
// its sample (its offload traffic booked on the node's host link), then the
// gradient ring all-reduce runs as scheduled per-step sends. A GPU's clock
// advances to the end of its last ring transfer; the next step's dispatch
// starts there.
func (c *Cluster) TrainEpoch(examples []*pilot.Example) (*EpochReport, error) {
	g := c.cfg.GPUs
	rep := &EpochReport{GPUs: g, PerGPU: make([]core.EpochReport, g)}
	n := len(examples)
	if n == 0 {
		return rep, nil
	}
	clock := make([]int64, g)
	ready := make([]int64, g)
	steps := (n + g - 1) / g
	rep.Steps = steps
	for step := 0; step < steps; step++ {
		copy(ready, clock)
		for k := 0; k < g; k++ {
			idx := step*g + k
			if idx >= n {
				continue
			}
			results, err := c.eng[k].RunBatch(examples[idx:idx+1], core.EpochOptions{
				Workers:     c.cfg.Workers,
				Tracer:      c.cfg.Tracer,
				TraceBase:   idx,
				ClockBaseNS: clock[k],
			})
			if err != nil {
				return nil, fmt.Errorf("distributed: gpu %d step %d: %w", k, step, err)
			}
			r := results[0]
			rep.Report.Add(r)
			rep.PerGPU[k].Add(r)
			// Only simulated device time advances the shared clock;
			// Breakdown.OverheadNS is host wall time (pilot inference, output
			// mapping) and would break replayability.
			device := r.Breakdown.TotalNS() - r.Breakdown.OverheadNS
			rdy := clock[k] + device
			// Book the sample's offload traffic on the node's shared host
			// link. Its lane time fits inside the device window, so the only
			// feedback is genuine contention: if another GPU's traffic (or a
			// cross-node ring send) holds the wire, this GPU's step completes
			// later by the queuing delay.
			xferNS := r.Breakdown.ExposedXferNS + r.Breakdown.OverlapXferNS
			xferBytes := r.Breakdown.H2DBytes + r.Breakdown.D2HBytes
			// Tag the sample's trace with the GPU that executed it, so
			// overlapping per-GPU work stays attributable on the shared
			// cluster clock (nil-safe with tracing off).
			st := c.cfg.Tracer.At(idx)
			st.SetReplica(k)
			if xferNS > 0 {
				host := c.ic.HostLink(k)
				start, _ := host.Book(clock[k], xferNS, xferBytes)
				rdy += start - clock[k]
				st.Span(obsv.SpanOffload, host.Name, -1, start-clock[k], xferNS, xferBytes)
			}
			ready[k] = rdy
		}
		done, moved := c.ringStep(ready, step, n)
		rep.CommBytes += moved
		var readyMax, doneMax int64
		for k := 0; k < g; k++ {
			clock[k] = done[k]
			if ready[k] > readyMax {
				readyMax = ready[k]
			}
			if done[k] > doneMax {
				doneMax = done[k]
			}
		}
		if d := doneMax - readyMax; d > 0 {
			rep.AllReduceNS += d
		}
	}
	for k := 0; k < g; k++ {
		if clock[k] > rep.MakespanNS {
			rep.MakespanNS = clock[k]
		}
	}
	for _, l := range c.ic.Links() {
		rep.Links = append(rep.Links, l.Stats(rep.MakespanNS))
	}
	if rep.MakespanNS > 0 {
		rep.ThroughputPerSec = float64(rep.Report.Samples) / (float64(rep.MakespanNS) / 1e9)
	}
	bd := rep.Report.Breakdown
	rep.Attribution = obsv.AttributionComponents{
		ComputeNS:   bd.ComputeNS,
		ExposedNS:   bd.ExposedXferNS,
		RematNS:     bd.RematNS,
		FaultNS:     bd.FaultNS,
		AllReduceNS: rep.AllReduceNS,
	}
	return rep, nil
}

// ringStep schedules one gradient all-reduce on the interconnect and returns
// each GPU's synchronization-complete time plus the bytes moved. Trace spans
// land in a per-step slot past the sample indices (n + step).
func (c *Cluster) ringStep(ready []int64, step, n int) ([]int64, int64) {
	var st *obsv.SampleTrace
	if c.cfg.Tracer != nil && len(ready) > 1 {
		st = c.cfg.Tracer.Sample(n + step)
	}
	done, sends := simulateRing(c.ic, ready, c.cfg.GradBytes)
	var moved int64
	for _, s := range sends {
		moved += s.bytes
		if st != nil {
			st.Span(obsv.SpanAllReduce, s.link, s.ringStep, s.startNS, s.endNS-s.startNS, s.bytes)
		}
	}
	return done, moved
}

// ringSend is one scheduled hop of the ring.
type ringSend struct {
	from, to       int
	ringStep       int
	startNS, endNS int64
	bytes          int64
	link           string
}

// simulateRing plays a ring all-reduce of bytes across the interconnect's
// GPUs as discrete events: 2(g-1) steps, each GPU sending a 1/g chunk to its
// successor on its egress link. A GPU enters step s+1 once it has both sent
// and received its step-s chunks; sends are issued in GPU-index order, so
// contention on shared links resolves deterministically.
func simulateRing(ic *gpusim.Interconnect, ready []int64, bytes int64) ([]int64, []ringSend) {
	g := len(ready)
	done := append([]int64(nil), ready...)
	if g <= 1 {
		return done, nil
	}
	chunk := bytes / int64(g)
	if bytes > 0 && chunk < 1 {
		chunk = 1
	}
	steps := 2 * (g - 1)
	sendEnd := make([]int64, g)
	recvEnd := make([]int64, g)
	var sends []ringSend
	for s := 0; s < steps; s++ {
		for i := 0; i < g; i++ {
			dst := (i + 1) % g
			start, end := ic.Send(i, done[i], chunk)
			sendEnd[i] = end
			recvEnd[dst] = end
			sends = append(sends, ringSend{
				from: i, to: dst, ringStep: s,
				startNS: start, endNS: end, bytes: chunk,
				link: ic.Egress(i).Name,
			})
		}
		for i := 0; i < g; i++ {
			done[i] = sendEnd[i]
			if recvEnd[i] > done[i] {
				done[i] = recvEnd[i]
			}
		}
	}
	return done, sends
}

// SimulateRingAllReduce exposes the scheduled ring for oracle tests: it
// returns each GPU's completion time given per-GPU ready times.
func SimulateRingAllReduce(ic *gpusim.Interconnect, ready []int64, bytes int64) []int64 {
	done, _ := simulateRing(ic, ready, bytes)
	return done
}

// RingAllReduceNS is the paper's closed form for a ring all-reduce of n bytes
// across g GPUs on one uncontended link: 2(g-1)/g of the data crosses each
// link, plus per-step latency. Kept as the oracle the DES schedule is checked
// against — they agree to integer rounding when nothing else holds the links.
func RingAllReduceNS(link gpusim.LinkSpec, bytes int64, gpus int) int64 {
	if gpus <= 1 {
		return 0
	}
	steps := int64(2 * (gpus - 1))
	volume := float64(2*(gpus-1)) / float64(gpus) * float64(bytes)
	return int64(volume/link.BW*1e9) + steps*link.LatencyNS
}
