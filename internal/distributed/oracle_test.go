package distributed

import (
	"testing"

	"dynnoffload/internal/gpusim"
)

// TestRingOracleUncontended is the closed form's property test: on an
// uncontended interconnect (dedicated intra-node links, equal ready times)
// the DES-scheduled ring finishes within integer-rounding slack of
// RingAllReduceNS. The schedule truncates each of the 2(g-1) hop durations
// and splits bytes into floor(bytes/g) chunks, so the two can drift by at
// most a few nanoseconds per step — far inside one link latency.
func TestRingOracleUncontended(t *testing.T) {
	specs := []gpusim.LinkSpec{
		{BW: 50e9, LatencyNS: 5_000},
		{BW: 12.8e9, LatencyNS: 10_000},
		{BW: 1e9, LatencyNS: 100},
	}
	for _, spec := range specs {
		for _, g := range []int{2, 3, 4, 8} {
			for _, bytes := range []int64{1 << 16, 1 << 24, 1 << 28, 12345677} {
				// Everyone on one node: every egress link is dedicated.
				ic := gpusim.NewInterconnect(g, g, spec, spec)
				done := SimulateRingAllReduce(ic, make([]int64, g), bytes)
				var des int64
				for _, d := range done {
					if d > des {
						des = d
					}
				}
				want := RingAllReduceNS(spec, bytes, g)
				steps := int64(2 * (g - 1))
				slack := 4*steps + 4
				if diff := des - want; diff > slack || diff < -slack {
					t.Errorf("bw=%.1fGB/s g=%d bytes=%d: DES %dns vs formula %dns (|diff| > %dns)",
						spec.BW/1e9, g, bytes, des, want, slack)
				}
			}
		}
	}
}

// TestRingOracleSkewedReady: with skewed per-GPU ready times the schedule
// can't beat the straggler's formula time — the ring gates on the last
// entrant — and finishes no later than straggler + formula + slack on
// uncontended links.
func TestRingOracleSkewedReady(t *testing.T) {
	spec := gpusim.LinkSpec{BW: 12.8e9, LatencyNS: 10_000}
	g, bytes := 4, int64(1<<24)
	ready := []int64{0, 250_000, 1_000_000, 125_000}
	ic := gpusim.NewInterconnect(g, g, spec, spec)
	done := SimulateRingAllReduce(ic, ready, bytes)
	var des, straggler int64
	for i, d := range done {
		if d > des {
			des = d
		}
		if ready[i] > straggler {
			straggler = ready[i]
		}
	}
	want := RingAllReduceNS(spec, bytes, g)
	if des < straggler+want/2 {
		t.Errorf("DES %dns implausibly beats straggler %dns + ring", des, straggler)
	}
	if slack := int64(2*(g-1))*4 + 4; des > straggler+want+slack {
		t.Errorf("uncontended skewed ring %dns exceeds straggler %d + formula %d", des, straggler, want)
	}
}

// TestRingOracleContended: pre-loaded offload traffic on the host/PCIe links
// makes the scheduled ring strictly slower than the closed form — the
// contention the formula cannot express, and the reason the DES runtime
// exists.
func TestRingOracleContended(t *testing.T) {
	spec := gpusim.LinkSpec{BW: 12.8e9, LatencyNS: 10_000}
	g, bytes := 4, int64(1<<24)
	// One GPU per node: every ring hop crosses PCIe.
	ic := gpusim.NewInterconnect(g, 1, spec, spec)
	// Inject offload traffic holding GPU 0's host link.
	ic.HostLink(0).Transfer(0, 1<<24)
	done := SimulateRingAllReduce(ic, make([]int64, g), bytes)
	var des int64
	for _, d := range done {
		if d > des {
			des = d
		}
	}
	want := RingAllReduceNS(spec, bytes, g)
	if des <= want {
		t.Errorf("contended ring %dns not slower than closed form %dns", des, want)
	}
	// The injected transfer delays GPU 0's first send by its full duration.
	if minExtra := spec.TransferNS(1<<24) / 2; des < want+minExtra {
		t.Errorf("contended ring %dns barely above formula %dns; expected ≥ +%dns", des, want, minExtra)
	}
}
