package distributed

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dynnoffload/internal/core"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
)

// stripWall zeroes the report fields measured in host wall time (pilot
// inference and output-mapping latency) — the same projection the core
// determinism tests apply. Everything else in a cluster report is virtual
// time and must replay exactly.
func stripWall(rep *EpochReport) {
	clear := func(er *core.EpochReport) {
		er.PilotNS, er.MappingNS = 0, 0
		er.Breakdown.OverheadNS = 0
	}
	clear(&rep.Report)
	for i := range rep.PerGPU {
		clear(&rep.PerGPU[i])
	}
}

// TestClusterEpochDeterminism is the cluster runtime's acceptance property,
// mirroring serve/determinism_test.go: for a fixed (seed, config), the
// cluster epoch report — merged aggregates, per-GPU aggregates, link stats,
// and the shared-clock makespan — is bit-identical across repeated runs and
// at every worker count, with and without fault injection. Engines are
// rebuilt per run: the mis-prediction caches are part of the replayed state.
func TestClusterEpochDeterminism(t *testing.T) {
	b := testClusterBench(t)
	for _, fc := range []faults.Config{{}, {Seed: 41, Rate: 0.25}} {
		run := func(workers int) *EpochReport {
			engines := make([]*core.Engine, 4)
			for i := range engines {
				ecfg := core.DefaultConfig(b.plat)
				if fc.Rate > 0 {
					ecfg.Faults = faults.New(fc)
				}
				engines[i] = core.NewEngine(ecfg, b.p)
			}
			topo := DefaultTopology(b.plat)
			topo.GPUsPerNode = 2
			c, err := New(Config{GPUs: 4, Topology: topo, GradBytes: 1 << 22, Workers: workers}, engines)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.TrainEpoch(b.exs)
			if err != nil {
				t.Fatalf("rate=%v workers=%d: %v", fc.Rate, workers, err)
			}
			stripWall(rep)
			return rep
		}
		want := run(1)
		if again := run(1); !reflect.DeepEqual(want, again) {
			t.Errorf("rate=%v: repeated run diverged:\nwant %+v\ngot  %+v", fc.Rate, want, again)
		}
		for _, workers := range []int{2, 4, 8} {
			if got := run(workers); !reflect.DeepEqual(want, got) {
				t.Errorf("rate=%v workers=%d diverged:\nwant %+v\ngot  %+v", fc.Rate, workers, got, want)
			}
		}
	}
}

// TestClusterTraceDeterminism: the absolute-clock cluster trace — engine
// spans laid at each GPU's virtual clock plus allreduce/offload link spans —
// replays bit-identically across worker counts.
func TestClusterTraceDeterminism(t *testing.T) {
	b := testClusterBench(t)
	run := func(workers int) string {
		engines := make([]*core.Engine, 2)
		for i := range engines {
			engines[i] = core.NewEngine(core.DefaultConfig(b.plat), b.p)
		}
		tracer := obsv.NewTracer(obsv.WithAbsoluteTime())
		topo := DefaultTopology(b.plat)
		c, err := New(Config{GPUs: 2, Topology: topo, GradBytes: 1 << 20, Workers: workers, Tracer: tracer}, engines)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.TrainEpoch(b.exs[:12]); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, sp := range tracer.Spans() {
			fmt.Fprintf(&sb, "%d %s %s %d %d %d %d %d\n",
				sp.Sample, sp.Kind, sp.Lane, sp.Block, sp.StartNS, sp.DurNS, sp.Bytes, sp.Attempt)
		}
		return sb.String()
	}
	want := run(1)
	if !strings.Contains(want, string(obsv.SpanAllReduce)) {
		t.Fatal("trace has no allreduce spans")
	}
	if !strings.Contains(want, string(obsv.SpanOffload)) {
		t.Fatal("trace has no offload link spans")
	}
	for _, workers := range []int{4, 8} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: cluster trace diverged", workers)
		}
	}
}
