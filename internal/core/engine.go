// Package core is the DyNN-Offload runtime (§IV-E, §V): pilot-guided tensor
// prefetch over double-buffered GPU memory, an operator counter for CPU/GPU
// synchronization, evict-then-prefetch migration ordering, on-demand fallback
// on mis-prediction, and the mis-prediction cache that avoids repeated
// mis-predictions (§VI-H).
package core

import (
	"fmt"
	"strconv"
	"strings"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
)

// Config tunes the runtime.
type Config struct {
	Platform gpusim.Platform
	// HandleMispredictions enables the §IV-E mis-prediction cache: identical
	// pilot outputs that previously mis-predicted reuse the corrected blocks.
	HandleMispredictions bool
	// FaultLatencyNS is charged per execution block when a sample falls back
	// to on-demand fetching (the tensor-fault handler round trip).
	FaultLatencyNS int64
}

// DefaultConfig returns the runtime defaults for a platform.
func DefaultConfig(p gpusim.Platform) Config {
	return Config{Platform: p, HandleMispredictions: true, FaultLatencyNS: 25_000}
}

// Engine simulates DyNN training under DyNN-Offload.
type Engine struct {
	Cfg   Config
	CM    gpusim.CostModel
	Pilot *pilot.Pilot

	// mis-prediction cache: quantized pilot output -> corrected path key.
	cache map[string]string
}

// NewEngine builds a runtime around a trained pilot.
func NewEngine(cfg Config, p *pilot.Pilot) *Engine {
	return &Engine{Cfg: cfg, CM: gpusim.NewCostModel(cfg.Platform), Pilot: p, cache: map[string]string{}}
}

// SampleResult reports one simulated training iteration of one sample.
type SampleResult struct {
	Breakdown    gpusim.Breakdown
	Mispredicted bool
	CacheHit     bool
	PilotNS      int64
	MappingNS    int64
}

// EpochReport aggregates sample results.
type EpochReport struct {
	Breakdown      gpusim.Breakdown
	Samples        int
	Mispredictions int
	CacheHits      int
	PilotNS        int64
	MappingNS      int64
}

// outputKey quantizes a pilot output vector; near-identical outputs collide.
func outputKey(out []float64) string {
	var sb strings.Builder
	for _, v := range out {
		sb.WriteString(strconv.FormatInt(int64(v+0.5), 10))
		sb.WriteByte(',')
	}
	return sb.String()
}

// RunSample simulates one training iteration: pilot inference, output→path
// mapping, mis-prediction check, and double-buffered (or on-demand) execution
// of the sample's ground-truth iteration.
func (e *Engine) RunSample(ex *pilot.Example) (SampleResult, error) {
	var res SampleResult

	resolution := e.Pilot.Resolve(ex)
	res.PilotNS = resolution.InferNS
	res.MappingNS = resolution.MapNS

	predKey := ""
	if resolution.Path != nil {
		predKey = resolution.Path.Key
	}
	// The §IV-E mis-prediction cache: when a pilot output does not match any
	// path's bookkeeping record exactly (the suspicious case) and an output
	// like it previously mis-predicted, reuse the recorded correct blocks.
	// Keying on the (matched path, inexact) pair is the noise-robust analog
	// of the paper's "if the two outputs are exactly the same".
	cacheKey := ""
	if e.Cfg.HandleMispredictions && !resolution.Exact && predKey != "" {
		cacheKey = predKey
		if corrected, ok := e.cache[cacheKey]; ok {
			predKey = corrected
			res.CacheHit = true
		}
	}

	truth := ex.Ctx.PathByKey(ex.TruthKey)
	if truth == nil {
		return res, fmt.Errorf("core: unknown truth path %q", ex.TruthKey)
	}
	if err := e.checkCapacity(truth); err != nil {
		return res, err
	}

	res.Mispredicted = predKey != ex.TruthKey
	if res.Mispredicted {
		// Record the corrected resolution for future identical outputs and
		// for the next offline pilot-training round.
		if cacheKey != "" {
			e.cache[cacheKey] = ex.TruthKey
		}
		res.Breakdown = e.simulateOnDemand(truth.Analysis, truth.Blocks)
	} else {
		res.Breakdown = e.simulatePipelined(truth.Analysis, truth.Blocks)
	}
	res.Breakdown.OverheadNS += res.PilotNS + res.MappingNS
	return res, nil
}

// checkCapacity enforces the offloading feasibility bound: all tensors must
// fit in CPU+GPU memory, and the largest single-operator working set must fit
// in the work buffer.
func (e *Engine) checkCapacity(info *pilot.PathInfo) error {
	total := info.Trace.TotalBytes()
	avail := e.Cfg.Platform.CPUMemBytes + e.Cfg.Platform.GPU.MemBytes
	if total > avail {
		return fmt.Errorf("core: model needs %d bytes, CPU+GPU have %d", total, avail)
	}
	if maxOp := info.Analysis.MaxSingleOpBytes(); maxOp > e.workBufferBytes() {
		return fmt.Errorf("core: op working set %d exceeds work buffer %d", maxOp, e.workBufferBytes())
	}
	return nil
}

// workBufferBytes is half of GPU memory: the double-buffer split (§IV-E,
// "GPU memory is partitioned into two equal-sized buffers").
func (e *Engine) workBufferBytes() int64 { return e.Cfg.Platform.GPU.MemBytes / 2 }

// RunEpoch simulates one epoch (one iteration per example) and aggregates.
func (e *Engine) RunEpoch(examples []*pilot.Example) (EpochReport, error) {
	var rep EpochReport
	for _, ex := range examples {
		r, err := e.RunSample(ex)
		if err != nil {
			return rep, err
		}
		rep.Breakdown = rep.Breakdown.Add(r.Breakdown)
		rep.Samples++
		if r.Mispredicted {
			rep.Mispredictions++
		}
		if r.CacheHit {
			rep.CacheHits++
		}
		rep.PilotNS += r.PilotNS
		rep.MappingNS += r.MappingNS
	}
	return rep, nil
}

// ResetCache clears the mis-prediction cache (between experiments).
func (e *Engine) ResetCache() { e.cache = map[string]string{} }

// CacheSize returns the number of recorded mis-prediction outputs.
func (e *Engine) CacheSize() int { return len(e.cache) }
