// Package core is the DyNN-Offload runtime (§IV-E, §V): pilot-guided tensor
// prefetch over double-buffered GPU memory, an operator counter for CPU/GPU
// synchronization, evict-then-prefetch migration ordering, on-demand fallback
// on mis-prediction, and the mis-prediction cache that avoids repeated
// mis-predictions (§VI-H).
package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"dynnoffload/internal/faults"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/pilot"
)

// Typed sentinel errors so callers can errors.Is instead of matching message
// strings.
var (
	// ErrPilotNotTrained is returned when the runtime is asked to execute a
	// sample without a trained pilot model. It wraps pilot.ErrNotTrained so
	// errors.Is matches against either sentinel.
	ErrPilotNotTrained = fmt.Errorf("core: pilot not trained: %w", pilot.ErrNotTrained)
	// ErrUnknownPath is returned when a sample's path key does not resolve
	// in its model context.
	ErrUnknownPath = errors.New("core: unknown resolution path")
	// ErrCapacityExceeded is returned when a path cannot run under the
	// platform's CPU+GPU memory or the double-buffer work budget.
	ErrCapacityExceeded = errors.New("core: capacity exceeded")
)

// Config tunes the runtime.
type Config struct {
	Platform gpusim.Platform
	// HandleMispredictions enables the §IV-E mis-prediction cache: identical
	// pilot outputs that previously mis-predicted reuse the corrected blocks.
	HandleMispredictions bool
	// ExactOutputKeys additionally keys the mis-prediction cache on the
	// quantized pilot output (the paper's literal "if the two outputs are
	// exactly the same"). Off by default: the matched-path key alone is the
	// noise-robust variant evaluated in §VI-H.
	ExactOutputKeys bool
	// FaultLatencyNS is charged per execution block when a sample falls back
	// to on-demand fetching (the tensor-fault handler round trip).
	FaultLatencyNS int64
	// Faults, when non-nil and enabled, injects deterministic transfer and
	// allocation faults into the simulated device; the engine recovers via
	// the Retry policy and the degradation ladder. Nil means fault-free.
	Faults *faults.Injector
	// Retry bounds the recovery ladder's re-issue loop. Zero fields take the
	// defaults in NewEngine.
	Retry RetryPolicy
	// ForceOnDemand routes every sample through the on-demand path,
	// regardless of prediction outcome — the FaultSweep baseline.
	ForceOnDemand bool
	// MemoizeSamples remembers the resolved path of every mis-predicted
	// sample by its sample ID, so a re-submitted identical request prefetches
	// the recorded path instead of repeating the mis-prediction — the online
	// analog of the §IV-E cache for serving, where the same request recurs
	// (the cache's output keys cannot help there when the pilot is
	// confidently wrong: an exact-but-wrong match never engages it). Off by
	// default: training epochs measure pilot quality, and a sample memo would
	// hide every mis-prediction after the first epoch.
	MemoizeSamples bool
	// Plans, when non-nil, is a shared resolved-plan cache (L2): engines
	// built for different sweep grid points reuse each other's compiled
	// plans when path signature, context fingerprint, and GPU capacity
	// match. Each engine always keeps its own pointer-keyed L1 regardless.
	Plans *PlanCache
	// NoPlanCache disables plan compilation entirely: every sample re-walks
	// the analysis exactly as the pre-plan runtime did. Plans are pure
	// functions of their inputs, so this changes no result — it exists so
	// the equivalence property tests have a reference path to compare
	// against (and as an escape hatch).
	NoPlanCache bool
}

// RetryPolicy bounds retry-with-exponential-backoff: a faulted operation is
// re-issued at most MaxAttempts times in total, waiting BackoffNS of
// simulated time before the first retry and doubling each subsequent one.
// After the budget is exhausted the ladder degrades instead of failing:
// transfers fall back to a fault-blind blocking copy, allocations to
// evict-and-retry — ErrCapacityExceeded surfaces only when eviction cannot
// free enough space.
type RetryPolicy struct {
	MaxAttempts int
	BackoffNS   int64
}

// Default retry policy applied by NewEngine for zero fields.
const (
	DefaultRetryAttempts  = 4
	DefaultRetryBackoffNS = 2_000
)

// DefaultConfig returns the runtime defaults for a platform.
func DefaultConfig(p gpusim.Platform) Config {
	return Config{
		Platform:             p,
		HandleMispredictions: true,
		FaultLatencyNS:       25_000,
		Retry:                RetryPolicy{MaxAttempts: DefaultRetryAttempts, BackoffNS: DefaultRetryBackoffNS},
	}
}

// Engine simulates DyNN training under DyNN-Offload. The cost model and the
// trained pilot are read-only at run time, and the mis-prediction cache is
// sharded, so one Engine may execute many samples concurrently (RunSample
// from several goroutines, or ParallelRunEpoch).
type Engine struct {
	Cfg   Config
	CM    gpusim.CostModel
	Pilot *pilot.Pilot

	// mis-prediction cache: cache key -> corrected path key.
	cache *shardedCache
	// sample memo (Config.MemoizeSamples): sample ID -> resolved path key of
	// a previously executed mis-predicted request.
	memo *shardedCache
	// resolved-plan L1s (see plan.go): paths by PathInfo identity, custom
	// partitions by (analysis ID, partition digest).
	pathPlans planL1[*pilot.PathInfo]
	partPlans planL1[partPlanKey]
}

// NewEngine builds a runtime around a trained pilot.
func NewEngine(cfg Config, p *pilot.Pilot) *Engine {
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = DefaultRetryAttempts
	}
	if cfg.Retry.BackoffNS <= 0 {
		cfg.Retry.BackoffNS = DefaultRetryBackoffNS
	}
	return &Engine{
		Cfg: cfg, CM: gpusim.NewCostModel(cfg.Platform), Pilot: p,
		cache: newShardedCache(), memo: newShardedCache(),
	}
}

// SampleResult reports one simulated training iteration of one sample.
type SampleResult struct {
	Breakdown    gpusim.Breakdown
	Mispredicted bool
	CacheHit     bool
	PilotNS      int64
	MappingNS    int64
	// FaultCounters tallies injected faults and recovery work for this
	// sample (zero when injection is disabled).
	FaultCounters faults.Counters
}

// EpochReport aggregates sample results.
type EpochReport struct {
	Breakdown      gpusim.Breakdown
	Samples        int
	Mispredictions int
	CacheHits      int
	PilotNS        int64
	MappingNS      int64
	FaultCounters  faults.Counters
}

// Add folds one sample result into the report. All fields are commutative
// sums (Breakdown.Add takes a max only for the peak), so folding in any
// order yields the same report — what makes parallel aggregation exact.
func (rep *EpochReport) Add(r SampleResult) {
	rep.Breakdown = rep.Breakdown.Add(r.Breakdown)
	rep.Samples++
	if r.Mispredicted {
		rep.Mispredictions++
	}
	if r.CacheHit {
		rep.CacheHits++
	}
	rep.PilotNS += r.PilotNS
	rep.MappingNS += r.MappingNS
	rep.FaultCounters = rep.FaultCounters.Add(r.FaultCounters)
}

// outputKey quantizes a pilot output vector to the nearest integer per
// dimension; near-identical outputs collide. math.Round (not int64(v+0.5),
// which truncates negatives toward zero) keeps negative outputs on their own
// keys: -0.7 rounds to -1, not to the same bucket as +0.3.
func outputKey(out []float64) string {
	var sb strings.Builder
	for _, v := range out {
		sb.WriteString(strconv.FormatInt(int64(math.Round(v)), 10))
		sb.WriteByte(',')
	}
	return sb.String()
}

// decision is the cache-dependent part of one sample's execution: which path
// the runtime prefetches for, and whether that was a mis-prediction. It is
// computed serially in sample order so cache evolution — and therefore every
// epoch aggregate — is identical at any worker count.
type decision struct {
	truth        *pilot.PathInfo
	mispredicted bool
	cacheHit     bool
}

// decide consults and updates the mis-prediction cache for one resolved
// sample and validates capacity. It is the only stage of a sample's
// execution whose outcome depends on the samples before it.
func (e *Engine) decide(ex *pilot.Example, resolution *pilot.Resolution) (decision, error) {
	var d decision
	predKey := ""
	if resolution.Path != nil {
		predKey = resolution.Path.Key
	}
	// The §IV-E mis-prediction cache: when a pilot output does not match any
	// path's bookkeeping record exactly (the suspicious case) and an output
	// like it previously mis-predicted, reuse the recorded correct blocks.
	// Keying on the (matched path, inexact) pair is the noise-robust analog
	// of the paper's "if the two outputs are exactly the same"; Config.
	// ExactOutputKeys appends the quantized output for the literal variant.
	cacheKey := ""
	if e.Cfg.HandleMispredictions && !resolution.Exact && predKey != "" {
		cacheKey = predKey
		if e.Cfg.ExactOutputKeys {
			cacheKey = predKey + "|" + outputKey(resolution.Output)
		}
		if corrected, ok := e.cache.Lookup(cacheKey); ok {
			predKey = corrected
			d.cacheHit = true
		}
	}
	// The sample memo (serving): a request seen before reuses its recorded
	// resolution, overriding the pilot even on an exact-but-wrong match.
	memoKey := ""
	if e.Cfg.MemoizeSamples && ex.Sample != nil {
		memoKey = strconv.Itoa(ex.Sample.ID)
		if resolved, ok := e.memo.Lookup(memoKey); ok {
			predKey = resolved
			d.cacheHit = true
		}
	}

	d.truth = ex.Ctx.PathByKey(ex.TruthKey)
	if d.truth == nil {
		return d, fmt.Errorf("core: truth path %q: %w", ex.TruthKey, ErrUnknownPath)
	}
	if err := e.checkCapacity(d.truth); err != nil {
		return d, err
	}

	d.mispredicted = predKey != ex.TruthKey
	if d.mispredicted {
		if cacheKey != "" {
			// Record the corrected resolution for future identical outputs
			// and for the next offline pilot-training round.
			e.cache.Insert(cacheKey, ex.TruthKey)
		}
		if memoKey != "" {
			e.memo.Insert(memoKey, ex.TruthKey)
		}
	}
	return d, nil
}

// faultStream derives the sample's fault stream. The scope is the sample ID,
// not its epoch position, so a sample draws the same fault schedule on every
// run at any worker count — the determinism the acceptance bar requires.
// Returns nil (no injection) when faults are disabled.
func (e *Engine) faultStream(ex *pilot.Example) *faults.Stream {
	if !e.Cfg.Faults.Enabled() {
		return nil
	}
	var scope uint64
	if ex.Sample != nil {
		scope = uint64(ex.Sample.ID)
	}
	return e.Cfg.Faults.Stream(scope)
}

// simulate executes the decided sample: double-buffered prefetch on a correct
// prediction, on-demand fallback on a mis-prediction. Read-only on the
// engine; safe to run concurrently (each call gets its own fault stream and
// trace collector). The error is non-nil only when the degradation ladder is
// genuinely stuck (ErrCapacityExceeded) — never in fault-free runs.
func (e *Engine) simulate(d decision, fs *faults.Stream, st *obsv.SampleTrace) (gpusim.Breakdown, error) {
	var plan *ResolvedPlan
	if !e.Cfg.NoPlanCache {
		plan = e.planFor(d.truth)
	}
	if d.mispredicted || e.Cfg.ForceOnDemand {
		return e.simulateOnDemand(d.truth.Analysis, d.truth.Blocks, plan, fs, st), nil
	}
	return e.simulatePipelined(d.truth.Analysis, d.truth.Blocks, plan, fs, st)
}

// RunSample simulates one training iteration: pilot inference, output→path
// mapping, mis-prediction check, and double-buffered (or on-demand) execution
// of the sample's ground-truth iteration. Safe for concurrent use; note that
// under concurrency the cache interleaving (and so individual CacheHit flags)
// depends on scheduling — use ParallelRunEpoch for deterministic epoch
// aggregates.
func (e *Engine) RunSample(ex *pilot.Example) (SampleResult, error) {
	return e.RunSampleTraced(ex, nil)
}

// RunSampleTraced is RunSample with span tracing: the sample's pilot
// prediction, block prefetches, compute intervals, evictions, on-demand
// fetches, and fault retries are recorded into st on the simulated clock.
// A nil st disables tracing (all trace methods are nil-safe no-ops), so
// RunSample pays nothing for the instrumentation.
func (e *Engine) RunSampleTraced(ex *pilot.Example, st *obsv.SampleTrace) (SampleResult, error) {
	var res SampleResult
	if e.Pilot == nil {
		return res, ErrPilotNotTrained
	}

	resolution, err := e.Pilot.Resolve(ex)
	if err != nil {
		if errors.Is(err, pilot.ErrNotTrained) {
			return res, ErrPilotNotTrained
		}
		return res, fmt.Errorf("core: resolve: %w", err)
	}
	res.PilotNS = resolution.InferNS
	res.MappingNS = resolution.MapNS
	// Pilot inference and mapping run on the host in wall time, outside the
	// DES clocks — they trace as simulated-time instants (see SpanPilot).
	st.Instant(obsv.SpanPilot, res.PilotNS)
	st.Instant(obsv.SpanMapping, res.MappingNS)

	d, err := e.decide(ex, &resolution)
	if err != nil {
		return res, err
	}
	res.Mispredicted = d.mispredicted
	res.CacheHit = d.cacheHit
	st.Outcome(d.mispredicted, d.cacheHit)
	fs := e.faultStream(ex)
	res.Breakdown, err = e.simulate(d, fs, st)
	if err != nil {
		return res, err
	}
	res.FaultCounters = fs.Counters()
	res.Breakdown.OverheadNS += res.PilotNS + res.MappingNS
	return res, nil
}

// checkCapacity enforces the offloading feasibility bound: all tensors must
// fit in CPU+GPU memory, and the largest single-operator working set must fit
// in the work buffer.
func (e *Engine) checkCapacity(info *pilot.PathInfo) error {
	total := info.Analysis.TotalBytes()
	avail := e.Cfg.Platform.CPUMemBytes + e.Cfg.Platform.GPU.MemBytes
	if total > avail {
		return fmt.Errorf("core: model needs %d bytes, CPU+GPU have %d: %w", total, avail, ErrCapacityExceeded)
	}
	if maxOp := info.Analysis.MaxSingleOpBytes(); maxOp > e.workBufferBytes() {
		return fmt.Errorf("core: op working set %d exceeds work buffer %d: %w", maxOp, e.workBufferBytes(), ErrCapacityExceeded)
	}
	return nil
}

// workBufferBytes is half of GPU memory: the double-buffer split (§IV-E,
// "GPU memory is partitioned into two equal-sized buffers").
func (e *Engine) workBufferBytes() int64 { return e.Cfg.Platform.GPU.MemBytes / 2 }

// RunEpoch simulates one epoch (one iteration per example) serially and
// aggregates. ParallelRunEpoch produces the same report on any worker count.
func (e *Engine) RunEpoch(examples []*pilot.Example) (EpochReport, error) {
	var rep EpochReport
	for _, ex := range examples {
		r, err := e.RunSample(ex)
		if err != nil {
			return rep, err
		}
		rep.Add(r)
	}
	return rep, nil
}

// ResetCache clears the mis-prediction cache (between experiments).
func (e *Engine) ResetCache() { e.cache.Reset() }

// CacheSize returns the number of recorded mis-prediction outputs.
func (e *Engine) CacheSize() int { return e.cache.Len() }

// CacheStats reports mis-prediction cache hit/miss/insert counters since the
// last ResetCache.
func (e *Engine) CacheStats() CacheStats { return e.cache.Stats() }
