package core

import (
	"runtime"
	"sync"

	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/pilot"
)

// EpochOptions configures ParallelRunEpoch.
type EpochOptions struct {
	// Workers is the goroutine-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Recorder, when non-nil, receives per-phase timings ("pilot",
	// "mapping", "simulate") and per-sample outcomes.
	Recorder *obsv.Recorder
	// Tracer, when non-nil, collects per-sample span traces on the simulated
	// clock. The resulting span set is bit-identical at any worker count
	// unless the tracer runs in wall mode.
	Tracer *obsv.Tracer
	// TraceBase offsets the tracer sample indices: sample i registers as
	// TraceBase+i. The serving layer uses it to give every request of a run a
	// distinct trace slot across many RunBatch dispatches; epochs leave it 0.
	TraceBase int
	// ClockBaseNS places the dispatch on an external shared virtual clock:
	// every simulated span is recorded at ClockBaseNS + its in-sample offset.
	// The cluster runtime uses it to lay per-GPU work on one timeline; pair
	// it with a tracer built with obsv.WithAbsoluteTime. 0 keeps the classic
	// per-sample-relative layout.
	ClockBaseNS int64
	// Pilots, when non-nil, overrides the engine pilot per sample: sample i
	// resolves through Pilots[i] when that entry is non-nil, falling back to
	// the engine pilot otherwise. The serving layer uses it to route each
	// request through its tenant's adapted pilot while the mis-prediction
	// cache and cost model stay shared. Must be nil or len(samples).
	Pilots []*pilot.Pilot
}

// pilotFor picks the resolving pilot for sample i under opts.
func (e *Engine) pilotFor(opts *EpochOptions, i int) *pilot.Pilot {
	if i < len(opts.Pilots) && opts.Pilots[i] != nil {
		return opts.Pilots[i]
	}
	return e.Pilot
}

// Observability phase names recorded by ParallelRunEpoch.
const (
	PhasePilot    = "pilot"
	PhaseMapping  = "mapping"
	PhaseSimulate = "simulate"
)

// ParallelRunEpoch simulates one epoch across a worker pool and produces an
// EpochReport identical to serial RunEpoch at any worker count.
//
// A sample's execution has exactly one order-dependent stage: the
// mis-prediction cache consult/update, whose outcome depends on which earlier
// samples already mis-predicted. So the epoch runs as a three-phase pipeline:
//
//  1. pilot resolution (inference + output→path mapping) fans out across
//     workers — read-only on the pilot and cost model;
//  2. a serial cache pass walks samples in their seeded order, replicating
//     the exact cache evolution of RunEpoch (lookups, inserts, capacity
//     checks, and the first-error cutoff);
//  3. block simulation fans out across workers again, streaming
//     SampleResults through a channel into an order-independent aggregation
//     (every EpochReport field is a commutative sum or max).
//
// Phases 1 and 3 carry all the per-sample compute; phase 2 is O(1) map work
// per sample.
func (e *Engine) ParallelRunEpoch(examples []*pilot.Example, opts EpochOptions) (EpochReport, error) {
	var rep EpochReport
	if e.Pilot == nil || !e.Pilot.Trained() {
		return rep, ErrPilotNotTrained
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(examples) && len(examples) > 0 {
		workers = len(examples)
	}
	if len(examples) == 0 {
		return rep, nil
	}
	rec := opts.Recorder

	// Phase 1: concurrent pilot resolution. Per-index errors are collected
	// and the lowest-index one wins below, matching serial order.
	resolutions := make([]pilot.Resolution, len(examples))
	resolveErrs := make([]error, len(examples))
	fanOut(len(examples), workers, func(i, _ int) {
		resolutions[i], resolveErrs[i] = e.pilotFor(&opts, i).Resolve(examples[i])
		if rec != nil && resolveErrs[i] == nil {
			rec.ObservePhase(PhasePilot, resolutions[i].InferNS)
			rec.ObservePhase(PhaseMapping, resolutions[i].MapNS)
		}
	})

	// Phase 2: serial, deterministic cache pass in seeded sample order. On
	// error, samples before the failing one still count — matching serial
	// RunEpoch, which aggregates up to the first error.
	decisions := make([]decision, len(examples))
	n := len(examples)
	var firstErr error
	for i, ex := range examples {
		if err := resolveErrs[i]; err != nil {
			n, firstErr = i, err
			break
		}
		d, err := e.decide(ex, &resolutions[i])
		if err != nil {
			n, firstErr = i, err
			break
		}
		decisions[i] = d
	}

	// Phase 3: concurrent simulation, streamed through a channel so
	// aggregation never waits on stragglers in index order. Each sample
	// derives its own fault stream scoped by sample ID, so the injected
	// schedule — and therefore every fault/retry counter — is identical at
	// any worker count. Simulation errors (capacity exhaustion on the
	// ladder's last rung, unreachable without injection) are collected
	// per-index; the lowest one wins, matching serial order.
	results := make(chan SampleResult, workers)
	simErrs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fanOut(n, workers, func(i, w int) {
			var res SampleResult
			res.PilotNS = resolutions[i].InferNS
			res.MappingNS = resolutions[i].MapNS
			res.Mispredicted = decisions[i].mispredicted
			res.CacheHit = decisions[i].cacheHit
			st := opts.Tracer.Sample(i)
			st.SetBase(opts.ClockBaseNS)
			st.SetWorker(w)
			st.StartWall()
			st.Instant(obsv.SpanPilot, res.PilotNS)
			st.Instant(obsv.SpanMapping, res.MappingNS)
			st.Outcome(res.Mispredicted, res.CacheHit)
			simSW := obsv.StartTimer()
			fs := e.faultStream(examples[i])
			var err error
			res.Breakdown, err = e.simulate(decisions[i], fs, st)
			st.StopWall()
			if err != nil {
				simErrs[i] = err
				return
			}
			res.FaultCounters = fs.Counters()
			res.Breakdown.OverheadNS += res.PilotNS + res.MappingNS
			if rec != nil {
				rec.ObservePhase(PhaseSimulate, simSW.ElapsedNS())
				rec.ObserveSample(i, res.Mispredicted, res.CacheHit, res.Breakdown.TotalNS())
				if fs != nil {
					rec.ObserveFaults(faultStats(fs.Counters()))
				}
			}
			results <- res
		})
		close(results)
	}()
	for res := range results {
		rep.Add(res)
	}
	wg.Wait()
	if firstErr == nil {
		for _, err := range simErrs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	return rep, firstErr
}

// faultStats mirrors injector counters into the obsv snapshot type (obsv
// stays dependency-free, so the conversion lives here).
func faultStats(c faults.Counters) obsv.FaultStats {
	return obsv.FaultStats{
		Injected:          c.Injected(),
		TransferStalls:    c.TransferStalls,
		TransferAborts:    c.TransferAborts,
		AllocFaults:       c.AllocFaults,
		PrefetchDrops:     c.PrefetchDrops,
		Retries:           c.Retries,
		BackoffNS:         c.BackoffNS,
		OnDemandFallbacks: c.OnDemandFallbacks,
		EvictRetries:      c.EvictRetries,
		SyncFallbacks:     c.SyncFallbacks,
	}
}

// fanOut runs fn(i, worker) for i in [0, n) across a pool of workers. The
// worker index is observability metadata only (trace tagging in wall mode);
// nothing deterministic may depend on it.
func fanOut(n, workers int, fn func(i, worker int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	idx := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				fn(i, w)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
