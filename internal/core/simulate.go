package core

import (
	"fmt"

	"dynnoffload/internal/faults"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/sentinel"
)

// xfer issues one transfer on a lane and climbs the recovery ladder on
// injected faults: bounded re-issues with exponential backoff on the DES
// clock, then a final fault-blind blocking copy that always completes.
// Returns the completion time; fault-free it is exactly Streams.Run, so the
// no-injection arithmetic is bit-identical to the pre-fault engine.
//
// When st is non-nil the transfer is traced: each aborted attempt becomes a
// retry span covering its wasted lane occupancy, and the completing issue a
// span of the given kind. Tracing is read-only on the DES clocks.
func (e *Engine) xfer(s *gpusim.Streams, lane gpusim.Lane, fs *faults.Stream, ready, dur int64,
	st *obsv.SampleTrace, kind obsv.SpanKind, block int, bytes int64) int64 {
	start, end, err := s.TrySpan(lane, ready, dur)
	backoff := e.Cfg.Retry.BackoffNS
	attempt := 1
	for ; err != nil && attempt < e.Cfg.Retry.MaxAttempts; attempt++ {
		st.Retry(lane.String(), block, start, end-start, bytes, attempt)
		fs.NoteRetry(backoff)
		start, end, err = s.TrySpan(lane, end+backoff, dur)
		backoff *= 2
	}
	if err != nil {
		// Retry budget exhausted: degrade to the blocking synchronous copy,
		// which never consults the injector and therefore always completes —
		// the property that keeps rate-1.0 runs terminating.
		st.Retry(lane.String(), block, start, end-start, bytes, attempt)
		fs.NoteSyncFallback()
		start, end = s.RunSpan(lane, end, dur)
	}
	st.Span(kind, lane.String(), block, start, end-start, bytes)
	return end
}

// simulatePipelined executes one iteration under the double-buffered prefetch
// schedule (§IV-E):
//
//   - block i's compute starts once its prefetch completed (the runtime
//     "waits for the completion of tensor migration and starts the
//     computation for the next execution block", §V);
//   - when the operator counter observes block i starting, the migration
//     engine first evicts block i-1's write-back set, then prefetches block
//     i+1 (evict-then-prefetch, serialized to avoid fragmentation);
//   - residency is materialized in a MemPool so the peak footprint and the
//     double-buffer invariant are measured, not assumed.
//
// With a fault stream attached, every transfer may stall or abort (recovered
// by xfer's retry ladder), every allocation may transiently fail (recovered
// by retry, then evict-and-retry), and a scheduled prefetch may be silently
// dropped — the block then fetches on demand at start, fully exposed, paying
// the tensor-fault handler round trip. Faults perturb timing and traffic
// only; the returned error is non-nil solely when eviction cannot free
// enough space (genuine capacity exhaustion).
// With a non-nil plan the same schedule executes from the compiled block
// tables instead (simulatePipelinedPlan); plan == nil is the reference path,
// kept verbatim so Config.NoPlanCache runs exactly the pre-plan arithmetic.
func (e *Engine) simulatePipelined(an *sentinel.Analysis, blocks []sentinel.Block, plan *ResolvedPlan, fs *faults.Stream, st *obsv.SampleTrace) (gpusim.Breakdown, error) {
	if plan != nil {
		return e.simulatePipelinedPlan(plan, fs, st)
	}
	var bd gpusim.Breakdown
	if len(blocks) == 0 {
		return bd, nil
	}

	// Fast path: the liveness peak fits on the GPU — no offloading needed;
	// tensors migrate in once (first iteration) and stay. No migrations means
	// nothing to inject against.
	if an.PeakResidentBytes() <= e.Cfg.Platform.GPU.MemBytes {
		bd.ComputeNS = an.TotalComputeNS()
		bd.PeakGPUBytes = an.PeakResidentBytes()
		if st != nil {
			var cursor int64
			for i := range blocks {
				c := an.ComputeNS(blocks[i])
				st.Span(obsv.SpanCompute, obsv.LaneCompute, i, cursor, c, 0)
				cursor += c
			}
		}
		return bd, nil
	}

	pool := gpusim.NewMemPool(e.Cfg.Platform.GPU.MemBytes)
	streams := gpusim.NewStreams(gpusim.WithFaultStream(fs))
	none := sentinel.Block{}

	// addAll makes ids resident, consulting the fault stream at each
	// allocation and climbing the ladder on failure: bounded retries with
	// exponential backoff, then a fault-blind attempt, then evict-and-retry,
	// and only when eviction cannot free enough space ErrCapacityExceeded.
	// Returns the migration clock advanced by backoff waits and eviction
	// transfers. Fault-free it reduces to the plain residency update with
	// unchanged timing.
	addAll := func(ids []int64, ready int64, block int) (int64, error) {
		for _, id := range ids {
			bytes := an.BytesOf(id)
			if fs.Alloc() {
				// Transient allocator pressure: wait it out on the DES clock.
				backoff := e.Cfg.Retry.BackoffNS
				for attempt := 1; attempt < e.Cfg.Retry.MaxAttempts; attempt++ {
					st.Retry(obsv.LaneHost, block, ready, backoff, 0, attempt)
					fs.NoteRetry(backoff)
					ready += backoff
					backoff *= 2
					if !fs.Alloc() {
						break
					}
				}
				// Whether or not the pressure cleared within the budget, the
				// attempt below is fault-blind: an injected transient failure
				// never blocks progress, only real capacity can.
			}
			err := pool.Add(id, bytes)
			if err == nil {
				continue
			}
			if fs == nil {
				// Pre-fault semantics: residency accounting only; a full
				// pool here indicates a partition bug (budget is validated
				// at partition time), not a runtime error.
				continue
			}
			// Evict-and-retry: write back LRU residents until the tensor
			// fits, charging the D2H traffic on the migration clock.
			need := bytes - pool.Free()
			var evicted int64
			for _, v := range pool.Victims(need, nil) {
				evicted += pool.Remove(v)
			}
			if evicted > 0 {
				bd.D2HBytes += evicted
				ready = e.xfer(streams, gpusim.LaneD2H, fs, ready, e.CM.BatchedXferTime(evicted),
					st, obsv.SpanEvict, block, evicted)
			}
			fs.NoteEvictRetry()
			if err := pool.Add(id, bytes); err != nil {
				return ready, fmt.Errorf("core: tensor %d (%d bytes) after evicting %d: %w",
					id, bytes, evicted, ErrCapacityExceeded)
			}
		}
		return ready, nil
	}
	dropAll := func(ids []int64) {
		for _, id := range ids {
			pool.Remove(id)
		}
	}

	// Initial prefetch of block 0 — inherently synchronous (compute cannot
	// start without it), so only stalls/aborts apply, not prefetch-drop.
	fetch0 := an.FetchBytes(blocks[0], none)
	mig := e.xfer(streams, gpusim.LaneH2D, fs, 0, e.CM.BatchedXferTime(fetch0),
		st, obsv.SpanPrefetch, 0, fetch0)
	bd.H2DBytes += fetch0
	var err error
	if mig, err = addAll(an.WorkingIDs(blocks[0]), mig, 0); err != nil {
		return bd, err
	}

	dropped := false // block i's prefetch was dropped; fetch on demand at start
	var droppedBytes int64
	computeEnd := int64(0)
	for i := range blocks {
		start := mig
		if computeEnd > start {
			start = computeEnd
		}
		if dropped {
			// Degradation ladder, prefetch-drop rung: the predicted block's
			// tensors are not resident at block start. Fetch on demand —
			// fully exposed on the critical path — and pay the tensor-fault
			// handler round trip, exactly like a mis-predicted sample would.
			start = e.xfer(streams, gpusim.LaneH2D, fs, start, e.CM.BatchedXferTime(droppedBytes),
				st, obsv.SpanOnDemand, i, droppedBytes)
			bd.H2DBytes += droppedBytes
			bd.FaultNS += e.Cfg.FaultLatencyNS
			bd.Faults++
			st.Span(obsv.SpanFault, obsv.LaneHost, i, start, e.Cfg.FaultLatencyNS, 0)
			fs.NoteOnDemandFallback()
			if start, err = addAll(an.WorkingIDs(blocks[i]), start, i); err != nil {
				return bd, err
			}
		}
		if start > computeEnd {
			bd.ExposedXferNS += start - computeEnd
		}

		// Operator counter fires at block start: retire block i-1's buffer
		// (write back live outputs, drop dead tensors), then prefetch block
		// i+1 into the freed migration buffer.
		if i+1 < len(blocks) {
			migStart := max64(mig, start)
			if i > 0 {
				evict := an.EvictBytes(blocks[i-1], blocks[i+1].Start)
				migStart = e.xfer(streams, gpusim.LaneD2H, fs, migStart, e.CM.BatchedXferTime(evict),
					st, obsv.SpanEvict, i-1, evict)
				bd.D2HBytes += evict
				dropAll(an.WorkingIDs(blocks[i-1]))
			}
			fetch := an.FetchBytes(blocks[i+1], blocks[i])
			if fs.PrefetchDrop() {
				// The prefetch is silently lost: no fetch charge now, the
				// block recovers on demand when it starts.
				dropped, droppedBytes = true, fetch
				mig = migStart
			} else {
				dropped = false
				mig = e.xfer(streams, gpusim.LaneH2D, fs, migStart, e.CM.BatchedXferTime(fetch),
					st, obsv.SpanPrefetch, i+1, fetch)
				bd.H2DBytes += fetch
				if mig, err = addAll(an.WorkingIDs(blocks[i+1]), mig, i+1); err != nil {
					return bd, err
				}
			}
		}

		blockCompute := an.ComputeNS(blocks[i])
		st.Span(obsv.SpanCompute, obsv.LaneCompute, i, start, blockCompute, 0)
		bd.ComputeNS += blockCompute
		computeEnd = start + blockCompute
	}

	// Trailing write-back of the final block's live outputs (updated weights
	// and optimizer state streaming home).
	finalEvict := an.EvictBytes(blocks[len(blocks)-1], an.NumOps())
	_ = finalEvict // weights remain CPU-resident copies; charged next fetch
	if mig > computeEnd {
		bd.ExposedXferNS += mig - computeEnd
	}

	bd.OverlapXferNS = e.CM.BatchedXferTime(bd.H2DBytes+bd.D2HBytes) - bd.ExposedXferNS
	if bd.OverlapXferNS < 0 {
		bd.OverlapXferNS = 0
	}
	bd.PeakGPUBytes = pool.Peak()
	return bd, nil
}

// simulateOnDemand models a mis-predicted sample: the prefetched tensors are
// wrong, so every block's migration is exposed on the critical path and each
// block pays the tensor-fault handler latency (§IV-E "fetching tensors on
// demand"). Injected faults stretch the exposed transfers (stall) or force
// re-issues with backoff (abort); the path is already fully on-demand, so
// prefetch-drop and allocation faults have nothing further to degrade.
func (e *Engine) simulateOnDemand(an *sentinel.Analysis, blocks []sentinel.Block, plan *ResolvedPlan, fs *faults.Stream, st *obsv.SampleTrace) gpusim.Breakdown {
	if plan != nil {
		return e.simulateOnDemandPlan(plan.Plan, fs, st)
	}
	var bd gpusim.Breakdown
	if an.PeakResidentBytes() <= e.Cfg.Platform.GPU.MemBytes {
		// Fits on GPU: the wrong prediction costs only the fault round trip.
		bd.ComputeNS = an.TotalComputeNS()
		bd.FaultNS = e.Cfg.FaultLatencyNS
		bd.Faults = 1
		bd.PeakGPUBytes = an.PeakResidentBytes()
		if st != nil {
			cursor := e.Cfg.FaultLatencyNS
			st.Span(obsv.SpanFault, obsv.LaneHost, 0, 0, cursor, 0)
			for i := range blocks {
				c := an.ComputeNS(blocks[i])
				st.Span(obsv.SpanCompute, obsv.LaneCompute, i, cursor, c, 0)
				cursor += c
			}
		}
		return bd
	}
	// The on-demand path is fully serial — every transfer is exposed on the
	// critical path — so spans lie on one advancing cursor rather than on
	// per-lane clocks.
	var cursor int64
	// xferNS is the exposed wall time of one on-demand transfer under the
	// retry ladder: a stall multiplies the duration, an abort wastes half
	// the duration plus a doubling backoff per re-issue, and the final rung
	// is the fault-blind blocking copy. Fault-free it returns dur unchanged.
	// Aborted attempts trace as retry spans, the completing issue as kind.
	xferNS := func(kind obsv.SpanKind, lane string, block int, bytes int64) int64 {
		dur := e.CM.BatchedXferTime(bytes)
		var total int64
		backoff := e.Cfg.Retry.BackoffNS
		for attempt := 0; ; attempt++ {
			f := fs.Transfer()
			if !f.Abort {
				d := dur * f.StallFactor
				st.Span(kind, lane, block, cursor+total, d, bytes)
				return total + d
			}
			st.Retry(lane, block, cursor+total, dur/2, bytes, attempt+1)
			total += dur / 2 // wasted mid-flight time
			if attempt+1 >= e.Cfg.Retry.MaxAttempts {
				fs.NoteSyncFallback()
				st.Span(kind, lane, block, cursor+total, dur, bytes)
				return total + dur
			}
			fs.NoteRetry(backoff)
			total += backoff
			backoff *= 2
		}
	}
	none := sentinel.Block{}
	prev := none
	var peak int64
	for i, b := range blocks {
		fetch := an.FetchBytes(b, prev)
		bd.H2DBytes += fetch
		d := xferNS(obsv.SpanOnDemand, obsv.LaneH2D, i, fetch)
		bd.ExposedXferNS += d
		cursor += d
		if i > 0 {
			evict := an.EvictBytes(blocks[i-1], b.Start)
			bd.D2HBytes += evict
			d = xferNS(obsv.SpanEvict, obsv.LaneD2H, i-1, evict)
			bd.ExposedXferNS += d
			cursor += d
		}
		bd.FaultNS += e.Cfg.FaultLatencyNS
		bd.Faults++
		st.Span(obsv.SpanFault, obsv.LaneHost, i, cursor, e.Cfg.FaultLatencyNS, 0)
		cursor += e.Cfg.FaultLatencyNS
		blockCompute := an.ComputeNS(b)
		st.Span(obsv.SpanCompute, obsv.LaneCompute, i, cursor, blockCompute, 0)
		cursor += blockCompute
		bd.ComputeNS += blockCompute
		if w := an.WorkingBytes(b); w > peak {
			peak = w
		}
		prev = b
	}
	bd.PeakGPUBytes = min64(2*peak, e.Cfg.Platform.GPU.MemBytes)
	return bd
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SimulatePartition exposes the pipelined double-buffer simulation for a
// given partition — used by the Fig 12 partition-quality study to execute
// the even-ops/even-time/even-bytes heuristics under identical runtime
// semantics. Always fault-free, so the error branch (capacity exhaustion
// during evict-and-retry, reachable only with injection) cannot fire.
// Repeated calls on one partition hit the engine's plan cache (keyed by
// analysis identity and partition digest), so sweeping iterations over a
// fixed partition costs one compilation, not one liveness walk per call.
func (e *Engine) SimulatePartition(an *sentinel.Analysis, blocks []sentinel.Block) gpusim.Breakdown {
	var plan *ResolvedPlan
	if !e.Cfg.NoPlanCache {
		plan = e.partitionPlan(an, blocks)
	}
	bd, _ := e.simulatePipelined(an, blocks, plan, nil, nil)
	return bd
}
