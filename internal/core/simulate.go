package core

import (
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/sentinel"
)

// simulatePipelined executes one iteration under the double-buffered prefetch
// schedule (§IV-E):
//
//   - block i's compute starts once its prefetch completed (the runtime
//     "waits for the completion of tensor migration and starts the
//     computation for the next execution block", §V);
//   - when the operator counter observes block i starting, the migration
//     engine first evicts block i-1's write-back set, then prefetches block
//     i+1 (evict-then-prefetch, serialized to avoid fragmentation);
//   - residency is materialized in a MemPool so the peak footprint and the
//     double-buffer invariant are measured, not assumed.
func (e *Engine) simulatePipelined(an *sentinel.Analysis, blocks []sentinel.Block) gpusim.Breakdown {
	var bd gpusim.Breakdown
	if len(blocks) == 0 {
		return bd
	}

	// Fast path: the liveness peak fits on the GPU — no offloading needed;
	// tensors migrate in once (first iteration) and stay.
	if an.PeakResidentBytes() <= e.Cfg.Platform.GPU.MemBytes {
		bd.ComputeNS = an.TotalComputeNS()
		bd.PeakGPUBytes = an.PeakResidentBytes()
		return bd
	}

	pool := gpusim.NewMemPool(e.Cfg.Platform.GPU.MemBytes)
	var streams gpusim.Streams
	none := sentinel.Block{}

	addAll := func(ids []int64) {
		for _, id := range ids {
			// Residency accounting; capacity violations here would indicate
			// a partition bug (budget is validated at partition time).
			_ = pool.Add(id, an.BytesOf(id))
		}
	}
	dropAll := func(ids []int64) {
		for _, id := range ids {
			pool.Remove(id)
		}
	}

	// Initial prefetch of block 0.
	fetch0 := an.FetchBytes(blocks[0], none)
	mig := streams.RunH2D(0, e.CM.BatchedXferTime(fetch0))
	bd.H2DBytes += fetch0
	addAll(an.WorkingIDs(blocks[0]))

	computeEnd := int64(0)
	for i := range blocks {
		start := mig
		if computeEnd > start {
			start = computeEnd
		}
		if start > computeEnd {
			bd.ExposedXferNS += start - computeEnd
		}

		// Operator counter fires at block start: retire block i-1's buffer
		// (write back live outputs, drop dead tensors), then prefetch block
		// i+1 into the freed migration buffer.
		if i+1 < len(blocks) {
			migStart := max64(mig, start)
			var dur int64
			if i > 0 {
				evict := an.EvictBytes(blocks[i-1], blocks[i+1].Start)
				dur += e.CM.BatchedXferTime(evict)
				bd.D2HBytes += evict
				dropAll(an.WorkingIDs(blocks[i-1]))
			}
			fetch := an.FetchBytes(blocks[i+1], blocks[i])
			dur += e.CM.BatchedXferTime(fetch)
			bd.H2DBytes += fetch
			addAll(an.WorkingIDs(blocks[i+1]))
			mig = migStart + dur
		}

		blockCompute := an.ComputeNS(blocks[i])
		bd.ComputeNS += blockCompute
		computeEnd = start + blockCompute
	}

	// Trailing write-back of the final block's live outputs (updated weights
	// and optimizer state streaming home).
	finalEvict := an.EvictBytes(blocks[len(blocks)-1], an.NumOps())
	_ = finalEvict // weights remain CPU-resident copies; charged next fetch
	if mig > computeEnd {
		bd.ExposedXferNS += mig - computeEnd
	}

	bd.OverlapXferNS = e.CM.BatchedXferTime(bd.H2DBytes+bd.D2HBytes) - bd.ExposedXferNS
	if bd.OverlapXferNS < 0 {
		bd.OverlapXferNS = 0
	}
	bd.PeakGPUBytes = pool.Peak()
	return bd
}

// simulateOnDemand models a mis-predicted sample: the prefetched tensors are
// wrong, so every block's migration is exposed on the critical path and each
// block pays the tensor-fault handler latency (§IV-E "fetching tensors on
// demand").
func (e *Engine) simulateOnDemand(an *sentinel.Analysis, blocks []sentinel.Block) gpusim.Breakdown {
	var bd gpusim.Breakdown
	if an.PeakResidentBytes() <= e.Cfg.Platform.GPU.MemBytes {
		// Fits on GPU: the wrong prediction costs only the fault round trip.
		bd.ComputeNS = an.TotalComputeNS()
		bd.FaultNS = e.Cfg.FaultLatencyNS
		bd.Faults = 1
		bd.PeakGPUBytes = an.PeakResidentBytes()
		return bd
	}
	none := sentinel.Block{}
	prev := none
	var peak int64
	for i, b := range blocks {
		fetch := an.FetchBytes(b, prev)
		bd.H2DBytes += fetch
		bd.ExposedXferNS += e.CM.BatchedXferTime(fetch)
		if i > 0 {
			evict := an.EvictBytes(blocks[i-1], b.Start)
			bd.D2HBytes += evict
			bd.ExposedXferNS += e.CM.BatchedXferTime(evict)
		}
		bd.FaultNS += e.Cfg.FaultLatencyNS
		bd.Faults++
		bd.ComputeNS += an.ComputeNS(b)
		if w := an.WorkingBytes(b); w > peak {
			peak = w
		}
		prev = b
	}
	bd.PeakGPUBytes = min64(2*peak, e.Cfg.Platform.GPU.MemBytes)
	return bd
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SimulatePartition exposes the pipelined double-buffer simulation for a
// given partition — used by the Fig 12 partition-quality study to execute
// the even-ops/even-time/even-bytes heuristics under identical runtime
// semantics.
func (e *Engine) SimulatePartition(an *sentinel.Analysis, blocks []sentinel.Block) gpusim.Breakdown {
	return e.simulatePipelined(an, blocks)
}
