package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
)

// simFields projects out every deterministic (virtual-time) field of a
// breakdown; OverheadNS is excluded because it folds in wall-clock-measured
// pilot latency.
func simFields(b gpusim.Breakdown) string {
	return fmt.Sprintf("compute=%d exposed=%d overlap=%d remat=%d fault=%d h2d=%d d2h=%d faults=%d peak=%d",
		b.ComputeNS, b.ExposedXferNS, b.OverlapXferNS, b.RematNS, b.FaultNS,
		b.H2DBytes, b.D2HBytes, b.Faults, b.PeakGPUBytes)
}

// TestParallelEpochDeterminism: ParallelRunEpoch must produce the same epoch
// aggregates as serial RunEpoch at any worker count — the sharded cache's
// serial decision pass keeps cache evolution order-independent of scheduling.
func TestParallelEpochDeterminism(t *testing.T) {
	_, test, p, plat := testBench(t)

	serial := NewEngine(DefaultConfig(plat), p)
	want, err := serial.RunEpoch(test)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 8} {
		eng := NewEngine(DefaultConfig(plat), p)
		got, err := eng.ParallelRunEpoch(test, EpochOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Samples != want.Samples ||
			got.Mispredictions != want.Mispredictions ||
			got.CacheHits != want.CacheHits {
			t.Errorf("workers=%d: counts diverge: got %d/%d/%d want %d/%d/%d",
				workers, got.Samples, got.Mispredictions, got.CacheHits,
				want.Samples, want.Mispredictions, want.CacheHits)
		}
		if g, w := simFields(got.Breakdown), simFields(want.Breakdown); g != w {
			t.Errorf("workers=%d: breakdown diverges:\ngot  %s\nwant %s", workers, g, w)
		}
		if eng.CacheSize() != serial.CacheSize() {
			t.Errorf("workers=%d: cache size %d, serial %d", workers, eng.CacheSize(), serial.CacheSize())
		}
	}
}

// TestParallelEpochRecorder checks the observability surface fed by the
// parallel runtime.
func TestParallelEpochRecorder(t *testing.T) {
	_, test, p, plat := testBench(t)
	eng := NewEngine(DefaultConfig(plat), p)
	rec := obsv.NewRecorder("core-test", 4, nil)
	rep, err := eng.ParallelRunEpoch(test, EpochOptions{Workers: 4, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	stats := rec.Finish()
	if stats.Samples != int64(rep.Samples) {
		t.Errorf("recorder samples %d != report %d", stats.Samples, rep.Samples)
	}
	if stats.Mispredicts != int64(rep.Mispredictions) || stats.CacheHits != int64(rep.CacheHits) {
		t.Errorf("recorder outcome counts diverge from report: %+v vs %+v", stats, rep)
	}
	for _, phase := range []string{PhasePilot, PhaseMapping, PhaseSimulate} {
		if stats.Phases[phase].Count != int64(rep.Samples) {
			t.Errorf("phase %s count = %d, want %d", phase, stats.Phases[phase].Count, rep.Samples)
		}
	}
	if stats.SamplesPerSec <= 0 {
		t.Error("no throughput derived")
	}
}

func TestParallelEpochRequiresPilot(t *testing.T) {
	_, test, _, plat := testBench(t)
	eng := NewEngine(DefaultConfig(plat), nil)
	if _, err := eng.ParallelRunEpoch(test, EpochOptions{}); !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("err = %v, want ErrPilotNotTrained", err)
	}
	if _, err := eng.RunSample(test[0]); !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("RunSample err = %v, want ErrPilotNotTrained", err)
	}
}

func TestParallelEpochEmpty(t *testing.T) {
	_, _, p, plat := testBench(t)
	eng := NewEngine(DefaultConfig(plat), p)
	rep, err := eng.ParallelRunEpoch(nil, EpochOptions{Workers: 8})
	if err != nil || rep.Samples != 0 {
		t.Errorf("empty epoch: %+v, %v", rep, err)
	}
}

// TestShardedCacheRace hammers the cache from 16 goroutines; run under
// `go test -race` this proves the striping sound.
func TestShardedCacheRace(t *testing.T) {
	c := newShardedCache()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("path-%d", i%37)
				if _, ok := c.Lookup(key); !ok {
					c.Insert(key, fmt.Sprintf("truth-%d-%d", g, i))
				}
				if i%97 == 0 {
					_ = c.Len()
					_ = c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries == 0 || st.Entries > 37 {
		t.Errorf("entries = %d, want 1..37", st.Entries)
	}
	if st.Hits+st.Misses != 16*500 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 16*500)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
	c.Reset()
	if s := c.Stats(); s.Entries != 0 || s.Hits != 0 || s.Misses != 0 || s.Inserts != 0 {
		t.Errorf("reset left state: %+v", s)
	}
}

// TestConcurrentRunSample: direct concurrent use of RunSample must be safe
// (individual cache-hit flags may vary with interleaving; totals must not
// corrupt).
func TestConcurrentRunSample(t *testing.T) {
	_, test, p, plat := testBench(t)
	eng := NewEngine(DefaultConfig(plat), p)
	var wg sync.WaitGroup
	errs := make(chan error, len(test))
	for i := range test {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := eng.RunSample(test[i]); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelEpochSpeedup checks that the worker pool actually buys wall
// clock on multi-core hosts. Skipped below 4 CPUs: goroutines time-slicing
// one core cannot beat a single worker, and the determinism tests above
// already cover correctness there.
func TestParallelEpochSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: need >=4 CPUs for a meaningful speedup check", runtime.GOMAXPROCS(0))
	}
	_, test, p, plat := testBench(t)

	epoch := func(workers int) time.Duration {
		eng := NewEngine(DefaultConfig(plat), p)
		t0 := time.Now()
		if _, err := eng.ParallelRunEpoch(test, EpochOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	epoch(1) // warm up allocator and branch predictors
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		serial := epoch(1)
		par := epoch(4)
		if s := float64(serial) / float64(par); s > best {
			best = s
		}
		if best >= 1.5 {
			return
		}
	}
	t.Errorf("4-worker epoch only %.2fx faster than 1 worker, want >=1.5x", best)
}

// TestOutputKeyNegative is the regression for the int64(v+0.5) truncation
// bug: negative outputs rounded toward zero, colliding with small positive
// outputs in the mis-prediction cache.
func TestOutputKeyNegative(t *testing.T) {
	if a, b := outputKey([]float64{-0.7}), outputKey([]float64{0.3}); a == b {
		t.Errorf("-0.7 and +0.3 must not share a key: %q", a)
	}
	if a, b := outputKey([]float64{-1.6}), outputKey([]float64{-0.6}); a == b {
		t.Errorf("-1.6 and -0.6 must not share a key: %q", a)
	}
	// Round-to-nearest still buckets noise around the same integer.
	if a, b := outputKey([]float64{-0.9, 2.1}), outputKey([]float64{-1.1, 1.8}); a != b {
		t.Errorf("near-identical outputs must collide: %q vs %q", a, b)
	}
}

// TestExactOutputKeys: the paper-literal cache keying must still converge —
// repeated identical outputs hit the cache.
func TestExactOutputKeys(t *testing.T) {
	_, test, p, plat := testBench(t)
	cfg := DefaultConfig(plat)
	cfg.ExactOutputKeys = true
	eng := NewEngine(cfg, p)
	rep, err := eng.RunEpoch(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mispredictions > 0 && eng.CacheSize() == 0 {
		t.Error("cache empty despite mispredictions")
	}
	// Determinism must hold in this mode too.
	eng2 := NewEngine(cfg, p)
	rep2, err := eng2.ParallelRunEpoch(test, EpochOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Mispredictions != rep.Mispredictions || rep2.CacheHits != rep.CacheHits {
		t.Errorf("exact-key mode diverges: %d/%d vs %d/%d",
			rep2.Mispredictions, rep2.CacheHits, rep.Mispredictions, rep.CacheHits)
	}
}
