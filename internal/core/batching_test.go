package core

import (
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
)

func TestDynamicBatchMergesByDepthAndKind(t *testing.T) {
	m := dynn.NewVarLSTM(dynn.VarLSTMConfig{Hidden: 32, Batch: 1, Seed: 4})
	samples := dynn.GenerateSamples(6, 12, 8, 40)
	ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(gpusim.RTXPlatform()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var infos []*pilot.PathInfo
	for _, s := range samples {
		info, err := ctx.TruthPath(s)
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info)
	}

	eng := NewEngine(DefaultConfig(gpusim.RTXPlatform()), nil)
	rep := eng.SimulateDynamicBatch(infos)
	if rep.Graphs != len(infos) {
		t.Errorf("graphs = %d", rep.Graphs)
	}
	// Batching must reduce launches and not increase total time.
	if rep.BatchedLaunches >= rep.SequentialOps {
		t.Errorf("no merging: %d launches for %d ops", rep.BatchedLaunches, rep.SequentialOps)
	}
	if rep.BatchedNS > rep.SequentialNS {
		t.Errorf("batched %d ns slower than sequential %d ns", rep.BatchedNS, rep.SequentialNS)
	}
}

func TestBatchedKernelTime(t *testing.T) {
	if BatchedKernelTimeNS(100, 20, 1) != 100 {
		t.Error("single instance must be unchanged")
	}
	k4 := BatchedKernelTimeNS(100, 20, 4)
	// Longer than one instance (paper: batched ops run longer), but cheaper
	// than four sequential launches... per-op interference keeps it below 4x
	// plus scheduling slack.
	if k4 <= 100 {
		t.Error("batched kernel must run longer than a single instance")
	}
	if k4 >= 4*100*2 {
		t.Error("batched kernel time unreasonably large")
	}
}
