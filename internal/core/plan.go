package core

import (
	"strconv"
	"sync"
	"sync/atomic"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
	"dynnoffload/internal/sentinel"
)

// This file is the resolved-plan cache — the DyCL-style generalization of
// Config.MemoizeSamples from exact sample identity to control-flow identity.
// Every sample whose dynamic path renders the same canonical signature
// (graph.PathSignature, carried on pilot.PathInfo) executes from one shared
// immutable ResolvedPlan: the per-block fetch/evict/working tables, the
// iteration aggregates, and the replayed residency peak. A plan is a pure
// function of the path, the model-context parameters, and the GPU capacity,
// so sharing one across samples, ParallelRunEpoch workers, engines, and
// sweep grid points cannot change any simulated result — it only removes the
// per-sample liveness walks and allocations from the hot path.
//
// Lookup is layered:
//
//   - L1, per engine: pointer-keyed maps (PathInfo identity; analysis ID +
//     partition digest for custom partitions) behind atomic.Pointer — reads
//     are lock-free, inserts copy-on-write under a mutex. ParallelRunEpoch
//     workers share hits without contending.
//   - L2, optional and shared (Config.Plans): the sharded PlanCache keyed by
//     PathInfo.PlanKey + GPU capacity, so ServeSweep/ClusterSweep engines
//     built per grid point amortize plan construction across the sweep.

// ResolvedPlan is one immutable compiled execution plan: the block query
// table plus the context-dependent values the simulator needs per sample.
type ResolvedPlan struct {
	// Plan is the per-block query table (read-only, shared).
	Plan *sentinel.BlockPlan
	// PipelinedPeakBytes is the fault-free double-buffer residency peak at
	// CapacityBytes, obtained by replaying the pipelined residency schedule
	// once against a real MemPool at plan-build time. It is capacity-
	// dependent (a full pool silently rejects adds on the fault-free path),
	// which is why plans are keyed per GPU capacity.
	PipelinedPeakBytes int64
	// CapacityBytes is the GPU capacity the peak was replayed at.
	CapacityBytes int64
}

// buildResolvedPlan compiles a plan for one (analysis, partition) pair at a
// GPU capacity.
func buildResolvedPlan(an *sentinel.Analysis, blocks []sentinel.Block, capacity int64) *ResolvedPlan {
	bp := sentinel.NewBlockPlan(an, blocks)
	rp := &ResolvedPlan{Plan: bp, CapacityBytes: capacity}
	if bp.PeakResidentBytes > capacity {
		rp.PipelinedPeakBytes = replayPipelinedPeak(bp, capacity)
	}
	return rp
}

// replayPipelinedPeak reproduces simulatePipelined's fault-free residency
// schedule — add block 0's working set, then per block retire i-1 and admit
// i+1, with over-capacity adds silently skipped — and returns the pool peak.
func replayPipelinedPeak(bp *sentinel.BlockPlan, capacity int64) int64 {
	pool := gpusim.AcquireMemPool(capacity)
	add := func(i int) {
		ids := bp.WorkingIDs[i]
		sizes := bp.WorkingIDBytes[i]
		for j, id := range ids {
			_ = pool.Add(id, sizes[j]) // full pool: fault-free path ignores it
		}
	}
	drop := func(i int) {
		for _, id := range bp.WorkingIDs[i] {
			pool.Remove(id)
		}
	}
	n := bp.NumBlocks()
	add(0)
	for i := 0; i < n; i++ {
		if i+1 < n {
			if i > 0 {
				drop(i - 1)
			}
			add(i + 1)
		}
	}
	peak := pool.Peak()
	gpusim.ReleaseMemPool(pool)
	return peak
}

// planShards stripes the shared cache; see cacheShards for the sizing
// rationale.
const planShards = 32

type planShard struct {
	mu sync.Mutex // serializes inserts; lookups never take it
	m  atomic.Pointer[map[string]*ResolvedPlan]
}

// PlanCache is the shared resolved-plan cache: sharded maps behind atomic
// pointers, so lookups are lock-free reads of immutable snapshots and
// inserts copy-on-write under a per-shard mutex. One PlanCache may back any
// number of engines concurrently.
type PlanCache struct {
	shards  [planShards]planShard
	hits    atomic.Int64
	misses  atomic.Int64
	inserts atomic.Int64
}

// NewPlanCache returns an empty shared plan cache.
func NewPlanCache() *PlanCache {
	c := &PlanCache{}
	empty := map[string]*ResolvedPlan{}
	for i := range c.shards {
		c.shards[i].m.Store(&empty)
	}
	return c
}

func (c *PlanCache) shardOf(key string) *planShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%planShards]
}

// Lookup returns the cached plan for a key. The read is lock-free.
func (c *PlanCache) Lookup(key string) (*ResolvedPlan, bool) {
	p, ok := (*c.shardOf(key).m.Load())[key]
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return p, ok
}

// Insert publishes a plan under a key and returns the cache's plan for that
// key — the existing entry if another goroutine published first (both built
// the same pure function of the key, so either is correct; keeping the first
// lets every caller converge on one shared pointer).
func (c *PlanCache) Insert(key string, plan *ResolvedPlan) *ResolvedPlan {
	s := c.shardOf(key)
	s.mu.Lock()
	old := *s.m.Load()
	if existing, ok := old[key]; ok {
		s.mu.Unlock()
		return existing
	}
	next := make(map[string]*ResolvedPlan, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = plan
	s.m.Store(&next)
	s.mu.Unlock()
	c.inserts.Add(1)
	return plan
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		n += len(*c.shards[i].m.Load())
	}
	return n
}

// PlanCacheStats reports shared-cache behavior since construction.
type PlanCacheStats struct {
	Hits    int64
	Misses  int64
	Inserts int64
	Entries int
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	return PlanCacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Inserts: c.inserts.Load(),
		Entries: c.Len(),
	}
}

// partPlanKey identifies a custom partition of one analysis — the
// SimulatePartition entry point, where callers bring their own blocks
// (partition-quality heuristics, the ZeRO baseline) rather than a PathInfo.
type partPlanKey struct {
	analysis uint64
	blocks   uint64
}

// planL1 is the engine-local pointer-keyed plan index: lock-free reads via
// atomic.Pointer snapshots, copy-on-write inserts under mu.
type planL1[K comparable] struct {
	mu sync.Mutex
	m  atomic.Pointer[map[K]*ResolvedPlan]
}

func (l *planL1[K]) lookup(k K) *ResolvedPlan {
	if m := l.m.Load(); m != nil {
		return (*m)[k]
	}
	return nil
}

// insert publishes k→plan, keeping an existing entry if one raced in first,
// and returns the map's plan for k.
func (l *planL1[K]) insert(k K, plan *ResolvedPlan) *ResolvedPlan {
	l.mu.Lock()
	var old map[K]*ResolvedPlan
	if p := l.m.Load(); p != nil {
		old = *p
	}
	if existing, ok := old[k]; ok {
		l.mu.Unlock()
		return existing
	}
	next := make(map[K]*ResolvedPlan, len(old)+1)
	for k2, v := range old {
		next[k2] = v
	}
	next[k] = plan
	l.m.Store(&next)
	l.mu.Unlock()
	return plan
}

// PlanCacheKey is the shared-cache (L2) key an engine with the given GPU
// capacity files info's resolved plan under, or "" when info carries no
// PlanKey (hand-built PathInfos, which cache per engine by pointer identity
// only). PathInfo.PlanKey is already a fixed-width 128-bit digest of the
// signature and context fingerprint, so the composed key stays ~50 bytes
// regardless of model depth — every L2 probe compares a short constant-size
// string instead of walking the full path signature. Exported so benchmarks
// and tools can probe or warm a PlanCache with the exact keys engines use.
func PlanCacheKey(info *pilot.PathInfo, capacityBytes int64) string {
	if info.PlanKey == "" {
		return ""
	}
	return info.PlanKey + "\x00cap:" + strconv.FormatInt(capacityBytes, 10)
}

// planFor resolves the plan for a path: engine L1 by PathInfo identity, then
// the shared L2 by PlanKey + capacity, building and publishing on a miss.
// Safe for concurrent use; concurrent misses build duplicate (identical)
// plans and converge on the first published.
func (e *Engine) planFor(info *pilot.PathInfo) *ResolvedPlan {
	if plan := e.pathPlans.lookup(info); plan != nil {
		return plan
	}
	capacity := e.Cfg.Platform.GPU.MemBytes
	key := ""
	var plan *ResolvedPlan
	if e.Cfg.Plans != nil {
		if key = PlanCacheKey(info, capacity); key != "" {
			plan, _ = e.Cfg.Plans.Lookup(key)
		}
	}
	if plan == nil {
		plan = buildResolvedPlan(info.Analysis, info.Blocks, capacity)
		if key != "" {
			plan = e.Cfg.Plans.Insert(key, plan)
		}
	}
	return e.pathPlans.insert(info, plan)
}

// partitionPlan resolves the plan for a caller-supplied partition, keyed by
// analysis identity and partition digest. Engine-local only: custom
// partitions have no canonical signature to share under.
func (e *Engine) partitionPlan(an *sentinel.Analysis, blocks []sentinel.Block) *ResolvedPlan {
	k := partPlanKey{analysis: an.ID(), blocks: sentinel.BlocksDigest(blocks)}
	if plan := e.partPlans.lookup(k); plan != nil {
		return plan
	}
	return e.partPlans.insert(k, buildResolvedPlan(an, blocks, e.Cfg.Platform.GPU.MemBytes))
}
