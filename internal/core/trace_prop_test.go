package core

import (
	"reflect"
	"testing"

	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
)

// traceSchedule runs one fresh-engine traced epoch and returns the canonical
// simulated-time span set.
func traceSchedule(t *testing.T, b *propBench, fc faults.Config, workers int) []obsv.Span {
	t.Helper()
	cfg := DefaultConfig(b.plat)
	if fc.Rate > 0 {
		cfg.Faults = faults.New(fc)
	}
	eng := NewEngine(cfg, b.p)
	tracer := obsv.NewTracer()
	if _, err := eng.ParallelRunEpoch(b.test, EpochOptions{Workers: workers, Tracer: tracer}); err != nil {
		t.Fatalf("%s: traced epoch %+v workers=%d: %v", b.name, fc, workers, err)
	}
	return tracer.Spans()
}

// TestTraceBitIdenticalAcrossWorkers pins the tracing determinism contract:
// the simulated-time span set — every field of every span, in order — is
// bit-identical at 1, 2, 4, and 8 workers, fault-free and under injection.
func TestTraceBitIdenticalAcrossWorkers(t *testing.T) {
	for _, b := range propModels(t) {
		for _, fc := range []faults.Config{{}, {Seed: 11, Rate: 0.2}} {
			ref := traceSchedule(t, b, fc, 1)
			if len(ref) == 0 {
				t.Fatalf("%s: %+v: empty span set — tracing is not exercising the engine", b.name, fc)
			}
			for _, workers := range []int{2, 4, 8} {
				got := traceSchedule(t, b, fc, workers)
				if !reflect.DeepEqual(got, ref) {
					i := 0
					for i < len(got) && i < len(ref) && got[i] == ref[i] {
						i++
					}
					t.Fatalf("%s: %+v: span set diverges at %d workers (len %d vs %d, first diff at span %d)",
						b.name, fc, workers, len(got), len(ref), i)
				}
			}
		}
	}
}

// computeKey identifies a compute span independent of its timeline position.
type computeKey struct {
	sample, block int
	durNS         int64
}

// TestFaultsAddRetrySpansPreserveCompute pins how injection shows up in a
// trace: faulted runs gain retry spans (absent fault-free), while the compute
// work itself — the multiset of per-(sample, block) compute durations — is
// identical to the fault-free trace. (Compute *start* times legitimately
// shift when a stalled prefetch delays its dependent block; the durations and
// the set of blocks computed never do.)
func TestFaultsAddRetrySpansPreserveCompute(t *testing.T) {
	computeSet := func(spans []obsv.Span) map[computeKey]int {
		set := map[computeKey]int{}
		for _, sp := range spans {
			if sp.Kind == obsv.SpanCompute {
				set[computeKey{sp.Sample, sp.Block, sp.DurNS}]++
			}
		}
		return set
	}
	countKind := func(spans []obsv.Span, kind obsv.SpanKind) int {
		n := 0
		for _, sp := range spans {
			if sp.Kind == kind {
				n++
			}
		}
		return n
	}
	var retries int
	for _, b := range propModels(t) {
		free := traceSchedule(t, b, faults.Config{}, 1)
		faulted := traceSchedule(t, b, faults.Config{Seed: 5, Rate: 0.3}, 1)
		if n := countKind(free, obsv.SpanRetry); n != 0 {
			t.Fatalf("%s: fault-free trace has %d retry spans", b.name, n)
		}
		retries += countKind(faulted, obsv.SpanRetry)
		freeSet, faultedSet := computeSet(free), computeSet(faulted)
		if !reflect.DeepEqual(freeSet, faultedSet) {
			t.Fatalf("%s: injection changed the compute-span multiset (%d vs %d distinct keys)",
				b.name, len(freeSet), len(faultedSet))
		}
	}
	if retries == 0 {
		t.Error("rate-0.3 schedules produced no retry spans across 5 models — the property is vacuous")
	}
}

// TestTraceMatchesEpochAggregates cross-checks the span set against the
// engine's own accounting on one model: summed compute-span durations equal
// the epoch's ComputeNS, and transfer-span bytes equal H2D+D2H traffic.
func TestTraceMatchesEpochAggregates(t *testing.T) {
	b := propModels(t)[0]
	cfg := DefaultConfig(b.plat)
	eng := NewEngine(cfg, b.p)
	tracer := obsv.NewTracer()
	rep, err := eng.ParallelRunEpoch(b.test, EpochOptions{Workers: 3, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	var computeNS, xferBytes int64
	for _, sp := range tracer.Spans() {
		switch {
		case sp.Kind == obsv.SpanCompute:
			computeNS += sp.DurNS
		case sp.Lane == obsv.LaneH2D || sp.Lane == obsv.LaneD2H:
			xferBytes += sp.Bytes
		}
	}
	if computeNS != rep.Breakdown.ComputeNS {
		t.Errorf("compute spans sum to %d ns, epoch reports %d", computeNS, rep.Breakdown.ComputeNS)
	}
	if want := rep.Breakdown.H2DBytes + rep.Breakdown.D2HBytes; xferBytes != want {
		t.Errorf("transfer spans carry %d bytes, epoch reports %d", xferBytes, want)
	}
	if n := tracer.SampleCount(); n != rep.Samples {
		t.Errorf("tracer holds %d samples, epoch reports %d", n, rep.Samples)
	}
}
