package core

import (
	"errors"
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
)

// testBench builds a small Tree-LSTM context under memory pressure plus a
// trained pilot.
func testBench(t *testing.T) (*pilot.ModelContext, []*pilot.Example, *pilot.Pilot, gpusim.Platform) {
	t.Helper()
	m := dynn.NewTreeLSTM(dynn.TreeLSTMConfig{Levels: 4, Hidden: 64, SeqLen: 8, Batch: 4, Seed: 5})
	base := gpusim.RTXPlatform()
	probe, err := pilot.NewModelContext(m, gpusim.NewCostModel(base), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var maxPeak, maxOp int64
	for _, info := range probe.Paths {
		if b := info.Analysis.PeakResidentBytes(); b > maxPeak {
			maxPeak = b
		}
		if b := info.Analysis.MaxSingleOpBytes(); b > maxOp {
			maxOp = b
		}
	}
	budget := maxPeak / 2
	if floor := 9 * maxOp / 4; budget < floor {
		budget = floor
	}
	plat := base.WithMemory(budget)
	ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(plat), plat.GPU.MemBytes/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	samples := dynn.GenerateSamples(21, 700, 8, 48)
	exs, err := pilot.BuildExamples(ctx, pilot.FeatureConfig{}, samples)
	if err != nil {
		t.Fatal(err)
	}
	p := pilot.New(pilot.Config{Neurons: 64, Epochs: 10, Seed: 2})
	p.Train(exs[:500])
	return ctx, exs[500:], p, plat
}

func TestEngineRunSample(t *testing.T) {
	_, test, p, plat := testBench(t)
	eng := NewEngine(DefaultConfig(plat), p)
	res, err := eng.RunSample(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.TotalNS() <= 0 {
		t.Error("zero simulated time")
	}
	if res.PilotNS <= 0 || res.MappingNS < 0 {
		t.Error("missing overhead measurements")
	}
	if res.Breakdown.OverheadNS < res.PilotNS {
		t.Error("overhead must include pilot inference")
	}
}

func TestEngineEpochAndMispredictions(t *testing.T) {
	_, test, p, plat := testBench(t)
	eng := NewEngine(DefaultConfig(plat), p)
	rep, err := eng.RunEpoch(test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != len(test) {
		t.Errorf("samples = %d", rep.Samples)
	}
	if rep.Mispredictions < 0 || rep.Mispredictions > rep.Samples {
		t.Errorf("mispredictions = %d", rep.Mispredictions)
	}
	if rep.Breakdown.ComputeNS <= 0 {
		t.Error("no compute simulated")
	}
}

func TestMispredictionCacheReduces(t *testing.T) {
	_, test, p, plat := testBench(t)

	cfgOff := DefaultConfig(plat)
	cfgOff.HandleMispredictions = false
	engOff := NewEngine(cfgOff, p)
	repOff, err := engOff.RunEpoch(test)
	if err != nil {
		t.Fatal(err)
	}

	engOn := NewEngine(DefaultConfig(plat), p)
	repOn, err := engOn.RunEpoch(test)
	if err != nil {
		t.Fatal(err)
	}
	if repOn.Mispredictions > repOff.Mispredictions {
		t.Errorf("handling increased mispredictions: %d > %d", repOn.Mispredictions, repOff.Mispredictions)
	}
	if repOff.Mispredictions > 0 && engOn.CacheSize() == 0 {
		t.Error("cache empty despite mispredictions")
	}
	engOn.ResetCache()
	if engOn.CacheSize() != 0 {
		t.Error("ResetCache failed")
	}
}

// TestMemoizeSamples: with the sample memo on, a re-submitted request that
// mis-predicted the first time resolves from the memo (no second
// mis-prediction); with the memo off (the default), the mis-prediction
// repeats.
func TestMemoizeSamples(t *testing.T) {
	_, test, p, plat := testBench(t)
	cfg := DefaultConfig(plat)
	cfg.HandleMispredictions = false // isolate the memo from the §IV-E cache
	cfg.MemoizeSamples = true
	eng := NewEngine(cfg, p)
	var ex *pilot.Example
	for _, cand := range test {
		res, err := eng.RunSample(cand)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mispredicted {
			ex = cand
			break
		}
	}
	if ex == nil {
		t.Skip("fixture produced no mis-prediction to memoize")
	}
	again, err := eng.RunSample(ex)
	if err != nil {
		t.Fatal(err)
	}
	if again.Mispredicted {
		t.Error("memoized re-submission still mis-predicted")
	}
	if !again.CacheHit {
		t.Error("memo resolution not flagged as a cache hit")
	}

	offCfg := DefaultConfig(plat)
	offCfg.HandleMispredictions = false
	off := NewEngine(offCfg, p)
	first, err := off.RunSample(ex)
	if err != nil {
		t.Fatal(err)
	}
	second, err := off.RunSample(ex)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Mispredicted || !second.Mispredicted {
		t.Error("memo off: the mis-prediction should repeat on re-submission")
	}
}

func TestPipelinedNoWorseThanOnDemand(t *testing.T) {
	ctx, _, _, plat := testBench(t)
	eng := NewEngine(DefaultConfig(plat), nil)
	for _, info := range ctx.Paths[:4] {
		pipe, err := eng.simulatePipelined(info.Analysis, info.Blocks, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		demand := eng.simulateOnDemand(info.Analysis, info.Blocks, nil, nil, nil)
		if pipe.TotalNS() > demand.TotalNS() {
			t.Errorf("pipelined %d > on-demand %d", pipe.TotalNS(), demand.TotalNS())
		}
		if pipe.ComputeNS != demand.ComputeNS {
			t.Errorf("compute differs: %d vs %d", pipe.ComputeNS, demand.ComputeNS)
		}
	}
}

func TestFastPathWhenFits(t *testing.T) {
	m := dynn.NewTreeLSTM(dynn.TreeLSTMConfig{Levels: 4, Hidden: 16, SeqLen: 8, Batch: 1, Seed: 5})
	plat := gpusim.RTXPlatform() // 23 GB: tiny model fits trivially
	ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(plat), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(DefaultConfig(plat), nil)
	info := ctx.Paths[0]
	bd := eng.SimulatePartition(info.Analysis, info.Blocks)
	if bd.ExposedXferNS != 0 || bd.H2DBytes != 0 {
		t.Error("in-memory model must not migrate")
	}
	if bd.ComputeNS != info.Analysis.TotalComputeNS() {
		t.Error("fast path compute mismatch")
	}
}

func TestCheckCapacityErrors(t *testing.T) {
	ctx, _, _, _ := testBench(t)
	tiny := gpusim.RTXPlatform().WithMemory(1024)
	tiny.CPUMemBytes = 2048
	eng := NewEngine(DefaultConfig(tiny), nil)
	if err := eng.checkCapacity(ctx.Paths[0]); err == nil {
		t.Error("tiny platform must fail capacity check")
	}
}

func TestOutputKeyStable(t *testing.T) {
	a := outputKey([]float64{1.2, 3.9, 0})
	b := outputKey([]float64{1.4, 3.6, 0.2})
	if a != b {
		t.Errorf("keys should quantize equal: %q vs %q", a, b)
	}
	c := outputKey([]float64{2.2, 3.9, 0})
	if a == c {
		t.Error("distinct outputs must have distinct keys")
	}
}

// TestUntrainedPilotSentinel checks the sentinel-error layering of the
// engine's pilot guard: an untrained (but non-nil) pilot fails with
// ErrPilotNotTrained, and because that sentinel wraps pilot.ErrNotTrained,
// errors.Is matches against either error family.
func TestUntrainedPilotSentinel(t *testing.T) {
	_, test, _, plat := testBench(t)
	untrained := pilot.New(pilot.Config{Neurons: 8})
	eng := NewEngine(DefaultConfig(plat), untrained)

	_, err := eng.RunSample(test[0])
	if !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("RunSample err = %v, want ErrPilotNotTrained", err)
	}
	if !errors.Is(err, pilot.ErrNotTrained) {
		t.Errorf("RunSample err = %v does not match pilot.ErrNotTrained", err)
	}

	_, err = eng.ParallelRunEpoch(test, EpochOptions{Workers: 4})
	if !errors.Is(err, ErrPilotNotTrained) || !errors.Is(err, pilot.ErrNotTrained) {
		t.Errorf("ParallelRunEpoch err = %v, want both not-trained sentinels", err)
	}

	_, err = eng.RunEpoch(test[:1])
	if !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("RunEpoch err = %v, want ErrPilotNotTrained", err)
	}
}
