package core

import (
	"dynnoffload/internal/graph"
	"dynnoffload/internal/pilot"
)

// This file implements dynamic batching (§IV-E "Impact of dynamic batching
// in DyNN"): training samples with different resolved dataflow graphs are
// batched by merging operators at the same depth with the same signature
// (TensorFlow-Fold-style depth batching [35]). The paper's two observations
// hold by construction here and are verified in tests:
//
//  1. batching does not change the execution order of each graph's
//     execution blocks, so pilot-guided prefetch remains valid;
//  2. batched operators run longer on the GPU, giving migration *more* room
//     to hide — batching does not compromise DyNN-Offload's effectiveness.

// BatchedOp is one merged operator: Count graphs execute an operator with
// this signature at this depth.
type BatchedOp struct {
	Name  string
	Depth int
	Count int
	// FLOPs and Bytes are the summed single-graph costs.
	FLOPs int64
	Bytes int64
}

// BatchInterference inflates the arithmetic portion of a batched kernel:
// the paper notes batched operators run longer due to extra cache misses
// from thread-block scheduling [77] and TLB misses [13].
const BatchInterference = 1.1

// DynamicBatch merges the resolved forward graphs of several samples by
// (depth, operator name) — operators of the same kind at the same depth
// fuse into one launch.
func DynamicBatch(graphs []*graph.Resolved) []BatchedOp {
	type key struct {
		depth int
		name  string
	}
	order := []key{}
	merged := map[key]*BatchedOp{}
	for _, g := range graphs {
		for depth, op := range g.Ops {
			k := key{depth, op.Name}
			b, ok := merged[k]
			if !ok {
				b = &BatchedOp{Name: op.Name, Depth: depth}
				merged[k] = b
				order = append(order, k)
			}
			b.Count++
			b.FLOPs += op.FLOPs
			b.Bytes += op.Bytes()
		}
	}
	out := make([]BatchedOp, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	return out
}

// BatchedKernelTimeNS models one batched launch: the kernel-launch overhead
// is paid once instead of count times (the benefit of batching), while the
// arithmetic runs count times with interference (the cost, §IV-E).
func BatchedKernelTimeNS(singleNS, launchNS int64, count int) int64 {
	if count <= 1 {
		return singleNS
	}
	arith := float64(singleNS-launchNS) * float64(count) * BatchInterference
	return launchNS + int64(arith)
}

// BatchingReport compares batched vs sequential execution of a set of
// samples' graphs under this engine's cost model.
type BatchingReport struct {
	Graphs          int
	SequentialOps   int
	BatchedLaunches int
	SequentialNS    int64
	BatchedNS       int64
}

// SimulateDynamicBatch evaluates the batching benefit for a set of samples
// of one model context (forward pass, which is where graphs differ).
func (e *Engine) SimulateDynamicBatch(infos []*pilot.PathInfo) BatchingReport {
	var rep BatchingReport
	rep.Graphs = len(infos)
	var graphs []*graph.Resolved
	for _, info := range infos {
		g := &graph.Resolved{Ops: info.Iteration.Forward}
		graphs = append(graphs, g)
		for _, op := range g.Ops {
			rep.SequentialOps++
			rep.SequentialNS += e.CM.OpTime(op)
		}
	}
	batched := DynamicBatch(graphs)
	rep.BatchedLaunches = len(batched)
	launch := e.CM.Dev.LaunchNS
	for _, b := range batched {
		single := e.CM.OpTime(&graph.Op{Name: b.Name, FLOPs: b.FLOPs / int64(b.Count)})
		rep.BatchedNS += BatchedKernelTimeNS(single, launch, b.Count)
	}
	return rep
}
