package core

import (
	"runtime"

	"dynnoffload/internal/obsv"
	"dynnoffload/internal/pilot"
)

// RunBatch is the batched dispatch entry point for the serving layer: it
// executes a set of samples as one dispatch group through the same
// three-phase pipeline as ParallelRunEpoch (concurrent pilot resolution, a
// serial cache pass in input order, concurrent simulation) but returns the
// per-sample results in input order instead of folding them into an epoch
// aggregate — a scheduler needs each request's own breakdown to account
// latency per tenant.
//
// The determinism contract carries over: for a fixed engine state and input
// order, the results (and the mis-prediction cache evolution they imprint on
// the engine) are bit-identical at any worker count, fault-free or faulted.
// Unlike ParallelRunEpoch, an error on any sample fails the whole batch —
// a dispatch either completes or it doesn't; partial batches would make the
// serving clock ambiguous.
func (e *Engine) RunBatch(exs []*pilot.Example, opts EpochOptions) ([]SampleResult, error) {
	if e.Pilot == nil || !e.Pilot.Trained() {
		return nil, ErrPilotNotTrained
	}
	if len(exs) == 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exs) {
		workers = len(exs)
	}
	rec := opts.Recorder

	// Phase 1: concurrent pilot resolution.
	resolutions := make([]pilot.Resolution, len(exs))
	resolveErrs := make([]error, len(exs))
	fanOut(len(exs), workers, func(i, _ int) {
		resolutions[i], resolveErrs[i] = e.pilotFor(&opts, i).Resolve(exs[i])
		if rec != nil && resolveErrs[i] == nil {
			rec.ObservePhase(PhasePilot, resolutions[i].InferNS)
			rec.ObservePhase(PhaseMapping, resolutions[i].MapNS)
		}
	})
	for _, err := range resolveErrs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: serial cache pass in input order — the only order-dependent
	// stage, exactly as in ParallelRunEpoch.
	decisions := make([]decision, len(exs))
	for i, ex := range exs {
		d, err := e.decide(ex, &resolutions[i])
		if err != nil {
			return nil, err
		}
		decisions[i] = d
	}

	// Phase 3: concurrent simulation into a per-index result slice.
	results := make([]SampleResult, len(exs))
	simErrs := make([]error, len(exs))
	fanOut(len(exs), workers, func(i, w int) {
		res := &results[i]
		res.PilotNS = resolutions[i].InferNS
		res.MappingNS = resolutions[i].MapNS
		res.Mispredicted = decisions[i].mispredicted
		res.CacheHit = decisions[i].cacheHit
		st := opts.Tracer.Sample(opts.TraceBase + i)
		st.SetBase(opts.ClockBaseNS)
		st.SetWorker(w)
		st.StartWall()
		st.Instant(obsv.SpanPilot, res.PilotNS)
		st.Instant(obsv.SpanMapping, res.MappingNS)
		st.Outcome(res.Mispredicted, res.CacheHit)
		simSW := obsv.StartTimer()
		fs := e.faultStream(exs[i])
		var err error
		res.Breakdown, err = e.simulate(decisions[i], fs, st)
		st.StopWall()
		if err != nil {
			simErrs[i] = err
			return
		}
		res.FaultCounters = fs.Counters()
		res.Breakdown.OverheadNS += res.PilotNS + res.MappingNS
		if rec != nil {
			rec.ObservePhase(PhaseSimulate, simSW.ElapsedNS())
			rec.ObserveSample(opts.TraceBase+i, res.Mispredicted, res.CacheHit, res.Breakdown.TotalNS())
			if fs != nil {
				rec.ObserveFaults(faultStats(fs.Counters()))
			}
		}
	})
	for _, err := range simErrs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
