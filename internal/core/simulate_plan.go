package core

import (
	"fmt"

	"dynnoffload/internal/faults"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/sentinel"
)

// This file is the plan-backed twin of simulate.go: the same double-buffered
// and on-demand schedules, executed from a compiled ResolvedPlan instead of
// re-walking the analysis per sample. Every byte count, clock update, trace
// span, and fault-stream consultation happens in the same order with the
// same values as the reference path — the plan arrays are exactly what the
// reference path would have computed — so results are bit-identical with the
// cache on or off, fault-free or faulted. The equivalence property tests
// (plan_prop_test.go) pin this.
//
// What the plan path does NOT do per sample: no MemPool construction
// (fault-free runs skip residency materialization entirely — the peak was
// replayed once at plan build; faulted runs acquire a pooled arena), no
// liveness walks, no map allocations. That is the difference between ~92µs
// and a few µs per simulated iteration.

// simulatePipelinedPlan executes one iteration under the double-buffered
// prefetch schedule from a compiled plan. See simulatePipelined for the
// schedule semantics; the structure below mirrors it line for line.
func (e *Engine) simulatePipelinedPlan(rp *ResolvedPlan, fs *faults.Stream, st *obsv.SampleTrace) (gpusim.Breakdown, error) {
	plan := rp.Plan
	var bd gpusim.Breakdown
	n := plan.NumBlocks()
	if n == 0 {
		return bd, nil
	}

	// Fast path: the liveness peak fits on the GPU — no offloading needed.
	if plan.PeakResidentBytes <= e.Cfg.Platform.GPU.MemBytes {
		bd.ComputeNS = plan.TotalComputeNS
		bd.PeakGPUBytes = plan.PeakResidentBytes
		if st != nil {
			var cursor int64
			for i := 0; i < n; i++ {
				c := plan.ComputeNS[i]
				st.Span(obsv.SpanCompute, obsv.LaneCompute, i, cursor, c, 0)
				cursor += c
			}
		}
		return bd, nil
	}

	// Fault-free samples need no residency materialization — the peak was
	// replayed at plan build — so the pool exists only under injection,
	// where evict-and-retry genuinely mutates residency. The Streams zero
	// value is the valid fault-free stream set, so it lives on the stack.
	var laneClocks gpusim.Streams
	streams := &laneClocks
	var pool *gpusim.MemPool
	if fs != nil {
		streams = gpusim.NewStreams(gpusim.WithFaultStream(fs))
		pool = gpusim.AcquireMemPool(e.Cfg.Platform.GPU.MemBytes)
		defer gpusim.ReleaseMemPool(pool)
	}

	// addAll/dropAll: identical to the reference path's ladder, reading
	// tensor sizes positionally from the plan instead of the analysis map.
	// Only called under injection (fault-free, the reference ladder is a
	// residency-only no-op with unchanged clocks).
	addAll := func(block int, ready int64) (int64, error) {
		ids := plan.WorkingIDs[block]
		sizes := plan.WorkingIDBytes[block]
		for j, id := range ids {
			bytes := sizes[j]
			if fs.Alloc() {
				backoff := e.Cfg.Retry.BackoffNS
				for attempt := 1; attempt < e.Cfg.Retry.MaxAttempts; attempt++ {
					st.Retry(obsv.LaneHost, block, ready, backoff, 0, attempt)
					fs.NoteRetry(backoff)
					ready += backoff
					backoff *= 2
					if !fs.Alloc() {
						break
					}
				}
			}
			err := pool.Add(id, bytes)
			if err == nil {
				continue
			}
			need := bytes - pool.Free()
			var evicted int64
			for _, v := range pool.Victims(need, nil) {
				evicted += pool.Remove(v)
			}
			if evicted > 0 {
				bd.D2HBytes += evicted
				ready = e.xfer(streams, gpusim.LaneD2H, fs, ready, e.CM.BatchedXferTime(evicted),
					st, obsv.SpanEvict, block, evicted)
			}
			fs.NoteEvictRetry()
			if err := pool.Add(id, bytes); err != nil {
				return ready, fmt.Errorf("core: tensor %d (%d bytes) after evicting %d: %w",
					id, bytes, evicted, ErrCapacityExceeded)
			}
		}
		return ready, nil
	}
	dropAll := func(block int) {
		for _, id := range plan.WorkingIDs[block] {
			pool.Remove(id)
		}
	}

	fetch0 := plan.FetchBytes[0]
	mig := e.xfer(streams, gpusim.LaneH2D, fs, 0, e.CM.BatchedXferTime(fetch0),
		st, obsv.SpanPrefetch, 0, fetch0)
	bd.H2DBytes += fetch0
	var err error
	if fs != nil {
		if mig, err = addAll(0, mig); err != nil {
			return bd, err
		}
	}

	dropped := false
	var droppedBytes int64
	computeEnd := int64(0)
	for i := 0; i < n; i++ {
		start := mig
		if computeEnd > start {
			start = computeEnd
		}
		if dropped { // reachable only under injection
			start = e.xfer(streams, gpusim.LaneH2D, fs, start, e.CM.BatchedXferTime(droppedBytes),
				st, obsv.SpanOnDemand, i, droppedBytes)
			bd.H2DBytes += droppedBytes
			bd.FaultNS += e.Cfg.FaultLatencyNS
			bd.Faults++
			st.Span(obsv.SpanFault, obsv.LaneHost, i, start, e.Cfg.FaultLatencyNS, 0)
			fs.NoteOnDemandFallback()
			if start, err = addAll(i, start); err != nil {
				return bd, err
			}
		}
		if start > computeEnd {
			bd.ExposedXferNS += start - computeEnd
		}

		if i+1 < n {
			migStart := max64(mig, start)
			if i > 0 {
				evict := plan.PipeEvictBytes[i]
				migStart = e.xfer(streams, gpusim.LaneD2H, fs, migStart, e.CM.BatchedXferTime(evict),
					st, obsv.SpanEvict, i-1, evict)
				bd.D2HBytes += evict
				if fs != nil {
					dropAll(i - 1)
				}
			}
			fetch := plan.FetchBytes[i+1]
			if fs != nil && fs.PrefetchDrop() {
				dropped, droppedBytes = true, fetch
				mig = migStart
			} else {
				dropped = false
				mig = e.xfer(streams, gpusim.LaneH2D, fs, migStart, e.CM.BatchedXferTime(fetch),
					st, obsv.SpanPrefetch, i+1, fetch)
				bd.H2DBytes += fetch
				if fs != nil {
					if mig, err = addAll(i+1, mig); err != nil {
						return bd, err
					}
				}
			}
		}

		blockCompute := plan.ComputeNS[i]
		st.Span(obsv.SpanCompute, obsv.LaneCompute, i, start, blockCompute, 0)
		bd.ComputeNS += blockCompute
		computeEnd = start + blockCompute
	}

	if mig > computeEnd {
		bd.ExposedXferNS += mig - computeEnd
	}
	bd.OverlapXferNS = e.CM.BatchedXferTime(bd.H2DBytes+bd.D2HBytes) - bd.ExposedXferNS
	if bd.OverlapXferNS < 0 {
		bd.OverlapXferNS = 0
	}
	if pool != nil {
		bd.PeakGPUBytes = pool.Peak()
	} else {
		bd.PeakGPUBytes = rp.PipelinedPeakBytes
	}
	return bd, nil
}

// simulateOnDemandPlan is the plan-backed mis-prediction path: every block's
// migration exposed on the critical path plus the tensor-fault round trip.
// See simulateOnDemand for semantics; only the table lookups differ.
func (e *Engine) simulateOnDemandPlan(plan *sentinel.BlockPlan, fs *faults.Stream, st *obsv.SampleTrace) gpusim.Breakdown {
	var bd gpusim.Breakdown
	n := plan.NumBlocks()
	if plan.PeakResidentBytes <= e.Cfg.Platform.GPU.MemBytes {
		bd.ComputeNS = plan.TotalComputeNS
		bd.FaultNS = e.Cfg.FaultLatencyNS
		bd.Faults = 1
		bd.PeakGPUBytes = plan.PeakResidentBytes
		if st != nil {
			cursor := e.Cfg.FaultLatencyNS
			st.Span(obsv.SpanFault, obsv.LaneHost, 0, 0, cursor, 0)
			for i := 0; i < n; i++ {
				c := plan.ComputeNS[i]
				st.Span(obsv.SpanCompute, obsv.LaneCompute, i, cursor, c, 0)
				cursor += c
			}
		}
		return bd
	}
	var cursor int64
	xferNS := func(kind obsv.SpanKind, lane string, block int, bytes int64) int64 {
		dur := e.CM.BatchedXferTime(bytes)
		var total int64
		backoff := e.Cfg.Retry.BackoffNS
		for attempt := 0; ; attempt++ {
			f := fs.Transfer()
			if !f.Abort {
				d := dur * f.StallFactor
				st.Span(kind, lane, block, cursor+total, d, bytes)
				return total + d
			}
			st.Retry(lane, block, cursor+total, dur/2, bytes, attempt+1)
			total += dur / 2
			if attempt+1 >= e.Cfg.Retry.MaxAttempts {
				fs.NoteSyncFallback()
				st.Span(kind, lane, block, cursor+total, dur, bytes)
				return total + dur
			}
			fs.NoteRetry(backoff)
			total += backoff
			backoff *= 2
		}
	}
	var peak int64
	for i := 0; i < n; i++ {
		fetch := plan.FetchBytes[i]
		bd.H2DBytes += fetch
		d := xferNS(obsv.SpanOnDemand, obsv.LaneH2D, i, fetch)
		bd.ExposedXferNS += d
		cursor += d
		if i > 0 {
			evict := plan.OnDemandEvictBytes[i]
			bd.D2HBytes += evict
			d = xferNS(obsv.SpanEvict, obsv.LaneD2H, i-1, evict)
			bd.ExposedXferNS += d
			cursor += d
		}
		bd.FaultNS += e.Cfg.FaultLatencyNS
		bd.Faults++
		st.Span(obsv.SpanFault, obsv.LaneHost, i, cursor, e.Cfg.FaultLatencyNS, 0)
		cursor += e.Cfg.FaultLatencyNS
		blockCompute := plan.ComputeNS[i]
		st.Span(obsv.SpanCompute, obsv.LaneCompute, i, cursor, blockCompute, 0)
		cursor += blockCompute
		bd.ComputeNS += blockCompute
		if w := plan.WorkingBytes[i]; w > peak {
			peak = w
		}
	}
	bd.PeakGPUBytes = min64(2*peak, e.Cfg.Platform.GPU.MemBytes)
	return bd
}
