package core

import (
	"math/rand"
	"sync"
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
)

// propBench is one model under memory pressure with a trained pilot — the
// fixture for the fault-schedule properties.
type propBench struct {
	name string
	test []*pilot.Example
	plat gpusim.Platform
	p    *pilot.Pilot
}

var (
	propOnce    sync.Once
	propBenches []*propBench
)

// propModels builds the five-model fixture once per test binary: five
// dynamic zoo models whose liveness peak comfortably exceeds the
// double-buffer floor, each on a pressure-scaled platform (so offloading —
// and therefore fault injection — is actually exercised) with its own small
// pilot.
func propModels(t *testing.T) []*propBench {
	t.Helper()
	propOnce.Do(func() {
		names := map[string]bool{
			"Tree-CNN": true, "Tree-LSTM": true, "var-BERT": true, "MoE": true, "AlphaFold": true,
		}
		for _, entry := range dynn.Zoo() {
			if !names[entry.Name] {
				continue
			}
			m := entry.New(8, 5)
			base := gpusim.RTXPlatform()
			probe, err := pilot.NewModelContext(m, gpusim.NewCostModel(base), 0, 0)
			if err != nil {
				t.Fatalf("%s: %v", entry.Name, err)
			}
			var maxPeak, maxOp int64
			for _, info := range probe.Paths {
				if b := info.Analysis.PeakResidentBytes(); b > maxPeak {
					maxPeak = b
				}
				if b := info.Analysis.MaxSingleOpBytes(); b > maxOp {
					maxOp = b
				}
			}
			budget := maxPeak / 2
			if floor := 9 * maxOp / 4; budget < floor {
				budget = floor
			}
			if budget >= maxPeak {
				t.Fatalf("%s: budget %d >= peak %d — model would take the in-memory fast path", entry.Name, budget, maxPeak)
			}
			plat := base.WithMemory(budget)
			plat.CPUMemBytes = 16 * maxPeak
			ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(plat), plat.GPU.MemBytes/2, 0)
			if err != nil {
				t.Fatalf("%s: %v", entry.Name, err)
			}
			samples := dynn.GenerateSamples(31, 175, 8, 40)
			exs, err := pilot.BuildExamples(ctx, pilot.FeatureConfig{}, samples)
			if err != nil {
				t.Fatalf("%s: %v", entry.Name, err)
			}
			p := pilot.New(pilot.Config{Neurons: 48, Epochs: 6, Seed: 2})
			p.Train(exs[:150])
			propBenches = append(propBenches, &propBench{name: entry.Name, test: exs[150:], plat: plat, p: p})
		}
		if len(propBenches) != 5 {
			t.Fatalf("fixture built %d models, want 5", len(propBenches))
		}
	})
	return propBenches
}

// runSchedule runs one fresh-engine epoch under a fault config (zero Rate =
// fault-free) and strips the wall-clock-measured overhead so reports compare
// bit-for-bit.
func runSchedule(t *testing.T, b *propBench, fc faults.Config, workers int) EpochReport {
	t.Helper()
	cfg := DefaultConfig(b.plat)
	if fc.Rate > 0 {
		cfg.Faults = faults.New(fc)
	}
	eng := NewEngine(cfg, b.p)
	var rep EpochReport
	var err error
	if workers <= 0 {
		rep, err = eng.RunEpoch(b.test)
	} else {
		rep, err = eng.ParallelRunEpoch(b.test, EpochOptions{Workers: workers})
	}
	if err != nil {
		t.Fatalf("%s: schedule %+v workers=%d: %v", b.name, fc, workers, err)
	}
	rep.PilotNS, rep.MappingNS, rep.Breakdown.OverheadNS = 0, 0, 0
	return rep
}

// TestFaultSchedulesPreserveResults is the tentpole property: under 200
// random fault schedules spread over 5 models (40 each, rates up to 1.0),
// every epoch completes, and the semantic aggregates — Samples,
// Mispredictions, CacheHits — are bit-identical to the fault-free run.
// Faults perturb timing and traffic, never results.
func TestFaultSchedulesPreserveResults(t *testing.T) {
	rates := []float64{0.02, 0.05, 0.1, 0.25, 1.0}
	for _, b := range propModels(t) {
		ref := runSchedule(t, b, faults.Config{}, 0)
		if ref.Breakdown.H2DBytes == 0 {
			t.Fatalf("%s: no migration traffic — pressure config is not exercising offload", b.name)
		}
		var injected int64
		for i := 0; i < 40; i++ {
			fc := faults.Config{Seed: uint64(i)*7919 + 17, Rate: rates[i%len(rates)]}
			rep := runSchedule(t, b, fc, 0)
			if rep.Samples != ref.Samples || rep.Mispredictions != ref.Mispredictions || rep.CacheHits != ref.CacheHits {
				t.Fatalf("%s: schedule %+v changed results: got (%d,%d,%d), want (%d,%d,%d)",
					b.name, fc, rep.Samples, rep.Mispredictions, rep.CacheHits,
					ref.Samples, ref.Mispredictions, ref.CacheHits)
			}
			if rep.Breakdown.ComputeNS != ref.Breakdown.ComputeNS {
				t.Fatalf("%s: schedule %+v changed compute: %d vs %d",
					b.name, fc, rep.Breakdown.ComputeNS, ref.Breakdown.ComputeNS)
			}
			injected += rep.FaultCounters.Injected()
		}
		if injected == 0 {
			t.Errorf("%s: 40 schedules injected nothing — the property is vacuous", b.name)
		}
	}
}

// TestFaultCountersDeterministic pins the reproducibility acceptance bar:
// the same (seed, rate, model) replays identical fault/retry counters and an
// identical virtual-time breakdown across repeated runs and worker counts.
func TestFaultCountersDeterministic(t *testing.T) {
	for _, b := range propModels(t) {
		for _, fc := range []faults.Config{
			{Seed: 11, Rate: 0.05},
			{Seed: 97, Rate: 0.3},
			{Seed: 5, Rate: 1.0},
		} {
			serial1 := runSchedule(t, b, fc, 0)
			serial2 := runSchedule(t, b, fc, 0)
			par3 := runSchedule(t, b, fc, 3)
			par7 := runSchedule(t, b, fc, 7)
			for _, rep := range []EpochReport{serial2, par3, par7} {
				if rep.FaultCounters != serial1.FaultCounters {
					t.Fatalf("%s: %+v: counters diverge: %+v vs %+v", b.name, fc, rep.FaultCounters, serial1.FaultCounters)
				}
				if rep.Breakdown != serial1.Breakdown {
					t.Fatalf("%s: %+v: breakdown diverges: %+v vs %+v", b.name, fc, rep.Breakdown, serial1.Breakdown)
				}
			}
		}
	}
}

// TestRateOneCompletes pins the ladder's termination guarantee: even when
// every consultation faults, the final fault-blind rungs (blocking copy,
// evict-and-retry) let the epoch complete — ErrCapacityExceeded is reserved
// for genuine exhaustion, which injection alone can never cause.
func TestRateOneCompletes(t *testing.T) {
	b := propModels(t)[0]
	rep := runSchedule(t, b, faults.Config{Seed: 3, Rate: 1.0}, 0)
	if rep.Samples != len(b.test) {
		t.Fatalf("rate-1.0 epoch lost samples: %d of %d", rep.Samples, len(b.test))
	}
	c := rep.FaultCounters
	if c.Injected() == 0 || c.SyncFallbacks == 0 {
		t.Errorf("rate-1.0 run should exhaust retry budgets: %+v", c)
	}
	if c.Retries == 0 || c.BackoffNS == 0 {
		t.Errorf("no retry/backoff recorded: %+v", c)
	}
}

// TestAllocatorInvariantsUnderFaults drives the first-fit allocator with
// random alloc/free interleavings and an injecting fault stream: FreeBytes
// stays within [0, Capacity], accounting matches the live set exactly, and
// Reset leaks nothing.
func TestAllocatorInvariantsUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	inj := faults.New(faults.Config{Seed: 13, Rate: 0.2})
	for trial := 0; trial < 200; trial++ {
		const capacity = 1 << 20
		a := gpusim.NewAllocator(capacity, gpusim.WithAllocFaults(inj.Stream(uint64(trial))))
		live := map[int64]int64{} // id -> size of successful allocations
		var id int64
		for op := 0; op < 120; op++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				id++
				size := int64(rng.Intn(capacity/8) + 1)
				if err := a.TryAlloc(id, size); err == nil {
					live[id] = size
				}
			} else {
				for victim := range live {
					a.Free(victim)
					delete(live, victim)
					break
				}
			}
			var liveBytes int64
			for _, s := range live {
				liveBytes += s
			}
			free := a.FreeBytes()
			if free < 0 || free > capacity {
				t.Fatalf("trial %d op %d: FreeBytes %d out of [0, %d]", trial, op, free, capacity)
			}
			if free != capacity-liveBytes {
				t.Fatalf("trial %d op %d: FreeBytes %d, live %d — extent leak", trial, op, free, liveBytes)
			}
			if a.LargestExtent() > free {
				t.Fatalf("trial %d op %d: largest extent %d > free %d", trial, op, a.LargestExtent(), free)
			}
		}
		a.Reset()
		if a.FreeBytes() != capacity || a.LargestExtent() != capacity || a.Fragmentation() != 0 {
			t.Fatalf("trial %d: Reset leaked: free=%d largest=%d frag=%v",
				trial, a.FreeBytes(), a.LargestExtent(), a.Fragmentation())
		}
	}
}
