package core

import (
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
	"dynnoffload/internal/sentinel"
)

// TestEngineMatchesPipelineEstimate checks that the runtime simulation and
// the partitioner's objective agree: the partition Sentinel chose (optimal
// under PipelineEstimate) must not lose to an even split under the engine's
// richer simulation — otherwise the offline labels would train the pilot
// toward partitions the runtime dislikes.
func TestEngineMatchesPipelineEstimate(t *testing.T) {
	m := dynn.NewVarBERT(dynn.VarBERTConfig{Layers: 8, Hidden: 256, SeqLen: 32, Batch: 8, Groups: 4, Seed: 3})
	base := gpusim.A100Platform()
	probe, err := pilot.NewModelContext(m, gpusim.NewCostModel(base), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var maxPeak int64
	for _, info := range probe.Paths {
		if b := info.Analysis.PeakResidentBytes(); b > maxPeak {
			maxPeak = b
		}
	}
	plat := base.WithMemory(maxPeak / 2)
	ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(plat), plat.GPU.MemBytes/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(DefaultConfig(plat), nil)

	for _, info := range ctx.Paths[:4] {
		an := info.Analysis
		chosen := eng.SimulatePartition(an, info.Blocks).TotalNS()
		for n := len(info.Blocks); n <= len(info.Blocks)+4; n++ {
			alt := an.EvenTime(n)
			if sentinel.Validate(alt, an.NumOps()) != nil {
				continue
			}
			feasible := true
			for _, b := range alt {
				if an.WorkingBytes(b) > ctx.Budget {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			if altNS := eng.SimulatePartition(an, alt).TotalNS(); altNS < chosen*97/100 {
				t.Errorf("even-time(%d) beats the chosen partition by >3%%: %d vs %d", n, altNS, chosen)
			}
		}
	}
}

// TestEpochDeterminism: identical engines over identical examples must give
// identical simulated results (virtual time has no nondeterminism).
func TestEpochDeterminism(t *testing.T) {
	ctx, test, p, plat := testBench(t)
	_ = ctx
	a := NewEngine(DefaultConfig(plat), p)
	b := NewEngine(DefaultConfig(plat), p)
	ra, err := a.RunEpoch(test[:40])
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunEpoch(test[:40])
	if err != nil {
		t.Fatal(err)
	}
	// OverheadNS contains measured wall-clock pilot latency (intentionally
	// real time); everything simulated must be identical.
	simA := ra.Breakdown.TotalNS() - ra.Breakdown.OverheadNS
	simB := rb.Breakdown.TotalNS() - rb.Breakdown.OverheadNS
	if simA != simB || ra.Mispredictions != rb.Mispredictions ||
		ra.Breakdown.H2DBytes != rb.Breakdown.H2DBytes {
		t.Errorf("nondeterministic epochs: %v vs %v", ra.Breakdown, rb.Breakdown)
	}
}
