package core

import (
	"sync"
	"sync/atomic"
)

// cacheShards is the stripe count of the mis-prediction cache. 32 stripes
// keep contention negligible at worker counts far beyond any host we target
// while costing ~1KB of mutexes.
const cacheShards = 32

type cacheShard struct {
	mu sync.Mutex
	m  map[string]string
}

// shardedCache is the concurrency-safe mis-prediction cache (§IV-E): a
// mutex-striped map from cache key (the matched-path / quantized-output key)
// to the corrected ground-truth path key, with hit/miss/insert counters so
// cache effectiveness is observable per run.
type shardedCache struct {
	shards  [cacheShards]cacheShard
	hits    atomic.Int64
	misses  atomic.Int64
	inserts atomic.Int64
}

func newShardedCache() *shardedCache {
	c := &shardedCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]string{}
	}
	return c
}

// shardOf hashes the key with FNV-1a and picks a stripe.
func (c *shardedCache) shardOf(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%cacheShards]
}

// Lookup returns the corrected path key recorded for key, counting the
// outcome.
func (c *shardedCache) Lookup(key string) (string, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Insert records the corrected path key for a mis-predicted cache key.
func (c *shardedCache) Insert(key, corrected string) {
	s := c.shardOf(key)
	s.mu.Lock()
	s.m[key] = corrected
	s.mu.Unlock()
	c.inserts.Add(1)
}

// Len returns the number of distinct cached keys.
func (c *shardedCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Reset clears entries and counters (between experiments).
func (c *shardedCache) Reset() {
	for i := range c.shards {
		c.shards[i].mu.Lock()
		c.shards[i].m = map[string]string{}
		c.shards[i].mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.inserts.Store(0)
}

// CacheStats reports the engine's mis-prediction cache behavior since the
// last reset.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Inserts int64
	Entries int
}

// HitRate is hits / lookups, 0 when the cache was never consulted.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

func (c *shardedCache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Inserts: c.inserts.Load(),
		Entries: c.Len(),
	}
}
