package core

import (
	"reflect"
	"testing"

	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
)

// planSchedule runs one fresh-engine traced epoch with the plan cache on or
// off, optionally attached to a shared L2, and returns the epoch report
// (wall-measured overhead stripped) plus the canonical span set.
func planSchedule(t *testing.T, b *propBench, fc faults.Config, workers int, noCache bool, plans *PlanCache) (EpochReport, []obsv.Span) {
	t.Helper()
	cfg := DefaultConfig(b.plat)
	cfg.NoPlanCache = noCache
	cfg.Plans = plans
	if fc.Rate > 0 {
		cfg.Faults = faults.New(fc)
	}
	eng := NewEngine(cfg, b.p)
	tracer := obsv.NewTracer()
	rep, err := eng.ParallelRunEpoch(b.test, EpochOptions{Workers: workers, Tracer: tracer})
	if err != nil {
		t.Fatalf("%s: %+v workers=%d noCache=%v: %v", b.name, fc, workers, noCache, err)
	}
	rep.PilotNS, rep.MappingNS, rep.Breakdown.OverheadNS = 0, 0, 0
	return rep, tracer.Spans()
}

// TestPlanCacheBitIdentical is the plan-cache acceptance property: with the
// cache on (engine L1 plus a shared L2), every epoch aggregate — Samples,
// Mispredictions, CacheHits, the full virtual-time Breakdown, the fault
// counters — and the entire simulated-time span set are bit-identical to the
// cache-off reference, across 1/2/4/8 workers, fault-free and faulted. Plans
// are pure functions of their inputs; this pins it.
func TestPlanCacheBitIdentical(t *testing.T) {
	for _, b := range propModels(t) {
		for _, fc := range []faults.Config{{}, {Seed: 11, Rate: 0.2}} {
			refRep, refSpans := planSchedule(t, b, fc, 1, true, nil)
			if len(refSpans) == 0 {
				t.Fatalf("%s: %+v: empty reference span set", b.name, fc)
			}
			if refRep.Breakdown.H2DBytes == 0 {
				t.Fatalf("%s: no migration traffic — the property would be vacuous", b.name)
			}
			shared := NewPlanCache()
			for _, workers := range []int{1, 2, 4, 8} {
				rep, spans := planSchedule(t, b, fc, workers, false, shared)
				if rep != refRep {
					t.Fatalf("%s: %+v: plan cache changed the epoch report at %d workers:\n got %+v\nwant %+v",
						b.name, fc, workers, rep, refRep)
				}
				if !reflect.DeepEqual(spans, refSpans) {
					i := 0
					for i < len(spans) && i < len(refSpans) && spans[i] == refSpans[i] {
						i++
					}
					t.Fatalf("%s: %+v: span set diverges with the plan cache at %d workers (len %d vs %d, first diff at span %d)",
						b.name, fc, workers, len(spans), len(refSpans), i)
				}
			}
			if st := shared.Stats(); st.Hits == 0 || st.Entries == 0 {
				t.Fatalf("%s: %+v: shared L2 never hit (%+v) — the equivalence never exercised sharing", b.name, fc, st)
			}
		}
	}
}

// TestPlanCacheSharedAcrossEngines pins the sweep-amortization contract:
// engines built per grid cell against one shared PlanCache produce the same
// results as isolated engines, and the second engine serves its plans from
// the first engine's inserts (hits, no new entries).
func TestPlanCacheSharedAcrossEngines(t *testing.T) {
	b := propModels(t)[0]
	shared := NewPlanCache()
	rep1, _ := planSchedule(t, b, faults.Config{}, 2, false, shared)
	entries := shared.Stats().Entries
	if entries == 0 {
		t.Fatal("first engine inserted no plans")
	}
	hitsBefore := shared.Stats().Hits
	rep2, _ := planSchedule(t, b, faults.Config{}, 2, false, shared)
	if rep1 != rep2 {
		t.Fatalf("shared plans changed results across engines:\n got %+v\nwant %+v", rep2, rep1)
	}
	st := shared.Stats()
	if st.Entries != entries {
		t.Fatalf("second engine grew the cache: %d -> %d entries", entries, st.Entries)
	}
	if st.Hits <= hitsBefore {
		t.Fatalf("second engine never hit the shared cache: %+v", st)
	}
}

// TestPartitionPlanEquivalence pins the SimulatePartition cache: repeated
// calls (plan compiled once, then served from the partition L1) return the
// same breakdown as a NoPlanCache engine recomputing from the analysis, for
// every path of every fixture model.
func TestPartitionPlanEquivalence(t *testing.T) {
	for _, b := range propModels(t) {
		cached := NewEngine(DefaultConfig(b.plat), b.p)
		refCfg := DefaultConfig(b.plat)
		refCfg.NoPlanCache = true
		ref := NewEngine(refCfg, b.p)
		for _, ex := range b.test[:4] {
			info := ex.Ctx.PathByKey(ex.TruthKey)
			want := ref.SimulatePartition(info.Analysis, info.Blocks)
			for rep := 0; rep < 3; rep++ {
				if got := cached.SimulatePartition(info.Analysis, info.Blocks); got != want {
					t.Fatalf("%s %s rep %d: cached partition diverges:\n got %+v\nwant %+v",
						b.name, info.Key, rep, got, want)
				}
			}
		}
	}
}
