package core

import (
	"errors"
	"fmt"
	"testing"

	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
)

// detFields projects the deterministic fields of a SampleResult — Breakdown
// minus the wall-measured pilot/mapping overheads, plus the outcome flags and
// fault counters.
func detFields(r SampleResult) string {
	return fmt.Sprintf("%s mis=%t hit=%t retries=%d backoff=%d od=%d evict=%d sync=%d",
		simFields(r.Breakdown), r.Mispredicted, r.CacheHit,
		r.FaultCounters.Retries, r.FaultCounters.BackoffNS,
		r.FaultCounters.OnDemandFallbacks, r.FaultCounters.EvictRetries,
		r.FaultCounters.SyncFallbacks)
}

// TestRunBatchMatchesEpoch: folding RunBatch's per-sample results must
// reproduce serial RunEpoch's aggregates — same pipeline, different return
// shape.
func TestRunBatchMatchesEpoch(t *testing.T) {
	_, test, p, plat := testBench(t)

	serial := NewEngine(DefaultConfig(plat), p)
	want, err := serial.RunEpoch(test)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(DefaultConfig(plat), p)
	results, err := eng.RunBatch(test, EpochOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(test) {
		t.Fatalf("got %d results for %d samples", len(results), len(test))
	}
	var got EpochReport
	for _, r := range results {
		got.Add(r)
	}
	if got.Samples != want.Samples ||
		got.Mispredictions != want.Mispredictions ||
		got.CacheHits != want.CacheHits {
		t.Errorf("counts diverge: got %d/%d/%d want %d/%d/%d",
			got.Samples, got.Mispredictions, got.CacheHits,
			want.Samples, want.Mispredictions, want.CacheHits)
	}
	if g, w := simFields(got.Breakdown), simFields(want.Breakdown); g != w {
		t.Errorf("breakdown diverges:\ngot  %s\nwant %s", g, w)
	}
	if eng.CacheSize() != serial.CacheSize() {
		t.Errorf("cache size %d, serial %d", eng.CacheSize(), serial.CacheSize())
	}
}

// TestRunBatchWorkerInvariance: per-sample results are bit-identical in their
// deterministic fields at any worker count, fault-free and faulted.
func TestRunBatchWorkerInvariance(t *testing.T) {
	_, test, p, plat := testBench(t)
	batch := test[:40]

	for _, fc := range []faults.Config{{}, {Seed: 11, Rate: 0.3}} {
		run := func(workers int) []string {
			cfg := DefaultConfig(plat)
			if fc.Rate > 0 {
				cfg.Faults = faults.New(fc)
			}
			eng := NewEngine(cfg, p)
			results, err := eng.RunBatch(batch, EpochOptions{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			out := make([]string, len(results))
			for i, r := range results {
				out[i] = detFields(r)
			}
			return out
		}
		want := run(1)
		for _, workers := range []int{2, 4, 8} {
			got := run(workers)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("rate=%v workers=%d sample %d:\ngot  %s\nwant %s",
						fc.Rate, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRunBatchTraceBase: TraceBase offsets tracer sample indices so
// consecutive dispatches land in distinct trace slots.
func TestRunBatchTraceBase(t *testing.T) {
	_, test, p, plat := testBench(t)
	eng := NewEngine(DefaultConfig(plat), p)
	tr := obsv.NewTracer()
	if _, err := eng.RunBatch(test[:3], EpochOptions{Workers: 1, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunBatch(test[3:5], EpochOptions{Workers: 1, Tracer: tr, TraceBase: 3}); err != nil {
		t.Fatal(err)
	}
	if n := tr.SampleCount(); n != 5 {
		t.Fatalf("trace slots = %d, want 5 (no collisions across dispatches)", n)
	}
	seen := map[int]bool{}
	for _, sp := range tr.Spans() {
		seen[sp.Sample] = true
	}
	for i := 0; i < 5; i++ {
		if !seen[i] {
			t.Errorf("missing trace slot %d", i)
		}
	}
}

// TestRunBatchRecorder: per-sample observations reach the recorder with
// TraceBase-offset sample indices.
func TestRunBatchRecorder(t *testing.T) {
	_, test, p, plat := testBench(t)
	eng := NewEngine(DefaultConfig(plat), p)
	rec := obsv.NewRecorder("batch-test", 2, nil)
	results, err := eng.RunBatch(test[:6], EpochOptions{Workers: 2, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	stats := rec.Finish()
	if stats.Samples != int64(len(results)) {
		t.Errorf("recorder samples %d != batch %d", stats.Samples, len(results))
	}
	for _, phase := range []string{PhasePilot, PhaseMapping, PhaseSimulate} {
		if stats.Phases[phase].Count != int64(len(results)) {
			t.Errorf("phase %s count = %d, want %d", phase, stats.Phases[phase].Count, len(results))
		}
	}
}

func TestRunBatchErrors(t *testing.T) {
	_, test, p, plat := testBench(t)

	untrained := NewEngine(DefaultConfig(plat), nil)
	if _, err := untrained.RunBatch(test, EpochOptions{}); !errors.Is(err, ErrPilotNotTrained) {
		t.Errorf("err = %v, want ErrPilotNotTrained", err)
	}

	eng := NewEngine(DefaultConfig(plat), p)
	results, err := eng.RunBatch(nil, EpochOptions{})
	if err != nil || results != nil {
		t.Errorf("empty batch: %v, %v", results, err)
	}
}
