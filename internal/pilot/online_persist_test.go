package pilot

import (
	"bytes"
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
)

// refineFixture builds a trained pilot plus an example stream for the
// online-learning tests.
func refineFixture(t *testing.T) (*Pilot, []*Example) {
	t.Helper()
	m := dynn.NewVarLSTM(dynn.VarLSTMConfig{Hidden: 32, Batch: 2, Seed: 12})
	ctx, err := NewModelContext(m, gpusim.NewCostModel(gpusim.RTXPlatform()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	exs, err := BuildExamples(ctx, FeatureConfig{}, dynn.GenerateSamples(21, 300, 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Neurons: 32, Epochs: 5, Seed: 13})
	p.Train(exs[:200])
	return p, exs
}

// TestOnlineRetrainedPilotRoundTrip covers the PR's persistence satellite: a
// pilot that went through online refinement saves with its replay-ring
// metadata and reloads to bit-identical predictions.
func TestOnlineRetrainedPilotRoundTrip(t *testing.T) {
	p, exs := refineFixture(t)
	online := p.Clone()
	for step := 0; step < 5; step++ {
		if _, err := online.Refine(exs[step*16:(step+1)*16], RefineConfig{
			LR: 0.002, Momentum: 0.9, Epochs: 2, Seed: uint64(step + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	meta := map[string]string{
		"online.memory_cap":        "256",
		"online.observed":          "80",
		"online.retrains":          "5",
		"online.training_interval": "16",
	}
	var buf bytes.Buffer
	if err := online.SaveWithMeta(&buf, meta); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := LoadWithMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMeta) != len(meta) {
		t.Fatalf("meta round-trip: got %v, want %v", gotMeta, meta)
	}
	for k, v := range meta {
		if gotMeta[k] != v {
			t.Fatalf("meta[%q] = %q, want %q", k, gotMeta[k], v)
		}
	}
	for _, e := range exs[200:240] {
		a, _, err := online.Predict(e.Base, e.Features)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := loaded.Predict(e.Base, e.Features)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("online-retrained prediction diverged after load at dim %d", i)
			}
		}
		ra, err := online.Resolve(e)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := loaded.Resolve(e)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Path.Key != rb.Path.Key {
			t.Fatal("online-retrained resolution diverged after load")
		}
	}
	// Plain Load still reads a file with metadata, dropping it.
	buf.Reset()
	if err := online.SaveWithMeta(&buf, meta); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err != nil {
		t.Fatalf("Load over meta-bearing file: %v", err)
	}
}

// TestRefineDeterministicAndScalersFrozen pins Refine's two contracts: a
// fixed (seed, minibatch) pair refines to bit-identical weights, and the
// feature/label scalers never move (the normalized path-matching space stays
// as Train left it).
func TestRefineDeterministicAndScalersFrozen(t *testing.T) {
	p, exs := refineFixture(t)
	probe := exs[250]
	base, _, err := p.Predict(probe.Base, probe.Features)
	if err != nil {
		t.Fatal(err)
	}

	refine := func() *Pilot {
		c := p.Clone()
		if _, err := c.Refine(exs[:32], RefineConfig{LR: 0.002, Momentum: 0.9, Epochs: 3, Seed: 5}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := refine(), refine()
	pa, _, err := a.Predict(probe.Base, probe.Features)
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := b.Predict(probe.Base, probe.Features)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("same-seed Refine diverged at dim %d", i)
		}
	}

	// The refined pilot moved away from the base...
	moved := false
	for i := range pa {
		if pa[i] != base[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("Refine changed nothing")
	}
	// ...but the base pilot itself did not (Clone independence).
	again, _, err := p.Predict(probe.Base, probe.Features)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != base[i] {
			t.Fatal("refining a clone mutated the base pilot")
		}
	}

	// HeadOnly refinement also moves predictions, deterministically.
	h := p.Clone()
	if _, err := h.Refine(exs[:32], RefineConfig{LR: 0.01, Momentum: 0.9, Epochs: 5, Seed: 6, HeadOnly: true}); err != nil {
		t.Fatal(err)
	}
	ph, _, err := h.Predict(probe.Base, probe.Features)
	if err != nil {
		t.Fatal(err)
	}
	moved = false
	for i := range ph {
		if ph[i] != base[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("HeadOnly Refine changed nothing")
	}

	// Refine on an untrained pilot fails; an empty minibatch is a no-op.
	if _, err := New(Config{Neurons: 8}).Refine(exs[:4], RefineConfig{LR: 0.01}); err == nil {
		t.Error("Refine before Train must fail")
	}
	if _, err := p.Clone().Refine(nil, RefineConfig{LR: 0.01}); err != nil {
		t.Errorf("empty Refine must be a no-op, got %v", err)
	}
}

// TestEvaluateConfusion pins the per-path confusion summary: pair counts sum
// to the mispredictions and TopConfusions orders deterministically.
func TestEvaluateConfusion(t *testing.T) {
	p, exs := refineFixture(t)
	test := exs[200:]
	ev, err := p.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Samples != len(test) {
		t.Fatalf("Samples = %d, want %d", ev.Samples, len(test))
	}
	var sum int
	for _, c := range ev.Confusion {
		if c.Count <= 0 {
			t.Fatalf("confusion pair with non-positive count: %+v", c)
		}
		if c.TruthKey == c.PredictedKey {
			t.Fatalf("confusion pair on a correct prediction: %+v", c)
		}
		sum += c.Count
	}
	if sum != ev.Mispredictions {
		t.Fatalf("confusion counts sum to %d, want %d mispredictions", sum, ev.Mispredictions)
	}
	top := ev.TopConfusions(3)
	if len(top) > 3 {
		t.Fatalf("TopConfusions(3) returned %d pairs", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("TopConfusions not sorted by count")
		}
	}
	if len(ev.Confusion) > 0 && len(top) == 0 {
		t.Fatal("TopConfusions dropped everything")
	}
}
