package pilot

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/trace"
)

// DefaultMaxBlocks is the number of execution-block rows in the pilot output
// (the paper: the number of blocks is typically O(10)).
const DefaultMaxBlocks = 10

// PathKey identifies a resolution path by its reached-site decisions.
func PathKey(r *graph.Resolved) string {
	var sb strings.Builder
	for site, d := range r.Decisions {
		if !r.Reached[site] {
			sb.WriteString("-,")
			continue
		}
		sb.WriteString(strconv.Itoa(d))
		sb.WriteByte(',')
	}
	return sb.String()
}

// PathInfo caches everything the trainer and runtime need for one resolution
// path of one model: the full training iteration, its trace/analysis, the
// Sentinel blocks (the pilot label), and the iteration-level bookkeeping
// aggregate used for output→path mapping.
type PathInfo struct {
	Key       string
	Decisions []int
	Iteration *graph.Iteration
	Trace     *trace.Trace
	Analysis  *sentinel.Analysis
	Blocks    []sentinel.Block
	Label     []float64   // MaxBlocks×DescriptorLen, padded
	Stats     graph.Stats // aggregate over the full iteration

	// Sig is the canonical control-flow signature of the resolved path
	// (graph.PathSignature): decision vectors routing into the same operator
	// sequence share one Sig, and with it one resolved plan.
	Sig string
	// PlanKey is a fixed-width digest of Sig plus the model-context
	// fingerprint (cost model, partition budget, block clamp) — everything
	// besides the path itself that the trace, analysis, and block partition
	// were derived from. Two PathInfos with equal PlanKeys have numerically
	// identical analyses and partitions, so they may share a resolved plan
	// across engines and sweep grid points. The digest is a 128-bit
	// graph.SignatureHash128 rendered as "ph1\x00" + 32 hex digits, so the
	// plan cache's L2 map compares 36 bytes per probe instead of walking a
	// signature string that grows with model depth. Empty on hand-built
	// PathInfos, which then only plan-cache per engine by pointer identity.
	PlanKey string
}

// ModelContext precomputes per-path information for one model. Because the
// Sentinel label depends only on the resolved path (activation shapes are
// sample-independent), labels are computed once per path, not per sample —
// this is what makes building the paper's 24,000-sample training set cheap.
type ModelContext struct {
	Model     dynn.Model
	CM        gpusim.CostModel
	Budget    int64 // double-buffer label budget (bytes)
	MaxBlocks int

	Paths  []*PathInfo
	byKey  map[string]*PathInfo
	states int64 // persistent state bytes
}

// BlocksHint is the target block count when the label budget is derived
// automatically.
const BlocksHint = 6

// NewModelContext enumerates the model's paths and computes per-path labels.
// budget == 0 derives a budget targeting ~BlocksHint blocks on the largest
// path.
func NewModelContext(m dynn.Model, cm gpusim.CostModel, budget int64, maxBlocks int) (*ModelContext, error) {
	if maxBlocks == 0 {
		maxBlocks = DefaultMaxBlocks
	}
	paths, err := graph.EnumeratePaths(m.Static())
	if err != nil {
		return nil, fmt.Errorf("pilot: %s: %w", m.Name(), err)
	}
	ctx := &ModelContext{
		Model: m, CM: cm, Budget: budget, MaxBlocks: maxBlocks,
		byKey:  map[string]*PathInfo{},
		states: dynn.StateBytes(m),
	}

	// First pass: expand iterations and traces.
	for i := range paths {
		p := &paths[i]
		it := graph.ExpandTraining(m.Registry(), p.Resolved, m.WeightStates(), true)
		tr := trace.FromIteration(m.Name(), it, cm)
		an := sentinel.NewAnalysis(tr, cm)
		info := &PathInfo{
			Key:       PathKey(p.Resolved),
			Decisions: p.Decisions,
			Iteration: it,
			Trace:     tr,
			Analysis:  an,
			Stats:     iterStats(tr),
			Sig:       graph.PathSignature(p.Resolved),
		}
		ctx.Paths = append(ctx.Paths, info)
		ctx.byKey[info.Key] = info
	}

	if ctx.Budget == 0 {
		var maxBytes int64
		for _, info := range ctx.Paths {
			if b := info.Trace.TotalBytes(); b > maxBytes {
				maxBytes = b
			}
		}
		ctx.Budget = maxBytes / BlocksHint
	}
	// The budget must admit every single operator's working set.
	for _, info := range ctx.Paths {
		for i := 0; i < info.Analysis.NumOps(); i++ {
			if w := info.Analysis.WorkingBytes(sentinel.Block{Start: i, End: i + 1}); w > ctx.Budget {
				ctx.Budget = w
			}
		}
	}

	// Second pass: partition and label.
	fp := ctxFingerprint(cm, ctx.Budget, maxBlocks)
	for _, info := range ctx.Paths {
		blocks := info.Analysis.Partition(ctx.Budget)
		if blocks == nil {
			return nil, fmt.Errorf("pilot: %s: infeasible budget %d", m.Name(), ctx.Budget)
		}
		blocks = clampBlocks(blocks, maxBlocks)
		info.Blocks = blocks
		info.Label = labelVector(info.Analysis, blocks, maxBlocks)
		info.PlanKey = planKey(info.Sig, fp)
	}
	return ctx, nil
}

// planKey renders the compact plan-sharing key: a versioned 128-bit digest of
// the path signature and the context fingerprint (see PathInfo.PlanKey). The
// "ph1\x00" prefix versions the hash construction and keeps the digest
// disjoint from any legacy signature-string key (signatures never contain
// NUL bytes in their first four characters' positions this way).
func planKey(sig, fp string) string {
	hi, lo := graph.SignatureHash128(sig, fp)
	var d [16]byte
	binary.BigEndian.PutUint64(d[:8], hi)
	binary.BigEndian.PutUint64(d[8:], lo)
	return "ph1\x00" + hex.EncodeToString(d[:])
}

// ctxFingerprint renders the context parameters a path's analysis and block
// partition depend on, so PathInfo.PlanKey separates plans built under
// different cost models or budgets (see PathInfo.PlanKey).
func ctxFingerprint(cm gpusim.CostModel, budget int64, maxBlocks int) string {
	var sb strings.Builder
	f := func(v float64) {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	i := func(v int64) {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(v, 10))
	}
	f(cm.Dev.FLOPS)
	f(cm.Dev.MemBW)
	f(cm.Dev.ComputeEff)
	f(cm.Dev.BandwidthEff)
	i(cm.Dev.LaunchNS)
	f(cm.Link.BW)
	i(cm.Link.LatencyNS)
	i(budget)
	i(int64(maxBlocks))
	return sb.String()
}

// iterStats aggregates the bookkeeping record over a full iteration trace.
func iterStats(tr *trace.Trace) graph.Stats {
	var st graph.Stats
	st.OpCount = len(tr.Records)
	for _, r := range tr.Records {
		st.Sig = st.Sig.Add(r.Sig)
	}
	return st
}

// clampBlocks merges trailing blocks so the partition fits the pilot output
// rows.
func clampBlocks(blocks []sentinel.Block, maxBlocks int) []sentinel.Block {
	if len(blocks) <= maxBlocks {
		return blocks
	}
	out := append([]sentinel.Block(nil), blocks[:maxBlocks]...)
	out[maxBlocks-1].End = blocks[len(blocks)-1].End
	return out
}

// labelVector flattens block descriptors into the padded pilot output vector.
func labelVector(a *sentinel.Analysis, blocks []sentinel.Block, maxBlocks int) []float64 {
	out := make([]float64, maxBlocks*sentinel.DescriptorLen)
	for i, b := range blocks {
		d := a.Descriptor(b)
		copy(out[i*sentinel.DescriptorLen:], d[:])
	}
	return out
}

// PathByKey returns the cached path info, or nil.
func (ctx *ModelContext) PathByKey(key string) *PathInfo { return ctx.byKey[key] }

// TruthPath resolves the ground-truth path for a sample.
func (ctx *ModelContext) TruthPath(s *dynn.Sample) (*PathInfo, error) {
	r, err := ctx.Model.Resolve(s)
	if err != nil {
		return nil, err
	}
	info := ctx.byKey[PathKey(r)]
	if info == nil {
		return nil, fmt.Errorf("pilot: %s: sample %d resolves to unknown path", ctx.Model.Name(), s.ID)
	}
	return info, nil
}

// MatchOutput maps a predicted pilot output (the per-block descriptor rows)
// to the nearest path (§IV-B traverse-and-match). The per-block rows — not
// just their aggregate — carry positional information, which is what lets the
// traverse distinguish paths that activate the same components in different
// orders.
func (ctx *ModelContext) MatchOutput(predLabel []float64) (*PathInfo, bool) {
	var best *PathInfo
	bestDist := -1.0
	for _, info := range ctx.Paths {
		d := labelDistance(info.Label, predLabel)
		if bestDist < 0 || d < bestDist {
			bestDist = d
			best = info
		}
	}
	return best, bestDist < graph.MatchTolerance
}

// labelDistance is the mean per-element relative error between two label
// vectors.
func labelDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var d float64
	for i := 0; i < n; i++ {
		num := a[i] - b[i]
		if num < 0 {
			num = -num
		}
		den := 1.0
		if x := abs(a[i]); x > den {
			den = x
		}
		if x := abs(b[i]); x > den {
			den = x
		}
		d += num / den
	}
	return d / float64(n)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// AggregateFromLabel converts a (predicted) label vector into the aggregate
// bookkeeping record used for path matching: element 0 sums to the operator
// count, elements 1..9 of each row sum into the signature aggregate.
func AggregateFromLabel(label []float64) graph.Stats {
	var st graph.Stats
	for off := 0; off+sentinel.DescriptorLen <= len(label); off += sentinel.DescriptorLen {
		row := label[off : off+sentinel.DescriptorLen]
		st.OpCount += int(row[0] + 0.5)
		for k := 0; k < 9; k++ {
			st.Sig[k] += row[1+k]
		}
	}
	return st
}

// Example is one pilot-training sample (§IV-D): features from (sample, AFM,
// base type), label from the Sentinel partition of the ground-truth path.
type Example struct {
	Base     dynn.BaseType
	Features []float64
	Label    []float64
	TruthKey string
	Ctx      *ModelContext
	Sample   *dynn.Sample
}

// BuildExamples encodes samples for one model context under a feature
// configuration.
func BuildExamples(ctx *ModelContext, fc FeatureConfig, samples []*dynn.Sample) ([]*Example, error) {
	arch := fc.ArchFeatures(ctx.Model.Static())
	out := make([]*Example, 0, len(samples))
	for _, s := range samples {
		truth, err := ctx.TruthPath(s)
		if err != nil {
			return nil, err
		}
		out = append(out, &Example{
			Base:     ctx.Model.Base(),
			Features: fc.Encode(s.Embed, arch, ctx.Model.Base()),
			Label:    truth.Label,
			TruthKey: truth.Key,
			Ctx:      ctx,
			Sample:   s,
		})
	}
	return out, nil
}
