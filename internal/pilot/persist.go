package pilot

import (
	"encoding/json"
	"fmt"
	"io"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/nn"
)

// The pilot model trains offline (§IV-D) and is then deployed into the
// runtime, so it must round-trip through storage. This file serializes the
// pilot (configuration, all three MLPs, and the feature/label scalers) as
// JSON.

type persistedLayer struct {
	In  int       `json:"in"` // redundant with W size; kept for validation
	Out int       `json:"out"`
	Act int       `json:"act"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b"`
}

type persistedMLP struct {
	Layers []persistedLayer `json:"layers"`
}

type persistedPilot struct {
	Config    Config                          `json:"config"`
	MLPs      [dynn.NumBaseTypes]persistedMLP `json:"mlps"`
	FeatMean  []float64                       `json:"feat_mean"`
	FeatStd   []float64                       `json:"feat_std"`
	LabelMean []float64                       `json:"label_mean"`
	LabelStd  []float64                       `json:"label_std"`
	// Meta carries provenance the weights alone cannot express — the online
	// learner files its replay-ring state here (capacity, observed count,
	// retrain count, training interval) so a reloaded pilot knows how it was
	// adapted. encoding/json writes map keys sorted, so the file is
	// deterministic for a given pilot+meta.
	Meta map[string]string `json:"meta,omitempty"`
}

// Save writes the trained pilot to w. It fails on an untrained pilot (no
// scalers to persist).
func (p *Pilot) Save(w io.Writer) error {
	return p.SaveWithMeta(w, nil)
}

// SaveWithMeta writes the trained pilot plus a metadata map (the online
// learner's replay-ring state rides here). Float64 weights round-trip
// exactly: encoding/json emits the shortest representation that parses back
// to the identical bit pattern, so a reloaded pilot predicts bit-identically.
func (p *Pilot) SaveWithMeta(w io.Writer, meta map[string]string) error {
	if !p.Trained() {
		return fmt.Errorf("pilot: Save before Train: %w", ErrNotTrained)
	}
	var out persistedPilot
	out.Config = p.Cfg
	for i, m := range p.mlps {
		for _, l := range m.Layers {
			out.MLPs[i].Layers = append(out.MLPs[i].Layers, persistedLayer{
				In: l.In, Out: l.Out, Act: int(l.Act), W: l.W, B: l.B,
			})
		}
	}
	out.FeatMean, out.FeatStd = p.featMean, p.featStd
	out.LabelMean, out.LabelStd = p.labelMean, p.labelStd
	out.Meta = meta
	return json.NewEncoder(w).Encode(&out)
}

// Load reads a pilot saved by Save.
func Load(r io.Reader) (*Pilot, error) {
	p, _, err := LoadWithMeta(r)
	return p, err
}

// LoadWithMeta reads a pilot saved by Save/SaveWithMeta, returning the
// metadata map alongside (nil when none was saved).
func LoadWithMeta(r io.Reader) (*Pilot, map[string]string, error) {
	var in persistedPilot
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("pilot: load: %w", err)
	}
	p := New(in.Config)
	for i := range in.MLPs {
		if len(in.MLPs[i].Layers) != len(p.mlps[i].Layers) {
			return nil, nil, fmt.Errorf("pilot: load: MLP %d has %d layers, want %d",
				i, len(in.MLPs[i].Layers), len(p.mlps[i].Layers))
		}
		for j, pl := range in.MLPs[i].Layers {
			l := p.mlps[i].Layers[j]
			if len(pl.W) != len(l.W) || len(pl.B) != len(l.B) {
				return nil, nil, fmt.Errorf("pilot: load: MLP %d layer %d shape mismatch", i, j)
			}
			copy(l.W, pl.W)
			copy(l.B, pl.B)
			l.Act = nn.Activation(pl.Act)
		}
	}
	p.featMean, p.featStd = in.FeatMean, in.FeatStd
	p.labelMean, p.labelStd = in.LabelMean, in.LabelStd
	p.normLabels = map[*ModelContext][][]float64{}
	return p, in.Meta, nil
}
