package pilot

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/sentinel"
)

func TestFeatureWidths(t *testing.T) {
	fc := FeatureConfig{}
	if fc.Width() != dynn.EmbedDim+DefaultSegments*9+dynn.NumBaseTypes {
		t.Errorf("idiom width = %d", fc.Width())
	}
	gid := FeatureConfig{Repr: GlobalIDRepr}
	if gid.Width() <= fc.Width() {
		t.Error("global-ID representation must be wider (the Fig 11 point)")
	}
}

func TestEncode(t *testing.T) {
	m := dynn.NewVarLSTM(dynn.VarLSTMConfig{Hidden: 16, Batch: 1, Seed: 1})
	fc := FeatureConfig{}
	arch := fc.ArchFeatures(m.Static())
	s := dynn.GenerateSamples(1, 1, 8, 16)[0]
	feats := fc.Encode(s.Embed, arch, m.Base())
	if len(feats) != fc.Width() {
		t.Fatalf("feature width %d != %d", len(feats), fc.Width())
	}
	// One-hot base type at the tail.
	tail := feats[len(feats)-dynn.NumBaseTypes:]
	var ones int
	for _, v := range tail {
		if v == 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Errorf("base-type one-hot has %d ones", ones)
	}
}

func TestPathKey(t *testing.T) {
	r := &graph.Resolved{
		Decisions: []int{1, 0, 2},
		Reached:   []bool{true, false, true},
	}
	if got := PathKey(r); got != "1,-,2," {
		t.Errorf("PathKey = %q", got)
	}
}

func TestModelContextLabels(t *testing.T) {
	m := dynn.NewVarLSTM(dynn.VarLSTMConfig{Hidden: 32, Batch: 2, Seed: 2})
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	ctx, err := NewModelContext(m, cm, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Paths) != 8 {
		t.Fatalf("paths = %d, want 8", len(ctx.Paths))
	}
	seen := map[string]bool{}
	for _, info := range ctx.Paths {
		if len(info.Label) != DefaultMaxBlocks*sentinel.DescriptorLen {
			t.Fatalf("label width %d", len(info.Label))
		}
		if len(info.Blocks) == 0 {
			t.Fatal("no blocks")
		}
		if err := sentinel.Validate(info.Blocks, info.Analysis.NumOps()); err != nil {
			t.Fatal(err)
		}
		k := ""
		for _, v := range info.Label {
			k += string(rune(int(v)%93 + 33))
		}
		if seen[k] {
			t.Error("duplicate label across paths")
		}
		seen[k] = true
		if ctx.PathByKey(info.Key) != info {
			t.Error("PathByKey lookup broken")
		}
	}
}

func TestClampBlocks(t *testing.T) {
	blocks := []sentinel.Block{{Start: 0, End: 2}, {Start: 2, End: 4}, {Start: 4, End: 6}, {Start: 6, End: 9}}
	clamped := clampBlocks(blocks, 2)
	if len(clamped) != 2 {
		t.Fatalf("len = %d", len(clamped))
	}
	if clamped[1].End != 9 || clamped[0] != blocks[0] {
		t.Errorf("clamp lost coverage: %v", clamped)
	}
	same := clampBlocks(blocks, 10)
	if len(same) != 4 {
		t.Error("no-op clamp changed blocks")
	}
}

func TestAggregateFromLabel(t *testing.T) {
	label := make([]float64, 2*sentinel.DescriptorLen)
	label[0] = 3  // block 1: 3 ops
	label[1] = 2  // 2 transposes
	label[10] = 4 // block 2: 4 ops
	label[11] = 1
	st := AggregateFromLabel(label)
	if st.OpCount != 7 {
		t.Errorf("op count = %d", st.OpCount)
	}
	if st.Sig[0] != 3 {
		t.Errorf("transpose sum = %v", st.Sig[0])
	}
}

func TestTruthPath(t *testing.T) {
	m := dynn.NewVarLSTM(dynn.VarLSTMConfig{Hidden: 32, Batch: 2, Seed: 2})
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	ctx, err := NewModelContext(m, cm, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range dynn.GenerateSamples(3, 20, 8, 32) {
		info, err := ctx.TruthPath(s)
		if err != nil || info == nil {
			t.Fatalf("TruthPath: %v", err)
		}
	}
}

func TestUntrainedPilotErrors(t *testing.T) {
	p := New(Config{Neurons: 8})
	if p.Trained() {
		t.Fatal("fresh pilot reports trained")
	}
	if _, _, err := p.Predict(dynn.CNN, make([]float64, p.Cfg.Features.Width())); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Predict err = %v, want ErrNotTrained", err)
	}
	m := dynn.NewVarLSTM(dynn.VarLSTMConfig{Hidden: 32, Batch: 2, Seed: 1})
	ctx, err := NewModelContext(m, gpusim.NewCostModel(gpusim.RTXPlatform()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	exs, err := BuildExamples(ctx, FeatureConfig{}, dynn.GenerateSamples(4, 10, 8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Resolve(exs[0]); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Resolve err = %v, want ErrNotTrained", err)
	}
	if _, err := p.Evaluate(exs); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Evaluate err = %v, want ErrNotTrained", err)
	}
	if _, err := p.MappingOverhead(exs[0]); !errors.Is(err, ErrNotTrained) {
		t.Errorf("MappingOverhead err = %v, want ErrNotTrained", err)
	}
	if err := p.Save(io.Discard); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Save err = %v, want ErrNotTrained", err)
	}
}

func TestGenerализationLeaveOut(t *testing.T) {
	// Training on one model and evaluating on another with the SAME base
	// type exercises the three-MLP routing; accuracy will be poor (labels of
	// an unseen architecture) but the pipeline must not fail.
	mA := dynn.NewTreeLSTM(dynn.TreeLSTMConfig{Levels: 4, Hidden: 32, SeqLen: 8, Batch: 2, Seed: 1})
	mB := dynn.NewVarLSTM(dynn.VarLSTMConfig{Hidden: 32, Batch: 2, Seed: 1})
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	ctxA, _ := NewModelContext(mA, cm, 0, 0)
	ctxB, _ := NewModelContext(mB, cm, 0, 0)
	samples := dynn.GenerateSamples(4, 300, 8, 32)
	exA, _ := BuildExamples(ctxA, FeatureConfig{}, samples[:200])
	exB, _ := BuildExamples(ctxB, FeatureConfig{}, samples[200:])
	p := New(Config{Neurons: 32, Epochs: 4, Seed: 1})
	p.Train(exA)
	ev, err := p.Evaluate(exB)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0 || ev.Accuracy > 1 || ev.Mispredictions > len(exB) {
		t.Errorf("evaluation out of range: acc=%v mis=%d", ev.Accuracy, ev.Mispredictions)
	}
}

func TestPilotSaveLoadRoundTrip(t *testing.T) {
	m := dynn.NewVarLSTM(dynn.VarLSTMConfig{Hidden: 32, Batch: 2, Seed: 2})
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	ctx, err := NewModelContext(m, cm, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	samples := dynn.GenerateSamples(8, 300, 8, 32)
	exs, _ := BuildExamples(ctx, FeatureConfig{}, samples)
	p := New(Config{Neurons: 32, Epochs: 5, Seed: 9})
	p.Train(exs[:250])

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions after the round trip.
	for _, e := range exs[250:260] {
		a, _, err := p.Predict(e.Base, e.Features)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := q.Predict(e.Base, e.Features)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("prediction diverged after load at dim %d", i)
			}
		}
		ra, err := p.Resolve(e)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := q.Resolve(e)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Path.Key != rb.Path.Key {
			t.Fatal("resolution diverged after load")
		}
	}
	// Untrained pilots refuse to save.
	if err := New(Config{Neurons: 8}).Save(&buf); err == nil {
		t.Error("untrained Save must fail")
	}
	// Corrupt input fails cleanly.
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Error("corrupt Load must fail")
	}
}
