package pilot

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/mathx"
	"dynnoffload/internal/nn"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/sentinel"
)

// ErrNotTrained is returned when Predict/Resolve/Evaluate run before Train:
// an untrained pilot has no feature scalers, so inference is meaningless.
// Callers match it with errors.Is; core wraps it as ErrPilotNotTrained.
var ErrNotTrained = errors.New("pilot: not trained")

// Config controls pilot-model construction and training (§IV-C: three
// parallel MLPs of four layers each — input, two hidden, output — selected by
// the DyNN's base type; LeakyReLU activations, SGD, learning rate 0.01).
type Config struct {
	Neurons   int     // hidden width per MLP layer (Table IV sweeps this)
	LR        float64 // SGD learning rate
	LRDecay   float64 // multiplicative per-epoch decay (default 0.95)
	Momentum  float64 // SGD momentum (default 0.9)
	Epochs    int
	Seed      uint64
	MaxBlocks int
	Features  FeatureConfig
}

// DefaultConfig returns the paper's pilot configuration (512 neurons per MLP
// layer, §VI-E).
func DefaultConfig() Config {
	return Config{Neurons: 512, Epochs: 15, Seed: 11, MaxBlocks: DefaultMaxBlocks}
}

func (c *Config) defaults() {
	if c.Neurons == 0 {
		c.Neurons = 512
	}
	if c.LR == 0 {
		// Scale the step size down with width so every Table IV
		// configuration trains stably under SGD+momentum.
		c.LR = 0.001 * math.Sqrt(128/float64(c.Neurons))
	}
	if c.LRDecay == 0 {
		c.LRDecay = 0.95
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Epochs == 0 {
		c.Epochs = 15
	}
	if c.MaxBlocks == 0 {
		c.MaxBlocks = DefaultMaxBlocks
	}
	c.Features.defaults()
}

// Pilot is the pilot model: a feature scaler, three parallel MLPs (one per
// base NN type, only one activated per inference — the design that keeps
// inference fast, §IV-C), and a label scaler.
type Pilot struct {
	Cfg  Config
	mlps [dynn.NumBaseTypes]*nn.MLP

	featMean, featStd   []float64
	labelMean, labelStd []float64

	// normLabels caches each model context's path labels projected into the
	// pilot's normalized label space, where output→path matching happens:
	// standardization amplifies exactly the dimensions that discriminate
	// paths, making the match robust to regression noise on the large
	// non-discriminative descriptor elements. Guarded by normMu so Resolve
	// is safe to call from many goroutines at once.
	normMu     sync.RWMutex
	normLabels map[*ModelContext][][]float64
}

// New constructs an untrained pilot model.
func New(cfg Config) *Pilot {
	cfg.defaults()
	p := &Pilot{Cfg: cfg}
	rng := mathx.NewRNG(cfg.Seed)
	in := cfg.Features.Width()
	out := cfg.MaxBlocks * sentinel.DescriptorLen
	for i := range p.mlps {
		p.mlps[i] = nn.NewMLP([]int{in, cfg.Neurons, cfg.Neurons, out}, nn.LeakyReLU, rng.Fork(uint64(i)))
	}
	return p
}

// Params returns the total trainable parameter count across the three MLPs.
func (p *Pilot) Params() int {
	n := 0
	for _, m := range p.mlps {
		n += m.Params()
	}
	return n
}

// fitScalers computes per-dimension standardization from the training set.
func (p *Pilot) fitScalers(examples []*Example) {
	if len(examples) == 0 {
		return
	}
	fw, lw := len(examples[0].Features), len(examples[0].Label)
	p.featMean, p.featStd = fitScaler(examples, fw, func(e *Example) []float64 { return e.Features })
	p.labelMean, p.labelStd = fitScaler(examples, lw, func(e *Example) []float64 { return e.Label })
}

func fitScaler(examples []*Example, width int, get func(*Example) []float64) (mean, std []float64) {
	mean = make([]float64, width)
	std = make([]float64, width)
	n := float64(len(examples))
	for _, e := range examples {
		for i, v := range get(e) {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= n
	}
	for _, e := range examples {
		for i, v := range get(e) {
			d := v - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = std[i] / n
		if std[i] < 1e-12 {
			std[i] = 1
		} else {
			std[i] = math.Sqrt(std[i])
		}
	}
	return mean, std
}

func normalize(x, mean, std []float64, out []float64) {
	for i := range x {
		out[i] = (x[i] - mean[i]) / std[i]
	}
}

func denormalize(x, mean, std []float64, out []float64) {
	for i := range x {
		out[i] = x[i]*std[i] + mean[i]
	}
}

// TrainResult summarizes a training run.
type TrainResult struct {
	Epochs      int
	FinalLoss   float64
	TrainedOn   int
	WallClock   time.Duration
	PerBaseType [dynn.NumBaseTypes]int
}

// Train fits the pilot on examples with per-sample SGD (the pilot trains
// offline, §IV-D). Examples route to the MLP of their base type.
func (p *Pilot) Train(examples []*Example) TrainResult {
	sw := obsv.StartTimer()
	p.fitScalers(examples)
	p.normMu.Lock()
	p.normLabels = map[*ModelContext][][]float64{}
	p.normMu.Unlock()
	rng := mathx.NewRNG(p.Cfg.Seed ^ 0x7e41)

	var res TrainResult
	res.TrainedOn = len(examples)
	for _, e := range examples {
		res.PerBaseType[int(e.Base)]++
	}

	fbuf := make([]float64, len(p.featMean))
	lbuf := make([]float64, len(p.labelMean))
	var lastLoss float64
	lr := p.Cfg.LR
	for epoch := 0; epoch < p.Cfg.Epochs; epoch++ {
		perm := rng.Perm(len(examples))
		var lossSum float64
		for _, idx := range perm {
			e := examples[idx]
			normalize(e.Features, p.featMean, p.featStd, fbuf)
			normalize(e.Label, p.labelMean, p.labelStd, lbuf)
			lossSum += p.mlps[int(e.Base)].TrainStep(fbuf, lbuf, lr, p.Cfg.Momentum)
		}
		lastLoss = lossSum / float64(len(examples))
		lr *= p.Cfg.LRDecay
	}
	res.Epochs = p.Cfg.Epochs
	res.FinalLoss = lastLoss
	res.WallClock = sw.Elapsed()
	return res
}

// Trained reports whether Train has fit the pilot's scalers and MLPs.
func (p *Pilot) Trained() bool { return p.featMean != nil }

// Clone returns a deep copy of the pilot: its own MLPs, scaler copies, and a
// fresh normalized-label cache. The online learner refines a clone so the
// serving feedback loop never mutates the offline-trained pilot the training
// engines share.
func (p *Pilot) Clone() *Pilot {
	c := &Pilot{Cfg: p.Cfg}
	for i, m := range p.mlps {
		c.mlps[i] = m.Clone()
	}
	c.featMean = append([]float64(nil), p.featMean...)
	c.featStd = append([]float64(nil), p.featStd...)
	c.labelMean = append([]float64(nil), p.labelMean...)
	c.labelStd = append([]float64(nil), p.labelStd...)
	if p.Trained() {
		c.normLabels = map[*ModelContext][][]float64{}
	}
	return c
}

// RefineConfig parameterizes one Refine pass (online minibatch retraining).
type RefineConfig struct {
	LR       float64
	Momentum float64
	Epochs   int
	Seed     uint64 // shuffles the minibatch order; vary per retrain
	// HeadOnly updates only each MLP's output layer, leaving the shared
	// representation frozen — the per-tenant adapter setting.
	HeadOnly bool
}

// Refine runs seeded SGD over examples WITHOUT refitting the scalers: the
// feature/label standardization (and therefore the normalized-label path
// matching space) stays exactly as Train left it, so Resolve stays consistent
// across incremental updates. This is the online-learning training step; it
// returns the mean pre-update loss of the final epoch. Refine must not run
// concurrently with Resolve — the serving loops call it serially between
// dispatches. It fails with ErrNotTrained before Train.
func (p *Pilot) Refine(examples []*Example, rc RefineConfig) (float64, error) {
	if !p.Trained() {
		return 0, fmt.Errorf("pilot: Refine before Train: %w", ErrNotTrained)
	}
	if len(examples) == 0 {
		return 0, nil
	}
	if rc.Epochs <= 0 {
		rc.Epochs = 1
	}
	from := 0
	if rc.HeadOnly {
		from = len(p.mlps[0].Layers) - 1
	}
	rng := mathx.NewRNG(rc.Seed ^ 0x0b5e55ed)
	fbuf := make([]float64, len(p.featMean))
	lbuf := make([]float64, len(p.labelMean))
	var lastLoss float64
	for epoch := 0; epoch < rc.Epochs; epoch++ {
		perm := rng.Perm(len(examples))
		var lossSum float64
		for _, idx := range perm {
			e := examples[idx]
			normalize(e.Features, p.featMean, p.featStd, fbuf)
			normalize(e.Label, p.labelMean, p.labelStd, lbuf)
			lossSum += p.mlps[int(e.Base)].TrainStepFrom(fbuf, lbuf, rc.LR, rc.Momentum, from)
		}
		lastLoss = lossSum / float64(len(examples))
	}
	return lastLoss, nil
}

// Predict runs one inference: it returns the denormalized label vector (the
// execution-block descriptor rows) and the measured inference latency — the
// paper's ~30 µs overhead per training sample (§VI-C). It fails with
// ErrNotTrained before Train.
func (p *Pilot) Predict(base dynn.BaseType, features []float64) ([]float64, time.Duration, error) {
	if !p.Trained() {
		return nil, 0, fmt.Errorf("pilot: Predict before Train: %w", ErrNotTrained)
	}
	sw := obsv.StartTimer()
	fbuf := make([]float64, len(features))
	normalize(features, p.featMean, p.featStd, fbuf)
	raw := p.mlps[int(base)].Infer(fbuf)
	out := make([]float64, len(raw))
	denormalize(raw, p.labelMean, p.labelStd, out)
	return out, sw.Elapsed(), nil
}

// Resolution is the result of one pilot inference plus output→path mapping.
type Resolution struct {
	Path    *PathInfo
	Exact   bool      // bookkeeping record matched within tolerance
	Output  []float64 // denormalized pilot output (block descriptor rows)
	InferNS int64
	MapNS   int64
}

// exactMatchRMS is the per-dimension RMS threshold (in normalized label
// units) below which a match counts as exact.
const exactMatchRMS = 0.35

// pathLabelsNorm returns (building on first use) the context's path labels in
// the pilot's normalized label space. Safe for concurrent use: the projection
// is computed outside the lock and the first writer wins.
func (p *Pilot) pathLabelsNorm(ctx *ModelContext) [][]float64 {
	p.normMu.RLock()
	cached, ok := p.normLabels[ctx]
	p.normMu.RUnlock()
	if ok {
		return cached
	}
	out := make([][]float64, len(ctx.Paths))
	for i, info := range ctx.Paths {
		nl := make([]float64, len(info.Label))
		normalize(info.Label, p.labelMean, p.labelStd, nl)
		out[i] = nl
	}
	p.normMu.Lock()
	defer p.normMu.Unlock()
	if cached, ok := p.normLabels[ctx]; ok {
		return cached
	}
	p.normLabels[ctx] = out
	return out
}

// Resolve predicts and maps the output onto a resolution path of the
// example's model (§IV-B traverse-and-match over the per-block bookkeeping
// records). Resolve is safe for concurrent use once the pilot is trained;
// it must not run concurrently with Train. It fails with ErrNotTrained
// before Train.
func (p *Pilot) Resolve(e *Example) (Resolution, error) {
	if !p.Trained() {
		return Resolution{}, fmt.Errorf("pilot: Resolve before Train: %w", ErrNotTrained)
	}
	sw := obsv.StartTimer()
	fbuf := make([]float64, len(e.Features))
	normalize(e.Features, p.featMean, p.featStd, fbuf)
	predNorm := p.mlps[int(e.Base)].Infer(fbuf)
	inferNS := sw.ElapsedNS()

	mapSW := obsv.StartTimer()
	candidates := p.pathLabelsNorm(e.Ctx)
	bestIdx, bestDist := -1, 0.0
	for i, cand := range candidates {
		var d float64
		for j := range cand {
			diff := predNorm[j] - cand[j]
			d += diff * diff
		}
		if bestIdx < 0 || d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	mapNS := mapSW.ElapsedNS()

	out := make([]float64, len(predNorm))
	denormalize(predNorm, p.labelMean, p.labelStd, out)
	res := Resolution{Output: out, InferNS: inferNS, MapNS: mapNS}
	if bestIdx >= 0 {
		res.Path = e.Ctx.Paths[bestIdx]
		rms := bestDist / float64(len(out))
		res.Exact = rms < exactMatchRMS*exactMatchRMS
	}
	return res, nil
}

// ConfusedPair is one (truth path, predicted path) mis-prediction bucket.
type ConfusedPair struct {
	TruthKey     string
	PredictedKey string // "" when the pilot mapped to no path at all
	Count        int
}

// EvalReport summarizes one Evaluate pass: accuracy, the mis-prediction
// count, the mean inference latency, and the per-path confusion summary —
// every (truth, predicted) pair the pilot got wrong, most frequent first.
type EvalReport struct {
	Samples        int
	Accuracy       float64
	Mispredictions int
	MeanLatency    time.Duration
	// Confusion lists the mis-predicted path pairs sorted by count
	// descending (ties broken by truth then predicted key, so the order is
	// deterministic). Use TopConfusions for the report-sized head.
	Confusion []ConfusedPair
}

// TopConfusions returns the k most frequent confused pairs (all of them when
// k <= 0 or exceeds the set).
func (r EvalReport) TopConfusions(k int) []ConfusedPair {
	if k <= 0 || k > len(r.Confusion) {
		k = len(r.Confusion)
	}
	return r.Confusion[:k]
}

// Evaluate measures prediction accuracy over examples: a prediction is
// correct when the mapped path equals the ground-truth path. Beyond the
// accuracy and mis-prediction count it reports which path pairs the pilot
// confuses, so "53% mispredicts on Tree-CNN" has a shape, not just a number.
// It fails with ErrNotTrained before Train.
func (p *Pilot) Evaluate(examples []*Example) (EvalReport, error) {
	rep := EvalReport{Samples: len(examples)}
	if len(examples) == 0 {
		return rep, nil
	}
	var correct int
	var totalLatNS int64
	type pair struct{ truth, pred string }
	confused := map[pair]int{}
	for _, e := range examples {
		res, err := p.Resolve(e)
		if err != nil {
			return EvalReport{}, err
		}
		totalLatNS += res.InferNS
		if res.Path != nil && res.Path.Key == e.TruthKey {
			correct++
			continue
		}
		rep.Mispredictions++
		pr := ""
		if res.Path != nil {
			pr = res.Path.Key
		}
		confused[pair{truth: e.TruthKey, pred: pr}]++
	}
	pairs := make([]pair, 0, len(confused))
	for k := range confused {
		pairs = append(pairs, k) //dynnlint:ignore determinism pairs are sorted immediately below
	}
	sort.Slice(pairs, func(i, j int) bool {
		if confused[pairs[i]] != confused[pairs[j]] {
			return confused[pairs[i]] > confused[pairs[j]]
		}
		if pairs[i].truth != pairs[j].truth {
			return pairs[i].truth < pairs[j].truth
		}
		return pairs[i].pred < pairs[j].pred
	})
	for _, k := range pairs {
		rep.Confusion = append(rep.Confusion, ConfusedPair{
			TruthKey: k.truth, PredictedKey: k.pred, Count: confused[k],
		})
	}
	rep.Accuracy = float64(correct) / float64(len(examples))
	rep.MeanLatency = time.Duration(totalLatNS / int64(len(examples)))
	return rep, nil
}

// MappingOverhead measures the output→path mapping cost (§VI-C: 10–15 µs)
// for one example. It fails with ErrNotTrained before Train.
func (p *Pilot) MappingOverhead(e *Example) (time.Duration, error) {
	res, err := p.Resolve(e)
	if err != nil {
		return 0, err
	}
	return time.Duration(res.MapNS), nil
}

// String describes the pilot briefly.
func (p *Pilot) String() string {
	return fmt.Sprintf("pilot(neurons=%d repr=%s params=%d)", p.Cfg.Neurons, p.Cfg.Features.Repr, p.Params())
}
