package pilot

import (
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
)

// TestEndToEndPilotOnTreeLSTM trains a pilot on Tree-LSTM and checks it
// learns the dynamism far better than chance.
func TestEndToEndPilotOnTreeLSTM(t *testing.T) {
	m := dynn.NewTreeLSTM(dynn.TreeLSTMConfig{Levels: 6, Hidden: 64, SeqLen: 16, Batch: 4, Seed: 3})
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	ctx, err := NewModelContext(m, cm, 0, 0)
	if err != nil {
		t.Fatalf("NewModelContext: %v", err)
	}
	if len(ctx.Paths) != 64 {
		t.Fatalf("got %d paths, want 64", len(ctx.Paths))
	}

	samples := dynn.GenerateSamples(17, 2300, 8, 48)
	exs, err := BuildExamples(ctx, FeatureConfig{}, samples)
	if err != nil {
		t.Fatalf("BuildExamples: %v", err)
	}
	train, test := exs[:2000], exs[2000:]

	p := New(Config{Neurons: 128, Epochs: 15, Seed: 5})
	res := p.Train(train)
	t.Logf("train: loss=%.4f wall=%v params=%d", res.FinalLoss, res.WallClock, p.Params())

	ev, err := p.Evaluate(test)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	t.Logf("test: acc=%.3f mispred=%d/%d latency=%v", ev.Accuracy, ev.Mispredictions, len(test), ev.MeanLatency)
	if ev.Accuracy < 0.6 {
		t.Errorf("pilot accuracy %.3f too low; learning failed", ev.Accuracy)
	}

	// Distinct truth paths must be multiple — otherwise the task is trivial.
	keys := map[string]bool{}
	for _, e := range exs {
		keys[e.TruthKey] = true
	}
	if len(keys) < 4 {
		t.Errorf("only %d distinct paths used by samples; dynamism too weak", len(keys))
	}
	t.Logf("distinct truth paths among samples: %d", len(keys))
}
