// Package pilot implements the paper's central contribution: the pilot
// model (§IV) — a light neural network that resolves a DyNN's dynamism per
// input sample and predicts the execution-block partition that guides tensor
// prefetch. It contains the feature encoders (embedded sample ⊕ AFM ⊕
// base-type one-hot), the three-parallel-MLP network (§IV-C), the offline
// training system (§IV-D, §V), inference, and the output→path mapping
// (§IV-B).
package pilot

import (
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/idiom"
)

// Repr selects the architecture representation fed to the pilot model:
// the paper's idiom-based AFM, or the global-operator-ID baseline it is
// compared against in Fig 11.
type Repr int

const (
	IdiomRepr Repr = iota
	GlobalIDRepr
)

func (r Repr) String() string {
	if r == GlobalIDRepr {
		return "global-id"
	}
	return "idiom"
}

// FeatureConfig controls feature encoding.
type FeatureConfig struct {
	Segments int  // AFM pooling segments
	Repr     Repr // architecture representation
}

// DefaultSegments is the AFM pooling granularity.
const DefaultSegments = 8

func (fc *FeatureConfig) defaults() {
	if fc.Segments == 0 {
		fc.Segments = DefaultSegments
	}
}

// archWidth returns the architecture-feature width for this config.
func (fc FeatureConfig) archWidth() int {
	fc.defaults()
	if fc.Repr == GlobalIDRepr {
		return fc.Segments * idiom.Default.NumOperators()
	}
	return fc.Segments * idiom.SigLen
}

// Width returns the total pilot input width: sample embedding +
// architecture features + base-type one-hot.
func (fc FeatureConfig) Width() int {
	return dynn.EmbedDim + fc.archWidth() + dynn.NumBaseTypes
}

// ArchFeatures encodes a static architecture under the configured
// representation. The result is constant per model and cached by callers.
func (fc FeatureConfig) ArchFeatures(s *graph.Static) []float64 {
	fc.defaults()
	if fc.Repr == GlobalIDRepr {
		g := graph.BuildGlobalIDAFM(s)
		return g.PooledFeatures(fc.Segments, idiom.Default.NumOperators())
	}
	afm := graph.BuildAFM(s)
	return afm.PooledFeatures(fc.Segments)
}

// Encode assembles the full feature vector for one sample of one model.
func (fc FeatureConfig) Encode(embed, archFeats []float64, base dynn.BaseType) []float64 {
	fc.defaults()
	out := make([]float64, 0, fc.Width())
	out = append(out, embed...)
	out = append(out, archFeats...)
	oneHot := make([]float64, dynn.NumBaseTypes)
	oneHot[int(base)] = 1
	return append(out, oneHot...)
}
