package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaccardKnown(t *testing.T) {
	a := []bool{true, true, false, false}
	b := []bool{true, false, true, false}
	// intersection 1, union 3 -> distance 2/3
	if got := Jaccard(a, b); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Jaccard = %v, want 2/3", got)
	}
	if Jaccard(a, a) != 0 {
		t.Error("identical vectors must have distance 0")
	}
	if Jaccard([]bool{false}, []bool{false}) != 0 {
		t.Error("all-false vectors must have distance 0")
	}
	if Jaccard([]bool{true}, []bool{false}) != 1 {
		t.Error("disjoint vectors must have distance 1")
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(raw [8]bool, raw2 [8]bool) bool {
		a, b := raw[:], raw2[:]
		d := Jaccard(a, b)
		if d < 0 || d > 1 {
			return false
		}
		return Jaccard(a, b) == Jaccard(b, a) // symmetry
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccardGeneralized(t *testing.T) {
	if d := JaccardGeneralized([]int{1, 2, 3}, []int{1, 2, 4}); math.Abs(d-1.0/3) > 1e-12 {
		t.Errorf("got %v, want 1/3", d)
	}
	if JaccardGeneralized(nil, nil) != 0 {
		t.Error("empty vectors must have distance 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", got)
	}
	yn := []float64{-2, -4, -6, -8}
	if got := Pearson(x, yn); math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantIsZero(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("constant series must yield 0")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125} // nonlinear but monotone
	if got := Spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman = %v, want 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{1, 2, 2, 3}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-9 {
		t.Errorf("Spearman with ties = %v, want 1", got)
	}
}

func TestCorrelationBounds(t *testing.T) {
	f := func(raw [10]float64, raw2 [10]float64) bool {
		x, y := raw[:], raw2[:]
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				x[i] = float64(i)
			}
			if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
				y[i] = float64(i * i)
			}
			x[i] = math.Mod(x[i], 1e6)
			y[i] = math.Mod(y[i], 1e6)
		}
		p := Pearson(x, y)
		s := Spearman(x, y)
		return p >= -1.0000001 && p <= 1.0000001 && s >= -1.0000001 && s <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("Summarize wrong: %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary must have N=0")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if math.Abs(s.P50-5) > 1e-12 {
		t.Errorf("P50 = %v, want 5", s.P50)
	}
	if math.Abs(s.P90-9) > 1e-12 {
		t.Errorf("P90 = %v, want 9", s.P90)
	}
}
