// Package metrics provides the statistical measures used in the paper's
// analyses: Jaccard distance over control-flow vectors (Table I), and
// Spearman/Pearson correlation for the §II-C heuristic study.
package metrics

import (
	"math"
	"sort"
)

// Jaccard returns the Jaccard distance between two boolean vectors of equal
// length: 1 - |intersection| / |union| over the sets of true positions.
// Two all-false vectors have distance 0 (identical).
func Jaccard(a, b []bool) float64 {
	if len(a) != len(b) {
		panic("metrics: Jaccard length mismatch") //dynnlint:ignore panicfree length mismatch is a caller bug; fail fast like stdlib slice kernels
	}
	inter, union := 0, 0
	for i := range a {
		if a[i] && b[i] {
			inter++
		}
		if a[i] || b[i] {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// JaccardGeneralized returns the Jaccard distance treating each position as
// a set element with a categorical value: positions disagreeing count
// against similarity. This matches "each element indicates if a specific
// control flow is taken or not" for multi-way decisions.
func JaccardGeneralized(a, b []int) float64 {
	if len(a) != len(b) {
		panic("metrics: JaccardGeneralized length mismatch") //dynnlint:ignore panicfree length mismatch is a caller bug; fail fast like stdlib slice kernels
	}
	if len(a) == 0 {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return 1 - float64(same)/float64(len(a))
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("metrics: Pearson length mismatch") //dynnlint:ignore panicfree length mismatch is a caller bug; fail fast like stdlib slice kernels
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of x and y.
func Spearman(x, y []float64) float64 {
	return Pearson(ranks(x), ranks(y))
}

// ranks assigns average ranks (ties share the mean rank).
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] { //dynnlint:ignore floatcmp rank ties require bit-equal values; a tolerance would merge distinct ranks
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Summary holds basic distribution statistics.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	P50, P90  float64
}

// Summarize computes a Summary of x.
func Summarize(x []float64) Summary {
	var s Summary
	s.N = len(x)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.P50 = percentile(sorted, 0.5)
	s.P90 = percentile(sorted, 0.9)
	var sum float64
	for _, v := range x {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range x {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	return s
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
