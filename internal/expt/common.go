// Package expt contains one driver per table and figure of the paper's
// evaluation (§VI), plus the §II analyses. Each driver returns a printable
// Table so the cmd/dynnbench CLI and the bench harness share one
// implementation. DESIGN.md §4 maps every driver to its paper artifact;
// EXPERIMENTS.md records paper-reported vs measured values.
package expt

import (
	"fmt"
	"io"
	"strings"

	"dynnoffload/internal/baselines"
	"dynnoffload/internal/core"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/pilot"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Options size the experiments. Defaults are "CI scale": fast enough for the
// test suite; cmd/dynnbench raises them toward paper scale with flags.
type Options struct {
	TrainSamples int // pilot-training samples per model
	TestSamples  int // evaluation samples per model
	Neurons      int // pilot hidden width
	Epochs       int
	Batch        int // DyNN batch size for zoo models
	Seed         uint64
	// PressureFraction sets the simulated GPU memory as a fraction of the
	// model's footprint, putting bench-scale models in the same
	// memory-pressure regime the paper's full-scale models face on a real
	// GPU.
	PressureFraction float64
	// Workers sizes the epoch worker pool for DyNN-Offload epochs: 0 runs
	// serially, <0 uses GOMAXPROCS. Results are identical at any setting
	// (the parallel runtime is deterministic); only wall clock changes.
	Workers int
	// Faults configures deterministic fault injection for DyNN-Offload
	// engines built by the workbench (zero Rate disables it). FaultSweep
	// ignores this and sweeps its own rates.
	Faults faults.Config
	// Metrics, when non-nil, receives every Recorder the experiment drivers
	// create, for live Prometheus exposition (dynnbench -serve).
	Metrics *obsv.Registry
}

// DefaultOptions returns CI-scale options.
func DefaultOptions() Options {
	return Options{
		TrainSamples:     1500,
		TestSamples:      400,
		Neurons:          128,
		Epochs:           12,
		Batch:            48,
		Seed:             42,
		PressureFraction: 0.5,
	}
}

// ModelBench bundles everything needed to evaluate one zoo model: its
// pressure-scaled platform, model context (paths, labels), and the
// train/test example split.
type ModelBench struct {
	Entry    dynn.ZooEntry
	Model    dynn.Model
	Platform gpusim.Platform
	Ctx      *pilot.ModelContext
	Train    []*pilot.Example
	Test     []*pilot.Example
}

// Workbench holds shared state across experiment drivers so expensive setup
// (contexts, pilot training) happens once.
type Workbench struct {
	Opts   Options
	Models []*ModelBench
	Pilot  *pilot.Pilot
	// Plans is the shared resolved-plan cache every engine the workbench
	// builds attaches to, so ServeSweep/ClusterSweep grid cells (which get
	// fresh engines — the mis-prediction cache is stateful) still amortize
	// plan compilation across the whole sweep.
	Plans *core.PlanCache
}

// pressurize caps the platform's GPU at a fraction of the model's largest
// footprint (and CPU at 8x that), reproducing the paper's "model larger than
// GPU memory" regime at bench scale. The budget never drops below what
// double-buffering the largest single operator requires.
func pressurize(plat gpusim.Platform, ctxTotal, maxOpBytes int64, fraction float64) gpusim.Platform {
	budget := int64(float64(ctxTotal) * fraction)
	if floor := 9 * maxOpBytes / 4; budget < floor {
		budget = floor
	}
	if budget < 1<<20 {
		budget = 1 << 20
	}
	p := plat.WithMemory(budget)
	p.CPUMemBytes = 8 * ctxTotal
	return p
}

// NewModelBench prepares one zoo entry under the given options.
func NewModelBench(entry dynn.ZooEntry, opts Options) (*ModelBench, error) {
	m := entry.New(opts.Batch, opts.Seed)
	base := gpusim.RTXPlatform()
	if entry.Name == "var-BERT" || entry.Name == "AlphaFold" || entry.Name == "fixed-BERT" {
		base = gpusim.A100Platform() // the paper deploys these on A100 (§VI-C)
	}
	cm := gpusim.NewCostModel(base)

	// Probe the model's footprint with a provisional context, then rebuild
	// the context with the pressure-scaled double-buffer budget.
	probe, err := pilot.NewModelContext(m, cm, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("expt: %s: %w", entry.Name, err)
	}
	var maxPeak, maxOp int64
	for _, info := range probe.Paths {
		if b := info.Analysis.PeakResidentBytes(); b > maxPeak {
			maxPeak = b
		}
		if b := info.Analysis.MaxSingleOpBytes(); b > maxOp {
			maxOp = b
		}
	}
	plat := pressurize(base, maxPeak, maxOp, opts.PressureFraction)
	ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(plat), plat.GPU.MemBytes/2, 0)
	if err != nil {
		return nil, fmt.Errorf("expt: %s: %w", entry.Name, err)
	}

	n := opts.TrainSamples + opts.TestSamples
	samples := dynn.GenerateSamples(opts.Seed^uint64(len(entry.Name))<<8, n, 8, 48)
	exs, err := pilot.BuildExamples(ctx, pilot.FeatureConfig{}, samples)
	if err != nil {
		return nil, fmt.Errorf("expt: %s: %w", entry.Name, err)
	}
	return &ModelBench{
		Entry:    entry,
		Model:    m,
		Platform: plat,
		Ctx:      ctx,
		Train:    exs[:opts.TrainSamples],
		Test:     exs[opts.TrainSamples:],
	}, nil
}

// NewWorkbench builds benches for all zoo models and trains one shared pilot
// on the training split of every dynamic model (§VI-A: over 24,000 samples
// from the models in Table II).
func NewWorkbench(opts Options) (*Workbench, error) {
	wb := &Workbench{Opts: opts, Plans: core.NewPlanCache()}
	for _, entry := range dynn.Zoo() {
		mb, err := NewModelBench(entry, opts)
		if err != nil {
			return nil, err
		}
		wb.Models = append(wb.Models, mb)
	}
	var train []*pilot.Example
	for _, mb := range wb.Models {
		if mb.Entry.Dynamic {
			train = append(train, mb.Train...)
		}
	}
	wb.Pilot = pilot.New(pilot.Config{Neurons: opts.Neurons, Epochs: opts.Epochs, Seed: opts.Seed})
	wb.Pilot.Train(train)
	return wb, nil
}

// Bench returns the bench for a model name.
func (wb *Workbench) Bench(name string) *ModelBench {
	for _, mb := range wb.Models {
		if mb.Entry.Name == name {
			return mb
		}
	}
	return nil
}

// Engine builds a DyNN-Offload runtime for a bench using the shared pilot,
// applying the workbench's fault-injection options when enabled.
func (wb *Workbench) Engine(mb *ModelBench) *core.Engine {
	cfg := core.DefaultConfig(mb.Platform)
	cfg.Plans = wb.Plans
	if wb.Opts.Faults.Rate > 0 {
		cfg.Faults = faults.New(wb.Opts.Faults)
	}
	return core.NewEngine(cfg, wb.Pilot)
}

// runEpoch executes an epoch serially or, when Options.Workers is set, on
// the parallel runtime (identical aggregates either way).
func (wb *Workbench) runEpoch(eng *core.Engine, mb *ModelBench) (core.EpochReport, error) {
	if wb.Opts.Workers == 0 {
		return eng.RunEpoch(mb.Test)
	}
	return eng.ParallelRunEpoch(mb.Test, core.EpochOptions{Workers: wb.Opts.Workers})
}

// epochBaseline simulates an epoch under a per-path-cached baseline policy.
func epochBaseline(mb *ModelBench, run func(info *pilot.PathInfo) (gpusim.Breakdown, error)) (gpusim.Breakdown, error) {
	cache := map[string]gpusim.Breakdown{}
	var total gpusim.Breakdown
	for _, ex := range mb.Test {
		bd, ok := cache[ex.TruthKey]
		if !ok {
			info := mb.Ctx.PathByKey(ex.TruthKey)
			var err error
			bd, err = run(info)
			if err != nil {
				return total, err
			}
			cache[ex.TruthKey] = bd
		}
		total = total.Add(bd)
	}
	return total, nil
}

// systemEpoch runs one epoch of mb.Test under the named system. Returns the
// aggregate breakdown, or an error for infeasible configurations.
func (wb *Workbench) systemEpoch(mb *ModelBench, system string) (gpusim.Breakdown, error) {
	switch system {
	case "pytorch":
		return epochBaseline(mb, func(info *pilot.PathInfo) (gpusim.Breakdown, error) {
			return baselines.PyTorch(info.Analysis, mb.Platform)
		})
	case "uvm":
		return epochBaseline(mb, func(info *pilot.PathInfo) (gpusim.Breakdown, error) {
			return baselines.UVM(info.Analysis, mb.Platform, baselines.DefaultUVMConfig())
		})
	case "dtr":
		return epochBaseline(mb, func(info *pilot.PathInfo) (gpusim.Breakdown, error) {
			return baselines.DTR(info.Analysis, mb.Platform, baselines.DefaultDTRConfig())
		})
	case "zero":
		eng := wb.Engine(mb)
		return epochBaseline(mb, func(info *pilot.PathInfo) (gpusim.Breakdown, error) {
			return baselines.ZeRO(info.Analysis, mb.Platform, mb.Entry.Dynamic,
				baselines.DefaultZeROConfig(), eng.SimulatePartition)
		})
	case "dynn-offload":
		eng := wb.Engine(mb)
		rep, err := wb.runEpoch(eng, mb)
		return rep.Breakdown, err
	}
	return gpusim.Breakdown{}, fmt.Errorf("expt: unknown system %q", system)
}

// ms renders nanoseconds as milliseconds.
func ms(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e6) }

// ratio renders a/b.
func ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
