package expt

import "runtime"

// Experiment is one registered driver: the unit cmd/dynnbench dispatches on.
// The registry is the single source of truth for the CLI's -exp values, its
// usage string, and -list output, so adding a driver here is all it takes to
// surface it everywhere.
type Experiment struct {
	Name string
	// Desc is a one-line summary for -list.
	Desc string
	// NeedsWorkbench marks drivers that want the shared workbench (model
	// contexts plus the trained pilot); Run receives nil otherwise.
	NeedsWorkbench bool
	// InAll includes the driver in `-exp all`. Drivers kept out (parallel,
	// servesweep, clustersweep) are either wired specially by the CLI or
	// long-running sweeps meant to be invoked explicitly.
	InAll bool
	Run   func(wb *Workbench, opts Options) (*Table, error)
}

// experiments holds the registry in registration order (paper order).
var experiments = []Experiment{
	{Name: "table1", Desc: "§II-A path divergence across input samples", InAll: true,
		Run: func(_ *Workbench, o Options) (*Table, error) { return TableI(o.TrainSamples*4, o.Seed) }},
	{Name: "table2", Desc: "§VI-A model zoo inventory", InAll: true,
		Run: func(_ *Workbench, o Options) (*Table, error) { return TableII(), nil }},
	{Name: "heuristic", Desc: "§II-C weak correlation of static heuristics", InAll: true,
		Run: func(_ *Workbench, o Options) (*Table, error) { return HeuristicStudy(o.TrainSamples*2, o.Seed), nil }},
	{Name: "largest", Desc: "largest trainable model per system", InAll: true,
		Run: func(_ *Workbench, o Options) (*Table, error) { return LargestModel(0, 0) }},
	{Name: "table3", Desc: "§IV-C Sentinel partition quality", InAll: true,
		Run: func(_ *Workbench, o Options) (*Table, error) { return TableIII(0, 0, 0) }},
	{Name: "fig7", Desc: "§VI-C end-to-end speedup over baselines", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return Fig7(wb), nil }},
	{Name: "fig8", Desc: "§VI-D time breakdown per system", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return Fig8(wb), nil }},
	{Name: "fig9", Desc: "§VI-E migration traffic per system", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return Fig9(wb), nil }},
	{Name: "fig10", Desc: "§VI-F iteration latency and overhead", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return Fig10(wb) }},
	{Name: "table4", Desc: "§VI-G pilot architecture study", InAll: true,
		Run: func(_ *Workbench, o Options) (*Table, error) { return TableIV(o) }},
	{Name: "fig11", Desc: "§VI-G pilot training-set size study", InAll: true,
		Run: func(_ *Workbench, o Options) (*Table, error) { return Fig11(o) }},
	{Name: "fig12", Desc: "§VI-H prediction accuracy per model", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return Fig12(wb), nil }},
	{Name: "mispred", Desc: "§VI-H mis-prediction rates", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return Mispredictions(wb) }},
	{Name: "mispred-handling", Desc: "§IV-E mis-prediction cache effect", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return MispredHandling(wb) }},
	{Name: "overhead", Desc: "§VI-F pilot runtime overhead", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return Overhead(wb) }},
	{Name: "parallel", Desc: "parallel epoch runtime speedup (CLI wires -stats/-statsjson)", NeedsWorkbench: true,
		Run: func(wb *Workbench, o Options) (*Table, error) {
			n := o.Workers
			if n <= 1 {
				n = runtime.GOMAXPROCS(0)
			}
			tab, _ := ParallelSpeedup(wb, n, nil)
			return tab, nil
		}},
	{Name: "faultsweep", Desc: "graceful degradation under fault injection", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return FaultSweep(wb) }},
	{Name: "overlap", Desc: "span-measured transfer/compute overlap", NeedsWorkbench: true, InAll: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return Overlap(wb) }},
	{Name: "servesweep", Desc: "serving: max sustainable load at fixed p99 SLO, engine vs on-demand", NeedsWorkbench: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return ServeSweep(wb) }},
	{Name: "clustersweep", Desc: "cluster serving: max sustainable QPS vs GPU count at fixed p99 SLO", NeedsWorkbench: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return ClusterSweep(wb) }},
	{Name: "onlinesweep", Desc: "serving: windowed mispredict-rate trajectory, frozen pilot vs online learning", NeedsWorkbench: true,
		Run: func(wb *Workbench, _ Options) (*Table, error) { return OnlineSweep(wb) }},
}

// Experiments returns the registry in registration order.
func Experiments() []Experiment {
	return append([]Experiment(nil), experiments...)
}

// LookupExperiment finds a driver by name.
func LookupExperiment(name string) (Experiment, bool) {
	for _, e := range experiments {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExperimentNames lists every registered driver, in registration order.
func ExperimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.Name
	}
	return names
}

// AllExperimentNames lists the drivers `-exp all` runs.
func AllExperimentNames() []string {
	var names []string
	for _, e := range experiments {
		if e.InAll {
			names = append(names, e.Name)
		}
	}
	return names
}
