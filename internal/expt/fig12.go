package expt

import (
	"fmt"

	"dynnoffload/internal/sentinel"
)

// Fig12 reproduces the partition-quality study (Fig 12): the learned
// (Sentinel-labeled) execution-block partition vs three heuristics — even
// operator count, even compute time, even tensor bytes — all executed under
// identical double-buffered runtime semantics with the same block count.
// Paper: DyNN-Offload's adaptive partition wins by 14–24%.
func Fig12(wb *Workbench) *Table {
	t := &Table{
		Title:  "Fig 12 — per-iteration time (ms) by partition policy",
		Header: []string{"model", "blocks", "sentinel", "even-ops", "even-time", "even-bytes", "best-heuristic/sentinel"},
	}
	var sumGain float64
	var n int
	for _, mb := range wb.Models {
		if !mb.Entry.Dynamic {
			continue
		}
		// Representative path: most frequent in test set.
		counts := map[string]int{}
		for _, ex := range mb.Test {
			counts[ex.TruthKey]++
		}
		bestKey, bestN := "", 0
		for k, c := range counts {
			if c > bestN {
				bestKey, bestN = k, c
			}
		}
		info := mb.Ctx.PathByKey(bestKey)
		an := info.Analysis
		blocks := info.Blocks
		eng := wb.Engine(mb)

		run := func(bl []sentinel.Block) int64 {
			if err := sentinel.Validate(bl, an.NumOps()); err != nil {
				return -1
			}
			// A heuristic partition whose block working set exceeds the
			// double-buffer budget cannot actually execute.
			for _, b := range bl {
				if an.WorkingBytes(b) > mb.Ctx.Budget {
					return -1
				}
			}
			return eng.SimulatePartition(an, bl).TotalNS()
		}
		// Heuristic partitions use the smallest block count >= the learned
		// partition's that satisfies the memory budget (the paper: "all
		// partition methods use the same number of partitions" — feasible
		// ones; an even split at exactly k often violates capacity).
		firstFeasible := func(gen func(n int) []sentinel.Block) int64 {
			for n := len(blocks); n <= 4*len(blocks)+8; n++ {
				if v := run(gen(n)); v > 0 {
					return v
				}
			}
			return -1
		}
		sNS := run(blocks)
		evenOps := firstFeasible(an.EvenOps)
		evenTime := firstFeasible(an.EvenTime)
		evenBytes := firstFeasible(an.EvenBytes)

		bestHeur := evenOps
		for _, v := range []int64{evenTime, evenBytes} {
			if v > 0 && (bestHeur <= 0 || v < bestHeur) {
				bestHeur = v
			}
		}
		gain := "-"
		if sNS > 0 && bestHeur > 0 {
			g := float64(bestHeur) / float64(sNS)
			gain = fmt.Sprintf("%.2fx", g)
			sumGain += g
			n++
		}
		fmtNS := func(v int64) string {
			if v <= 0 {
				return "-"
			}
			return ms(v)
		}
		t.Rows = append(t.Rows, []string{
			mb.Entry.Name, fmt.Sprintf("%d", len(blocks)),
			fmtNS(sNS), fmtNS(evenOps), fmtNS(evenTime), fmtNS(evenBytes), gain,
		})
	}
	if n > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"mean best-heuristic/sentinel = %.2fx (paper: adaptive partition wins by 14-24%%)", sumGain/float64(n)))
	}
	return t
}
