package expt

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/pilot"
	"dynnoffload/internal/serve"
)

// ClusterSweepGPUs is the replica grid of the cluster capacity sweep.
var ClusterSweepGPUs = []int{1, 2, 4}

// ClusterSweepStat is one migrating model's capacity curve: the maximum
// offered rate the replica pool sustains at the model's fixed p99 SLO, per
// GPU count. The bench harness serializes these to BENCH_PR6.json.
type ClusterSweepStat struct {
	Model string    `json:"model"`
	TodNS int64     `json:"od_iter_ns"`
	SLONS int64     `json:"slo_ns"`
	GPUs  []int     `json:"gpus"`
	QPS   []float64 `json:"max_qps"`
}

// ClusterSweepStats runs the cluster capacity sweep over every migrating zoo
// model: the same two-tenant serving workload as ServeSweep, played through
// serve.RunCluster against 1, 2, and 4 GPU replicas. The offered-load grid
// scales with the replica count so the knee stays inside the grid at every
// width; the per-model SLO is fixed across widths (capacity, not latency, is
// what replicas buy).
func ClusterSweepStats(wb *Workbench) ([]ClusterSweepStat, error) {
	var stats []ClusterSweepStat
	for _, mb := range wb.Models {
		pool := mb.Test
		if len(pool) > serveSweepRequests {
			pool = pool[:serveSweepRequests]
		}
		mean, worst, xfer, err := wb.serveCalibrate(mb, pool)
		if err != nil {
			return nil, err
		}
		if xfer == 0 {
			continue // fits GPU: replicas multiply an uncontended workload
		}
		st := ClusterSweepStat{Model: mb.Entry.Name, TodNS: mean, SLONS: serveSweepSLOFactor * worst}
		for _, g := range ClusterSweepGPUs {
			q, err := wb.clusterMaxQPS(mb, pool, g, mean, st.SLONS)
			if err != nil {
				return nil, err
			}
			st.GPUs = append(st.GPUs, g)
			st.QPS = append(st.QPS, q)
		}
		stats = append(stats, st)
	}
	return stats, nil
}

// ClusterSweep renders the capacity sweep as a table.
func ClusterSweep(wb *Workbench) (*Table, error) {
	stats, err := ClusterSweepStats(wb)
	if err != nil {
		return nil, err
	}
	return ClusterSweepTable(stats), nil
}

// ClusterSweepTable renders already-computed capacity curves (dynnbench runs
// the sweep once, writes -clusterjson, and prints this table from the same
// stats).
func ClusterSweepTable(stats []ClusterSweepStat) *Table {
	tab := &Table{
		Title:  "ClusterSweep: max sustainable QPS vs GPU count at fixed p99 SLO",
		Header: []string{"model", "od-iter-ms", "slo-ms", "1gpu-maxQPS", "2gpu-maxQPS", "4gpu-maxQPS", "4gpu/1gpu"},
		Notes: []string{
			fmt.Sprintf("SLO = %dx worst-case calibrated on-demand iteration, fixed per model across replica counts", serveSweepSLOFactor),
			"a load is sustained when every offered request completes with p99 <= SLO; the knee is bisected below grid resolution",
			"non-migrating zoo models are skipped: replicas multiply an uncontended workload",
		},
	}
	for _, st := range stats {
		row := []string{st.Model, ms(st.TodNS), ms(st.SLONS)}
		for _, q := range st.QPS {
			row = append(row, qps(q))
		}
		scale := "-"
		if st.QPS[0] > 0 {
			scale = fmt.Sprintf("%.2fx", st.QPS[len(st.QPS)-1]/st.QPS[0])
		}
		tab.Rows = append(tab.Rows, append(row, scale))
	}
	return tab
}

// clusterMaxQPS finds the highest offered rate the g-replica pool sustains,
// walking the grid (scaled by g) bottom-up and bisecting the knee — the
// cluster analogue of serveMaxQPS.
func (wb *Workbench) clusterMaxQPS(mb *ModelBench, pool []*pilot.Example, gpus int, todNS, sloNS int64) (float64, error) {
	base := float64(gpus) * 1e9 / float64(todNS)
	var lo float64
	hi := -1.0
	for _, u := range ServeSweepUtil {
		rate := u * base
		ok, err := wb.clusterSustains(mb, pool, gpus, rate, sloNS)
		if err != nil {
			return 0, err
		}
		if !ok {
			hi = rate
			break
		}
		lo = rate
	}
	if hi < 0 {
		return lo, nil
	}
	for i := 0; i < serveSweepBisect; i++ {
		mid := (lo + hi) / 2
		ok, err := wb.clusterSustains(mb, pool, gpus, mid, sloNS)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// clusterSustains plays one sweep point through serve.RunCluster: the same
// two-tenant split as ServeSweep, gpus fresh engines as the replica pool.
func (wb *Workbench) clusterSustains(mb *ModelBench, pool []*pilot.Example, gpus int, rate float64, sloNS int64) (bool, error) {
	requests := len(pool)
	half := mb.Platform.GPU.MemBytes / 2
	engines := make([]*core.Engine, gpus)
	for i := range engines {
		engines[i] = wb.serveEngine(mb, false)
	}
	cfg := serve.ClusterConfig{
		Config: serve.Config{
			Tenants: []serve.TenantConfig{
				{Name: "a", Requests: requests / 2, RatePerSec: rate / 2,
					Seed: wb.Opts.Seed + 101, QuotaBytes: half, SLONS: sloNS},
				{Name: "b", Requests: requests - requests/2, RatePerSec: rate / 2,
					Seed: wb.Opts.Seed + 202, QuotaBytes: half, SLONS: sloNS},
			},
			Workers: wb.Opts.Workers,
		},
	}
	rep, err := serve.RunCluster(&serve.ClusterBackend{Engines: engines, Pool: pool}, cfg)
	if err != nil {
		return false, err
	}
	return rep.Total.Completed > 0 &&
		rep.Total.Completed == rep.Total.Arrivals &&
		rep.Total.P99NS <= sloNS, nil
}
