package expt

import (
	"strings"
	"testing"
)

// TestServeSweepEngineBeatsOnDemand pins the serving headline: on every
// migrating zoo model, the engine sustains a strictly higher offered load than
// the always-on-demand baseline at the same p99 SLO.
func TestServeSweepEngineBeatsOnDemand(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	wb := testWorkbench(t)
	var migrating int
	for _, mb := range wb.Models {
		row, err := wb.sweepModel(mb)
		if err != nil {
			t.Fatalf("%s: %v", mb.Entry.Name, err)
		}
		if !row.migrating {
			continue
		}
		migrating++
		if row.engineQPS <= row.odQPS {
			t.Errorf("%s: engine maxQPS %.0f not above on-demand %.0f (SLO %dns)",
				row.name, row.engineQPS, row.odQPS, row.sloNS)
		}
	}
	if migrating == 0 {
		t.Fatal("no migrating models in the sweep — the comparison tested nothing")
	}
}

func TestServeSweepTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	wb := testWorkbench(t)
	tab, err := ServeSweep(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(wb.Models) {
		t.Fatalf("rows = %d, want one per zoo model (%d)", len(tab.Rows), len(wb.Models))
	}
	for _, row := range tab.Rows {
		if row[1] != "yes" && !strings.HasPrefix(row[1], "no") {
			t.Errorf("row %v has no migrating marker", row)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) != len(Experiments()) {
		t.Fatal("name list and registry length differ")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate experiment name %q", n)
		}
		seen[n] = true
		if _, ok := LookupExperiment(n); !ok {
			t.Errorf("LookupExperiment(%q) missed a registered name", n)
		}
	}
	for _, must := range []string{"table1", "fig7", "faultsweep", "overlap", "servesweep", "clustersweep", "parallel"} {
		if !seen[must] {
			t.Errorf("registry missing %q", must)
		}
	}
	if _, ok := LookupExperiment("nope"); ok {
		t.Error("LookupExperiment accepted an unknown name")
	}
	all := AllExperimentNames()
	for _, n := range all {
		if n == "parallel" || n == "servesweep" || n == "clustersweep" {
			t.Errorf("%q should be excluded from -exp all", n)
		}
	}
	if len(all) == 0 || len(all) >= len(names) {
		t.Errorf("all-list size %d should be a strict non-empty subset of %d", len(all), len(names))
	}
}
