package expt

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/online"
	"dynnoffload/internal/pilot"
	"dynnoffload/internal/serve"
)

const (
	// onlineSweepRequests is the request count per arm: long enough for
	// several trajectory windows and dozens of retrain intervals.
	onlineSweepRequests = 720
	// onlineSweepWindow sizes the mispredict-trajectory windows
	// (onlineSweepRequests / onlineSweepWindow points per arm).
	onlineSweepWindow = 90
	// onlineSweepInterval retrains every N completions in the online arm.
	onlineSweepInterval = 8
	// onlineSweepUtil sets the offered rate as a fraction of the calibrated
	// on-demand iteration rate — comfortably sustainable, so every request
	// completes and both arms observe the identical outcome stream.
	onlineSweepUtil = 0.5
	// onlineSweepLR matches the offline trainer's scale (Config.LR default is
	// ~0.0014 at bench width): the package default of 0.01 is tuned for wider
	// production pilots and destabilizes the narrow bench pilot. Gentler steps
	// with more epochs converge on every zoo model; hotter settings oscillate
	// on the tightest label spaces (var-BERT).
	onlineSweepLR = 0.001
	// onlineSweepEpochs passes over each retrain minibatch.
	onlineSweepEpochs = 6
	// onlineSweepMinibatch is the retrain minibatch size; larger than the
	// package default to cut gradient noise on the hardest path spaces.
	onlineSweepMinibatch = 64
)

// onlineSweepRow is one model's frozen-vs-online outcome, kept structured so
// the package tests can pin the trajectory ordering without parsing table
// text.
type onlineSweepRow struct {
	name      string
	migrating bool
	// First/last windowed mispredict rates per arm.
	frozenFirst, frozenLast float64
	onlineFirst, onlineLast float64
	retrains                int64
	retrainNS               int64
}

// OnlineSweep replays the same serving workload twice per migrating zoo model
// — once with the pilot frozen (ObserveOnly: the replay memory fills and the
// trajectory is tracked, but no retrain ever fires) and once with online
// learning enabled — and reports the windowed mispredict-rate trajectory of
// each arm. Learning from served traffic should bend the online arm's
// trajectory below the frozen arm's.
//
// Both arms run with sample memoization and the mis-prediction cache off:
// those layers mask repeat mispredicts behind cached resolutions, so leaving
// them on would show a declining "mispredict" rate even for a frozen pilot.
// The sweep isolates pilot quality, which is the quantity under test.
func OnlineSweep(wb *Workbench) (*Table, error) {
	tab := &Table{
		Title: "OnlineSweep: windowed mispredict rate, frozen pilot vs online learning",
		Header: []string{"model", "migrating", "frozen-first", "frozen-last",
			"online-first", "online-last", "retrains", "retrain-ms", "improvement"},
		Notes: []string{
			fmt.Sprintf("%d requests per arm at %.2fx the calibrated on-demand rate; window = %d requests; retrain every %d completions",
				onlineSweepRequests, onlineSweepUtil, onlineSweepWindow, onlineSweepInterval),
			"both arms disable sample memoization and the mis-prediction cache, so rates reflect raw pilot predictions",
			"improvement = frozen-last - online-last (positive: learning ends below the frozen control)",
			"static rows have a single path (nothing to predict) and fits-GPU rows never migrate; both are skipped",
		},
	}
	for _, mb := range wb.Models {
		if !mb.Entry.Dynamic {
			// A static model has one path: the pilot is trivially exact and a
			// mispredict trajectory carries no information.
			tab.Rows = append(tab.Rows, []string{mb.Entry.Name, "static (1 path)", "-", "-", "-", "-", "-", "-", "-"})
			continue
		}
		row, err := wb.onlineSweepModel(mb)
		if err != nil {
			return nil, err
		}
		if !row.migrating {
			tab.Rows = append(tab.Rows, []string{row.name, "no (fits GPU)", "-", "-", "-", "-", "-", "-", "-"})
			continue
		}
		tab.Rows = append(tab.Rows, []string{
			row.name, "yes",
			rate(row.frozenFirst), rate(row.frozenLast),
			rate(row.onlineFirst), rate(row.onlineLast),
			fmt.Sprint(row.retrains), ms(row.retrainNS),
			fmt.Sprintf("%+.3f", row.frozenLast-row.onlineLast),
		})
	}
	return tab, nil
}

// onlineSweepModel calibrates one model and plays both arms.
func (wb *Workbench) onlineSweepModel(mb *ModelBench) (onlineSweepRow, error) {
	row := onlineSweepRow{name: mb.Entry.Name}
	pool := mb.Test
	if len(pool) > serveSweepRequests {
		pool = pool[:serveSweepRequests]
	}
	mean, _, xfer, err := wb.serveCalibrate(mb, pool)
	if err != nil {
		return row, err
	}
	row.migrating = xfer > 0
	if !row.migrating {
		return row, nil
	}
	rate := onlineSweepUtil * 1e9 / float64(mean)
	frozen, err := wb.onlinePoint(mb, pool, rate, true)
	if err != nil {
		return row, err
	}
	learned, err := wb.onlinePoint(mb, pool, rate, false)
	if err != nil {
		return row, err
	}
	fo, lo := frozen.Total.Online, learned.Total.Online
	row.frozenFirst, row.frozenLast = fo.FirstWindowRate(), fo.LastWindowRate()
	row.onlineFirst, row.onlineLast = lo.FirstWindowRate(), lo.LastWindowRate()
	row.retrains, row.retrainNS = lo.Retrains, lo.RetrainNS
	return row, nil
}

// onlinePoint plays one arm: a single tenant offering onlineSweepRequests at
// the given rate against a fresh non-memoizing engine. frozen selects the
// ObserveOnly control arm; both arms share every other knob, so the only
// difference between their outcome streams is whether retrains fire.
func (wb *Workbench) onlinePoint(mb *ModelBench, pool []*pilot.Example, ratePerSec float64, frozen bool) (*serve.Report, error) {
	cfg := serve.Config{
		Tenants: []serve.TenantConfig{{
			Name: "t", Requests: onlineSweepRequests, RatePerSec: ratePerSec,
			Seed: wb.Opts.Seed + 303,
		}},
		Workers: wb.Opts.Workers,
		Online: online.Config{
			Enabled:          true,
			ObserveOnly:      frozen,
			TrainingInterval: onlineSweepInterval,
			WindowSize:       onlineSweepWindow,
			MinibatchSize:    onlineSweepMinibatch,
			LR:               onlineSweepLR,
			Epochs:           onlineSweepEpochs,
			Seed:             wb.Opts.Seed,
		},
	}
	return serve.Run(&serve.Backend{Engine: wb.onlineEngine(mb), Pool: pool}, cfg)
}

// onlineEngine builds a fresh engine per arm with the caching layers that
// mask mispredicts disabled. Fresh per arm — the fault stream, when enabled,
// is stateful and both arms must replay it identically.
func (wb *Workbench) onlineEngine(mb *ModelBench) *core.Engine {
	cfg := core.DefaultConfig(mb.Platform)
	cfg.Plans = wb.Plans
	cfg.MemoizeSamples = false
	cfg.HandleMispredictions = false
	if wb.Opts.Faults.Rate > 0 {
		cfg.Faults = faults.New(wb.Opts.Faults)
	}
	return core.NewEngine(cfg, wb.Pilot)
}

// rate renders a windowed mispredict rate.
func rate(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}
