package expt

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/pilot"
)

// NewSingleModelWorkbench builds a workbench holding only the named zoo
// entry, training the pilot on that model's split alone — the cheap setup
// behind `dynnbench -trace` and the `make trace` smoke target.
func NewSingleModelWorkbench(name string, opts Options) (*Workbench, error) {
	for _, entry := range dynn.Zoo() {
		if entry.Name != name {
			continue
		}
		mb, err := NewModelBench(entry, opts)
		if err != nil {
			return nil, err
		}
		wb := &Workbench{Opts: opts, Models: []*ModelBench{mb}, Plans: core.NewPlanCache()}
		wb.Pilot = pilot.New(pilot.Config{Neurons: opts.Neurons, Epochs: opts.Epochs, Seed: opts.Seed})
		wb.Pilot.Train(mb.Train)
		return wb, nil
	}
	return nil, fmt.Errorf("expt: unknown zoo model %q", name)
}

// TracedEpoch runs one epoch of mb.Test on the parallel runtime with span
// tracing attached. Options.Workers sizes the pool (0 runs one worker); the
// span set is identical at any setting unless the tracer is in wall mode.
func (wb *Workbench) TracedEpoch(eng *core.Engine, mb *ModelBench, tracer *obsv.Tracer) (core.EpochReport, error) {
	workers := wb.Opts.Workers
	if workers == 0 {
		workers = 1
	}
	return eng.ParallelRunEpoch(mb.Test, core.EpochOptions{Workers: workers, Tracer: tracer})
}

// traceEpochOverlap runs a traced epoch and reduces the span set to its
// overlap summary.
func (wb *Workbench) traceEpochOverlap(eng *core.Engine, mb *ModelBench) (obsv.OverlapStats, error) {
	tracer := obsv.NewTracer()
	if _, err := wb.TracedEpoch(eng, mb, tracer); err != nil {
		return obsv.OverlapStats{}, err
	}
	return obsv.NewTimeline(tracer.Spans(), mb.Platform.Link.BW).Overlap(), nil
}

// Overlap tabulates span-measured overlap efficiency — the fraction of
// transfer time that ran concurrently with compute — for the DyNN-Offload
// engine against the on-demand fallback executed unconditionally (the
// "every sample mis-predicted" regime), across the model zoo. The paper's
// bandwidth-overlap claim, made directly visible: the engine hides most
// migration behind compute, the on-demand path exposes all of it.
func Overlap(wb *Workbench) (*Table, error) {
	tab := &Table{
		Title: "Overlap efficiency: engine vs on-demand (span-measured)",
		Header: []string{"model", "xfer-MB", "hidden-ms", "exposed-ms",
			"eff-engine", "eff-ondemand", "h2d-util", "pcie-util"},
	}
	for _, mb := range wb.Models {
		eng, err := wb.traceEpochOverlap(wb.Engine(mb), mb)
		if err != nil {
			return nil, fmt.Errorf("expt: overlap: %s engine: %w", mb.Entry.Name, err)
		}
		cfg := core.DefaultConfig(mb.Platform)
		cfg.ForceOnDemand = true
		od, err := wb.traceEpochOverlap(core.NewEngine(cfg, wb.Pilot), mb)
		if err != nil {
			return nil, fmt.Errorf("expt: overlap: %s on-demand: %w", mb.Entry.Name, err)
		}
		if eng.TransferNS == 0 {
			// The model's peak fits on the bench-scale GPU (its footprint is
			// below the 9/4·maxOp double-buffer floor), so nothing migrates
			// and overlap is undefined for it.
			tab.Rows = append(tab.Rows, []string{
				mb.Entry.Name, "0.0", "-", "-", "fits-GPU", "fits-GPU", "-", "-",
			})
			continue
		}
		tab.Rows = append(tab.Rows, []string{
			mb.Entry.Name,
			fmt.Sprintf("%.1f", float64(eng.TransferBytes)/(1<<20)),
			ms(eng.HiddenNS),
			ms(eng.ExposedNS),
			fmt.Sprintf("%.1f%%", eng.Efficiency*100),
			fmt.Sprintf("%.1f%%", od.Efficiency*100),
			fmt.Sprintf("%.1f%%", eng.LaneUtil[obsv.LaneH2D]*100),
			fmt.Sprintf("%.1f%%", eng.PCIeUtil*100),
		})
	}
	tab.Notes = append(tab.Notes,
		"efficiency = hidden transfer time / total transfer time, from span interval intersection",
		"on-demand serializes every migration on the critical path, so nothing hides (0%)",
		"fits-GPU: the model's peak is under the double-buffer floor at bench scale — no migration to overlap",
	)
	return tab, nil
}
