package expt

import (
	"fmt"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/metrics"
)

// TableI reproduces the paper's Table I: the Jaccard distance between the
// control-flow vector of the first Tree-LSTM training sample and every other
// sample, demonstrating that profiling a few iterations cannot predict the
// rest (§II-B). The paper uses 6,000 samples; numSamples scales that.
func TableI(numSamples int, seed uint64) (*Table, error) {
	if numSamples <= 1 {
		numSamples = 6000
	}
	m := dynn.NewTreeLSTM(dynn.TreeLSTMConfig{Levels: 6, Hidden: 64, SeqLen: 16, Batch: 1, Seed: seed})
	samples := dynn.GenerateSamples(seed^0x7ab1e1, numSamples, 8, 48)

	static := m.Static()
	baseline, err := m.Resolve(samples[0])
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	baseBits := baseline.ControlBits(static)

	var jds []float64
	buckets := make([]int, 5) // [0,0.2) [0.2,0.4) ... [0.8,1.0]
	for _, s := range samples[1:] {
		r, err := m.Resolve(s)
		if err != nil {
			return nil, fmt.Errorf("table1: %w", err)
		}
		jd := metrics.Jaccard(baseBits, r.ControlBits(static))
		jds = append(jds, jd)
		idx := int(jd * 5)
		if idx > 4 {
			idx = 4
		}
		buckets[idx]++
	}
	sum := metrics.Summarize(jds)

	t := &Table{
		Title:  "Table I — Jaccard distance of Tree-LSTM control-flow vectors vs sample #1",
		Header: []string{"JD range", "samples", "fraction"},
	}
	labels := []string{"[0.0,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "[0.8,1.0]"}
	for i, n := range buckets {
		t.Rows = append(t.Rows, []string{
			labels[i], fmt.Sprintf("%d", n), fmt.Sprintf("%.1f%%", 100*float64(n)/float64(len(jds))),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean JD=%.3f std=%.3f p50=%.3f p90=%.3f over %d samples — wide divergence defeats PGO prefetch",
			sum.Mean, sum.Std, sum.P50, sum.P90, sum.N))
	return t, nil
}

// TableII reproduces the workload inventory (paper Table II).
func TableII() *Table {
	t := &Table{
		Title:  "Table II — evaluated workloads",
		Header: []string{"model", "base type", "dynamic", "dynamism", "params", "paths"},
	}
	for _, entry := range dynn.Zoo() {
		m := entry.New(1, 1)
		paths := "-"
		if entry.Dynamic {
			if ps, err := enumerateCount(m); err == nil {
				paths = fmt.Sprintf("%d", ps)
			}
		}
		t.Rows = append(t.Rows, []string{
			entry.Name, entry.Base.String(), fmt.Sprintf("%v", entry.Dynamic),
			entry.Dynamism, fmt.Sprintf("%.2fM", float64(dynn.ParamCount(m))/1e6), paths,
		})
	}
	return t
}

func enumerateCount(m dynn.Model) (int, error) {
	paths, err := graph.EnumeratePaths(m.Static())
	if err != nil {
		return 0, err
	}
	return len(paths), nil
}
