package expt

import (
	"strings"
	"testing"
)

func TestCompareBenchGate(t *testing.T) {
	base := []MicroBenchResult{
		{Name: "des_iteration", Model: "Tree-LSTM", NsPerOp: 1000},
		{Name: "graph_resolve", Model: "Tree-LSTM", NsPerOp: 500},
	}

	// Within the limit (and a speedup) passes, one line per baseline bench.
	lines, err := CompareBench([]MicroBenchResult{
		{Name: "des_iteration", Model: "Tree-LSTM", NsPerOp: 1200},
		{Name: "graph_resolve", Model: "Tree-LSTM", NsPerOp: 100},
		{Name: "plan_cache_hit", Model: "Tree-LSTM", NsPerOp: 9},
	}, base, 25)
	if err != nil {
		t.Fatalf("within-limit comparison failed: %v", err)
	}
	if len(lines) != len(base) {
		t.Fatalf("want %d report lines, got %d: %v", len(base), len(lines), lines)
	}

	// Beyond the limit fails and names the offender.
	_, err = CompareBench([]MicroBenchResult{
		{Name: "des_iteration", Model: "Tree-LSTM", NsPerOp: 1251},
		{Name: "graph_resolve", Model: "Tree-LSTM", NsPerOp: 500},
	}, base, 25)
	if err == nil || !strings.Contains(err.Error(), "des_iteration/Tree-LSTM") {
		t.Fatalf("want regression error naming des_iteration, got %v", err)
	}

	// A baseline benchmark dropped from the suite fails: the gate must not
	// silently pass because a bench stopped running.
	_, err = CompareBench([]MicroBenchResult{
		{Name: "des_iteration", Model: "Tree-LSTM", NsPerOp: 900},
	}, base, 25)
	if err == nil || !strings.Contains(err.Error(), "graph_resolve/Tree-LSTM") {
		t.Fatalf("want missing-benchmark error naming graph_resolve, got %v", err)
	}

	// The boundary itself (exactly +25%) passes: the gate is strict-greater.
	if _, err = CompareBench([]MicroBenchResult{
		{Name: "des_iteration", Model: "Tree-LSTM", NsPerOp: 1250},
		{Name: "graph_resolve", Model: "Tree-LSTM", NsPerOp: 625},
	}, base, 25); err != nil {
		t.Fatalf("boundary comparison failed: %v", err)
	}
}
