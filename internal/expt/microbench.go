package expt

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/online"
	"dynnoffload/internal/serve"
)

// MicroBenchResult is one timed hot-path loop: iterations and mean wall time
// per operation. These are the runtime's inner loops — what every epoch,
// sweep, and serving batch ultimately spends its time in.
type MicroBenchResult struct {
	Name    string  `json:"name"`
	Model   string  `json:"model"`
	Iters   int     `json:"iters"`
	TotalNS int64   `json:"total_ns"`
	NsPerOp float64 `json:"ns_per_op"`
}

// MicroBench times the runtime's hot paths for one zoo model:
//
//   - graph_resolve: graph.Resolve over the model's test-split decision
//     vectors (the per-sample dynamic-architecture instantiation cost);
//   - des_iteration: Engine.SimulatePartition (the double-buffered
//     simulatePipelined DES loop) over the model's first path, warm — the
//     steady-state per-sample cost with the resolved-plan cache serving;
//   - plan_cache_miss: the same loop against a cold engine every iteration,
//     so each run pays plan compilation (the liveness walks and partition
//     tables) before simulating — what one sweep grid point pays per path
//     without the shared cache;
//   - plan_cache_hit: the shared PlanCache lookup by the engines' own L2 keys
//     (core.PlanCacheKey) on a warmed cache — what a ParallelRunEpoch worker
//     or sweep cell pays to skip compilation;
//   - serve_step: mean end-to-end cost per served request through the
//     multi-tenant front end (admission, EDF batch selection, reservation,
//     RunBatch dispatch) under a saturating single-tenant arrival stream;
//   - online_retrain: one online-learning retrain stall — replay-ring insert,
//     seeded minibatch draw, and the shared-pilot Refine — at steady-state
//     ring width.
//
// iters bounds each loop; the per-op mean divides measured wall time by the
// iterations actually run. plan_cache_hit multiplies iters up: a lock-free
// map read needs far more repetitions than the timer's resolution.
func MicroBench(w *Workbench, model string, iters int) ([]MicroBenchResult, error) {
	mb := w.Bench(model)
	if mb == nil {
		return nil, fmt.Errorf("expt: no bench model %q", model)
	}
	if iters <= 0 {
		iters = 100
	}

	static := mb.Model.Static()
	decisions := make([][]int, 0, len(mb.Test))
	for _, ex := range mb.Test {
		decisions = append(decisions, mb.Model.Decide(ex.Sample))
	}
	if len(decisions) == 0 {
		return nil, fmt.Errorf("expt: %s has no test samples to resolve", model)
	}
	sw := obsv.StartTimer()
	for i := 0; i < iters; i++ {
		if _, err := graph.Resolve(static, decisions[i%len(decisions)]); err != nil {
			return nil, fmt.Errorf("expt: %s resolve: %w", model, err)
		}
	}
	resolveNS := sw.ElapsedNS()

	eng := w.Engine(mb)
	info := mb.Ctx.Paths[0]
	eng.SimulatePartition(info.Analysis, info.Blocks) // compile outside the timer
	sw = obsv.StartTimer()
	for i := 0; i < iters; i++ {
		eng.SimulatePartition(info.Analysis, info.Blocks)
	}
	desNS := sw.ElapsedNS()

	// Cold engines built outside the timer: each iteration then measures one
	// plan compilation plus the simulation it feeds.
	cold := make([]*core.Engine, iters)
	for i := range cold {
		cold[i] = core.NewEngine(core.DefaultConfig(mb.Platform), w.Pilot)
	}
	sw = obsv.StartTimer()
	for i := 0; i < iters; i++ {
		cold[i].SimulatePartition(info.Analysis, info.Blocks)
	}
	missNS := sw.ElapsedNS()

	// Warm the shared L2 with every truth path the serving pool exercises,
	// then time lookups by the exact keys engines file plans under.
	if _, err := eng.RunBatch(mb.Test, core.EpochOptions{Workers: w.Opts.Workers}); err != nil {
		return nil, fmt.Errorf("expt: %s plan-cache warmup: %w", model, err)
	}
	capacity := mb.Platform.GPU.MemBytes
	keys := make([]string, 0, len(mb.Test))
	for _, ex := range mb.Test {
		if k := core.PlanCacheKey(ex.Ctx.PathByKey(ex.TruthKey), capacity); k != "" {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("expt: %s has no plan-cache keys to probe", model)
	}
	hitIters := iters * 1000
	sw = obsv.StartTimer()
	for i := 0; i < hitIters; i++ {
		if _, ok := w.Plans.Lookup(keys[i%len(keys)]); !ok {
			return nil, fmt.Errorf("expt: %s plan cache cold after warmup (key %d)", model, i%len(keys))
		}
	}
	hitNS := sw.ElapsedNS()

	serveNS, served, err := benchServeSteps(w, mb, iters)
	if err != nil {
		return nil, err
	}

	retrainNS, err := benchOnlineRetrain(w, mb, iters)
	if err != nil {
		return nil, err
	}

	perOp := func(ns int64, n int) float64 { return float64(ns) / float64(n) }
	return []MicroBenchResult{
		{Name: "graph_resolve", Model: model, Iters: iters, TotalNS: resolveNS, NsPerOp: perOp(resolveNS, iters)},
		{Name: "des_iteration", Model: model, Iters: iters, TotalNS: desNS, NsPerOp: perOp(desNS, iters)},
		{Name: "plan_cache_miss", Model: model, Iters: iters, TotalNS: missNS, NsPerOp: perOp(missNS, iters)},
		{Name: "plan_cache_hit", Model: model, Iters: hitIters, TotalNS: hitNS, NsPerOp: perOp(hitNS, hitIters)},
		{Name: "serve_step", Model: model, Iters: served, TotalNS: serveNS, NsPerOp: perOp(serveNS, served)},
		{Name: "online_retrain", Model: model, Iters: iters, TotalNS: retrainNS, NsPerOp: perOp(retrainNS, iters)},
	}, nil
}

// benchOnlineRetrain times the online learner's retrain stall — ring insert,
// seeded minibatch draw, and the shared-pilot Refine — with TrainingInterval
// 1, so every timed Observe pays one full retrain. The ring is pre-filled
// past the minibatch size outside the timer so each retrain samples at the
// steady-state width.
func benchOnlineRetrain(w *Workbench, mb *ModelBench, n int) (int64, error) {
	l, err := online.New(online.Config{Enabled: true, TrainingInterval: 1}, w.Pilot, 0)
	if err != nil {
		return 0, fmt.Errorf("expt: %s online_retrain: %w", mb.Entry.Name, err)
	}
	exs := mb.Test
	for i := 0; i < 64; i++ {
		if _, err := l.Observe(0, exs[i%len(exs)], i%3 == 0); err != nil {
			return 0, fmt.Errorf("expt: %s online_retrain warmup: %w", mb.Entry.Name, err)
		}
	}
	sw := obsv.StartTimer()
	for i := 0; i < n; i++ {
		if _, err := l.Observe(0, exs[i%len(exs)], i%3 == 0); err != nil {
			return 0, fmt.Errorf("expt: %s online_retrain: %w", mb.Entry.Name, err)
		}
	}
	return sw.ElapsedNS(), nil
}

// benchServeSteps plays a saturating single-tenant stream of n requests
// through the serving front end and returns the wall time and the number of
// requests actually completed (the queue is sized so none shed).
func benchServeSteps(w *Workbench, mb *ModelBench, n int) (int64, int, error) {
	cfg := serve.Config{
		Tenants: []serve.TenantConfig{{
			Name: "bench", Requests: n, RatePerSec: 1e6,
			Seed: w.Opts.Seed + 7, MaxQueue: n,
		}},
		Workers: w.Opts.Workers,
	}
	backend := &serve.Backend{Engine: wbServeEngine(w, mb), Pool: mb.Test}
	sw := obsv.StartTimer()
	rep, err := serve.Run(backend, cfg)
	ns := sw.ElapsedNS()
	if err != nil {
		return 0, 0, fmt.Errorf("expt: %s serve_step: %w", mb.Entry.Name, err)
	}
	if rep.Total.Completed == 0 {
		return 0, 0, fmt.Errorf("expt: %s serve_step completed no requests", mb.Entry.Name)
	}
	return ns, int(rep.Total.Completed), nil
}

// wbServeEngine is the serve_step backend: the sweep engine with memoization
// off, so every step pays the plan-cache path rather than the per-sample memo.
func wbServeEngine(w *Workbench, mb *ModelBench) *core.Engine {
	cfg := core.DefaultConfig(mb.Platform)
	cfg.Plans = w.Plans
	return core.NewEngine(cfg, w.Pilot)
}

// CompareBench is the benchmark-regression gate: every baseline benchmark
// must appear in cur, and its ns/op may not exceed the baseline by more than
// maxRegressPct percent. It returns one human-readable line per baseline
// benchmark, and an error naming every regression (or any baseline benchmark
// the current suite dropped). Speedups and benchmarks new in cur pass freely.
func CompareBench(cur, base []MicroBenchResult, maxRegressPct float64) ([]string, error) {
	curByName := map[string]MicroBenchResult{}
	for _, r := range cur {
		curByName[r.Name+"/"+r.Model] = r
	}
	var lines []string
	var failures []string
	for _, b := range base {
		key := b.Name + "/" + b.Model
		c, ok := curByName[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from current suite", key))
			continue
		}
		limit := b.NsPerOp * (1 + maxRegressPct/100)
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		status := "ok"
		if c.NsPerOp > limit {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%, limit +%.0f%%)",
				key, c.NsPerOp, b.NsPerOp, delta, maxRegressPct))
		}
		lines = append(lines, fmt.Sprintf("%-32s %12.0f ns/op  baseline %12.0f  %+7.1f%%  %s",
			key, c.NsPerOp, b.NsPerOp, delta, status))
	}
	if len(failures) > 0 {
		return lines, fmt.Errorf("benchcheck: %d regression(s) beyond +%.0f%%:\n  %s",
			len(failures), maxRegressPct, joinLines(failures))
	}
	return lines, nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
