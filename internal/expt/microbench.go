package expt

import (
	"fmt"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/obsv"
)

// MicroBenchResult is one timed hot-path loop: iterations and mean wall time
// per operation. These are the runtime's two inner loops — what every epoch,
// sweep, and serving batch ultimately spends its time in.
type MicroBenchResult struct {
	Name    string  `json:"name"`
	Model   string  `json:"model"`
	Iters   int     `json:"iters"`
	TotalNS int64   `json:"total_ns"`
	NsPerOp float64 `json:"ns_per_op"`
}

// MicroBench times the two hot paths for one zoo model:
//
//   - graph_resolve: graph.Resolve over the model's test-split decision
//     vectors (the per-sample dynamic-architecture instantiation cost), and
//   - des_iteration: Engine.SimulatePartition (the double-buffered
//     simulatePipelined DES loop) over the model's first path.
//
// iters bounds each loop; the per-op mean divides measured wall time by the
// iterations actually run.
func MicroBench(w *Workbench, model string, iters int) ([]MicroBenchResult, error) {
	mb := w.Bench(model)
	if mb == nil {
		return nil, fmt.Errorf("expt: no bench model %q", model)
	}
	if iters <= 0 {
		iters = 100
	}

	static := mb.Model.Static()
	decisions := make([][]int, 0, len(mb.Test))
	for _, ex := range mb.Test {
		decisions = append(decisions, mb.Model.Decide(ex.Sample))
	}
	if len(decisions) == 0 {
		return nil, fmt.Errorf("expt: %s has no test samples to resolve", model)
	}
	sw := obsv.StartTimer()
	for i := 0; i < iters; i++ {
		if _, err := graph.Resolve(static, decisions[i%len(decisions)]); err != nil {
			return nil, fmt.Errorf("expt: %s resolve: %w", model, err)
		}
	}
	resolveNS := sw.ElapsedNS()

	eng := w.Engine(mb)
	info := mb.Ctx.Paths[0]
	sw = obsv.StartTimer()
	for i := 0; i < iters; i++ {
		eng.SimulatePartition(info.Analysis, info.Blocks)
	}
	desNS := sw.ElapsedNS()

	return []MicroBenchResult{
		{Name: "graph_resolve", Model: model, Iters: iters, TotalNS: resolveNS,
			NsPerOp: float64(resolveNS) / float64(iters)},
		{Name: "des_iteration", Model: model, Iters: iters, TotalNS: desNS,
			NsPerOp: float64(desNS) / float64(iters)},
	}, nil
}
