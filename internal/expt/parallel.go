package expt

import (
	"fmt"
	"runtime"
	"time"

	"dynnoffload/internal/core"
	"dynnoffload/internal/obsv"
)

// ParallelSpeedup measures the parallel epoch runtime against serial
// execution for every dynamic zoo model: wall-clock samples/sec at 1 worker
// vs N workers, with a verification column asserting that epoch aggregates
// (virtual time, traffic, mis-predictions, cache hits) are identical — the
// determinism contract of core.ParallelRunEpoch. An optional JSONL sink
// receives per-sample events for the N-worker runs. The returned RunStats
// slice carries one aggregate record per model (the N-worker run), for
// machine-readable benchmark output.
func ParallelSpeedup(wb *Workbench, workers int, sink obsv.Sink) (*Table, []obsv.RunStats) {
	tab := &Table{
		Title:  fmt.Sprintf("Parallel epoch runtime: %d workers vs serial", workers),
		Header: []string{"model", "samples", "serial-ms", "par1-ms", "parN-ms", "speedup", "samples/s", "mispred%", "cache-hit%", "aggregates"},
	}
	var worst float64
	var allStats []obsv.RunStats
	for _, mb := range wb.Models {
		if !mb.Entry.Dynamic {
			continue
		}

		serialEng := wb.Engine(mb)
		t0 := time.Now()
		serialRep, err := serialEng.RunEpoch(mb.Test)
		serialWall := time.Since(t0)
		if err != nil {
			tab.Rows = append(tab.Rows, []string{mb.Entry.Name, "-", "error: " + err.Error()})
			continue
		}

		par1Eng := wb.Engine(mb)
		t1 := time.Now()
		par1Rep, err := par1Eng.ParallelRunEpoch(mb.Test, core.EpochOptions{Workers: 1})
		par1Wall := time.Since(t1)
		if err != nil {
			tab.Rows = append(tab.Rows, []string{mb.Entry.Name, "-", "error: " + err.Error()})
			continue
		}

		parNEng := wb.Engine(mb)
		rec := obsv.NewRecorder(mb.Entry.Name, workers, sink)
		wb.Opts.Metrics.Register(rec)
		tracer := obsv.NewTracer()
		tN := time.Now()
		parNRep, err := parNEng.ParallelRunEpoch(mb.Test, core.EpochOptions{Workers: workers, Recorder: rec, Tracer: tracer})
		parNWall := time.Since(tN)
		if err != nil {
			tab.Rows = append(tab.Rows, []string{mb.Entry.Name, "-", "error: " + err.Error()})
			continue
		}
		rec.SetOverlap(obsv.NewTimeline(tracer.Spans(), mb.Platform.Link.BW).Overlap())
		stats := rec.Finish()
		allStats = append(allStats, stats)

		match := "identical"
		for _, rep := range []core.EpochReport{par1Rep, parNRep} {
			if rep.Samples != serialRep.Samples ||
				rep.Mispredictions != serialRep.Mispredictions ||
				rep.CacheHits != serialRep.CacheHits ||
				rep.Breakdown.ComputeNS != serialRep.Breakdown.ComputeNS ||
				rep.Breakdown.ExposedXferNS != serialRep.Breakdown.ExposedXferNS ||
				rep.Breakdown.H2DBytes != serialRep.Breakdown.H2DBytes ||
				rep.Breakdown.D2HBytes != serialRep.Breakdown.D2HBytes ||
				rep.Breakdown.FaultNS != serialRep.Breakdown.FaultNS {
				match = "DIVERGED"
			}
		}

		speedup := float64(par1Wall) / float64(parNWall)
		if worst == 0 || speedup < worst {
			worst = speedup
		}
		cacheStats := parNEng.CacheStats()
		tab.Rows = append(tab.Rows, []string{
			mb.Entry.Name,
			fmt.Sprintf("%d", parNRep.Samples),
			fmt.Sprintf("%.1f", serialWall.Seconds()*1e3),
			fmt.Sprintf("%.1f", par1Wall.Seconds()*1e3),
			fmt.Sprintf("%.1f", parNWall.Seconds()*1e3),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.0f", stats.SamplesPerSec),
			fmt.Sprintf("%.1f", stats.MispredictRate*100),
			fmt.Sprintf("%.1f", cacheStats.HitRate()*100),
			match,
		})
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("speedup = wall(1 worker)/wall(%d workers); aggregates column verifies worker-count determinism", workers),
		fmt.Sprintf("worst speedup %.2fx on GOMAXPROCS=%d", worst, runtime.GOMAXPROCS(0)),
	)
	if runtime.GOMAXPROCS(0) == 1 {
		tab.Notes = append(tab.Notes,
			"single-CPU host: goroutines time-slice one core, so ~1.0x wall-clock is expected; determinism (identical aggregates) is the meaningful check here")
	}
	return tab, allStats
}
