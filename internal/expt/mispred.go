package expt

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/pilot"
)

// Mispredictions reproduces §VI-E: the pilot's mis-prediction count per model
// on held-out samples. The paper reports fewer than 60 mis-predictions per
// model on 3,000 testing samples at 512 neurons, and trains without
// var-LSTM/var-BERT samples to show generalizability; we evaluate both the
// standard and the leave-out setting and report the gap honestly.
func Mispredictions(wb *Workbench) (*Table, error) {
	t := &Table{
		Title:  "§VI-E — pilot mis-predictions per model (held-out samples)",
		Header: []string{"model", "mispred", "samples", "accuracy"},
	}
	for _, mb := range wb.Models {
		if !mb.Entry.Dynamic {
			continue
		}
		ev, err := wb.Pilot.Evaluate(mb.Test)
		if err != nil {
			return nil, fmt.Errorf("mispredictions: %s: %w", mb.Entry.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			mb.Entry.Name, fmt.Sprintf("%d", ev.Mispredictions), fmt.Sprintf("%d", len(mb.Test)), fmt.Sprintf("%.3f", ev.Accuracy),
		})
	}

	// Leave-out generalization (paper: pilot trained without var-LSTM and
	// var-BERT samples, then evaluated on them).
	var train []*pilot.Example
	excluded := map[string]bool{"var-LSTM": true, "var-BERT": true}
	for _, mb := range wb.Models {
		if mb.Entry.Dynamic && !excluded[mb.Entry.Name] {
			train = append(train, mb.Train...)
		}
	}
	p := pilot.New(pilot.Config{Neurons: wb.Opts.Neurons, Epochs: wb.Opts.Epochs, Seed: wb.Opts.Seed})
	p.Train(train)
	for _, name := range []string{"var-LSTM", "var-BERT"} {
		mb := wb.Bench(name)
		ev, err := p.Evaluate(mb.Test)
		if err != nil {
			return nil, fmt.Errorf("mispredictions: %s leave-out: %w", name, err)
		}
		t.Rows = append(t.Rows, []string{
			name + " (leave-out)", fmt.Sprintf("%d", ev.Mispredictions), fmt.Sprintf("%d", len(mb.Test)), fmt.Sprintf("%.3f", ev.Accuracy),
		})
	}
	t.Notes = append(t.Notes,
		"paper: <60 mis-predictions per model at 3,000 samples (512 neurons)",
		"leave-out rows: pilot trained without that model's samples — zero-shot transfer to unseen architectures is a known gap of this reproduction (see EXPERIMENTS.md)")
	return t, nil
}

// MispredHandling reproduces §VI-H: mis-prediction counts with and without
// the runtime's mis-prediction cache, and the time impact of the on-demand
// fallback. Paper: 167/109/182 → 59/42/102 for Tree-CNN / Tree-LSTM /
// var-BERT on 3,000 samples; time impact < 1%.
func MispredHandling(wb *Workbench) (*Table, error) {
	t := &Table{
		Title:  "§VI-H — mis-predictions without/with runtime handling",
		Header: []string{"model", "without", "with", "reduction", "time impact"},
	}
	for _, name := range []string{"Tree-CNN", "Tree-LSTM", "var-BERT"} {
		mb := wb.Bench(name)

		cfgOff := core.DefaultConfig(mb.Platform)
		cfgOff.HandleMispredictions = false
		engOff := core.NewEngine(cfgOff, wb.Pilot)
		repOff, err := engOff.RunEpoch(mb.Test)
		if err != nil {
			return nil, fmt.Errorf("mispred-handling: %s: %w", name, err)
		}

		engOn := core.NewEngine(core.DefaultConfig(mb.Platform), wb.Pilot)
		repOn, err := engOn.RunEpoch(mb.Test)
		if err != nil {
			return nil, fmt.Errorf("mispred-handling: %s: %w", name, err)
		}

		// Time impact of mis-predictions: compare against an oracle epoch
		// with zero mis-predictions (every sample pipelined).
		var oracle int64
		for _, ex := range mb.Test {
			info := mb.Ctx.PathByKey(ex.TruthKey)
			oracle += engOn.SimulatePartition(info.Analysis, info.Blocks).TotalNS()
		}
		impact := float64(repOn.Breakdown.TotalNS()-repOn.PilotNS-repOn.MappingNS-oracle) / float64(oracle) * 100

		red := "-"
		if repOff.Mispredictions > 0 {
			red = fmt.Sprintf("%.0f%%", 100*float64(repOff.Mispredictions-repOn.Mispredictions)/float64(repOff.Mispredictions))
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", repOff.Mispredictions),
			fmt.Sprintf("%d", repOn.Mispredictions),
			red,
			fmt.Sprintf("%.2f%%", impact),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d samples per model; paper (3,000 samples): 167/109/182 -> 59/42/102, time impact <1%%", wb.Opts.TestSamples))
	return t, nil
}

// Overhead reproduces the §VI-C overhead analysis: pilot inference time and
// output-mapping time per training sample. Paper: ~30 us inference,
// 10–15 us mapping, vs iteration times of O(100 ms) for large DyNNs.
func Overhead(wb *Workbench) (*Table, error) {
	t := &Table{
		Title:  "§VI-C — per-sample DyNN-Offload overheads",
		Header: []string{"model", "pilot infer us", "mapping us", "iteration ms", "overhead share"},
	}
	for _, mb := range wb.Models {
		if !mb.Entry.Dynamic {
			continue
		}
		eng := wb.Engine(mb)
		rep, err := eng.RunEpoch(mb.Test)
		if err != nil {
			return nil, fmt.Errorf("overhead: %s: %w", mb.Entry.Name, err)
		}
		n := int64(rep.Samples)
		iter := rep.Breakdown.TotalNS() / n
		pilotUS := float64(rep.PilotNS) / float64(n) / 1e3
		mapUS := float64(rep.MappingNS) / float64(n) / 1e3
		t.Rows = append(t.Rows, []string{
			mb.Entry.Name,
			fmt.Sprintf("%.1f", pilotUS),
			fmt.Sprintf("%.1f", mapUS),
			ms(iter),
			fmt.Sprintf("%.3f%%", 100*float64(rep.PilotNS+rep.MappingNS)/float64(rep.Breakdown.TotalNS())),
		})
	}
	t.Notes = append(t.Notes, "paper: ~30 us inference + 10-15 us mapping, negligible vs iteration time")
	return t, nil
}
