package expt

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/faults"
)

// FaultSweepRates are the injection rates swept by FaultSweep.
var FaultSweepRates = []float64{0, 0.01, 0.05, 0.10, 0.25}

// FaultSweep measures graceful degradation: one epoch of the Tree-LSTM bench
// under deterministic fault injection at increasing rates, DyNN-Offload's
// pipelined engine against the always-on-demand baseline. Slowdown is each
// system's virtual epoch time relative to its own fault-free run, so the
// comparison isolates how each schedule absorbs faults (the pipelined engine
// hides recovery work behind compute; the on-demand baseline pays it all on
// the critical path). Fresh engines per cell keep the mis-prediction cache
// evolution identical across rates.
func FaultSweep(wb *Workbench) (*Table, error) {
	mb := wb.Bench("Tree-LSTM")
	if mb == nil {
		return nil, fmt.Errorf("expt: faultsweep: bench Tree-LSTM not found")
	}

	runCell := func(rate float64, onDemand bool) (int64, faults.Counters, error) {
		cfg := core.DefaultConfig(mb.Platform)
		cfg.ForceOnDemand = onDemand
		if rate > 0 {
			cfg.Faults = faults.New(faults.Config{Seed: wb.Opts.Seed, Rate: rate})
		}
		eng := core.NewEngine(cfg, wb.Pilot)
		rep, err := wb.runEpoch(eng, mb)
		if err != nil {
			return 0, faults.Counters{}, err
		}
		// Virtual epoch time without OverheadNS: pilot inference is measured
		// in host wall-clock and would add noise to a deterministic sweep.
		bd := rep.Breakdown
		return bd.ComputeNS + bd.ExposedXferNS + bd.RematNS + bd.FaultNS, rep.FaultCounters, nil
	}

	t := &Table{
		Title:  "Fault sweep: slowdown vs fault rate (Tree-LSTM, engine vs on-demand)",
		Header: []string{"rate", "engine ms", "engine x", "on-demand ms", "on-demand x", "injected", "retries", "sync fb", "drop fb"},
	}
	var engBase, odBase int64
	for _, rate := range FaultSweepRates {
		engNS, engC, err := runCell(rate, false)
		if err != nil {
			return nil, err
		}
		odNS, _, err := runCell(rate, true)
		if err != nil {
			return nil, err
		}
		if rate == 0 {
			engBase, odBase = engNS, odNS
		}
		slow := func(ns, base int64) string {
			if base == 0 {
				return "-"
			}
			return fmt.Sprintf("%.3fx", float64(ns)/float64(base))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			ms(engNS), slow(engNS, engBase),
			ms(odNS), slow(odNS, odBase),
			fmt.Sprintf("%d", engC.Injected()),
			fmt.Sprintf("%d", engC.Retries),
			fmt.Sprintf("%d", engC.SyncFallbacks),
			fmt.Sprintf("%d", engC.OnDemandFallbacks),
		})
	}
	t.Notes = append(t.Notes,
		"slowdown is each system's virtual epoch time over its own fault-free run",
		fmt.Sprintf("fault seed %d; counters are the engine's (injected faults and recovery work)", wb.Opts.Seed),
	)
	return t, nil
}
