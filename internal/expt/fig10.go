package expt

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/distributed"
)

// fig10GPUs is the scalability study's cluster widths. The var-BERT bench
// runs on the A100 platform (4 GPUs per node), so the 8-GPU point crosses a
// node boundary and its ring hops fall back to the shared PCIe links.
var fig10GPUs = []int{1, 2, 4, 8}

// Fig10 reproduces the scalability study (Fig 10) on the cluster DES
// runtime: data-parallel DyNN-Offload training with one engine per simulated
// GPU on a shared virtual clock, gradients synchronized by a scheduled ring
// all-reduce that contends with offload traffic on the modeled interconnect.
// Paper observations: near-proportional throughput to 4 GPUs, slower scaling
// beyond (inter-node communication), while DyNN-Offload's pilot overhead
// stays constant with scale.
func Fig10(wb *Workbench) (*Table, error) {
	mb := wb.Bench("var-BERT")
	gradBytes := int64(0)
	for _, ws := range mb.Model.WeightStates() {
		gradBytes += ws.Grad.Bytes()
	}
	topo := distributed.DefaultTopology(mb.Platform)

	t := &Table{
		Title:  "Fig 10 — data-parallel scaling of DyNN-Offload (var-BERT, DES cluster runtime)",
		Header: []string{"gpus", "makespan ms", "allreduce ms", "comm MB", "samples/s", "scaling eff", "pilot overhead us"},
	}
	var base *distributed.EpochReport
	for _, g := range fig10GPUs {
		engines := make([]*core.Engine, g)
		for i := range engines {
			engines[i] = wb.Engine(mb)
		}
		c, err := distributed.New(distributed.Config{
			GPUs: g, Topology: topo, GradBytes: gradBytes, Workers: wb.Opts.Workers,
		}, engines)
		if err != nil {
			return nil, fmt.Errorf("fig10: %w", err)
		}
		rep, err := c.TrainEpoch(mb.Test)
		if err != nil {
			return nil, fmt.Errorf("fig10: %d gpus: %w", g, err)
		}
		if base == nil {
			base = rep
		}
		eff := rep.ThroughputPerSec / (float64(g) * base.ThroughputPerSec)
		overheadUS := float64(rep.Report.PilotNS+rep.Report.MappingNS) / 1e3 / float64(rep.Report.Samples)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", g),
			ms(rep.MakespanNS),
			ms(rep.AllReduceNS),
			fmt.Sprintf("%.1f", float64(rep.CommBytes)/float64(1<<20)),
			fmt.Sprintf("%.1f", rep.ThroughputPerSec),
			fmt.Sprintf("%.2f", eff),
			fmt.Sprintf("%.1f", overheadUS),
		})
	}
	t.Notes = append(t.Notes,
		"paper: proportional scaling to 4 GPUs, slower beyond (inter-node communication); pilot overhead constant at all scales",
		"ring sends are scheduled DES events; the 8-GPU point queues cross-node chunks behind offload traffic on the PCIe links")
	return t, nil
}
