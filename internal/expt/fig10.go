package expt

import (
	"fmt"

	"dynnoffload/internal/distributed"
)

// Fig10 reproduces the scalability study (Fig 10): data-parallel DyNN-Offload
// training on 1–8 A100s (two 4-GPU nodes), constant per-GPU batch (20).
// Paper observations: near-proportional throughput to 4 GPUs, slower scaling
// beyond (inter-node communication), while DyNN-Offload's overhead and
// mis-prediction-induced on-demand migration stay constant with scale.
func Fig10(wb *Workbench) (*Table, error) {
	mb := wb.Bench("var-BERT")
	eng := wb.Engine(mb)
	rep, err := eng.RunEpoch(mb.Test)
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	perIter := rep.Breakdown.TotalNS() / int64(rep.Samples)
	overhead := (rep.PilotNS + rep.MappingNS) / int64(rep.Samples)

	// On-demand (mis-prediction) exposure per iteration.
	onDemand := rep.Breakdown.FaultNS / int64(rep.Samples)

	gradBytes := int64(0)
	for _, ws := range mb.Model.WeightStates() {
		gradBytes += ws.Grad.Bytes()
	}
	cfg := distributed.Config{
		Platform:    mb.Platform,
		NumGPUs:     8,
		GradBytes:   gradBytes,
		PerGPUBatch: 20,
	}
	cfg.Platform.NumGPUs = 4 // 4 GPUs per node; >4 crosses nodes
	results, err := distributed.Scale(cfg, perIter, overhead, onDemand, []int{1, 2, 4, 8})
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}

	t := &Table{
		Title:  "Fig 10 — data-parallel scaling of DyNN-Offload (var-BERT, per-GPU batch 20)",
		Header: []string{"gpus", "iter ms", "allreduce ms", "samples/s", "scaling eff", "offload overhead us", "on-demand us"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.NumGPUs),
			ms(r.IterNS),
			ms(r.AllReduceNS),
			fmt.Sprintf("%.1f", r.ThroughputPerSec),
			fmt.Sprintf("%.2f", r.ScalingEfficiency),
			fmt.Sprintf("%.1f", float64(r.OffloadOverheadNS)/1e3),
			fmt.Sprintf("%.1f", float64(r.MispredictOnDemand)/1e3),
		})
	}
	t.Notes = append(t.Notes,
		"paper: proportional scaling to 4 GPUs, slower beyond (inter-GPU communication); offload overhead constant at all scales")
	return t, nil
}
