package expt

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// maskTable copies a table with the given column indexes replaced by a fixed
// placeholder. The masked columns hold wall-clock measurements (pilot
// training/inference time and everything derived from them) that legitimately
// vary run to run; everything else in these tables is simulated virtual time
// or seeded arithmetic and must reproduce byte-for-byte.
func maskTable(tab *Table, cols ...int) *Table {
	masked := &Table{
		Title:  tab.Title,
		Header: append([]string(nil), tab.Header...),
		Notes:  append([]string(nil), tab.Notes...),
	}
	set := map[int]bool{}
	for _, c := range cols {
		set[c] = true
	}
	for _, row := range tab.Rows {
		r := append([]string(nil), row...)
		for i := range r {
			if set[i] {
				r[i] = "<wall>"
			}
		}
		masked.Rows = append(masked.Rows, r)
	}
	return masked
}

// goldenCheck renders the table (volatile columns masked) and compares it to
// the checked-in golden file; -update rewrites the file instead.
func goldenCheck(t *testing.T, name string, tab *Table, volatileCols ...int) {
	t.Helper()
	var sb strings.Builder
	maskTable(tab, volatileCols...).Fprint(&sb)
	got := sb.String()
	path := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from %s\n--- got ---\n%s--- want ---\n%s", name, path, got, string(want))
	}
}

// goldenOpts sizes the pilot-study experiments (Table IV, Fig 11) well below
// bench scale: golden tests pin exact output, so they only need enough data
// for stable seeded arithmetic, not statistical quality.
func goldenOpts() Options {
	opts := DefaultOptions()
	opts.TrainSamples = 120
	opts.TestSamples = 40
	opts.Epochs = 4
	opts.Batch = 8
	return opts
}

func TestGoldenTableI(t *testing.T) {
	tab, err := TableI(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "table1", tab)
}

func TestGoldenTableIII(t *testing.T) {
	tab, err := TableIII(24, 1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "table3", tab)
}

func TestGoldenTableIV(t *testing.T) {
	if testing.Short() {
		t.Skip("pilot dataset construction is expensive")
	}
	tab, err := TableIV(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "table4", tab, 3, 4) // infer us, train s: wall clock
}

func TestGoldenFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("pilot dataset construction is expensive")
	}
	tab, err := Fig11(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "fig11", tab)
}

func TestGoldenServeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	tab, err := ServeSweep(testWorkbench(t))
	if err != nil {
		t.Fatal(err)
	}
	// Every column is virtual time or seeded arithmetic: nothing to mask.
	goldenCheck(t, "servesweep", tab)
}

func TestGoldenFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	tab, err := Fig10(testWorkbench(t))
	if err != nil {
		t.Fatal(err)
	}
	// The cluster DES runtime makes makespan, all-reduce, throughput, and
	// scaling efficiency pure virtual time; only the measured pilot overhead
	// column is wall clock.
	goldenCheck(t, "fig10", tab, 6)
}

func TestGoldenClusterSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	tab, err := ClusterSweep(testWorkbench(t))
	if err != nil {
		t.Fatal(err)
	}
	// Every column is virtual time or seeded arithmetic: nothing to mask.
	goldenCheck(t, "clustersweep", tab)
}

func TestGoldenOnlineSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	tab, err := OnlineSweep(testWorkbench(t))
	if err != nil {
		t.Fatal(err)
	}
	// Window rates, retrain counts, and retrain cost are all seeded simulated
	// quantities: nothing to mask.
	goldenCheck(t, "onlinesweep", tab)
}
