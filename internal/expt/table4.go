package expt

import (
	"fmt"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
)

// pilotDataset builds a train/test example set over the dynamic zoo under a
// feature configuration — shared by Table IV, Fig 11, and the VI-E studies.
func pilotDataset(opts Options, fc pilot.FeatureConfig, exclude map[string]bool) (train, test []*pilot.Example, err error) {
	for _, entry := range dynn.DynamicZoo() {
		m := entry.New(opts.Batch, opts.Seed)
		cm := gpusim.NewCostModel(gpusim.RTXPlatform())
		ctx, err := pilot.NewModelContext(m, cm, 0, 0)
		if err != nil {
			return nil, nil, err
		}
		n := opts.TrainSamples + opts.TestSamples
		samples := dynn.GenerateSamples(opts.Seed^uint64(len(entry.Name))<<6, n, 8, 48)
		exs, err := pilot.BuildExamples(ctx, fc, samples)
		if err != nil {
			return nil, nil, err
		}
		if !exclude[entry.Name] {
			train = append(train, exs[:opts.TrainSamples]...)
		}
		test = append(test, exs[opts.TrainSamples:]...)
	}
	return train, test, nil
}

// TableIV reproduces the pilot-model construction study (Table IV): accuracy
// and inference time as the per-layer neuron count grows. Paper: accuracy
// jumps +0.12 going 256→512, then flattens while inference time keeps
// doubling — 512 is the knee.
func TableIV(opts Options) (*Table, error) {
	train, test, err := pilotDataset(opts, pilot.FeatureConfig{}, nil)
	if err != nil {
		return nil, fmt.Errorf("table4: %w", err)
	}
	t := &Table{
		Title:  "Table IV — pilot accuracy and inference time vs MLP width",
		Header: []string{"neurons", "accuracy", "mispred", "infer us", "train s", "params"},
	}
	var prevAcc float64
	for _, n := range []int{128, 256, 512, 1024} {
		p := pilot.New(pilot.Config{Neurons: n, Epochs: opts.Epochs, Seed: opts.Seed})
		res := p.Train(train)
		ev, err := p.Evaluate(test)
		if err != nil {
			return nil, fmt.Errorf("table4: %w", err)
		}
		acc, mis, lat := ev.Accuracy, ev.Mispredictions, ev.MeanLatency
		delta := ""
		if prevAcc > 0 {
			delta = fmt.Sprintf(" (%+.2f)", acc-prevAcc)
		}
		prevAcc = acc
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f%s", acc, delta),
			fmt.Sprintf("%d/%d", mis, len(test)),
			fmt.Sprintf("%.1f", float64(lat.Nanoseconds())/1e3),
			fmt.Sprintf("%.1f", res.WallClock.Seconds()),
			fmt.Sprintf("%d", p.Params()),
		})
	}
	t.Notes = append(t.Notes,
		"paper: accuracy +0.12 at 256->512 then flattens; inference time ~2x per doubling; 512 chosen",
		"inference here is Go float64 on CPU; the paper's 30 us is CUDA-free C++ — compare shape, not absolute")
	return t, nil
}

// Fig11 reproduces the representation study (Fig 11): pilot accuracy with
// the idiom-based AFM vs the global-operator-ID representation at equal
// width. Paper: idiom wins by >=19% accuracy at the same neuron count; the
// ID representation needs orders of magnitude more neurons for parity.
func Fig11(opts Options) (*Table, error) {
	t := &Table{
		Title:  "Fig 11 — idiom-based vs global-ID architecture representation",
		Header: []string{"neurons", "idiom acc", "global-id acc", "gap", "idiom feats", "id feats"},
	}
	type reprRun struct {
		fc   pilot.FeatureConfig
		accs map[int]float64
	}
	runs := []reprRun{
		{fc: pilot.FeatureConfig{Repr: pilot.IdiomRepr}, accs: map[int]float64{}},
		{fc: pilot.FeatureConfig{Repr: pilot.GlobalIDRepr}, accs: map[int]float64{}},
	}
	widths := []int{128, 256, 512}
	for i := range runs {
		train, test, err := pilotDataset(opts, runs[i].fc, nil)
		if err != nil {
			return nil, fmt.Errorf("fig11: %w", err)
		}
		for _, n := range widths {
			cfg := pilot.Config{Neurons: n, Epochs: opts.Epochs, Seed: opts.Seed, Features: runs[i].fc}
			p := pilot.New(cfg)
			p.Train(train)
			ev, err := p.Evaluate(test)
			if err != nil {
				return nil, fmt.Errorf("fig11: %w", err)
			}
			runs[i].accs[n] = ev.Accuracy
		}
	}
	idiomW := (pilot.FeatureConfig{Repr: pilot.IdiomRepr}).Width()
	idW := (pilot.FeatureConfig{Repr: pilot.GlobalIDRepr}).Width()
	for _, n := range widths {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", runs[0].accs[n]),
			fmt.Sprintf("%.3f", runs[1].accs[n]),
			fmt.Sprintf("%+.3f", runs[0].accs[n]-runs[1].accs[n]),
			fmt.Sprintf("%d", idiomW),
			fmt.Sprintf("%d", idW),
		})
	}
	t.Notes = append(t.Notes, "paper: idiom representation leads by >=19% accuracy at equal model size")
	return t, nil
}
