package expt

import "testing"

// TestOnlineSweepLearningBeatsFrozen pins the PR's headline claim: with
// memoization and the mis-prediction cache out of the way, in-loop learning
// ends every migrating dynamic model's windowed mispredict trajectory
// strictly below the frozen-pilot control, and the online arm itself declines
// on the tree/expert models whose path skew the replay memory can exploit.
func TestOnlineSweepLearningBeatsFrozen(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	wb := testWorkbench(t)
	declineModels := map[string]bool{"Tree-CNN": true, "MoE": true}
	var migrating int
	for _, mb := range wb.Models {
		if !mb.Entry.Dynamic {
			continue
		}
		row, err := wb.onlineSweepModel(mb)
		if err != nil {
			t.Fatalf("%s: %v", mb.Entry.Name, err)
		}
		if !row.migrating {
			continue
		}
		migrating++
		if row.retrains == 0 || row.retrainNS == 0 {
			t.Errorf("%s: online arm fired no retrains (retrains=%d retrainNS=%d)",
				row.name, row.retrains, row.retrainNS)
		}
		if row.onlineLast < 0 || row.frozenLast < 0 {
			t.Fatalf("%s: missing trajectory windows (online=%v frozen=%v)",
				row.name, row.onlineLast, row.frozenLast)
		}
		if row.onlineLast >= row.frozenLast {
			t.Errorf("%s: online last-window rate %.3f did not end below frozen %.3f",
				row.name, row.onlineLast, row.frozenLast)
		}
		if declineModels[row.name] && row.onlineLast >= row.onlineFirst {
			t.Errorf("%s: online trajectory did not decline (first %.3f, last %.3f)",
				row.name, row.onlineFirst, row.onlineLast)
		}
	}
	if migrating < 4 {
		t.Fatalf("only %d migrating dynamic models — sweep lost its subjects", migrating)
	}
}
