package expt

import (
	"errors"
	"fmt"

	"dynnoffload/internal/baselines"
	"dynnoffload/internal/core"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/pilot"
)

// fig9Fractions are the GPU-memory budgets swept (fraction of the model's
// footprint). At 1.1 everything fits (the unmodified-PyTorch reference
// point); smaller budgets expose the policies' degradation curves.
var fig9Fractions = []float64{1.1, 0.8, 0.6, 0.45, 0.3, 0.2}

// Fig9 reproduces the memory-budget sweep (Fig 9): per-iteration time of
// PyTorch, DTR, and DyNN-Offload as the GPU budget shrinks. Paper
// observations: DyNN-Offload beats DTR by ~12% on average (up to 28%); DTR
// degrades superlinearly (recompute chains lengthen), DyNN-Offload degrades
// ~linearly until PCIe bandwidth saturates; 'x' marks infeasible budgets.
func Fig9(wb *Workbench) *Table {
	t := &Table{
		Title:  "Fig 9 — per-iteration time (ms) vs GPU memory budget (fraction of model footprint)",
		Header: []string{"model", "system"},
	}
	for _, f := range fig9Fractions {
		t.Header = append(t.Header, fmt.Sprintf("%.0f%%", f*100))
	}

	for _, mb := range wb.Models {
		if !mb.Entry.Dynamic {
			continue
		}
		// The representative path: the most common truth path in the test set.
		counts := map[string]int{}
		for _, ex := range mb.Test {
			counts[ex.TruthKey]++
		}
		bestKey, bestN := "", 0
		for k, n := range counts {
			if n > bestN {
				bestKey, bestN = k, n
			}
		}
		info := mb.Ctx.PathByKey(bestKey)
		total := info.Trace.TotalBytes()

		for _, sys := range []string{"pytorch", "dtr", "dynn-offload"} {
			row := []string{mb.Entry.Name, sys}
			for _, f := range fig9Fractions {
				plat := mb.Platform.WithMemory(int64(f * float64(total)))
				ns, err := fig9Point(sys, info, plat)
				if err != nil {
					row = append(row, "x")
					continue
				}
				row = append(row, ms(ns))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"'x' = cannot train under that budget (the red x in the paper's Fig 9)",
		"paper: DyNN-Offload consistently beats DTR (12% avg, up to 28%); DTR degrades superlinearly")
	return t
}

func fig9Point(system string, info *pilot.PathInfo, plat gpusim.Platform) (int64, error) {
	switch system {
	case "pytorch":
		bd, err := baselines.PyTorch(info.Analysis, plat)
		return bd.TotalNS(), err
	case "dtr":
		bd, err := baselines.DTR(info.Analysis, plat, baselines.DefaultDTRConfig())
		return bd.TotalNS(), err
	case "dynn-offload":
		if info.Trace.TotalBytes() > plat.GPU.MemBytes+plat.CPUMemBytes {
			return 0, errors.New("exceeds CPU+GPU")
		}
		blocks := info.Analysis.Partition(plat.GPU.MemBytes / 2)
		if blocks == nil {
			return 0, errors.New("op exceeds work buffer")
		}
		eng := core.NewEngine(core.DefaultConfig(plat), nil)
		return eng.SimulatePartition(info.Analysis, blocks).TotalNS(), nil
	}
	return 0, fmt.Errorf("unknown system %q", system)
}
