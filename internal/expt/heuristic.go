package expt

import (
	"fmt"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/metrics"
)

// HeuristicStudy reproduces the §II-C analysis: can a simple input heuristic
// (the paper tries the verb/noun token ratio of the input sentence) predict
// control-flow decisions in a DyNN? The paper found at most 0.20 Spearman /
// 0.25 Pearson correlation — too weak to guide prefetch — which motivated
// the learned approach.
func HeuristicStudy(numSamples int, seed uint64) *Table {
	if numSamples <= 1 {
		numSamples = 3000
	}
	m := dynn.NewVarBERT(dynn.VarBERTConfig{
		Layers: 12, Hidden: 128, SeqLen: 32, Batch: 1, Groups: 6, Seed: seed,
	})
	samples := dynn.GenerateSamples(seed^0x4e47157, numSamples, 8, 48)

	// The "verb/noun ratio" proxy: partition the synthetic vocabulary into
	// POS-like classes by token ID residue and compute the class ratio —
	// exactly the kind of shallow input statistic the paper tested.
	ratioOf := func(s *dynn.Sample) float64 {
		verbs, nouns := 0, 1
		for _, tok := range s.Tokens {
			switch tok % 5 {
			case 0:
				verbs++
			case 1, 2:
				nouns++
			}
		}
		return float64(verbs) / float64(nouns)
	}

	sites := m.Static().NumSites
	ratios := make([]float64, 0, numSamples)
	decisions := make([][]float64, sites)
	for i := range decisions {
		decisions[i] = make([]float64, 0, numSamples)
	}
	for _, s := range samples {
		ratios = append(ratios, ratioOf(s))
		d := m.Decide(s)
		for site := 0; site < sites; site++ {
			decisions[site] = append(decisions[site], float64(d[site]))
		}
	}

	t := &Table{
		Title:  "§II-C — correlation of the verb/noun-ratio heuristic with var-BERT branch decisions",
		Header: []string{"branch site", "pearson", "spearman"},
	}
	var maxP, maxS float64
	for site := 0; site < sites; site++ {
		p := metrics.Pearson(ratios, decisions[site])
		sp := metrics.Spearman(ratios, decisions[site])
		if a := abs(p); a > maxP {
			maxP = a
		}
		if a := abs(sp); a > maxS {
			maxS = a
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", site), fmt.Sprintf("%+.3f", p), fmt.Sprintf("%+.3f", sp),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max |pearson|=%.3f max |spearman|=%.3f over %d samples — paper reports at most 0.25 / 0.20 (low correlation)",
			maxP, maxS, numSamples))
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
