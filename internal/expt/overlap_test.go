package expt

import (
	"strconv"
	"strings"
	"testing"

	"dynnoffload/internal/obsv"
)

func pct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage: %v", cell, err)
	}
	return v
}

// TestOverlapEngineBeatsOnDemand pins the shape of the overlap experiment:
// the on-demand baseline's span-measured efficiency is exactly 0 for every
// migrating model (it serializes every transfer onto the critical path), and
// the engine is strictly above it for most of them. A migrating model whose
// tiny-fixture pilot mispredicts every sample legitimately ties at 0 (all its
// samples degrade to on-demand), so strictness is asserted in aggregate, not
// per row — at dynnbench scale the pilot is stronger and every migrating
// model clears the baseline.
func TestOverlapEngineBeatsOnDemand(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	wb := testWorkbench(t)
	tab, err := Overlap(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(wb.Models) {
		t.Fatalf("%d rows for %d models", len(tab.Rows), len(wb.Models))
	}
	migrating, hiding := 0, 0
	for _, row := range tab.Rows {
		name, effEng, effOD := row[0], row[4], row[5]
		if effEng == "fits-GPU" {
			if row[1] != "0.0" {
				t.Errorf("%s: fits-GPU row reports %s MB transferred", name, row[1])
			}
			continue
		}
		migrating++
		if got := pct(t, effOD); got != 0 {
			t.Errorf("%s: on-demand efficiency = %v%%, want exactly 0 (serial schedule)", name, got)
		}
		if got := pct(t, effEng); got > 0 {
			hiding++
		} else if got < 0 {
			t.Errorf("%s: engine efficiency = %v%%", name, got)
		}
	}
	if migrating < 3 {
		t.Fatalf("only %d migrating models — the comparison is near-vacuous", migrating)
	}
	if hiding < migrating/2+1 {
		t.Fatalf("engine strictly above on-demand on %d of %d migrating models — overlap is not being measured", hiding, migrating)
	}
}

func TestSingleModelWorkbench(t *testing.T) {
	if _, err := NewSingleModelWorkbench("no-such-model", DefaultOptions()); err == nil {
		t.Fatal("unknown model accepted")
	}
	opts := DefaultOptions()
	opts.TrainSamples, opts.TestSamples, opts.Epochs, opts.Neurons = 120, 30, 4, 48
	wb, err := NewSingleModelWorkbench("Tree-LSTM", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(wb.Models) != 1 || wb.Models[0].Entry.Name != "Tree-LSTM" {
		t.Fatalf("workbench models = %+v", wb.Models)
	}
	mb := wb.Models[0]
	tracer := obsv.NewTracer()
	rep, err := wb.TracedEpoch(wb.Engine(mb), mb, tracer)
	if err != nil {
		t.Fatal(err)
	}
	if tracer.SampleCount() != rep.Samples || rep.Samples != len(mb.Test) {
		t.Errorf("traced %d samples, epoch %d, test split %d", tracer.SampleCount(), rep.Samples, len(mb.Test))
	}
	if len(tracer.Spans()) == 0 {
		t.Error("traced epoch produced no spans")
	}
}
