package expt

import "testing"

// TestClusterSweepScalesWithGPUs is the PR's acceptance criterion: on every
// migrating zoo model the maximum sustainable QPS at the model's fixed p99
// SLO increases strictly monotonically with the GPU count.
func TestClusterSweepScalesWithGPUs(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	stats, err := ClusterSweepStats(testWorkbench(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no migrating models in the sweep")
	}
	for _, st := range stats {
		if len(st.GPUs) != len(ClusterSweepGPUs) || len(st.QPS) != len(ClusterSweepGPUs) {
			t.Fatalf("%s: ragged curve %v %v", st.Model, st.GPUs, st.QPS)
		}
		if st.QPS[0] <= 0 {
			t.Errorf("%s: single replica sustains no load", st.Model)
		}
		for i := 1; i < len(st.QPS); i++ {
			if st.QPS[i] <= st.QPS[i-1] {
				t.Errorf("%s: max QPS not strictly increasing at %d gpus: %v",
					st.Model, st.GPUs[i], st.QPS)
			}
		}
		t.Logf("%s: slo=%s gpus=%v qps=%v", st.Model, ms(st.SLONS), st.GPUs, st.QPS)
	}
}
