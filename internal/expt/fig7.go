package expt

import (
	"errors"
	"fmt"

	"dynnoffload/internal/baselines"
)

// fig7Systems are the systems compared in Fig 7/8.
var fig7Systems = []string{"uvm", "dtr", "zero", "dynn-offload"}

// Fig7 reproduces the one-epoch training-time comparison (Fig 7): every zoo
// model under UVM, DTR, ZeRO-Offload, and DyNN-Offload, under memory
// pressure. Paper observations: UVM worst (on-demand page migration);
// DyNN-Offload beats DTR by ~35% on average; ZeRO works only on static NNs
// (where DyNN-Offload still wins ~33% via better partitioning).
func Fig7(wb *Workbench) *Table {
	t := &Table{
		Title:  "Fig 7 — one-epoch training time (ms, simulated) under memory pressure",
		Header: []string{"model", "uvm", "dtr", "zero-offload", "dynn-offload", "dtr/offload", "uvm/offload"},
	}
	var sumDTRRatio, sumUVMRatio float64
	var nRatio, nUVMRatio int
	for _, mb := range wb.Models {
		row := []string{mb.Entry.Name}
		times := map[string]int64{}
		for _, sys := range fig7Systems {
			bd, err := wb.systemEpoch(mb, sys)
			if err != nil {
				var oom *baselines.ErrOOM
				switch {
				case errors.Is(err, baselines.ErrDynamicModel):
					row = append(row, "n/a(dynamic)")
				case errors.As(err, &oom):
					row = append(row, "OOM")
				default:
					row = append(row, "err")
				}
				continue
			}
			times[sys] = bd.TotalNS()
			row = append(row, ms(bd.TotalNS()))
		}
		if times["dynn-offload"] > 0 && times["dtr"] > 0 {
			row = append(row, ratio(times["dtr"], times["dynn-offload"]))
			sumDTRRatio += float64(times["dtr"]) / float64(times["dynn-offload"])
			nRatio++
		} else {
			row = append(row, "-")
		}
		if times["dynn-offload"] > 0 && times["uvm"] > 0 {
			row = append(row, ratio(times["uvm"], times["dynn-offload"]))
			sumUVMRatio += float64(times["uvm"]) / float64(times["dynn-offload"])
			nUVMRatio++
		} else {
			row = append(row, "-")
		}
		t.Rows = append(t.Rows, row)
	}
	if nRatio > 0 && nUVMRatio > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"mean DTR/DyNN-Offload = %.2fx (paper: ~1.35x), mean UVM/DyNN-Offload = %.2fx (paper: UVM worst in almost all cases)",
			sumDTRRatio/float64(nRatio), sumUVMRatio/float64(nUVMRatio)))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"GPU scaled to %.0f%% of each model's footprint (pressure regime); epoch = %d samples",
		wb.Opts.PressureFraction*100, wb.Opts.TestSamples))
	return t
}

// Fig8 reproduces the training-time breakdown (Fig 8): computation, exposed
// migration, rematerialization, fault handling, and policy overhead per
// system. Paper observations: UVM spends up to ~55% on migration (Tree-CNN)
// and ~40% (UGAN); DTR's recomputation inflates compute (1.7x on AlphaFold);
// DyNN-Offload hides migration.
func Fig8(wb *Workbench) *Table {
	t := &Table{
		Title:  "Fig 8 — training-time breakdown (% of total)",
		Header: []string{"model", "system", "compute", "exposed-migration", "remat", "fault", "overhead"},
	}
	for _, mb := range wb.Models {
		if !mb.Entry.Dynamic {
			continue
		}
		for _, sys := range []string{"uvm", "dtr", "dynn-offload"} {
			bd, err := wb.systemEpoch(mb, sys)
			if err != nil {
				t.Rows = append(t.Rows, []string{mb.Entry.Name, sys, "-", "-", "-", "-", "-"})
				continue
			}
			total := float64(bd.TotalNS())
			pct := func(ns int64) string { return fmt.Sprintf("%.1f%%", 100*float64(ns)/total) }
			t.Rows = append(t.Rows, []string{
				mb.Entry.Name, sys,
				pct(bd.ComputeNS), pct(bd.ExposedXferNS), pct(bd.RematNS), pct(bd.FaultNS), pct(bd.OverheadNS),
			})
		}
	}
	return t
}
