package expt

import (
	"strings"
	"sync"
	"testing"
)

func TestTablePrinting(t *testing.T) {
	tab := &Table{
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "22"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== t ==", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTableI(t *testing.T) {
	tab, err := TableI(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 buckets", len(tab.Rows))
	}
	// The paper's point: wide divergence. The mean JD is in the note.
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "mean JD") {
		t.Error("missing summary note")
	}
}

func TestTableII(t *testing.T) {
	tab := TableII()
	if len(tab.Rows) != 9 {
		t.Errorf("rows = %d, want 9 workloads", len(tab.Rows))
	}
}

func TestHeuristicStudyLowCorrelation(t *testing.T) {
	tab := HeuristicStudy(600, 1)
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// §II-C: correlations must be weak (paper: <= 0.25).
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v := strings.TrimPrefix(cell, "+")
			v = strings.TrimPrefix(v, "-")
			if v > "0.4" && len(v) == 5 { // "0.xxx" lexical compare is safe here
				t.Errorf("correlation too strong for the heuristic story: %s", cell)
			}
		}
	}
}

func TestLargestModelShape(t *testing.T) {
	tab, err := LargestModel(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 systems x 2 sweeps)", len(tab.Rows))
	}
	// DyNN-Offload must beat PyTorch in both sweeps (the headline result).
	for _, i := range []int{3, 7} {
		if !strings.HasSuffix(tab.Rows[i][5], "x") || tab.Rows[i][5] <= "1.0x" {
			t.Errorf("dynn-offload row %d not ahead of pytorch: %v", i, tab.Rows[i])
		}
	}
}

func TestTableIIIOrdering(t *testing.T) {
	tab, err := TableIII(24, 1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	batch := func(i int) string { return tab.Rows[i][1] }
	// DyNN-Offload must allow the largest batch (Table III headline).
	if atoiOr0(batch(3)) <= atoiOr0(batch(0)) {
		t.Errorf("dynn-offload batch %s not above pytorch %s", batch(3), batch(0))
	}
}

func atoiOr0(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

var (
	wbOnce   sync.Once
	wbShared *Workbench
	wbErr    error
)

// testWorkbench builds the tiny shared fixture for the workbench-driven
// tests once per test binary; drivers only read from it (fresh engines per
// run), so sharing is safe and keeps the suite fast.
func testWorkbench(t *testing.T) *Workbench {
	t.Helper()
	wbOnce.Do(func() {
		opts := DefaultOptions()
		opts.TrainSamples = 200
		opts.TestSamples = 60
		opts.Epochs = 6
		opts.Neurons = 64
		wbShared, wbErr = NewWorkbench(opts)
	})
	if wbErr != nil {
		t.Fatal(wbErr)
	}
	return wbShared
}

func TestWorkbenchExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	wb := testWorkbench(t)
	infallible := func(f func(*Workbench) *Table) func(*Workbench) (*Table, error) {
		return func(wb *Workbench) (*Table, error) { return f(wb), nil }
	}
	for name, run := range map[string]func(*Workbench) (*Table, error){
		"fig7": infallible(Fig7), "fig8": infallible(Fig8),
		"fig9": infallible(Fig9), "fig10": Fig10,
		"fig12": infallible(Fig12), "mispred": Mispredictions,
		"mispred-handling": MispredHandling, "overhead": Overhead,
	} {
		tab, err := run(wb)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", name)
		}
	}
}
