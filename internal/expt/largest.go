package expt

import (
	"fmt"

	"dynnoffload/internal/baselines"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/trace"
)

// capacityProbe builds one var-BERT configuration and measures the memory
// quantities every system's feasibility test needs, on the longest
// resolution path (all control decisions take the full arm).
type capacityProbe struct {
	Params     int64
	TotalBytes int64 // weights + grads + optimizer + activations
	PeakBytes  int64 // liveness peak (PyTorch footprint)
	Persistent int64 // non-rematerializable bytes (DTR floor)
	MaxOpBytes int64 // largest single-op working set (offload floor)
	Tensors    int   // distinct tensors per iteration (DTR tracking load)
}

func probeVarBERT(layers, hidden, seqLen, batch int) (capacityProbe, error) {
	m := dynn.NewVarBERT(dynn.VarBERTConfig{
		Layers: layers, Hidden: hidden, SeqLen: seqLen, Batch: batch, Seed: 1,
	})
	// Longest path: decision 0 (full arm) at every site.
	r, err := graph.Resolve(m.Static(), make([]int, m.Static().NumSites))
	if err != nil {
		return capacityProbe{}, fmt.Errorf("largest: %w", err)
	}
	it := graph.ExpandTraining(m.Registry(), r, m.WeightStates(), true)
	cm := gpusim.NewCostModel(gpusim.A100Platform())
	tr := trace.FromIteration(m.Name(), it, cm)
	an := sentinel.NewAnalysis(tr, cm)

	// DTR's floor: weights, optimizer state, and weight-gradient buffers can
	// never be evicted-and-recomputed.
	persistent := an.PersistentBytes()
	return capacityProbe{
		Params:     dynn.ParamCount(m),
		TotalBytes: tr.TotalBytes(),
		PeakBytes:  an.PeakResidentBytes(),
		Persistent: persistent,
		MaxOpBytes: an.MaxSingleOpBytes(),
		Tensors:    len(tr.Tensors),
	}, nil
}

// feasible reports whether a probe can train under each system on plat.
func feasible(p capacityProbe, plat gpusim.Platform, system string) bool {
	switch system {
	case "pytorch":
		return p.PeakBytes <= plat.GPU.MemBytes
	case "uvm":
		return p.TotalBytes <= 2*plat.GPU.MemBytes
	case "dtr":
		// Memory floor plus the tensor-tracking crash bound (§VI-B).
		return p.Persistent+p.MaxOpBytes <= plat.GPU.MemBytes &&
			p.Tensors <= baselines.DefaultDTRConfig().MaxTrackedTensors
	case "dynn-offload":
		return p.TotalBytes <= plat.GPU.MemBytes+plat.CPUMemBytes &&
			p.MaxOpBytes <= plat.GPU.MemBytes/2
	}
	return false
}

// searchLargest binary-searches the largest size in [lo, hi] (by `build`
// probing size) that remains feasible for the system.
func searchLargest(lo, hi int, plat gpusim.Platform, system string, build func(size int) (capacityProbe, error)) (int, capacityProbe, error) {
	bestSize := 0
	var bestProbe capacityProbe
	for lo <= hi {
		mid := (lo + hi) / 2
		p, err := build(mid)
		if err != nil {
			return 0, capacityProbe{}, err
		}
		if feasible(p, plat, system) {
			bestSize, bestProbe = mid, p
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return bestSize, bestProbe, nil
}

// LargestModel reproduces §VI-B: the largest trainable var-BERT per system
// on a single A100-80GB, sweeping depth (layers at hidden=1024) and width
// (hidden at 64 layers). The paper's headline: 192 → 1,500 layers (8×) deep,
// 10 → 64 layers at hidden 8,192 wide (6.3×).
func LargestModel(seqLen, batch int) (*Table, error) {
	// The paper's capacity study is state-dominated (training state is 16
	// bytes/param; activations are comparatively small at its batch size) —
	// small batch and sequence put the probe in the same regime.
	if seqLen == 0 {
		seqLen = 256
	}
	if batch == 0 {
		batch = 2
	}
	plat := gpusim.A100Platform()
	plat.NumGPUs = 1

	t := &Table{
		Title:  "§VI-B — largest trainable var-BERT on one A100-80GB",
		Header: []string{"system", "sweep", "max size", "params", "footprint GB", "vs pytorch"},
	}
	type sweep struct {
		name     string
		lo, hi   int
		build    func(size int) (capacityProbe, error)
		describe func(size int) string
	}
	sweeps := []sweep{
		{
			name: "deep (hidden=1024)", lo: 1, hi: 3000,
			build:    func(l int) (capacityProbe, error) { return probeVarBERT(l, 1024, seqLen, batch) },
			describe: func(l int) string { return fmt.Sprintf("%d layers", l) },
		},
		{
			name: "wide (hidden=8192)", lo: 1, hi: 256,
			build:    func(l int) (capacityProbe, error) { return probeVarBERT(l, 8192, seqLen, batch) },
			describe: func(l int) string { return fmt.Sprintf("%d layers", l) },
		},
	}
	for _, sw := range sweeps {
		memo := map[int]capacityProbe{}
		rawBuild := sw.build
		sw.build = func(size int) (capacityProbe, error) {
			if p, ok := memo[size]; ok {
				return p, nil
			}
			p, err := rawBuild(size)
			if err != nil {
				return capacityProbe{}, err
			}
			memo[size] = p
			return p, nil
		}
		baselineSize := 0
		for _, system := range []string{"pytorch", "uvm", "dtr", "dynn-offload"} {
			size, probe, err := searchLargest(sw.lo, sw.hi, plat, system, sw.build)
			if err != nil {
				return nil, err
			}
			if system == "pytorch" {
				baselineSize = size
			}
			rel := "-"
			if baselineSize > 0 {
				rel = fmt.Sprintf("%.1fx", float64(size)/float64(baselineSize))
			}
			t.Rows = append(t.Rows, []string{
				system, sw.name, sw.describe(size),
				fmt.Sprintf("%.2fB", float64(probe.Params)/1e9),
				fmt.Sprintf("%.0f", float64(probe.TotalBytes)/float64(1<<30)),
				rel,
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: DyNN-Offload trains 8x deeper and 6.3x wider var-BERT than PyTorch; UVM capped at 2x GPU; DTR bounded by non-evictable state")
	return t, nil
}
