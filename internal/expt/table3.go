package expt

import (
	"fmt"

	"dynnoffload/internal/baselines"
	"dynnoffload/internal/core"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/trace"
)

// TableIII reproduces the maximum-batch-size study (§VI-B, Table III): for a
// var-BERT that nearly fills the GPU at batch 1, find the largest batch each
// system trains within a 200% runtime-overhead budget relative to ideal
// in-memory compute. Paper: UVM 1.17x, DTR 1.7x, DyNN-Offload 3.6x vs
// unmodified PyTorch.
func TableIII(layers, hidden, seqLen int) (*Table, error) {
	if layers == 0 {
		layers = 48
	}
	if hidden == 0 {
		hidden = 1024
	}
	if seqLen == 0 {
		seqLen = 512
	}
	plat := gpusim.A100Platform()
	const maxOverhead = 2.0 // 200%

	type probe struct {
		an    *sentinel.Analysis
		ideal int64 // pure compute ns
	}
	probes := map[int]probe{}
	buildProbe := func(batch int) (probe, error) {
		if p, ok := probes[batch]; ok {
			return p, nil
		}
		m := dynn.NewVarBERT(dynn.VarBERTConfig{
			Layers: layers, Hidden: hidden, SeqLen: seqLen, Batch: batch, Seed: 1,
		})
		r, err := graph.Resolve(m.Static(), make([]int, m.Static().NumSites))
		if err != nil {
			return probe{}, fmt.Errorf("table3: batch %d: %w", batch, err)
		}
		it := graph.ExpandTraining(m.Registry(), r, m.WeightStates(), true)
		cm := gpusim.NewCostModel(plat)
		tr := trace.FromIteration(m.Name(), it, cm)
		an := sentinel.NewAnalysis(tr, cm)
		p := probe{an: an, ideal: an.TotalComputeNS()}
		probes[batch] = p
		return p, nil
	}

	timeFor := func(system string, batch int) (int64, error) {
		p, err := buildProbe(batch)
		if err != nil {
			return 0, err
		}
		switch system {
		case "pytorch":
			bd, err := baselines.PyTorch(p.an, plat)
			return bd.TotalNS(), err
		case "uvm":
			bd, err := baselines.UVM(p.an, plat, baselines.DefaultUVMConfig())
			return bd.TotalNS(), err
		case "dtr":
			bd, err := baselines.DTR(p.an, plat, baselines.DefaultDTRConfig())
			return bd.TotalNS(), err
		case "dynn-offload":
			total := p.an.Trace.TotalBytes()
			if total > plat.GPU.MemBytes+plat.CPUMemBytes {
				return 0, fmt.Errorf("exceeds CPU+GPU memory")
			}
			blocks := p.an.Partition(plat.GPU.MemBytes / 2)
			if blocks == nil {
				return 0, fmt.Errorf("op exceeds work buffer")
			}
			eng := core.NewEngine(core.DefaultConfig(plat), nil)
			bd := eng.SimulatePartition(p.an, blocks)
			return bd.TotalNS(), nil
		}
		return 0, fmt.Errorf("unknown system %q", system)
	}

	// maxBatch binary-searches the largest feasible batch. Probe-construction
	// errors (a broken model graph) abort the table; capacity errors from the
	// systems under test just mark that batch infeasible.
	maxBatch := func(system string) (int, error) {
		best := 0
		lo, hi := 1, 512
		for lo <= hi {
			mid := (lo + hi) / 2
			p, err := buildProbe(mid)
			if err != nil {
				return 0, err
			}
			t, err := timeFor(system, mid)
			ok := err == nil && float64(t) <= float64(p.ideal)*(1+maxOverhead)
			if ok {
				best = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		return best, nil
	}

	t := &Table{
		Title:  "Table III — largest batch size on A100-80GB (runtime overhead <= 200%)",
		Header: []string{"system", "max batch", "vs pytorch"},
	}
	base := 0
	for _, system := range []string{"pytorch", "uvm", "dtr", "dynn-offload"} {
		b, err := maxBatch(system)
		if err != nil {
			return nil, err
		}
		if system == "pytorch" {
			base = b
		}
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%.2fx", float64(b)/float64(base))
		}
		t.Rows = append(t.Rows, []string{system, fmt.Sprintf("%d", b), rel})
	}
	t.Notes = append(t.Notes, "paper: UVM 1.17x, DTR 1.7x, DyNN-Offload 3.6x",
		fmt.Sprintf("model: var-BERT %d layers, hidden %d, seq %d", layers, hidden, seqLen))
	return t, nil
}
