package expt

import (
	"fmt"

	"dynnoffload/internal/core"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/pilot"
	"dynnoffload/internal/serve"
)

// ServeSweepUtil is the offered-load grid, as multiples of the calibrated
// on-demand iteration rate (1/Tod). The top of the grid sits above both
// systems' un-fused capacity; continuous batching can push the knee past it,
// which the bisection refinement then resolves.
var ServeSweepUtil = []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}

const (
	// serveSweepRequests bounds the serving pool and the offered requests
	// per sweep point.
	serveSweepRequests = 120
	// serveSweepSLOFactor sets the p99 objective as a multiple of the
	// worst-case calibrated on-demand iteration. The worst case, not the
	// mean: path-dependent iteration times vary widely (that is the paper's
	// premise), and an SLO under the slowest request's bare service time
	// would be unmeetable at any load.
	serveSweepSLOFactor = 3
	// serveSweepBisect refines the knee between the last sustained and first
	// unsustained grid point, resolving capacity gaps finer than the grid.
	serveSweepBisect = 5
)

// serveSweepRow is one model's sweep outcome, kept structured so the package
// tests can pin engine-vs-baseline ordering without parsing table text.
type serveSweepRow struct {
	name      string
	migrating bool  // the model's serving path moves bytes host<->device
	todNS     int64 // calibrated mean on-demand simulated iteration
	sloNS     int64
	engineQPS float64 // max offered rate sustained at p99 <= SLO
	odQPS     float64
}

// ServeSweep sweeps offered load against the serving front-end for every zoo
// model and reports the maximum rate each system sustains at a fixed p99 SLO
// (serveSweepSLOFactor times the on-demand iteration). "engine" is the full
// DyNN-Offload path; "on-demand" forces every sample through the
// migrate-on-fault baseline. Models whose serving path never migrates are
// marked and skipped: both policies are identical when nothing moves.
func ServeSweep(wb *Workbench) (*Table, error) {
	tab := &Table{
		Title:  "ServeSweep: max sustainable QPS at fixed p99 SLO (engine vs always-on-demand)",
		Header: []string{"model", "migrating", "od-iter-ms", "slo-ms", "engine-maxQPS", "ondemand-maxQPS", "gain"},
		Notes: []string{
			fmt.Sprintf("SLO = %dx worst-case calibrated on-demand iteration; load grid = utilization x mean on-demand rate", serveSweepSLOFactor),
			"a load is sustained when every offered request completes with p99 <= SLO; the knee is bisected below grid resolution",
			"fits-GPU rows never migrate, so both policies serve identically; sweep skipped",
		},
	}
	for _, mb := range wb.Models {
		row, err := wb.sweepModel(mb)
		if err != nil {
			return nil, err
		}
		if !row.migrating {
			tab.Rows = append(tab.Rows, []string{row.name, "no (fits GPU)", ms(row.todNS), "-", "-", "-", "-"})
			continue
		}
		gain := "-"
		if row.odQPS > 0 {
			gain = fmt.Sprintf("%.2fx", row.engineQPS/row.odQPS)
		}
		tab.Rows = append(tab.Rows, []string{
			row.name, "yes", ms(row.todNS), ms(row.sloNS),
			qps(row.engineQPS), qps(row.odQPS), gain,
		})
	}
	return tab, nil
}

// sweepModel calibrates one model and sweeps both systems over the load grid.
func (wb *Workbench) sweepModel(mb *ModelBench) (serveSweepRow, error) {
	row := serveSweepRow{name: mb.Entry.Name}
	pool := mb.Test
	if len(pool) > serveSweepRequests {
		pool = pool[:serveSweepRequests]
	}
	mean, worst, xfer, err := wb.serveCalibrate(mb, pool)
	if err != nil {
		return row, err
	}
	row.todNS = mean
	row.migrating = xfer > 0
	if !row.migrating {
		return row, nil
	}
	row.sloNS = serveSweepSLOFactor * worst
	if row.engineQPS, err = wb.serveMaxQPS(mb, pool, false, mean, row.sloNS); err != nil {
		return row, err
	}
	if row.odQPS, err = wb.serveMaxQPS(mb, pool, true, mean, row.sloNS); err != nil {
		return row, err
	}
	return row, nil
}

// serveCalibrate measures the mean and worst-case simulated on-demand
// iteration over the serving pool, and whether serving this model migrates at
// all. Host overhead (pilot inference, mapping) is excluded: the sweep's
// clock is virtual, so calibration must be too.
func (wb *Workbench) serveCalibrate(mb *ModelBench, pool []*pilot.Example) (meanNS, worstNS, xferBytes int64, err error) {
	if len(pool) == 0 {
		return 0, 0, 0, fmt.Errorf("expt: %s has no test samples to calibrate on", mb.Entry.Name)
	}
	eng := wb.serveEngine(mb, true)
	results, err := eng.RunBatch(pool, core.EpochOptions{Workers: wb.Opts.Workers})
	if err != nil {
		return 0, 0, 0, fmt.Errorf("expt: %s calibration: %w", mb.Entry.Name, err)
	}
	var sum int64
	for _, r := range results {
		t := r.Breakdown.TotalNS() - r.Breakdown.OverheadNS
		sum += t
		if t > worstNS {
			worstNS = t
		}
		xferBytes += r.Breakdown.H2DBytes + r.Breakdown.D2HBytes
	}
	meanNS = sum / int64(len(pool))
	if meanNS < 1 {
		meanNS = 1
	}
	return meanNS, worstNS, xferBytes, nil
}

// serveMaxQPS finds the highest offered rate (req/s) the system sustains:
// every request completes and the combined p99 stays at or under the SLO. It
// walks the load grid bottom-up to bracket the knee (stopping at the first
// unsustained point — offered load only grows from there), then bisects the
// bracket so capacity differences finer than the grid step still resolve.
func (wb *Workbench) serveMaxQPS(mb *ModelBench, pool []*pilot.Example, onDemand bool, todNS, sloNS int64) (float64, error) {
	base := 1e9 / float64(todNS)
	var lo float64 // highest sustained rate
	hi := -1.0     // lowest unsustained rate
	for _, u := range ServeSweepUtil {
		rate := u * base
		ok, err := wb.serveSustains(mb, pool, onDemand, rate, sloNS)
		if err != nil {
			return 0, err
		}
		if !ok {
			hi = rate
			break
		}
		lo = rate
	}
	if hi < 0 {
		return lo, nil // sustained the whole grid
	}
	for i := 0; i < serveSweepBisect; i++ {
		mid := (lo + hi) / 2
		ok, err := wb.serveSustains(mb, pool, onDemand, mid, sloNS)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// serveSustains plays one sweep point and applies the sustainability test.
func (wb *Workbench) serveSustains(mb *ModelBench, pool []*pilot.Example, onDemand bool, rate float64, sloNS int64) (bool, error) {
	rep, err := wb.servePoint(mb, pool, onDemand, rate, sloNS)
	if err != nil {
		return false, err
	}
	return rep.Total.Completed > 0 &&
		rep.Total.Completed == rep.Total.Arrivals &&
		rep.Total.P99NS <= sloNS, nil
}

// servePoint plays one sweep point: two equal tenants splitting the offered
// rate, each holding half the device as quota, both under the same SLO.
func (wb *Workbench) servePoint(mb *ModelBench, pool []*pilot.Example, onDemand bool, rate float64, sloNS int64) (*serve.Report, error) {
	requests := len(pool)
	half := mb.Platform.GPU.MemBytes / 2
	cfg := serve.Config{
		Tenants: []serve.TenantConfig{
			{Name: "a", Requests: requests / 2, RatePerSec: rate / 2,
				Seed: wb.Opts.Seed + 101, QuotaBytes: half, SLONS: sloNS},
			{Name: "b", Requests: requests - requests/2, RatePerSec: rate / 2,
				Seed: wb.Opts.Seed + 202, QuotaBytes: half, SLONS: sloNS},
		},
		Workers: wb.Opts.Workers,
	}
	return serve.Run(&serve.Backend{Engine: wb.serveEngine(mb, onDemand), Pool: pool}, cfg)
}

// serveEngine builds a fresh engine per sweep cell — the mis-prediction cache
// is stateful, and cells must not share it. The engine cell memoizes repeated
// requests (a serving workload re-submits identical jobs); the on-demand
// baseline ignores predictions entirely, so the memo stays off there. The
// resolved-plan cache IS shared across cells: plans are stateless pure
// functions, so the sweep's bisection replays pay compilation once, not once
// per grid point.
func (wb *Workbench) serveEngine(mb *ModelBench, onDemand bool) *core.Engine {
	cfg := core.DefaultConfig(mb.Platform)
	cfg.Plans = wb.Plans
	cfg.ForceOnDemand = onDemand
	cfg.MemoizeSamples = !onDemand
	if wb.Opts.Faults.Rate > 0 {
		cfg.Faults = faults.New(wb.Opts.Faults)
	}
	return core.NewEngine(cfg, wb.Pilot)
}

// qps renders a requests-per-second rate, keeping precision for the slow
// models whose sustainable rates sit below 10 req/s.
func qps(v float64) string {
	if v <= 0 {
		return "0"
	}
	if v < 10 {
		return fmt.Sprintf("%.2f", v)
	}
	return fmt.Sprintf("%.0f", v)
}
