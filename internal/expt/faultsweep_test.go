package expt

import (
	"strconv"
	"testing"
)

// TestFaultSweepGraceful pins the degradation acceptance bar: at every swept
// fault rate the pipelined engine's virtual epoch time stays at or below the
// always-on-demand baseline's — the engine absorbs recovery work behind
// compute instead of paying it on the critical path — and injection volume
// grows with the rate.
func TestFaultSweepGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("workbench construction is expensive")
	}
	tab, err := FaultSweep(testWorkbench(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(FaultSweepRates) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(FaultSweepRates))
	}
	cell := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("cell %q: %v", row[col], err)
		}
		return v
	}
	var prevInjected float64
	for _, row := range tab.Rows {
		engMS, odMS := cell(row, 1), cell(row, 3)
		if engMS > odMS {
			t.Errorf("rate %s: engine %.1f ms slower than on-demand %.1f ms", row[0], engMS, odMS)
		}
		injected := cell(row, 5)
		if injected < prevInjected {
			t.Errorf("rate %s: injected %v fell below previous rate's %v", row[0], injected, prevInjected)
		}
		prevInjected = injected
	}
	if prevInjected == 0 {
		t.Error("top rate injected nothing — the sweep is vacuous")
	}
}
