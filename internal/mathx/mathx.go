// Package mathx provides the small dense linear-algebra and statistics
// kernels used by the pilot model and the evaluation harness. Everything is
// float64 and allocation-conscious; matrices are row-major.
package mathx

import "math"

// Dot returns the inner product of a and b. The slices must be equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch") //dynnlint:ignore panicfree shape mismatch is a caller bug; hot-path kernel fails fast like stdlib
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mathx: Axpy length mismatch") //dynnlint:ignore panicfree shape mismatch is a caller bug; hot-path kernel fails fast like stdlib
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// MatVec computes out = A·x where A is rows×cols row-major.
func MatVec(a []float64, rows, cols int, x, out []float64) {
	if len(a) != rows*cols || len(x) != cols || len(out) != rows {
		panic("mathx: MatVec shape mismatch") //dynnlint:ignore panicfree shape mismatch is a caller bug; hot-path kernel fails fast like stdlib
	}
	for r := 0; r < rows; r++ {
		row := a[r*cols : (r+1)*cols]
		var s float64
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
}

// MatVecT computes out = Aᵀ·x where A is rows×cols row-major and x has rows
// elements; out has cols elements. Used for backpropagation.
func MatVecT(a []float64, rows, cols int, x, out []float64) {
	if len(a) != rows*cols || len(x) != rows || len(out) != cols {
		panic("mathx: MatVecT shape mismatch") //dynnlint:ignore panicfree shape mismatch is a caller bug; hot-path kernel fails fast like stdlib
	}
	for c := range out {
		out[c] = 0
	}
	for r := 0; r < rows; r++ {
		row := a[r*cols : (r+1)*cols]
		xr := x[r]
		if xr == 0 {
			continue
		}
		for c, v := range row {
			out[c] += v * xr
		}
	}
}

// OuterAxpy computes A += alpha * x·yᵀ where A is len(x)×len(y) row-major.
func OuterAxpy(alpha float64, x, y, a []float64) {
	if len(a) != len(x)*len(y) {
		panic("mathx: OuterAxpy shape mismatch") //dynnlint:ignore panicfree shape mismatch is a caller bug; hot-path kernel fails fast like stdlib
	}
	cols := len(y)
	for r, xv := range x {
		if xv == 0 {
			continue
		}
		row := a[r*cols : (r+1)*cols]
		f := alpha * xv
		for c, yv := range y {
			row[c] += f * yv
		}
	}
}

// Softmax writes the softmax of x into out (may alias x).
func Softmax(x, out []float64) {
	if len(x) != len(out) {
		panic("mathx: Softmax length mismatch") //dynnlint:ignore panicfree shape mismatch is a caller bug; hot-path kernel fails fast like stdlib
	}
	maxv := math.Inf(-1)
	for _, v := range x {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// ArgMax returns the index of the largest element, or -1 for empty input.
func ArgMax(x []float64) int {
	best, bi := math.Inf(-1), -1
	for i, v := range x {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// L2 returns the Euclidean norm of x.
func L2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
