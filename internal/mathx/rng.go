package mathx

import "math"

// RNG is a small, deterministic SplitMix64-based generator. The simulator and
// the pilot-model trainer need reproducible streams that are independent of
// Go release changes to math/rand, and need to fork sub-streams cheaply
// (one per model, per sample, per control-flow site).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent sub-stream keyed by id.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(mix(r.state + 0x9e3779b97f4a7c15*(id+1)))
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n") //dynnlint:ignore panicfree non-positive n is a caller bug, mirroring math/rand.Intn
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate (Box–Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormVec fills out with standard normal deviates scaled by sigma.
func (r *RNG) NormVec(out []float64, sigma float64) {
	for i := range out {
		out[i] = r.Norm() * sigma
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
