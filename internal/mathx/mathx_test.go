package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyScale(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy gave %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale gave %v", y)
	}
}

func TestMatVec(t *testing.T) {
	// A = [[1,2],[3,4],[5,6]] (3x2), x = [1,1]
	a := []float64{1, 2, 3, 4, 5, 6}
	out := make([]float64, 3)
	MatVec(a, 3, 2, []float64{1, 1}, out)
	want := []float64{3, 7, 11}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("MatVec[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestMatVecTIsTranspose(t *testing.T) {
	rng := NewRNG(1)
	rows, cols := 5, 7
	a := make([]float64, rows*cols)
	rng.NormVec(a, 1)
	x := make([]float64, rows)
	rng.NormVec(x, 1)
	got := make([]float64, cols)
	MatVecT(a, rows, cols, x, got)
	// naive transpose multiply
	for c := 0; c < cols; c++ {
		var want float64
		for r := 0; r < rows; r++ {
			want += a[r*cols+c] * x[r]
		}
		if !almostEq(got[c], want, 1e-12) {
			t.Fatalf("MatVecT[%d] = %v, want %v", c, got[c], want)
		}
	}
}

func TestOuterAxpy(t *testing.T) {
	a := make([]float64, 4)
	OuterAxpy(2, []float64{1, 2}, []float64{3, 4}, a)
	want := []float64{6, 8, 12, 16}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("OuterAxpy[%d] = %v, want %v", i, a[i], want[i])
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(raw [6]float64) bool {
		x := raw[:]
		for i := range x {
			x[i] = math.Mod(x[i], 50) // keep exp in range
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
		}
		out := make([]float64, len(x))
		Softmax(x, out)
		var sum float64
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Error("ArgMax wrong")
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) must be -1")
	}
}

func TestMeanStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(x), 5, 1e-12) {
		t.Errorf("Mean = %v", Mean(x))
	}
	if !almostEq(Std(x), 2, 1e-12) {
		t.Errorf("Std = %v", Std(x))
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

func TestL2(t *testing.T) {
	if !almostEq(L2([]float64{3, 4}), 5, 1e-12) {
		t.Error("L2 wrong")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f1 := r.Fork(1)
	f2 := r.Fork(2)
	same := 0
	for i := 0; i < 64; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams too correlated: %d/64 equal", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.08 {
		t.Errorf("Norm moments off: mean=%v var=%v", mean, variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}
