package serve

import (
	"errors"

	"dynnoffload/internal/core"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
)

// Flight-recorder wiring shared by the single-device and cluster loops: the
// same lifecycle events, recorded at the same simulated times, so a replica's
// recording reads identically whichever scheduler produced it.

// FlightError carries the flight-recorder snapshots taken when a serving run
// aborts (engine capacity exhaustion mid-batch), so post-mortems survive the
// missing report. Unwrap exposes the underlying cause for errors.Is/As.
type FlightError struct {
	Err     error
	Flights []obsv.FlightSnapshot
}

func (e *FlightError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying dispatch error.
func (e *FlightError) Unwrap() error { return e.Err }

// wrapFlightError attaches any captured snapshots to a run-aborting error.
func wrapFlightError(err error, recs []*obsv.FlightRecorder) error {
	var snaps []obsv.FlightSnapshot
	for _, f := range recs {
		snaps = append(snaps, f.Snapshots()...)
	}
	if len(snaps) == 0 {
		return err
	}
	return &FlightError{Err: err, Flights: snaps}
}

// recordAdmission logs an arrival's admission outcome.
func recordAdmission(f *obsv.FlightRecorder, kind string, r *request, tenant string) {
	f.Record(obsv.FlightEvent{
		AtNS: r.arrivalNS, Kind: kind, Tenant: tenant,
		Request: r.id, Seq: r.seq, Bytes: r.needBytes,
	})
}

// recordDispatch logs one continuous-batch dispatch.
func recordDispatch(f *obsv.FlightRecorder, atNS int64, batch int, serviceNS int64) {
	f.Record(obsv.FlightEvent{AtNS: atNS, Kind: obsv.FlightDispatch, N: batch, DurNS: serviceNS})
}

// recordCompletion logs one request's completion plus its trigger events: an
// SLO breach snapshots the ring (deadline overshoot in DurNS), and a fault
// ladder that degraded to on-demand or synchronous fetching snapshots too
// (injected fault count in N).
func recordCompletion(f *obsv.FlightRecorder, doneNS int64, r *request, tenant string, e2eNS int64, fc faults.Counters) {
	f.Record(obsv.FlightEvent{
		AtNS: doneNS, Kind: obsv.FlightComplete, Tenant: tenant,
		Request: r.id, Seq: r.seq, DurNS: e2eNS, Bytes: r.needBytes,
	})
	if r.deadlineNS < doneNS {
		f.Record(obsv.FlightEvent{
			AtNS: doneNS, Kind: obsv.FlightSLOBreach, Tenant: tenant,
			Request: r.id, Seq: r.seq, DurNS: doneNS - r.deadlineNS,
		})
		f.Snapshot(doneNS, obsv.FlightSLOBreach)
	}
	if fc.OnDemandFallbacks > 0 || fc.SyncFallbacks > 0 {
		f.Record(obsv.FlightEvent{
			AtNS: doneNS, Kind: obsv.FlightFaultDegrade, Tenant: tenant,
			Request: r.id, Seq: r.seq, N: int(fc.Injected()),
		})
		f.Snapshot(doneNS, obsv.FlightFaultDegrade)
	}
}

// recordBatchError logs a dispatch failure; engine capacity exhaustion is the
// snapshot-worthy case (the run is about to abort).
func recordBatchError(f *obsv.FlightRecorder, atNS int64, err error) {
	if !errors.Is(err, core.ErrCapacityExceeded) {
		return
	}
	f.Record(obsv.FlightEvent{AtNS: atNS, Kind: obsv.FlightCapacity})
	f.Snapshot(atNS, obsv.FlightCapacity)
}

// collectFlights finalizes every recorder (an unconditional end-of-run
// snapshot per replica) and returns all snapshots in replica order.
func collectFlights(recs []*obsv.FlightRecorder, makespanNS int64) []obsv.FlightSnapshot {
	var out []obsv.FlightSnapshot
	for _, f := range recs {
		f.FinalSnapshot(makespanNS)
		out = append(out, f.Snapshots()...)
	}
	return out
}
