package serve

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dynnoffload/internal/core"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
)

// TestServeDeterminism is the serving layer's acceptance property: for a
// fixed (seed, config), per-tenant latency aggregates and admission/shed
// counters are bit-identical across repeated runs and at every worker
// count, with and without fault injection. Each run gets a fresh engine —
// the mis-prediction cache is part of the replayed state.
func TestServeDeterminism(t *testing.T) {
	b := testServeBench(t)
	for _, fc := range []faults.Config{{}, {Seed: 41, Rate: 0.25}} {
		run := func(workers int) *Report {
			ecfg := core.DefaultConfig(b.plat)
			if fc.Rate > 0 {
				ecfg.Faults = faults.New(fc)
			}
			cfg := twoTenants(b, 4000, 30)
			cfg.Workers = workers
			rep, err := Run(b.backend(ecfg), cfg)
			if err != nil {
				t.Fatalf("rate=%v workers=%d: %v", fc.Rate, workers, err)
			}
			return rep
		}
		want := run(1)
		// Repeated runs at the same worker count replay exactly.
		if again := run(1); !reflect.DeepEqual(want, again) {
			t.Errorf("rate=%v: repeated run diverged:\nwant %+v\ngot  %+v", fc.Rate, want, again)
		}
		for _, workers := range []int{2, 4, 8} {
			got := run(workers)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("rate=%v workers=%d diverged:\nwant %+v\ngot  %+v", fc.Rate, workers, want, got)
			}
		}
	}
}

// TestServeTraceDeterminism: with wall mode off, the serving trace replays
// bit-identically across worker counts too (queue spans included).
func TestServeTraceDeterminism(t *testing.T) {
	b := testServeBench(t)
	run := func(workers int) string {
		cfg := twoTenants(b, 4000, 15)
		cfg.Workers = workers
		cfg.Tracer = obsv.NewTracer()
		if _, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, sp := range cfg.Tracer.Spans() {
			fmt.Fprintf(&sb, "%d %s %s %d %d %d %d %d\n",
				sp.Sample, sp.Kind, sp.Lane, sp.Block, sp.StartNS, sp.DurNS, sp.Bytes, sp.Attempt)
		}
		return sb.String()
	}
	want := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: trace diverged", workers)
		}
	}
}
