package serve

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dynnoffload/internal/core"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/obsv"
)

// TestServeAttributionSumsToLatency is the attribution layer's acceptance
// property: the per-run decomposition's total equals the exact sum of the
// completed requests' end-to-end latencies — every nanosecond of latency is
// explained by exactly one named cause. The sum of e2e latencies comes from
// the flight recorder's complete events (DurNS is the e2e latency), recorded
// independently of the attribution path.
func TestServeAttributionSumsToLatency(t *testing.T) {
	b := testServeBench(t)
	cfg := twoTenants(b, 4000, 30)
	cfg.Flight = obsv.FlightConfig{Events: 4096} // big enough that nothing wraps
	rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := rep.Total.Attribution
	if at == nil {
		t.Fatal("no run-level attribution")
	}

	var e2eSum int64
	var completes int64
	for _, snap := range rep.Flights {
		if snap.Reason != "final" {
			continue
		}
		if snap.Dropped != 0 {
			t.Fatalf("ring wrapped (%d dropped); grow Events", snap.Dropped)
		}
		for _, ev := range snap.Events {
			if ev.Kind == obsv.FlightComplete {
				e2eSum += ev.DurNS
				completes++
			}
		}
	}
	if completes != rep.Total.Completed {
		t.Fatalf("flight complete events = %d, report completed = %d", completes, rep.Total.Completed)
	}
	if got := at.All.TotalNS(); got != e2eSum {
		t.Errorf("attribution total = %dns, summed e2e latency = %dns (off by %d)", got, e2eSum, got-e2eSum)
	}

	// Tenant decompositions are exact too, and they partition the run total.
	var tenantSum int64
	for _, tr := range rep.Tenants {
		ta := tr.Stats.Attribution
		if ta == nil {
			t.Fatalf("tenant %s has no attribution", tr.Name)
		}
		tenantSum += ta.All.TotalNS()
		if ta.TailCount <= 0 || ta.TailCount > tr.Stats.Completed {
			t.Errorf("tenant %s tail count %d out of range", tr.Name, ta.TailCount)
		}
		if ta.All.QueueNS < 0 || ta.All.QuotaNS < 0 || ta.All.ComputeNS <= 0 {
			t.Errorf("tenant %s components implausible: %+v", tr.Name, ta.All)
		}
	}
	if tenantSum != at.All.TotalNS() {
		t.Errorf("tenant attributions sum to %dns, run total is %dns", tenantSum, at.All.TotalNS())
	}
	if at.TailCount <= 0 || at.Tail.TotalNS() > at.All.TotalNS() {
		t.Errorf("tail slice inconsistent: %+v", at)
	}
}

// TestServeFlightRecorder: an enabled recorder leaves a final snapshot whose
// ring tells the request lifecycle story, and an unmeetable SLO triggers an
// slo-breach snapshot within the trigger budget.
func TestServeFlightRecorder(t *testing.T) {
	b := testServeBench(t)
	cfg := twoTenants(b, 4000, 10)
	cfg.Tenants[0].SLONS = 1 // unmeetable: every completion breaches
	cfg.Flight = obsv.FlightConfig{Events: 64, MaxSnapshots: 2}
	rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reasons []string
	kinds := map[string]bool{}
	for _, snap := range rep.Flights {
		reasons = append(reasons, snap.Reason)
		for _, ev := range snap.Events {
			kinds[ev.Kind] = true
		}
	}
	if len(reasons) == 0 {
		t.Fatal("no flight snapshots in the report")
	}
	if reasons[len(reasons)-1] != "final" {
		t.Errorf("last snapshot reason %q, want final", reasons[len(reasons)-1])
	}
	found := false
	for _, r := range reasons {
		if r == obsv.FlightSLOBreach {
			found = true
		}
	}
	if !found {
		t.Errorf("1ns SLO produced no slo-breach snapshot: %v", reasons)
	}
	for _, want := range []string{obsv.FlightAdmit, obsv.FlightDispatch, obsv.FlightComplete, obsv.FlightSLOBreach} {
		if !kinds[want] {
			t.Errorf("flight rings never recorded %q", want)
		}
	}
	// Disabled recording leaves the report clean.
	cfg.Flight = obsv.FlightConfig{}
	rep2, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Flights != nil {
		t.Errorf("disabled flight recorder still produced snapshots: %d", len(rep2.Flights))
	}
}

// TestClusterPrometheusAttribution: the registry exposes the attribution
// families under cluster serving, with tenant label values escaped per the
// Prometheus text exposition rules.
func TestClusterPrometheusAttribution(t *testing.T) {
	b := testServeBench(t)
	cfg := ClusterConfig{Config: twoTenants(b, 4000, 15)}
	cfg.Tenants[1].Name = `be"ta\x` + "\n"
	cfg.Registry = obsv.NewRegistry()
	if _, err := RunCluster(b.clusterBackend(2, core.DefaultConfig(b.plat)), cfg); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	cfg.Registry.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`dynn_serve_attribution_seconds_total{run="serve",component="queue"}`,
		`dynn_serve_attribution_seconds_total{run="serve",component="compute"}`,
		`dynn_serve_tail_attribution_seconds_total{run="serve",component="exposed"}`,
		`dynn_serve_tail_requests_total{run="serve"}`,
		`dynn_serve_attribution_seconds_total{run="serve/alpha",tenant="alpha",component="batch"}`,
		`tenant="be\"ta\\x\n"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The exposed families themselves obey the sum invariant: per tenant, the
	// ten component samples of attribution_seconds_total are emitted (one per
	// taxonomy name).
	if got := strings.Count(out, `dynn_serve_attribution_seconds_total{run="serve/alpha"`); got != 10 {
		t.Errorf("alpha attribution family has %d samples, want 10", got)
	}
}

// TestClusterObservabilityDeterminism is the PR's acceptance property: with
// causal tracing, SLO attribution, and the flight recorder all enabled, a
// cluster serve replay with identical (seed, config) produces bit-identical
// reports (attribution and flight-recorder contents included) and
// bit-identical request-stamped traces at 1, 2, 4, and 8 workers, fault-free
// and under deterministic fault injection.
func TestClusterObservabilityDeterminism(t *testing.T) {
	b := testServeBench(t)
	for _, fc := range []faults.Config{{}, {Seed: 41, Rate: 0.25}} {
		type outcome struct {
			rep   *ClusterReport
			trace string
		}
		run := func(workers int) outcome {
			ecfg := core.DefaultConfig(b.plat)
			if fc.Rate > 0 {
				ecfg.Faults = faults.New(fc)
			}
			cfg := ClusterConfig{
				Config:         twoTenants(b, 20000, 30),
				MinReplicas:    1,
				ScaleUpQueueNS: 1e5,
				ScaleWindow:    4,
			}
			cfg.Workers = workers
			cfg.Flight = obsv.FlightConfig{Events: 512}
			cfg.Tracer = obsv.NewTracer(obsv.WithAbsoluteTime())
			rep, err := RunCluster(b.clusterBackend(4, ecfg), cfg)
			if err != nil {
				t.Fatalf("rate=%v workers=%d: %v", fc.Rate, workers, err)
			}
			var sb strings.Builder
			for _, sp := range cfg.Tracer.Spans() {
				fmt.Fprintf(&sb, "%d %s %s %d %d %d %d %d %d %s %d\n",
					sp.Sample, sp.Kind, sp.Lane, sp.Block, sp.StartNS, sp.DurNS,
					sp.Bytes, sp.Attempt, sp.Request, sp.Tenant, sp.Replica)
			}
			return outcome{rep: rep, trace: sb.String()}
		}
		want := run(1)
		if len(want.rep.Flights) == 0 {
			t.Fatalf("rate=%v: no flight snapshots to compare", fc.Rate)
		}
		if want.rep.Total.Attribution == nil {
			t.Fatalf("rate=%v: no attribution to compare", fc.Rate)
		}
		if !strings.Contains(want.trace, " alpha ") {
			t.Fatalf("rate=%v: trace is not request-stamped", fc.Rate)
		}
		if again := run(1); !reflect.DeepEqual(want.rep, again.rep) || want.trace != again.trace {
			t.Errorf("rate=%v: repeated run diverged", fc.Rate)
		}
		for _, workers := range []int{2, 4, 8} {
			got := run(workers)
			if !reflect.DeepEqual(want.rep, got.rep) {
				t.Errorf("rate=%v workers=%d: report diverged:\nwant %+v\ngot  %+v", fc.Rate, workers, want.rep, got.rep)
			}
			if want.trace != got.trace {
				t.Errorf("rate=%v workers=%d: trace diverged", fc.Rate, workers)
			}
		}
	}
}
