package serve

import (
	"sort"

	"dynnoffload/internal/obsv"
)

// tenantAcc accumulates one tenant's serving outcomes. Latencies are kept
// whole so the report's quantiles are exact order statistics, not histogram
// bucket bounds — SLO attainment is the quantity under test.
type tenantAcc struct {
	maxQueue int
	inQueue  int

	arrivals   int64
	shed       int64
	quotaShed  int64
	completed  int64
	violations int64
	queueSumNS int64
	latencies  []int64 // e2e, in completion order
}

func (a *tenantAcc) complete(e2eNS, waitNS int64, violated bool) {
	a.completed++
	a.queueSumNS += waitNS
	a.latencies = append(a.latencies, e2eNS)
	if violated {
		a.violations++
	}
}

// exactQuantile returns the q-th order statistic of sorted (the smallest
// value v with at least ceil(q*n) observations <= v). Zero for empty input.
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(float64(n)*q+0.999999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// stats reduces the accumulator to a ServeStats block.
func (s *loop) stats(t int) (st statsOut) {
	a := &s.acc[t]
	st.arrivals = a.arrivals
	st.shed = a.shed
	st.quotaShed = a.quotaShed
	st.completed = a.completed
	st.violations = a.violations
	st.queueSumNS = a.queueSumNS
	st.latencies = a.latencies
	return st
}

type statsOut struct {
	arrivals, shed, quotaShed, completed, violations, queueSumNS int64
	latencies                                                    []int64
}

// report assembles the run's per-tenant and total summaries and attaches
// them to the live recorders.
func (s *loop) report() *Report {
	rep := &Report{MakespanNS: s.now, DeviceHighWater: s.ledger.HighWater()}
	var allLat []int64
	for t, tc := range s.cfg.Tenants {
		o := s.stats(t)
		sorted := append([]int64(nil), o.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st := reduce(o, sorted)
		st.Tenant = tc.Name
		st.SLONS = tc.SLONS
		st.QuotaBytes = tc.QuotaBytes
		st.QuotaPeakBytes = s.ledger.OwnerHighWater(tc.Name)
		s.tenantRecs[t].SetServe(st)
		rep.Tenants = append(rep.Tenants, TenantReport{Name: tc.Name, Stats: st})
		allLat = append(allLat, o.latencies...)

		rep.Total.Arrivals += st.Arrivals
		rep.Total.Shed += st.Shed
		rep.Total.QuotaShed += st.QuotaShed
		rep.Total.Completed += st.Completed
		rep.Total.SLOViolations += st.SLOViolations
	}
	sort.Slice(allLat, func(i, j int) bool { return allLat[i] < allLat[j] })
	if n := int64(len(allLat)); n > 0 {
		var sum, queueSum int64
		for _, v := range allLat {
			sum += v
		}
		for t := range s.acc {
			queueSum += s.acc[t].queueSumNS
		}
		rep.Total.MeanNS = sum / n
		rep.Total.QueueMeanNS = queueSum / n
		rep.Total.P50NS = exactQuantile(allLat, 0.50)
		rep.Total.P99NS = exactQuantile(allLat, 0.99)
		rep.Total.P999NS = exactQuantile(allLat, 0.999)
		rep.Total.MaxNS = allLat[n-1]
	}
	rep.Total.Batches = s.batches
	rep.Total.QuotaPeakBytes = s.ledger.HighWater()
	if s.batches > 0 {
		rep.MeanBatchSize = float64(rep.Total.Completed) / float64(s.batches)
	}
	s.rec.SetServe(rep.Total)
	return rep
}

// reduce folds one tenant's counters and its sorted latency set into a
// ServeStats block.
func reduce(o statsOut, sorted []int64) obsv.ServeStats {
	st := obsv.ServeStats{
		Arrivals: o.arrivals, Shed: o.shed, QuotaShed: o.quotaShed,
		Completed: o.completed, SLOViolations: o.violations,
	}
	if n := int64(len(sorted)); n > 0 {
		var sum int64
		for _, v := range sorted {
			sum += v
		}
		st.MeanNS = sum / n
		st.QueueMeanNS = o.queueSumNS / n
		st.P50NS = exactQuantile(sorted, 0.50)
		st.P99NS = exactQuantile(sorted, 0.99)
		st.P999NS = exactQuantile(sorted, 0.999)
		st.MaxNS = sorted[n-1]
	}
	return st
}
