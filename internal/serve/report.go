package serve

import (
	"sort"

	"dynnoffload/internal/obsv"
)

// tenantAcc accumulates one tenant's serving outcomes. Latencies are kept
// whole so the report's quantiles are exact order statistics, not histogram
// bucket bounds — SLO attainment is the quantity under test.
type tenantAcc struct {
	maxQueue int
	inQueue  int

	arrivals   int64
	shed       int64
	quotaShed  int64
	completed  int64
	violations int64
	queueSumNS int64
	latencies  []int64 // e2e, in completion order
	// attribs holds each completed request's latency decomposition, aligned
	// with latencies (attribs[i].TotalNS() == latencies[i] exactly).
	attribs []obsv.AttributionComponents
}

func (a *tenantAcc) complete(e2eNS, waitNS int64, violated bool, comp obsv.AttributionComponents) {
	a.completed++
	a.queueSumNS += waitNS
	a.latencies = append(a.latencies, e2eNS)
	a.attribs = append(a.attribs, comp)
	if violated {
		a.violations++
	}
}

// foldAttribution folds per-request decompositions into a tenant- or run-level
// aggregate: every completion, plus the slice of requests whose latency
// reached the given exact p99 (the tail under explanation). Nil when nothing
// completed.
func foldAttribution(attribs []obsv.AttributionComponents, p99NS int64) *obsv.LatencyAttribution {
	if len(attribs) == 0 {
		return nil
	}
	at := &obsv.LatencyAttribution{}
	for _, c := range attribs {
		at.All.Add(c)
		if c.TotalNS() >= p99NS {
			at.Tail.Add(c)
			at.TailCount++
		}
	}
	return at
}

// exactQuantile returns the q-th order statistic of sorted (the smallest
// value v with at least ceil(q*n) observations <= v). Zero for empty input.
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(float64(n)*q+0.999999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// report assembles the run's summaries from the single-device loop's state.
func (s *loop) report() *Report {
	rep := buildReport(s.cfg.Tenants, s.acc, s.tenantRecs, s.rec,
		s.batches, s.now, s.ledger.HighWater(), s.ledger.OwnerHighWater,
		s.learner.Stats())
	rep.Flights = collectFlights([]*obsv.FlightRecorder{s.flight}, s.now)
	return rep
}

// buildReport folds the per-tenant accumulators into the serving report and
// attaches the stats to the live recorders. ownerPeak reports one tenant's
// reservation high-water; the cluster scheduler passes a max across its
// replica ledgers, the single-device loop its one ledger's method.
func buildReport(tenants []TenantConfig, acc []tenantAcc, tenantRecs []*obsv.Recorder, rec *obsv.Recorder, batches, makespanNS, highWater int64, ownerPeak func(string) int64, online *obsv.OnlineStats) *Report {
	rep := &Report{MakespanNS: makespanNS, DeviceHighWater: highWater}
	var allLat []int64
	var allAttribs []obsv.AttributionComponents
	var queueSum int64
	for t, tc := range tenants {
		a := &acc[t]
		sorted := append([]int64(nil), a.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st := reduce(a, sorted)
		st.Tenant = tc.Name
		st.SLONS = tc.SLONS
		st.QuotaBytes = tc.QuotaBytes
		st.QuotaPeakBytes = ownerPeak(tc.Name)
		tenantRecs[t].SetServe(st)
		rep.Tenants = append(rep.Tenants, TenantReport{Name: tc.Name, Stats: st})
		allLat = append(allLat, a.latencies...)
		allAttribs = append(allAttribs, a.attribs...)
		queueSum += a.queueSumNS

		rep.Total.Arrivals += st.Arrivals
		rep.Total.Shed += st.Shed
		rep.Total.QuotaShed += st.QuotaShed
		rep.Total.Completed += st.Completed
		rep.Total.SLOViolations += st.SLOViolations
	}
	sort.Slice(allLat, func(i, j int) bool { return allLat[i] < allLat[j] })
	if n := int64(len(allLat)); n > 0 {
		var sum int64
		for _, v := range allLat {
			sum += v
		}
		rep.Total.MeanNS = sum / n
		rep.Total.QueueMeanNS = queueSum / n
		rep.Total.P50NS = exactQuantile(allLat, 0.50)
		rep.Total.P99NS = exactQuantile(allLat, 0.99)
		rep.Total.P999NS = exactQuantile(allLat, 0.999)
		rep.Total.MaxNS = allLat[n-1]
		rep.Total.Attribution = foldAttribution(allAttribs, rep.Total.P99NS)
	}
	rep.Total.Batches = batches
	rep.Total.QuotaPeakBytes = highWater
	rep.Total.Online = online
	if batches > 0 {
		rep.MeanBatchSize = float64(rep.Total.Completed) / float64(batches)
	}
	rec.SetServe(rep.Total)
	return rep
}

// reduce folds one tenant's counters and its sorted latency set into a
// ServeStats block.
func reduce(a *tenantAcc, sorted []int64) obsv.ServeStats {
	st := obsv.ServeStats{
		Arrivals: a.arrivals, Shed: a.shed, QuotaShed: a.quotaShed,
		Completed: a.completed, SLOViolations: a.violations,
	}
	if n := int64(len(sorted)); n > 0 {
		var sum int64
		for _, v := range sorted {
			sum += v
		}
		st.MeanNS = sum / n
		st.QueueMeanNS = a.queueSumNS / n
		st.P50NS = exactQuantile(sorted, 0.50)
		st.P99NS = exactQuantile(sorted, 0.99)
		st.P999NS = exactQuantile(sorted, 0.999)
		st.MaxNS = sorted[n-1]
		st.Attribution = foldAttribution(a.attribs, st.P99NS)
	}
	return st
}
