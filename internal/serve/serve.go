// Package serve is the multi-tenant serving front-end over the offload
// engine: an online request stream on the simulated clock, per-tenant
// admission control backed by the allocator's reservation/quota layer,
// an SLO-aware (earliest-deadline-first) scheduler with a starvation guard,
// and continuous batching dispatched through core.RunBatch.
//
// Everything runs on simulated nanoseconds and seeded randomness, so the
// serving layer inherits the runtime's determinism contract: identical
// (seed, config) inputs replay bit-identical admission and scheduling
// decisions — and therefore bit-identical per-tenant latency aggregates —
// at any worker count, fault-free or faulted. The event loop itself is
// serial (its cost is bookkeeping); the per-batch sample work fans out
// through the engine's three-phase pipeline.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dynnoffload/internal/core"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/mathx"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/online"
	"dynnoffload/internal/pilot"
)

// Defaults applied by Run when the corresponding config field is zero.
const (
	// DefaultMaxBatch bounds how many requests fuse into one dispatch.
	DefaultMaxBatch = 8
	// DefaultMaxQueue bounds a tenant's admitted-but-unserved requests;
	// beyond it, new arrivals are shed (backpressure).
	DefaultMaxQueue = 64
)

// ErrNoTenants means the config offered no load to serve.
var ErrNoTenants = errors.New("serve: no tenants configured")

// TenantConfig describes one tenant's offered load and its service terms.
type TenantConfig struct {
	Name string
	// Requests is how many requests the tenant offers in total.
	Requests int
	// RatePerSec is the tenant's mean arrival rate (open-loop Poisson
	// process: exponential inter-arrival times on the simulated clock).
	RatePerSec float64
	// Seed drives the tenant's arrival process and request sampling.
	Seed uint64
	// QuotaBytes caps the tenant's reserved GPU memory; 0 leaves the tenant
	// bounded only by device capacity.
	QuotaBytes int64
	// SLONS is the end-to-end latency objective; a completed request whose
	// latency exceeds it counts as a violation. 0 disables the deadline (the
	// tenant schedules behind every deadline-bearing request).
	SLONS int64
	// MaxQueue bounds the tenant's admitted-but-unserved queue; 0 means
	// DefaultMaxQueue.
	MaxQueue int
}

// Config configures one serving run.
type Config struct {
	Tenants []TenantConfig
	// MaxBatch bounds the continuous-batch size; 0 means DefaultMaxBatch.
	MaxBatch int
	// StarvationAgeNS is the queue age past which a request preempts EDF
	// order (served oldest-first instead), so zero-SLO or long-deadline
	// tenants cannot starve under sustained load. 0 derives 4x the largest
	// tenant SLO; negative disables the guard.
	StarvationAgeNS int64
	// Workers is the engine fan-out per dispatched batch; <= 0 means
	// GOMAXPROCS. Results are identical at any value.
	Workers int
	// Tracer, when non-nil, collects per-request span traces (queue wait on
	// the host lane, then the engine's compute/transfer spans) indexed by
	// dispatch order.
	Tracer *obsv.Tracer
	// Registry, when non-nil, exposes the run's recorders (one global, one
	// per tenant) on the live /metrics endpoint.
	Registry *obsv.Registry
	// Flight sizes the per-replica flight recorder (bounded ring of recent
	// lifecycle events, snapshotted on SLO breach, fault-ladder degradation,
	// or engine capacity exhaustion). The zero value disables it.
	Flight obsv.FlightConfig
	// Online closes the serve→pilot feedback loop: completed requests feed a
	// bounded replay memory and the pilot retrains in-loop on seeded
	// minibatches (per-tenant adapters optional). The zero value disables it,
	// reproducing the learning-free serving behavior byte-for-byte.
	Online online.Config
}

// Backend is what the serving layer runs requests against.
type Backend struct {
	Engine *core.Engine
	// Pool is the request population; each arrival draws one example from it
	// (with replacement) under the tenant's seed.
	Pool []*pilot.Example
	// GPUMemBytes sizes the reservation ledger; 0 takes the engine
	// platform's device memory.
	GPUMemBytes int64
}

// request is one admitted unit of work.
type request struct {
	tenant     int // index into Config.Tenants
	seq        int // per-tenant arrival sequence
	id         int64
	arrivalNS  int64
	deadlineNS int64 // math.MaxInt64 when the tenant has no SLO
	ex         *pilot.Example
	needBytes  int64
	// Quota-wait tracking for SLO attribution: quotaSinceNS is the simulated
	// time of the first refused reservation of the current blocked stretch
	// (0 when not blocked); quotaNS accumulates the blocked time at dispatch.
	quotaSinceNS int64
	quotaNS      int64
	// retrainNS accumulates the online-learning retrain stalls this request
	// sat queued behind, credited to the pilot_retrain SLO component.
	retrainNS int64
}

// TenantReport is one tenant's serving summary.
type TenantReport struct {
	Name  string
	Stats obsv.ServeStats
}

// Report summarizes one serving run.
type Report struct {
	// Total aggregates every tenant; its latency quantiles are computed over
	// the combined completion set.
	Total   obsv.ServeStats
	Tenants []TenantReport
	// MeanBatchSize is completed requests per dispatch.
	MeanBatchSize float64
	// MakespanNS is the completion time of the last batch.
	MakespanNS int64
	// DeviceHighWater is the reservation ledger's peak across the run.
	DeviceHighWater int64
	// Flights holds the flight-recorder snapshots, in replica order: any
	// triggered captures followed by each replica's unconditional end-of-run
	// snapshot. Empty when Config.Flight leaves recording disabled.
	Flights []obsv.FlightSnapshot
}

// Run plays cfg's request streams against the backend and returns the
// serving report. The loop advances a single virtual clock: admit every
// arrival up to now (shedding on full queues and impossible quotas), form
// one continuous batch under EDF with the starvation guard, reserve each
// member's memory against its tenant quota, dispatch through core.RunBatch,
// then release the reservations and advance the clock past the batch.
func Run(b *Backend, cfg Config) (*Report, error) {
	if len(cfg.Tenants) == 0 {
		return nil, ErrNoTenants
	}
	if b == nil || b.Engine == nil || len(b.Pool) == 0 {
		return nil, errors.New("serve: backend needs an engine and a non-empty pool")
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	starveAge := cfg.StarvationAgeNS
	if starveAge == 0 {
		var maxSLO int64
		for _, tc := range cfg.Tenants {
			if tc.SLONS > maxSLO {
				maxSLO = tc.SLONS
			}
		}
		starveAge = 4 * maxSLO
	}
	if starveAge <= 0 {
		starveAge = math.MaxInt64
	}

	gpuMem := b.GPUMemBytes
	if gpuMem <= 0 {
		gpuMem = b.Engine.Cfg.Platform.GPU.MemBytes
	}
	ledger := gpusim.NewAllocator(gpuMem)
	for _, tc := range cfg.Tenants {
		ledger.SetQuota(tc.Name, tc.QuotaBytes)
	}

	arrivals, err := generate(cfg, b.Pool, gpuMem)
	if err != nil {
		return nil, err
	}

	rec := obsv.NewRecorder("serve", cfg.Workers, nil)
	cfg.Registry.Register(rec)
	tenantRecs := make([]*obsv.Recorder, len(cfg.Tenants))
	for t, tc := range cfg.Tenants {
		tenantRecs[t] = obsv.NewRecorder("serve/"+tc.Name, cfg.Workers, nil)
		cfg.Registry.Register(tenantRecs[t])
	}

	var learner *online.Learner
	if cfg.Online.Enabled {
		learner, err = online.New(cfg.Online, b.Engine.Pilot, len(cfg.Tenants))
		if err != nil {
			return nil, err
		}
	}

	s := &loop{
		cfg: cfg, backend: b, ledger: ledger, maxBatch: maxBatch,
		starveAge: starveAge, rec: rec, tenantRecs: tenantRecs,
		acc:     make([]tenantAcc, len(cfg.Tenants)),
		flight:  obsv.NewFlightRecorder(0, cfg.Flight),
		learner: learner,
	}
	for t := range s.acc {
		mq := cfg.Tenants[t].MaxQueue
		if mq <= 0 {
			mq = DefaultMaxQueue
		}
		s.acc[t].maxQueue = mq
	}
	if err := s.run(arrivals); err != nil {
		return nil, wrapFlightError(err, []*obsv.FlightRecorder{s.flight})
	}
	return s.report(), nil
}

// loop is the serving event loop's state.
type loop struct {
	cfg        Config
	backend    *Backend
	ledger     *gpusim.Allocator
	maxBatch   int
	starveAge  int64
	rec        *obsv.Recorder
	tenantRecs []*obsv.Recorder

	now     int64
	queued  []*request
	acc     []tenantAcc
	batches int64
	slots   slotCounter // dispatch-order trace/recorder index counter
	flight  *obsv.FlightRecorder
	// exs is the dispatch scratch buffer, reused across batches: RunBatch
	// never retains its argument slice past the call, and a sweep replays
	// thousands of dispatches, so one buffer serves the whole run.
	exs []*pilot.Example
	// learner is the online feedback loop; nil when Config.Online is off.
	learner *online.Learner
	// pilots mirrors exs when the learner is active: per-request pilot
	// overrides (tenant adapter or refined shared pilot) for RunBatch.
	pilots []*pilot.Pilot
}

// run consumes the sorted arrival stream.
func (s *loop) run(arrivals []*request) error {
	next := 0
	for next < len(arrivals) || len(s.queued) > 0 {
		if len(s.queued) == 0 {
			// Idle: jump to the next arrival.
			if s.now < arrivals[next].arrivalNS {
				s.now = arrivals[next].arrivalNS
			}
		}
		for next < len(arrivals) && arrivals[next].arrivalNS <= s.now {
			s.admit(arrivals[next])
			next++
		}
		if len(s.queued) == 0 {
			continue
		}
		if err := s.dispatch(); err != nil {
			return err
		}
	}
	return nil
}

// admit applies the two admission gates: a request that can never fit its
// tenant's quota (or the device) is shed immediately; a request arriving at
// a full tenant queue is shed as backpressure.
func (s *loop) admit(r *request) {
	a := &s.acc[r.tenant]
	a.arrivals++
	name := s.cfg.Tenants[r.tenant].Name
	quota := s.cfg.Tenants[r.tenant].QuotaBytes
	if (quota > 0 && r.needBytes > quota) || r.needBytes > s.ledger.Capacity {
		a.quotaShed++
		recordAdmission(s.flight, obsv.FlightQuotaShed, r, name)
		return
	}
	if a.inQueue >= a.maxQueue {
		a.shed++
		recordAdmission(s.flight, obsv.FlightShed, r, name)
		return
	}
	a.inQueue++
	s.queued = append(s.queued, r)
	recordAdmission(s.flight, obsv.FlightAdmit, r, name)
}

// dispatch forms one continuous batch from the queue and runs it.
func (s *loop) dispatch() error {
	var batch []*request
	batch, s.queued = selectBatch(s.queued, s.now, s.starveAge, s.maxBatch, s.ledger, s.cfg.Tenants)
	if len(batch) == 0 {
		// Unreachable with admission capping needBytes at device capacity
		// (the ledger is empty between batches), but fail loudly rather
		// than spin.
		return fmt.Errorf("serve: no request schedulable at t=%dns with %d queued", s.now, len(s.queued))
	}

	s.exs = s.exs[:0]
	for _, r := range batch {
		s.exs = append(s.exs, r.ex)
	}
	s.pilots = s.pilots[:0]
	if s.learner != nil {
		for _, r := range batch {
			s.pilots = append(s.pilots, s.learner.PilotFor(r.tenant))
		}
	}
	base := s.slots.take(len(batch))
	results, err := s.backend.Engine.RunBatch(s.exs, core.EpochOptions{
		Workers:   s.cfg.Workers,
		Recorder:  s.rec,
		Tracer:    s.cfg.Tracer,
		TraceBase: base,
		Pilots:    s.pilots,
	})
	for _, r := range batch {
		s.ledger.Free(r.id)
	}
	if err != nil {
		recordBatchError(s.flight, s.now, err)
		return fmt.Errorf("serve: batch at t=%dns: %w", s.now, err)
	}

	serviceNS := serviceTime(s.backend.Engine, batch, results)
	done := s.now + serviceNS
	s.batches++
	s.rec.ObservePhase(PhaseService, serviceNS)
	recordDispatch(s.flight, s.now, len(batch), serviceNS)

	for i, r := range batch {
		a := &s.acc[r.tenant]
		a.inQueue--
		name := s.cfg.Tenants[r.tenant].Name
		waitNS := s.now - r.arrivalNS
		e2e := done - r.arrivalNS
		a.complete(e2e, waitNS, r.deadlineNS < done,
			attribution(waitNS, r.quotaNS, r.retrainNS, serviceNS, results[i].Breakdown))
		tr := s.tenantRecs[r.tenant]
		tr.ObservePhase(PhaseQueue, waitNS)
		tr.ObservePhase(PhaseE2E, e2e)
		tr.ObserveSample(r.seq, results[i].Mispredicted, results[i].CacheHit, e2e)
		annotateRequestTrace(s.cfg.Tracer, base+i, r, name, 0, waitNS)
		recordCompletion(s.flight, done, r, name, e2e, results[i].FaultCounters)
	}
	s.now = done
	return s.learn(batch, results)
}

// learn feeds the completed batch's outcomes to the online learner in
// completion order and charges any retrain stall to the host timeline: the
// clock advances past the stall and every currently queued request is
// credited the stall time in its pilot_retrain attribution component.
// (Requests arriving mid-stall simply see it as queue time — the
// decomposition stays exact either way.) No-op without a learner.
func (s *loop) learn(batch []*request, results []core.SampleResult) error {
	if s.learner == nil {
		return nil
	}
	var stallNS int64
	for i, r := range batch {
		ns, err := s.learner.Observe(r.tenant, r.ex, results[i].Mispredicted)
		if err != nil {
			return fmt.Errorf("serve: online retrain at t=%dns: %w", s.now, err)
		}
		stallNS += ns
	}
	if stallNS > 0 {
		s.now += stallNS
		for _, q := range s.queued {
			q.retrainNS += stallNS
		}
	}
	return nil
}

// Phase names observed on the serving recorders (simulated nanoseconds, not
// host time — unlike the engine's pilot/mapping/simulate phases).
const (
	PhaseQueue   = "queue"
	PhaseService = "service"
	PhaseE2E     = "e2e"
)

// selectBatch orders the queue — starving requests first (oldest-first),
// then earliest deadline — and greedily fills a batch from the front:
// same model context as the anchor, memory reserved against the tenant
// quota on the given ledger. It returns the batch and the requests left
// queued for a later dispatch. Shared by the single-device loop and the
// cluster scheduler (which calls it with the chosen replica's ledger).
func selectBatch(queued []*request, now, starveAge int64, maxBatch int, ledger *gpusim.Allocator, tenants []TenantConfig) (batch, rest []*request) {
	q := queued
	sort.SliceStable(q, func(i, j int) bool {
		a, b := q[i], q[j]
		as, bs := now-a.arrivalNS > starveAge, now-b.arrivalNS > starveAge
		if as != bs {
			return as
		}
		if as { // both starving: oldest first
			if a.arrivalNS != b.arrivalNS {
				return a.arrivalNS < b.arrivalNS
			}
		} else if a.deadlineNS != b.deadlineNS {
			return a.deadlineNS < b.deadlineNS
		}
		if a.arrivalNS != b.arrivalNS {
			return a.arrivalNS < b.arrivalNS
		}
		if a.tenant != b.tenant {
			return a.tenant < b.tenant
		}
		return a.seq < b.seq
	})

	rest = queued[:0]
	for _, r := range q {
		if len(batch) < maxBatch && (len(batch) == 0 || r.ex.Ctx == batch[0].ex.Ctx) {
			if ledger.Reserve(tenants[r.tenant].Name, r.id, r.needBytes) == nil {
				// Close out any quota-blocked stretch: the request waited on
				// its memory reservation from the first refusal until now.
				if r.quotaSinceNS > 0 {
					r.quotaNS += now - r.quotaSinceNS
					r.quotaSinceNS = 0
				}
				batch = append(batch, r)
				continue
			}
			// Refused by the reservation layer specifically (batch had room
			// and the context matched): the quota wait starts now.
			if r.quotaSinceNS == 0 {
				r.quotaSinceNS = now
			}
		}
		rest = append(rest, r)
	}
	return batch, rest
}

// serviceTime models the continuous batch's occupancy of the device: the
// requests' independent simulated times, compressed by what depth-wise
// kernel fusion saves across the batch (SimulateDynamicBatch's sequential
// minus batched launch time), floored by the slowest member — fusing can
// never beat the longest critical path — and by 1ns.
//
// Only simulated time counts: Breakdown.OverheadNS is host wall time (pilot
// inference and output mapping), so including it would leak scheduling noise
// into the virtual clock and break the replay contract.
func serviceTime(eng *core.Engine, batch []*request, results []core.SampleResult) int64 {
	var sum, slowest int64
	infos := make([]*pilot.PathInfo, 0, len(batch))
	for i, r := range batch {
		t := results[i].Breakdown.TotalNS() - results[i].Breakdown.OverheadNS
		sum += t
		if t > slowest {
			slowest = t
		}
		if info := r.ex.Ctx.PathByKey(r.ex.TruthKey); info != nil {
			infos = append(infos, info)
		}
	}
	service := sum
	if len(infos) > 1 {
		rep := eng.SimulateDynamicBatch(infos)
		service -= rep.SequentialNS - rep.BatchedNS
	}
	if service < slowest {
		service = slowest
	}
	if service < 1 {
		service = 1
	}
	return service
}

// generate pre-computes every tenant's seeded arrival stream and merges them
// into one globally ordered sequence. Each tenant forks two independent RNG
// streams off its seed: one for exponential inter-arrival gaps, one for
// drawing requests from the pool.
func generate(cfg Config, pool []*pilot.Example, gpuMem int64) ([]*request, error) {
	need := make([]int64, len(pool))
	for i, ex := range pool {
		info := ex.Ctx.PathByKey(ex.TruthKey)
		if info == nil {
			return nil, fmt.Errorf("serve: pool example %d has no truth path", i)
		}
		need[i] = info.Analysis.PeakResidentBytes()
		// The engine migrates, so a request never needs more than half the
		// device resident at once to make progress.
		if half := gpuMem / 2; need[i] > half {
			need[i] = half
		}
	}

	var all []*request
	var id int64
	for t, tc := range cfg.Tenants {
		if tc.Requests <= 0 {
			continue
		}
		if tc.RatePerSec <= 0 {
			return nil, fmt.Errorf("serve: tenant %q needs a positive rate", tc.Name)
		}
		gaps := mathx.NewRNG(tc.Seed).Fork(1)
		picks := mathx.NewRNG(tc.Seed).Fork(2)
		var clock int64
		for seq := 0; seq < tc.Requests; seq++ {
			u := gaps.Float64()
			gapNS := int64(-math.Log(1-u) / tc.RatePerSec * 1e9)
			if gapNS < 1 {
				gapNS = 1
			}
			clock += gapNS
			pick := picks.Intn(len(pool))
			id++
			r := &request{
				tenant: t, seq: seq, id: id, arrivalNS: clock,
				deadlineNS: math.MaxInt64,
				ex:         pool[pick], needBytes: need[pick],
			}
			if tc.SLONS > 0 {
				r.deadlineNS = clock + tc.SLONS
			}
			all = append(all, r)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.arrivalNS != b.arrivalNS {
			return a.arrivalNS < b.arrivalNS
		}
		if a.tenant != b.tenant {
			return a.tenant < b.tenant
		}
		return a.seq < b.seq
	})
	return all, nil
}
