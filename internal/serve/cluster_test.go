package serve

import (
	"reflect"
	"testing"

	"dynnoffload/internal/core"
	"dynnoffload/internal/faults"
)

func (b *bench) clusterBackend(n int, ecfg core.Config) *ClusterBackend {
	engines := make([]*core.Engine, n)
	for i := range engines {
		engines[i] = core.NewEngine(ecfg, b.p)
	}
	return &ClusterBackend{Engines: engines, Pool: b.pool}
}

func TestClusterServeBasic(t *testing.T) {
	b := testServeBench(t)
	cfg := ClusterConfig{Config: twoTenants(b, 4000, 40)}
	rep, err := RunCluster(b.clusterBackend(2, core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Arrivals != 80 {
		t.Errorf("arrivals = %d, want 80", rep.Total.Arrivals)
	}
	if got := rep.Total.Completed + rep.Total.Shed + rep.Total.QuotaShed; got != rep.Total.Arrivals {
		t.Errorf("completed+shed = %d, arrivals = %d", got, rep.Total.Arrivals)
	}
	if rep.Total.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if rep.PeakActive != 2 {
		t.Errorf("no elastic scaling configured: peak active = %d, want 2", rep.PeakActive)
	}
	if len(rep.Replicas) != 2 || len(rep.Placements) != 2 {
		t.Fatalf("replica/placement views missing: %+v", rep)
	}
	var dispatched, completed int64
	for _, rs := range rep.Replicas {
		dispatched += rs.Dispatches
		completed += rs.Completed
		if rs.BusyNS < 0 || rs.Util < 0 || rs.Util > 1 {
			t.Errorf("replica %d stats out of range: %+v", rs.Replica, rs)
		}
	}
	if dispatched != rep.Total.Batches {
		t.Errorf("replica dispatches %d != batches %d", dispatched, rep.Total.Batches)
	}
	if completed != rep.Total.Completed {
		t.Errorf("replica completions %d != total %d", completed, rep.Total.Completed)
	}
	for t2, p := range rep.Placements {
		if p.Home != t2%2 {
			t.Errorf("tenant %s homed at %d, want round-robin %d", p.Tenant, p.Home, t2%2)
		}
		if p.HomeServed > p.Requests {
			t.Errorf("tenant %s: home-served %d exceeds completed %d", p.Tenant, p.HomeServed, p.Requests)
		}
	}
}

// TestClusterServeLatencyScales: under the same offered load, adding
// replicas must cut the tail — queueing is the bottleneck at this rate.
func TestClusterServeLatencyScales(t *testing.T) {
	b := testServeBench(t)
	run := func(gpus int) *ClusterReport {
		cfg := ClusterConfig{Config: twoTenants(b, 20000, 60)}
		cfg.MaxBatch = 2
		rep, err := RunCluster(b.clusterBackend(gpus, core.DefaultConfig(b.plat)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	one, four := run(1), run(4)
	if one.Total.Completed == 0 || four.Total.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if four.Total.P99NS >= one.Total.P99NS {
		t.Errorf("4 replicas p99 %dns not below 1 replica p99 %dns", four.Total.P99NS, one.Total.P99NS)
	}
	if four.MakespanNS >= one.MakespanNS {
		t.Errorf("4 replicas makespan %dns not below 1 replica %dns", four.MakespanNS, one.MakespanNS)
	}
}

func TestClusterElasticScaleUp(t *testing.T) {
	b := testServeBench(t)
	cfg := ClusterConfig{
		Config:         twoTenants(b, 50000, 60),
		MinReplicas:    1,
		ScaleUpQueueNS: 1e5,
		ScaleWindow:    4,
	}
	rep, err := RunCluster(b.clusterBackend(4, core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakActive <= 1 {
		t.Fatalf("sustained pressure never scaled up: peak active = %d", rep.PeakActive)
	}
	if len(rep.ScaleEvents) == 0 {
		t.Fatal("no scale events recorded")
	}
	last := 1
	for _, ev := range rep.ScaleEvents {
		if ev.Reason != "scale-up" && ev.Reason != "scale-down" {
			t.Errorf("bad scale reason %q", ev.Reason)
		}
		if ev.Reason == "scale-up" && ev.Active != last+1 {
			t.Errorf("scale-up jumped from %d to %d", last, ev.Active)
		}
		last = ev.Active
	}
	// The late-activated replicas must actually absorb work.
	var beyondFirst int64
	for _, rs := range rep.Replicas[1:] {
		beyondFirst += rs.Completed
	}
	if beyondFirst == 0 {
		t.Error("scaled-up replicas served nothing")
	}
}

func TestClusterElasticScaleDown(t *testing.T) {
	b := testServeBench(t)
	cfg := ClusterConfig{
		Config: Config{
			Tenants: []TenantConfig{
				// A dense burst, then a sparse trickle: pressure first, idle after.
				{Name: "burst", Requests: 40, RatePerSec: 100000, Seed: 11, SLONS: 5e7},
				{Name: "trickle", Requests: 10, RatePerSec: 50, Seed: 23, SLONS: 5e7},
			},
			MaxBatch: 2,
			Workers:  2,
		},
		MinReplicas:     1,
		ScaleUpQueueNS:  1e5,
		ScaleWindow:     4,
		ScaleDownIdleNS: 5e6,
	}
	rep, err := RunCluster(b.clusterBackend(4, core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakActive <= 1 {
		t.Fatal("burst never scaled up")
	}
	var downs int
	for _, ev := range rep.ScaleEvents {
		if ev.Reason == "scale-down" {
			downs++
		}
	}
	if downs == 0 {
		t.Errorf("idle trickle never scaled down: events %+v", rep.ScaleEvents)
	}
}

// TestClusterHomeAffinity: at a light rate with all replicas free most of
// the time, tenants should mostly land on their home replica.
func TestClusterHomeAffinity(t *testing.T) {
	b := testServeBench(t)
	cfg := ClusterConfig{Config: twoTenants(b, 200, 20)}
	rep, err := RunCluster(b.clusterBackend(2, core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Placements {
		if p.Requests == 0 {
			t.Fatalf("tenant %s completed nothing", p.Tenant)
		}
		if p.HomeServed*2 < p.Requests {
			t.Errorf("tenant %s served at home only %d/%d under light load", p.Tenant, p.HomeServed, p.Requests)
		}
	}
}

func TestClusterConfigErrors(t *testing.T) {
	b := testServeBench(t)
	be := b.clusterBackend(2, core.DefaultConfig(b.plat))
	if _, err := RunCluster(be, ClusterConfig{}); err == nil {
		t.Error("no tenants should fail")
	}
	if _, err := RunCluster(&ClusterBackend{}, ClusterConfig{Config: twoTenants(b, 100, 5)}); err == nil {
		t.Error("empty backend should fail")
	}
	bad := ClusterConfig{Config: twoTenants(b, 100, 5), Replicas: 3}
	if _, err := RunCluster(be, bad); err == nil {
		t.Error("replica/engine mismatch should fail")
	}
	be.Engines[1] = nil
	if _, err := RunCluster(be, ClusterConfig{Config: twoTenants(b, 100, 5)}); err == nil {
		t.Error("nil engine should fail")
	}
}

// TestClusterServeDeterminism is the cluster scheduler's acceptance
// property: placement, scaling, per-replica, and per-tenant outcomes are
// bit-identical across repeated runs and at every worker count, with and
// without fault injection.
func TestClusterServeDeterminism(t *testing.T) {
	b := testServeBench(t)
	for _, fc := range []faults.Config{{}, {Seed: 41, Rate: 0.25}} {
		run := func(workers int) *ClusterReport {
			ecfg := core.DefaultConfig(b.plat)
			if fc.Rate > 0 {
				ecfg.Faults = faults.New(fc)
			}
			cfg := ClusterConfig{
				Config:         twoTenants(b, 20000, 30),
				MinReplicas:    1,
				ScaleUpQueueNS: 1e5,
				ScaleWindow:    4,
			}
			cfg.Workers = workers
			rep, err := RunCluster(b.clusterBackend(4, ecfg), cfg)
			if err != nil {
				t.Fatalf("rate=%v workers=%d: %v", fc.Rate, workers, err)
			}
			return rep
		}
		want := run(1)
		if again := run(1); !reflect.DeepEqual(want, again) {
			t.Errorf("rate=%v: repeated run diverged:\nwant %+v\ngot  %+v", fc.Rate, want, again)
		}
		for _, workers := range []int{2, 4, 8} {
			if got := run(workers); !reflect.DeepEqual(want, got) {
				t.Errorf("rate=%v workers=%d diverged:\nwant %+v\ngot  %+v", fc.Rate, workers, want, got)
			}
		}
	}
}
