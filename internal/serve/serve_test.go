package serve

import (
	"strings"
	"sync"
	"testing"

	"dynnoffload/internal/core"
	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/pilot"
)

// bench is the shared serving fixture: a small Tree-LSTM under memory
// pressure, a trained pilot, and a request pool. Engines are built per test
// (the mis-prediction cache is stateful).
type bench struct {
	pool []*pilot.Example
	p    *pilot.Pilot
	plat gpusim.Platform
}

var (
	benchOnce sync.Once
	benchVal  bench
)

func testServeBench(t *testing.T) *bench {
	t.Helper()
	benchOnce.Do(func() {
		m := dynn.NewTreeLSTM(dynn.TreeLSTMConfig{Levels: 4, Hidden: 64, SeqLen: 8, Batch: 4, Seed: 5})
		base := gpusim.RTXPlatform()
		probe, err := pilot.NewModelContext(m, gpusim.NewCostModel(base), 0, 0)
		if err != nil {
			panic(err)
		}
		var maxPeak, maxOp int64
		for _, info := range probe.Paths {
			if b := info.Analysis.PeakResidentBytes(); b > maxPeak {
				maxPeak = b
			}
			if b := info.Analysis.MaxSingleOpBytes(); b > maxOp {
				maxOp = b
			}
		}
		budget := maxPeak / 2
		if floor := 9 * maxOp / 4; budget < floor {
			budget = floor
		}
		plat := base.WithMemory(budget)
		ctx, err := pilot.NewModelContext(m, gpusim.NewCostModel(plat), plat.GPU.MemBytes/2, 0)
		if err != nil {
			panic(err)
		}
		samples := dynn.GenerateSamples(21, 450, 8, 48)
		exs, err := pilot.BuildExamples(ctx, pilot.FeatureConfig{}, samples)
		if err != nil {
			panic(err)
		}
		p := pilot.New(pilot.Config{Neurons: 64, Epochs: 10, Seed: 2})
		p.Train(exs[:400])
		benchVal = bench{pool: exs[400:], p: p, plat: plat}
	})
	return &benchVal
}

func (b *bench) backend(cfg core.Config) *Backend {
	return &Backend{Engine: core.NewEngine(cfg, b.p), Pool: b.pool}
}

// twoTenants is a moderate-load baseline config: two tenants sharing the
// device half-and-half, SLO generous enough that some requests complete in
// time.
func twoTenants(b *bench, rate float64, requests int) Config {
	half := b.plat.GPU.MemBytes / 2
	return Config{
		Tenants: []TenantConfig{
			{Name: "alpha", Requests: requests, RatePerSec: rate, Seed: 11, QuotaBytes: half, SLONS: 5e7},
			{Name: "beta", Requests: requests, RatePerSec: rate, Seed: 23, QuotaBytes: half, SLONS: 5e7},
		},
		Workers: 2,
	}
}

func TestServeBasic(t *testing.T) {
	b := testServeBench(t)
	cfg := twoTenants(b, 2000, 40)
	rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Arrivals != 80 {
		t.Errorf("arrivals = %d, want 80", rep.Total.Arrivals)
	}
	if got := rep.Total.Completed + rep.Total.Shed + rep.Total.QuotaShed; got != rep.Total.Arrivals {
		t.Errorf("completed+shed = %d, arrivals = %d", got, rep.Total.Arrivals)
	}
	if rep.Total.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if rep.Total.Batches == 0 || rep.MeanBatchSize < 1 {
		t.Errorf("batching broken: %d batches, mean size %v", rep.Total.Batches, rep.MeanBatchSize)
	}
	if rep.Total.P50NS <= 0 || rep.Total.P99NS < rep.Total.P50NS || rep.Total.MaxNS < rep.Total.P999NS {
		t.Errorf("quantiles inconsistent: %+v", rep.Total)
	}
	if rep.MakespanNS <= 0 {
		t.Error("no simulated makespan")
	}
	if rep.DeviceHighWater <= 0 || rep.DeviceHighWater > b.plat.GPU.MemBytes {
		t.Errorf("device high-water %d out of range", rep.DeviceHighWater)
	}
	for _, tr := range rep.Tenants {
		if tr.Stats.QuotaPeakBytes > tr.Stats.QuotaBytes {
			t.Errorf("tenant %s peak %d exceeds quota %d", tr.Name, tr.Stats.QuotaPeakBytes, tr.Stats.QuotaBytes)
		}
	}
}

func TestServeBackpressureSheds(t *testing.T) {
	b := testServeBench(t)
	cfg := twoTenants(b, 1e6, 60) // absurd offered load
	cfg.Tenants[0].MaxQueue = 2
	cfg.Tenants[1].MaxQueue = 2
	rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Shed == 0 {
		t.Errorf("overload with queue bound 2 shed nothing: %+v", rep.Total)
	}
	if rep.Total.Completed+rep.Total.Shed+rep.Total.QuotaShed != rep.Total.Arrivals {
		t.Errorf("request conservation broken: %+v", rep.Total)
	}
}

func TestServeQuotaShedsImpossible(t *testing.T) {
	b := testServeBench(t)
	cfg := twoTenants(b, 2000, 10)
	cfg.Tenants[1].QuotaBytes = 1 // nothing fits
	rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	beta := rep.Tenants[1].Stats
	if beta.QuotaShed != beta.Arrivals || beta.Completed != 0 {
		t.Errorf("impossible quota should shed everything: %+v", beta)
	}
	alpha := rep.Tenants[0].Stats
	if alpha.Completed == 0 {
		t.Errorf("other tenant should be unaffected: %+v", alpha)
	}
}

func TestServeSLOViolationsCounted(t *testing.T) {
	b := testServeBench(t)
	cfg := twoTenants(b, 2000, 20)
	cfg.Tenants[0].SLONS = 1 // unmeetable
	cfg.Tenants[1].SLONS = 1
	rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.SLOViolations != rep.Total.Completed {
		t.Errorf("1ns SLO: %d violations for %d completions", rep.Total.SLOViolations, rep.Total.Completed)
	}
}

func TestServeTracesQueueSpans(t *testing.T) {
	b := testServeBench(t)
	cfg := twoTenants(b, 5000, 15)
	cfg.Tracer = obsv.NewTracer()
	rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Tracer.SampleCount(); int64(got) != rep.Total.Completed {
		t.Errorf("trace slots = %d, completed = %d", got, rep.Total.Completed)
	}
	var queueSpans int64
	for _, sp := range cfg.Tracer.Spans() {
		if sp.Kind == obsv.SpanQueue {
			queueSpans++
			if sp.StartNS < 0 || sp.DurNS < 0 {
				t.Errorf("bad queue span: %+v", sp)
			}
		}
	}
	if queueSpans != rep.Total.Completed {
		t.Errorf("queue spans = %d, completed = %d", queueSpans, rep.Total.Completed)
	}
}

func TestServeRegistryExposition(t *testing.T) {
	b := testServeBench(t)
	cfg := twoTenants(b, 5000, 10)
	cfg.Registry = obsv.NewRegistry()
	if _, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	cfg.Registry.WritePrometheus(&sb)
	for _, want := range []string{
		`dynn_serve_arrivals_total{run="serve"}`,
		`dynn_serve_arrivals_total{run="serve/alpha",tenant="alpha"}`,
		`dynn_serve_latency_seconds{run="serve/beta",tenant="beta",quantile="0.99"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestServeConfigErrors(t *testing.T) {
	b := testServeBench(t)
	if _, err := Run(b.backend(core.DefaultConfig(b.plat)), Config{}); err == nil {
		t.Error("no tenants should fail")
	}
	cfg := twoTenants(b, 0, 5) // zero rate
	if _, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := Run(&Backend{}, twoTenants(b, 100, 5)); err == nil {
		t.Error("empty backend should fail")
	}
}

// TestServeStarvationGuard: a zero-SLO tenant (deadline = +inf, always last
// under EDF) must still complete when the guard is on, and its worst-case
// wait must shrink versus a guard-disabled run under the same load.
func TestServeStarvationGuard(t *testing.T) {
	b := testServeBench(t)
	mk := func(starve int64) Config {
		// No quotas: with per-tenant caps, batch formation already
		// interleaves tenants, masking what the guard is for.
		return Config{
			Tenants: []TenantConfig{
				{Name: "premium", Requests: 60, RatePerSec: 30000, Seed: 7, SLONS: 3e6},
				{Name: "batch", Requests: 12, RatePerSec: 30000, Seed: 9},
			},
			MaxBatch:        2,
			StarvationAgeNS: starve,
			Workers:         2,
		}
	}
	guarded, err := Run(b.backend(core.DefaultConfig(b.plat)), mk(2e6))
	if err != nil {
		t.Fatal(err)
	}
	unguarded, err := Run(b.backend(core.DefaultConfig(b.plat)), mk(-1))
	if err != nil {
		t.Fatal(err)
	}
	g, u := guarded.Tenants[1].Stats, unguarded.Tenants[1].Stats
	if g.Completed == 0 {
		t.Fatal("no-SLO tenant starved despite guard")
	}
	if u.Completed > 0 && g.MaxNS >= u.MaxNS {
		t.Errorf("guard did not shrink worst-case wait: guarded max %dns, unguarded max %dns", g.MaxNS, u.MaxNS)
	}
}
