package serve

import (
	"errors"
	"fmt"
	"math"

	"dynnoffload/internal/core"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
	"dynnoffload/internal/online"
	"dynnoffload/internal/pilot"
)

// DefaultScaleWindow is the dispatch-wait window the elastic scaler averages
// over when ClusterConfig.ScaleWindow is zero.
const DefaultScaleWindow = 16

// ClusterConfig extends the single-device serving config with replica
// placement and elastic scaling.
type ClusterConfig struct {
	Config
	// Replicas is the GPU replica count; 0 means one per backend engine.
	Replicas int
	// MinReplicas floors the active set when elastic scaling is on; <= 0
	// means 1. Ignored when ScaleUpQueueNS is zero (all replicas active).
	MinReplicas int
	// ScaleUpQueueNS turns on elastic scaling: starting from MinReplicas,
	// one more replica activates whenever the windowed mean queue wait of
	// dispatched requests exceeds this threshold. 0 keeps every replica
	// active for the whole run.
	ScaleUpQueueNS int64
	// ScaleWindow is how many recent dispatch waits the scaler averages;
	// <= 0 means DefaultScaleWindow.
	ScaleWindow int
	// ScaleDownIdleNS retires the highest-indexed active replica (beyond the
	// floor) once it has sat idle this long. 0 disables scale-down.
	ScaleDownIdleNS int64
}

// ClusterBackend is what the cluster scheduler runs requests against: one
// engine per GPU replica sharing a request pool.
type ClusterBackend struct {
	Engines []*core.Engine
	// Pool is the request population, shared by all replicas.
	Pool []*pilot.Example
	// GPUMemBytes sizes each replica's reservation ledger; 0 takes the
	// engine platform's device memory.
	GPUMemBytes int64
}

// Placement records where a tenant is homed and how its completions landed.
// Homes are assigned round-robin by tenant index; the scheduler prefers a
// request's home replica when several replicas are free, so quota-heavy
// tenants mostly stay on their own ledger.
type Placement struct {
	Tenant string
	Home   int
	// Requests is the tenant's completed request count.
	Requests int64
	// HomeServed is how many of those completed on the home replica.
	HomeServed int64
}

// ReplicaStats summarizes one replica's share of the run.
type ReplicaStats struct {
	Replica    int
	Dispatches int64
	Completed  int64
	BusyNS     int64
	// Util is BusyNS over the cluster makespan.
	Util float64
}

// ScaleEvent is one elastic-scaling transition.
type ScaleEvent struct {
	AtNS   int64
	Active int
	Reason string // "scale-up" or "scale-down"
}

// ClusterReport extends the serving report with placement, per-replica, and
// scaling outcomes. Total/Tenants aggregate across every replica.
type ClusterReport struct {
	Report
	Placements  []Placement
	Replicas    []ReplicaStats
	ScaleEvents []ScaleEvent
	// PeakActive is the largest concurrently active replica count.
	PeakActive int
}

// RunCluster plays cfg's request streams against a pool of GPU replicas on
// one simulated clock. The loop is serial and deterministic: arrivals admit
// through the same per-tenant gates as the single-device server into one
// shared queue; each dispatch picks a replica — the queue front's home if
// it is free, otherwise the earliest-free (fewest-dispatches, lowest-index)
// active replica — forms a continuous batch against that replica's own
// reservation ledger, and occupies the replica for the batch's simulated
// service time. Replicas overlap in virtual time; the event loop itself
// never races. With ScaleUpQueueNS set, the active set grows from
// MinReplicas under sustained queue-delay pressure and shrinks on idleness.
func RunCluster(b *ClusterBackend, cfg ClusterConfig) (*ClusterReport, error) {
	if len(cfg.Tenants) == 0 {
		return nil, ErrNoTenants
	}
	if b == nil || len(b.Engines) == 0 || len(b.Pool) == 0 {
		return nil, errors.New("serve: cluster backend needs engines and a non-empty pool")
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = len(b.Engines)
	}
	if replicas != len(b.Engines) {
		return nil, fmt.Errorf("serve: %d engines for %d replicas", len(b.Engines), replicas)
	}
	for i, e := range b.Engines {
		if e == nil {
			return nil, fmt.Errorf("serve: cluster engine %d is nil", i)
		}
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	starveAge := cfg.StarvationAgeNS
	if starveAge == 0 {
		var maxSLO int64
		for _, tc := range cfg.Tenants {
			if tc.SLONS > maxSLO {
				maxSLO = tc.SLONS
			}
		}
		starveAge = 4 * maxSLO
	}
	if starveAge <= 0 {
		starveAge = math.MaxInt64
	}

	// Per-replica ledgers; admission caps requests at the smallest replica,
	// so an admitted request is schedulable anywhere.
	ledgers := make([]*gpusim.Allocator, replicas)
	minMem := int64(math.MaxInt64)
	for r, e := range b.Engines {
		mem := b.GPUMemBytes
		if mem <= 0 {
			mem = e.Cfg.Platform.GPU.MemBytes
		}
		if mem < minMem {
			minMem = mem
		}
		ledgers[r] = gpusim.NewAllocator(mem)
		for _, tc := range cfg.Tenants {
			ledgers[r].SetQuota(tc.Name, tc.QuotaBytes)
		}
	}

	arrivals, err := generate(cfg.Config, b.Pool, minMem)
	if err != nil {
		return nil, err
	}

	rec := obsv.NewRecorder("serve", cfg.Workers, nil)
	cfg.Registry.Register(rec)
	tenantRecs := make([]*obsv.Recorder, len(cfg.Tenants))
	for t, tc := range cfg.Tenants {
		tenantRecs[t] = obsv.NewRecorder("serve/"+tc.Name, cfg.Workers, nil)
		cfg.Registry.Register(tenantRecs[t])
	}

	minActive := 1
	if cfg.MinReplicas > 0 {
		minActive = cfg.MinReplicas
	}
	if minActive > replicas {
		minActive = replicas
	}
	scaleWindow := cfg.ScaleWindow
	if scaleWindow <= 0 {
		scaleWindow = DefaultScaleWindow
	}

	var learner *online.Learner
	if cfg.Online.Enabled {
		// The replicas share one pilot (the facade hands every engine the
		// same trained instance), so the learner adapts one shared clone and
		// every replica's dispatches resolve through it.
		learner, err = online.New(cfg.Online, b.Engines[0].Pilot, len(cfg.Tenants))
		if err != nil {
			return nil, err
		}
	}

	flights := make([]*obsv.FlightRecorder, replicas)
	for r := range flights {
		flights[r] = obsv.NewFlightRecorder(r, cfg.Flight)
	}
	s := &clusterLoop{
		cfg: cfg, backend: b, ledgers: ledgers,
		maxBatch: maxBatch, starveAge: starveAge,
		rec: rec, tenantRecs: tenantRecs,
		acc:         make([]tenantAcc, len(cfg.Tenants)),
		homes:       make([]int, len(cfg.Tenants)),
		free:        make([]int64, replicas),
		dispatches:  make([]int64, replicas),
		completed:   make([]int64, replicas),
		busyNS:      make([]int64, replicas),
		homeServed:  make([]int64, len(cfg.Tenants)),
		flights:     flights,
		active:      replicas,
		minActive:   minActive,
		scaleWindow: scaleWindow,
		learner:     learner,
	}
	if cfg.ScaleUpQueueNS > 0 {
		s.active = minActive
	}
	s.peakActive = s.active
	for t := range s.acc {
		mq := cfg.Tenants[t].MaxQueue
		if mq <= 0 {
			mq = DefaultMaxQueue
		}
		s.acc[t].maxQueue = mq
		s.homes[t] = t % replicas
	}
	if err := s.run(arrivals); err != nil {
		return nil, wrapFlightError(err, s.flights)
	}
	return s.report(), nil
}

// clusterLoop is the cluster scheduler's state.
type clusterLoop struct {
	cfg        ClusterConfig
	backend    *ClusterBackend
	ledgers    []*gpusim.Allocator
	maxBatch   int
	starveAge  int64
	rec        *obsv.Recorder
	tenantRecs []*obsv.Recorder

	now     int64
	queued  []*request
	acc     []tenantAcc
	batches int64
	slots   slotCounter

	homes      []int   // tenant -> home replica
	free       []int64 // replica busy-until
	dispatches []int64
	completed  []int64
	busyNS     []int64
	homeServed []int64
	flights    []*obsv.FlightRecorder // per replica; nil entries when disabled
	makespanNS int64

	active      int
	minActive   int
	peakActive  int
	scaleWindow int
	waits       []int64 // recent dispatch queue waits (scale-up signal)
	events      []ScaleEvent

	// learner is the online feedback loop; nil when Config.Online is off.
	learner *online.Learner
}

// run consumes the sorted arrival stream.
func (s *clusterLoop) run(arrivals []*request) error {
	next := 0
	for next < len(arrivals) || len(s.queued) > 0 {
		if len(s.queued) == 0 {
			if s.now < arrivals[next].arrivalNS {
				s.now = arrivals[next].arrivalNS
			}
		}
		for next < len(arrivals) && arrivals[next].arrivalNS <= s.now {
			s.admit(arrivals[next])
			next++
		}
		if len(s.queued) == 0 {
			continue
		}
		s.scaleDown()
		r := s.pickReplica()
		if s.free[r] > s.now {
			// Every active replica is busy: advance to whichever comes
			// first — the next arrival (more admissions, maybe a scale-up)
			// or the earliest replica release.
			t := s.free[r]
			if next < len(arrivals) && arrivals[next].arrivalNS < t {
				t = arrivals[next].arrivalNS
			}
			s.now = t
			continue
		}
		if err := s.dispatch(r); err != nil {
			return err
		}
	}
	return nil
}

// admit mirrors the single-device gates: impossible requests shed on quota,
// full tenant queues shed as backpressure.
func (s *clusterLoop) admit(r *request) {
	a := &s.acc[r.tenant]
	a.arrivals++
	name := s.cfg.Tenants[r.tenant].Name
	// Admission happens before placement, so its events land on the tenant's
	// home replica recorder — the replica most likely to serve the request.
	flight := s.flights[s.homes[r.tenant]]
	quota := s.cfg.Tenants[r.tenant].QuotaBytes
	if (quota > 0 && r.needBytes > quota) || r.needBytes > s.ledgers[0].Capacity {
		a.quotaShed++
		recordAdmission(flight, obsv.FlightQuotaShed, r, name)
		return
	}
	if a.inQueue >= a.maxQueue {
		a.shed++
		recordAdmission(flight, obsv.FlightShed, r, name)
		return
	}
	a.inQueue++
	s.queued = append(s.queued, r)
	recordAdmission(flight, obsv.FlightAdmit, r, name)
}

// pickReplica chooses where the next batch runs: among replicas free now,
// the queue front's home replica if it is one of them, else the one with
// the fewest dispatches (lowest index on ties). If none is free it returns
// the earliest-free active replica so the caller can advance the clock.
func (s *clusterLoop) pickReplica() int {
	earliest := 0
	for r := 1; r < s.active; r++ {
		if s.free[r] < s.free[earliest] {
			earliest = r
		}
	}
	if s.free[earliest] > s.now {
		return earliest
	}
	if home := s.homes[s.queued[0].tenant]; home < s.active && s.free[home] <= s.now {
		return home
	}
	pick := -1
	for r := 0; r < s.active; r++ {
		if s.free[r] > s.now {
			continue
		}
		if pick < 0 || s.dispatches[r] < s.dispatches[pick] {
			pick = r
		}
	}
	return pick
}

// dispatch forms one continuous batch against replica r's ledger and
// occupies the replica for its service time.
func (s *clusterLoop) dispatch(r int) error {
	var batch []*request
	batch, s.queued = selectBatch(s.queued, s.now, s.starveAge, s.maxBatch, s.ledgers[r], s.cfg.Tenants)
	if len(batch) == 0 {
		// Unreachable: admission caps needBytes at the smallest replica and
		// r's ledger is empty between its batches — but fail loudly.
		return fmt.Errorf("serve: no request schedulable at t=%dns with %d queued", s.now, len(s.queued))
	}

	exs := make([]*pilot.Example, len(batch))
	for i, req := range batch {
		exs[i] = req.ex
	}
	var pilots []*pilot.Pilot
	if s.learner != nil {
		pilots = make([]*pilot.Pilot, len(batch))
		for i, req := range batch {
			pilots[i] = s.learner.PilotFor(req.tenant)
		}
	}
	base := s.slots.take(len(batch))
	eng := s.backend.Engines[r]
	results, err := eng.RunBatch(exs, core.EpochOptions{
		Workers:     s.cfg.Workers,
		Recorder:    s.rec,
		Tracer:      s.cfg.Tracer,
		TraceBase:   base,
		ClockBaseNS: s.now,
		Pilots:      pilots,
	})
	for _, req := range batch {
		s.ledgers[r].Free(req.id)
	}
	if err != nil {
		recordBatchError(s.flights[r], s.now, err)
		return fmt.Errorf("serve: replica %d batch at t=%dns: %w", r, s.now, err)
	}

	serviceNS := serviceTime(eng, batch, results)
	done := s.now + serviceNS
	s.free[r] = done
	s.batches++
	s.dispatches[r]++
	s.busyNS[r] += serviceNS
	if done > s.makespanNS {
		s.makespanNS = done
	}
	s.rec.ObservePhase(PhaseService, serviceNS)
	recordDispatch(s.flights[r], s.now, len(batch), serviceNS)

	for i, req := range batch {
		a := &s.acc[req.tenant]
		a.inQueue--
		name := s.cfg.Tenants[req.tenant].Name
		waitNS := s.now - req.arrivalNS
		e2e := done - req.arrivalNS
		a.complete(e2e, waitNS, req.deadlineNS < done,
			attribution(waitNS, req.quotaNS, req.retrainNS, serviceNS, results[i].Breakdown))
		s.completed[r]++
		if s.homes[req.tenant] == r {
			s.homeServed[req.tenant]++
		}
		tr := s.tenantRecs[req.tenant]
		tr.ObservePhase(PhaseQueue, waitNS)
		tr.ObservePhase(PhaseE2E, e2e)
		tr.ObserveSample(req.seq, results[i].Mispredicted, results[i].CacheHit, e2e)
		// The batch's engine spans sit at ClockBaseNS = now; the queue wait
		// precedes them (build the tracer with WithAbsoluteTime — replicas
		// genuinely overlap on the cluster clock).
		annotateRequestTrace(s.cfg.Tracer, base+i, req, name, r, waitNS)
		recordCompletion(s.flights[r], done, req, name, e2e, results[i].FaultCounters)
		s.observeWait(waitNS)
	}
	if err := s.learn(batch, results); err != nil {
		return err
	}
	s.scaleUp()
	return nil
}

// learn mirrors the single-device loop's feedback step on the cluster's host
// timeline: outcomes feed the learner in dispatch-processing order (the
// run's deterministic serial order), and a retrain stall advances the host
// clock — the replicas keep computing, but no new batch dispatches until the
// refit finishes — crediting every queued request's pilot_retrain component.
func (s *clusterLoop) learn(batch []*request, results []core.SampleResult) error {
	if s.learner == nil {
		return nil
	}
	var stallNS int64
	for i, req := range batch {
		ns, err := s.learner.Observe(req.tenant, req.ex, results[i].Mispredicted)
		if err != nil {
			return fmt.Errorf("serve: online retrain at t=%dns: %w", s.now, err)
		}
		stallNS += ns
	}
	if stallNS > 0 {
		s.now += stallNS
		for _, q := range s.queued {
			q.retrainNS += stallNS
		}
	}
	return nil
}

// observeWait feeds the elastic scaler's dispatch-wait window.
func (s *clusterLoop) observeWait(waitNS int64) {
	if s.cfg.ScaleUpQueueNS <= 0 {
		return
	}
	s.waits = append(s.waits, waitNS)
	if len(s.waits) > s.scaleWindow {
		s.waits = s.waits[len(s.waits)-s.scaleWindow:]
	}
}

// scaleUp activates one more replica when the windowed mean queue wait shows
// sustained pressure. The window resets on activation, so one burst can't
// cascade straight to full width.
func (s *clusterLoop) scaleUp() {
	if s.cfg.ScaleUpQueueNS <= 0 || s.active >= len(s.free) || len(s.waits) < s.scaleWindow {
		return
	}
	var sum int64
	for _, w := range s.waits {
		sum += w
	}
	if sum/int64(len(s.waits)) <= s.cfg.ScaleUpQueueNS {
		return
	}
	// A newly activated replica is free from now on — not from virtual 0.
	s.free[s.active] = s.now
	s.active++
	if s.active > s.peakActive {
		s.peakActive = s.active
	}
	s.waits = s.waits[:0]
	s.events = append(s.events, ScaleEvent{AtNS: s.now, Active: s.active, Reason: "scale-up"})
	// The transition lands on the newly activated replica's recording.
	s.flights[s.active-1].Record(obsv.FlightEvent{
		AtNS: s.now, Kind: obsv.FlightScaleUp, N: s.active,
	})
}

// scaleDown retires idle replicas beyond the floor, highest index first.
// Only a replica whose last batch finished ScaleDownIdleNS ago goes away,
// so nothing in flight is ever dropped.
func (s *clusterLoop) scaleDown() {
	if s.cfg.ScaleUpQueueNS <= 0 || s.cfg.ScaleDownIdleNS <= 0 {
		return
	}
	for s.active > s.minActive {
		r := s.active - 1
		if s.free[r] > s.now-s.cfg.ScaleDownIdleNS {
			return
		}
		s.active--
		s.events = append(s.events, ScaleEvent{AtNS: s.now, Active: s.active, Reason: "scale-down"})
		// The retired replica records its own retirement.
		s.flights[r].Record(obsv.FlightEvent{
			AtNS: s.now, Kind: obsv.FlightScaleDown, N: s.active,
		})
	}
}

// report assembles the cluster summary: the shared serving report over
// max-of-ledgers high-waters, plus placement, per-replica, and scaling views.
func (s *clusterLoop) report() *ClusterReport {
	var highWater int64
	for _, l := range s.ledgers {
		if hw := l.HighWater(); hw > highWater {
			highWater = hw
		}
	}
	ownerPeak := func(name string) int64 {
		var peak int64
		for _, l := range s.ledgers {
			if hw := l.OwnerHighWater(name); hw > peak {
				peak = hw
			}
		}
		return peak
	}
	rep := &ClusterReport{
		Report:      *buildReport(s.cfg.Tenants, s.acc, s.tenantRecs, s.rec, s.batches, s.makespanNS, highWater, ownerPeak, s.learner.Stats()),
		ScaleEvents: s.events,
		PeakActive:  s.peakActive,
	}
	rep.Flights = collectFlights(s.flights, s.makespanNS)
	for t, tc := range s.cfg.Tenants {
		rep.Placements = append(rep.Placements, Placement{
			Tenant: tc.Name, Home: s.homes[t],
			Requests: s.acc[t].completed, HomeServed: s.homeServed[t],
		})
	}
	for r := range s.free {
		st := ReplicaStats{
			Replica: r, Dispatches: s.dispatches[r],
			Completed: s.completed[r], BusyNS: s.busyNS[r],
		}
		if s.makespanNS > 0 {
			st.Util = float64(s.busyNS[r]) / float64(s.makespanNS)
		}
		rep.Replicas = append(rep.Replicas, st)
	}
	return rep
}
