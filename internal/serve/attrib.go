package serve

import (
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
)

// attribution decomposes one completed request's end-to-end latency into the
// obsv taxonomy. The decomposition is exact by construction:
//
//	e2e = waitNS + serviceNS
//	    = (waitNS - quotaNS - retrainNS) + quotaNS + retrainNS  // queue + quota + pilot_retrain
//	    + DeviceNS                                // compute + exposed + remat + fault
//	    + (serviceNS - DeviceNS)                  // batching residual
//
// so TotalNS() of the returned components equals e2e to the nanosecond.
// retrainNS is the online-learning stall time the request sat queued behind;
// both it and quotaNS are measured inside the wait by construction, and both
// are clamped so the queue component can never go negative even if that
// invariant drifts (quota-blocked and retrain-stalled stretches can overlap).
// PilotNS stays zero: the runtime keeps pilot inference and output mapping in
// host wall time (Breakdown.OverheadNS), off the virtual clock, so charging it
// here would leak scheduling noise into the deterministic decomposition.
// AllReduceNS stays zero too — served requests do not synchronize gradients.
func attribution(waitNS, quotaNS, retrainNS, serviceNS int64, bd gpusim.Breakdown) obsv.AttributionComponents {
	if quotaNS > waitNS {
		quotaNS = waitNS
	}
	if retrainNS > waitNS-quotaNS {
		retrainNS = waitNS - quotaNS
	}
	return obsv.AttributionComponents{
		QueueNS:        waitNS - quotaNS - retrainNS,
		QuotaNS:        quotaNS,
		PilotRetrainNS: retrainNS,
		ComputeNS:      bd.ComputeNS,
		ExposedNS:      bd.ExposedXferNS,
		RematNS:        bd.RematNS,
		FaultNS:        bd.FaultNS,
		BatchNS:        serviceNS - bd.DeviceNS(),
	}
}
