package serve

import (
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
)

// attribution decomposes one completed request's end-to-end latency into the
// obsv taxonomy. The decomposition is exact by construction:
//
//	e2e = waitNS + serviceNS
//	    = (waitNS - quotaNS) + quotaNS            // queue + quota
//	    + DeviceNS                                // compute + exposed + remat + fault
//	    + (serviceNS - DeviceNS)                  // batching residual
//
// so TotalNS() of the returned components equals e2e to the nanosecond.
// PilotNS stays zero: the runtime keeps pilot inference and output mapping in
// host wall time (Breakdown.OverheadNS), off the virtual clock, so charging it
// here would leak scheduling noise into the deterministic decomposition.
// AllReduceNS stays zero too — served requests do not synchronize gradients.
func attribution(waitNS, quotaNS, serviceNS int64, bd gpusim.Breakdown) obsv.AttributionComponents {
	if quotaNS > waitNS {
		// quotaNS is measured inside the wait by construction; clamp so the
		// queue component can never go negative even if that invariant drifts.
		quotaNS = waitNS
	}
	return obsv.AttributionComponents{
		QueueNS:   waitNS - quotaNS,
		QuotaNS:   quotaNS,
		ComputeNS: bd.ComputeNS,
		ExposedNS: bd.ExposedXferNS,
		RematNS:   bd.RematNS,
		FaultNS:   bd.FaultNS,
		BatchNS:   serviceNS - bd.DeviceNS(),
	}
}
