package serve

import (
	"reflect"
	"testing"

	"dynnoffload/internal/core"
	"dynnoffload/internal/faults"
	"dynnoffload/internal/online"
)

// onlineConfig is the learning setup the serve-layer property tests run:
// per-tenant adapters on, short interval so retrains actually fire inside
// small CI-scale runs.
func onlineConfig(observeOnly bool) online.Config {
	return online.Config{
		Enabled:            true,
		ObserveOnly:        observeOnly,
		TrainingInterval:   4,
		MinibatchSize:      8,
		WindowSize:         10,
		PerTenant:          true,
		AdapterMinExamples: 6,
		Seed:               17,
	}
}

// TestServeOnlineZeroValueIsInert pins backwards compatibility: a zero-value
// Config.Online must reproduce the pre-online serving behavior byte for byte
// — same report, no online section, no pilot_retrain attribution.
func TestServeOnlineZeroValueIsInert(t *testing.T) {
	b := testServeBench(t)
	run := func(explicitZero bool) *Report {
		cfg := twoTenants(b, 4000, 30)
		if explicitZero {
			cfg.Online = online.Config{}
		}
		rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base, zero := run(false), run(true)
	if !reflect.DeepEqual(base, zero) {
		t.Errorf("zero-value Online changed the report:\nwant %+v\ngot  %+v", base, zero)
	}
	if base.Total.Online != nil {
		t.Error("disabled run grew an online stats section")
	}
	if base.Total.Attribution != nil && base.Total.Attribution.All.PilotRetrainNS != 0 {
		t.Errorf("disabled run charged pilot_retrain time: %d", base.Total.Attribution.All.PilotRetrainNS)
	}
}

// TestServeObserveOnlyMatchesDisabled: the frozen control arm must predict,
// schedule, and attribute identically to a run with learning off — the only
// difference is the online stats section riding on the report.
func TestServeObserveOnlyMatchesDisabled(t *testing.T) {
	b := testServeBench(t)
	run := func(enabled bool) *Report {
		cfg := twoTenants(b, 4000, 30)
		if enabled {
			cfg.Online = onlineConfig(true)
		}
		rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	disabled, frozen := run(false), run(true)
	if frozen.Total.Online == nil {
		t.Fatal("ObserveOnly run carries no online stats")
	}
	if frozen.Total.Online.Retrains != 0 || frozen.Total.Online.RetrainNS != 0 {
		t.Fatalf("ObserveOnly retrained: %+v", frozen.Total.Online)
	}
	if frozen.Total.Online.Observed != frozen.Total.Completed {
		t.Errorf("observed %d != completed %d", frozen.Total.Online.Observed, frozen.Total.Completed)
	}
	frozen.Total.Online = nil
	if !reflect.DeepEqual(disabled, frozen) {
		t.Errorf("ObserveOnly diverged from disabled:\nwant %+v\ngot  %+v", disabled, frozen)
	}
}

// TestServeOnlineDeterminism extends the serving layer's acceptance property
// to in-loop learning: with retrains firing and per-tenant adapters warming,
// the report stays bit-identical across repeated runs and at every worker
// count, fault-free and faulted.
func TestServeOnlineDeterminism(t *testing.T) {
	b := testServeBench(t)
	for _, fc := range []faults.Config{{}, {Seed: 41, Rate: 0.25}} {
		run := func(workers int) *Report {
			ecfg := core.DefaultConfig(b.plat)
			if fc.Rate > 0 {
				ecfg.Faults = faults.New(fc)
			}
			cfg := twoTenants(b, 4000, 30)
			cfg.Workers = workers
			cfg.Online = onlineConfig(false)
			rep, err := Run(b.backend(ecfg), cfg)
			if err != nil {
				t.Fatalf("rate=%v workers=%d: %v", fc.Rate, workers, err)
			}
			return rep
		}
		want := run(1)
		if want.Total.Online == nil || want.Total.Online.Retrains == 0 {
			t.Fatalf("rate=%v: learning never fired — the property would be vacuous: %+v",
				fc.Rate, want.Total.Online)
		}
		if again := run(1); !reflect.DeepEqual(want, again) {
			t.Errorf("rate=%v: repeated online run diverged:\nwant %+v\ngot  %+v", fc.Rate, want, again)
		}
		for _, workers := range []int{2, 4, 8} {
			if got := run(workers); !reflect.DeepEqual(want, got) {
				t.Errorf("rate=%v workers=%d diverged:\nwant %+v\ngot  %+v", fc.Rate, workers, got, want)
			}
		}
	}
}

// TestServeOnlineRetrainAttribution: when retrains stall the host timeline,
// the cost lands in the pilot_retrain component and the decomposition stays
// exact (TotalNS equals the summed end-to-end latency, checked by obsv's
// attribution invariants downstream).
func TestServeOnlineRetrainAttribution(t *testing.T) {
	b := testServeBench(t)
	cfg := twoTenants(b, 8000, 40)
	oc := onlineConfig(false)
	oc.RetrainCostNS = 50_000 // large enough that queued requests overlap a stall
	cfg.Online = oc
	rep, err := Run(b.backend(core.DefaultConfig(b.plat)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	on := rep.Total.Online
	if on == nil || on.Retrains == 0 {
		t.Fatalf("no retrains fired: %+v", on)
	}
	if rep.Total.Attribution == nil {
		t.Fatal("no attribution")
	}
	if rep.Total.Attribution.All.PilotRetrainNS <= 0 {
		t.Error("retrain stalls never attributed to pilot_retrain")
	}
	if on.RetrainNS <= 0 {
		t.Error("retrain cost not accounted")
	}
	if on.AdapterTenants == 0 {
		t.Error("per-tenant adapters never warmed")
	}
	if len(on.WindowRates) == 0 {
		t.Error("no mispredict windows closed")
	}
}

// TestClusterOnlineDeterminism mirrors the cluster acceptance property with
// learning on: elastic scaling, replica placement, and the retrain schedule
// replay bit-identically at any worker count, fault-free and faulted.
func TestClusterOnlineDeterminism(t *testing.T) {
	b := testServeBench(t)
	for _, fc := range []faults.Config{{}, {Seed: 41, Rate: 0.25}} {
		run := func(workers int) *ClusterReport {
			ecfg := core.DefaultConfig(b.plat)
			if fc.Rate > 0 {
				ecfg.Faults = faults.New(fc)
			}
			cfg := ClusterConfig{
				Config:         twoTenants(b, 20000, 30),
				MinReplicas:    1,
				ScaleUpQueueNS: 1e5,
				ScaleWindow:    4,
			}
			cfg.Workers = workers
			cfg.Online = onlineConfig(false)
			rep, err := RunCluster(b.clusterBackend(4, ecfg), cfg)
			if err != nil {
				t.Fatalf("rate=%v workers=%d: %v", fc.Rate, workers, err)
			}
			return rep
		}
		want := run(1)
		if want.Total.Online == nil || want.Total.Online.Retrains == 0 {
			t.Fatalf("rate=%v: cluster learning never fired: %+v", fc.Rate, want.Total.Online)
		}
		if again := run(1); !reflect.DeepEqual(want, again) {
			t.Errorf("rate=%v: repeated cluster online run diverged:\nwant %+v\ngot  %+v", fc.Rate, want, again)
		}
		for _, workers := range []int{2, 4, 8} {
			if got := run(workers); !reflect.DeepEqual(want, got) {
				t.Errorf("rate=%v workers=%d diverged:\nwant %+v\ngot  %+v", fc.Rate, workers, got, want)
			}
		}
	}
}
