package serve

import "dynnoffload/internal/obsv"

// Trace slot assignment and per-request trace annotation, shared by the
// single-device and cluster event loops so the two paths cannot drift: both
// hand RunBatch a TraceBase from the same counter and annotate completed
// requests through the same helper.

// slotCounter assigns contiguous dispatch-order trace/recorder slots. Every
// batch takes len(batch) slots; slot base+i belongs to the batch's i-th
// request for both the Tracer sample index and ObserveSample.
type slotCounter int

// take reserves n slots and returns the base index of the reservation.
func (c *slotCounter) take(n int) int {
	base := int(*c)
	*c += slotCounter(n)
	return base
}

// annotateRequestTrace tags a dispatched request's engine trace (registered
// by RunBatch at the given slot) with its causal identity — request id,
// tenant, replica — and lays its queue-wait span. Nil-safe throughout: with
// tracing off it is a no-op.
//
// The queue span's placement depends on the tracer's clock layout:
//   - Absolute (cluster; WithAbsoluteTime): the engine spans already sit at
//     the dispatch time via ClockBaseNS, so the wait lands just before them,
//     starting at the request's arrival on the shared cluster clock.
//   - Serial-equivalent (single device): each sample's spans start at its own
//     t=0, so the engine spans shift past the wait and the queue span sits at
//     the origin (queue spans then always start at >= 0).
func annotateRequestTrace(tr *obsv.Tracer, slot int, r *request, tenant string, replica int, waitNS int64) {
	st := tr.At(slot)
	if st == nil {
		return
	}
	st.SetRequest(r.id, tenant)
	st.SetReplica(replica)
	if tr.AbsoluteTime() {
		st.Span(obsv.SpanQueue, obsv.LaneHost, -1, -waitNS, waitNS, 0)
		return
	}
	st.Shift(waitNS)
	st.Span(obsv.SpanQueue, obsv.LaneHost, -1, 0, waitNS, 0)
}
