package gpusim

import "fmt"

// Link is one interconnect wire modeled as a DES resource: a busy-until
// horizon on the cluster's virtual clock. Transfers serialize — a message
// starts at max(readyNS, busy) and holds the link for latency plus
// bytes/bandwidth — so contention between offload (host) traffic and
// collective (ring) traffic falls out of the schedule instead of a formula.
type Link struct {
	Name string
	Spec LinkSpec

	busyNS    int64 // horizon: when the link next frees
	occNS     int64 // total occupied time across the run
	bytes     int64
	transfers int64
}

// NewLink builds an idle link.
func NewLink(name string, spec LinkSpec) *Link {
	return &Link{Name: name, Spec: spec}
}

// TransferNS is the serialized duration of moving n bytes over a link with
// this spec: wire latency plus bandwidth time. It is the same arithmetic the
// closed-form ring model uses per hop, so an uncontended DES schedule and the
// formula agree to integer rounding.
func (s LinkSpec) TransferNS(bytes int64) int64 {
	if bytes < 0 {
		bytes = 0
	}
	return int64(float64(bytes)/s.BW*1e9) + s.LatencyNS
}

// Occupy reserves the link for durNS starting no earlier than readyNS,
// queueing behind whatever is already scheduled. It returns the granted
// [start, end) window and advances the busy horizon to end.
func (l *Link) Occupy(readyNS, durNS int64) (startNS, endNS int64) {
	if durNS < 0 {
		durNS = 0
	}
	start := readyNS
	if l.busyNS > start {
		start = l.busyNS
	}
	end := start + durNS
	l.busyNS = end
	l.occNS += durNS
	return start, end
}

// Transfer schedules one bytes-long message on the link and returns its
// granted window.
func (l *Link) Transfer(readyNS, bytes int64) (startNS, endNS int64) {
	start, end := l.Occupy(readyNS, l.Spec.TransferNS(bytes))
	l.bytes += bytes
	l.transfers++
	return start, end
}

// Book reserves the link for an externally-timed occupancy of durNS carrying
// bytes — the cluster runtime uses it to lay a sample's already-simulated
// offload traffic onto the shared host link, where ring sends queue behind
// it.
func (l *Link) Book(readyNS, durNS, bytes int64) (startNS, endNS int64) {
	start, end := l.Occupy(readyNS, durNS)
	l.bytes += bytes
	l.transfers++
	return start, end
}

// BusyUntil is the link's current busy horizon.
func (l *Link) BusyUntil() int64 { return l.busyNS }

// LinkStats summarizes one link's traffic over a run.
type LinkStats struct {
	Name      string
	Transfers int64
	Bytes     int64
	BusyNS    int64
	// Util is BusyNS over the observation span handed to Stats.
	Util float64
}

// Stats reduces the link's counters; spanNS is the run's makespan (<= 0
// leaves Util zero).
func (l *Link) Stats(spanNS int64) LinkStats {
	st := LinkStats{Name: l.Name, Transfers: l.transfers, Bytes: l.bytes, BusyNS: l.occNS}
	if spanNS > 0 {
		st.Util = float64(l.occNS) / float64(spanNS)
	}
	return st
}

// Interconnect is the cluster's wiring: GPUs packed gpusPerNode to a node,
// intra-node neighbors joined by dedicated point-to-point links (NVLink
// class) and each node owning one shared host/PCIe link. Ring traffic that
// crosses a node boundary falls back to the sender's host link — the same
// resource layer-offload traffic occupies — which is exactly where the
// closed-form model stops and joint DES scheduling starts.
type Interconnect struct {
	gpus        int
	gpusPerNode int
	host        []*Link // per node
	egress      []*Link // per GPU, to its ring successor
}

// NewInterconnect wires gpus GPUs with gpusPerNode per node. intra is the
// in-node point-to-point spec, cross the host/PCIe spec shared per node.
// gpusPerNode <= 0 puts every GPU on one node.
func NewInterconnect(gpus, gpusPerNode int, intra, cross LinkSpec) *Interconnect {
	if gpus < 1 {
		gpus = 1
	}
	if gpusPerNode <= 0 {
		gpusPerNode = gpus
	}
	ic := &Interconnect{gpus: gpus, gpusPerNode: gpusPerNode}
	nodes := (gpus + gpusPerNode - 1) / gpusPerNode
	for n := 0; n < nodes; n++ {
		ic.host = append(ic.host, NewLink(fmt.Sprintf("link/pcie-node%d", n), cross))
	}
	ic.egress = make([]*Link, gpus)
	for g := 0; g < gpus; g++ {
		next := (g + 1) % gpus
		if gpus > 1 && ic.Node(g) == ic.Node(next) {
			ic.egress[g] = NewLink(fmt.Sprintf("link/intra-gpu%d", g), intra)
		} else {
			// Cross-node hop (or the single-GPU degenerate ring): the send
			// shares the sender node's host link with offload traffic.
			ic.egress[g] = ic.host[ic.Node(g)]
		}
	}
	return ic
}

// GPUs is the GPU count.
func (ic *Interconnect) GPUs() int { return ic.gpus }

// Nodes is the node count.
func (ic *Interconnect) Nodes() int { return len(ic.host) }

// Node maps a GPU index to its node index.
func (ic *Interconnect) Node(gpu int) int { return gpu / ic.gpusPerNode }

// HostLink is the shared host/PCIe link of the GPU's node — the resource
// layer-offload (H2D/D2H) traffic occupies.
func (ic *Interconnect) HostLink(gpu int) *Link { return ic.host[ic.Node(gpu)] }

// Egress is the link GPU g sends on toward its ring successor: a dedicated
// intra-node link, or the node's host link for cross-node hops.
func (ic *Interconnect) Egress(gpu int) *Link { return ic.egress[gpu] }

// Send schedules one ring message from GPU g to its successor.
func (ic *Interconnect) Send(gpu int, readyNS, bytes int64) (startNS, endNS int64) {
	return ic.egress[gpu].Transfer(readyNS, bytes)
}

// Links returns every distinct link in a fixed order: host links by node,
// then dedicated egress links by GPU.
func (ic *Interconnect) Links() []*Link {
	out := append([]*Link(nil), ic.host...)
	for g, l := range ic.egress {
		if l == ic.host[ic.Node(g)] {
			continue
		}
		out = append(out, l)
	}
	return out
}
