package gpusim

import "sort"

// Allocator is a first-fit address-space allocator over the migration
// buffer. It exists to justify the runtime's evict-then-prefetch ordering
// (§IV-E): evicting and prefetching *in parallel* interleaves frees with
// allocations, fragmenting the buffer so that a large incoming tensor may
// not find a contiguous extent even when total free space suffices.
// Evicting everything first coalesces the space. The ablation benchmark
// BenchmarkEvictThenPrefetch measures the difference.
type Allocator struct {
	Capacity int64
	blocks   map[int64][2]int64 // id -> {offset, size}
	frees    [][2]int64         // sorted by offset
}

// NewAllocator creates an allocator over capacity bytes.
func NewAllocator(capacity int64) *Allocator {
	return &Allocator{
		Capacity: capacity,
		blocks:   map[int64][2]int64{},
		frees:    [][2]int64{{0, capacity}},
	}
}

// Alloc places a tensor, first-fit. Returns false when no contiguous free
// extent is large enough (even if total free space would suffice —
// fragmentation).
func (a *Allocator) Alloc(id, size int64) bool {
	if _, dup := a.blocks[id]; dup {
		return true
	}
	for i, f := range a.frees {
		if f[1] >= size {
			a.blocks[id] = [2]int64{f[0], size}
			if f[1] == size {
				a.frees = append(a.frees[:i], a.frees[i+1:]...)
			} else {
				a.frees[i] = [2]int64{f[0] + size, f[1] - size}
			}
			return true
		}
	}
	return false
}

// Free releases a tensor's extent and coalesces adjacent free extents.
func (a *Allocator) Free(id int64) {
	b, ok := a.blocks[id]
	if !ok {
		return
	}
	delete(a.blocks, id)
	a.frees = append(a.frees, b)
	sort.Slice(a.frees, func(i, j int) bool { return a.frees[i][0] < a.frees[j][0] })
	coalesced := a.frees[:1]
	for _, f := range a.frees[1:] {
		last := &coalesced[len(coalesced)-1]
		if (*last)[0]+(*last)[1] == f[0] {
			(*last)[1] += f[1]
		} else {
			coalesced = append(coalesced, f)
		}
	}
	a.frees = coalesced
}

// FreeBytes returns total free space (across all extents).
func (a *Allocator) FreeBytes() int64 {
	var t int64
	for _, f := range a.frees {
		t += f[1]
	}
	return t
}

// LargestExtent returns the largest contiguous free extent.
func (a *Allocator) LargestExtent() int64 {
	var m int64
	for _, f := range a.frees {
		if f[1] > m {
			m = f[1]
		}
	}
	return m
}

// Fragmentation is 1 - largest extent / total free (0 when perfectly
// coalesced or empty-free).
func (a *Allocator) Fragmentation() float64 {
	total := a.FreeBytes()
	if total == 0 {
		return 0
	}
	return 1 - float64(a.LargestExtent())/float64(total)
}

// Reset returns the allocator to one empty extent.
func (a *Allocator) Reset() {
	a.blocks = map[int64][2]int64{}
	a.frees = [][2]int64{{0, a.Capacity}}
}
