package gpusim

import (
	"errors"
	"fmt"
	"sort"

	"dynnoffload/internal/faults"
)

// Allocation errors distinguish the two failure modes the degradation ladder
// handles differently: a transient injected failure clears on retry; no-space
// requires eviction (or is genuine exhaustion).
var (
	// ErrAllocTransient is an injected transient allocation failure; the
	// caller should retry.
	ErrAllocTransient = errors.New("gpusim: transient allocation failure")
	// ErrAllocNoSpace means no contiguous free extent is large enough (even
	// if total free space would suffice — fragmentation).
	ErrAllocNoSpace = errors.New("gpusim: no contiguous free extent")
)

// Allocator is a first-fit address-space allocator over the migration
// buffer. It exists to justify the runtime's evict-then-prefetch ordering
// (§IV-E): evicting and prefetching *in parallel* interleaves frees with
// allocations, fragmenting the buffer so that a large incoming tensor may
// not find a contiguous extent even when total free space suffices.
// Evicting everything first coalesces the space. The ablation benchmark
// BenchmarkEvictThenPrefetch measures the difference.
//
// The allocator also carries the serving layer's reservation/quota
// accounting (see quota.go): every placement is attributed to an owner
// (the empty owner for plain Alloc/TryAlloc), per-owner usage and peaks are
// tracked, and owners with a quota set are refused placements that would
// exceed it.
type Allocator struct {
	Capacity int64
	blocks   map[int64]extent // id -> placement
	frees    [][2]int64       // sorted by offset

	fs *faults.Stream

	// Reservation/quota accounting (quota.go).
	used      int64
	highWater int64
	quotas    map[string]int64
	ownerUsed map[string]int64
	ownerPeak map[string]int64
}

// extent is one placed block: its address range and the owner it is
// accounted to.
type extent struct {
	off, size int64
	owner     string
}

// AllocOption configures NewAllocator.
type AllocOption func(*Allocator)

// WithAllocFaults attaches the fault stream consulted by TryAlloc at each
// allocation. A nil stream leaves the allocator fault-free.
func WithAllocFaults(fs *faults.Stream) AllocOption {
	return func(a *Allocator) { a.fs = fs }
}

// NewAllocator creates an allocator over capacity bytes.
func NewAllocator(capacity int64, opts ...AllocOption) *Allocator {
	a := &Allocator{
		Capacity:  capacity,
		blocks:    map[int64]extent{},
		frees:     [][2]int64{{0, capacity}},
		quotas:    map[string]int64{},
		ownerUsed: map[string]int64{},
		ownerPeak: map[string]int64{},
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Alloc places a tensor, first-fit, accounted to the empty owner. Returns
// false when no contiguous free extent is large enough (even if total free
// space would suffice — fragmentation).
func (a *Allocator) Alloc(id, size int64) bool {
	return a.alloc("", id, size)
}

// alloc is the shared first-fit placement, attributing the block to owner.
func (a *Allocator) alloc(owner string, id, size int64) bool {
	if _, dup := a.blocks[id]; dup {
		return true
	}
	for i, f := range a.frees {
		if f[1] >= size {
			a.blocks[id] = extent{off: f[0], size: size, owner: owner}
			if f[1] == size {
				a.frees = append(a.frees[:i], a.frees[i+1:]...)
			} else {
				a.frees[i] = [2]int64{f[0] + size, f[1] - size}
			}
			a.account(owner, size)
			return true
		}
	}
	return false
}

// TryAlloc places a tensor first-fit, consulting the attached fault stream.
// It distinguishes the injected transient failure (ErrAllocTransient — retry)
// from real fragmentation/exhaustion (ErrAllocNoSpace — evict first). Alloc
// stays fault-blind, serving as the ladder's final rung.
func (a *Allocator) TryAlloc(id, size int64) error {
	if _, dup := a.blocks[id]; dup {
		return nil
	}
	if a.fs.Alloc() {
		return ErrAllocTransient
	}
	if !a.Alloc(id, size) {
		return fmt.Errorf("gpusim: alloc %d bytes, largest extent %d: %w", size, a.LargestExtent(), ErrAllocNoSpace)
	}
	return nil
}

// Free releases a tensor's extent and coalesces adjacent free extents.
func (a *Allocator) Free(id int64) {
	b, ok := a.blocks[id]
	if !ok {
		return
	}
	delete(a.blocks, id)
	a.unaccount(b.owner, b.size)
	a.frees = append(a.frees, [2]int64{b.off, b.size})
	sort.Slice(a.frees, func(i, j int) bool { return a.frees[i][0] < a.frees[j][0] })
	coalesced := a.frees[:1]
	for _, f := range a.frees[1:] {
		last := &coalesced[len(coalesced)-1]
		if (*last)[0]+(*last)[1] == f[0] {
			(*last)[1] += f[1]
		} else {
			coalesced = append(coalesced, f)
		}
	}
	a.frees = coalesced
}

// FreeBytes returns total free space (across all extents).
func (a *Allocator) FreeBytes() int64 {
	var t int64
	for _, f := range a.frees {
		t += f[1]
	}
	return t
}

// LargestExtent returns the largest contiguous free extent.
func (a *Allocator) LargestExtent() int64 {
	var m int64
	for _, f := range a.frees {
		if f[1] > m {
			m = f[1]
		}
	}
	return m
}

// Fragmentation is 1 - largest extent / total free (0 when perfectly
// coalesced or empty-free).
func (a *Allocator) Fragmentation() float64 {
	total := a.FreeBytes()
	if total == 0 {
		return 0
	}
	return 1 - float64(a.LargestExtent())/float64(total)
}

// Reset returns the allocator to one empty extent. Quotas persist; usage,
// per-owner usage, and high-water marks reset with the space.
func (a *Allocator) Reset() {
	a.blocks = map[int64]extent{}
	a.frees = [][2]int64{{0, a.Capacity}}
	a.used = 0
	a.highWater = 0
	a.ownerUsed = map[string]int64{}
	a.ownerPeak = map[string]int64{}
}
