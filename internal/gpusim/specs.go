// Package gpusim is the hardware substrate: a virtual-time simulator of a
// GPU (compute + HBM), CPU memory, and the CPU–GPU interconnect. Offloading
// policies are expressed against three explicit streams (compute, H2D copy,
// D2H copy) whose busy-until times advance in virtual nanoseconds; overlap
// between migration and computation therefore *emerges* from stream
// scheduling rather than being assumed.
//
// This replaces the paper's physical testbed (RTX6000 / A100 servers over
// PCIe 3.0 x16) — see DESIGN.md §2 for the substitution argument.
package gpusim

// DeviceSpec describes one GPU.
type DeviceSpec struct {
	Name         string
	MemBytes     int64
	FLOPS        float64 // peak fp32 FLOP/s
	MemBW        float64 // HBM bytes/s
	LaunchNS     int64   // kernel launch overhead
	ComputeEff   float64 // achievable fraction of peak FLOPS
	BandwidthEff float64 // achievable fraction of peak HBM bandwidth
}

// LinkSpec describes an interconnect.
type LinkSpec struct {
	BW        float64 // bytes/s
	LatencyNS int64   // per-transfer setup latency
}

// Platform is one evaluation environment (paper §VI-A).
type Platform struct {
	Name        string
	GPU         DeviceSpec
	NumGPUs     int
	CPUMemBytes int64
	Link        LinkSpec // CPU<->GPU (PCIe 3.0 x16 in the paper)
	InterGPU    LinkSpec // GPU<->GPU for data-parallel scaling
}

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
	gib = int64(1) << 30
)

// GiB converts gibibytes to bytes.
func GiB(n int64) int64 { return n * gib }

// MiB converts mebibytes to bytes.
func MiB(n int64) int64 { return n * mib }

// PCIe3x16 is the paper's interconnect: 16-lane PCIe 3.0, ~12.8 GB/s
// effective.
func PCIe3x16() LinkSpec {
	return LinkSpec{BW: 12.8e9, LatencyNS: 10_000}
}

// RTX6000 returns the desktop-class GPU of environment (1): 23 GB memory.
func RTX6000() DeviceSpec {
	return DeviceSpec{
		Name:         "RTX6000",
		MemBytes:     GiB(23),
		FLOPS:        16.3e12,
		MemBW:        672e9,
		LaunchNS:     4_000,
		ComputeEff:   0.45,
		BandwidthEff: 0.75,
	}
}

// A100 returns the data-center GPU of environment (2): 80 GB memory.
func A100() DeviceSpec {
	return DeviceSpec{
		Name:         "A100-80GB",
		MemBytes:     GiB(80),
		FLOPS:        19.5e12,
		MemBW:        1555e9,
		LaunchNS:     4_000,
		ComputeEff:   0.45,
		BandwidthEff: 0.75,
	}
}

// RTXPlatform is evaluation environment (1): one RTX6000 per server,
// 186 GB CPU memory, PCIe 3.0 x16.
func RTXPlatform() Platform {
	return Platform{
		Name:        "rtx6000-server",
		GPU:         RTX6000(),
		NumGPUs:     1,
		CPUMemBytes: GiB(186),
		Link:        PCIe3x16(),
		InterGPU:    PCIe3x16(),
	}
}

// A100Platform is evaluation environment (2): four A100-80GB per server,
// 500 GB CPU memory, PCIe 3.0 x16.
func A100Platform() Platform {
	return Platform{
		Name:        "a100-server",
		GPU:         A100(),
		NumGPUs:     4,
		CPUMemBytes: GiB(500),
		Link:        PCIe3x16(),
		InterGPU:    LinkSpec{BW: 50e9, LatencyNS: 5_000}, // NVLink-class intra-node
	}
}

// WithMemory returns a copy of the platform whose GPU capacity is capped at
// budget bytes — how Fig 9's GPU-memory-budget sweeps are realized.
func (p Platform) WithMemory(budget int64) Platform {
	q := p
	q.GPU.MemBytes = budget
	return q
}
