package gpusim

import (
	"errors"
	"fmt"
	"sort"
)

// This file is the serving layer's reservation/quota view of the Allocator:
// placements are attributed to owners (tenants), owners may carry a byte
// quota, and usage plus high-water marks are tracked per owner and in total
// so quota pressure is observable rather than inferred. All accounting is
// updated inside alloc/Free, so the invariants hold for every entry point
// (Alloc, TryAlloc, Reserve) — see TestQuotaAccountingNeverLeaks.

// ErrQuotaExceeded means the owner's reservation would exceed its configured
// byte quota. Distinct from ErrAllocNoSpace: the device may have room, the
// tenant does not.
var ErrQuotaExceeded = errors.New("gpusim: tenant quota exceeded")

// SetQuota caps owner's total resident bytes. A non-positive quota removes
// the cap (the owner is then bounded only by device capacity).
func (a *Allocator) SetQuota(owner string, bytes int64) {
	if bytes <= 0 {
		delete(a.quotas, owner)
		return
	}
	a.quotas[owner] = bytes
}

// Quota returns the owner's configured cap, 0 when uncapped.
func (a *Allocator) Quota(owner string) int64 { return a.quotas[owner] }

// Reserve places a block of size bytes for owner, enforcing its quota before
// consuming space. The error distinguishes the tenant hitting its own cap
// (ErrQuotaExceeded) from the device lacking a contiguous extent
// (ErrAllocNoSpace); release with Free(id).
func (a *Allocator) Reserve(owner string, id, size int64) error {
	if _, dup := a.blocks[id]; dup {
		return nil
	}
	if q, capped := a.quotas[owner]; capped && a.ownerUsed[owner]+size > q {
		return fmt.Errorf("gpusim: owner %q at %d of %d bytes, requested %d: %w",
			owner, a.ownerUsed[owner], q, size, ErrQuotaExceeded)
	}
	if !a.alloc(owner, id, size) {
		return fmt.Errorf("gpusim: reserve %d bytes for %q, largest extent %d: %w",
			size, owner, a.LargestExtent(), ErrAllocNoSpace)
	}
	return nil
}

// UsedBytes returns the total resident bytes across all owners.
func (a *Allocator) UsedBytes() int64 { return a.used }

// HighWater returns the peak total resident bytes since the last Reset.
func (a *Allocator) HighWater() int64 { return a.highWater }

// OwnerUsed returns owner's current resident bytes.
func (a *Allocator) OwnerUsed(owner string) int64 { return a.ownerUsed[owner] }

// OwnerHighWater returns owner's peak resident bytes since the last Reset.
func (a *Allocator) OwnerHighWater(owner string) int64 { return a.ownerPeak[owner] }

// Owners lists every owner with recorded usage (current or peak), sorted, so
// callers can render per-tenant accounting deterministically.
func (a *Allocator) Owners() []string {
	var out []string
	for o := range a.ownerPeak {
		out = append(out, o) //dynnlint:ignore determinism keys are sorted before return
	}
	sort.Strings(out)
	return out
}

// account records size bytes becoming resident for owner.
func (a *Allocator) account(owner string, size int64) {
	a.used += size
	if a.used > a.highWater {
		a.highWater = a.used
	}
	a.ownerUsed[owner] += size
	if a.ownerUsed[owner] > a.ownerPeak[owner] {
		a.ownerPeak[owner] = a.ownerUsed[owner]
	}
}

// unaccount records size bytes leaving residency for owner.
func (a *Allocator) unaccount(owner string, size int64) {
	a.used -= size
	a.ownerUsed[owner] -= size
}
