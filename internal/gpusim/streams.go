package gpusim

// Streams tracks the busy-until virtual time of the three hardware queues a
// policy schedules against. CUDA semantics: operations on one stream are
// ordered; operations on different streams overlap freely; dependencies are
// expressed by starting work at the max of the relevant ready times.
type Streams struct {
	Compute int64
	H2D     int64
	D2H     int64
}

// RunCompute enqueues work of the given duration on the compute stream, not
// starting before ready. Returns the completion time.
func (s *Streams) RunCompute(ready, dur int64) int64 {
	start := max64(s.Compute, ready)
	s.Compute = start + dur
	return s.Compute
}

// RunH2D enqueues a host-to-device transfer.
func (s *Streams) RunH2D(ready, dur int64) int64 {
	start := max64(s.H2D, ready)
	s.H2D = start + dur
	return s.H2D
}

// RunD2H enqueues a device-to-host transfer.
func (s *Streams) RunD2H(ready, dur int64) int64 {
	start := max64(s.D2H, ready)
	s.D2H = start + dur
	return s.D2H
}

// Now returns the latest completion time across all streams.
func (s *Streams) Now() int64 {
	return max64(s.Compute, max64(s.H2D, s.D2H))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
