package gpusim

import (
	"errors"

	"dynnoffload/internal/faults"
)

// ErrTransferAborted reports an injected mid-flight transfer failure; the
// enqueued operation did not complete and must be re-issued by the caller.
var ErrTransferAborted = errors.New("gpusim: transfer aborted")

// Streams tracks the busy-until virtual time of the three hardware queues a
// policy schedules against. CUDA semantics: operations on one stream are
// ordered; operations on different streams overlap freely; dependencies are
// expressed by starting work at the max of the relevant ready times.
//
// The zero value is a valid, fault-free stream set. NewStreams with
// WithFaultStream attaches a deterministic fault stream that Try consults at
// each transfer; the Run* methods stay fault-blind (they are the final rung
// of the recovery ladder).
type Streams struct {
	Compute int64
	H2D     int64
	D2H     int64

	fs *faults.Stream
}

// StreamOption configures NewStreams.
type StreamOption func(*Streams)

// WithFaultStream attaches the fault stream consulted by Try at each
// transfer. A nil stream leaves the Streams fault-free.
func WithFaultStream(fs *faults.Stream) StreamOption {
	return func(s *Streams) { s.fs = fs }
}

// NewStreams builds a stream set from options.
func NewStreams(opts ...StreamOption) *Streams {
	s := &Streams{}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Lane names one hardware queue for the lane-generic Run/Try entry points.
type Lane int

const (
	LaneCompute Lane = iota
	LaneH2D
	LaneD2H
)

func (l Lane) String() string {
	switch l {
	case LaneH2D:
		return "h2d"
	case LaneD2H:
		return "d2h"
	}
	return "compute"
}

func (s *Streams) lane(l Lane) *int64 {
	switch l {
	case LaneH2D:
		return &s.H2D
	case LaneD2H:
		return &s.D2H
	}
	return &s.Compute
}

// Run enqueues work on a lane fault-blind: not starting before ready,
// returning the completion time. It never consults the fault stream, which
// makes it the guaranteed-to-complete final rung of the recovery ladder.
func (s *Streams) Run(l Lane, ready, dur int64) int64 {
	_, end := s.RunSpan(l, ready, dur)
	return end
}

// RunSpan is Run exposing the occupied interval: it returns both the time
// the work actually began (max of lane busy-until and ready) and the
// completion time, so callers can record [start, end) busy spans.
func (s *Streams) RunSpan(l Lane, ready, dur int64) (start, end int64) {
	b := s.lane(l)
	start = max64(*b, ready)
	*b = start + dur
	return start, *b
}

// Try enqueues a transfer on a lane, consulting the attached fault stream.
// An injected stall multiplies the duration by the configured factor; an
// injected abort occupies the lane for half the duration (the wasted
// mid-flight time) and returns ErrTransferAborted — the caller must
// re-issue. Without a fault stream Try is exactly Run.
func (s *Streams) Try(l Lane, ready, dur int64) (int64, error) {
	_, end, err := s.TrySpan(l, ready, dur)
	return end, err
}

// TrySpan is Try exposing the occupied interval (see RunSpan). On an
// injected abort the returned span covers the wasted mid-flight time.
func (s *Streams) TrySpan(l Lane, ready, dur int64) (start, end int64, err error) {
	f := s.fs.Transfer()
	if f.Abort {
		start, end = s.RunSpan(l, ready, dur/2)
		return start, end, ErrTransferAborted
	}
	start, end = s.RunSpan(l, ready, dur*f.StallFactor)
	return start, end, nil
}

// Busy returns the lane's busy-until virtual time.
func (s *Streams) Busy(l Lane) int64 { return *s.lane(l) }

// RunCompute enqueues work of the given duration on the compute stream, not
// starting before ready. Returns the completion time.
func (s *Streams) RunCompute(ready, dur int64) int64 {
	return s.Run(LaneCompute, ready, dur)
}

// RunH2D enqueues a host-to-device transfer.
func (s *Streams) RunH2D(ready, dur int64) int64 {
	return s.Run(LaneH2D, ready, dur)
}

// RunD2H enqueues a device-to-host transfer.
func (s *Streams) RunD2H(ready, dur int64) int64 {
	return s.Run(LaneD2H, ready, dur)
}

// Now returns the latest completion time across all streams.
func (s *Streams) Now() int64 {
	return max64(s.Compute, max64(s.H2D, s.D2H))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
