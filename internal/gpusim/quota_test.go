package gpusim

import (
	"errors"
	"testing"

	"dynnoffload/internal/mathx"
)

func TestReserveEnforcesQuota(t *testing.T) {
	a := NewAllocator(100)
	a.SetQuota("a", 50)
	if err := a.Reserve("a", 1, 40); err != nil {
		t.Fatal(err)
	}
	err := a.Reserve("a", 2, 20)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded, got %v", err)
	}
	// Another tenant still fits: the device has space, only "a" is capped.
	if err := a.Reserve("b", 3, 20); err != nil {
		t.Fatal(err)
	}
	// Releasing "a"'s block restores its headroom.
	a.Free(1)
	if err := a.Reserve("a", 2, 20); err != nil {
		t.Fatal(err)
	}
	if got := a.OwnerUsed("a"); got != 20 {
		t.Errorf("OwnerUsed(a) = %d, want 20", got)
	}
	if got := a.OwnerHighWater("a"); got != 40 {
		t.Errorf("OwnerHighWater(a) = %d, want 40", got)
	}
}

func TestReserveDeviceExhaustion(t *testing.T) {
	a := NewAllocator(100)
	if err := a.Reserve("a", 1, 80); err != nil {
		t.Fatal(err)
	}
	err := a.Reserve("b", 2, 40)
	if !errors.Is(err, ErrAllocNoSpace) {
		t.Fatalf("want ErrAllocNoSpace, got %v", err)
	}
}

func TestQuotaRemovedBySetQuotaZero(t *testing.T) {
	a := NewAllocator(100)
	a.SetQuota("a", 10)
	if err := a.Reserve("a", 1, 20); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded, got %v", err)
	}
	a.SetQuota("a", 0)
	if err := a.Reserve("a", 1, 20); err != nil {
		t.Fatalf("uncapped reserve failed: %v", err)
	}
	if a.Quota("a") != 0 {
		t.Errorf("Quota(a) = %d after removal", a.Quota("a"))
	}
}

// checkAccounting asserts the allocator's global invariants: usage matches
// the sum of per-owner usage, nothing is negative, free space plus usage
// partitions capacity, the high-water marks bound current usage, and capped
// owners never exceed their quota.
func checkAccounting(t *testing.T, a *Allocator, owners []string) {
	t.Helper()
	var sum int64
	for _, o := range owners {
		u := a.OwnerUsed(o)
		if u < 0 {
			t.Fatalf("owner %q usage negative: %d", o, u)
		}
		if p := a.OwnerHighWater(o); u > p {
			t.Fatalf("owner %q usage %d above its high-water %d", o, u, p)
		}
		if q := a.Quota(o); q > 0 && u > q {
			t.Fatalf("owner %q usage %d above quota %d", o, u, q)
		}
		sum += u
	}
	if got := a.UsedBytes(); got != sum {
		t.Fatalf("UsedBytes %d != sum of owner usage %d", got, sum)
	}
	if a.UsedBytes() < 0 || a.UsedBytes() > a.Capacity {
		t.Fatalf("UsedBytes %d out of [0, %d]", a.UsedBytes(), a.Capacity)
	}
	if a.UsedBytes()+a.FreeBytes() != a.Capacity {
		t.Fatalf("used %d + free %d != capacity %d", a.UsedBytes(), a.FreeBytes(), a.Capacity)
	}
	if a.UsedBytes() > a.HighWater() {
		t.Fatalf("used %d above high-water %d", a.UsedBytes(), a.HighWater())
	}
}

// TestQuotaAccountingNeverLeaks drives seeded random reserve/alloc/free
// schedules — including rejected reservations and double frees — and checks
// after every operation that the accounting neither leaks nor goes negative
// (mirroring the faults property suite).
func TestQuotaAccountingNeverLeaks(t *testing.T) {
	owners := []string{"", "a", "b", "c"}
	for trial := 0; trial < 200; trial++ {
		rng := mathx.NewRNG(0x51A11CE).Fork(uint64(trial))
		a := NewAllocator(1000)
		a.SetQuota("a", 300)
		a.SetQuota("b", 150)
		var live []int64
		var highSeen int64
		nextID := int64(1)
		for op := 0; op < 120; op++ {
			switch rng.Intn(4) {
			case 0, 1: // reserve for a random owner (may be refused)
				owner := owners[rng.Intn(len(owners))]
				size := int64(1 + rng.Intn(200))
				id := nextID
				nextID++
				if err := a.Reserve(owner, id, size); err == nil {
					live = append(live, id)
				} else if !errors.Is(err, ErrQuotaExceeded) && !errors.Is(err, ErrAllocNoSpace) {
					t.Fatalf("unexpected reserve error: %v", err)
				}
			case 2: // plain Alloc under the empty owner
				size := int64(1 + rng.Intn(100))
				id := nextID
				nextID++
				if a.Alloc(id, size) {
					live = append(live, id)
				}
			case 3: // free a live block, or a bogus id (must be a no-op)
				if len(live) > 0 && rng.Intn(4) != 0 {
					i := rng.Intn(len(live))
					a.Free(live[i])
					a.Free(live[i]) // double free: no effect
					live = append(live[:i], live[i+1:]...)
				} else {
					a.Free(-7)
				}
			}
			if u := a.UsedBytes(); u > highSeen {
				highSeen = u
			}
			checkAccounting(t, a, owners)
		}
		if a.HighWater() != highSeen {
			t.Fatalf("trial %d: high-water %d != max observed usage %d", trial, a.HighWater(), highSeen)
		}
		for _, id := range live {
			a.Free(id)
		}
		if a.UsedBytes() != 0 || a.FreeBytes() != a.Capacity {
			t.Fatalf("trial %d: leak after freeing all: used=%d free=%d", trial, a.UsedBytes(), a.FreeBytes())
		}
		checkAccounting(t, a, owners)
	}
}

func TestAllocatorResetClearsAccounting(t *testing.T) {
	a := NewAllocator(100)
	a.SetQuota("a", 60)
	if err := a.Reserve("a", 1, 50); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if a.UsedBytes() != 0 || a.HighWater() != 0 || a.OwnerUsed("a") != 0 || a.OwnerHighWater("a") != 0 {
		t.Errorf("Reset left accounting: used=%d hw=%d owner=%d ownerhw=%d",
			a.UsedBytes(), a.HighWater(), a.OwnerUsed("a"), a.OwnerHighWater("a"))
	}
	// Quotas persist across Reset.
	if a.Quota("a") != 60 {
		t.Errorf("Reset dropped quota: %d", a.Quota("a"))
	}
	if err := a.Reserve("a", 2, 70); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("quota not enforced after Reset: %v", err)
	}
}
