package gpusim

import (
	"fmt"
	"sync"
)

// MemPool is the GPU-resident tensor set with capacity accounting and LRU
// ordering. Policies use it to decide evictions; it does not move data
// itself (transfer timing belongs to the policy's stream schedule).
//
// The implementation is an arena: entries live in one slice linked into an
// intrusive doubly-linked LRU list by index, with a freelist for recycled
// slots. Reset rewinds the arena without releasing its storage, which is what
// lets the runtime reuse one pool across millions of simulated samples (see
// AcquireMemPool) instead of allocating list nodes and maps per sample.
type MemPool struct {
	Capacity int64

	used    int64
	peak    int64
	entries []poolEntry     // arena; linked by index
	free    []int32         // recycled arena slots
	head    int32           // LRU front = oldest (-1 when empty)
	tail    int32           // LRU back = newest (-1 when empty)
	index   map[int64]int32 // tensor id -> arena slot
	pinned  map[int64]bool
}

type poolEntry struct {
	id         int64
	bytes      int64
	prev, next int32
}

// NewMemPool creates a pool with the given capacity in bytes.
func NewMemPool(capacity int64) *MemPool {
	return &MemPool{
		Capacity: capacity,
		head:     -1,
		tail:     -1,
		index:    map[int64]int32{},
		pinned:   map[int64]bool{},
	}
}

// Reset rewinds the pool to empty with a new capacity, keeping the arena and
// map storage for reuse. Every observable property — residency, usage, peak,
// pins — returns to the state of a freshly constructed pool.
func (p *MemPool) Reset(capacity int64) {
	p.Capacity = capacity
	p.used = 0
	p.peak = 0
	p.entries = p.entries[:0]
	p.free = p.free[:0]
	p.head, p.tail = -1, -1
	clear(p.index)
	clear(p.pinned)
}

// Used returns resident bytes.
func (p *MemPool) Used() int64 { return p.used }

// Peak returns the high-water mark of resident bytes.
func (p *MemPool) Peak() int64 { return p.peak }

// Free returns remaining capacity.
func (p *MemPool) Free() int64 { return p.Capacity - p.used }

// Resident reports whether tensor id is on the GPU.
func (p *MemPool) Resident(id int64) bool {
	_, ok := p.index[id]
	return ok
}

// ResidentBytes returns the size recorded for a resident tensor (0 if not
// resident).
func (p *MemPool) ResidentBytes(id int64) int64 {
	if slot, ok := p.index[id]; ok {
		return p.entries[slot].bytes
	}
	return 0
}

// unlink detaches a slot from the LRU list without freeing it.
func (p *MemPool) unlink(slot int32) {
	e := &p.entries[slot]
	if e.prev >= 0 {
		p.entries[e.prev].next = e.next
	} else {
		p.head = e.next
	}
	if e.next >= 0 {
		p.entries[e.next].prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

// pushBack appends a slot at the most-recently-used end.
func (p *MemPool) pushBack(slot int32) {
	e := &p.entries[slot]
	e.prev, e.next = p.tail, -1
	if p.tail >= 0 {
		p.entries[p.tail].next = slot
	} else {
		p.head = slot
	}
	p.tail = slot
}

// Add makes tensor id resident. It returns an error if capacity would be
// exceeded — the caller must evict first.
func (p *MemPool) Add(id, bytes int64) error {
	if p.Resident(id) {
		p.Touch(id)
		return nil
	}
	if p.used+bytes > p.Capacity {
		return fmt.Errorf("gpusim: pool full: need %d, free %d", bytes, p.Free())
	}
	var slot int32
	if n := len(p.free); n > 0 {
		slot = p.free[n-1]
		p.free = p.free[:n-1]
		p.entries[slot] = poolEntry{id: id, bytes: bytes, prev: -1, next: -1}
	} else {
		slot = int32(len(p.entries))
		p.entries = append(p.entries, poolEntry{id: id, bytes: bytes, prev: -1, next: -1})
	}
	p.pushBack(slot)
	p.index[id] = slot
	p.used += bytes
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

// Remove evicts tensor id, returning its byte size (0 if absent).
func (p *MemPool) Remove(id int64) int64 {
	slot, ok := p.index[id]
	if !ok {
		return 0
	}
	bytes := p.entries[slot].bytes
	p.unlink(slot)
	p.free = append(p.free, slot)
	delete(p.index, id)
	delete(p.pinned, id)
	p.used -= bytes
	return bytes
}

// Touch marks tensor id most-recently-used.
func (p *MemPool) Touch(id int64) {
	if slot, ok := p.index[id]; ok && slot != p.tail {
		p.unlink(slot)
		p.pushBack(slot)
	}
}

// Pin prevents a tensor from being selected by Victims (e.g. tensors used by
// the currently executing operator).
func (p *MemPool) Pin(id int64)   { p.pinned[id] = true }
func (p *MemPool) Unpin(id int64) { delete(p.pinned, id) }

// UnpinAll clears all pins.
func (p *MemPool) UnpinAll() { clear(p.pinned) }

// Victims returns LRU-ordered unpinned tensors whose combined size is at
// least need bytes. It returns what it found even if insufficient; the
// caller checks coverage.
func (p *MemPool) Victims(need int64, keep func(id int64) bool) []int64 {
	var out []int64
	var got int64
	for slot := p.head; slot >= 0 && got < need; slot = p.entries[slot].next {
		ent := &p.entries[slot]
		if p.pinned[ent.id] {
			continue
		}
		if keep != nil && keep(ent.id) {
			continue
		}
		out = append(out, ent.id)
		got += ent.bytes
	}
	return out
}

// ResidentIDs returns all resident tensor IDs in LRU order.
func (p *MemPool) ResidentIDs() []int64 {
	out := make([]int64, 0, len(p.index))
	for slot := p.head; slot >= 0; slot = p.entries[slot].next {
		out = append(out, p.entries[slot].id)
	}
	return out
}

// memPools recycles MemPools across simulated samples. The arena and maps
// keep their storage between uses; Reset restores the observable zero state
// on every release, so a recycled pool is indistinguishable from a fresh one
// (pinned by the pool-hygiene tests).
var memPools = sync.Pool{New: func() any { return NewMemPool(0) }}

// AcquireMemPool returns an empty pool with the given capacity, recycled
// from the process-wide free list when available.
func AcquireMemPool(capacity int64) *MemPool {
	p := memPools.Get().(*MemPool)
	p.Reset(capacity)
	return p
}

// ReleaseMemPool resets p and returns it to the free list. The caller must
// not retain any reference to the pool or to slices obtained from it.
func ReleaseMemPool(p *MemPool) {
	if p == nil {
		return
	}
	p.Reset(0)
	memPools.Put(p)
}
