package gpusim

import (
	"container/list"
	"fmt"
)

// MemPool is the GPU-resident tensor set with capacity accounting and LRU
// ordering. Policies use it to decide evictions; it does not move data
// itself (transfer timing belongs to the policy's stream schedule).
type MemPool struct {
	Capacity int64

	used     int64
	peak     int64
	order    *list.List // LRU: front = oldest
	elements map[int64]*list.Element
	pinned   map[int64]bool
}

type poolEntry struct {
	id    int64
	bytes int64
}

// NewMemPool creates a pool with the given capacity in bytes.
func NewMemPool(capacity int64) *MemPool {
	return &MemPool{
		Capacity: capacity,
		order:    list.New(),
		elements: map[int64]*list.Element{},
		pinned:   map[int64]bool{},
	}
}

// Used returns resident bytes.
func (p *MemPool) Used() int64 { return p.used }

// Peak returns the high-water mark of resident bytes.
func (p *MemPool) Peak() int64 { return p.peak }

// Free returns remaining capacity.
func (p *MemPool) Free() int64 { return p.Capacity - p.used }

// Resident reports whether tensor id is on the GPU.
func (p *MemPool) Resident(id int64) bool {
	_, ok := p.elements[id]
	return ok
}

// ResidentBytes returns the size recorded for a resident tensor (0 if not
// resident).
func (p *MemPool) ResidentBytes(id int64) int64 {
	if e, ok := p.elements[id]; ok {
		return e.Value.(*poolEntry).bytes
	}
	return 0
}

// Add makes tensor id resident. It returns an error if capacity would be
// exceeded — the caller must evict first.
func (p *MemPool) Add(id, bytes int64) error {
	if p.Resident(id) {
		p.Touch(id)
		return nil
	}
	if p.used+bytes > p.Capacity {
		return fmt.Errorf("gpusim: pool full: need %d, free %d", bytes, p.Free())
	}
	e := p.order.PushBack(&poolEntry{id: id, bytes: bytes})
	p.elements[id] = e
	p.used += bytes
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

// Remove evicts tensor id, returning its byte size (0 if absent).
func (p *MemPool) Remove(id int64) int64 {
	e, ok := p.elements[id]
	if !ok {
		return 0
	}
	ent := e.Value.(*poolEntry)
	p.order.Remove(e)
	delete(p.elements, id)
	delete(p.pinned, id)
	p.used -= ent.bytes
	return ent.bytes
}

// Touch marks tensor id most-recently-used.
func (p *MemPool) Touch(id int64) {
	if e, ok := p.elements[id]; ok {
		p.order.MoveToBack(e)
	}
}

// Pin prevents a tensor from being selected by Victims (e.g. tensors used by
// the currently executing operator).
func (p *MemPool) Pin(id int64)   { p.pinned[id] = true }
func (p *MemPool) Unpin(id int64) { delete(p.pinned, id) }

// UnpinAll clears all pins.
func (p *MemPool) UnpinAll() { p.pinned = map[int64]bool{} }

// Victims returns LRU-ordered unpinned tensors whose combined size is at
// least need bytes. It returns what it found even if insufficient; the
// caller checks coverage.
func (p *MemPool) Victims(need int64, keep func(id int64) bool) []int64 {
	var out []int64
	var got int64
	for e := p.order.Front(); e != nil && got < need; e = e.Next() {
		ent := e.Value.(*poolEntry)
		if p.pinned[ent.id] {
			continue
		}
		if keep != nil && keep(ent.id) {
			continue
		}
		out = append(out, ent.id)
		got += ent.bytes
	}
	return out
}

// ResidentIDs returns all resident tensor IDs in LRU order.
func (p *MemPool) ResidentIDs() []int64 {
	out := make([]int64, 0, len(p.elements))
	for e := p.order.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*poolEntry).id)
	}
	return out
}
