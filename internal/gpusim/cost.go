package gpusim

import "dynnoffload/internal/graph"

// CostModel converts operator work and transfer sizes into virtual time. It
// is a roofline model: an operator costs the maximum of its compute time and
// its memory-traffic time, plus kernel-launch overhead.
type CostModel struct {
	Dev  DeviceSpec
	Link LinkSpec
}

// NewCostModel builds a cost model for a platform's GPU and link.
func NewCostModel(p Platform) CostModel {
	return CostModel{Dev: p.GPU, Link: p.Link}
}

// OpTime returns the execution time of an operator in virtual nanoseconds.
func (c CostModel) OpTime(op *graph.Op) int64 {
	return c.opTime(op.FLOPs, op.Bytes())
}

func (c CostModel) opTime(flops, bytes int64) int64 {
	ct := float64(flops) / (c.Dev.FLOPS * c.Dev.ComputeEff) * 1e9
	mt := float64(bytes) / (c.Dev.MemBW * c.Dev.BandwidthEff) * 1e9
	t := ct
	if mt > t {
		t = mt
	}
	return int64(t) + c.Dev.LaunchNS
}

// XferTime returns the time to move n bytes across the CPU–GPU link in one
// transfer.
func (c CostModel) XferTime(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(float64(n)/c.Link.BW*1e9) + c.Link.LatencyNS
}

// BatchedXferTime models migrating a set of tensors as one batched transfer
// (the paper: "tensors typically migrate in batches in order to fully utilize
// interconnect bandwidth"): a single latency charge plus aggregate bytes.
func (c CostModel) BatchedXferTime(total int64) int64 {
	return c.XferTime(total)
}

// SeqTime returns the pure compute time of an op sequence (no migration),
// the PyTorch-in-memory baseline.
func (c CostModel) SeqTime(ops []*graph.Op) int64 {
	var t int64
	for _, op := range ops {
		t += c.OpTime(op)
	}
	return t
}
