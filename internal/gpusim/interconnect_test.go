package gpusim

import "testing"

func TestLinkSerializes(t *testing.T) {
	spec := LinkSpec{BW: 1e9, LatencyNS: 100} // 1 GB/s: 1 byte == 1ns
	l := NewLink("l", spec)
	s1, e1 := l.Transfer(0, 1000)
	if s1 != 0 || e1 != 1100 {
		t.Fatalf("first transfer [%d,%d), want [0,1100)", s1, e1)
	}
	// Second transfer ready at t=0 queues behind the first.
	s2, e2 := l.Transfer(0, 1000)
	if s2 != 1100 || e2 != 2200 {
		t.Fatalf("queued transfer [%d,%d), want [1100,2200)", s2, e2)
	}
	// A transfer ready after the horizon starts at its ready time.
	s3, e3 := l.Transfer(5000, 10)
	if s3 != 5000 || e3 != 5110 {
		t.Fatalf("late transfer [%d,%d), want [5000,5110)", s3, e3)
	}
	st := l.Stats(10000)
	if st.Transfers != 3 || st.Bytes != 2010 || st.BusyNS != 2310 {
		t.Fatalf("stats %+v", st)
	}
	if st.Util <= 0.2 || st.Util >= 0.25 {
		t.Fatalf("util %v out of range", st.Util)
	}
}

func TestTransferNSMatchesRingArithmetic(t *testing.T) {
	spec := LinkSpec{BW: 12.8e9, LatencyNS: 10000}
	bytes := int64(1 << 20)
	want := int64(float64(bytes)/spec.BW*1e9) + spec.LatencyNS
	if got := spec.TransferNS(bytes); got != want {
		t.Fatalf("TransferNS = %d, want %d", got, want)
	}
	if got := spec.TransferNS(0); got != spec.LatencyNS {
		t.Fatalf("zero-byte transfer = %d, want latency %d", got, spec.LatencyNS)
	}
}

func TestInterconnectTopology(t *testing.T) {
	intra := LinkSpec{BW: 50e9, LatencyNS: 5000}
	cross := LinkSpec{BW: 12.8e9, LatencyNS: 10000}

	// 8 GPUs, 4 per node: two nodes, GPUs 3 and 7 cross node boundaries.
	ic := NewInterconnect(8, 4, intra, cross)
	if ic.Nodes() != 2 {
		t.Fatalf("nodes = %d, want 2", ic.Nodes())
	}
	for g := 0; g < 8; g++ {
		wantNode := g / 4
		if ic.Node(g) != wantNode {
			t.Errorf("gpu %d on node %d, want %d", g, ic.Node(g), wantNode)
		}
	}
	for _, g := range []int{0, 1, 2, 4, 5, 6} {
		if ic.Egress(g) == ic.HostLink(g) {
			t.Errorf("gpu %d intra-node egress should be dedicated", g)
		}
		if ic.Egress(g).Spec != intra {
			t.Errorf("gpu %d egress spec %+v, want intra", g, ic.Egress(g).Spec)
		}
	}
	for _, g := range []int{3, 7} {
		if ic.Egress(g) != ic.HostLink(g) {
			t.Errorf("gpu %d cross-node egress should share the node host link", g)
		}
	}
	// 2 host links + 6 dedicated egress links.
	if got := len(ic.Links()); got != 8 {
		t.Fatalf("links = %d, want 8", got)
	}

	// Single node: every egress is dedicated; one host link.
	one := NewInterconnect(4, 0, intra, cross)
	if one.Nodes() != 1 {
		t.Fatalf("single-node count = %d", one.Nodes())
	}
	for g := 0; g < 4; g++ {
		if one.Egress(g) == one.HostLink(g) {
			t.Errorf("gpu %d egress should be dedicated on one node", g)
		}
	}
}

func TestInterconnectCrossNodeContention(t *testing.T) {
	intra := LinkSpec{BW: 50e9, LatencyNS: 5000}
	cross := LinkSpec{BW: 1e9, LatencyNS: 100}
	ic := NewInterconnect(2, 1, intra, cross) // two nodes, all hops cross PCIe
	// Offload traffic occupies node 0's host link first...
	_, e := ic.HostLink(0).Transfer(0, 1000)
	if e != 1100 {
		t.Fatalf("offload end %d", e)
	}
	// ...so GPU 0's ring send queues behind it on the same wire.
	s, _ := ic.Send(0, 0, 500)
	if s != 1100 {
		t.Fatalf("ring send start %d, want 1100 (behind offload)", s)
	}
	// GPU 1's send uses node 1's link: uncontended.
	s, _ = ic.Send(1, 0, 500)
	if s != 0 {
		t.Fatalf("node-1 send start %d, want 0", s)
	}
}
