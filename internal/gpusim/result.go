package gpusim

import "fmt"

// Breakdown decomposes a simulated training run's time the way Fig 8 does:
// computation, exposed (stalling) migration, rematerialization, fault
// handling, and policy overhead. Overlapped migration is tracked for
// reporting but does not add to total time.
type Breakdown struct {
	ComputeNS     int64
	ExposedXferNS int64
	OverlapXferNS int64
	RematNS       int64
	FaultNS       int64
	OverheadNS    int64

	H2DBytes int64
	D2HBytes int64
	Faults   int

	PeakGPUBytes int64
}

// TotalNS is the wall-clock (virtual) duration.
func (b Breakdown) TotalNS() int64 {
	//dynnlint:ignore clockunits TotalNS is the documented sim+wall total; callers on the virtual clock must subtract OverheadNS
	return b.ComputeNS + b.ExposedXferNS + b.RematNS + b.FaultNS + b.OverheadNS
}

// DeviceNS is the simulated device-clock duration: the total minus host-side
// policy overhead. This is the portion of a sample's cost that advances the
// virtual clock in the serving and cluster runtimes, and the base the SLO
// attribution decomposes (compute + exposed + remat + fault).
func (b Breakdown) DeviceNS() int64 {
	return b.ComputeNS + b.ExposedXferNS + b.RematNS + b.FaultNS
}

// TransferNS is the total migration time, hidden and exposed.
func (b Breakdown) TransferNS() int64 {
	return b.OverlapXferNS + b.ExposedXferNS
}

// OverlapEfficiency is the fraction of migration time hidden under compute
// (0 when nothing migrated). This is the batch-level accounting view; the
// span-level obsv.Timeline measures the same quantity from busy intervals.
func (b Breakdown) OverlapEfficiency() float64 {
	t := b.TransferNS()
	if t == 0 {
		return 0
	}
	return float64(b.OverlapXferNS) / float64(t)
}

// Add accumulates another breakdown (e.g. per-iteration into per-epoch).
func (b Breakdown) Add(o Breakdown) Breakdown {
	b.ComputeNS += o.ComputeNS
	b.ExposedXferNS += o.ExposedXferNS
	b.OverlapXferNS += o.OverlapXferNS
	b.RematNS += o.RematNS
	b.FaultNS += o.FaultNS
	b.OverheadNS += o.OverheadNS
	b.H2DBytes += o.H2DBytes
	b.D2HBytes += o.D2HBytes
	b.Faults += o.Faults
	if o.PeakGPUBytes > b.PeakGPUBytes {
		b.PeakGPUBytes = o.PeakGPUBytes
	}
	return b
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.3fms compute=%.3fms exposed-xfer=%.3fms remat=%.3fms fault=%.3fms overhead=%.3fms (overlapped=%.3fms, h2d=%dMB, d2h=%dMB, faults=%d, peak=%dMB)",
		ms(b.TotalNS()), ms(b.ComputeNS), ms(b.ExposedXferNS), ms(b.RematNS), ms(b.FaultNS), ms(b.OverheadNS),
		ms(b.OverlapXferNS), b.H2DBytes/mib, b.D2HBytes/mib, b.Faults, b.PeakGPUBytes/mib)
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }
