package gpusim

import (
	"errors"
	"testing"

	"dynnoffload/internal/faults"
)

func TestRunSpanInterval(t *testing.T) {
	s := NewStreams()
	start, end := s.RunSpan(LaneCompute, 0, 100)
	if start != 0 || end != 100 {
		t.Errorf("first span = [%d,%d)", start, end)
	}
	// The lane is busy until 100, so ready=50 starts late.
	start, end = s.RunSpan(LaneCompute, 50, 30)
	if start != 100 || end != 130 {
		t.Errorf("queued span = [%d,%d), want [100,130)", start, end)
	}
	// A ready time past busy-until opens an idle gap.
	start, end = s.RunSpan(LaneCompute, 500, 10)
	if start != 500 || end != 510 {
		t.Errorf("gapped span = [%d,%d), want [500,510)", start, end)
	}
	if s.Busy(LaneCompute) != 510 {
		t.Errorf("Busy = %d", s.Busy(LaneCompute))
	}
	// Lanes are independent queues.
	if s.Busy(LaneH2D) != 0 || s.Busy(LaneD2H) != 0 {
		t.Error("RunSpan leaked into other lanes")
	}
	if got := s.Run(LaneH2D, 0, 40); got != 40 {
		t.Errorf("Run end = %d", got)
	}
}

func TestTrySpanFaultFree(t *testing.T) {
	// Without a fault stream TrySpan must be exactly RunSpan.
	a, b := NewStreams(), NewStreams()
	s1, e1, err := a.TrySpan(LaneH2D, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	s2, e2 := b.RunSpan(LaneH2D, 10, 100)
	if s1 != s2 || e1 != e2 {
		t.Errorf("TrySpan [%d,%d) != RunSpan [%d,%d)", s1, e1, s2, e2)
	}
}

// At rate 1 every transfer faults; the flavor (stall or abort) is drawn per
// site, so the tests scan stream scopes until each flavor appears.
func TestTrySpanFaultIntervals(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 7, Rate: 1})
	var sawAbort, sawStall bool
	for scope := uint64(0); scope < 64 && !(sawAbort && sawStall); scope++ {
		s := NewStreams(WithFaultStream(inj.Stream(scope)))
		start, end, err := s.TrySpan(LaneH2D, 0, 100)
		if errors.Is(err, ErrTransferAborted) {
			// The abort occupies the wasted mid-flight half of the transfer.
			if start != 0 || end != 50 {
				t.Fatalf("aborted span = [%d,%d), want [0,50)", start, end)
			}
			if s.Busy(LaneH2D) != 50 {
				t.Fatalf("lane busy-until = %d after abort", s.Busy(LaneH2D))
			}
			sawAbort = true
		} else if err != nil {
			t.Fatal(err)
		} else {
			// A stall stretches the span by the configured factor (default 4).
			if start != 0 || end != 400 {
				t.Fatalf("stalled span = [%d,%d), want [0,400)", start, end)
			}
			sawStall = true
		}
	}
	if !sawAbort || !sawStall {
		t.Fatalf("64 scopes at rate 1: abort=%v stall=%v — both flavors expected", sawAbort, sawStall)
	}
}
