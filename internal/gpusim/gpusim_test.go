package gpusim

import (
	"testing"
	"testing/quick"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
)

func TestPlatformPresets(t *testing.T) {
	rtx := RTXPlatform()
	if rtx.GPU.MemBytes != GiB(23) || rtx.CPUMemBytes != GiB(186) {
		t.Errorf("RTX platform sizes wrong: %+v", rtx)
	}
	a100 := A100Platform()
	if a100.GPU.MemBytes != GiB(80) || a100.NumGPUs != 4 || a100.CPUMemBytes != GiB(500) {
		t.Errorf("A100 platform wrong: %+v", a100)
	}
	capped := a100.WithMemory(GiB(10))
	if capped.GPU.MemBytes != GiB(10) {
		t.Error("WithMemory did not cap")
	}
	if a100.GPU.MemBytes != GiB(80) {
		t.Error("WithMemory mutated the original")
	}
}

func TestCostModelRoofline(t *testing.T) {
	cm := NewCostModel(A100Platform())
	var reg tensor.Registry
	small := reg.New("s", tensor.Activation, tensor.F32, 16)
	big := reg.New("b", tensor.Activation, tensor.F32, 1<<20)

	// Compute-bound op: huge FLOPs, small tensors.
	opC := graph.NewOp("matmul", 1e12, []*tensor.Meta{small}, []*tensor.Meta{small})
	// Memory-bound op: tiny FLOPs, big tensors.
	opM := graph.NewOp("copy", 10, []*tensor.Meta{big}, []*tensor.Meta{big})

	tc := cm.OpTime(opC)
	wantC := int64(1e12/(cm.Dev.FLOPS*cm.Dev.ComputeEff)*1e9) + cm.Dev.LaunchNS
	if absDiff(tc, wantC) > wantC/100 {
		t.Errorf("compute-bound time %d, want ~%d", tc, wantC)
	}
	tm := cm.OpTime(opM)
	wantM := int64(float64(big.Bytes())/(cm.Dev.MemBW*cm.Dev.BandwidthEff)*1e9) + cm.Dev.LaunchNS
	if absDiff(tm, wantM) > wantM/100 {
		t.Errorf("memory-bound time %d, want ~%d", tm, wantM)
	}
}

func TestXferTime(t *testing.T) {
	cm := NewCostModel(A100Platform())
	if cm.XferTime(0) != 0 {
		t.Error("zero bytes must be free")
	}
	one := cm.XferTime(1 << 20)
	two := cm.XferTime(2 << 20)
	if two <= one {
		t.Error("transfer time must grow with size")
	}
	// Latency dominates tiny transfers.
	if cm.XferTime(1) < cm.Link.LatencyNS {
		t.Error("latency floor missing")
	}
}

func TestStreamsOverlap(t *testing.T) {
	var s Streams
	end1 := s.RunCompute(0, 100)
	end2 := s.RunH2D(0, 80)
	if end1 != 100 || end2 != 80 {
		t.Errorf("independent streams must overlap: %d %d", end1, end2)
	}
	// Same-stream work serializes.
	end3 := s.RunCompute(0, 50)
	if end3 != 150 {
		t.Errorf("same-stream must serialize: %d", end3)
	}
	// Dependency via ready time.
	end4 := s.RunCompute(end2+1000, 10)
	if end4 != end2+1010 {
		t.Errorf("ready time not honored: %d", end4)
	}
	if s.Now() != end4 {
		t.Errorf("Now = %d, want %d", s.Now(), end4)
	}
}

func TestMemPoolBasics(t *testing.T) {
	p := NewMemPool(100)
	if err := p.Add(1, 60); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(2, 50); err == nil {
		t.Fatal("over-capacity add must fail")
	}
	if err := p.Add(3, 40); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 100 || p.Free() != 0 || p.Peak() != 100 {
		t.Errorf("used=%d free=%d peak=%d", p.Used(), p.Free(), p.Peak())
	}
	if got := p.Remove(1); got != 60 {
		t.Errorf("Remove returned %d", got)
	}
	if p.Resident(1) {
		t.Error("1 still resident after Remove")
	}
	if p.Peak() != 100 {
		t.Error("peak must persist")
	}
	// Re-adding an existing ID is a touch, not a double count.
	p.Add(3, 40)
	if p.Used() != 40 {
		t.Errorf("double-add double-counted: %d", p.Used())
	}
}

func TestMemPoolVictims(t *testing.T) {
	p := NewMemPool(100)
	p.Add(1, 30)
	p.Add(2, 30)
	p.Add(3, 30)
	p.Touch(1) // 1 becomes MRU; LRU order: 2, 3, 1
	v := p.Victims(50, nil)
	if len(v) != 2 || v[0] != 2 || v[1] != 3 {
		t.Errorf("victims = %v, want [2 3]", v)
	}
	p.Pin(2)
	v = p.Victims(50, nil)
	if len(v) != 2 || v[0] != 3 || v[1] != 1 {
		t.Errorf("pinned victim selected: %v", v)
	}
	v = p.Victims(10, func(id int64) bool { return id == 3 })
	if len(v) != 1 || v[0] != 1 {
		t.Errorf("keep filter ignored: %v", v)
	}
}

func TestMemPoolInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		p := NewMemPool(1000)
		for _, op := range ops {
			id := int64(op % 16)
			if op%3 == 0 {
				p.Remove(id)
			} else {
				_ = p.Add(id, int64(op%7)*10)
			}
			if p.Used() < 0 || p.Used() > p.Capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageTable(t *testing.T) {
	pt := NewPageTable(10 * UVMPageSize)
	pt.Register(1, 4*UVMPageSize)
	pt.Register(2, 8*UVMPageSize)

	faulted, evicted := pt.Access(1)
	if faulted != 4 || evicted != 0 {
		t.Errorf("first access: faulted=%d evicted=%d", faulted, evicted)
	}
	// Second access is a hit.
	faulted, _ = pt.Access(1)
	if faulted != 0 {
		t.Errorf("hit faulted %d pages", faulted)
	}
	// Tensor 2 needs 8 pages; only 6 free -> evict tensor 1.
	faulted, evicted = pt.Access(2)
	if faulted != 8 || evicted != 4 {
		t.Errorf("pressure access: faulted=%d evicted=%d", faulted, evicted)
	}
	if pt.MissingPages(1) != 4 {
		t.Error("tensor 1 must be evicted")
	}
}

func TestPageTableAllocate(t *testing.T) {
	pt := NewPageTable(4 * UVMPageSize)
	pt.Register(1, 2*UVMPageSize)
	if ev := pt.Allocate(1); ev != 0 {
		t.Errorf("fresh allocate evicted %d", ev)
	}
	if pt.MissingPages(1) != 0 {
		t.Error("allocate must make pages resident")
	}
	if pt.Used() != 2*UVMPageSize {
		t.Errorf("used = %d", pt.Used())
	}
}

func TestPageTableExplicitEvict(t *testing.T) {
	pt := NewPageTable(10 * UVMPageSize)
	pt.Register(1, 3*UVMPageSize)
	pt.Access(1)
	if n := pt.Evict(1); n != 3 {
		t.Errorf("Evict returned %d", n)
	}
	if pt.Used() != 0 {
		t.Error("pages leaked after evict")
	}
	if pt.Evict(1) != 0 {
		t.Error("double evict must be a no-op")
	}
}

func TestPagesOf(t *testing.T) {
	if PagesOf(0) != 0 || PagesOf(1) != 1 || PagesOf(UVMPageSize) != 1 || PagesOf(UVMPageSize+1) != 2 {
		t.Error("PagesOf rounding wrong")
	}
}

func TestBreakdown(t *testing.T) {
	a := Breakdown{ComputeNS: 100, ExposedXferNS: 50, PeakGPUBytes: 10}
	b := Breakdown{ComputeNS: 10, RematNS: 5, PeakGPUBytes: 20}
	c := a.Add(b)
	if c.ComputeNS != 110 || c.RematNS != 5 || c.PeakGPUBytes != 20 {
		t.Errorf("Add wrong: %+v", c)
	}
	if c.TotalNS() != 110+50+5 {
		t.Errorf("TotalNS = %d", c.TotalNS())
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestAllocatorFirstFitAndCoalesce(t *testing.T) {
	a := NewAllocator(100)
	if !a.Alloc(1, 40) || !a.Alloc(2, 30) || !a.Alloc(3, 30) {
		t.Fatal("allocations must fit")
	}
	if a.Alloc(4, 1) {
		t.Fatal("full allocator accepted an allocation")
	}
	// Free the middle block: free space 30, largest extent 30.
	a.Free(2)
	if a.FreeBytes() != 30 || a.LargestExtent() != 30 {
		t.Errorf("free=%d largest=%d", a.FreeBytes(), a.LargestExtent())
	}
	// Free an adjacent block: extents coalesce.
	a.Free(1)
	if a.LargestExtent() != 70 {
		t.Errorf("coalesce failed: largest=%d", a.LargestExtent())
	}
	if a.Fragmentation() != 0 {
		t.Errorf("fragmentation = %v after coalesce", a.Fragmentation())
	}
}

// TestEvictThenPrefetchAvoidsFragmentation demonstrates the §IV-E design
// point: interleaving evictions with prefetches fragments the migration
// buffer so a large tensor fails to fit, while evict-first coalesces space.
func TestEvictThenPrefetchAvoidsFragmentation(t *testing.T) {
	setup := func() *Allocator {
		a := NewAllocator(100)
		for i := int64(0); i < 10; i++ {
			a.Alloc(i, 10) // buffer full of 10-byte tensors
		}
		return a
	}

	// Evictions complete in migration order, not address order; interleaving
	// each eviction with a prefetch drops 7-byte tensors into 10-byte holes,
	// scattering 3-byte fragments through the buffer.
	inter := setup()
	order := []int64{0, 3, 6, 9, 2, 5, 8, 1, 4, 7}
	for i, id := range order {
		inter.Free(id)
		if i < 7 {
			inter.Alloc(100+int64(i), 7)
		}
	}
	if inter.Alloc(999, 40) {
		t.Fatalf("interleaved eviction should have fragmented the buffer (largest=%d free=%d)",
			inter.LargestExtent(), inter.FreeBytes())
	}
	if inter.Fragmentation() == 0 {
		t.Error("expected fragmentation")
	}

	// Evict-then-prefetch: the whole retired buffer coalesces first, so the
	// same allocations leave one large extent.
	seq := setup()
	for _, id := range order {
		seq.Free(id)
	}
	for i := 0; i < 7; i++ {
		seq.Alloc(100+int64(i), 7)
	}
	if !seq.Alloc(999, 40) {
		t.Fatalf("evict-then-prefetch should leave a 40-byte extent (largest=%d free=%d)",
			seq.LargestExtent(), seq.FreeBytes())
	}
}
