package gpusim

import (
	"fmt"
	"testing"
)

// poisonPool scribbles a recognizable poison pattern over every piece of
// MemPool state — arena entries, freelist, LRU endpoints, index and pin maps,
// accounting — simulating the worst dirty state a recycled pool could carry.
// Reset must erase all of it; any observable difference from a fresh pool
// afterwards is cross-sample state leakage.
func poisonPool(p *MemPool) {
	const poison = int64(-0x5A5A5A5A5A5A5A5A)
	p.used, p.peak = poison, poison
	p.head, p.tail = 0x5A5A, -0x5A5A
	p.entries = p.entries[:0]
	for i := 0; i < 64; i++ {
		p.entries = append(p.entries, poolEntry{
			id: poison + int64(i), bytes: poison, prev: 0x5A5A, next: 0x5A5A,
		})
	}
	p.free = p.free[:0]
	for i := int32(0); i < 32; i++ {
		p.free = append(p.free, 0x5A00+i)
	}
	for i := int64(0); i < 48; i++ {
		p.index[poison+i] = int32(i)
		p.pinned[i] = true
	}
}

// poolObservables renders every externally visible property of the pool for
// a fixed id universe, so the differential driver can compare whole states.
func poolObservables(p *MemPool, ids []int64) string {
	s := fmt.Sprintf("cap=%d used=%d peak=%d free=%d resident=%v victims-all=%v victims-odd=%v",
		p.Capacity, p.Used(), p.Peak(), p.Free(), p.ResidentIDs(),
		p.Victims(p.Capacity, nil),
		p.Victims(p.Capacity, func(id int64) bool { return id%2 == 1 }))
	for _, id := range ids {
		s += fmt.Sprintf(" %d:%v/%d", id, p.Resident(id), p.ResidentBytes(id))
	}
	return s
}

// TestMemPoolResetHygiene is the pool-recycling poison test: a pool whose
// internals were fully poisoned and then Reset must be behaviorally
// indistinguishable from a freshly constructed pool across a long
// deterministic mixed op sequence — same accounting, same residency, same
// LRU/victim order, same Add errors, op for op.
func TestMemPoolResetHygiene(t *testing.T) {
	const capacity = 1 << 12
	ids := []int64{1, 2, 3, 4, 5, 6, 7, 8}

	recycled := NewMemPool(0)
	poisonPool(recycled)
	recycled.Reset(capacity)
	fresh := NewMemPool(capacity)

	if got, want := poolObservables(recycled, ids), poolObservables(fresh, ids); got != want {
		t.Fatalf("poisoned pool differs from fresh immediately after Reset:\n got %s\nwant %s", got, want)
	}

	rng := uint64(0x9E3779B97F4A7C15) // SplitMix64-style deterministic driver
	next := func(n uint64) uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return (z ^ (z >> 31)) % n
	}
	for step := 0; step < 4000; step++ {
		id := ids[next(uint64(len(ids)))]
		bytes := int64(next(1<<10) + 1)
		var gotErr, wantErr error
		switch next(6) {
		case 0, 1:
			gotErr, wantErr = recycled.Add(id, bytes), fresh.Add(id, bytes)
		case 2:
			recycled.Remove(id)
			fresh.Remove(id)
		case 3:
			recycled.Touch(id)
			fresh.Touch(id)
		case 4:
			recycled.Pin(id)
			fresh.Pin(id)
		case 5:
			if next(4) == 0 {
				recycled.UnpinAll()
				fresh.UnpinAll()
			} else {
				recycled.Unpin(id)
				fresh.Unpin(id)
			}
		}
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("step %d: Add error diverges: recycled=%v fresh=%v", step, gotErr, wantErr)
		}
		if got, want := poolObservables(recycled, ids), poolObservables(fresh, ids); got != want {
			t.Fatalf("step %d: recycled pool diverged from fresh:\n got %s\nwant %s", step, got, want)
		}
	}
}

// TestMemPoolAcquireReleaseClean pins the sync.Pool funnel the simulator hot
// path uses: whatever AcquireMemPool hands out after arbitrary prior use —
// residents, pins, peak pressure — presents the zero state, and ids pinned in
// a previous life are victimizable again.
func TestMemPoolAcquireReleaseClean(t *testing.T) {
	p := AcquireMemPool(1 << 20)
	for i := int64(1); i <= 16; i++ {
		if err := p.Add(i, 1<<12); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		p.Pin(i)
	}
	ReleaseMemPool(p)

	q := AcquireMemPool(1 << 10)
	if q.Used() != 0 || q.Peak() != 0 || q.Free() != 1<<10 || len(q.ResidentIDs()) != 0 {
		t.Fatalf("recycled pool not clean: used=%d peak=%d free=%d resident=%v",
			q.Used(), q.Peak(), q.Free(), q.ResidentIDs())
	}
	if q.Resident(1) || q.ResidentBytes(1) != 0 {
		t.Fatal("tensor from a previous life still resident")
	}
	if err := q.Add(1, 512); err != nil {
		t.Fatalf("Add on recycled pool: %v", err)
	}
	if v := q.Victims(512, nil); len(v) != 1 || v[0] != 1 {
		t.Fatalf("id pinned in a previous life is not victimizable: victims=%v", v)
	}
	if err := q.Add(2, 1024); err == nil {
		t.Fatal("capacity from a previous life leaked: oversized Add accepted")
	}
	ReleaseMemPool(q)
	ReleaseMemPool(nil) // must be a no-op
}
