package gpusim

import "container/list"

// UVMPageSize is the managed-memory migration granularity (2 MiB, the large
// page size the CUDA UVM driver migrates at under heavy access).
const UVMPageSize = 2 * mib

// PageTable models CUDA unified virtual memory at page granularity: each
// tensor owns ceil(bytes/page) pages; access to a non-resident page faults
// and migrates the page (plus fault latency); eviction is page-LRU. The
// page granularity is what amplifies UVM's communication volume relative to
// tensor-granularity migration (§VI-C observation 1).
type PageTable struct {
	Capacity int64 // GPU bytes available for pages

	resident map[int64]int // tensorID -> resident page count
	pages    map[int64]int // tensorID -> total page count
	used     int64
	peak     int64
	order    *list.List // tensor-level LRU over resident tensors
	elements map[int64]*list.Element
}

// NewPageTable creates a UVM page table with the given GPU capacity.
func NewPageTable(capacity int64) *PageTable {
	return &PageTable{
		Capacity: capacity,
		resident: map[int64]int{},
		pages:    map[int64]int{},
		order:    list.New(),
		elements: map[int64]*list.Element{},
	}
}

// PagesOf returns the page count for a tensor of the given size.
func PagesOf(bytes int64) int {
	if bytes <= 0 {
		return 0
	}
	return int((bytes + UVMPageSize - 1) / UVMPageSize)
}

// Used returns resident bytes (page-rounded).
func (pt *PageTable) Used() int64 { return pt.used }

// Peak returns the high-water mark.
func (pt *PageTable) Peak() int64 { return pt.peak }

// Register records a tensor's size; idempotent.
func (pt *PageTable) Register(id, bytes int64) {
	if _, ok := pt.pages[id]; !ok {
		pt.pages[id] = PagesOf(bytes)
	}
}

// MissingPages returns how many of the tensor's pages are absent.
func (pt *PageTable) MissingPages(id int64) int {
	return pt.pages[id] - pt.resident[id]
}

// Access faults in all missing pages of the tensor, evicting page-LRU as
// needed. It returns (faulted pages, evicted pages). The caller converts
// these to time and traffic.
func (pt *PageTable) Access(id int64) (faulted, evicted int) {
	return pt.ensure(id)
}

// Allocate makes the tensor's pages resident without migration — first-touch
// allocation of freshly produced data happens on the device, so only the
// evictions it forces cost anything. Returns the evicted page count.
func (pt *PageTable) Allocate(id int64) (evicted int) {
	_, evicted = pt.ensure(id)
	return evicted
}

func (pt *PageTable) ensure(id int64) (missing, evicted int) {
	need := pt.MissingPages(id)
	if need == 0 {
		pt.touch(id)
		return 0, 0
	}
	needBytes := int64(need) * UVMPageSize
	for pt.used+needBytes > pt.Capacity {
		ev := pt.evictOne(id)
		if ev == 0 {
			break // nothing else to evict; over-subscription caller guards this
		}
		evicted += ev
	}
	pt.resident[id] = pt.pages[id]
	pt.used += needBytes
	if pt.used > pt.peak {
		pt.peak = pt.used
	}
	pt.touch(id)
	return need, evicted
}

// evictOne drops all pages of the least-recently-used tensor other than keep.
func (pt *PageTable) evictOne(keep int64) int {
	for e := pt.order.Front(); e != nil; e = e.Next() {
		id := e.Value.(int64)
		if id == keep {
			continue
		}
		n := pt.resident[id]
		if n == 0 {
			continue
		}
		pt.resident[id] = 0
		pt.used -= int64(n) * UVMPageSize
		pt.order.Remove(e)
		delete(pt.elements, id)
		return n
	}
	return 0
}

func (pt *PageTable) touch(id int64) {
	if e, ok := pt.elements[id]; ok {
		pt.order.MoveToBack(e)
		return
	}
	pt.elements[id] = pt.order.PushBack(id)
}

// Evict explicitly drops a tensor's pages (e.g. freed activations),
// returning the number of pages dropped without generating writeback (the
// caller decides whether the data was dirty).
func (pt *PageTable) Evict(id int64) int {
	n := pt.resident[id]
	if n == 0 {
		return 0
	}
	pt.resident[id] = 0
	pt.used -= int64(n) * UVMPageSize
	if e, ok := pt.elements[id]; ok {
		pt.order.Remove(e)
		delete(pt.elements, id)
	}
	return n
}
