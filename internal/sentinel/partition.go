package sentinel

// This file holds the Sentinel partition algorithm (§IV-D) plus the three
// heuristic partitioners of Fig 12 (even operators, even time, even bytes)
// and the shared pipeline time estimator the algorithms optimize against.

// PipelineEstimate models the double-buffered execution of a partition
// (§IV-E): block i's compute starts once its prefetch completed; at the start
// of block i the migration engine retires block i-1's buffer (evict first,
// then prefetch block i+1, serialized to avoid fragmentation). It returns the
// estimated total time and the exposed (stalling) migration time.
func (a *Analysis) PipelineEstimate(blocks []Block) (totalNS, exposedNS int64) {
	if len(blocks) == 0 {
		return 0, 0
	}
	none := Block{}
	var mig int64 // migration engine busy-until
	var cmp int64 // compute busy-until

	// Initial prefetch of block 0.
	mig = a.CM.BatchedXferTime(a.FetchBytes(blocks[0], none))
	for i := range blocks {
		start := mig
		if cmp > start {
			start = cmp
		}
		if start > cmp {
			exposedNS += start - cmp
		}
		// Kick the migration for block i+1 at the start of block i.
		if i+1 < len(blocks) {
			var evict int64
			if i > 0 {
				evict = a.EvictBytes(blocks[i-1], blocks[i+1].Start)
			}
			fetch := a.FetchBytes(blocks[i+1], blocks[i])
			dur := a.CM.BatchedXferTime(evict) + a.CM.BatchedXferTime(fetch)
			ms := mig
			if start > ms {
				ms = start
			}
			mig = ms + dur
		}
		cmp = start + a.ComputeNS(blocks[i])
	}
	if mig > cmp { // trailing write-back exposed at iteration end
		exposedNS += mig - cmp
		cmp = mig
	}
	return cmp, exposedNS
}

// Partition computes the Sentinel execution-block partition for the given
// double-buffer budget (bytes available to one buffer): a capacity-greedy
// segmentation plus capacity-feasible even splits as seeds, each refined by
// boundary local search minimizing the pipeline estimate, taking the best.
// It returns nil if some single operator's working set exceeds the budget
// (the model cannot run under this budget at all).
func (a *Analysis) Partition(budget int64) []Block {
	n := a.NumOps()
	if n == 0 {
		return nil
	}
	// Greedy capacity segmentation.
	var greedy []Block
	start := 0
	for start < n {
		end := start + 1
		if a.WorkingBytes(Block{start, end}) > budget {
			return nil // single op exceeds the buffer: infeasible
		}
		for end < n && a.WorkingBytes(Block{start, end + 1}) <= budget {
			end++
		}
		greedy = append(greedy, Block{start, end})
		start = end
	}
	if len(greedy) == 1 {
		return greedy // fits entirely; no pipelining needed
	}

	fits := func(blocks []Block) bool {
		for _, b := range blocks {
			if a.WorkingBytes(b) > budget {
				return false
			}
		}
		return true
	}
	candidates := [][]Block{greedy}
	k := len(greedy)
	for _, seed := range [][]Block{a.EvenOps(k), a.EvenTime(k), a.EvenBytes(k), a.EvenOps(k + 1), a.EvenTime(k + 1)} {
		if Validate(seed, n) == nil && fits(seed) {
			candidates = append(candidates, seed)
		}
	}
	var best []Block
	var bestNS int64 = -1
	for _, cand := range candidates {
		a.refine(cand, budget)
		if t, _ := a.PipelineEstimate(cand); bestNS < 0 || t < bestNS {
			bestNS = t
			best = cand
		}
	}
	return best
}

// refine shifts block boundaries to minimize the pipeline estimate — the
// adaptive sizing that beats the even-split heuristics (Fig 12: "DyNN-Offload
// can adaptively change the partition size to hide tensor migration").
func (a *Analysis) refine(blocks []Block, budget int64) {
	best, _ := a.PipelineEstimate(blocks)
	for pass := 0; pass < 4; pass++ {
		improved := false
		for i := 0; i+1 < len(blocks); i++ {
			for _, delta := range []int{-8, -4, -2, -1, 1, 2, 4, 8} {
				nb := blocks[i].End + delta
				if nb <= blocks[i].Start || nb >= blocks[i+1].End {
					continue
				}
				l, r := Block{blocks[i].Start, nb}, Block{nb, blocks[i+1].End}
				if a.WorkingBytes(l) > budget || a.WorkingBytes(r) > budget {
					continue
				}
				old := blocks[i].End
				blocks[i].End, blocks[i+1].Start = nb, nb
				if t, _ := a.PipelineEstimate(blocks); t < best {
					best = t
					improved = true
				} else {
					blocks[i].End, blocks[i+1].Start = old, old
				}
			}
		}
		if !improved {
			break
		}
	}
}

// EvenOps splits the iteration into n blocks with equal operator counts
// (Fig 12 heuristic 1).
func (a *Analysis) EvenOps(n int) []Block {
	return evenSplit(a.NumOps(), n, func(i int) int64 { return 1 })
}

// EvenTime splits into n blocks with (approximately) equal compute time
// (Fig 12 heuristic 2).
func (a *Analysis) EvenTime(n int) []Block {
	return evenSplit(a.NumOps(), n, func(i int) int64 { return a.Trace.Records[i].TimeNS })
}

// EvenBytes splits into n blocks with (approximately) equal tensor traffic
// (Fig 12 heuristic 3).
func (a *Analysis) EvenBytes(n int) []Block {
	return evenSplit(a.NumOps(), n, func(i int) int64 { return a.Trace.Records[i].Bytes })
}

// evenSplit partitions [0, numOps) into n contiguous blocks with roughly
// equal total weight.
func evenSplit(numOps, n int, weight func(i int) int64) []Block {
	if n <= 0 || numOps == 0 {
		return nil
	}
	if n > numOps {
		n = numOps
	}
	var total int64
	for i := 0; i < numOps; i++ {
		total += weight(i)
	}
	target := total / int64(n)
	blocks := make([]Block, 0, n)
	start := 0
	var acc int64
	for i := 0; i < numOps; i++ {
		acc += weight(i)
		remainingBlocks := n - len(blocks)
		remainingOps := numOps - i - 1
		if (acc >= target && remainingBlocks > 1) || remainingOps < remainingBlocks-1 {
			blocks = append(blocks, Block{start, i + 1})
			start = i + 1
			acc = 0
			if len(blocks) == n-1 {
				break
			}
		}
	}
	if start < numOps {
		blocks = append(blocks, Block{start, numOps})
	}
	return blocks
}
