package sentinel

import (
	"testing"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
	"dynnoffload/internal/trace"
)

// fuzzChain builds a linear chain whose per-op activation and weight sizes
// come from the fuzz input (low/high nibble of each byte), so working sets
// vary op to op and block boundaries actually matter.
func fuzzChain(sizes []byte) *Analysis {
	var reg tensor.Registry
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	var states []*graph.WeightState
	prev := reg.New("in", tensor.Input, tensor.F32, 256)
	var ops []*graph.Op
	for i, b := range sizes {
		actElems := 64 * (int(b&0x0f) + 1)
		wElems := 64 * (int(b>>4) + 1)
		w := reg.New("w", tensor.Weight, tensor.F32, wElems)
		states = append(states, graph.NewWeightState(&reg, w, i%2 == 0))
		out := reg.New("a", tensor.Activation, tensor.F32, actElems)
		ops = append(ops, graph.NewOp("matmul", int64(2*actElems*wElems),
			[]*tensor.Meta{prev, w}, []*tensor.Meta{out}))
		prev = out
	}
	r := &graph.Resolved{ModelName: "fuzz-chain", Ops: ops}
	it := graph.ExpandTraining(&reg, r, states, true)
	return NewAnalysis(trace.FromIteration("fuzz-chain", it, cm), cm)
}

// FuzzPartition drives the Sentinel partitioner with fuzzed op-size chains
// and budgets spanning infeasible through fits-entirely. The contract: no
// panics; a nil partition only when some single operator exceeds the budget;
// a non-nil partition covers [0, NumOps) contiguously exactly once
// (Validate), every block's working set fits the budget, and the pipeline
// estimator accepts it.
func FuzzPartition(f *testing.F) {
	f.Add([]byte{0x11, 0x22, 0x33, 0x44, 0x55}, uint64(1<<22))
	f.Add([]byte{0xff, 0x01, 0xf0, 0x0f}, uint64(1<<16))
	f.Add([]byte{0x88}, uint64(0))
	f.Add([]byte{0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10}, uint64(1<<30))
	f.Fuzz(func(t *testing.T, sizes []byte, budgetRaw uint64) {
		if len(sizes) > 24 {
			sizes = sizes[:24] // cap trace size to keep iterations fast
		}
		an := fuzzChain(sizes)
		n := an.NumOps()
		total := an.Trace.TotalBytes()
		budget := int64(budgetRaw % uint64(2*total+1))

		blocks := an.Partition(budget)
		if blocks == nil {
			if n > 0 && an.MaxSingleOpBytes() <= budget {
				t.Fatalf("nil partition although max single-op working set %d fits budget %d",
					an.MaxSingleOpBytes(), budget)
			}
			return
		}
		if err := Validate(blocks, n); err != nil {
			t.Fatalf("partition invalid: %v (blocks %v)", err, blocks)
		}
		for i, b := range blocks {
			if wb := an.WorkingBytes(b); wb > budget {
				t.Fatalf("block %d working set %d exceeds budget %d", i, wb, budget)
			}
		}
		if totalNS, exposedNS := an.PipelineEstimate(blocks); totalNS < 0 || exposedNS < 0 || exposedNS > totalNS {
			t.Fatalf("pipeline estimate inconsistent: total %d exposed %d", totalNS, exposedNS)
		}
	})
}
