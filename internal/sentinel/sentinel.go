// Package sentinel implements the offline dataflow-graph partitioner the
// paper adopts from Sentinel [57] (§IV-D "Labeling"): given an execution
// trace, GPU memory capacity, and the interconnect cost model, it partitions
// the training iteration into execution blocks that maximize the overlap
// between tensor migration and computation without exceeding the
// double-buffer budget. Block descriptors in the pilot model's ten-element
// output format are derived here, so this package is both the label
// generator for pilot training and the block analyzer the runtime shares.
package sentinel

import (
	"fmt"
	"sort"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/tensor"
	"dynnoffload/internal/trace"
)

// Block is a half-open operator index range [Start, End) of one execution
// block.
type Block struct {
	Start, End int
}

// Len returns the number of operators in the block.
func (b Block) Len() int { return b.End - b.Start }

// DescriptorLen is the pilot-model output row width (§IV-B): operator count,
// six idiom sums, three input/output dimension sums.
const DescriptorLen = 10

// Analysis precomputes per-operator tensor liveness and timing over one
// training iteration's trace, supporting block cost queries in O(block size).
type Analysis struct {
	Trace *trace.Trace
	CM    gpusim.CostModel

	bytesOf  map[int64]int64
	firstUse map[int64]int // op index of first reference
	lastUse  map[int64]int // op index of last reference
	producer map[int64]int // op index of first production (-1 if none)
	timePfx  []int64       // prefix sums of op times

	// id is a process-unique identity for plan-cache keying (see plan.go).
	id uint64
	// Iteration-level aggregates are pure functions of the trace; they are
	// computed once here because the runtime consults them on every sample
	// (capacity checks, the fits-GPU fast path) and a per-sample liveness
	// walk would dominate the simulation itself.
	peakResident int64
	maxSingleOp  int64
	totalBytes   int64
}

// NewAnalysis builds the liveness/timing index for a trace.
func NewAnalysis(tr *trace.Trace, cm gpusim.CostModel) *Analysis {
	a := &Analysis{
		Trace:    tr,
		CM:       cm,
		bytesOf:  tr.TensorBytes(),
		firstUse: map[int64]int{},
		lastUse:  map[int64]int{},
		producer: map[int64]int{},
		timePfx:  make([]int64, len(tr.Records)+1),
		id:       analysisIDs.Add(1),
	}
	for i, r := range tr.Records {
		a.timePfx[i+1] = a.timePfx[i] + r.TimeNS
		for _, id := range r.Inputs {
			if _, ok := a.firstUse[id]; !ok {
				a.firstUse[id] = i
			}
			a.lastUse[id] = i
		}
		for _, id := range r.Outputs {
			if _, ok := a.firstUse[id]; !ok {
				a.firstUse[id] = i
			}
			a.lastUse[id] = i
			if _, ok := a.producer[id]; !ok {
				a.producer[id] = i
			}
		}
	}
	a.peakResident = a.computePeakResidentBytes()
	a.maxSingleOp = a.computeMaxSingleOpBytes()
	a.totalBytes = tr.TotalBytes()
	return a
}

// TotalBytes returns the trace's distinct tensor footprint, precomputed at
// construction (the runtime's capacity check reads it per sample).
func (a *Analysis) TotalBytes() int64 { return a.totalBytes }

// NumOps returns the trace length.
func (a *Analysis) NumOps() int { return len(a.Trace.Records) }

// ComputeNS returns the summed compute time of a block.
func (a *Analysis) ComputeNS(b Block) int64 {
	return a.timePfx[b.End] - a.timePfx[b.Start]
}

// TotalComputeNS returns the pure compute time of the whole iteration.
func (a *Analysis) TotalComputeNS() int64 { return a.timePfx[len(a.timePfx)-1] }

// forEachTensor visits each distinct tensor referenced in the block once.
func (a *Analysis) forEachTensor(b Block, fn func(id int64)) {
	seen := map[int64]bool{}
	for i := b.Start; i < b.End; i++ {
		r := &a.Trace.Records[i]
		for _, id := range r.Inputs {
			if !seen[id] {
				seen[id] = true
				fn(id)
			}
		}
		for _, id := range r.Outputs {
			if !seen[id] {
				seen[id] = true
				fn(id)
			}
		}
	}
}

// WorkingBytes returns the distinct tensor bytes a block touches — what must
// fit in the double-buffer budget while the block runs.
func (a *Analysis) WorkingBytes(b Block) int64 {
	var total int64
	a.forEachTensor(b, func(id int64) { total += a.bytesOf[id] })
	return total
}

// FetchBytes returns the bytes that must be prefetched from CPU memory
// before the block runs: distinct tensors read by the block that are neither
// produced inside it before their use nor produced in the immediately
// preceding block (whose buffer is still on the GPU).
func (a *Analysis) FetchBytes(b, prev Block) int64 {
	var total int64
	a.forEachTensor(b, func(id int64) {
		p, produced := a.producer[id]
		if produced && p >= prev.Start && p < b.End && p <= a.firstUse[id] {
			return // materialized on-GPU in this or the previous block
		}
		total += a.bytesOf[id]
	})
	return total
}

// EvictBytes returns the write-back bytes when a block's buffer is retired:
// tensors the block produced or modified that are still needed at or after
// op index `after`.
func (a *Analysis) EvictBytes(b Block, after int) int64 {
	var total int64
	seen := map[int64]bool{}
	for i := b.Start; i < b.End; i++ {
		for _, id := range a.Trace.Records[i].Outputs {
			if seen[id] {
				continue
			}
			seen[id] = true
			if a.lastUse[id] >= after {
				total += a.bytesOf[id]
			}
		}
	}
	return total
}

// Descriptor builds the ten-element execution-block vector of §IV-B.
func (a *Analysis) Descriptor(b Block) [DescriptorLen]float64 {
	var d [DescriptorLen]float64
	d[0] = float64(b.Len())
	for i := b.Start; i < b.End; i++ {
		sig := a.Trace.Records[i].Sig
		for k := 0; k < 6; k++ {
			d[1+k] += sig[k]
		}
		for k := 0; k < 3; k++ {
			d[7+k] += sig[6+k]
		}
	}
	return d
}

// Descriptors returns the descriptor rows of a partition.
func (a *Analysis) Descriptors(blocks []Block) [][DescriptorLen]float64 {
	out := make([][DescriptorLen]float64, len(blocks))
	for i, b := range blocks {
		out[i] = a.Descriptor(b)
	}
	return out
}

// Validate checks that blocks tile [0, NumOps) contiguously.
func Validate(blocks []Block, numOps int) error {
	if len(blocks) == 0 {
		return fmt.Errorf("sentinel: empty partition")
	}
	if blocks[0].Start != 0 || blocks[len(blocks)-1].End != numOps {
		return fmt.Errorf("sentinel: partition does not cover [0,%d)", numOps)
	}
	for i, b := range blocks {
		if b.Len() <= 0 {
			return fmt.Errorf("sentinel: block %d empty", i)
		}
		if i > 0 && blocks[i-1].End != b.Start {
			return fmt.Errorf("sentinel: gap before block %d", i)
		}
	}
	return nil
}

// PersistentBytes returns the bytes of tensors that live across iterations
// on an unmodified framework: weights, optimizer state, constants, and
// weight-gradient buffers (PyTorch keeps gradient buffers allocated between
// iterations). These are resident at every point of the iteration.
func (a *Analysis) PersistentBytes() int64 {
	var total int64
	for _, id := range sortedIDs(a.persistentIDs()) {
		total += a.bytesOf[id]
	}
	return total
}

// sortedIDs returns the set's keys in ascending order so every iteration
// over it is reproducible (map range order is randomized per run).
func sortedIDs(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for id := range m {
		out = append(out, id) //dynnlint:ignore determinism keys are sorted before any order-dependent use
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// persistentIDs identifies cross-iteration tensors: Weight/OptState/Constant
// kinds, plus Gradient tensors consumed by the optimizer phase (weight
// gradients, as opposed to transient activation gradients).
func (a *Analysis) persistentIDs() map[int64]bool {
	kinds := a.Trace.TensorKinds()
	out := map[int64]bool{}
	for _, t := range a.Trace.Tensors {
		switch t.Kind {
		case tensor.Weight, tensor.OptState, tensor.Constant:
			out[t.ID] = true
		}
	}
	for _, r := range a.Trace.Records {
		if r.Phase != trace.Optimizer {
			continue
		}
		for _, id := range r.Inputs {
			if kinds[id] == tensor.Gradient {
				out[id] = true
			}
		}
	}
	return out
}

// PeakResidentBytes returns the liveness-based peak memory of running the
// whole iteration on an infinite-capacity device: persistent state (weights,
// optimizer moments, weight-gradient buffers) is always resident; every
// other tensor is resident from its first to its last reference. This is the
// "unmodified PyTorch" footprint a GPU must hold. The value is precomputed at
// construction, so the call is free on the per-sample path.
func (a *Analysis) PeakResidentBytes() int64 { return a.peakResident }

func (a *Analysis) computePeakResidentBytes() int64 {
	persistent := a.persistentIDs()
	var base int64
	for _, id := range sortedIDs(persistent) {
		base += a.bytesOf[id]
	}
	n := a.NumOps()
	allocAt := make([][]int64, n)
	freeAfter := make([][]int64, n)
	for id, first := range a.firstUse {
		if !persistent[id] {
			allocAt[first] = append(allocAt[first], id)
		}
	}
	for id, last := range a.lastUse {
		if !persistent[id] {
			freeAfter[last] = append(freeAfter[last], id)
		}
	}
	var cur, peak int64
	for i := 0; i < n; i++ {
		for _, id := range allocAt[i] {
			cur += a.bytesOf[id]
		}
		if cur > peak {
			peak = cur
		}
		for _, id := range freeAfter[i] {
			cur -= a.bytesOf[id]
		}
	}
	return base + peak
}

// MaxSingleOpBytes returns the largest single-operator working set — the
// floor below which no double-buffer budget is feasible. Precomputed at
// construction (the runtime checks it per sample).
func (a *Analysis) MaxSingleOpBytes() int64 { return a.maxSingleOp }

func (a *Analysis) computeMaxSingleOpBytes() int64 {
	var m int64
	for i := 0; i < a.NumOps(); i++ {
		if w := a.WorkingBytes(Block{Start: i, End: i + 1}); w > m {
			m = w
		}
	}
	return m
}

// BytesOf returns a tensor's size.
func (a *Analysis) BytesOf(id int64) int64 { return a.bytesOf[id] }

// FetchIDs lists the distinct tensors FetchBytes counts, for runtimes that
// materialize residency.
func (a *Analysis) FetchIDs(b, prev Block) []int64 {
	var out []int64
	a.forEachTensor(b, func(id int64) {
		p, produced := a.producer[id]
		if produced && p >= prev.Start && p < b.End && p <= a.firstUse[id] {
			return
		}
		out = append(out, id)
	})
	return out
}

// WorkingIDs lists the distinct tensors a block touches.
func (a *Analysis) WorkingIDs(b Block) []int64 {
	var out []int64
	a.forEachTensor(b, func(id int64) { out = append(out, id) })
	return out
}

// EvictIDs lists the tensors EvictBytes counts (produced in b, live at or
// after `after`).
func (a *Analysis) EvictIDs(b Block, after int) []int64 {
	var out []int64
	seen := map[int64]bool{}
	for i := b.Start; i < b.End; i++ {
		for _, id := range a.Trace.Records[i].Outputs {
			if seen[id] {
				continue
			}
			seen[id] = true
			if a.lastUse[id] >= after {
				out = append(out, id)
			}
		}
	}
	return out
}

// DeadIDs lists tensors referenced in b whose last use is before `after` —
// free to drop without write-back.
func (a *Analysis) DeadIDs(b Block, after int) []int64 {
	var out []int64
	a.forEachTensor(b, func(id int64) {
		if a.lastUse[id] < after {
			out = append(out, id)
		}
	})
	return out
}

// LastUse returns the op index of a tensor's final reference (-1 if never).
func (a *Analysis) LastUse(id int64) int {
	if v, ok := a.lastUse[id]; ok {
		return v
	}
	return -1
}

// Producer returns the op index producing a tensor, or -1 for persistent
// tensors (weights, inputs, optimizer state).
func (a *Analysis) Producer(id int64) int {
	if v, ok := a.producer[id]; ok {
		return v
	}
	return -1
}

// PersistentIDs lists cross-iteration tensors (weights, optimizer state,
// constants, weight-gradient buffers) — see PersistentBytes.
func (a *Analysis) PersistentIDs() []int64 {
	return sortedIDs(a.persistentIDs())
}
