package sentinel

import "sync/atomic"

// This file precomputes the per-block quantities the runtime's DES inner loop
// queries while simulating one training iteration. The legacy path asked the
// Analysis for fetch/evict/working sets per sample, paying a liveness walk
// (with map-backed dedup) for every block of every sample; a BlockPlan pays
// that walk once per (analysis, partition) and serves every subsequent sample
// from immutable arrays. A plan is a pure function of its inputs, so sharing
// one across samples, engines, and sweep grid points cannot change results.

// BlockPlan is the immutable per-block query table of one partition of one
// analyzed iteration. All slices are indexed by block position and must be
// treated as read-only by consumers — plans are shared across goroutines
// without locks.
type BlockPlan struct {
	Blocks []Block

	// ComputeNS[i] is the summed compute time of block i.
	ComputeNS []int64
	// FetchBytes[i] is the prefetch volume of block i given its predecessor
	// (block i-1; for block 0 the zero Block, matching both the pipelined
	// initial fetch and the on-demand walk, which use the same convention).
	FetchBytes []int64
	// PipeEvictBytes[i] is the write-back volume of retiring block i-1 when
	// block i starts under the pipelined schedule, where the liveness horizon
	// is the *next* prefetched block (blocks[i+1].Start). Valid for
	// 1 <= i <= len(Blocks)-2; other entries are zero.
	PipeEvictBytes []int64
	// OnDemandEvictBytes[i] is the write-back volume of retiring block i-1
	// under the on-demand schedule, where the horizon is block i itself
	// (blocks[i].Start). Valid for 1 <= i <= len(Blocks)-1.
	OnDemandEvictBytes []int64
	// WorkingIDs[i] lists the distinct tensors block i touches, in first-
	// reference order; WorkingIDBytes[i] carries their sizes positionally.
	WorkingIDs     [][]int64
	WorkingIDBytes [][]int64
	// WorkingBytes[i] is the summed distinct tensor volume of block i.
	WorkingBytes []int64

	// Iteration-level aggregates, hoisted so per-sample paths stop re-walking
	// the trace: total compute, the liveness peak, the largest single-operator
	// working set, the total tensor footprint, and the largest per-block
	// working set (the on-demand residency peak).
	TotalComputeNS    int64
	PeakResidentBytes int64
	MaxSingleOpBytes  int64
	TotalBytes        int64
	MaxWorkingBytes   int64
}

// NewBlockPlan walks the analysis once and materializes the block query
// table for a partition.
func NewBlockPlan(a *Analysis, blocks []Block) *BlockPlan {
	n := len(blocks)
	p := &BlockPlan{
		Blocks:             append([]Block(nil), blocks...),
		ComputeNS:          make([]int64, n),
		FetchBytes:         make([]int64, n),
		PipeEvictBytes:     make([]int64, n),
		OnDemandEvictBytes: make([]int64, n),
		WorkingIDs:         make([][]int64, n),
		WorkingIDBytes:     make([][]int64, n),
		WorkingBytes:       make([]int64, n),
		TotalComputeNS:     a.TotalComputeNS(),
		PeakResidentBytes:  a.PeakResidentBytes(),
		MaxSingleOpBytes:   a.MaxSingleOpBytes(),
		TotalBytes:         a.Trace.TotalBytes(),
	}
	prev := Block{}
	for i, b := range blocks {
		p.ComputeNS[i] = a.ComputeNS(b)
		p.FetchBytes[i] = a.FetchBytes(b, prev)
		ids := a.WorkingIDs(b)
		sizes := make([]int64, len(ids))
		var total int64
		for j, id := range ids {
			sizes[j] = a.BytesOf(id)
			total += sizes[j]
		}
		p.WorkingIDs[i] = ids
		p.WorkingIDBytes[i] = sizes
		p.WorkingBytes[i] = total
		if total > p.MaxWorkingBytes {
			p.MaxWorkingBytes = total
		}
		if i >= 1 {
			if i+1 < n {
				p.PipeEvictBytes[i] = a.EvictBytes(blocks[i-1], blocks[i+1].Start)
			}
			p.OnDemandEvictBytes[i] = a.EvictBytes(blocks[i-1], b.Start)
		}
		prev = b
	}
	return p
}

// NumBlocks returns the partition length.
func (p *BlockPlan) NumBlocks() int { return len(p.Blocks) }

// BlocksDigest fingerprints a partition's boundaries (FNV-1a over the
// start/end pairs) so plan caches can key custom partitions of one analysis
// — e.g. the partition-quality study's heuristic splits — without hashing
// the whole trace.
func BlocksDigest(blocks []Block) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(blocks)))
	for _, b := range blocks {
		mix(uint64(b.Start))
		mix(uint64(b.End))
	}
	return h
}

// analysisIDs hands every Analysis a process-unique identity, used only as a
// cache-key component (never in simulated results, so run-to-run variation
// of the numbering cannot perturb any output).
var analysisIDs atomic.Uint64

// ID returns the analysis's process-unique identity.
func (a *Analysis) ID() uint64 { return a.id }
