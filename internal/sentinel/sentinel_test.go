package sentinel

import (
	"testing"
	"testing/quick"

	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/mathx"
	"dynnoffload/internal/tensor"
	"dynnoffload/internal/trace"
)

// chainTrace builds a linear chain of n ops, each consuming the previous
// activation (actBytes each) plus a per-op weight (wBytes each).
func chainTrace(t *testing.T, n int, actElems, wElems int) (*trace.Trace, gpusim.CostModel) {
	t.Helper()
	var reg tensor.Registry
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	var states []*graph.WeightState
	prev := reg.New("in", tensor.Input, tensor.F32, actElems)
	var ops []*graph.Op
	for i := 0; i < n; i++ {
		w := reg.New("w", tensor.Weight, tensor.F32, wElems)
		states = append(states, graph.NewWeightState(&reg, w, true))
		out := reg.New("a", tensor.Activation, tensor.F32, actElems)
		ops = append(ops, graph.NewOp("matmul", int64(2*actElems*wElems), []*tensor.Meta{prev, w}, []*tensor.Meta{out}))
		prev = out
	}
	r := &graph.Resolved{ModelName: "chain", Ops: ops}
	it := graph.ExpandTraining(&reg, r, states, true)
	return trace.FromIteration("chain", it, cm), cm
}

func TestAnalysisLiveness(t *testing.T) {
	tr, cm := chainTrace(t, 4, 1024, 1024)
	an := NewAnalysis(tr, cm)
	if an.NumOps() != len(tr.Records) {
		t.Fatal("op count mismatch")
	}
	if an.TotalComputeNS() != tr.TotalTimeNS() {
		t.Error("compute total mismatch")
	}
	full := Block{0, an.NumOps()}
	if an.WorkingBytes(full) != tr.TotalBytes() {
		t.Error("full-block working set must equal total bytes")
	}
	// ComputeNS is additive over a split.
	mid := an.NumOps() / 2
	if an.ComputeNS(Block{0, mid})+an.ComputeNS(Block{mid, an.NumOps()}) != an.ComputeNS(full) {
		t.Error("ComputeNS not additive")
	}
}

func TestFetchExcludesLocalProduction(t *testing.T) {
	tr, cm := chainTrace(t, 4, 1024, 1024)
	an := NewAnalysis(tr, cm)
	full := Block{0, an.NumOps()}
	fetch := an.FetchBytes(full, Block{})
	// Everything produced inside the single block stays; only weights,
	// moments, inputs stream in. So fetch < working set.
	if fetch >= an.WorkingBytes(full) {
		t.Errorf("fetch %d must be < working %d", fetch, an.WorkingBytes(full))
	}
	if fetch <= 0 {
		t.Error("weights must still be fetched")
	}
}

func TestEvictCountsLiveOutputs(t *testing.T) {
	tr, cm := chainTrace(t, 4, 1024, 1024)
	an := NewAnalysis(tr, cm)
	n := an.NumOps()
	first := Block{0, 2}
	// Outputs of the first two ops are needed later (backward).
	if an.EvictBytes(first, 2) <= 0 {
		t.Error("live outputs must be written back")
	}
	// Nothing is needed at/after the end.
	if an.EvictBytes(Block{n - 1, n}, n) != 0 {
		t.Error("nothing is live after the final op")
	}
}

func TestPeakAndPersistent(t *testing.T) {
	tr, cm := chainTrace(t, 4, 1024, 4096)
	an := NewAnalysis(tr, cm)
	peak := an.PeakResidentBytes()
	persistent := an.PersistentBytes()
	if peak < persistent {
		t.Errorf("peak %d < persistent %d", peak, persistent)
	}
	if peak > tr.TotalBytes() {
		t.Errorf("peak %d > total %d", peak, tr.TotalBytes())
	}
	// Persistent = weights(4) + grads(4) + moments(8) of 4096 elems each.
	want := int64(16 * 4096 * 4)
	if persistent != want {
		t.Errorf("persistent = %d, want %d", persistent, want)
	}
}

func TestPartitionRespectsBudget(t *testing.T) {
	tr, cm := chainTrace(t, 16, 4096, 4096)
	an := NewAnalysis(tr, cm)
	budget := tr.TotalBytes() / 4
	if budget < an.MaxSingleOpBytes() {
		budget = an.MaxSingleOpBytes()
	}
	blocks := an.Partition(budget)
	if blocks == nil {
		t.Fatal("partition infeasible")
	}
	if err := Validate(blocks, an.NumOps()); err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if an.WorkingBytes(b) > budget {
			t.Errorf("block %d working set %d > budget %d", i, an.WorkingBytes(b), budget)
		}
	}
	if len(blocks) < 2 {
		t.Error("pressured partition must have multiple blocks")
	}
}

func TestPartitionInfeasible(t *testing.T) {
	tr, cm := chainTrace(t, 2, 1<<16, 1<<16)
	an := NewAnalysis(tr, cm)
	if blocks := an.Partition(16); blocks != nil {
		t.Error("tiny budget must be infeasible")
	}
}

func TestPartitionSingleBlockWhenRoomy(t *testing.T) {
	tr, cm := chainTrace(t, 4, 256, 256)
	an := NewAnalysis(tr, cm)
	blocks := an.Partition(tr.TotalBytes() * 2)
	if len(blocks) != 1 {
		t.Errorf("roomy budget gave %d blocks", len(blocks))
	}
}

func TestPartitionBeatsOrMatchesHeuristics(t *testing.T) {
	tr, cm := chainTrace(t, 24, 8192, 8192)
	an := NewAnalysis(tr, cm)
	budget := max64(tr.TotalBytes()/5, an.MaxSingleOpBytes())
	blocks := an.Partition(budget)
	if blocks == nil {
		t.Fatal("infeasible")
	}
	sentinelNS, _ := a2total(an, blocks)
	for _, h := range [][]Block{an.EvenOps(len(blocks)), an.EvenTime(len(blocks)), an.EvenBytes(len(blocks))} {
		if Validate(h, an.NumOps()) != nil {
			continue
		}
		feasible := true
		for _, b := range h {
			if an.WorkingBytes(b) > budget {
				feasible = false
			}
		}
		if !feasible {
			continue
		}
		if hNS, _ := a2total(an, h); hNS < sentinelNS {
			t.Errorf("heuristic beat sentinel: %d < %d", hNS, sentinelNS)
		}
	}
}

func a2total(an *Analysis, blocks []Block) (int64, int64) {
	return an.PipelineEstimate(blocks)
}

func TestEvenSplitProperties(t *testing.T) {
	tr, cm := chainTrace(t, 12, 512, 512)
	an := NewAnalysis(tr, cm)
	f := func(nRaw uint8) bool {
		n := int(nRaw%10) + 1
		for _, blocks := range [][]Block{an.EvenOps(n), an.EvenTime(n), an.EvenBytes(n)} {
			if err := Validate(blocks, an.NumOps()); err != nil {
				return false
			}
			if len(blocks) > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDescriptor(t *testing.T) {
	tr, cm := chainTrace(t, 4, 1024, 1024)
	an := NewAnalysis(tr, cm)
	full := Block{0, an.NumOps()}
	d := an.Descriptor(full)
	if int(d[0]) != an.NumOps() {
		t.Errorf("descriptor op count = %v", d[0])
	}
	// Splitting must conserve descriptor mass.
	mid := an.NumOps() / 2
	d1 := an.Descriptor(Block{0, mid})
	d2 := an.Descriptor(Block{mid, an.NumOps()})
	for k := 0; k < DescriptorLen; k++ {
		if d1[k]+d2[k] != d[k] {
			t.Errorf("descriptor element %d not additive", k)
		}
	}
}

func TestValidate(t *testing.T) {
	if Validate(nil, 5) == nil {
		t.Error("empty partition must fail")
	}
	if Validate([]Block{{0, 3}}, 5) == nil {
		t.Error("non-covering partition must fail")
	}
	if Validate([]Block{{0, 3}, {4, 5}}, 5) == nil {
		t.Error("gapped partition must fail")
	}
	if Validate([]Block{{0, 3}, {3, 5}}, 5) != nil {
		t.Error("valid partition rejected")
	}
}

func TestPipelineEstimateSanity(t *testing.T) {
	tr, cm := chainTrace(t, 16, 4096, 4096)
	an := NewAnalysis(tr, cm)
	budget := max64(tr.TotalBytes()/4, an.MaxSingleOpBytes())
	blocks := an.Partition(budget)
	total, exposed := an.PipelineEstimate(blocks)
	if total < an.TotalComputeNS() {
		t.Error("pipelined total cannot beat pure compute")
	}
	if exposed < 0 || exposed > total {
		t.Errorf("exposed %d out of range", exposed)
	}
}

func TestFetchIDsMatchBytes(t *testing.T) {
	tr, cm := chainTrace(t, 8, 2048, 2048)
	an := NewAnalysis(tr, cm)
	b := Block{2, 6}
	prev := Block{0, 2}
	var sum int64
	for _, id := range an.FetchIDs(b, prev) {
		sum += an.BytesOf(id)
	}
	if sum != an.FetchBytes(b, prev) {
		t.Errorf("FetchIDs total %d != FetchBytes %d", sum, an.FetchBytes(b, prev))
	}
	var esum int64
	for _, id := range an.EvictIDs(b, 6) {
		esum += an.BytesOf(id)
	}
	if esum != an.EvictBytes(b, 6) {
		t.Errorf("EvictIDs total %d != EvictBytes %d", esum, an.EvictBytes(b, 6))
	}
}

func TestRandomTracePartitionProperty(t *testing.T) {
	rng := mathx.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(24)
		tr, cm := chainTrace(t, n, 512+rng.Intn(4096), 512+rng.Intn(4096))
		an := NewAnalysis(tr, cm)
		budget := max64(tr.TotalBytes()/int64(2+rng.Intn(5)), an.MaxSingleOpBytes())
		blocks := an.Partition(budget)
		if blocks == nil {
			t.Fatalf("trial %d infeasible", trial)
		}
		if err := Validate(blocks, an.NumOps()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, b := range blocks {
			if an.WorkingBytes(b) > budget {
				t.Fatalf("trial %d violates budget", trial)
			}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
