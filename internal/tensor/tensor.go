// Package tensor defines tensor metadata used throughout the simulator.
//
// The offloading policies studied in this repository never look at tensor
// contents; they reason about identity, kind, shape, and byte size. A tensor
// here is therefore pure metadata. Actual numeric computation (the pilot
// model) lives in internal/mathx and internal/nn.
package tensor

import (
	"fmt"
	"sync/atomic"
)

// DType is the element type of a tensor.
type DType int

const (
	F32 DType = iota
	F16
	BF16
	I64
	I32
	I8
)

// Size returns the byte width of one element.
func (d DType) Size() int64 {
	switch d {
	case F32, I32:
		return 4
	case F16, BF16:
		return 2
	case I64:
		return 8
	case I8:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", int(d))) //dynnlint:ignore panicfree unknown dtype is unreachable for the fixed enum; guards future edits
}

func (d DType) String() string {
	switch d {
	case F32:
		return "f32"
	case F16:
		return "f16"
	case BF16:
		return "bf16"
	case I64:
		return "i64"
	case I32:
		return "i32"
	case I8:
		return "i8"
	}
	return fmt.Sprintf("dtype(%d)", int(d))
}

// Kind classifies the role a tensor plays during training. Offloading
// policies treat kinds differently: DTR may only evict activations, ZeRO
// offloads optimizer states and gradients, and weights are never
// rematerializable.
type Kind int

const (
	Input Kind = iota
	Weight
	Gradient
	OptState
	Activation
	Constant
	Workspace
)

func (k Kind) String() string {
	switch k {
	case Input:
		return "input"
	case Weight:
		return "weight"
	case Gradient:
		return "gradient"
	case OptState:
		return "optstate"
	case Activation:
		return "activation"
	case Constant:
		return "constant"
	case Workspace:
		return "workspace"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rematerializable reports whether a tensor of this kind can be recomputed
// from its parents. Only activations (and scratch workspace) can; weights,
// optimizer states, constants and inputs have no producing operator inside
// the iteration.
func (k Kind) Rematerializable() bool {
	return k == Activation || k == Workspace
}

// Meta describes one tensor.
type Meta struct {
	ID    int64
	Name  string
	Kind  Kind
	DType DType
	Shape []int
}

// Elems returns the number of elements.
func (m *Meta) Elems() int64 {
	n := int64(1)
	for _, d := range m.Shape {
		n *= int64(d)
	}
	return n
}

// Bytes returns the total storage size in bytes.
func (m *Meta) Bytes() int64 { return m.Elems() * m.DType.Size() }

func (m *Meta) String() string {
	return fmt.Sprintf("%s#%d %s %s%v (%d B)", m.Name, m.ID, m.Kind, m.DType, m.Shape, m.Bytes())
}

// Registry hands out unique tensor IDs. The zero value is ready to use.
type Registry struct {
	next atomic.Int64
}

// New creates a tensor with a fresh ID.
func (r *Registry) New(name string, kind Kind, dt DType, shape ...int) *Meta {
	s := make([]int, len(shape))
	copy(s, shape)
	return &Meta{ID: r.next.Add(1), Name: name, Kind: kind, DType: dt, Shape: s}
}

// TotalBytes sums the sizes of the given tensors, counting each ID once.
func TotalBytes(ts []*Meta) int64 {
	seen := make(map[int64]bool, len(ts))
	var total int64
	for _, t := range ts {
		if t == nil || seen[t.ID] {
			continue
		}
		seen[t.ID] = true
		total += t.Bytes()
	}
	return total
}
