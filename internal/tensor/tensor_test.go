package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	cases := map[DType]int64{F32: 4, F16: 2, BF16: 2, I64: 8, I32: 4, I8: 1}
	for dt, want := range cases {
		if got := dt.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", dt, got, want)
		}
	}
}

func TestDTypeStrings(t *testing.T) {
	for _, dt := range []DType{F32, F16, BF16, I64, I32, I8} {
		if dt.String() == "" {
			t.Errorf("empty string for dtype %d", int(dt))
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Input, Weight, Gradient, OptState, Activation, Constant, Workspace} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestRematerializable(t *testing.T) {
	if !Activation.Rematerializable() {
		t.Error("activations must be rematerializable")
	}
	if !Workspace.Rematerializable() {
		t.Error("workspace must be rematerializable")
	}
	for _, k := range []Kind{Input, Weight, Gradient, OptState, Constant} {
		if k.Rematerializable() {
			t.Errorf("%v must not be rematerializable", k)
		}
	}
}

func TestMetaBytes(t *testing.T) {
	var r Registry
	m := r.New("x", Activation, F32, 2, 3, 4)
	if m.Elems() != 24 {
		t.Errorf("Elems = %d, want 24", m.Elems())
	}
	if m.Bytes() != 96 {
		t.Errorf("Bytes = %d, want 96", m.Bytes())
	}
	scalar := r.New("s", Constant, F32)
	if scalar.Elems() != 1 || scalar.Bytes() != 4 {
		t.Errorf("scalar: elems=%d bytes=%d", scalar.Elems(), scalar.Bytes())
	}
}

func TestRegistryUniqueIDs(t *testing.T) {
	var r Registry
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		m := r.New("t", Activation, F32, 1)
		if seen[m.ID] {
			t.Fatalf("duplicate ID %d", m.ID)
		}
		seen[m.ID] = true
	}
}

func TestRegistryCopiesShape(t *testing.T) {
	var r Registry
	shape := []int{2, 3}
	m := r.New("x", Weight, F32, shape...)
	shape[0] = 99
	if m.Shape[0] != 2 {
		t.Error("Registry.New must copy the shape")
	}
}

func TestTotalBytesDeduplicates(t *testing.T) {
	var r Registry
	a := r.New("a", Activation, F32, 10) // 40 B
	b := r.New("b", Activation, F32, 5)  // 20 B
	got := TotalBytes([]*Meta{a, b, a, nil, b})
	if got != 60 {
		t.Errorf("TotalBytes = %d, want 60", got)
	}
	if TotalBytes(nil) != 0 {
		t.Error("TotalBytes(nil) must be 0")
	}
}

func TestBytesProperty(t *testing.T) {
	var r Registry
	f := func(d1, d2, d3 uint8) bool {
		s1, s2, s3 := int(d1%16)+1, int(d2%16)+1, int(d3%16)+1
		m := r.New("p", Activation, F16, s1, s2, s3)
		return m.Bytes() == int64(s1*s2*s3)*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetaString(t *testing.T) {
	var r Registry
	m := r.New("w", Weight, F32, 4, 4)
	if s := m.String(); s == "" {
		t.Error("empty String()")
	}
}
