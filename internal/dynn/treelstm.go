package dynn

import (
	"fmt"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
)

// TreeLSTMConfig sizes the Tree-LSTM [72] used for the paper's Table I
// unpredictability study. Every composition level carries a control-flow
// site choosing the composition order (which children merge), each with its
// own gating weights — the "rich control flows" the paper highlights.
type TreeLSTMConfig struct {
	Levels int // composition levels = control-flow sites
	Hidden int
	SeqLen int
	Batch  int
	Seed   uint64
}

// TreeLSTM is the LSTM-based tree-structured DyNN.
type TreeLSTM struct {
	base
	cfg TreeLSTMConfig
}

// NewTreeLSTM builds a Tree-LSTM instance.
func NewTreeLSTM(cfg TreeLSTMConfig) *TreeLSTM {
	b := newBuilder(true)

	var elems []graph.Elem
	x, e := b.embedding("emb", Vocab(), cfg.Batch, cfg.SeqLen, cfg.Hidden)
	elems = append(elems, e...)

	// Initial leaf state: project embeddings to the hidden state.
	leaf := b.act("leaf.h", cfg.Batch, cfg.Hidden)
	elems = append(elems, op("sum", x.Elems(), []*tensor.Meta{x}, []*tensor.Meta{leaf}))

	cur := leaf
	// composeOps emits one tree composition: tree_compose (LSTM-style
	// gating), sigmoid gate, gated merge.
	composeOps := func(level, order int, in *tensor.Meta, join *tensor.Meta) []graph.Elem {
		prefix := fmt.Sprintf("compose.o%d", order) // weights shared per order across levels
		w := b.weight(prefix+".w", 2*cfg.Hidden, 4*cfg.Hidden)
		g := b.act(fmt.Sprintf("%s.l%d.g", prefix, level), cfg.Batch, 4*cfg.Hidden)
		flops := 2 * int64(cfg.Batch) * int64(2*cfg.Hidden) * int64(4*cfg.Hidden)
		out := seq(
			op("tree_compose", flops, []*tensor.Meta{in, w}, []*tensor.Meta{g}),
		)
		out = append(out, b.activationOp("sigmoid", g)...)
		merged := b.act(fmt.Sprintf("%s.l%d.h", prefix, level), cfg.Batch, cfg.Hidden)
		out = append(out, op("gate_mul", g.Elems(), []*tensor.Meta{g, in}, []*tensor.Meta{merged}))
		out = append(out, op("copy", join.Elems(), []*tensor.Meta{merged}, []*tensor.Meta{join}))
		return out
	}

	for level := 0; level < cfg.Levels; level++ {
		join := b.act(fmt.Sprintf("level%d.join", level), cfg.Batch, cfg.Hidden)
		arms := [][]graph.Elem{
			append(b.markers(level, 0), composeOps(level, 0, cur, join)...),
			append(b.markers(level, 1), composeOps(level, 1, cur, join)...),
		}
		elems = append(elems, graph.Branch{Site: level, Arms: arms})
		cur = join
	}

	rep, e := b.linear("head.rep", cur, cfg.Hidden)
	elems = append(elems, e...)
	loss := b.act("head.loss", 1)
	elems = append(elems, op("cross_entropy", rep.Elems(), []*tensor.Meta{rep}, []*tensor.Meta{loss}))

	m := &TreeLSTM{cfg: cfg}
	m.base = base{
		name:     "Tree-LSTM",
		baseType: LSTM,
		static:   &graph.Static{ModelName: "Tree-LSTM", Elems: elems, NumSites: cfg.Levels},
		states:   b.states,
		reg:      b.reg,
		decider:  NewDecider(cfg.Seed+0x7215, cfg.Levels),
	}
	m.finish()
	return m
}

// Config returns the instance configuration.
func (m *TreeLSTM) Config() TreeLSTMConfig { return m.cfg }
