package dynn

import (
	"fmt"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
)

// VarLSTMConfig sizes var-LSTM: an LSTM over variable-length sequences
// (Table II). Site 0 selects the unroll-length bucket (weights shared across
// buckets and timesteps, as in a real RNN); site 1 toggles a bidirectional
// backward pass.
type VarLSTMConfig struct {
	Hidden  int
	Buckets []int // unroll lengths; defaults to {8, 16, 24, 32}
	Batch   int
	Seed    uint64
	Static  bool // build fixed-LSTM: fixed length, no control flow
	FixedT  int  // unroll length for fixed-LSTM; defaults to 16
}

func (c *VarLSTMConfig) defaults() {
	if len(c.Buckets) == 0 {
		c.Buckets = []int{8, 16, 24, 32}
	}
	if c.FixedT == 0 {
		c.FixedT = 16
	}
}

// VarLSTM is the sequence-length-adaptive LSTM DyNN (or fixed-LSTM).
type VarLSTM struct {
	base
	cfg VarLSTMConfig
}

// NewVarLSTM builds a var-LSTM (or fixed-LSTM when cfg.Static).
func NewVarLSTM(cfg VarLSTMConfig) *VarLSTM {
	cfg.defaults()
	b := newBuilder(true)
	name := "var-LSTM"
	if cfg.Static {
		name = "fixed-LSTM"
	}

	var elems []graph.Elem
	maxT := cfg.FixedT
	for _, t := range cfg.Buckets {
		if t > maxT {
			maxT = t
		}
	}
	x, e := b.embedding("emb", Vocab(), cfg.Batch, maxT, cfg.Hidden)
	elems = append(elems, e...)

	h0 := b.act("h0", cfg.Batch, cfg.Hidden)
	elems = append(elems, op("copy", h0.Elems(), []*tensor.Meta{x}, []*tensor.Meta{h0}))

	// unroll emits T shared-weight timesteps ending in a copy to join.
	unroll := func(tag string, T int, h *tensor.Meta, join *tensor.Meta) []graph.Elem {
		var out []graph.Elem
		cur := h
		for t := 0; t < T; t++ {
			xt := b.act(fmt.Sprintf("%s.x%d", tag, t), cfg.Batch, cfg.Hidden)
			out = append(out, op("slice", xt.Elems(), []*tensor.Meta{x}, []*tensor.Meta{xt}))
			var e []graph.Elem
			cur, e = b.lstmStep("cell", xt, cur, cfg.Hidden) // "cell" prefix => shared weights
			out = append(out, e...)
		}
		out = append(out, op("copy", join.Elems(), []*tensor.Meta{cur}, []*tensor.Meta{join}))
		return out
	}

	var cur *tensor.Meta
	numSites := 0
	if cfg.Static {
		join := b.act("fwd.join", cfg.Batch, cfg.Hidden)
		elems = append(elems, unroll("fwd", cfg.FixedT, h0, join)...)
		cur = join
	} else {
		join := b.act("fwd.join", cfg.Batch, cfg.Hidden)
		arms := make([][]graph.Elem, len(cfg.Buckets))
		for i, T := range cfg.Buckets {
			arms[i] = append(b.markers(0, i), unroll(fmt.Sprintf("fwd.b%d", i), T, h0, join)...)
		}
		elems = append(elems, graph.Branch{Site: 0, Arms: arms})
		cur = join

		// Site 1: optional backward (bidirectional) pass of the shortest bucket.
		bjoin := b.act("bwd.join", cfg.Batch, cfg.Hidden)
		skip := append(b.markers(1, 0), op("copy", bjoin.Elems(), []*tensor.Meta{cur}, []*tensor.Meta{bjoin}))
		bidi := append(b.markers(1, 1), unroll("bwd", cfg.Buckets[0], cur, bjoin)...)
		elems = append(elems, graph.Branch{Site: 1, Arms: [][]graph.Elem{skip, bidi}})
		cur = bjoin
		numSites = 2
	}

	logits, e := b.linear("head", cur, 64)
	elems = append(elems, e...)
	loss := b.act("head.loss", 1)
	elems = append(elems, op("cross_entropy", logits.Elems(), []*tensor.Meta{logits}, []*tensor.Meta{loss}))

	m := &VarLSTM{cfg: cfg}
	m.base = base{
		name:     name,
		baseType: LSTM,
		static:   &graph.Static{ModelName: name, Elems: elems, NumSites: numSites},
		states:   b.states,
		reg:      b.reg,
		decider:  NewDecider(cfg.Seed+0x1257, numSites),
	}
	m.finish()
	return m
}

// NewFixedLSTM builds the static-LSTM baseline.
func NewFixedLSTM(cfg VarLSTMConfig) *VarLSTM {
	cfg.Static = true
	return NewVarLSTM(cfg)
}

// Config returns the instance configuration.
func (m *VarLSTM) Config() VarLSTMConfig { return m.cfg }
