package dynn

import (
	"fmt"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
)

// AlphaFoldConfig sizes the AlphaFold-style evoformer (the paper's
// production-scale DyNN, §I: ~1 TB footprint at 128×256 inputs). Dynamism:
//
//   - site 0 selects the MSA-cluster bucket (how many MSA rows the input
//     alignment yields) — input-dependent width;
//   - site 1 toggles template-stack usage;
//   - site 2 is a Repeat: the recycling count (1..MaxRecycles). Recycling
//     reuses evoformer weights and, as in AlphaFold, earlier recycles are
//     stop-gradient (activations of repeated iterations alias — see
//     DESIGN.md).
type AlphaFoldConfig struct {
	Blocks      int   // evoformer blocks per recycle
	SeqLen      int   // residues
	MSADepths   []int // cluster buckets; defaults to {32, 64}
	MSADim      int
	PairDim     int
	MaxRecycles int // >= 1
	Batch       int
	Seed        uint64
}

func (c *AlphaFoldConfig) defaults() {
	if len(c.MSADepths) == 0 {
		c.MSADepths = []int{32, 64}
	}
	if c.MaxRecycles < 1 {
		c.MaxRecycles = 4
	}
}

// AlphaFold is the evoformer-based DyNN.
type AlphaFold struct {
	base
	cfg AlphaFoldConfig
}

// NewAlphaFold builds an AlphaFold-style instance.
func NewAlphaFold(cfg AlphaFoldConfig) *AlphaFold {
	cfg.defaults()
	b := newBuilder(true)
	B, S := cfg.Batch, cfg.SeqLen

	var elems []graph.Elem

	// Input featurization: MSA bucket selects how many alignment rows feed
	// the MSA representation.
	msa := b.act("msa.join", B, cfg.MSADepths[len(cfg.MSADepths)-1], S, cfg.MSADim)
	arms := make([][]graph.Elem, len(cfg.MSADepths))
	for i, depth := range cfg.MSADepths {
		raw := b.input(fmt.Sprintf("msa.in.b%d", i), B, depth, S, 23)
		proj, e := b.linear("msa.proj", raw, cfg.MSADim)
		arm := append(b.markers(0, i), e...)
		arm = append(arm, op("copy", msa.Elems(), []*tensor.Meta{proj}, []*tensor.Meta{msa}))
		arms[i] = arm
	}
	elems = append(elems, graph.Branch{Site: 0, Arms: arms})

	// Pair representation, optionally enriched by the template stack.
	pair := b.act("pair.join", B, S, S, cfg.PairDim)
	pairInit := b.act("pair.init", B, S, S, cfg.PairDim)
	initOps := seq(
		op("outer_product_mean", 2*int64(B)*int64(S)*int64(S)*int64(cfg.MSADim), []*tensor.Meta{msa}, []*tensor.Meta{pairInit}),
		op("copy", pair.Elems(), []*tensor.Meta{pairInit}, []*tensor.Meta{pair}),
	)
	tmplRaw := b.input("tmpl.in", B, S, S, 8)
	tmplProj, tmplE := b.linear("tmpl.proj", tmplRaw, cfg.PairDim)
	withTmpl := append(append(b.markers(1, 1), initOps...), tmplE...)
	withTmpl = append(withTmpl, op("residual_add", pair.Elems(), []*tensor.Meta{pair, tmplProj}, []*tensor.Meta{pair}))
	noTmpl := append(b.markers(1, 0), initOps...)
	elems = append(elems, graph.Branch{Site: 1, Arms: [][]graph.Elem{noTmpl, withTmpl}})

	// Evoformer stack, wrapped in the recycling Repeat. The marker repeats
	// with the body, so the recycling count is observable in the record.
	stack := b.markers(2, 0)
	curMSA, curPair := msa, pair
	for blk := 0; blk < cfg.Blocks; blk++ {
		prefix := fmt.Sprintf("evo%d", blk)

		// MSA row attention (per row over residues).
		msaAttnIn := b.act(prefix+".msa.flat", B*cfg.MSADepths[len(cfg.MSADepths)-1], S, cfg.MSADim)
		stack = append(stack, op("reshape", msaAttnIn.Elems(), []*tensor.Meta{curMSA}, []*tensor.Meta{msaAttnIn}))
		msaOut, e := b.attention(prefix+".msa.attn", msaAttnIn, 4)
		stack = append(stack, e...)

		// Outer product mean: MSA -> pair update.
		opm := b.act(prefix+".opm", B, S, S, cfg.PairDim)
		stack = append(stack, op("outer_product_mean",
			2*int64(B)*int64(S)*int64(S)*int64(cfg.MSADim),
			[]*tensor.Meta{msaOut}, []*tensor.Meta{opm}))
		pairUpd := b.act(prefix+".pair.u1", B, S, S, cfg.PairDim)
		stack = append(stack, op("residual_add", pairUpd.Elems(), []*tensor.Meta{curPair, opm}, []*tensor.Meta{pairUpd}))

		// Triangle multiplicative updates (outgoing + incoming).
		for _, dir := range []string{"out", "in"} {
			tri := b.act(fmt.Sprintf("%s.tri.%s", prefix, dir), B, S, S, cfg.PairDim)
			stack = append(stack, op("triangle_mult",
				2*int64(B)*int64(S)*int64(S)*int64(S)*int64(cfg.PairDim),
				[]*tensor.Meta{pairUpd, b.weight(fmt.Sprintf("%s.tri.%s.w", prefix, dir), cfg.PairDim, cfg.PairDim)},
				[]*tensor.Meta{tri}))
			stack = append(stack, op("residual_add", pairUpd.Elems(), []*tensor.Meta{pairUpd, tri}, []*tensor.Meta{pairUpd}))
		}

		// Pair transition (FFN) and write back.
		pairOut, e := b.ffn(prefix+".pair.ffn", pairUpd, 2*cfg.PairDim)
		stack = append(stack, e...)
		stack = append(stack, op("copy", curPair.Elems(), []*tensor.Meta{pairOut}, []*tensor.Meta{curPair}))

		// MSA transition and write back.
		msaFFN, e := b.ffn(prefix+".msa.ffn", msaOut, 2*cfg.MSADim)
		stack = append(stack, e...)
		stack = append(stack, op("copy", curMSA.Elems(), []*tensor.Meta{msaFFN}, []*tensor.Meta{curMSA}))
	}
	elems = append(elems, graph.Repeat{Site: 2, Body: stack, Min: 1, Max: cfg.MaxRecycles})

	// Structure head: per-residue frames from the pair representation.
	frames, e := b.linear("head.frames", curPair, 12)
	elems = append(elems, e...)
	loss := b.act("head.loss", 1)
	elems = append(elems, op("mse_loss", frames.Elems(), []*tensor.Meta{frames}, []*tensor.Meta{loss}))

	m := &AlphaFold{cfg: cfg}
	m.base = base{
		name:     "AlphaFold",
		baseType: Transformer,
		static:   &graph.Static{ModelName: "AlphaFold", Elems: elems, NumSites: 3},
		states:   b.states,
		reg:      b.reg,
		decider:  NewDecider(cfg.Seed+0xaf01d, 3),
	}
	m.finish()
	return m
}

// Config returns the instance configuration.
func (m *AlphaFold) Config() AlphaFoldConfig { return m.cfg }
