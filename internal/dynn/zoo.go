package dynn

import "fmt"

// ZooEntry describes one Table II workload: its name, base type, dynamism,
// and a constructor at "bench" scale (sized so full training iterations
// simulate quickly while preserving the model's memory/compute character).
type ZooEntry struct {
	Name     string
	Base     BaseType
	Dynamic  bool
	Dynamism string // Table II description
	New      func(batch int, seed uint64) Model
}

// Zoo returns the paper's Table II workloads plus AlphaFold, at bench scale.
func Zoo() []ZooEntry {
	return []ZooEntry{
		{
			Name: "Tree-CNN", Base: CNN, Dynamic: true,
			Dynamism: "parse-tree structure selects per-node CNNs",
			New: func(batch int, seed uint64) Model {
				return NewTreeCNN(TreeCNNConfig{Levels: 6, Types: 2, Channels: 64, Width: 16, Batch: batch, Seed: seed})
			},
		},
		{
			Name: "Tree-LSTM", Base: LSTM, Dynamic: true,
			Dynamism: "composition order selects gating weights",
			New: func(batch int, seed uint64) Model {
				return NewTreeLSTM(TreeLSTMConfig{Levels: 6, Hidden: 512, SeqLen: 16, Batch: batch, Seed: seed})
			},
		},
		{
			Name: "var-BERT", Base: Transformer, Dynamic: true,
			Dynamism: "input-dependent layer-group depth (early exit)",
			New: func(batch int, seed uint64) Model {
				return NewVarBERT(VarBERTConfig{Layers: 12, Hidden: 1024, SeqLen: 128, Batch: batch, Groups: 6, Seed: seed})
			},
		},
		{
			Name: "var-LSTM", Base: LSTM, Dynamic: true,
			Dynamism: "sequence-length buckets + optional backward pass",
			New: func(batch int, seed uint64) Model {
				return NewVarLSTM(VarLSTMConfig{Hidden: 512, Batch: batch, Seed: seed})
			},
		},
		{
			Name: "MoE", Base: Transformer, Dynamic: true,
			Dynamism: "top-1 expert routing per MoE layer",
			New: func(batch int, seed uint64) Model {
				return NewMoE(MoEConfig{Layers: 4, Hidden: 1024, SeqLen: 64, Experts: 4, Batch: batch, Seed: seed})
			},
		},
		{
			Name: "UGAN", Base: CNN, Dynamic: true,
			Dynamism: "U-Net depth + discriminator depth",
			New: func(batch int, seed uint64) Model {
				return NewUGAN(UGANConfig{BaseChannels: 48, ImgSize: 64, Batch: batch, Seed: seed})
			},
		},
		{
			Name: "AlphaFold", Base: Transformer, Dynamic: true,
			Dynamism: "MSA buckets, template usage, recycling count",
			New: func(batch int, seed uint64) Model {
				return NewAlphaFold(AlphaFoldConfig{Blocks: 3, SeqLen: 96, MSADim: 64, PairDim: 64, Batch: batch, Seed: seed})
			},
		},
		{
			Name: "fixed-BERT", Base: Transformer, Dynamic: false,
			Dynamism: "none (static baseline)",
			New: func(batch int, seed uint64) Model {
				return NewFixedBERT(VarBERTConfig{Layers: 12, Hidden: 1024, SeqLen: 128, Batch: batch, Seed: seed})
			},
		},
		{
			Name: "fixed-LSTM", Base: LSTM, Dynamic: false,
			Dynamism: "none (static baseline)",
			New: func(batch int, seed uint64) Model {
				return NewVarLSTM(VarLSTMConfig{Hidden: 512, Batch: batch, Seed: seed, Static: true})
			},
		},
	}
}

// ZooModel builds the named zoo entry, or returns an error listing valid
// names.
func ZooModel(name string, batch int, seed uint64) (Model, error) {
	for _, e := range Zoo() {
		if e.Name == name {
			return e.New(batch, seed), nil
		}
	}
	var names []string
	for _, e := range Zoo() {
		names = append(names, e.Name)
	}
	return nil, fmt.Errorf("dynn: unknown model %q (have %v)", name, names)
}

// DynamicZoo returns only the dynamic entries (the DyNNs of Table II).
func DynamicZoo() []ZooEntry {
	var out []ZooEntry
	for _, e := range Zoo() {
		if e.Dynamic {
			out = append(out, e)
		}
	}
	return out
}
