package dynn

import (
	"fmt"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
)

// TreeCNNConfig sizes the Tree-CNN of the paper's Fig 1: a sentence-embedding
// model that builds a parse tree bottom-up. At every merge level, a control
// flow selects which grammar-type node (and therefore which dedicated CNN) is
// activated — each node has four operators (conv, relu, maxpool, score), as
// in the paper's AFM example (Fig 4).
type TreeCNNConfig struct {
	Levels   int // merge levels = control-flow sites
	Types    int // grammar types (dedicated CNNs per type), >= 2
	Channels int
	Width    int // spatial width of node feature maps
	Batch    int
	Seed     uint64
}

func (c *TreeCNNConfig) defaults() {
	if c.Types < 2 {
		c.Types = 2
	}
	if c.Width == 0 {
		c.Width = 16
	}
}

// TreeCNN is the CNN-based DyNN of Fig 1.
type TreeCNN struct {
	base
	cfg TreeCNNConfig
}

// NewTreeCNN builds a Tree-CNN instance.
func NewTreeCNN(cfg TreeCNNConfig) *TreeCNN {
	cfg.defaults()
	b := newBuilder(true)

	var elems []graph.Elem
	// Leaf featurization: token embedding laid out as a feature map.
	x := b.input("leaf.in", cfg.Batch, cfg.Channels, cfg.Width, cfg.Width)
	cur, e := b.conv("leaf.conv", x, cfg.Channels, 3)
	elems = append(elems, e...)

	// nodeOps emits the four operators of one tree node using the dedicated
	// CNN of grammar type t (weights shared across levels for the same type,
	// as each type has one CNN).
	nodeOps := func(level, t int, in *tensor.Meta, join *tensor.Meta) []graph.Elem {
		prefix := fmt.Sprintf("type%d", t)
		var out []graph.Elem
		conv, e := b.conv(prefix+".conv", in, cfg.Channels, 3) // conv2d + relu
		out = append(out, e...)
		pooled, e := b.pool(fmt.Sprintf("%s.pool.l%d", prefix, level), conv)
		out = append(out, e...)
		score, e := b.linear(prefix+".score", pooled, 1)
		out = append(out, e...)
		_ = score
		out = append(out, op("copy", join.Elems(), []*tensor.Meta{pooled}, []*tensor.Meta{join}))
		return out
	}

	for level := 0; level < cfg.Levels; level++ {
		join := b.act(fmt.Sprintf("level%d.join", level), cfg.Batch, cfg.Channels, cfg.Width/2, cfg.Width/2)
		arms := make([][]graph.Elem, cfg.Types)
		for t := 0; t < cfg.Types; t++ {
			arms[t] = append(b.markers(level, t), nodeOps(level, t, cur, join)...)
		}
		elems = append(elems, graph.Branch{Site: level, Arms: arms})
		// Re-expand the pooled map for the next level so shapes stay stable.
		up := b.act(fmt.Sprintf("level%d.up", level), cfg.Batch, cfg.Channels, cfg.Width, cfg.Width)
		elems = append(elems, op("upsample", up.Elems(), []*tensor.Meta{join}, []*tensor.Meta{up}))
		cur = up
	}

	// Sentence representation head.
	rep, e := b.linear("head.rep", cur, 64)
	elems = append(elems, e...)
	loss := b.act("head.loss", 1)
	elems = append(elems, op("mse_loss", rep.Elems(), []*tensor.Meta{rep}, []*tensor.Meta{loss}))

	m := &TreeCNN{cfg: cfg}
	m.base = base{
		name:     "Tree-CNN",
		baseType: CNN,
		static:   &graph.Static{ModelName: "Tree-CNN", Elems: elems, NumSites: cfg.Levels},
		states:   b.states,
		reg:      b.reg,
		decider:  NewDecider(cfg.Seed+0x7cee, cfg.Levels),
	}
	m.finish()
	return m
}

// Config returns the instance configuration.
func (m *TreeCNN) Config() TreeCNNConfig { return m.cfg }
