package dynn

import (
	"fmt"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
)

// VarBERTConfig sizes a var-BERT (dynamic-depth BERT, Table II) instance.
// Layers are split into Groups; each group is guarded by one control-flow
// site whose decision selects full depth or an early-exit half of the group —
// layer-wise adaptive depth, the dynamism style of [19], [60] cited in the
// paper. Weights are distinct per layer; early-exit arms reuse the prefix
// layers' weights.
type VarBERTConfig struct {
	Layers int
	Hidden int
	Heads  int
	Inner  int // FFN inner width; defaults to 4*Hidden
	SeqLen int
	Batch  int
	Vocab  int
	Groups int // control-flow sites; defaults to min(6, Layers)
	Seed   uint64
	Static bool // build fixed-BERT: no control flow
}

func (c *VarBERTConfig) defaults() {
	if c.Inner == 0 {
		c.Inner = 4 * c.Hidden
	}
	if c.Vocab == 0 {
		c.Vocab = 8192
	}
	if c.Groups == 0 {
		c.Groups = 6
	}
	if c.Groups > c.Layers {
		c.Groups = c.Layers
	}
	if c.Heads == 0 {
		c.Heads = 8
	}
}

// VarBERT is the transformer-based DyNN used for the paper's headline
// capacity results (§VI-B).
type VarBERT struct {
	base
	cfg VarBERTConfig
}

// NewVarBERT builds a var-BERT (or fixed-BERT when cfg.Static).
func NewVarBERT(cfg VarBERTConfig) *VarBERT {
	cfg.defaults()
	b := newBuilder(true)
	name := "var-BERT"
	if cfg.Static {
		name = "fixed-BERT"
	}

	var elems []graph.Elem
	x, e := b.embedding("emb", cfg.Vocab, cfg.Batch, cfg.SeqLen, cfg.Hidden)
	elems = append(elems, e...)

	// Assign layers to groups as evenly as possible.
	perGroup := cfg.Layers / cfg.Groups
	extra := cfg.Layers % cfg.Groups
	layerIdx := 0
	site := 0

	buildLayers := func(x *tensor.Meta, first, count int) (*tensor.Meta, []graph.Elem) {
		var out []graph.Elem
		cur := x
		for l := first; l < first+count; l++ {
			var e []graph.Elem
			cur, e = b.transformerLayer(fmt.Sprintf("layer%d", l), cur, cfg.Heads, cfg.Inner)
			out = append(out, e...)
		}
		return cur, out
	}
	joinInto := func(prefix string, from *tensor.Meta, to *tensor.Meta) graph.Elem {
		return op("copy", to.Elems(), []*tensor.Meta{from}, []*tensor.Meta{to})
	}

	for g := 0; g < cfg.Groups; g++ {
		count := perGroup
		if g < extra {
			count++
		}
		if count == 0 {
			continue
		}
		if cfg.Static || count < 2 {
			var e []graph.Elem
			x, e = buildLayers(x, layerIdx, count)
			elems = append(elems, e...)
		} else {
			join := b.act(fmt.Sprintf("group%d.join", g), cfg.Batch, cfg.SeqLen, cfg.Hidden)
			full, fullE := buildLayers(x, layerIdx, count)
			fullE = append(b.markers(site, 0), fullE...)
			fullE = append(fullE, joinInto("join", full, join))
			halfOut, halfE := buildLayers(x, layerIdx, (count+1)/2)
			halfE = append(b.markers(site, 1), halfE...)
			halfE = append(halfE, joinInto("join", halfOut, join))
			elems = append(elems, graph.Branch{Site: site, Arms: [][]graph.Elem{fullE, halfE}})
			site++
			x = join
		}
		layerIdx += count
	}

	// LM head with tied embedding weights + loss.
	nf, e := b.norm("head.ln", x)
	elems = append(elems, e...)
	logits := b.act("head.logits", cfg.Batch, cfg.SeqLen, cfg.Vocab)
	flops := 2 * int64(cfg.Batch) * int64(cfg.SeqLen) * int64(cfg.Hidden) * int64(cfg.Vocab)
	elems = append(elems, op("matmul", flops, []*tensor.Meta{nf, b.weight("emb.table", cfg.Vocab, cfg.Hidden)}, []*tensor.Meta{logits}))
	loss := b.act("head.loss", 1)
	elems = append(elems, op("cross_entropy", 3*logits.Elems(), []*tensor.Meta{logits}, []*tensor.Meta{loss}))

	m := &VarBERT{cfg: cfg}
	m.base = base{
		name:     name,
		baseType: Transformer,
		static:   &graph.Static{ModelName: name, Elems: elems, NumSites: site},
		states:   b.states,
		reg:      b.reg,
		decider:  NewDecider(cfg.Seed+0xbe27, site),
	}
	m.finish()
	return m
}

// Config returns the instance configuration.
func (m *VarBERT) Config() VarBERTConfig { return m.cfg }

// NewFixedBERT builds the static-BERT baseline from the same config.
func NewFixedBERT(cfg VarBERTConfig) *VarBERT {
	cfg.Static = true
	return NewVarBERT(cfg)
}
