package dynn

import (
	"fmt"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
)

// UGANConfig sizes UGAN, the CNN-based GAN of Table II: a U-Net generator
// whose encoder/decoder depth adapts to the input (site 0) plus a
// discriminator with input-dependent depth (site 1).
type UGANConfig struct {
	BaseChannels int
	ImgSize      int // must be divisible by 8
	Batch        int
	Seed         uint64
}

// UGAN is the GAN-style CNN DyNN.
type UGAN struct {
	base
	cfg UGANConfig
}

// NewUGAN builds a UGAN instance.
func NewUGAN(cfg UGANConfig) *UGAN {
	b := newBuilder(true)
	c0 := cfg.BaseChannels

	var elems []graph.Elem
	x := b.input("gen.in", cfg.Batch, 3, cfg.ImgSize, cfg.ImgSize)
	stem, e := b.conv("gen.stem", x, c0, 3)
	elems = append(elems, e...)

	// uNet emits an encoder/decoder of the given depth ending in a copy to
	// join. Weights are per-level (shared between the two arms for the
	// levels they have in common).
	uNet := func(depth int, in *tensor.Meta, join *tensor.Meta) []graph.Elem {
		var out []graph.Elem
		cur := in
		var skips []*tensor.Meta
		ch := c0
		for d := 0; d < depth; d++ {
			var e []graph.Elem
			cur, e = b.conv(fmt.Sprintf("gen.down%d", d), cur, ch*2, 3)
			out = append(out, e...)
			skips = append(skips, cur)
			cur, e = b.pool(fmt.Sprintf("gen.pool%d.d%d", d, depth), cur)
			out = append(out, e...)
			ch *= 2
		}
		for d := depth - 1; d >= 0; d-- {
			up := b.act(fmt.Sprintf("gen.up%d.d%d", d, depth), cur.Shape[0], cur.Shape[1], cur.Shape[2]*2, cur.Shape[3]*2)
			out = append(out, op("conv_transpose", 2*up.Elems()*int64(cur.Shape[1]), []*tensor.Meta{cur}, []*tensor.Meta{up}))
			merged := b.act(fmt.Sprintf("gen.cat%d.d%d", d, depth), up.Shape[0], up.Shape[1]+skips[d].Shape[1], up.Shape[2], up.Shape[3])
			out = append(out, op("concat", merged.Elems(), []*tensor.Meta{up, skips[d]}, []*tensor.Meta{merged}))
			var e []graph.Elem
			cur, e = b.conv(fmt.Sprintf("gen.dec%d", d), merged, max(ch/2, c0), 3)
			out = append(out, e...)
			ch /= 2
		}
		out = append(out, op("copy", join.Elems(), []*tensor.Meta{cur}, []*tensor.Meta{join}))
		return out
	}

	genJoin := b.act("gen.join", cfg.Batch, c0, cfg.ImgSize, cfg.ImgSize)
	elems = append(elems, graph.Branch{Site: 0, Arms: [][]graph.Elem{
		append(b.markers(0, 0), uNet(2, stem, genJoin)...),
		append(b.markers(0, 1), uNet(3, stem, genJoin)...),
	}})

	img, e := b.conv("gen.out", genJoin, 3, 3)
	elems = append(elems, e...)

	// Discriminator with adaptive depth.
	disc := func(depth int, in *tensor.Meta, join *tensor.Meta) []graph.Elem {
		var out []graph.Elem
		cur := in
		ch := c0
		for d := 0; d < depth; d++ {
			var e []graph.Elem
			cur, e = b.conv(fmt.Sprintf("disc.conv%d", d), cur, ch, 3)
			out = append(out, e...)
			cur, e = b.pool(fmt.Sprintf("disc.pool%d.d%d", d, depth), cur)
			out = append(out, e...)
			ch *= 2
		}
		score, e := b.linear(fmt.Sprintf("disc.head.d%d", depth), cur, 1)
		out = append(out, e...)
		out = append(out, op("copy", join.Elems(), []*tensor.Meta{score}, []*tensor.Meta{join}))
		return out
	}
	discJoin := b.act("disc.join", cfg.Batch, 1)
	elems = append(elems, graph.Branch{Site: 1, Arms: [][]graph.Elem{
		append(b.markers(1, 0), disc(2, img, discJoin)...),
		append(b.markers(1, 1), disc(3, img, discJoin)...),
	}})

	loss := b.act("loss", 1)
	elems = append(elems, op("mse_loss", discJoin.Elems(), []*tensor.Meta{discJoin}, []*tensor.Meta{loss}))

	m := &UGAN{cfg: cfg}
	m.base = base{
		name:     "UGAN",
		baseType: CNN,
		static:   &graph.Static{ModelName: "UGAN", Elems: elems, NumSites: 2},
		states:   b.states,
		reg:      b.reg,
		decider:  NewDecider(cfg.Seed+0x06a2, 2),
	}
	m.finish()
	return m
}

// Config returns the instance configuration.
func (m *UGAN) Config() UGANConfig { return m.cfg }
