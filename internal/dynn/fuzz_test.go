package dynn

import (
	"sync"
	"testing"

	"dynnoffload/internal/graph"
)

var (
	fuzzOnce   sync.Once
	fuzzModels []Model
)

// fuzzZoo builds every zoo workload once per fuzz binary (batch 1, fixed
// seed) so iterations only pay for resolution, not graph construction. The
// set includes the static baselines: their zero-site graphs exercise the
// empty-decision edge cases.
func fuzzZoo() []Model {
	fuzzOnce.Do(func() {
		for _, entry := range Zoo() {
			fuzzModels = append(fuzzModels, entry.New(1, 7))
		}
	})
	return fuzzModels
}

// checkResolved asserts the structural invariants of a successful resolution:
// the op sequence is non-empty, bookkeeping aggregates agree with it, and
// every reached site holds an in-range decision.
func checkResolved(t *testing.T, s *graph.Static, r *graph.Resolved) {
	t.Helper()
	if len(r.Ops) == 0 {
		t.Fatal("resolved graph has no operators")
	}
	if len(r.Reached) != s.NumSites || len(r.Decisions) != s.NumSites {
		t.Fatalf("reached/decisions lengths (%d, %d) != NumSites %d",
			len(r.Reached), len(r.Decisions), s.NumSites)
	}
	if st := r.Stats(); st.OpCount != len(r.Ops) {
		t.Fatalf("Stats().OpCount %d != len(Ops) %d", st.OpCount, len(r.Ops))
	}
	if r.TotalFLOPs() < 0 {
		t.Fatal("negative total FLOPs")
	}
	if bits := r.ControlBits(s); len(bits) != s.NumSites {
		t.Fatalf("ControlBits length %d != NumSites %d", len(bits), s.NumSites)
	}
	ranges := s.DecisionRange()
	for site, reached := range r.Reached {
		if reached && (r.Decisions[site] < 0 || r.Decisions[site] >= ranges[site]) {
			t.Fatalf("site %d reached with out-of-range decision %d (range %d)",
				site, r.Decisions[site], ranges[site])
		}
	}
}

// FuzzResolve drives graph.Resolve with arbitrary decision vectors over the
// full model zoo, plus the model's own ground-truth sample resolution. The
// contract under fuzzing: Resolve never panics — malformed vectors (wrong
// length, out-of-range sites) come back as errors, in-range vectors and
// ground-truth decisions always produce a structurally consistent Resolved.
func FuzzResolve(f *testing.F) {
	f.Add(byte(0), []byte{}, []byte("the quick brown fox"))
	f.Add(byte(1), []byte{0, 1, 2, 3, 0, 1, 2, 3}, []byte{9, 9, 9})
	f.Add(byte(2), []byte{0xff, 0x80, 0x7f}, []byte{})
	f.Add(byte(7), []byte{1}, []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, sel byte, dec []byte, tok []byte) {
		m := fuzzZoo()[int(sel)%len(fuzzZoo())]
		s := m.Static()
		ranges := s.DecisionRange()

		// Raw bytes as a decision vector, length and values arbitrary
		// (int8 so negatives are covered). Errors are fine; panics are not.
		raw := make([]int, len(dec))
		for i, b := range dec {
			raw[i] = int(int8(b))
		}
		if r, err := graph.Resolve(s, raw); err == nil {
			checkResolved(t, s, r)
		}

		// The same bytes fitted to the site count and clamped into each
		// site's valid range: resolution must succeed.
		fitted := make([]int, s.NumSites)
		for i := range fitted {
			v := 0
			if i < len(dec) {
				v = int(dec[i])
			}
			if ranges[i] > 0 {
				v %= ranges[i]
			}
			fitted[i] = v
		}
		r, err := graph.Resolve(s, fitted)
		if err != nil {
			t.Fatalf("%s: in-range decisions rejected: %v", m.Name(), err)
		}
		checkResolved(t, s, r)

		// Ground-truth path: the builder's Decider must always emit a
		// decision vector its own static graph accepts, for any token
		// sequence (including empty).
		tokens := make([]int, len(tok))
		for i, b := range tok {
			tokens[i] = int(b) * 31 // spread beyond [0,255]
		}
		smp := &Sample{ID: 1, Tokens: tokens, Embed: EmbedTokens(tokens)}
		gt, err := m.Resolve(smp)
		if err != nil {
			t.Fatalf("%s: ground-truth decisions rejected: %v", m.Name(), err)
		}
		checkResolved(t, s, gt)
	})
}
