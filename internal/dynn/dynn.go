// Package dynn is the dynamic-neural-network model zoo (paper Table II):
// Tree-CNN, Tree-LSTM, var-BERT, var-LSTM, MoE, UGAN, an AlphaFold-style
// evoformer, and the static baselines fixed-BERT and fixed-LSTM. Each model
// produces a static architecture (operators + control-flow sites) and
// resolves it per input sample with ground-truth control decisions that are
// deterministic, *learnable* functions of the sample embedding — the paper's
// premise that "the input sample provides indications" of the dynamism, which
// PGO cannot exploit but a pilot model can learn.
//
// The zoo replaces PyTorch model implementations: offloading policies only
// observe the operator/tensor stream, which the zoo reproduces with realistic
// per-operator FLOPs and tensor shapes (see DESIGN.md §2).
package dynn

import (
	"fmt"
	"math"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/mathx"
	"dynnoffload/internal/tensor"
)

// BaseType is the basic NN type of a DyNN (§IV-C): it selects which of the
// pilot model's three parallel MLPs handles the sample.
type BaseType int

const (
	CNN BaseType = iota
	LSTM
	Transformer

	NumBaseTypes = 3
)

func (b BaseType) String() string {
	switch b {
	case CNN:
		return "cnn"
	case LSTM:
		return "lstm"
	case Transformer:
		return "transformer"
	}
	return fmt.Sprintf("basetype(%d)", int(b))
}

// EmbedDim is the fixed embedding width the pilot model consumes. The paper
// re-directs the DyNN's own embedding output to the pilot (§IV-C
// "embedding re-direction"); here the sample generator plays the embedding
// kernel's role.
const EmbedDim = 32

// Sample is one DyNN training sample: a token sequence plus its embedding.
type Sample struct {
	ID     int
	Tokens []int
	Embed  []float64 // length EmbedDim
}

// embedTable is the shared token-embedding table (the DyNN's embedding layer
// whose output is re-directed to the pilot model). Fixed seed: embeddings
// are a property of the vocabulary, not of any experiment.
var embedTable = buildEmbedTable(4096, 0xe5bed)

func buildEmbedTable(vocab int, seed uint64) [][]float64 {
	rng := mathx.NewRNG(seed)
	t := make([][]float64, vocab)
	for i := range t {
		t[i] = make([]float64, EmbedDim)
		rng.NormVec(t[i], 1)
	}
	return t
}

// Vocab is the synthetic vocabulary size.
func Vocab() int { return len(embedTable) }

// EmbedTokens computes the bag-of-tokens embedding of a token sequence: the
// mean of the token vectors, with the last two features replaced by
// normalized length and type/token ratio (structure hints).
func EmbedTokens(tokens []int) []float64 {
	e := make([]float64, EmbedDim)
	if len(tokens) == 0 {
		return e
	}
	for _, t := range tokens {
		v := embedTable[t%len(embedTable)]
		for j := range e {
			e[j] += v[j]
		}
	}
	inv := 1 / float64(len(tokens))
	for j := range e {
		e[j] *= inv
	}
	distinct := map[int]bool{}
	for _, t := range tokens {
		distinct[t] = true
	}
	e[EmbedDim-2] = float64(len(tokens)) / 128.0
	e[EmbedDim-1] = float64(len(distinct)) / float64(len(tokens))
	return e
}

// GenerateSamples builds n seeded samples with lengths in [minLen, maxLen].
// Token distributions are Zipf-ish (small IDs more common) so samples differ
// structurally, like natural-language corpora.
func GenerateSamples(seed uint64, n, minLen, maxLen int) []*Sample {
	rng := mathx.NewRNG(seed)
	out := make([]*Sample, n)
	for i := range out {
		r := rng.Fork(uint64(i))
		length := minLen
		if maxLen > minLen {
			length += r.Intn(maxLen - minLen + 1)
		}
		tokens := make([]int, length)
		for j := range tokens {
			// Zipf-like: squash a uniform draw.
			u := r.Float64()
			tokens[j] = int(u * u * float64(Vocab()-1))
		}
		out[i] = &Sample{ID: i, Tokens: tokens, Embed: EmbedTokens(tokens)}
	}
	return out
}

// Decider maps a sample embedding to ground-truth control decisions: each
// site has a fixed random linear boundary over the embedding. The mapping is
// deterministic per (model seed, site) — exactly the structure the paper's
// pilot model exploits — while appearing irregular to profiling (Table I).
type Decider struct {
	w    [][]float64
	bias []float64
}

// decisionGain spreads the sigmoid of the linear score so decisions use the
// full arm range across realistic embedding magnitudes.
const decisionGain = 2.5

// NewDecider builds per-site boundaries for numSites control sites.
func NewDecider(seed uint64, numSites int) *Decider {
	rng := mathx.NewRNG(seed)
	d := &Decider{
		w:    make([][]float64, numSites),
		bias: make([]float64, numSites),
	}
	for i := range d.w {
		d.w[i] = make([]float64, EmbedDim)
		r := rng.Fork(uint64(i))
		r.NormVec(d.w[i], 1)
		d.bias[i] = r.Norm() * 0.3
	}
	return d
}

// Score returns the raw linear score for a site.
func (d *Decider) Score(site int, embed []float64) float64 {
	return (mathx.Dot(d.w[site], embed) + d.bias[site]) * decisionGain
}

// Decide returns the decision vector for a sample given the per-site
// decision ranges.
func (d *Decider) Decide(embed []float64, ranges []int) []int {
	out := make([]int, len(ranges))
	for site, r := range ranges {
		if r <= 1 {
			out[site] = 0
			continue
		}
		p := 1 / (1 + math.Exp(-d.Score(site, embed)))
		arm := int(p * float64(r))
		if arm >= r {
			arm = r - 1
		}
		out[site] = arm
	}
	return out
}

// Model is one zoo entry.
type Model interface {
	// Name returns the workload name as in Table II (e.g. "var-BERT").
	Name() string
	// Base returns the basic NN type, one of the pilot's three MLPs.
	Base() BaseType
	// Static returns the static architecture (shared across samples).
	Static() *graph.Static
	// WeightStates returns the persistent per-weight training state.
	WeightStates() []*graph.WeightState
	// Registry returns the tensor registry used by this model instance.
	Registry() *tensor.Registry
	// Decide returns the ground-truth control decisions for a sample.
	Decide(s *Sample) []int
	// Resolve linearizes the forward graph for a sample.
	Resolve(s *Sample) (*graph.Resolved, error)
	// Dynamic reports whether the model has any control-flow sites.
	Dynamic() bool
}

// base carries the shared Model implementation.
type base struct {
	name     string
	baseType BaseType
	static   *graph.Static
	states   []*graph.WeightState
	reg      *tensor.Registry
	decider  *Decider
	ranges   []int
}

func (b *base) Name() string                       { return b.name }
func (b *base) Base() BaseType                     { return b.baseType }
func (b *base) Static() *graph.Static              { return b.static }
func (b *base) WeightStates() []*graph.WeightState { return b.states }
func (b *base) Registry() *tensor.Registry         { return b.reg }
func (b *base) Dynamic() bool                      { return b.static.NumSites > 0 }

func (b *base) Decide(s *Sample) []int {
	if b.static.NumSites == 0 {
		return nil
	}
	return b.decider.Decide(s.Embed, b.ranges)
}

func (b *base) Resolve(s *Sample) (*graph.Resolved, error) {
	return graph.Resolve(b.static, b.Decide(s))
}

// finish validates the static architecture and caches decision ranges.
func (b *base) finish() {
	if err := b.static.Validate(); err != nil {
		panic(fmt.Sprintf("dynn: %s: %v", b.name, err)) //dynnlint:ignore panicfree invalid static graph is a model-definition bug caught when the zoo is built
	}
	b.ranges = b.static.DecisionRange()
}

// ParamCount sums weight elements across a model's weight states.
func ParamCount(m Model) int64 {
	var n int64
	for _, ws := range m.WeightStates() {
		n += ws.Weight.Elems()
	}
	return n
}

// StateBytes sums persistent training-state bytes (weights, gradients,
// optimizer moments) — the memory DTR cannot evict and ZeRO offloads.
func StateBytes(m Model) int64 {
	var n int64
	for _, ws := range m.WeightStates() {
		n += ws.Bytes()
	}
	return n
}
