package dynn

import (
	"testing"
	"testing/quick"

	"dynnoffload/internal/graph"
)

func TestGenerateSamplesDeterministic(t *testing.T) {
	a := GenerateSamples(7, 50, 8, 32)
	b := GenerateSamples(7, 50, 8, 32)
	if len(a) != 50 {
		t.Fatalf("got %d samples", len(a))
	}
	for i := range a {
		if len(a[i].Tokens) != len(b[i].Tokens) {
			t.Fatal("same seed produced different samples")
		}
		for j := range a[i].Tokens {
			if a[i].Tokens[j] != b[i].Tokens[j] {
				t.Fatal("token mismatch")
			}
		}
	}
	c := GenerateSamples(8, 50, 8, 32)
	diff := false
	for i := range a {
		if len(a[i].Tokens) != len(c[i].Tokens) {
			diff = true
			break
		}
	}
	if !diff {
		// Very unlikely all lengths coincide; check contents.
		for i := range a {
			for j := range a[i].Tokens {
				if j < len(c[i].Tokens) && a[i].Tokens[j] != c[i].Tokens[j] {
					diff = true
				}
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical corpora")
	}
}

func TestSampleLengthBounds(t *testing.T) {
	f := func(seed uint64) bool {
		for _, s := range GenerateSamples(seed, 20, 5, 9) {
			if len(s.Tokens) < 5 || len(s.Tokens) > 9 {
				return false
			}
			if len(s.Embed) != EmbedDim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEmbedTokens(t *testing.T) {
	e := EmbedTokens(nil)
	if len(e) != EmbedDim {
		t.Fatal("wrong embed width")
	}
	for _, v := range e {
		if v != 0 {
			t.Error("empty sequence must embed to zero")
		}
	}
	e1 := EmbedTokens([]int{1, 2, 3})
	e2 := EmbedTokens([]int{1, 2, 3})
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Error("embedding not deterministic")
		}
	}
}

func TestDeciderDeterministicAndDiverse(t *testing.T) {
	d := NewDecider(3, 6)
	ranges := []int{2, 2, 2, 4, 3, 2}
	samples := GenerateSamples(11, 200, 8, 48)
	first := d.Decide(samples[0].Embed, ranges)
	again := d.Decide(samples[0].Embed, ranges)
	for i := range first {
		if first[i] != again[i] {
			t.Fatal("decisions not deterministic")
		}
		if first[i] < 0 || first[i] >= ranges[i] {
			t.Fatalf("decision %d out of range", i)
		}
	}
	// Across many samples every site should see >1 distinct value.
	for site := range ranges {
		seen := map[int]bool{}
		for _, s := range samples {
			seen[d.Decide(s.Embed, ranges)[site]] = true
		}
		if len(seen) < 2 {
			t.Errorf("site %d is constant across samples — dynamism too weak", site)
		}
	}
}

func TestZooModelsBuildAndResolve(t *testing.T) {
	samples := GenerateSamples(5, 20, 8, 40)
	for _, entry := range Zoo() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			m := entry.New(2, 9)
			if m.Name() != entry.Name {
				t.Errorf("name %q != %q", m.Name(), entry.Name)
			}
			if err := m.Static().Validate(); err != nil {
				t.Fatalf("static invalid: %v", err)
			}
			if m.Dynamic() != entry.Dynamic {
				t.Errorf("Dynamic() = %v, want %v", m.Dynamic(), entry.Dynamic)
			}
			if ParamCount(m) <= 0 || StateBytes(m) <= 0 {
				t.Error("model must have parameters")
			}
			// StateBytes = 16 bytes/param with Adam (fp32 w + grad + m + v).
			if StateBytes(m) != 16*ParamCount(m) {
				t.Errorf("state bytes %d != 16*params %d", StateBytes(m), 16*ParamCount(m))
			}
			keys := map[string]bool{}
			for _, s := range samples {
				r, err := m.Resolve(s)
				if err != nil {
					t.Fatalf("resolve: %v", err)
				}
				if len(r.Ops) == 0 {
					t.Fatal("empty resolution")
				}
				keys[pathKeyForTest(r)] = true
			}
			if entry.Dynamic && len(keys) < 2 {
				t.Errorf("only %d distinct paths over 20 samples", len(keys))
			}
			if !entry.Dynamic && len(keys) != 1 {
				t.Errorf("static model resolved to %d paths", len(keys))
			}
		})
	}
}

func pathKeyForTest(r *graph.Resolved) string {
	key := make([]byte, 0, len(r.Decisions)*2)
	for site, d := range r.Decisions {
		if !r.Reached[site] {
			key = append(key, '-')
		} else {
			key = append(key, byte('0'+d))
		}
		key = append(key, ',')
	}
	return string(key)
}

func TestZooPathEnumerationBounded(t *testing.T) {
	for _, entry := range Zoo() {
		if !entry.Dynamic {
			continue
		}
		m := entry.New(1, 2)
		paths, err := graph.EnumeratePaths(m.Static())
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if len(paths) < 2 || len(paths) > 1024 {
			t.Errorf("%s: %d paths (want small, >1)", entry.Name, len(paths))
		}
	}
}

func TestZooPathsHaveDistinctRecords(t *testing.T) {
	// Every resolution path must have a distinct aggregate bookkeeping
	// record — the property the §IV-B output→path mapping relies on.
	for _, entry := range Zoo() {
		if !entry.Dynamic {
			continue
		}
		m := entry.New(1, 2)
		paths, err := graph.EnumeratePaths(m.Static())
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		seen := map[string]string{}
		for _, p := range paths {
			k := statsKey(p.Stats)
			if prev, dup := seen[k]; dup {
				t.Errorf("%s: paths %v and %v share a bookkeeping record", entry.Name, prev, pathKeyForTest(p.Resolved))
			}
			seen[k] = pathKeyForTest(p.Resolved)
		}
	}
}

func statsKey(s graph.Stats) string {
	b := make([]byte, 0, 64)
	b = appendInt(b, int64(s.OpCount))
	for _, v := range s.Sig {
		b = appendInt(b, int64(v))
	}
	return string(b)
}

func appendInt(b []byte, v int64) []byte {
	for v > 0 {
		b = append(b, byte('0'+v%10))
		v /= 10
	}
	return append(b, '|')
}

func TestZooModel(t *testing.T) {
	m, err := ZooModel("var-BERT", 2, 3)
	if err != nil || m.Name() != "var-BERT" {
		t.Fatalf("ZooModel: %v", err)
	}
	if _, err := ZooModel("nope", 2, 3); err == nil {
		t.Error("unknown model must error")
	}
}

func TestDynamicZoo(t *testing.T) {
	for _, e := range DynamicZoo() {
		if !e.Dynamic {
			t.Errorf("%s in DynamicZoo but static", e.Name)
		}
	}
}

func TestVarBERTBatchScalesActivations(t *testing.T) {
	m1 := NewVarBERT(VarBERTConfig{Layers: 4, Hidden: 64, SeqLen: 16, Batch: 1, Seed: 1})
	m4 := NewVarBERT(VarBERTConfig{Layers: 4, Hidden: 64, SeqLen: 16, Batch: 4, Seed: 1})
	if ParamCount(m1) != ParamCount(m4) {
		t.Error("batch must not change parameter count")
	}
	s := GenerateSamples(1, 1, 8, 16)[0]
	r1, _ := m1.Resolve(s)
	r4, _ := m4.Resolve(s)
	if r4.TotalFLOPs() <= r1.TotalFLOPs() {
		t.Error("larger batch must increase FLOPs")
	}
}

func TestWeightSharingAcrossArms(t *testing.T) {
	// var-LSTM buckets share cell weights: parameter count must not grow
	// with the number of buckets.
	a := NewVarLSTM(VarLSTMConfig{Hidden: 32, Buckets: []int{4, 8}, Batch: 1, Seed: 1})
	b := NewVarLSTM(VarLSTMConfig{Hidden: 32, Buckets: []int{4, 8, 12, 16}, Batch: 1, Seed: 1})
	if ParamCount(b) != ParamCount(a) {
		t.Errorf("bucket count changed params: %d vs %d", ParamCount(a), ParamCount(b))
	}
}

func TestAlphaFoldRecyclingWeightsShared(t *testing.T) {
	m := NewAlphaFold(AlphaFoldConfig{Blocks: 2, SeqLen: 16, MSADim: 8, PairDim: 8, Batch: 1, Seed: 1})
	s := GenerateSamples(2, 30, 8, 40)
	// Different recycle counts give different op counts but same params.
	lengths := map[int]bool{}
	for _, smp := range s {
		r, err := m.Resolve(smp)
		if err != nil {
			t.Fatal(err)
		}
		lengths[len(r.Ops)] = true
	}
	if len(lengths) < 2 {
		t.Error("recycling count never varied")
	}
}

func TestControlBitsVary(t *testing.T) {
	// Table I's premise: control vectors diverge across samples.
	m := NewTreeLSTM(TreeLSTMConfig{Levels: 6, Hidden: 16, SeqLen: 8, Batch: 1, Seed: 3})
	samples := GenerateSamples(13, 100, 8, 48)
	distinct := map[string]bool{}
	for _, s := range samples {
		r, _ := m.Resolve(s)
		bits := r.ControlBits(m.Static())
		k := ""
		for _, b := range bits {
			if b {
				k += "1"
			} else {
				k += "0"
			}
		}
		distinct[k] = true
	}
	if len(distinct) < 10 {
		t.Errorf("only %d distinct control vectors in 100 samples", len(distinct))
	}
}

func TestWeightReuseShapeMismatchPanics(t *testing.T) {
	b := newBuilder(true)
	b.weight("w", 2, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	b.weight("w", 3, 2)
}

func TestFixedBERTIsStatic(t *testing.T) {
	m := NewFixedBERT(VarBERTConfig{Layers: 4, Hidden: 64, SeqLen: 8, Batch: 1, Seed: 1})
	if m.Dynamic() {
		t.Error("fixed-BERT must be static")
	}
	if m.Static().NumSites != 0 {
		t.Errorf("fixed-BERT has %d sites", m.Static().NumSites)
	}
	if m.Decide(GenerateSamples(1, 1, 8, 8)[0]) != nil {
		t.Error("static model must have nil decisions")
	}
}

func TestVarBERTSharesPrefixWeightsAcrossArms(t *testing.T) {
	// Early-exit arms reuse the full arm's prefix layers, so a dynamic
	// var-BERT has the same parameter count as its static twin.
	d := NewVarBERT(VarBERTConfig{Layers: 6, Hidden: 64, SeqLen: 8, Batch: 1, Groups: 3, Seed: 1})
	s := NewFixedBERT(VarBERTConfig{Layers: 6, Hidden: 64, SeqLen: 8, Batch: 1, Groups: 3, Seed: 1})
	if ParamCount(d) != ParamCount(s) {
		t.Errorf("params differ: dynamic %d vs static %d", ParamCount(d), ParamCount(s))
	}
}
