package dynn

import (
	"fmt"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/idiom"
	"dynnoffload/internal/tensor"
)

// builder accumulates operators, weights and training state while a model
// constructor assembles its static architecture. Weights are cached by name
// so branch arms and unrolled timesteps can share parameters (a weight named
// once is one tensor however many ops reference it).
type builder struct {
	reg     *tensor.Registry
	weights map[string]*tensor.Meta
	states  []*graph.WeightState
	adam    bool
}

func newBuilder(adam bool) *builder {
	return &builder{reg: &tensor.Registry{}, weights: map[string]*tensor.Meta{}, adam: adam}
}

// weight returns the named weight tensor, creating it (and its training
// state) on first use.
func (b *builder) weight(name string, shape ...int) *tensor.Meta {
	if w, ok := b.weights[name]; ok {
		if len(w.Shape) != len(shape) {
			panic(fmt.Sprintf("dynn: weight %q reused with rank %d, was %d", name, len(shape), len(w.Shape))) //dynnlint:ignore panicfree weight reuse with new shape is a model-definition bug; builders fail fast
		}
		for i, d := range shape {
			if w.Shape[i] != d {
				panic(fmt.Sprintf("dynn: weight %q reused with shape %v, was %v", name, shape, w.Shape)) //dynnlint:ignore panicfree weight reuse with new shape is a model-definition bug; builders fail fast
			}
		}
		return w
	}
	w := b.reg.New(name, tensor.Weight, tensor.F32, shape...)
	b.weights[name] = w
	b.states = append(b.states, graph.NewWeightState(b.reg, w, b.adam))
	return w
}

// act creates a fresh activation tensor.
func (b *builder) act(name string, shape ...int) *tensor.Meta {
	return b.reg.New(name, tensor.Activation, tensor.F32, shape...)
}

// input creates an input tensor (not trainable, not rematerializable).
func (b *builder) input(name string, shape ...int) *tensor.Meta {
	return b.reg.New(name, tensor.Input, tensor.F32, shape...)
}

// op appends one operator element.
func op(name string, flops int64, ins []*tensor.Meta, outs []*tensor.Meta) graph.Elem {
	return graph.OpElem{Op: graph.NewOp(name, flops, ins, outs)}
}

// seq is a convenience for building element lists.
func seq(elems ...graph.Elem) []graph.Elem { return elems }

// linear emits y = act(x·W + bias): matmul + bias_add, returning the output
// activation. x has shape [batch, seqLen, in] (seqLen may be 1).
func (b *builder) linear(prefix string, x *tensor.Meta, out int) (*tensor.Meta, []graph.Elem) {
	shape := x.Shape
	in := shape[len(shape)-1]
	rows := int64(1)
	for _, d := range shape[:len(shape)-1] {
		rows *= int64(d)
	}
	w := b.weight(prefix+".w", in, out)
	bias := b.weight(prefix+".b", out)
	outShape := append(append([]int{}, shape[:len(shape)-1]...), out)
	y := b.act(prefix+".y", outShape...)
	elems := []graph.Elem{
		op("matmul", 2*rows*int64(in)*int64(out), []*tensor.Meta{x, w}, []*tensor.Meta{y}),
		op("bias_add", rows*int64(out), []*tensor.Meta{y, bias}, []*tensor.Meta{y}),
	}
	return y, elems
}

// activationOp emits an element-wise nonlinearity in place.
func (b *builder) activationOp(name string, x *tensor.Meta) []graph.Elem {
	return seq(op(name, x.Elems(), []*tensor.Meta{x}, []*tensor.Meta{x}))
}

// norm emits a layernorm with learned scale/shift.
func (b *builder) norm(prefix string, x *tensor.Meta) (*tensor.Meta, []graph.Elem) {
	dim := x.Shape[len(x.Shape)-1]
	gamma := b.weight(prefix+".gamma", dim)
	beta := b.weight(prefix+".beta", dim)
	y := b.act(prefix+".y", x.Shape...)
	return y, seq(op("layernorm", 5*x.Elems(), []*tensor.Meta{x, gamma, beta}, []*tensor.Meta{y}))
}

// residual emits y = x + r.
func (b *builder) residual(prefix string, x, r *tensor.Meta) (*tensor.Meta, []graph.Elem) {
	y := b.act(prefix+".y", x.Shape...)
	return y, seq(op("residual_add", x.Elems(), []*tensor.Meta{x, r}, []*tensor.Meta{y}))
}

// attention emits a standard multi-head self-attention over x with shape
// [batch, seq, hidden]: QKV projections, scores, softmax, context, output
// projection, residual.
func (b *builder) attention(prefix string, x *tensor.Meta, heads int) (*tensor.Meta, []graph.Elem) {
	shape := x.Shape
	batch, seqLen, hidden := shape[0], shape[1], shape[2]
	var elems []graph.Elem

	q, e := b.linear(prefix+".q", x, hidden)
	elems = append(elems, e...)
	k, e := b.linear(prefix+".k", x, hidden)
	elems = append(elems, e...)
	v, e := b.linear(prefix+".v", x, hidden)
	elems = append(elems, e...)

	scores := b.act(prefix+".scores", batch, heads, seqLen, seqLen)
	flopsScores := 2 * int64(batch) * int64(seqLen) * int64(seqLen) * int64(hidden)
	elems = append(elems, op("attention_scores", flopsScores, []*tensor.Meta{q, k}, []*tensor.Meta{scores}))
	elems = append(elems, op("attention_softmax", 5*scores.Elems(), []*tensor.Meta{scores}, []*tensor.Meta{scores}))
	ctx := b.act(prefix+".ctx", batch, seqLen, hidden)
	elems = append(elems, op("attention_context", flopsScores, []*tensor.Meta{scores, v}, []*tensor.Meta{ctx}))

	o, e := b.linear(prefix+".o", ctx, hidden)
	elems = append(elems, e...)
	res, e := b.residual(prefix+".res", o, x)
	elems = append(elems, e...)
	return res, elems
}

// ffn emits the transformer feed-forward block: linear(4h) + gelu +
// linear(h) + residual.
func (b *builder) ffn(prefix string, x *tensor.Meta, inner int) (*tensor.Meta, []graph.Elem) {
	var elems []graph.Elem
	h1, e := b.linear(prefix+".fc1", x, inner)
	elems = append(elems, e...)
	elems = append(elems, b.activationOp("gelu", h1)...)
	h2, e := b.linear(prefix+".fc2", h1, x.Shape[len(x.Shape)-1])
	elems = append(elems, e...)
	res, e := b.residual(prefix+".res", h2, x)
	elems = append(elems, e...)
	return res, elems
}

// transformerLayer emits norm+attention+norm+ffn for layer `idx`.
func (b *builder) transformerLayer(prefix string, x *tensor.Meta, heads, inner int) (*tensor.Meta, []graph.Elem) {
	var elems []graph.Elem
	n1, e := b.norm(prefix+".ln1", x)
	elems = append(elems, e...)
	a, e := b.attention(prefix+".attn", n1, heads)
	elems = append(elems, e...)
	n2, e := b.norm(prefix+".ln2", a)
	elems = append(elems, e...)
	f, e := b.ffn(prefix+".ffn", n2, inner)
	elems = append(elems, e...)
	return f, elems
}

// embedding emits the token-embedding lookup producing [batch, seq, hidden].
func (b *builder) embedding(prefix string, vocab, batch, seqLen, hidden int) (*tensor.Meta, []graph.Elem) {
	tok := b.input(prefix+".tokens", batch, seqLen)
	table := b.weight(prefix+".table", vocab, hidden)
	y := b.act(prefix+".emb", batch, seqLen, hidden)
	return y, seq(op("embedding", y.Elems(), []*tensor.Meta{tok, table}, []*tensor.Meta{y}))
}

// conv emits a conv2d over [batch, c, h, w] producing outC channels, plus a
// ReLU, as the zoo's CNN building block.
func (b *builder) conv(prefix string, x *tensor.Meta, outC, kernel int) (*tensor.Meta, []graph.Elem) {
	shape := x.Shape
	if len(shape) != 4 {
		panic(fmt.Sprintf("dynn: conv input must be 4-D, got %v", shape)) //dynnlint:ignore panicfree non-4D conv input is a model-definition bug; builders fail fast
	}
	batch, inC, h, w := shape[0], shape[1], shape[2], shape[3]
	k := b.weight(prefix+".k", outC, inC, kernel, kernel)
	y := b.act(prefix+".y", batch, outC, h, w)
	flops := 2 * int64(batch) * int64(outC) * int64(inC) * int64(h) * int64(w) * int64(kernel*kernel)
	elems := seq(op("conv2d", flops, []*tensor.Meta{x, k}, []*tensor.Meta{y}))
	elems = append(elems, b.activationOp("relu", y)...)
	return y, elems
}

// pool emits a 2x2 max-pool halving spatial dims.
func (b *builder) pool(prefix string, x *tensor.Meta) (*tensor.Meta, []graph.Elem) {
	shape := x.Shape
	y := b.act(prefix+".y", shape[0], shape[1], shape[2]/2, shape[3]/2)
	return y, seq(op("maxpool", x.Elems(), []*tensor.Meta{x}, []*tensor.Meta{y}))
}

// marker emits the routing-metadata operator that makes a (site, arm) choice
// structurally observable in the bookkeeping record: the width of its int8
// metadata tensor encodes the decision positionally (base 5 within one of the
// three dimension columns of the nine-element signature), so every resolution
// path of a model has a bookkeeping record that differs from every other
// path's by a large margin — which is what makes the §IV-B output→path
// mapping well-defined and robust to pilot regression noise. Real DyNN branch
// arms differ in operator structure (different node CNNs, expert widths,
// unroll lengths); this makes the same true for arms that would otherwise be
// shape-identical, at negligible memory cost (int8, ≤400 KiB).
// markers emits (arm+1) router-operator instances for a control site. Each
// site owns one idiom column (site mod 6): the router ops concentrate their
// idiom counts there, so the arm choice is legible in execution-block
// descriptors with per-column separation independent of other sites.
func (b *builder) markers(site, arm int) []graph.Elem {
	name := idiom.RouterOpNames[site%idiom.NumIdioms]
	out := make([]graph.Elem, 0, arm+1)
	for k := 0; k <= arm; k++ {
		t := b.reg.New(fmt.Sprintf("ctl.s%d.a%d.%d", site, arm, k), tensor.Input, tensor.I8, 16)
		o := b.act(fmt.Sprintf("ctl.s%d.a%d.%d.out", site, arm, k), 1)
		out = append(out, op(name, 16, []*tensor.Meta{t}, []*tensor.Meta{o}))
	}
	return out
}

// lstmStep emits one LSTM timestep over [batch, hidden] given input xt and
// previous cell state, returning the new hidden state.
func (b *builder) lstmStep(prefix string, xt, hPrev *tensor.Meta, hidden int) (*tensor.Meta, []graph.Elem) {
	batch := xt.Shape[0]
	in := xt.Shape[len(xt.Shape)-1]
	w := b.weight(prefix+".w", in+hidden, 4*hidden)
	hNext := b.act(prefix+".h", batch, hidden)
	flops := 2 * int64(batch) * int64(in+hidden) * int64(4*hidden)
	return hNext, seq(op("lstm_cell", flops, []*tensor.Meta{xt, hPrev, w}, []*tensor.Meta{hNext}))
}
