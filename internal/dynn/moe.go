package dynn

import (
	"fmt"

	"dynnoffload/internal/graph"
	"dynnoffload/internal/tensor"
)

// MoEConfig sizes a switch-style mixture-of-experts transformer (the paper's
// §I cites switch-MoE as a memory-hungry DyNN class, and GLaM as the
// large-model motivation). Every MoE layer routes each batch through exactly
// one of Experts expert FFNs; the router's choice is the control flow.
type MoEConfig struct {
	Layers  int // MoE layers = control-flow sites
	Hidden  int
	Heads   int
	Experts int
	SeqLen  int
	Batch   int
	Seed    uint64
}

func (c *MoEConfig) defaults() {
	if c.Experts < 2 {
		c.Experts = 4
	}
	if c.Heads == 0 {
		c.Heads = 8
	}
}

// MoE is the mixture-of-experts DyNN.
type MoE struct {
	base
	cfg MoEConfig
}

// NewMoE builds an MoE instance.
func NewMoE(cfg MoEConfig) *MoE {
	cfg.defaults()
	b := newBuilder(true)

	var elems []graph.Elem
	x, e := b.embedding("emb", 8192, cfg.Batch, cfg.SeqLen, cfg.Hidden)
	elems = append(elems, e...)

	for l := 0; l < cfg.Layers; l++ {
		prefix := fmt.Sprintf("layer%d", l)
		var e []graph.Elem
		n1, e := b.norm(prefix+".ln1", x)
		elems = append(elems, e...)
		a, e := b.attention(prefix+".attn", n1, cfg.Heads)
		elems = append(elems, e...)

		// Router: score the experts, gate top-1 (the control flow).
		scores, e := b.linear(prefix+".router", a, cfg.Experts)
		elems = append(elems, e...)
		gate := b.act(prefix+".gate", cfg.Batch, cfg.SeqLen, 1)
		elems = append(elems, op("topk_gate", scores.Elems(), []*tensor.Meta{scores}, []*tensor.Meta{gate}))

		// Expert dispatch: one arm per expert, each with dedicated weights.
		join := b.act(prefix+".join", cfg.Batch, cfg.SeqLen, cfg.Hidden)
		arms := make([][]graph.Elem, cfg.Experts)
		for ex := 0; ex < cfg.Experts; ex++ {
			eprefix := fmt.Sprintf("%s.expert%d", prefix, ex)
			out, armE := b.ffn(eprefix, a, 4*cfg.Hidden)
			armE = append(armE, op("copy", join.Elems(), []*tensor.Meta{out}, []*tensor.Meta{join}))
			arms[ex] = append(b.markers(l, ex), armE...)
		}
		elems = append(elems, graph.Branch{Site: l, Arms: arms})
		x = join
	}

	logits, e := b.linear("head", x, 8192)
	elems = append(elems, e...)
	loss := b.act("head.loss", 1)
	elems = append(elems, op("cross_entropy", 3*logits.Elems(), []*tensor.Meta{logits}, []*tensor.Meta{loss}))

	m := &MoE{cfg: cfg}
	m.base = base{
		name:     "MoE",
		baseType: Transformer,
		static:   &graph.Static{ModelName: "MoE", Elems: elems, NumSites: cfg.Layers},
		states:   b.states,
		reg:      b.reg,
		decider:  NewDecider(cfg.Seed+0x40e, cfg.Layers),
	}
	m.finish()
	return m
}

// Config returns the instance configuration.
func (m *MoE) Config() MoEConfig { return m.cfg }
