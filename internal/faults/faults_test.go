package faults

import (
	"math"
	"testing"
)

func TestStreamDeterminism(t *testing.T) {
	inj := New(Config{Seed: 7, Rate: 0.3})
	replay := func(scope uint64) ([]TransferFault, []bool, Counters) {
		s := inj.Stream(scope)
		var tf []TransferFault
		var ab []bool
		for i := 0; i < 200; i++ {
			switch i % 3 {
			case 0:
				tf = append(tf, s.Transfer())
			case 1:
				ab = append(ab, s.Alloc())
			default:
				ab = append(ab, s.PrefetchDrop())
			}
		}
		return tf, ab, s.Counters()
	}
	tf1, ab1, c1 := replay(42)
	tf2, ab2, c2 := replay(42)
	if c1 != c2 {
		t.Fatalf("counters diverge: %+v vs %+v", c1, c2)
	}
	for i := range tf1 {
		if tf1[i] != tf2[i] {
			t.Fatalf("transfer decision %d diverges", i)
		}
	}
	for i := range ab1 {
		if ab1[i] != ab2[i] {
			t.Fatalf("bool decision %d diverges", i)
		}
	}
	// Distinct scopes must not replay the same schedule.
	_, _, c3 := replay(43)
	if c1 == c3 {
		t.Error("distinct scopes produced identical counters — schedule not scoped")
	}
}

func TestStreamRateIsHonored(t *testing.T) {
	for _, rate := range []float64{0.05, 0.25, 0.75} {
		inj := New(Config{Seed: 1, Rate: rate})
		var faulty, total int
		for scope := uint64(0); scope < 50; scope++ {
			s := inj.Stream(scope)
			for i := 0; i < 200; i++ {
				f := s.Transfer()
				if f.Abort || f.StallFactor > 1 {
					faulty++
				}
				total++
			}
		}
		got := float64(faulty) / float64(total)
		if math.Abs(got-rate) > 0.05 {
			t.Errorf("rate %.2f: observed fault fraction %.3f", rate, got)
		}
	}
}

func TestNilStreamIsNoop(t *testing.T) {
	var s *Stream
	if f := s.Transfer(); f.Abort || f.StallFactor != 1 {
		t.Errorf("nil stream injected a transfer fault: %+v", f)
	}
	if s.Alloc() || s.PrefetchDrop() {
		t.Error("nil stream injected an alloc/prefetch fault")
	}
	s.NoteRetry(10)
	s.NoteOnDemandFallback()
	s.NoteEvictRetry()
	s.NoteSyncFallback()
	if s.Counters() != (Counters{}) {
		t.Error("nil stream has nonzero counters")
	}
}

func TestDisabledInjectorReturnsNilStream(t *testing.T) {
	if New(Config{Seed: 5}).Stream(1) != nil {
		t.Error("rate-0 injector returned a live stream")
	}
	var inj *Injector
	if inj.Enabled() {
		t.Error("nil injector reports enabled")
	}
	if inj.Stream(0) != nil {
		t.Error("nil injector returned a stream")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{TransferStalls: 1, AllocFaults: 2, Retries: 3, BackoffNS: 100}
	b := Counters{TransferAborts: 4, PrefetchDrops: 5, OnDemandFallbacks: 6, EvictRetries: 7, SyncFallbacks: 8}
	sum := a.Add(b)
	if sum.Injected() != 1+2+4+5 {
		t.Errorf("Injected = %d", sum.Injected())
	}
	if sum != b.Add(a) {
		t.Error("Add is not commutative")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=9,rate=0.25,stall=6")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.Rate != 0.25 || cfg.StallFactor != 6 {
		t.Errorf("parsed %+v", cfg)
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.Rate != 0 {
		t.Errorf("empty spec: %+v, %v", cfg, err)
	}
	if _, err := ParseSpec("rate=0.5, seed=3"); err != nil {
		t.Errorf("spaced spec rejected: %v", err)
	}
	for _, bad := range []string{"rate=2", "rate=x", "seed=-1", "stall=0", "bogus=1", "rate"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestStallFactorDefaultAndClamp(t *testing.T) {
	inj := New(Config{Seed: 1, Rate: 1})
	if inj.Config().StallFactor != 4 {
		t.Errorf("default stall factor = %d, want 4", inj.Config().StallFactor)
	}
	if got := New(Config{Rate: 7}).Config().Rate; got != 1 {
		t.Errorf("rate clamp = %v, want 1", got)
	}
	// At rate 1 every transfer faults, split between stall and abort.
	s := inj.Stream(3)
	var stalls, aborts int
	for i := 0; i < 100; i++ {
		f := s.Transfer()
		switch {
		case f.Abort:
			aborts++
		case f.StallFactor == 4:
			stalls++
		default:
			t.Fatalf("rate-1 draw %d injected nothing: %+v", i, f)
		}
	}
	if stalls == 0 || aborts == 0 {
		t.Errorf("fault flavor never varies: stalls=%d aborts=%d", stalls, aborts)
	}
	c := s.Counters()
	if c.TransferStalls != int64(stalls) || c.TransferAborts != int64(aborts) {
		t.Errorf("counters %+v disagree with observations (%d stalls, %d aborts)", c, stalls, aborts)
	}
}
