// Package faults is a deterministic, seeded fault injector for the gpusim
// device model. The paper's pilot is explicitly best-effort — mis-predictions
// must degrade to on-demand fetches without corrupting training (§IV-E) — and
// the same discipline extends to the simulated device: transfers may stall or
// abort, allocations may transiently fail, and a predicted block's tensors may
// silently not be resident. The injector decides each fault as a pure hash of
// (seed, scope, operation sequence number), so a fault schedule is a function
// of the configuration alone: no global RNG, no wall clock, and no shared
// mutable state between samples. That is what makes the engine's epoch
// aggregates reproducible at any worker count even with faults enabled —
// every sample draws from its own scoped stream, and all counters fold
// commutatively.
//
// The package is pure stdlib with no dependencies on the rest of the repo, so
// gpusim, core, and the CLIs can all import it.
package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// TransferStall multiplies one transfer's latency by Config.StallFactor
	// (link contention, bandwidth collapse).
	TransferStall Kind = iota
	// TransferAbort fails one transfer mid-flight; the operation must be
	// re-issued by the caller.
	TransferAbort
	// AllocFail makes one allocation transiently fail (allocator pressure);
	// the condition clears on retry.
	AllocFail
	// PrefetchDrop silently skips one predicted block's prefetch: the
	// tensors are not resident when the block starts, exercising the
	// on-demand path beyond pilot mis-predictions.
	PrefetchDrop

	// NumKinds is the number of fault classes.
	NumKinds
)

func (k Kind) String() string {
	switch k {
	case TransferStall:
		return "transfer-stall"
	case TransferAbort:
		return "transfer-abort"
	case AllocFail:
		return "alloc-fail"
	case PrefetchDrop:
		return "prefetch-drop"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config seeds and sizes an Injector.
type Config struct {
	// Seed selects the fault schedule. Two injectors with the same seed and
	// rate produce identical schedules.
	Seed uint64
	// Rate is the per-consultation fault probability in [0, 1]. Zero
	// disables injection entirely.
	Rate float64
	// StallFactor multiplies a stalled transfer's duration (default 4).
	StallFactor int64
}

// defaults normalizes zero fields.
func (c *Config) defaults() {
	if c.StallFactor <= 1 {
		c.StallFactor = 4
	}
	if c.Rate < 0 {
		c.Rate = 0
	}
	if c.Rate > 1 {
		c.Rate = 1
	}
}

// ParseSpec parses the CLI form "seed=N,rate=R[,stall=F]" (any subset, any
// order) into a Config, e.g. dynnbench's -faults seed=7,rate=0.1.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		switch kv[0] {
		case "seed":
			v, err := strconv.ParseUint(kv[1], 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: bad seed %q: %w", kv[1], err)
			}
			cfg.Seed = v
		case "rate":
			v, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: bad rate %q: %w", kv[1], err)
			}
			if v < 0 || v > 1 {
				return cfg, fmt.Errorf("faults: rate %v out of [0,1]", v)
			}
			cfg.Rate = v
		case "stall":
			v, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil || v < 1 {
				return cfg, fmt.Errorf("faults: bad stall factor %q", kv[1])
			}
			cfg.StallFactor = v
		default:
			return cfg, fmt.Errorf("faults: unknown spec key %q", kv[0])
		}
	}
	return cfg, nil
}

// Injector hands out deterministic fault streams. It is immutable after New
// and safe for concurrent use from any number of goroutines.
type Injector struct {
	cfg Config
}

// New builds an injector; a nil result is never returned, and a Rate of zero
// yields an injector whose streams inject nothing.
func New(cfg Config) *Injector {
	cfg.defaults()
	return &Injector{cfg: cfg}
}

// Enabled reports whether the injector can inject anything at all.
func (inj *Injector) Enabled() bool { return inj != nil && inj.cfg.Rate > 0 }

// Config returns the normalized configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Stream derives the fault stream for one scope — typically one sample's
// simulation. Streams with the same (injector seed, scope) replay the same
// schedule; distinct scopes are statistically independent. A Stream is not
// safe for concurrent use; derive one per goroutine. Returns nil when the
// injector is nil or disabled — all Stream methods are nil-safe no-ops.
func (inj *Injector) Stream(scope uint64) *Stream {
	if !inj.Enabled() {
		return nil
	}
	return &Stream{
		seed:  mix64(inj.cfg.Seed) ^ mix64(scope*0x9e3779b97f4a7c15+0x6a09e667f3bcc909),
		rate:  inj.cfg.Rate,
		stall: inj.cfg.StallFactor,
	}
}

// TransferFault is the injector's decision for one transfer operation.
type TransferFault struct {
	// StallFactor >= 1 multiplies the transfer duration (1 = no stall).
	StallFactor int64
	// Abort fails the transfer mid-flight; the caller must re-issue it.
	Abort bool
}

// Counters tallies injected faults and the engine's recovery work. Every
// field is a commutative sum, so per-sample counters fold into epoch totals
// in any order — the same property that makes parallel epoch aggregation
// exact.
type Counters struct {
	// Injected faults by class.
	TransferStalls int64
	TransferAborts int64
	AllocFaults    int64
	PrefetchDrops  int64

	// Recovery work.
	Retries           int64 // re-issued operations (transfers and allocations)
	BackoffNS         int64 // simulated time spent in exponential backoff
	OnDemandFallbacks int64 // blocks degraded from prefetch to on-demand fetch
	EvictRetries      int64 // allocations satisfied only after evicting residents
	SyncFallbacks     int64 // transfers forced through the final blocking copy
}

// Injected returns the total number of injected faults across all classes.
func (c Counters) Injected() int64 {
	return c.TransferStalls + c.TransferAborts + c.AllocFaults + c.PrefetchDrops
}

// Add returns the element-wise sum.
func (c Counters) Add(o Counters) Counters {
	c.TransferStalls += o.TransferStalls
	c.TransferAborts += o.TransferAborts
	c.AllocFaults += o.AllocFaults
	c.PrefetchDrops += o.PrefetchDrops
	c.Retries += o.Retries
	c.BackoffNS += o.BackoffNS
	c.OnDemandFallbacks += o.OnDemandFallbacks
	c.EvictRetries += o.EvictRetries
	c.SyncFallbacks += o.SyncFallbacks
	return c
}

// Stream draws one scope's fault schedule and tallies what was injected and
// how the caller recovered. The zero of every method on a nil Stream is "no
// fault", so fault-free paths need no branching at call sites.
type Stream struct {
	seed  uint64
	rate  float64
	stall int64
	seq   uint64
	c     Counters
}

// draw advances the sequence and returns (faulty, selector) where selector is
// an independent uniform 64-bit value for picking the fault flavor.
func (s *Stream) draw() (bool, uint64) {
	s.seq++
	h := mix64(s.seed ^ mix64(s.seq))
	u := float64(h>>11) / (1 << 53)
	return u < s.rate, mix64(h ^ 0xd6e8feb86659fd93)
}

// Transfer consults the stream at a transfer site. At most one fault class is
// injected per operation: half the faulty draws stall, half abort.
func (s *Stream) Transfer() TransferFault {
	f := TransferFault{StallFactor: 1}
	if s == nil {
		return f
	}
	faulty, sel := s.draw()
	if !faulty {
		return f
	}
	if sel&1 == 0 {
		s.c.TransferStalls++
		f.StallFactor = s.stall
	} else {
		s.c.TransferAborts++
		f.Abort = true
	}
	return f
}

// Alloc consults the stream at an allocation site; true means the allocation
// transiently fails and should be retried.
func (s *Stream) Alloc() bool {
	if s == nil {
		return false
	}
	faulty, _ := s.draw()
	if faulty {
		s.c.AllocFaults++
	}
	return faulty
}

// PrefetchDrop consults the stream when a predicted block's prefetch is
// issued; true means the prefetch is silently dropped and the block's tensors
// will not be resident at block start.
func (s *Stream) PrefetchDrop() bool {
	if s == nil {
		return false
	}
	faulty, _ := s.draw()
	if faulty {
		s.c.PrefetchDrops++
	}
	return faulty
}

// NoteRetry records one re-issued operation and its simulated backoff wait.
func (s *Stream) NoteRetry(backoffNS int64) {
	if s == nil {
		return
	}
	s.c.Retries++
	s.c.BackoffNS += backoffNS
}

// NoteOnDemandFallback records one block degraded from prefetch to on-demand
// fetching.
func (s *Stream) NoteOnDemandFallback() {
	if s != nil {
		s.c.OnDemandFallbacks++
	}
}

// NoteEvictRetry records one allocation satisfied only after evicting
// residents.
func (s *Stream) NoteEvictRetry() {
	if s != nil {
		s.c.EvictRetries++
	}
}

// NoteSyncFallback records one transfer forced through the final blocking
// synchronous copy after exhausting its retry budget.
func (s *Stream) NoteSyncFallback() {
	if s != nil {
		s.c.SyncFallbacks++
	}
}

// Counters returns the tallies so far (zero for a nil stream).
func (s *Stream) Counters() Counters {
	if s == nil {
		return Counters{}
	}
	return s.c
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64, the
// standard way to turn a counter into uniform bits without any RNG state.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
