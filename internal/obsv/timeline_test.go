package obsv

import (
	"bytes"
	"strings"
	"testing"
)

// TestOverlapHandBuilt pins the overlap arithmetic on a timeline small enough
// to check by hand:
//
//	compute: [0,100) [150,250)                     busy 200
//	h2d:     [0,50) hidden, [100,150) exposed      busy 100
//	d2h:     [200,300) half hidden                 busy 100
func TestOverlapHandBuilt(t *testing.T) {
	spans := []Span{
		{Kind: SpanCompute, Lane: LaneCompute, Block: 0, StartNS: 0, DurNS: 100},
		{Kind: SpanCompute, Lane: LaneCompute, Block: 1, StartNS: 150, DurNS: 100},
		{Kind: SpanPrefetch, Lane: LaneH2D, Block: 0, StartNS: 0, DurNS: 50, Bytes: 1000},
		{Kind: SpanOnDemand, Lane: LaneH2D, Block: 1, StartNS: 100, DurNS: 50, Bytes: 2000},
		{Kind: SpanEvict, Lane: LaneD2H, Block: 0, StartNS: 200, DurNS: 100, Bytes: 4000},
		// Host-lane spans are bookkeeping, never hardware occupancy.
		{Kind: SpanSample, Lane: LaneHost, Block: -1, StartNS: 0, DurNS: 300},
	}
	o := NewTimeline(spans, 1e9).Overlap()

	if o.MakespanNS != 300 {
		t.Errorf("makespan = %d", o.MakespanNS)
	}
	if o.ComputeNS != 200 {
		t.Errorf("compute = %d", o.ComputeNS)
	}
	if o.TransferNS != 200 {
		t.Errorf("transfer = %d", o.TransferNS)
	}
	// hidden: h2d [0,50) under compute [0,100) = 50; d2h [200,300) under
	// compute [150,250) = 50.
	if o.HiddenNS != 100 || o.ExposedNS != 100 {
		t.Errorf("hidden/exposed = %d/%d", o.HiddenNS, o.ExposedNS)
	}
	if o.Efficiency != 0.5 {
		t.Errorf("efficiency = %v", o.Efficiency)
	}
	if o.TransferBytes != 7000 {
		t.Errorf("bytes = %d", o.TransferBytes)
	}
	// 1e9 B/s over 300 ns carries 300 bytes; 7000/300.
	if want := 7000.0 / 300.0; o.PCIeUtil != want {
		t.Errorf("pcie util = %v, want %v", o.PCIeUtil, want)
	}
	if got := o.LaneBusyNS[LaneCompute]; got != 200 {
		t.Errorf("compute busy = %d", got)
	}
	if got := o.LaneUtil[LaneH2D]; got != 100.0/300.0 {
		t.Errorf("h2d util = %v", got)
	}
	// Each lane has exactly one 50ns idle gap (compute [100,150), h2d
	// [50,100)); d2h has no gap.
	if g := o.IdleGaps[LaneCompute]; g.Count != 1 || g.SumNS != 50 {
		t.Errorf("compute gaps = %+v", g)
	}
	if g := o.IdleGaps[LaneD2H]; g.Count != 0 {
		t.Errorf("d2h gaps = %+v", g)
	}
}

func TestOverlapMergesDoubleBookedLane(t *testing.T) {
	// Overlapping spans on one lane count busy wall time once.
	spans := []Span{
		{Kind: SpanCompute, Lane: LaneCompute, StartNS: 0, DurNS: 100},
		{Kind: SpanCompute, Lane: LaneCompute, StartNS: 50, DurNS: 100},
	}
	o := NewTimeline(spans, 0).Overlap()
	if o.ComputeNS != 150 {
		t.Errorf("merged busy = %d, want 150", o.ComputeNS)
	}
	if o.PCIeUtil != 0 {
		t.Errorf("pcie util without bandwidth = %v, want 0", o.PCIeUtil)
	}
}

func TestOverlapEmpty(t *testing.T) {
	o := NewTimeline(nil, 1e9).Overlap()
	if o.MakespanNS != 0 || o.TransferNS != 0 || o.Efficiency != 0 {
		t.Errorf("empty timeline overlap = %+v", o)
	}
}

func TestBlocksBreakdown(t *testing.T) {
	spans := []Span{
		{Sample: 0, Kind: SpanSample, Lane: LaneHost, Block: -1, StartNS: 0, DurNS: 400},
		{Sample: 0, Kind: SpanPrefetch, Lane: LaneH2D, Block: 0, StartNS: 0, DurNS: 10, Bytes: 64},
		// Block 0 computes at 10 after a 10ns stall on its prefetch.
		{Sample: 0, Kind: SpanCompute, Lane: LaneCompute, Block: 0, StartNS: 10, DurNS: 90},
		{Sample: 0, Kind: SpanEvict, Lane: LaneD2H, Block: 0, StartNS: 100, DurNS: 30, Bytes: 64},
		{Sample: 0, Kind: SpanRetry, Lane: LaneH2D, Block: 1, StartNS: 100, DurNS: 7, Bytes: 32, Attempt: 1},
		{Sample: 0, Kind: SpanOnDemand, Lane: LaneH2D, Block: 1, StartNS: 107, DurNS: 40, Bytes: 32},
		// Block 1 computes at 150: 50ns after block 0's compute ended at 100.
		{Sample: 0, Kind: SpanCompute, Lane: LaneCompute, Block: 1, StartNS: 150, DurNS: 250},
	}
	blocks := NewTimeline(spans, 0).Blocks()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
	b0, b1 := blocks[0], blocks[1]
	if b0.Block != 0 || b0.ComputeNS != 90 || b0.PrefetchNS != 10 || b0.EvictNS != 30 || b0.StallNS != 10 || b0.Spans != 3 {
		t.Errorf("block 0 = %+v", b0)
	}
	if b1.Block != 1 || b1.ComputeNS != 250 || b1.OnDemandNS != 40 || b1.RetryNS != 7 || b1.StallNS != 50 || b1.Spans != 3 {
		t.Errorf("block 1 = %+v", b1)
	}
}

func TestASCIITimeline(t *testing.T) {
	spans := []Span{
		{Kind: SpanCompute, Lane: LaneCompute, StartNS: 0, DurNS: 500_000},
		{Kind: SpanPrefetch, Lane: LaneH2D, StartNS: 0, DurNS: 1_000_000},
	}
	var buf bytes.Buffer
	NewTimeline(spans, 0).ASCII(&buf, 10)
	out := buf.String()
	for _, want := range []string{"stream occupancy", "compute", "h2d", "d2h", "100.0% busy", "50.0% busy", "0.0% busy"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// h2d is solid for the whole makespan; d2h renders as blanks.
	if !strings.Contains(out, "|██████████|") {
		t.Errorf("full lane not rendered solid:\n%s", out)
	}
	if !strings.Contains(out, "|          |") {
		t.Errorf("idle lane not rendered blank:\n%s", out)
	}

	buf.Reset()
	NewTimeline(nil, 0).ASCII(&buf, 10)
	if !strings.Contains(buf.String(), "(empty timeline)") {
		t.Errorf("empty timeline render = %q", buf.String())
	}
}
