package obsv

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func exposition(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestPrometheusExposition(t *testing.T) {
	g := NewRegistry()
	r := NewRecorder("Tree-LSTM", 4, nil)
	g.Register(r)
	for i := 0; i < 10; i++ {
		r.ObserveSample(i, i%5 == 0, i%2 == 0, 1000)
		r.ObservePhase("simulate", int64(1000*(i+1)))
	}
	r.ObserveFaults(FaultStats{Injected: 3, Retries: 2, OnDemandFallbacks: 1})
	r.SetOverlap(OverlapStats{
		Efficiency: 0.75, PCIeUtil: 0.4,
		LaneUtil: map[string]float64{LaneCompute: 0.9, LaneH2D: 0.3},
	})

	resp, body := exposition(t, g.Handler(), "/")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		`dynn_samples_total{run="Tree-LSTM"} 10`,
		`dynn_mispredicts_total{run="Tree-LSTM"} 2`,
		`dynn_cache_hits_total{run="Tree-LSTM"} 5`,
		`dynn_workers{run="Tree-LSTM"} 4`,
		`dynn_faults_injected_total{run="Tree-LSTM"} 3`,
		`dynn_fault_fallbacks_total{run="Tree-LSTM",kind="ondemand"} 1`,
		`dynn_overlap_efficiency{run="Tree-LSTM"} 0.75`,
		`dynn_stream_utilization{run="Tree-LSTM",stream="compute"} 0.9`,
		`dynn_phase_seconds_count{run="Tree-LSTM",phase="simulate"} 10`,
		`dynn_phase_seconds{run="Tree-LSTM",phase="simulate",quantile="0.5"}`,
		"# TYPE dynn_samples_total counter",
		"# HELP dynn_overlap_efficiency",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	// Families must be emitted sorted so scrapes diff cleanly.
	if strings.Index(body, "dynn_cache_hits_total") > strings.Index(body, "dynn_samples_total") {
		t.Error("metric families not sorted by name")
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	g := NewRegistry()
	g.Register(NewRecorder("bad\"label\\with\nnewline", 1, nil))
	_, body := exposition(t, g.Handler(), "/")
	if !strings.Contains(body, `run="bad\"label\\with\nnewline"`) {
		t.Errorf("label not escaped:\n%s", body)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var g *Registry
	g.Register(NewRecorder("x", 1, nil)) // must not panic
	NewRegistry().Register(nil)
	// An empty registry serves an empty (but valid) exposition.
	_, body := exposition(t, NewRegistry().Handler(), "/")
	if strings.TrimSpace(body) != "" {
		t.Errorf("empty registry body = %q", body)
	}
}

func TestServeMuxEndpoints(t *testing.T) {
	g := NewRegistry()
	g.Register(NewRecorder("mux", 2, nil))
	mux := NewServeMux(g)

	resp, body := exposition(t, mux, "/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "dynn_samples_total") {
		t.Errorf("/metrics: status %d body %q", resp.StatusCode, body)
	}
	resp, body = exposition(t, mux, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: status %d", resp.StatusCode)
	}
	resp, _ = exposition(t, mux, "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", resp.StatusCode)
	}
	resp, body = exposition(t, mux, "/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = exposition(t, mux, "/nonexistent")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}
}
