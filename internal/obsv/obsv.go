// Package obsv provides run-scoped observability for the DyNN-Offload
// runtime: lock-free counters and nanosecond histograms that many worker
// goroutines update concurrently, snapshotted into a RunStats struct
// (samples/sec, mis-prediction rate, cache hit rate, per-phase latency), and
// an optional JSONL event sink for offline analysis. The package has no
// dependencies on the rest of the repo so every layer can import it.
package obsv

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// nBuckets covers 2^0..2^62 ns in power-of-two buckets — any duration fits.
const nBuckets = 64

// Histogram is a concurrency-safe power-of-two latency histogram over
// nanoseconds. Observations below 1ns land in bucket 0.
type Histogram struct {
	buckets [nBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))&(nBuckets-1)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistogramStats is an immutable snapshot of a Histogram.
//
// Every quantile field (P50NS..P999NS) is the *upper bound* of the
// power-of-two bucket holding that quantile — i.e. the smallest 2^i ≥ the
// true value (1 for sub-nanosecond observations) — so quantiles
// over-estimate by at most 2x and are always an exact power of two. A
// quantile that falls past the last occupied bucket reports MaxNS.
type HistogramStats struct {
	Count   int64   `json:"count"`
	SumNS   int64   `json:"sum_ns"`
	MeanNS  int64   `json:"mean_ns"`
	MaxNS   int64   `json:"max_ns"`
	P50NS   int64   `json:"p50_ns"` // bucket upper bound — ~2x resolution
	P90NS   int64   `json:"p90_ns"`
	P99NS   int64   `json:"p99_ns"`
	P999NS  int64   `json:"p999_ns"`
	Buckets []int64 `json:"buckets,omitempty"` // count per power-of-two bucket
}

// Snapshot captures the histogram. Quantiles are bucket upper bounds, so they
// over-estimate by at most 2x — enough to spot phase-latency regressions.
func (h *Histogram) Snapshot() HistogramStats {
	var s HistogramStats
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()
	if s.Count > 0 {
		s.MeanNS = s.SumNS / s.Count
	}
	quantile := func(q float64) int64 {
		target := int64(float64(s.Count) * q)
		var c int64
		for i := 0; i < nBuckets; i++ {
			c += h.buckets[i].Load()
			if c > target {
				if i == 0 {
					return 1
				}
				return int64(1) << uint(i)
			}
		}
		return s.MaxNS
	}
	if s.Count > 0 {
		s.P50NS = quantile(0.50)
		s.P90NS = quantile(0.90)
		s.P99NS = quantile(0.99)
		s.P999NS = quantile(0.999)
	}
	for i := 0; i < nBuckets; i++ {
		if v := h.buckets[i].Load(); v != 0 {
			if s.Buckets == nil {
				s.Buckets = make([]int64, nBuckets)
			}
			s.Buckets[i] = v
		}
	}
	return s
}

// FaultStats mirrors the runtime's fault-injection and recovery counters
// (defined here rather than imported so obsv keeps zero dependencies on the
// rest of the repo). All fields are commutative sums.
type FaultStats struct {
	Injected          int64 `json:"injected"`
	TransferStalls    int64 `json:"transfer_stalls"`
	TransferAborts    int64 `json:"transfer_aborts"`
	AllocFaults       int64 `json:"alloc_faults"`
	PrefetchDrops     int64 `json:"prefetch_drops"`
	Retries           int64 `json:"retries"`
	BackoffNS         int64 `json:"backoff_ns"`
	OnDemandFallbacks int64 `json:"on_demand_fallbacks"`
	EvictRetries      int64 `json:"evict_retries"`
	SyncFallbacks     int64 `json:"sync_fallbacks"`
}

// Add returns the element-wise sum.
func (f FaultStats) Add(o FaultStats) FaultStats {
	f.Injected += o.Injected
	f.TransferStalls += o.TransferStalls
	f.TransferAborts += o.TransferAborts
	f.AllocFaults += o.AllocFaults
	f.PrefetchDrops += o.PrefetchDrops
	f.Retries += o.Retries
	f.BackoffNS += o.BackoffNS
	f.OnDemandFallbacks += o.OnDemandFallbacks
	f.EvictRetries += o.EvictRetries
	f.SyncFallbacks += o.SyncFallbacks
	return f
}

// RunStats is the aggregate view of one run (typically one epoch): throughput,
// prediction quality, cache behavior, and per-phase latency.
type RunStats struct {
	Label          string                    `json:"label,omitempty"`
	Workers        int                       `json:"workers,omitempty"`
	WallNS         int64                     `json:"wall_ns"`
	Samples        int64                     `json:"samples"`
	SamplesPerSec  float64                   `json:"samples_per_sec"`
	Mispredicts    int64                     `json:"mispredicts"`
	MispredictRate float64                   `json:"mispredict_rate"`
	CacheHits      int64                     `json:"cache_hits"`
	CacheHitRate   float64                   `json:"cache_hit_rate"` // hits / samples
	Faults         *FaultStats               `json:"faults,omitempty"`
	Overlap        *OverlapStats             `json:"overlap,omitempty"`
	Serve          *ServeStats               `json:"serve,omitempty"`
	Phases         map[string]HistogramStats `json:"phases,omitempty"`
	// SinkDropped counts events the sink failed to write (see JSONLSink);
	// SinkErr holds the first write error's text.
	SinkDropped int64  `json:"sink_dropped,omitempty"`
	SinkErr     string `json:"sink_err,omitempty"`
}

// Recorder accumulates counters and phase histograms for one run. All
// Observe* methods are safe for concurrent use; Finish/Snapshot may race with
// observers only in the trivial sense of missing in-flight updates.
type Recorder struct {
	label   string
	workers int
	start   time.Time

	samples     atomic.Int64
	mispredicts atomic.Int64
	cacheHits   atomic.Int64

	faultMu    sync.Mutex
	faults     FaultStats
	faultsSeen bool

	overlapMu sync.Mutex
	overlap   *OverlapStats

	serveMu sync.Mutex
	serve   *ServeStats

	phases sync.Map // string -> *Histogram

	sink Sink
}

// NewRecorder starts a recorder for a run. sink may be nil (counters only).
func NewRecorder(label string, workers int, sink Sink) *Recorder {
	r := &Recorder{label: label, workers: workers, start: time.Now(), sink: sink} //dynnlint:ignore determinism recorder wall time feeds reports only, never simulated state
	r.emit(Event{Type: EventRunStart, Label: label, Workers: workers})
	return r
}

// phase returns (creating if needed) the named phase histogram.
func (r *Recorder) phase(name string) *Histogram {
	if h, ok := r.phases.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.phases.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// ObservePhase records one duration for a named phase ("pilot", "mapping",
// "simulate", ...).
func (r *Recorder) ObservePhase(name string, ns int64) {
	r.phase(name).Observe(ns)
}

// ObserveSample records one completed sample's outcome and emits a sample
// event when a sink is attached.
func (r *Recorder) ObserveSample(index int, mispredicted, cacheHit bool, totalNS int64) {
	r.samples.Add(1)
	if mispredicted {
		r.mispredicts.Add(1)
	}
	if cacheHit {
		r.cacheHits.Add(1)
	}
	if r.sink != nil {
		r.emit(Event{
			Type: EventSample, Sample: index, DurNS: totalNS,
			Mispredicted: mispredicted, CacheHit: cacheHit,
		})
	}
}

// ObserveFaults folds one sample's fault-injection and recovery counters
// into the run totals. Safe for concurrent use; once called, Snapshot
// reports a Faults block even if every counter is zero (injection was on but
// nothing fired).
func (r *Recorder) ObserveFaults(f FaultStats) {
	r.faultMu.Lock()
	r.faults = r.faults.Add(f)
	r.faultsSeen = true
	r.faultMu.Unlock()
}

// SetOverlap attaches the run's derived overlap/utilization summary
// (computed from a Tracer's span set after the epoch) so it rides along in
// RunStats and the Prometheus exposition.
func (r *Recorder) SetOverlap(o OverlapStats) {
	r.overlapMu.Lock()
	r.overlap = &o
	r.overlapMu.Unlock()
}

// Snapshot derives RunStats from the counters so far.
func (r *Recorder) Snapshot() RunStats {
	s := RunStats{
		Label:       r.label,
		Workers:     r.workers,
		WallNS:      time.Since(r.start).Nanoseconds(), //dynnlint:ignore determinism recorder wall time feeds reports only, never simulated state
		Samples:     r.samples.Load(),
		Mispredicts: r.mispredicts.Load(),
		CacheHits:   r.cacheHits.Load(),
	}
	if s.WallNS > 0 {
		s.SamplesPerSec = float64(s.Samples) / (float64(s.WallNS) / 1e9)
	}
	if s.Samples > 0 {
		s.MispredictRate = float64(s.Mispredicts) / float64(s.Samples)
		s.CacheHitRate = float64(s.CacheHits) / float64(s.Samples)
	}
	r.faultMu.Lock()
	if r.faultsSeen {
		f := r.faults
		s.Faults = &f
	}
	r.faultMu.Unlock()
	r.overlapMu.Lock()
	if r.overlap != nil {
		o := *r.overlap
		s.Overlap = &o
	}
	r.overlapMu.Unlock()
	r.serveMu.Lock()
	if r.serve != nil {
		sv := *r.serve
		s.Serve = &sv
	}
	r.serveMu.Unlock()
	if d, ok := r.sink.(interface{ Dropped() int64 }); ok {
		s.SinkDropped = d.Dropped()
	}
	r.phases.Range(func(k, v any) bool {
		if s.Phases == nil {
			s.Phases = map[string]HistogramStats{}
		}
		s.Phases[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return s
}

// Finish snapshots the run, emits a run_end event, flushes the sink, and
// returns the stats. Any events the sink dropped (and its first write error)
// are reported in the returned RunStats — observability never fails the run
// it observes, but it no longer fails silently either.
func (r *Recorder) Finish() RunStats {
	s := r.Snapshot()
	r.emit(Event{Type: EventRunEnd, Label: r.label, Workers: r.workers, Stats: &s})
	if err := r.Err(); err != nil {
		s.SinkErr = err.Error()
	}
	if d, ok := r.sink.(interface{ Dropped() int64 }); ok {
		s.SinkDropped = d.Dropped()
	}
	return s
}

// Err flushes the sink (when it supports flushing) and returns its first
// write error, nil when every event landed.
func (r *Recorder) Err() error {
	if f, ok := r.sink.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// PhaseNames lists the phases observed so far, sorted.
func (r *Recorder) PhaseNames() []string {
	var names []string
	r.phases.Range(func(k, _ any) bool { names = append(names, k.(string)); return true })
	sort.Strings(names)
	return names
}

func (r *Recorder) emit(ev Event) {
	if r.sink == nil {
		return
	}
	ev.TimeNS = time.Since(r.start).Nanoseconds() //dynnlint:ignore determinism recorder wall time feeds reports only, never simulated state
	r.sink.Emit(ev)
}
