package obsv

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// traceFixture covers every span kind and argument field the Chrome export
// must carry: durations, instants, block scoping, bytes, attempts, outcomes.
func traceFixture() []Span {
	return []Span{
		{Sample: 0, Kind: SpanSample, Lane: LaneHost, Block: -1, StartNS: 0, DurNS: 500, Mispredicted: true, CacheHit: true},
		{Sample: 0, Kind: SpanPilot, Lane: LaneHost, Block: -1},
		{Sample: 0, Kind: SpanMapping, Lane: LaneHost, Block: -1},
		{Sample: 0, Kind: SpanPrefetch, Lane: LaneH2D, Block: 0, StartNS: 0, DurNS: 100, Bytes: 4096},
		{Sample: 0, Kind: SpanCompute, Lane: LaneCompute, Block: 0, StartNS: 100, DurNS: 200},
		{Sample: 0, Kind: SpanRetry, Lane: LaneH2D, Block: 1, StartNS: 100, DurNS: 50, Bytes: 2048, Attempt: 1},
		{Sample: 0, Kind: SpanOnDemand, Lane: LaneH2D, Block: 1, StartNS: 300, DurNS: 80, Bytes: 2048},
		{Sample: 0, Kind: SpanFault, Lane: LaneHost, Block: 1, StartNS: 380, DurNS: 20},
		{Sample: 0, Kind: SpanEvict, Lane: LaneD2H, Block: 0, StartNS: 300, DurNS: 150, Bytes: 4096},
		{Sample: 1, Kind: SpanSample, Lane: LaneHost, Block: -1, StartNS: 500, DurNS: 100},
		{Sample: 1, Kind: SpanCompute, Lane: LaneCompute, Block: 0, StartNS: 500, DurNS: 100},
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	spans := traceFixture()
	meta := ChromeMeta{Label: "Tree-LSTM epoch", LinkBWBytesPerSec: 12.8e9, Samples: 2}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Errorf("meta round-trip: got %+v want %+v", gotMeta, meta)
	}
	if !reflect.DeepEqual(got, spans) {
		t.Fatalf("span round-trip diverged:\ngot  %+v\nwant %+v", got, spans)
	}
	// The written file must also pass its own validator.
	if err := CheckChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("written trace fails CheckChromeTrace: %v", err)
	}
	// Pilot/mapping instants must be instant events, not zero-width slices:
	// Perfetto renders "i" markers but drops dur-0 "X" events on some tracks.
	text := buf.String()
	if !strings.Contains(text, `"ph":"i"`) {
		t.Error("no instant events in exported trace")
	}
}

func TestCheckChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name, file, wantErr string
	}{
		{"not json", `{"traceEvents": [`, "not valid JSON"},
		{"empty", `{"traceEvents": []}`, "empty traceEvents"},
		{"unknown phase", `{"traceEvents": [{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]}`, "unsupported phase"},
		{"X without dur", `{"traceEvents": [{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`, "non-negative dur"},
		{"negative ts", `{"traceEvents": [{"name":"x","ph":"X","ts":-1,"dur":5,"pid":1,"tid":1}]}`, "negative ts"},
		{"negative tid", `{"traceEvents": [{"name":"x","ph":"X","ts":0,"dur":5,"pid":1,"tid":-2}]}`, "negative pid/tid"},
		{"anonymous metadata", `{"traceEvents": [{"name":"thread_name","ph":"M","pid":1,"tid":1}]}`, "without args.name"},
		{"unknown metadata", `{"traceEvents": [{"name":"counter_name","ph":"M","pid":1,"tid":1}]}`, "unknown metadata"},
		{"bad instant scope", `{"traceEvents": [{"name":"x","ph":"i","ts":0,"pid":1,"tid":1,"s":"z"}]}`, "instant event scope"},
	}
	for _, tc := range cases {
		err := CheckChromeTrace(strings.NewReader(tc.file))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
	ok := `{"traceEvents": [{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"h2d"}}]}`
	if err := CheckChromeTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("valid minimal trace rejected: %v", err)
	}
}

func TestTracerCanonicalTimeline(t *testing.T) {
	tr := NewTracer()
	// Register out of order; Spans must lay samples out by index.
	s1 := tr.Sample(1)
	s1.Span(SpanCompute, LaneCompute, 0, 0, 300, 0)
	s0 := tr.Sample(0)
	s0.Span(SpanCompute, LaneCompute, 0, 0, 100, 0)
	s0.Span(SpanEvict, LaneD2H, 0, 100, 50, 64)
	s0.Outcome(true, false)

	spans := tr.Spans()
	if tr.SampleCount() != 2 {
		t.Fatalf("SampleCount = %d", tr.SampleCount())
	}
	// sample 0: envelope [0,150) + 2 spans; sample 1 offset by 150.
	want := []Span{
		{Sample: 0, Kind: SpanSample, Lane: LaneHost, Block: -1, StartNS: 0, DurNS: 150, Mispredicted: true},
		{Sample: 0, Kind: SpanCompute, Lane: LaneCompute, Block: 0, StartNS: 0, DurNS: 100},
		{Sample: 0, Kind: SpanEvict, Lane: LaneD2H, Block: 0, StartNS: 100, DurNS: 50, Bytes: 64},
		{Sample: 1, Kind: SpanSample, Lane: LaneHost, Block: -1, StartNS: 150, DurNS: 300},
		{Sample: 1, Kind: SpanCompute, Lane: LaneCompute, Block: 0, StartNS: 150, DurNS: 300},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("canonical timeline:\ngot  %+v\nwant %+v", spans, want)
	}
}

func TestNilTracerAndSampleTrace(t *testing.T) {
	var tr *Tracer
	if tr.Spans() != nil || tr.SampleCount() != 0 || tr.WallTime() {
		t.Error("nil tracer must report empty")
	}
	st := tr.Sample(3) // nil
	// Every method must be a no-op, not a panic — the engine calls these
	// unconditionally on untraced runs.
	st.Span(SpanCompute, LaneCompute, 0, 0, 10, 0)
	st.Retry(LaneH2D, 0, 0, 10, 0, 1)
	st.Instant(SpanPilot, 100)
	st.Outcome(true, true)
	st.SetWorker(2)
	st.StartWall()
	st.StopWall()
}

func TestWallModeGating(t *testing.T) {
	// Default mode: worker ids and wall durations never reach the span set,
	// keeping the trace free of scheduling-dependent fields.
	det := NewTracer()
	st := det.Sample(0)
	st.SetWorker(5)
	st.Instant(SpanPilot, 12345)
	for _, sp := range det.Spans() {
		if sp.Worker != 0 || sp.WallNS != 0 {
			t.Errorf("deterministic trace carries wall fields: %+v", sp)
		}
	}

	wall := NewTracer(WithWallTime())
	if !wall.WallTime() {
		t.Fatal("WithWallTime not applied")
	}
	ws := wall.Sample(0)
	ws.SetWorker(5)
	ws.Instant(SpanPilot, 12345)
	var found bool
	for _, sp := range wall.Spans() {
		if sp.Kind == SpanPilot && sp.Worker == 5 && sp.WallNS == 12345 {
			found = true
		}
	}
	if !found {
		t.Error("wall mode dropped worker/wall annotations")
	}
}

func TestSortSpans(t *testing.T) {
	spans := []Span{
		{Sample: 1, StartNS: 0},
		{Sample: 0, StartNS: 50, Lane: LaneH2D},
		{Sample: 0, StartNS: 50, Lane: LaneCompute},
		{Sample: 0, StartNS: 10},
	}
	SortSpans(spans)
	order := []struct {
		sample  int
		startNS int64
		lane    string
	}{{0, 10, ""}, {0, 50, LaneCompute}, {0, 50, LaneH2D}, {1, 0, ""}}
	for i, want := range order {
		sp := spans[i]
		if sp.Sample != want.sample || sp.StartNS != want.startNS || sp.Lane != want.lane {
			t.Fatalf("spans[%d] = %+v, want %+v", i, sp, want)
		}
	}
}
