package obsv

// SLO attribution decomposes a served request's end-to-end simulated latency
// into named causes, so a missed p99 has an explanation ("61% exposed
// transfer") instead of a number. The decomposition is exact by construction:
// TotalNS() of the components equals the request's end-to-end latency to the
// nanosecond, and every component is derived from the simulated clock only —
// attribution replays bit-identically with the rest of the serving report.

// AttributionComponents is one request's (or one aggregate's) latency split.
// All fields are simulated nanoseconds. BatchNS is the continuous-batching
// residual — what sharing a dispatch with other requests cost (straggler
// alignment) or saved (kernel fusion; then it is negative) relative to the
// request's own device time — and is the only component that may be negative.
type AttributionComponents struct {
	// QueueNS is time spent admitted but not dispatched, excluding quota waits.
	QueueNS int64 `json:"queue_ns"`
	// QuotaNS is time the request was runnable but blocked from batch
	// formation because its tenant's memory reservation was refused, measured
	// from the first refused reservation to dispatch.
	QuotaNS int64 `json:"quota_ns"`
	// PilotNS is pilot inference plus output→path resolution on the simulated
	// clock. The runtime keeps host-side pilot time off the virtual clock
	// (see serve.serviceTime), so this is zero under the default accounting
	// and exists to keep the taxonomy closed under future on-clock pilots.
	PilotNS int64 `json:"pilot_ns"`
	// PilotRetrainNS is time the request sat queued behind an online-learning
	// retrain stall: the host timeline pauses while the pilot refines on a
	// replay-memory minibatch, and every request queued across the stall is
	// charged its duration here instead of in QueueNS. Zero with online
	// learning off.
	PilotRetrainNS int64 `json:"pilot_retrain_ns"`
	// ComputeNS is the request's own kernel time.
	ComputeNS int64 `json:"compute_ns"`
	// ExposedNS is transfer stall time the prefetcher failed to hide.
	ExposedNS int64 `json:"exposed_ns"`
	// RematNS is rematerialization time.
	RematNS int64 `json:"remat_ns"`
	// FaultNS is fault-handling and retry-ladder time.
	FaultNS int64 `json:"fault_ns"`
	// AllReduceNS is exposed all-reduce interference (training-side runs;
	// zero for served requests, which do not synchronize gradients).
	AllReduceNS int64 `json:"allreduce_ns"`
	// BatchNS is the batching residual described above; may be negative.
	BatchNS int64 `json:"batch_ns"`
}

// TotalNS sums the components — by construction, the end-to-end simulated
// latency the decomposition explains.
func (a AttributionComponents) TotalNS() int64 {
	return a.QueueNS + a.QuotaNS + a.PilotNS + a.PilotRetrainNS + a.ComputeNS +
		a.ExposedNS + a.RematNS + a.FaultNS + a.AllReduceNS + a.BatchNS
}

// Add accumulates another decomposition (per-request into per-tenant).
func (a *AttributionComponents) Add(o AttributionComponents) {
	a.QueueNS += o.QueueNS
	a.QuotaNS += o.QuotaNS
	a.PilotNS += o.PilotNS
	a.PilotRetrainNS += o.PilotRetrainNS
	a.ComputeNS += o.ComputeNS
	a.ExposedNS += o.ExposedNS
	a.RematNS += o.RematNS
	a.FaultNS += o.FaultNS
	a.AllReduceNS += o.AllReduceNS
	a.BatchNS += o.BatchNS
}

// AttributionComponent is one named share of a decomposition.
type AttributionComponent struct {
	Name string
	NS   int64
}

// Named returns the components in fixed taxonomy order, for reports and
// Prometheus families (no map iteration — output order is deterministic).
func (a AttributionComponents) Named() []AttributionComponent {
	return []AttributionComponent{
		{"queue", a.QueueNS},
		{"quota", a.QuotaNS},
		{"pilot", a.PilotNS},
		{"pilot_retrain", a.PilotRetrainNS},
		{"compute", a.ComputeNS},
		{"exposed", a.ExposedNS},
		{"remat", a.RematNS},
		{"fault", a.FaultNS},
		{"allreduce", a.AllReduceNS},
		{"batch", a.BatchNS},
	}
}

// Dominant returns the largest component (first wins ties, in taxonomy
// order) — the headline of an attribution report.
func (a AttributionComponents) Dominant() AttributionComponent {
	named := a.Named()
	top := named[0]
	for _, c := range named[1:] {
		if c.NS > top.NS {
			top = c
		}
	}
	return top
}

// LatencyAttribution aggregates per-request decompositions for one tenant (or
// the whole run): every completed request, and the p99 tail on its own, so
// "what is the tail made of" is answered directly.
type LatencyAttribution struct {
	// All sums every completed request; All.TotalNS() is the exact sum of
	// their end-to-end latencies.
	All AttributionComponents `json:"all"`
	// Tail sums the requests whose latency reached the aggregate's exact p99;
	// TailCount is how many that is.
	Tail      AttributionComponents `json:"tail"`
	TailCount int64                 `json:"tail_count"`
}
