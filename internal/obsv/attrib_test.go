package obsv

import "testing"

// TestAttributionSumInvariant: TotalNS is the exact sum of the components —
// the property that makes the decomposition an explanation of the end-to-end
// latency rather than an approximation of it.
func TestAttributionSumInvariant(t *testing.T) {
	a := AttributionComponents{
		QueueNS: 7, QuotaNS: 11, PilotNS: 13, PilotRetrainNS: 37, ComputeNS: 17,
		ExposedNS: 19, RematNS: 23, FaultNS: 29, AllReduceNS: 31, BatchNS: -5,
	}
	want := int64(7 + 11 + 13 + 37 + 17 + 19 + 23 + 29 + 31 - 5)
	if got := a.TotalNS(); got != want {
		t.Errorf("TotalNS() = %d, want %d", got, want)
	}

	// Named must cover every component exactly once: its sum equals TotalNS.
	named := a.Named()
	var sum int64
	seen := map[string]bool{}
	for _, c := range named {
		sum += c.NS
		if seen[c.Name] {
			t.Errorf("Named() repeats component %q", c.Name)
		}
		seen[c.Name] = true
	}
	if sum != a.TotalNS() {
		t.Errorf("sum of Named() = %d, TotalNS() = %d", sum, a.TotalNS())
	}
	wantOrder := []string{"queue", "quota", "pilot", "pilot_retrain", "compute", "exposed", "remat", "fault", "allreduce", "batch"}
	if len(named) != len(wantOrder) {
		t.Fatalf("Named() has %d components, want %d", len(named), len(wantOrder))
	}
	for i, c := range named {
		if c.Name != wantOrder[i] {
			t.Errorf("Named()[%d] = %q, want %q", i, c.Name, wantOrder[i])
		}
	}
}

// TestAttributionAddPreservesSum: accumulation (per-request into per-tenant)
// is component-wise, so the sum invariant survives aggregation.
func TestAttributionAddPreservesSum(t *testing.T) {
	a := AttributionComponents{QueueNS: 3, ComputeNS: 9, BatchNS: -1}
	b := AttributionComponents{QuotaNS: 5, ExposedNS: 21, FaultNS: 2, BatchNS: 4}
	wantTotal := a.TotalNS() + b.TotalNS()
	a.Add(b)
	if a.TotalNS() != wantTotal {
		t.Errorf("Add broke the sum: got %d, want %d", a.TotalNS(), wantTotal)
	}
	if a.QuotaNS != 5 || a.BatchNS != 3 || a.QueueNS != 3 {
		t.Errorf("Add mis-accumulated: %+v", a)
	}
}

func TestAttributionDominant(t *testing.T) {
	a := AttributionComponents{QueueNS: 10, ExposedNS: 40, ComputeNS: 40}
	// Ties resolve in taxonomy order: compute precedes exposed.
	if d := a.Dominant(); d.Name != "compute" || d.NS != 40 {
		t.Errorf("Dominant() = %+v, want compute/40", d)
	}
	a.ExposedNS = 41
	if d := a.Dominant(); d.Name != "exposed" || d.NS != 41 {
		t.Errorf("Dominant() = %+v, want exposed/41", d)
	}
}
