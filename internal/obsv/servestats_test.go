package obsv

import (
	"strings"
	"testing"
)

func TestServeStatsInSnapshotAndPrometheus(t *testing.T) {
	rec := NewRecorder("serve/tenant-a", 1, nil)
	rec.SetServe(ServeStats{
		Tenant: "tenant-a", Arrivals: 100, Shed: 5, QuotaShed: 2,
		Completed: 93, SLONS: 1e6, SLOViolations: 3,
		MeanNS: 4000, P50NS: 3500, P99NS: 9000, P999NS: 9500, MaxNS: 9600,
		QuotaBytes: 1 << 20, QuotaPeakBytes: 1 << 19,
	})
	s := rec.Snapshot()
	if s.Serve == nil || s.Serve.Arrivals != 100 || s.Serve.Completed != 93 {
		t.Fatalf("serve block missing or wrong: %+v", s.Serve)
	}

	g := NewRegistry()
	g.Register(rec)
	var b strings.Builder
	g.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`dynn_serve_arrivals_total{run="serve/tenant-a",tenant="tenant-a"} 100`,
		`dynn_serve_shed_total{run="serve/tenant-a",tenant="tenant-a",reason="backpressure"} 5`,
		`dynn_serve_shed_total{run="serve/tenant-a",tenant="tenant-a",reason="quota"} 2`,
		`dynn_serve_slo_violations_total{run="serve/tenant-a",tenant="tenant-a"} 3`,
		`dynn_serve_latency_seconds{run="serve/tenant-a",tenant="tenant-a",quantile="0.99"} 9e-06`,
		`dynn_serve_quota_bytes{run="serve/tenant-a",tenant="tenant-a"} 1.048576e+06`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestSampleTraceShiftAndQueueSpan(t *testing.T) {
	tr := NewTracer()
	st := tr.Sample(7)
	st.Span(SpanCompute, LaneCompute, 0, 0, 100, 0)
	st.Span(SpanPrefetch, LaneH2D, 1, 40, 60, 512)
	st.Shift(250)
	st.Span(SpanQueue, LaneHost, -1, 0, 250, 0)

	if got := tr.At(7); got != st {
		t.Fatalf("At(7) = %p, want %p", got, st)
	}
	if tr.At(3) != nil {
		t.Error("At(3) should be nil for unregistered index")
	}

	var compute, queue *Span
	for i := range st.spans {
		switch st.spans[i].Kind {
		case SpanCompute:
			compute = &st.spans[i]
		case SpanQueue:
			queue = &st.spans[i]
		}
	}
	if compute == nil || compute.StartNS != 250 {
		t.Errorf("compute span not shifted: %+v", compute)
	}
	if queue == nil || queue.StartNS != 0 || queue.DurNS != 250 {
		t.Errorf("queue span wrong: %+v", queue)
	}
	if st.makespanNS() != 350 {
		t.Errorf("makespan = %d, want 350", st.makespanNS())
	}

	// Queue spans survive the Chrome round trip like any other kind.
	var b strings.Builder
	if err := WriteChromeTrace(&b, tr.Spans(), ChromeMeta{Samples: 1}); err != nil {
		t.Fatal(err)
	}
	spans, _, err := ReadChromeTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range spans {
		if sp.Kind == SpanQueue && sp.DurNS == 250 && sp.Lane == LaneHost {
			found = true
		}
	}
	if !found {
		t.Errorf("queue span lost in round trip: %+v", spans)
	}

	// Nil-safety matches the rest of the SampleTrace API.
	var nilST *SampleTrace
	nilST.Shift(10)
	var nilTr *Tracer
	if nilTr.At(0) != nil {
		t.Error("nil tracer At should be nil")
	}
}
