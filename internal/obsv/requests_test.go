package obsv

import (
	"bytes"
	"testing"
)

// TestAssembleRequests: spans regroup into per-request timelines ordered by
// id, with the start/end bracket, queue-wait sum, and per-lane occupancy.
func TestAssembleRequests(t *testing.T) {
	spans := []Span{
		// Request 2, interleaved with request 1 on purpose.
		{Kind: SpanCompute, Lane: LaneCompute, StartNS: 200, DurNS: 50, Request: 2, Tenant: "beta", Replica: 1},
		{Kind: SpanQueue, Lane: LaneHost, StartNS: 150, DurNS: 50, Request: 2, Tenant: "beta", Replica: 1},
		// Request 1 spans two lanes.
		{Kind: SpanQueue, Lane: LaneHost, StartNS: 0, DurNS: 100, Request: 1, Tenant: "alpha"},
		{Kind: SpanCompute, Lane: LaneCompute, StartNS: 100, DurNS: 30, Request: 1, Tenant: "alpha"},
		{Kind: SpanPrefetch, Lane: LaneH2D, StartNS: 100, DurNS: 40, Bytes: 64, Request: 1, Tenant: "alpha"},
		// Unstamped training span: skipped.
		{Kind: SpanCompute, Lane: LaneCompute, StartNS: 0, DurNS: 999},
	}
	views := AssembleRequests(spans)
	if len(views) != 2 {
		t.Fatalf("got %d views, want 2", len(views))
	}
	v1, v2 := views[0], views[1]
	if v1.Request != 1 || v2.Request != 2 {
		t.Fatalf("views out of id order: %d, %d", v1.Request, v2.Request)
	}
	if v1.Tenant != "alpha" || v1.Replica != 0 || v2.Tenant != "beta" || v2.Replica != 1 {
		t.Errorf("identity wrong: %+v / %+v", v1, v2)
	}
	if v1.StartNS != 0 || v1.EndNS != 140 {
		t.Errorf("request 1 bracket [%d, %d], want [0, 140]", v1.StartNS, v1.EndNS)
	}
	if v1.QueueNS != 100 || v2.QueueNS != 50 {
		t.Errorf("queue sums %d / %d, want 100 / 50", v1.QueueNS, v2.QueueNS)
	}
	if v1.LaneBusyNS[LaneCompute] != 30 || v1.LaneBusyNS[LaneH2D] != 40 || v1.LaneBusyNS[LaneHost] != 100 {
		t.Errorf("request 1 lane occupancy %+v", v1.LaneBusyNS)
	}
	if len(v1.Spans) != 3 || len(v2.Spans) != 2 {
		t.Errorf("span groups sized %d / %d, want 3 / 2", len(v1.Spans), len(v2.Spans))
	}
}

func TestAssembleRequestsEmpty(t *testing.T) {
	if v := AssembleRequests(nil); v != nil {
		t.Errorf("nil spans: %+v", v)
	}
	if v := AssembleRequests([]Span{{Kind: SpanCompute, Lane: LaneCompute, DurNS: 1}}); v != nil {
		t.Errorf("unstamped spans only: %+v", v)
	}
}

// TestRequestStampsRoundTripChromeTrace: request identity survives the Chrome
// Trace write/read cycle, so dynntrace can reassemble request timelines from
// a file on disk.
func TestRequestStampsRoundTripChromeTrace(t *testing.T) {
	tr := NewTracer(WithAbsoluteTime())
	st := tr.Sample(0)
	st.Span(SpanCompute, LaneCompute, 3, 100, 40, 0)
	st.SetRequest(7, "alpha")
	st.SetReplica(2)
	st.Span(SpanQueue, LaneHost, -1, 0, 100, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans(), ChromeMeta{Label: "t"}); err != nil {
		t.Fatal(err)
	}
	spans, _, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	views := AssembleRequests(spans)
	if len(views) != 1 {
		t.Fatalf("got %d views, want 1", len(views))
	}
	v := views[0]
	if v.Request != 7 || v.Tenant != "alpha" || v.Replica != 2 {
		t.Errorf("identity lost in round-trip: %+v", v)
	}
	if v.QueueNS != 100 || v.LaneBusyNS[LaneCompute] != 40 {
		t.Errorf("span content lost in round-trip: %+v", v)
	}
}
