package obsv

import (
	"encoding/json"
	"io"
)

// The flight recorder answers "what led up to this?" without always-on full
// tracing: each replica keeps a bounded ring of recent request-lifecycle
// events, written with zero allocation from the serving event loop, and the
// ring is snapshotted when something worth a post-mortem happens (an SLO
// breach, a fault-ladder degradation, an engine capacity error). Every field
// is derived from the simulated clock and seeded configuration, so snapshots
// replay bit-identically with the rest of the run.

// Flight-recorder defaults applied when FlightConfig fields are zero.
const (
	// DefaultFlightEvents is the ring capacity per replica.
	DefaultFlightEvents = 256
	// DefaultFlightSnapshots bounds triggered snapshots per replica.
	DefaultFlightSnapshots = 4
)

// Flight event kinds recorded by the serving layer.
const (
	FlightAdmit        = "admit"
	FlightShed         = "shed"
	FlightQuotaShed    = "quota-shed"
	FlightDispatch     = "dispatch"
	FlightComplete     = "complete"
	FlightSLOBreach    = "slo-breach"
	FlightFaultDegrade = "fault-degrade"
	FlightCapacity     = "capacity"
	FlightScaleUp      = "scale-up"
	FlightScaleDown    = "scale-down"
)

// FlightConfig sizes the per-replica flight recorder. Events > 0 enables
// recording; the zero value disables it entirely.
type FlightConfig struct {
	// Events is the ring capacity (recent events kept); <= 0 with recording
	// enabled means DefaultFlightEvents.
	Events int
	// MaxSnapshots bounds triggered snapshots per replica; <= 0 means
	// DefaultFlightSnapshots. The first trigger of each reason always fits.
	MaxSnapshots int
}

// FlightEvent is one lifecycle event. All times are simulated nanoseconds.
type FlightEvent struct {
	AtNS int64  `json:"at_ns"`
	Kind string `json:"kind"`
	// Request identity; zero values when the event is not request-scoped
	// (dispatch, scale transitions).
	Tenant  string `json:"tenant,omitempty"`
	Request int64  `json:"request,omitempty"`
	Seq     int    `json:"seq,omitempty"`
	// Replica the event happened on.
	Replica int `json:"replica,omitempty"`
	// N is an event-specific count (batch size on dispatch, active replicas
	// on scale transitions, injected fault count on fault-degrade).
	N int `json:"n,omitempty"`
	// DurNS is an event-specific duration: end-to-end latency on complete,
	// deadline overshoot on slo-breach, batch service time on dispatch.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Bytes is the request's reserved memory need, when known.
	Bytes int64 `json:"bytes,omitempty"`
}

// FlightSnapshot is the ring's content at a trigger, oldest event first.
type FlightSnapshot struct {
	AtNS    int64  `json:"at_ns"`
	Replica int    `json:"replica"`
	Reason  string `json:"reason"`
	// Dropped counts events lost to ring wrap-around before this snapshot.
	Dropped int64         `json:"dropped"`
	Events  []FlightEvent `json:"events"`
}

// WriteJSONL writes the snapshot as JSON Lines: one header object (at_ns,
// replica, reason, dropped), then one line per event, oldest first.
func (s FlightSnapshot) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	header := struct {
		AtNS    int64  `json:"at_ns"`
		Replica int    `json:"replica"`
		Reason  string `json:"reason"`
		Dropped int64  `json:"dropped"`
		Events  int    `json:"events"`
	}{s.AtNS, s.Replica, s.Reason, s.Dropped, len(s.Events)}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, ev := range s.Events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// FlightRecorder is one replica's bounded event ring. It is written by the
// (serial) serving event loop; Record never allocates after construction.
// All methods are nil-safe no-ops, the same discipline as SampleTrace.
type FlightRecorder struct {
	replica  int
	ring     []FlightEvent
	next     int   // ring write cursor
	total    int64 // events ever recorded
	maxSnaps int
	taken    map[string]bool // reasons already snapshotted
	snaps    []FlightSnapshot
}

// NewFlightRecorder builds a recorder for one replica under cfg; nil when the
// config leaves recording disabled.
func NewFlightRecorder(replica int, cfg FlightConfig) *FlightRecorder {
	if cfg.Events <= 0 {
		return nil
	}
	events := cfg.Events
	maxSnaps := cfg.MaxSnapshots
	if maxSnaps <= 0 {
		maxSnaps = DefaultFlightSnapshots
	}
	return &FlightRecorder{
		replica:  replica,
		ring:     make([]FlightEvent, events),
		maxSnaps: maxSnaps,
		taken:    make(map[string]bool, 4),
	}
}

// Record appends one event, overwriting the oldest when the ring is full.
// The event's Replica field is stamped from the recorder.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	ev.Replica = f.replica
	f.ring[f.next] = ev
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
	}
	f.total++
}

// Len reports how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	if f.total < int64(len(f.ring)) {
		return int(f.total)
	}
	return len(f.ring)
}

// Dropped counts events lost to wrap-around.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	if d := f.total - int64(len(f.ring)); d > 0 {
		return d
	}
	return 0
}

// Events returns the ring's current content, oldest first (a copy).
func (f *FlightRecorder) Events() []FlightEvent {
	n := f.Len()
	if n == 0 {
		return nil
	}
	out := make([]FlightEvent, 0, n)
	start := 0
	if f.total > int64(len(f.ring)) {
		start = f.next // oldest surviving event
	}
	for i := 0; i < n; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// Snapshot captures the ring under a trigger reason. Each reason is captured
// at most once per replica (the post-mortem wants the first occurrence, not
// hundreds of near-identical copies), and triggered snapshots are bounded by
// MaxSnapshots. Reports whether a snapshot was taken.
func (f *FlightRecorder) Snapshot(atNS int64, reason string) bool {
	if f == nil || f.taken[reason] || len(f.snaps) >= f.maxSnaps {
		return false
	}
	f.taken[reason] = true
	f.snaps = append(f.snaps, FlightSnapshot{
		AtNS: atNS, Replica: f.replica, Reason: reason,
		Dropped: f.Dropped(), Events: f.Events(),
	})
	return true
}

// FinalSnapshot captures the ring unconditionally at end of run (reason
// "final"), outside the trigger budget, so a completed run always leaves one
// inspectable recording per replica.
func (f *FlightRecorder) FinalSnapshot(atNS int64) {
	if f == nil {
		return
	}
	f.snaps = append(f.snaps, FlightSnapshot{
		AtNS: atNS, Replica: f.replica, Reason: "final",
		Dropped: f.Dropped(), Events: f.Events(),
	})
}

// Snapshots returns the captured snapshots in trigger order.
func (f *FlightRecorder) Snapshots() []FlightSnapshot {
	if f == nil {
		return nil
	}
	return f.snaps
}
