package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{100, 200, 400, 800, 100_000} {
		h.Observe(ns)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d", s.Count)
	}
	if s.SumNS != 101_500 {
		t.Errorf("sum = %d", s.SumNS)
	}
	if s.MaxNS != 100_000 {
		t.Errorf("max = %d", s.MaxNS)
	}
	if s.MeanNS != 101_500/5 {
		t.Errorf("mean = %d", s.MeanNS)
	}
	// P50 bucket upper bound must bracket the median (400ns → bucket 2^9).
	if s.P50NS < 400 || s.P50NS > 1024 {
		t.Errorf("p50 = %d", s.P50NS)
	}
	if s.P99NS < 100_000 {
		t.Errorf("p99 = %d, want >= max observation's bucket", s.P99NS)
	}
}

func TestHistogramNegativeDuration(t *testing.T) {
	var h Histogram
	h.Observe(-5) // defensive: clock skew must not panic or corrupt
	if s := h.Snapshot(); s.Count != 1 || s.SumNS != 0 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestRecorderSnapshot(t *testing.T) {
	r := NewRecorder("test", 4, nil)
	for i := 0; i < 10; i++ {
		r.ObservePhase("pilot", int64(1000+i))
		r.ObserveSample(i, i%5 == 0, i%2 == 0, 2000)
	}
	s := r.Finish()
	if s.Samples != 10 || s.Mispredicts != 2 || s.CacheHits != 5 {
		t.Errorf("stats = %+v", s)
	}
	if s.MispredictRate != 0.2 || s.CacheHitRate != 0.5 {
		t.Errorf("rates = %v %v", s.MispredictRate, s.CacheHitRate)
	}
	if s.SamplesPerSec <= 0 {
		t.Error("samples/sec not derived")
	}
	if s.Phases["pilot"].Count != 10 {
		t.Errorf("phase count = %d", s.Phases["pilot"].Count)
	}
	if got := r.PhaseNames(); len(got) != 1 || got[0] != "pilot" {
		t.Errorf("phase names = %v", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("conc", 8, NewJSONLSink(&lockedBuffer{}))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.ObservePhase("simulate", int64(i))
				r.ObserveSample(g*200+i, i%3 == 0, false, int64(i))
			}
		}(g)
	}
	wg.Wait()
	if s := r.Finish(); s.Samples != 1600 {
		t.Errorf("samples = %d", s.Samples)
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer for the concurrency test.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func TestJSONLSinkSchema(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder("schema", 2, NewJSONLSink(&buf))
	r.ObserveSample(7, true, true, 1234)
	r.Finish()

	sc := bufio.NewScanner(&buf)
	var types []string
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
		if ev.Type == EventSample && (ev.Sample != 7 || !ev.Mispredicted || !ev.CacheHit) {
			t.Errorf("sample event = %+v", ev)
		}
		if ev.Type == EventRunEnd && (ev.Stats == nil || ev.Stats.Samples != 1) {
			t.Errorf("run_end missing stats: %+v", ev)
		}
	}
	if want := []string{EventRunStart, EventSample, EventRunEnd}; strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("event order = %v", types)
	}
}
