package obsv

import (
	"strings"
	"testing"
)

func TestFlightRecorderDisabled(t *testing.T) {
	if f := NewFlightRecorder(0, FlightConfig{}); f != nil {
		t.Fatal("zero config should disable the recorder")
	}
	// Nil-safety: every method is a no-op on a nil recorder.
	var f *FlightRecorder
	f.Record(FlightEvent{Kind: FlightAdmit})
	f.FinalSnapshot(1)
	if f.Len() != 0 || f.Dropped() != 0 || f.Events() != nil || f.Snapshots() != nil || f.Snapshot(1, "x") {
		t.Error("nil recorder is not a no-op")
	}
}

// TestFlightRecorderRingWrap: the ring keeps the most recent Events entries,
// oldest first, and counts what wrap-around dropped.
func TestFlightRecorderRingWrap(t *testing.T) {
	f := NewFlightRecorder(2, FlightConfig{Events: 4})
	for i := 1; i <= 7; i++ {
		f.Record(FlightEvent{AtNS: int64(i), Kind: FlightAdmit})
	}
	if f.Len() != 4 {
		t.Errorf("Len() = %d, want 4", f.Len())
	}
	if f.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", f.Dropped())
	}
	evs := f.Events()
	for i, want := range []int64{4, 5, 6, 7} {
		if evs[i].AtNS != want {
			t.Errorf("Events()[%d].AtNS = %d, want %d", i, evs[i].AtNS, want)
		}
		if evs[i].Replica != 2 {
			t.Errorf("Events()[%d].Replica = %d, want 2 (stamped by Record)", i, evs[i].Replica)
		}
	}
}

// TestFlightRecorderRecordAllocationFree: Record is on the serving event
// loop's hot path and must not allocate after construction.
func TestFlightRecorderRecordAllocationFree(t *testing.T) {
	f := NewFlightRecorder(0, FlightConfig{Events: 64})
	ev := FlightEvent{Kind: FlightComplete, Tenant: "alpha", Request: 9, DurNS: 100}
	if allocs := testing.AllocsPerRun(200, func() { f.Record(ev) }); allocs != 0 {
		t.Errorf("Record allocates %v per call, want 0", allocs)
	}
}

// TestFlightRecorderSnapshots: one snapshot per reason, bounded by
// MaxSnapshots; FinalSnapshot lands outside the budget.
func TestFlightRecorderSnapshots(t *testing.T) {
	f := NewFlightRecorder(1, FlightConfig{Events: 8, MaxSnapshots: 2})
	f.Record(FlightEvent{AtNS: 1, Kind: FlightAdmit})
	if !f.Snapshot(10, FlightSLOBreach) {
		t.Fatal("first snapshot refused")
	}
	if f.Snapshot(11, FlightSLOBreach) {
		t.Error("duplicate reason should not snapshot again")
	}
	if !f.Snapshot(12, FlightFaultDegrade) {
		t.Error("second distinct reason refused under budget 2")
	}
	if f.Snapshot(13, FlightCapacity) {
		t.Error("third snapshot should exceed MaxSnapshots=2")
	}
	f.FinalSnapshot(99)
	snaps := f.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3 (2 triggered + final)", len(snaps))
	}
	if snaps[0].Reason != FlightSLOBreach || snaps[1].Reason != FlightFaultDegrade || snaps[2].Reason != "final" {
		t.Errorf("snapshot reasons = %q, %q, %q", snaps[0].Reason, snaps[1].Reason, snaps[2].Reason)
	}
	if snaps[2].AtNS != 99 || snaps[2].Replica != 1 {
		t.Errorf("final snapshot header %+v", snaps[2])
	}
	if len(snaps[0].Events) != 1 || snaps[0].Events[0].AtNS != 1 {
		t.Errorf("snapshot did not capture the ring: %+v", snaps[0].Events)
	}
}

func TestFlightSnapshotWriteJSONL(t *testing.T) {
	f := NewFlightRecorder(3, FlightConfig{Events: 4})
	f.Record(FlightEvent{AtNS: 5, Kind: FlightAdmit, Tenant: "a&b", Request: 1, Bytes: 64})
	f.Record(FlightEvent{AtNS: 9, Kind: FlightComplete, Tenant: "a&b", Request: 1, DurNS: 4})
	f.Snapshot(9, FlightSLOBreach)
	var sb strings.Builder
	if err := f.Snapshots()[0].WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want header + 2 events:\n%s", len(lines), sb.String())
	}
	if !strings.Contains(lines[0], `"reason":"slo-breach"`) || !strings.Contains(lines[0], `"events":2`) {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], `"kind":"admit"`) || !strings.Contains(lines[1], `"replica":3`) {
		t.Errorf("event line %q", lines[1])
	}
	if !strings.Contains(lines[2], `"dur_ns":4`) {
		t.Errorf("event line %q", lines[2])
	}
}
