package obsv

// ServeStats summarizes one serving run (or one tenant's slice of it) on the
// simulated clock: how much load arrived, how much was admitted versus shed,
// and the exact end-to-end latency quantiles. Unlike the phase Histograms —
// whose quantiles are power-of-two bucket bounds — the serving layer computes
// these quantiles exactly from its sorted per-request latencies, because SLO
// attainment is the quantity under test, not a diagnostic. Defined here (like
// FaultStats) so obsv keeps zero dependencies on the rest of the repo.
type ServeStats struct {
	Tenant   string `json:"tenant,omitempty"`
	Arrivals int64  `json:"arrivals"`
	// Shed counts requests refused at admission because the tenant's queue
	// was full (backpressure); QuotaShed counts refusals because the request
	// could never fit the tenant's memory quota.
	Shed      int64 `json:"shed"`
	QuotaShed int64 `json:"quota_shed"`
	Completed int64 `json:"completed"`
	// Batches is the number of continuous-batch dispatches (global view only;
	// zero on per-tenant stats).
	Batches int64 `json:"batches,omitempty"`
	// SLONS is the configured deadline budget; SLOViolations counts completed
	// requests whose end-to-end latency exceeded it.
	SLONS         int64 `json:"slo_ns,omitempty"`
	SLOViolations int64 `json:"slo_violations"`
	// End-to-end latency (arrival to completion, simulated ns), exact.
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	MaxNS  int64 `json:"max_ns"`
	// Mean time a completed request spent queued before its batch dispatched.
	QueueMeanNS int64 `json:"queue_mean_ns"`
	// Memory accounting from the allocator's reservation layer.
	QuotaBytes     int64 `json:"quota_bytes,omitempty"`
	QuotaPeakBytes int64 `json:"quota_peak_bytes,omitempty"`
	// Attribution decomposes the completed requests' summed end-to-end latency
	// into named causes (and the p99 tail's slice on its own); All.TotalNS()
	// equals the exact sum of the per-request latencies.
	Attribution *LatencyAttribution `json:"attribution,omitempty"`
}

// SetServe attaches a serving summary so it rides along in RunStats and the
// Prometheus exposition, mirroring SetOverlap.
func (r *Recorder) SetServe(s ServeStats) {
	r.serveMu.Lock()
	r.serve = &s
	r.serveMu.Unlock()
}
