package obsv

// ServeStats summarizes one serving run (or one tenant's slice of it) on the
// simulated clock: how much load arrived, how much was admitted versus shed,
// and the exact end-to-end latency quantiles. Unlike the phase Histograms —
// whose quantiles are power-of-two bucket bounds — the serving layer computes
// these quantiles exactly from its sorted per-request latencies, because SLO
// attainment is the quantity under test, not a diagnostic. Defined here (like
// FaultStats) so obsv keeps zero dependencies on the rest of the repo.
type ServeStats struct {
	Tenant   string `json:"tenant,omitempty"`
	Arrivals int64  `json:"arrivals"`
	// Shed counts requests refused at admission because the tenant's queue
	// was full (backpressure); QuotaShed counts refusals because the request
	// could never fit the tenant's memory quota.
	Shed      int64 `json:"shed"`
	QuotaShed int64 `json:"quota_shed"`
	Completed int64 `json:"completed"`
	// Batches is the number of continuous-batch dispatches (global view only;
	// zero on per-tenant stats).
	Batches int64 `json:"batches,omitempty"`
	// SLONS is the configured deadline budget; SLOViolations counts completed
	// requests whose end-to-end latency exceeded it.
	SLONS         int64 `json:"slo_ns,omitempty"`
	SLOViolations int64 `json:"slo_violations"`
	// End-to-end latency (arrival to completion, simulated ns), exact.
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	MaxNS  int64 `json:"max_ns"`
	// Mean time a completed request spent queued before its batch dispatched.
	QueueMeanNS int64 `json:"queue_mean_ns"`
	// Memory accounting from the allocator's reservation layer.
	QuotaBytes     int64 `json:"quota_bytes,omitempty"`
	QuotaPeakBytes int64 `json:"quota_peak_bytes,omitempty"`
	// Attribution decomposes the completed requests' summed end-to-end latency
	// into named causes (and the p99 tail's slice on its own); All.TotalNS()
	// equals the exact sum of the per-request latencies.
	Attribution *LatencyAttribution `json:"attribution,omitempty"`
	// Online summarizes in-loop pilot learning; nil when online learning is
	// off (global view only; nil on per-tenant stats).
	Online *OnlineStats `json:"online,omitempty"`
}

// OnlineStats summarizes one serving run's online pilot learning: how many
// outcomes the replay memory observed, how many retrain stalls fired and what
// they cost on the simulated clock, and the windowed mispredict-rate
// trajectory the learning is supposed to bend downward.
type OnlineStats struct {
	// Observed counts completed requests whose (features, truth-path) outcome
	// entered the replay memory; Mispredicts counts those whose pilot
	// prediction disagreed with the resolved truth path.
	Observed    int64 `json:"observed"`
	Mispredicts int64 `json:"mispredicts"`
	// Retrains counts retrain stalls; RetrainNS is their summed simulated
	// cost charged to the host timeline.
	Retrains  int64 `json:"retrains"`
	RetrainNS int64 `json:"retrain_ns"`
	// MemorySize is the number of live entries in the shared replay ring at
	// the end of the run; MemoryCap its fixed capacity.
	MemorySize int `json:"memory_size"`
	MemoryCap  int `json:"memory_cap"`
	// AdapterTenants counts tenants that had warmed a per-tenant adapter head.
	AdapterTenants int `json:"adapter_tenants,omitempty"`
	// WindowRates is the mispredict-rate trajectory: one sample per completed
	// observation window, in observation order.
	WindowRates []OnlineWindowRate `json:"window_rates,omitempty"`
}

// OnlineWindowRate is one point of the windowed mispredict trajectory.
type OnlineWindowRate struct {
	// EndSeq is the 1-based observation count at which the window closed.
	EndSeq int64 `json:"end_seq"`
	// Mispredicts out of Window observations in this window.
	Mispredicts int `json:"mispredicts"`
	Window      int `json:"window"`
	// Rate = Mispredicts / Window.
	Rate float64 `json:"rate"`
}

// FirstWindowRate and LastWindowRate return the trajectory endpoints, or -1
// when no window closed (convenient for decline checks in tests and sweeps).
func (o *OnlineStats) FirstWindowRate() float64 {
	if o == nil || len(o.WindowRates) == 0 {
		return -1
	}
	return o.WindowRates[0].Rate
}

func (o *OnlineStats) LastWindowRate() float64 {
	if o == nil || len(o.WindowRates) == 0 {
		return -1
	}
	return o.WindowRates[len(o.WindowRates)-1].Rate
}

// SetServe attaches a serving summary so it rides along in RunStats and the
// Prometheus exposition, mirroring SetOverlap.
func (r *Recorder) SetServe(s ServeStats) {
	r.serveMu.Lock()
	r.serve = &s
	r.serveMu.Unlock()
}
