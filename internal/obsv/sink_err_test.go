package obsv

import (
	"errors"
	"strings"
	"testing"
)

// failWriter fails every write — a full disk or closed pipe, at its worst.
type failWriter struct{ calls int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.calls++
	return 0, errors.New("disk full")
}

func TestJSONLSinkCountsDrops(t *testing.T) {
	s := NewJSONLSink(&failWriter{})
	for i := 0; i < 3; i++ {
		s.Emit(Event{Type: EventSample, Sample: i})
	}
	if s.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", s.Dropped())
	}
	err := s.Flush()
	if err == nil {
		t.Fatal("Flush returned nil after 3 dropped events")
	}
	for _, want := range []string{"dropped 3 event(s)", "disk full"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("flush error %q missing %q", err, want)
		}
	}
}

func TestJSONLSinkHealthy(t *testing.T) {
	s := NewJSONLSink(&lockedBuffer{})
	s.Emit(Event{Type: EventRunStart})
	if s.Dropped() != 0 {
		t.Errorf("dropped = %d", s.Dropped())
	}
	if err := s.Flush(); err != nil {
		t.Errorf("flush on healthy sink = %v", err)
	}
}

// TestRecorderReportsSinkFailure pins the satellite fix: a failing sink no
// longer fails silently — Finish surfaces the drop count and first error in
// RunStats, without ever failing the run being observed.
func TestRecorderReportsSinkFailure(t *testing.T) {
	r := NewRecorder("failing", 2, NewJSONLSink(&failWriter{}))
	r.ObserveSample(0, false, false, 100)
	s := r.Finish()
	// run_start, sample, and run_end all dropped.
	if s.SinkDropped != 3 {
		t.Errorf("SinkDropped = %d, want 3", s.SinkDropped)
	}
	if !strings.Contains(s.SinkErr, "disk full") {
		t.Errorf("SinkErr = %q", s.SinkErr)
	}
	if s.Samples != 1 {
		t.Errorf("run stats corrupted by sink failure: %+v", s)
	}
}

func TestRecorderCleanSinkReport(t *testing.T) {
	r := NewRecorder("clean", 2, NewJSONLSink(&lockedBuffer{}))
	r.ObserveSample(0, false, false, 100)
	s := r.Finish()
	if s.SinkDropped != 0 || s.SinkErr != "" {
		t.Errorf("clean sink reported failure: dropped=%d err=%q", s.SinkDropped, s.SinkErr)
	}
}

// TestHistogramQuantileBucketBounds pins the documented quantile semantics:
// every quantile is the upper bound of the power-of-two bucket holding it —
// the smallest 2^i ≥ the true value — and a quantile that lands past the last
// occupied bucket reports from the next occupied bucket's bound (up to MaxNS's
// bucket). 1000 observations with a known rank structure:
//
//	900 × 10ns (bucket 2^4), 90 × 1000ns (2^10),
//	9 × 100µs (2^17), 1 × 10ms (2^24)
func TestHistogramQuantileBucketBounds(t *testing.T) {
	var h Histogram
	observe := func(n int, ns int64) {
		for i := 0; i < n; i++ {
			h.Observe(ns)
		}
	}
	observe(900, 10)
	observe(90, 1000)
	observe(9, 100_000)
	observe(1, 10_000_000)
	s := h.Snapshot()
	if s.Count != 1000 || s.MaxNS != 10_000_000 {
		t.Fatalf("snapshot = %+v", s)
	}
	for _, q := range []struct {
		name string
		got  int64
		want int64
	}{
		{"P50", s.P50NS, 16},        // rank 500 in the 10ns bucket
		{"P90", s.P90NS, 1024},      // rank 900 is the bucket boundary → next bucket
		{"P99", s.P99NS, 1 << 17},   // rank 990 → 100µs bucket
		{"P999", s.P999NS, 1 << 24}, // rank 999 → the max observation's bucket
	} {
		if q.got != q.want {
			t.Errorf("%s = %d, want %d", q.name, q.got, q.want)
		}
		// The documented invariant: quantiles are exact powers of two.
		if q.got&(q.got-1) != 0 {
			t.Errorf("%s = %d is not a power of two", q.name, q.got)
		}
	}
	// A quantile never over-estimates by more than 2x its bucket's values:
	// P999's bound is ≥ the max observation and < 2× it.
	if s.P999NS < s.MaxNS || s.P999NS >= 2*s.MaxNS {
		t.Errorf("P999 = %d outside [max, 2·max) for max %d", s.P999NS, s.MaxNS)
	}
}

func TestHistogramSubNanosecond(t *testing.T) {
	var h Histogram
	h.Observe(0)
	if s := h.Snapshot(); s.P50NS != 1 {
		t.Errorf("sub-ns P50 = %d, want 1 (bucket-0 bound)", s.P50NS)
	}
}
