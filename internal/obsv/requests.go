package obsv

import "sort"

// Request timeline assembly: given a span set where the serving layer stamped
// request identities (SampleTrace.SetRequest/SetReplica), group the spans back
// into one cluster-wide causal timeline per request with per-lane occupancy.
// The input spans are deterministic, grouping is by stable sort, and lane
// totals are plain sums — the assembled views replay bit-identically with the
// trace itself, at any worker count.

// RequestView is one served request's cluster-wide timeline.
type RequestView struct {
	// Request is the run-unique request id; Tenant and Replica identify where
	// it ran.
	Request int64  `json:"request"`
	Tenant  string `json:"tenant,omitempty"`
	Replica int    `json:"replica,omitempty"`
	// StartNS..EndNS bracket every span of the request on the trace's clock
	// (arrival through completion when queue spans are present).
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// QueueNS sums the request's queue-wait spans.
	QueueNS int64 `json:"queue_ns,omitempty"`
	// LaneBusyNS sums span durations per lane (compute, h2d, d2h, host,
	// link/...), the request's occupancy footprint across the cluster.
	LaneBusyNS map[string]int64 `json:"lane_busy_ns,omitempty"`
	// Spans are the request's own spans in canonical order.
	Spans []Span `json:"spans,omitempty"`
}

// AssembleRequests groups request-stamped spans into per-request timelines,
// ordered by request id. Spans with no request identity (training traces,
// unstamped envelopes) are skipped.
func AssembleRequests(spans []Span) []RequestView {
	byReq := map[int64][]Span{}
	for _, sp := range spans {
		if sp.Request == 0 {
			continue
		}
		byReq[sp.Request] = append(byReq[sp.Request], sp)
	}
	if len(byReq) == 0 {
		return nil
	}
	ids := make([]int64, 0, len(byReq))
	for id := range byReq {
		ids = append(ids, id) //dynnlint:ignore determinism keys are sorted immediately below
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	views := make([]RequestView, 0, len(ids))
	for _, id := range ids {
		group := byReq[id]
		SortSpans(group)
		v := RequestView{
			Request:    id,
			Tenant:     group[0].Tenant,
			Replica:    group[0].Replica,
			StartNS:    group[0].StartNS,
			LaneBusyNS: map[string]int64{},
			Spans:      group,
		}
		for _, sp := range group {
			if sp.StartNS < v.StartNS {
				v.StartNS = sp.StartNS
			}
			if e := sp.End(); e > v.EndNS {
				v.EndNS = e
			}
			if sp.Kind == SpanQueue {
				v.QueueNS += sp.DurNS
			}
			v.LaneBusyNS[sp.Lane] += sp.DurNS
		}
		views = append(views, v)
	}
	return views
}
