package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Span tracing records what the end-of-epoch aggregates cannot show: *when*,
// on the simulated DES clock, each prefetch, compute interval, eviction, and
// recovery step ran, so overlap ("did the transfer hide behind compute?") is
// measured rather than inferred. Spans are dual-clock: simulated nanoseconds
// are authoritative and deterministic — the same span set replays bit-for-bit
// at any worker count — while wall-clock annotations (worker id, host
// latency) are opt-in and excluded from the deterministic trace.

// SpanKind classifies one traced interval of a sample's execution.
type SpanKind string

const (
	// SpanSample is the whole-sample envelope on the host track (synthesized
	// by the Tracer from the sample's last span end).
	SpanSample SpanKind = "sample"
	// SpanPilot marks one pilot prediction. Pilot inference is measured in
	// host wall time, not DES time, so the span is an instant on the
	// simulated clock; its wall duration appears only in wall mode.
	SpanPilot SpanKind = "pilot"
	// SpanMapping marks the pilot output→path mapping (instant, like pilot).
	SpanMapping SpanKind = "mapping"
	// SpanCompute is one execution block's compute interval.
	SpanCompute SpanKind = "compute"
	// SpanPrefetch is a scheduled H2D prefetch of a block's tensors.
	SpanPrefetch SpanKind = "prefetch"
	// SpanEvict is a D2H write-back of a retired block's tensors.
	SpanEvict SpanKind = "evict"
	// SpanOnDemand is an exposed on-demand fetch (mis-prediction or dropped
	// prefetch): migration on the critical path.
	SpanOnDemand SpanKind = "ondemand"
	// SpanRetry is one faulted attempt in the recovery ladder: an aborted
	// transfer's wasted lane occupancy, or a backoff wait after a transient
	// allocation failure.
	SpanRetry SpanKind = "retry"
	// SpanFault is the tensor-fault handler round trip charged when a sample
	// degrades to on-demand fetching.
	SpanFault SpanKind = "fault"
	// SpanQueue is a serving request's wait in the admission queue before its
	// batch dispatched (host lane; simulated ns). Timeline reconstruction
	// ignores it — queueing is scheduler state, not device occupancy.
	SpanQueue SpanKind = "queue"
	// SpanAllReduce is one scheduled ring all-reduce send on an interconnect
	// link lane ("link/..."), recorded by the cluster runtime.
	SpanAllReduce SpanKind = "allreduce"
	// SpanOffload is a GPU's layer-offload (H2D+D2H) occupancy of its node's
	// shared host link, on the same "link/..." lanes as the ring sends it
	// contends with.
	SpanOffload SpanKind = "offload"
)

// Lane names for Span.Lane. Compute/H2D/D2H mirror gpusim's three hardware
// queues; host carries sample envelopes, pilot instants, and alloc backoffs.
const (
	LaneCompute = "compute"
	LaneH2D     = "h2d"
	LaneD2H     = "d2h"
	LaneHost    = "host"
)

// Span is one traced interval. StartNS/DurNS are simulated DES nanoseconds;
// until the Tracer lays samples onto the epoch timeline, StartNS is relative
// to the sample's own clock (every sample simulates from t=0).
type Span struct {
	Sample int      `json:"sample"`
	Kind   SpanKind `json:"kind"`
	Lane   string   `json:"lane"`
	// Block is the execution-block index the span belongs to, -1 when the
	// span is not block-scoped (envelope, pilot, mapping).
	Block   int   `json:"block"`
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	Bytes   int64 `json:"bytes,omitempty"`
	// Attempt numbers retry spans within one recovery ladder (1-based).
	Attempt int `json:"attempt,omitempty"`
	// Outcome tags, meaningful on the sample envelope.
	Mispredicted bool `json:"mispredicted,omitempty"`
	CacheHit     bool `json:"cache_hit,omitempty"`
	// Request identity, stamped by the serving layer (SampleTrace.SetRequest)
	// on every span of a served request's trace so one cluster-wide timeline
	// can be assembled per request; Replica is stamped by the cluster runtimes
	// (SetReplica). Zero values on non-serving traces.
	Request int64  `json:"request,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Replica int    `json:"replica,omitempty"`
	// Wall-clock annotations, populated only when the Tracer runs in wall
	// mode (non-deterministic; excluded from the deterministic trace).
	Worker int   `json:"worker,omitempty"`
	WallNS int64 `json:"wall_ns,omitempty"`
}

// End returns the span's end time on its clock.
func (s Span) End() int64 { return s.StartNS + s.DurNS }

// SampleTrace collects one sample's spans. It is written by exactly one
// goroutine (the worker simulating the sample); all methods are nil-safe
// no-ops so untraced call sites need no branching — the same discipline as
// faults.Stream.
type SampleTrace struct {
	sample  int
	wall    bool
	base    int64
	worker  int
	wallSW  Stopwatch
	wallNS  int64
	outcome outcome
	request int64
	tenant  string
	replica int
	spans   []Span
}

// SetBase places the sample on an external shared clock: every span recorded
// after the call lands at base + its in-sample offset. The cluster runtime
// sets it to a GPU's virtual clock before dispatching, so per-GPU work and
// interconnect transfers share one absolute timeline (pair with
// WithAbsoluteTime).
func (st *SampleTrace) SetBase(baseNS int64) {
	if st == nil {
		return
	}
	st.base = baseNS
}

// Span records one interval.
func (st *SampleTrace) Span(kind SpanKind, lane string, block int, startNS, durNS, bytes int64) {
	if st == nil {
		return
	}
	st.spans = append(st.spans, Span{
		Sample: st.sample, Kind: kind, Lane: lane, Block: block,
		StartNS: st.base + startNS, DurNS: durNS, Bytes: bytes,
		Request: st.request, Tenant: st.tenant, Replica: st.replica,
	})
}

// Retry records one faulted attempt of the recovery ladder.
func (st *SampleTrace) Retry(lane string, block int, startNS, durNS, bytes int64, attempt int) {
	if st == nil {
		return
	}
	st.spans = append(st.spans, Span{
		Sample: st.sample, Kind: SpanRetry, Lane: lane, Block: block,
		StartNS: st.base + startNS, DurNS: durNS, Bytes: bytes, Attempt: attempt,
		Request: st.request, Tenant: st.tenant, Replica: st.replica,
	})
}

// SetRequest tags the trace — spans already recorded and spans still to
// come — with the served request's identity, threading the causal request
// context through every lane the request touches. The serving layer calls it
// after dispatch, when the engine's spans are already in place.
func (st *SampleTrace) SetRequest(id int64, tenant string) {
	if st == nil {
		return
	}
	st.request, st.tenant = id, tenant
	for i := range st.spans {
		st.spans[i].Request, st.spans[i].Tenant = id, tenant
	}
}

// SetReplica tags the trace (retroactively and forward) with the GPU replica
// that executed it, so overlapping per-replica work stays attributable on the
// shared cluster clock.
func (st *SampleTrace) SetReplica(r int) {
	if st == nil {
		return
	}
	st.replica = r
	for i := range st.spans {
		st.spans[i].Replica = r
	}
}

// Instant records a zero-duration marker at simulated t=0 whose real cost is
// host wall time (pilot inference, output mapping). The wall duration is
// kept only in wall mode so deterministic traces stay bit-identical.
func (st *SampleTrace) Instant(kind SpanKind, wallNS int64) {
	if st == nil {
		return
	}
	sp := Span{
		Sample: st.sample, Kind: kind, Lane: LaneHost, Block: -1, StartNS: st.base,
		Request: st.request, Tenant: st.tenant, Replica: st.replica,
	}
	if st.wall {
		sp.WallNS = wallNS
		sp.Worker = st.worker
	}
	st.spans = append(st.spans, sp)
}

// Outcome tags the sample's envelope with its prediction outcome.
func (st *SampleTrace) Outcome(mispredicted, cacheHit bool) {
	if st == nil {
		return
	}
	st.outcome = outcome{set: true, mispredicted: mispredicted, cacheHit: cacheHit}
}

// Shift moves every span recorded so far deltaNS later on the simulated
// clock. The serving layer uses it to push a request's engine spans past its
// queue wait before recording the SpanQueue interval at the origin.
func (st *SampleTrace) Shift(deltaNS int64) {
	if st == nil || deltaNS == 0 {
		return
	}
	for i := range st.spans {
		st.spans[i].StartNS += deltaNS
	}
}

type outcome struct {
	set          bool
	mispredicted bool
	cacheHit     bool
}

// makespanNS is the sample's last span end on the simulated clock.
func (st *SampleTrace) makespanNS() int64 {
	var end int64
	for _, sp := range st.spans {
		if e := sp.End(); e > end {
			end = e
		}
	}
	return end
}

// firstStartNS is the sample's earliest span start (0 when empty).
func (st *SampleTrace) firstStartNS() int64 {
	if len(st.spans) == 0 {
		return 0
	}
	start := st.spans[0].StartNS
	for _, sp := range st.spans[1:] {
		if sp.StartNS < start {
			start = sp.StartNS
		}
	}
	return start
}

// Chrome Trace Event Format export (Perfetto-loadable). The file is the
// JSON-object form: {"traceEvents": [...], "displayTimeUnit": "ns",
// "otherData": {...}} with complete ("X"), instant ("i"), and metadata ("M")
// events. Timestamps are microseconds (the format's unit), emitted as exact
// multiples of 1/1000 so ns round-trip through ReadChromeTrace.

// ChromeMeta is run-level metadata carried in the trace file's otherData so
// analysis tools (cmd/dynntrace) can derive bandwidth utilization offline.
type ChromeMeta struct {
	Label string `json:"label,omitempty"`
	// LinkBWBytesPerSec is the simulated PCIe link bandwidth.
	LinkBWBytesPerSec float64 `json:"link_bw_bytes_per_sec,omitempty"`
	Samples           int     `json:"samples,omitempty"`
}

// chromeArgs is the deterministic argument payload of one event. Field order
// is fixed by the struct, so encoding is byte-stable.
type chromeArgs struct {
	Sample       int      `json:"sample,omitempty"`
	Kind         SpanKind `json:"kind,omitempty"`
	Block        *int     `json:"block,omitempty"`
	Bytes        int64    `json:"bytes,omitempty"`
	Attempt      int      `json:"attempt,omitempty"`
	Mispredicted bool     `json:"mispredicted,omitempty"`
	CacheHit     bool     `json:"cache_hit,omitempty"`
	Request      int64    `json:"request,omitempty"`
	Tenant       string   `json:"tenant,omitempty"`
	Replica      int      `json:"replica,omitempty"`
	Worker       int      `json:"worker,omitempty"`
	WallNS       int64    `json:"wall_ns,omitempty"`
	Name         string   `json:"name,omitempty"` // metadata events only
}

type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`
	Dur  *float64    `json:"dur,omitempty"`
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
	OtherData       *ChromeMeta   `json:"otherData,omitempty"`
}

// laneTIDs fixes the lane→thread-id layout of the exported trace.
var laneTIDs = map[string]int{LaneHost: 1, LaneCompute: 2, LaneH2D: 3, LaneD2H: 4}

// laneOfTID inverts laneTIDs.
func laneOfTID(tid int) string {
	for lane, id := range laneTIDs {
		if id == tid {
			return lane
		}
	}
	return LaneHost
}

const chromePID = 1

// usOf converts simulated ns to the format's microsecond unit exactly (the
// fraction is k/1000 with k < 1000, representable without drift for any
// timeline under ~2^53 µs).
func usOf(ns int64) float64 { return float64(ns) / 1e3 }

// nsOf inverts usOf.
func nsOf(us float64) int64 { return int64(math.Round(us * 1e3)) }

// WriteChromeTrace serializes spans (in the order given — use Tracer.Spans
// for the canonical epoch timeline) as Chrome Trace Event Format JSON.
// Lanes beyond the four fixed hardware queues (e.g. the cluster runtime's
// "link/..." interconnect lanes) get thread ids 5+ in first-appearance order,
// each announced by its own thread_name metadata event, so ReadChromeTrace
// round-trips them by name.
func WriteChromeTrace(w io.Writer, spans []Span, meta ChromeMeta) error {
	procName := "dynnoffload"
	if meta.Label != "" {
		procName += " " + meta.Label
	}
	events := []chromeEvent{
		{Name: "process_name", Ph: "M", PID: chromePID, Args: &chromeArgs{Name: procName}},
	}
	for _, lane := range []string{LaneHost, LaneCompute, LaneH2D, LaneD2H} {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: laneTIDs[lane],
			Args: &chromeArgs{Name: lane},
		})
	}
	tids := make(map[string]int, len(laneTIDs))
	for lane, tid := range laneTIDs {
		tids[lane] = tid
	}
	for _, sp := range spans {
		if _, ok := tids[sp.Lane]; !ok {
			tid := len(tids) + 1
			tids[sp.Lane] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: chromePID, TID: tid,
				Args: &chromeArgs{Name: sp.Lane},
			})
		}
	}
	for _, sp := range spans {
		args := &chromeArgs{
			Sample: sp.Sample, Kind: sp.Kind, Bytes: sp.Bytes, Attempt: sp.Attempt,
			Mispredicted: sp.Mispredicted, CacheHit: sp.CacheHit,
			Request: sp.Request, Tenant: sp.Tenant, Replica: sp.Replica,
			Worker: sp.Worker, WallNS: sp.WallNS,
		}
		if sp.Block >= 0 {
			b := sp.Block
			args.Block = &b
		}
		ev := chromeEvent{
			Name: string(sp.Kind), Cat: string(sp.Kind), Ph: "X",
			TS: usOf(sp.StartNS), PID: chromePID, TID: tids[sp.Lane], Args: args,
		}
		if sp.Block >= 0 {
			ev.Name = fmt.Sprintf("%s b%d", sp.Kind, sp.Block)
		}
		if sp.DurNS == 0 && (sp.Kind == SpanPilot || sp.Kind == SpanMapping) {
			ev.Ph, ev.S = "i", "t"
		} else {
			dur := usOf(sp.DurNS)
			ev.Dur = &dur
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ns",
		OtherData:       &meta,
	})
}

// ReadChromeTrace parses a trace written by WriteChromeTrace back into spans
// (in file order) and its metadata.
func ReadChromeTrace(r io.Reader) ([]Span, ChromeMeta, error) {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, ChromeMeta{}, fmt.Errorf("obsv: chrome trace: %w", err)
	}
	var meta ChromeMeta
	if f.OtherData != nil {
		meta = *f.OtherData
	}
	// Prefer the file's own thread_name metadata over the fixed layout, so
	// traces re-arranged by other tools still load.
	tidLane := map[int]string{}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args != nil {
			tidLane[ev.TID] = ev.Args.Name
		}
	}
	var spans []Span
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" {
			continue
		}
		lane, ok := tidLane[ev.TID]
		if !ok {
			lane = laneOfTID(ev.TID)
		}
		sp := Span{Kind: SpanKind(ev.Cat), Lane: lane, Block: -1, StartNS: nsOf(ev.TS)}
		if ev.Dur != nil {
			sp.DurNS = nsOf(*ev.Dur)
		}
		if ev.Args != nil {
			sp.Sample = ev.Args.Sample
			if ev.Args.Kind != "" {
				sp.Kind = ev.Args.Kind
			}
			if ev.Args.Block != nil {
				sp.Block = *ev.Args.Block
			}
			sp.Bytes = ev.Args.Bytes
			sp.Attempt = ev.Args.Attempt
			sp.Mispredicted = ev.Args.Mispredicted
			sp.CacheHit = ev.Args.CacheHit
			sp.Request = ev.Args.Request
			sp.Tenant = ev.Args.Tenant
			sp.Replica = ev.Args.Replica
			sp.Worker = ev.Args.Worker
			sp.WallNS = ev.Args.WallNS
		}
		spans = append(spans, sp)
	}
	return spans, meta, nil
}

// CheckChromeTrace validates that r holds structurally well-formed Chrome
// Trace Event Format JSON: a traceEvents array whose events carry a known
// phase, non-negative timestamps and durations, and named metadata. It
// returns the first violation found, nil when the file is loadable.
func CheckChromeTrace(r io.Reader) error {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("obsv: chrome trace: not valid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("obsv: chrome trace: empty traceEvents array")
	}
	for i, ev := range f.TraceEvents {
		at := func(format string, a ...any) error {
			return fmt.Errorf("obsv: chrome trace: event %d: %s", i, fmt.Sprintf(format, a...))
		}
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				return at("unknown metadata event %q", ev.Name)
			}
			if ev.Args == nil || ev.Args.Name == "" {
				return at("metadata event %q without args.name", ev.Name)
			}
		case "X":
			if ev.Name == "" {
				return at("complete event without name")
			}
			if ev.TS < 0 {
				return at("negative ts %v", ev.TS)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				return at("complete event %q without non-negative dur", ev.Name)
			}
		case "i":
			if ev.TS < 0 {
				return at("negative ts %v", ev.TS)
			}
			switch ev.S {
			case "", "t", "p", "g":
			default:
				return at("instant event scope %q", ev.S)
			}
		default:
			return at("unsupported phase %q", ev.Ph)
		}
		if ev.PID < 0 || ev.TID < 0 {
			return at("negative pid/tid (%d/%d)", ev.PID, ev.TID)
		}
	}
	return nil
}

// SortSpans orders spans canonically: by sample, then start, lane, kind,
// block, attempt. Tracer.Spans already returns this order for engine traces;
// SortSpans normalizes spans loaded from external files.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Sample != b.Sample {
			return a.Sample < b.Sample
		}
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Attempt < b.Attempt
	})
}
