package obsv

import "time"

// Stopwatch measures wall-clock durations for observability. The
// deterministic packages (core, pilot, gpusim, sentinel, metrics) are
// forbidden direct time.Now reads by the dynnlint determinism analyzer;
// timing they need for latency reporting goes through obsv so every
// wall-clock read in the simulator's dependency cone is auditable in one
// place. Stopwatch values feed histograms and reports only — never control
// flow or simulated state.
type Stopwatch struct {
	t0 time.Time
}

// StartTimer starts a stopwatch.
func StartTimer() Stopwatch {
	return Stopwatch{t0: time.Now()} //dynnlint:ignore determinism wall-clock stopwatch is the observability-only clock by contract
}

// ElapsedNS returns nanoseconds since the stopwatch started.
func (s Stopwatch) ElapsedNS() int64 {
	return time.Since(s.t0).Nanoseconds() //dynnlint:ignore determinism wall-clock stopwatch is the observability-only clock by contract
}

// Elapsed returns the duration since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.t0) //dynnlint:ignore determinism wall-clock stopwatch is the observability-only clock by contract
}
