package obsv

import (
	"fmt"
	"io"
	"sort"
)

// Timeline derives utilization and overlap metrics from a canonical span set
// (Tracer.Spans or a loaded trace file). All derived numbers are functions
// of simulated time only, so they inherit the trace's determinism.
type Timeline struct {
	spans []Span
	// linkBW is the simulated CPU–GPU link bandwidth in bytes/sec; zero
	// means unknown (PCIe utilization is then omitted).
	linkBW float64
}

// NewTimeline wraps a span set for analysis. Spans are analyzed as given;
// use Tracer.Spans (already canonical) or SortSpans on loaded files.
func NewTimeline(spans []Span, linkBWBytesPerSec float64) *Timeline {
	return &Timeline{spans: spans, linkBW: linkBWBytesPerSec}
}

// Spans returns the underlying span set.
func (t *Timeline) Spans() []Span { return t.spans }

// OverlapStats summarizes how well migration hid behind compute — the
// paper's bandwidth-overlap claim made measurable. HiddenNS is the portion
// of transfer-lane busy time that ran concurrently with compute; Efficiency
// is HiddenNS/TransferNS (zero when nothing transferred).
type OverlapStats struct {
	MakespanNS int64   `json:"makespan_ns"`
	ComputeNS  int64   `json:"compute_ns"`
	TransferNS int64   `json:"transfer_ns"`
	HiddenNS   int64   `json:"hidden_ns"`
	ExposedNS  int64   `json:"exposed_ns"`
	Efficiency float64 `json:"efficiency"`
	// TransferBytes sums H2D+D2H traffic; PCIeUtil is that traffic over the
	// link's capacity for the whole makespan (0 when bandwidth unknown).
	TransferBytes int64   `json:"transfer_bytes"`
	PCIeUtil      float64 `json:"pcie_util,omitempty"`
	// Per-lane busy time and utilization (busy/makespan), and idle-gap
	// histograms (gaps between consecutive busy intervals on each lane).
	LaneBusyNS map[string]int64          `json:"lane_busy_ns,omitempty"`
	LaneUtil   map[string]float64        `json:"lane_util,omitempty"`
	IdleGaps   map[string]HistogramStats `json:"idle_gaps,omitempty"`
}

// interval is a half-open busy interval [start, end).
type interval struct{ start, end int64 }

// laneIntervals collects the busy intervals of one hardware lane, sorted and
// merged. Host-lane bookkeeping spans (envelopes, instants, alloc backoffs)
// are not hardware occupancy and are excluded by construction (callers pass
// compute/h2d/d2h only).
func (t *Timeline) laneIntervals(lane string) []interval {
	var ivs []interval
	for _, sp := range t.spans {
		if sp.Lane != lane || sp.DurNS <= 0 {
			continue
		}
		ivs = append(ivs, interval{sp.StartNS, sp.End()})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].end < ivs[j].end
	})
	// Merge overlaps so busy time is measured, not double-counted.
	merged := ivs[:0]
	for _, iv := range ivs {
		if n := len(merged); n > 0 && iv.start <= merged[n-1].end {
			if iv.end > merged[n-1].end {
				merged[n-1].end = iv.end
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

func totalNS(ivs []interval) int64 {
	var t int64
	for _, iv := range ivs {
		t += iv.end - iv.start
	}
	return t
}

// intersectNS returns the total time both interval sets are busy at once.
func intersectNS(a, b []interval) int64 {
	var total int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := max64(a[i].start, b[j].start), min64(a[i].end, b[j].end)
		if hi > lo {
			total += hi - lo
		}
		if a[i].end < b[j].end {
			i++
		} else {
			j++
		}
	}
	return total
}

// MakespanNS is the end of the last span on the timeline.
func (t *Timeline) MakespanNS() int64 {
	var end int64
	for _, sp := range t.spans {
		if e := sp.End(); e > end {
			end = e
		}
	}
	return end
}

// Overlap computes the timeline's overlap and utilization summary.
func (t *Timeline) Overlap() OverlapStats {
	s := OverlapStats{
		MakespanNS: t.MakespanNS(),
		LaneBusyNS: map[string]int64{},
		LaneUtil:   map[string]float64{},
		IdleGaps:   map[string]HistogramStats{},
	}
	compute := t.laneIntervals(LaneCompute)
	s.ComputeNS = totalNS(compute)
	h2d := t.laneIntervals(LaneH2D)
	d2h := t.laneIntervals(LaneD2H)
	for lane, ivs := range map[string][]interval{LaneCompute: compute, LaneH2D: h2d, LaneD2H: d2h} {
		busy := totalNS(ivs)
		s.LaneBusyNS[lane] = busy
		if s.MakespanNS > 0 {
			s.LaneUtil[lane] = float64(busy) / float64(s.MakespanNS)
		}
		var gaps Histogram
		for i := 1; i < len(ivs); i++ {
			if g := ivs[i].start - ivs[i-1].end; g > 0 {
				gaps.Observe(g)
			}
		}
		s.IdleGaps[lane] = gaps.Snapshot()
	}
	// H2D and D2H are distinct resources: their busy time sums, and each
	// lane's overlap with compute is measured independently.
	s.TransferNS = totalNS(h2d) + totalNS(d2h)
	s.HiddenNS = intersectNS(h2d, compute) + intersectNS(d2h, compute)
	s.ExposedNS = s.TransferNS - s.HiddenNS
	if s.TransferNS > 0 {
		s.Efficiency = float64(s.HiddenNS) / float64(s.TransferNS)
	}
	for _, sp := range t.spans {
		if sp.Lane == LaneH2D || sp.Lane == LaneD2H {
			s.TransferBytes += sp.Bytes
		}
	}
	if t.linkBW > 0 && s.MakespanNS > 0 {
		s.PCIeUtil = float64(s.TransferBytes) / (t.linkBW * float64(s.MakespanNS) / 1e9)
	}
	return s
}

// BlockCost is the per-execution-block critical-path breakdown aggregated
// over every sample: where block i's time went, epoch-wide.
type BlockCost struct {
	Block      int   `json:"block"`
	ComputeNS  int64 `json:"compute_ns"`
	PrefetchNS int64 `json:"prefetch_ns"`
	EvictNS    int64 `json:"evict_ns"`
	OnDemandNS int64 `json:"ondemand_ns"`
	RetryNS    int64 `json:"retry_ns"`
	// StallNS is the exposed wait before the block's compute began — the
	// critical-path cost of migration that did not hide.
	StallNS int64 `json:"stall_ns"`
	Spans   int   `json:"spans"`
}

// Blocks aggregates the per-block breakdown, ordered by block index.
func (t *Timeline) Blocks() []BlockCost {
	costs := map[int]*BlockCost{}
	get := func(b int) *BlockCost {
		if c, ok := costs[b]; ok {
			return c
		}
		c := &BlockCost{Block: b}
		costs[b] = c
		return c
	}
	// Compute stalls need each sample's compute spans in start order; track
	// the previous compute end per sample as spans stream by in canonical
	// (per-sample, recorded) order.
	prevComputeEnd := map[int]int64{}
	sampleStart := map[int]int64{}
	for _, sp := range t.spans {
		if sp.Kind == SpanSample {
			sampleStart[sp.Sample] = sp.StartNS
			continue
		}
		if sp.Block < 0 {
			continue
		}
		c := get(sp.Block)
		c.Spans++
		switch sp.Kind {
		case SpanCompute:
			c.ComputeNS += sp.DurNS
			prev, ok := prevComputeEnd[sp.Sample]
			if !ok {
				prev = sampleStart[sp.Sample]
			}
			if stall := sp.StartNS - prev; stall > 0 {
				c.StallNS += stall
			}
			prevComputeEnd[sp.Sample] = sp.End()
		case SpanPrefetch:
			c.PrefetchNS += sp.DurNS
		case SpanEvict:
			c.EvictNS += sp.DurNS
		case SpanOnDemand:
			c.OnDemandNS += sp.DurNS
		case SpanRetry:
			c.RetryNS += sp.DurNS
		}
	}
	out := make([]BlockCost, 0, len(costs))
	for _, c := range costs {
		out = append(out, *c) //dynnlint:ignore determinism slice is sorted by block immediately below
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Block < out[j].Block })
	return out
}

// occupancyShades maps a bucket's busy fraction to a glyph, light to solid.
var occupancyShades = []rune{' ', '░', '▒', '▓', '█'}

// ASCII renders a stream-occupancy timeline: one row per hardware lane,
// width buckets across the makespan, each glyph shaded by the lane's busy
// fraction in that bucket.
func (t *Timeline) ASCII(w io.Writer, width int) {
	if width <= 0 {
		width = 64
	}
	makespan := t.MakespanNS()
	if makespan == 0 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	fmt.Fprintf(w, "stream occupancy over %.3f ms simulated (each cell %.3f ms)\n",
		float64(makespan)/1e6, float64(makespan)/float64(width)/1e6)
	for _, lane := range []string{LaneCompute, LaneH2D, LaneD2H} {
		ivs := t.laneIntervals(lane)
		busy := make([]int64, width)
		bucket := float64(makespan) / float64(width)
		for _, iv := range ivs {
			lo := int(float64(iv.start) / bucket)
			hi := int(float64(iv.end-1) / bucket)
			for b := lo; b <= hi && b < width; b++ {
				bs, be := int64(float64(b)*bucket), int64(float64(b+1)*bucket)
				if o := min64(iv.end, be) - max64(iv.start, bs); o > 0 {
					busy[b] += o
				}
			}
		}
		row := make([]rune, width)
		for b, ns := range busy {
			frac := float64(ns) / bucket
			idx := int(frac * float64(len(occupancyShades)))
			if idx >= len(occupancyShades) {
				idx = len(occupancyShades) - 1
			}
			if ns > 0 && idx == 0 {
				idx = 1 // any occupancy is visible
			}
			row[b] = occupancyShades[idx]
		}
		util := float64(totalNS(ivs)) / float64(makespan) * 100
		fmt.Fprintf(w, "%-8s|%s| %5.1f%% busy\n", lane, string(row), util)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
