package obsv

import (
	"sort"
	"sync"
)

// Tracer collects per-sample span traces from concurrent epoch workers and
// lays them onto one canonical epoch timeline. Each SampleTrace is handed to
// exactly one worker goroutine; the Tracer itself only guards the registry,
// so tracing adds no synchronization to the simulation hot path.
//
// Determinism contract: with wall mode off (the default), Spans() is a pure
// function of the epoch's simulated execution — bit-identical across runs
// and worker counts, exactly like the epoch aggregates. Wall mode
// (WithWallTime) additionally tags spans with worker ids and host latencies,
// which are scheduling-dependent and therefore non-deterministic.
type Tracer struct {
	wall     bool
	absolute bool

	mu      sync.Mutex
	samples map[int]*SampleTrace
}

// TracerOption configures NewTracer.
type TracerOption func(*Tracer)

// WithWallTime records wall-clock annotations (worker id, host-phase
// latency, per-sample wall duration) alongside the simulated clock. Traces
// recorded in wall mode are not bit-identical across runs.
func WithWallTime() TracerOption {
	return func(t *Tracer) { t.wall = true }
}

// WithAbsoluteTime declares that samples are recorded on one shared virtual
// clock (SampleTrace.SetBase / EpochOptions.ClockBaseNS): Spans returns them
// as laid, instead of offsetting each sample by the cumulative makespan of
// the ones before it. The cluster runtime traces in this mode — its per-GPU
// dispatches genuinely overlap on the timeline.
func WithAbsoluteTime() TracerOption {
	return func(t *Tracer) { t.absolute = true }
}

// NewTracer builds an empty tracer.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{samples: map[int]*SampleTrace{}}
	for _, o := range opts {
		o(t)
	}
	return t
}

// WallTime reports whether wall-clock annotations are recorded.
func (t *Tracer) WallTime() bool { return t != nil && t.wall }

// AbsoluteTime reports whether samples are laid on one shared virtual clock
// (WithAbsoluteTime) instead of the serial-equivalent offset layout.
func (t *Tracer) AbsoluteTime() bool { return t != nil && t.absolute }

// Sample registers and returns the trace collector for one sample index.
// Nil-safe: a nil tracer yields a nil SampleTrace, whose methods no-op.
func (t *Tracer) Sample(idx int) *SampleTrace {
	if t == nil {
		return nil
	}
	st := &SampleTrace{sample: idx, wall: t.wall}
	t.mu.Lock()
	t.samples[idx] = st
	t.mu.Unlock()
	return st
}

// SetWorker tags the sample with the worker that simulated it (wall mode
// only — worker assignment is scheduling-dependent).
func (st *SampleTrace) SetWorker(w int) {
	if st == nil || !st.wall {
		return
	}
	st.worker = w
}

// StartWall begins the sample's wall-clock envelope measurement (wall mode
// only).
func (st *SampleTrace) StartWall() {
	if st == nil || !st.wall {
		return
	}
	st.wallSW = StartTimer()
}

// StopWall ends the wall-clock envelope measurement.
func (st *SampleTrace) StopWall() {
	if st == nil || !st.wall {
		return
	}
	st.wallNS = st.wallSW.ElapsedNS()
}

// At returns the already-registered trace for one sample index, nil when the
// index was never registered (or the tracer is nil). The serving layer uses
// it to annotate a request's trace with queue spans after its batch returns.
func (t *Tracer) At(idx int) *SampleTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.samples[idx]
}

// SampleCount returns the number of registered samples.
func (t *Tracer) SampleCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Spans returns every recorded span on the canonical epoch timeline: samples
// sorted by index, each offset by the cumulative makespan of the samples
// before it — the serial-equivalent schedule, independent of which worker
// simulated what when. A sample envelope span (SpanSample, host lane) is
// synthesized per sample carrying its outcome tags. Call after the epoch
// completes; concurrent use with in-flight workers sees a partial trace.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	idxs := make([]int, 0, len(t.samples))
	for idx := range t.samples {
		idxs = append(idxs, idx) //dynnlint:ignore determinism indices are sorted immediately below
	}
	sts := make([]*SampleTrace, 0, len(idxs))
	sort.Ints(idxs)
	for _, idx := range idxs {
		sts = append(sts, t.samples[idx])
	}
	t.mu.Unlock()

	var out []Span
	var offset int64
	for _, st := range sts {
		makespan := st.makespanNS()
		start := offset
		dur := makespan
		if t.absolute {
			// Shared-clock layout: spans are already absolute; the envelope
			// brackets the sample's own first..last span.
			start = st.firstStartNS()
			dur = makespan - start
			if dur < 0 {
				dur = 0
			}
		}
		env := Span{
			Sample: st.sample, Kind: SpanSample, Lane: LaneHost, Block: -1,
			StartNS: start, DurNS: dur,
			Mispredicted: st.outcome.mispredicted, CacheHit: st.outcome.cacheHit,
			Request: st.request, Tenant: st.tenant, Replica: st.replica,
		}
		if st.wall {
			env.Worker = st.worker
			env.WallNS = st.wallNS
		}
		out = append(out, env)
		for _, sp := range st.spans {
			if !t.absolute {
				sp.StartNS += offset
			}
			out = append(out, sp)
		}
		offset += makespan
	}
	return out
}
