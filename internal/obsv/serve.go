package obsv

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
)

// Registry tracks live Recorders so an HTTP endpoint can expose their
// counters mid-run. Register is cheap; exposition snapshots on demand.
type Registry struct {
	mu   sync.Mutex
	recs []*Recorder
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a recorder to the exposition set. Nil-safe on both sides.
func (g *Registry) Register(r *Recorder) {
	if g == nil || r == nil {
		return
	}
	g.mu.Lock()
	g.recs = append(g.recs, r)
	g.mu.Unlock()
}

// snapshots captures every registered recorder's current stats.
func (g *Registry) snapshots() []RunStats {
	g.mu.Lock()
	recs := append([]*Recorder(nil), g.recs...)
	g.mu.Unlock()
	out := make([]RunStats, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Snapshot())
	}
	return out
}

// quoteLabel renders a Prometheus label value, escaped per the text
// exposition rules (backslash, double quote, newline) and double-quoted.
func quoteLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return `"` + v + `"`
}

// promMetric is one family: help text, type, and per-run sample rows.
type promMetric struct {
	name, help, typ string
	rows            []promRow
}

type promRow struct {
	labels string
	value  float64
}

// WritePrometheus renders every registered recorder in the Prometheus text
// exposition format (version 0.0.4), hand-rolled to keep the module
// dependency-free. Runs are distinguished by a `run` label.
func (g *Registry) WritePrometheus(w io.Writer) {
	metrics := map[string]*promMetric{}
	add := func(name, help, typ, labels string, value float64) {
		m, ok := metrics[name]
		if !ok {
			m = &promMetric{name: name, help: help, typ: typ}
			metrics[name] = m
		}
		m.rows = append(m.rows, promRow{labels: labels, value: value})
	}
	for _, s := range g.snapshots() {
		run := "run=" + quoteLabel(s.Label)
		add("dynn_samples_total", "Samples completed.", "counter", run, float64(s.Samples))
		add("dynn_mispredicts_total", "Pilot path mis-predictions.", "counter", run, float64(s.Mispredicts))
		add("dynn_cache_hits_total", "Mis-prediction cache hits.", "counter", run, float64(s.CacheHits))
		add("dynn_run_wall_seconds", "Wall time since the run started.", "gauge", run, float64(s.WallNS)/1e9)
		add("dynn_samples_per_second", "Run throughput.", "gauge", run, s.SamplesPerSec)
		add("dynn_workers", "Configured worker count.", "gauge", run, float64(s.Workers))
		if s.Faults != nil {
			f := s.Faults
			add("dynn_faults_injected_total", "Faults injected.", "counter", run, float64(f.Injected))
			add("dynn_fault_retries_total", "Transfer retries after injected faults.", "counter", run, float64(f.Retries))
			add("dynn_fault_fallbacks_total", "On-demand fallbacks after dropped prefetches.", "counter",
				run+`,kind="ondemand"`, float64(f.OnDemandFallbacks))
			add("dynn_fault_fallbacks_total", "On-demand fallbacks after dropped prefetches.", "counter",
				run+`,kind="evict_retry"`, float64(f.EvictRetries))
		}
		if s.Overlap != nil {
			o := s.Overlap
			add("dynn_overlap_efficiency", "Fraction of transfer time hidden under compute.", "gauge", run, o.Efficiency)
			add("dynn_pcie_utilization", "Transfer bytes over link capacity for the makespan.", "gauge", run, o.PCIeUtil)
			for _, lane := range sortedKeys(o.LaneUtil) {
				add("dynn_stream_utilization", "Per-stream busy fraction of the simulated makespan.", "gauge",
					run+",stream="+quoteLabel(lane), o.LaneUtil[lane])
			}
		}
		if s.Serve != nil {
			sv := s.Serve
			sl := run
			if sv.Tenant != "" {
				sl += ",tenant=" + quoteLabel(sv.Tenant)
			}
			add("dynn_serve_arrivals_total", "Serving requests offered.", "counter", sl, float64(sv.Arrivals))
			add("dynn_serve_completed_total", "Serving requests completed.", "counter", sl, float64(sv.Completed))
			add("dynn_serve_shed_total", "Requests refused at admission.", "counter",
				sl+`,reason="backpressure"`, float64(sv.Shed))
			add("dynn_serve_shed_total", "Requests refused at admission.", "counter",
				sl+`,reason="quota"`, float64(sv.QuotaShed))
			add("dynn_serve_slo_violations_total", "Completed requests past their deadline.", "counter",
				sl, float64(sv.SLOViolations))
			if sv.Batches > 0 {
				add("dynn_serve_batches_total", "Continuous-batch dispatches.", "counter", sl, float64(sv.Batches))
			}
			for _, q := range []struct {
				q  string
				ns int64
			}{{"0.5", sv.P50NS}, {"0.99", sv.P99NS}, {"0.999", sv.P999NS}} {
				add("dynn_serve_latency_seconds", "End-to-end request latency quantiles (simulated, exact).", "gauge",
					sl+",quantile="+quoteLabel(q.q), float64(q.ns)/1e9)
			}
			if sv.QuotaBytes > 0 {
				add("dynn_serve_quota_bytes", "Configured tenant memory quota.", "gauge", sl, float64(sv.QuotaBytes))
			}
			if sv.QuotaPeakBytes > 0 {
				add("dynn_serve_quota_peak_bytes", "Peak reserved bytes under the quota.", "gauge",
					sl, float64(sv.QuotaPeakBytes))
			}
			if sv.Attribution != nil {
				at := sv.Attribution
				for _, c := range at.All.Named() {
					add("dynn_serve_attribution_seconds_total",
						"Summed end-to-end latency decomposed by cause (components sum exactly to the latency total).",
						"counter", sl+",component="+quoteLabel(c.Name), float64(c.NS)/1e9)
				}
				for _, c := range at.Tail.Named() {
					add("dynn_serve_tail_attribution_seconds_total",
						"Latency decomposition of the p99 tail requests only.",
						"counter", sl+",component="+quoteLabel(c.Name), float64(c.NS)/1e9)
				}
				add("dynn_serve_tail_requests_total", "Requests in the p99 tail.", "counter",
					sl, float64(at.TailCount))
			}
			if sv.Online != nil {
				on := sv.Online
				add("dynn_serve_online_observed_total", "Completed-request outcomes fed to the replay memory.",
					"counter", sl, float64(on.Observed))
				add("dynn_serve_online_mispredicts_total", "Observed outcomes where the pilot mispredicted the path.",
					"counter", sl, float64(on.Mispredicts))
				add("dynn_serve_online_retrains_total", "Online pilot retrain stalls.", "counter",
					sl, float64(on.Retrains))
				add("dynn_serve_online_retrain_seconds_total", "Simulated host-timeline time spent in retrain stalls.",
					"counter", sl, float64(on.RetrainNS)/1e9)
				add("dynn_serve_online_memory_entries", "Live entries in the shared replay ring.", "gauge",
					sl, float64(on.MemorySize))
				if r := on.LastWindowRate(); r >= 0 {
					add("dynn_serve_online_mispredict_window_rate",
						"Mispredict rate over the most recent completed observation window.",
						"gauge", sl, r)
				}
			}
		}
		for _, name := range sortedKeys(s.Phases) {
			h := s.Phases[name]
			ph := run + ",phase=" + quoteLabel(name)
			add("dynn_phase_seconds_count", "Phase observations.", "counter", ph, float64(h.Count))
			add("dynn_phase_seconds_sum", "Total phase latency.", "counter", ph, float64(h.SumNS)/1e9)
			add("dynn_phase_seconds_max", "Max phase latency.", "gauge", ph, float64(h.MaxNS)/1e9)
			for _, q := range []struct {
				q  string
				ns int64
			}{{"0.5", h.P50NS}, {"0.9", h.P90NS}, {"0.99", h.P99NS}, {"0.999", h.P999NS}} {
				add("dynn_phase_seconds", "Phase latency quantiles (power-of-two bucket upper bounds).", "gauge",
					ph+",quantile="+quoteLabel(q.q), float64(q.ns)/1e9)
			}
		}
	}
	for _, name := range sortedKeys(metrics) {
		m := metrics[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, row := range m.rows {
			fmt.Fprintf(w, "%s{%s} %g\n", m.name, row.labels, row.value)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //dynnlint:ignore determinism keys are sorted immediately below
	}
	sort.Strings(keys)
	return keys
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func (g *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.WritePrometheus(w)
	})
}

// NewServeMux builds the live-observability mux: /metrics (Prometheus text),
// /debug/pprof/* (the standard profiles), and an index page at /.
func NewServeMux(g *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", g.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, "dynnbench live observability\n\n  /metrics      Prometheus text exposition\n  /debug/pprof  Go runtime profiles\n")
	})
	return mux
}
