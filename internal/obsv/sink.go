package obsv

import (
	"encoding/json"
	"io"
	"sync"
)

// Event types written to the JSONL sink.
const (
	EventRunStart = "run_start"
	EventSample   = "sample"
	EventRunEnd   = "run_end"
)

// Event is one JSONL record. TimeNS is relative to the recorder's start so
// traces from concurrent runs line up without wall-clock skew.
type Event struct {
	Type         string    `json:"type"`
	TimeNS       int64     `json:"t_ns"`
	Label        string    `json:"label,omitempty"`
	Workers      int       `json:"workers,omitempty"`
	Sample       int       `json:"sample,omitempty"`
	DurNS        int64     `json:"dur_ns,omitempty"`
	Mispredicted bool      `json:"mispredicted,omitempty"`
	CacheHit     bool      `json:"cache_hit,omitempty"`
	Stats        *RunStats `json:"stats,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent Emit.
type Sink interface {
	Emit(Event)
}

// JSONLSink writes one JSON object per line to an io.Writer, serialized by a
// mutex so worker goroutines never interleave lines.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink wraps w. The caller owns closing the underlying writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line. Encoding errors are intentionally
// dropped: observability must never fail the run it observes.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(ev)
}
