package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event types written to the JSONL sink.
const (
	EventRunStart = "run_start"
	EventSample   = "sample"
	EventRunEnd   = "run_end"
)

// Event is one JSONL record. TimeNS is relative to the recorder's start so
// traces from concurrent runs line up without wall-clock skew.
type Event struct {
	Type         string    `json:"type"`
	TimeNS       int64     `json:"t_ns"`
	Label        string    `json:"label,omitempty"`
	Workers      int       `json:"workers,omitempty"`
	Sample       int       `json:"sample,omitempty"`
	DurNS        int64     `json:"dur_ns,omitempty"`
	Mispredicted bool      `json:"mispredicted,omitempty"`
	CacheHit     bool      `json:"cache_hit,omitempty"`
	Stats        *RunStats `json:"stats,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent Emit.
type Sink interface {
	Emit(Event)
}

// JSONLSink writes one JSON object per line to an io.Writer, serialized by a
// mutex so worker goroutines never interleave lines.
type JSONLSink struct {
	mu      sync.Mutex
	enc     *json.Encoder
	dropped int64
	err     error
}

// NewJSONLSink wraps w. The caller owns closing the underlying writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line. Write errors never fail the run
// being observed: the event is counted as dropped and the first error is
// kept for Flush / the recorder's Finish report.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(ev); err != nil {
		if s.err == nil {
			s.err = err
		}
		s.dropped++
	}
}

// Dropped reports how many events failed to write.
func (s *JSONLSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Flush reports the first write error, wrapped with the drop count, or nil
// when every event landed. (Encoding is unbuffered, so there is nothing to
// push — Flush exists to surface deferred errors at end of run.)
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		return nil
	}
	return fmt.Errorf("jsonl sink: dropped %d event(s), first error: %w", s.dropped, s.err)
}
