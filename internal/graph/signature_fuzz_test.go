package graph_test

import (
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dynnoffload/internal/dynn"
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/graph"
	"dynnoffload/internal/sentinel"
	"dynnoffload/internal/trace"
)

var (
	sigFuzzOnce   sync.Once
	sigFuzzModels []dynn.Model
)

// sigFuzzZoo builds every zoo workload once per fuzz binary (batch 1, fixed
// seed); resolution reuses these, while plan construction builds fresh
// instances so tensor numbering starts identically on both sides.
func sigFuzzZoo() []dynn.Model {
	sigFuzzOnce.Do(func() {
		for _, entry := range dynn.Zoo() {
			sigFuzzModels = append(sigFuzzModels, entry.New(1, 7))
		}
	})
	return sigFuzzModels
}

// sigFuzzSample turns fuzz bytes into a resolvable sample the same way the
// zoo's own fuzz target does.
func sigFuzzSample(tok []byte) *dynn.Sample {
	tokens := make([]int, len(tok))
	for i, b := range tok {
		tokens[i] = int(b) * 31 // spread beyond [0,255]
	}
	return &dynn.Sample{ID: 1, Tokens: tokens, Embed: dynn.EmbedTokens(tokens)}
}

// opSequence is the fuzz oracle for path identity: an injective rendering of
// (model name, operator sequence) built independently of PathSignature — no
// run-length compression, every field quoted or delimited. Floats are
// rendered, not compared, keeping the oracle inside the floatcmp lint rules
// like the signature itself.
func opSequence(r *graph.Resolved) string {
	var sb strings.Builder
	sb.WriteString(strconv.Quote(r.ModelName))
	for _, op := range r.Ops {
		sb.WriteByte('\n')
		sb.WriteString(strconv.Quote(op.Name))
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatInt(op.FLOPs, 10))
		for _, v := range op.Sig {
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	return sb.String()
}

// sigFuzzPlan compiles the resolved plan for one token stream on a FRESH
// instance of zoo entry sel: expand the training iteration, trace it, run the
// Sentinel analysis, partition at the 9/4 double-buffer floor (always
// feasible), and fold the walk into a BlockPlan. Fresh instances make the
// comparison exact: registries start from the same tensor numbering, so two
// identical op sequences must produce bit-identical plans.
func sigFuzzPlan(t *testing.T, sel int, tok []byte) *sentinel.BlockPlan {
	t.Helper()
	m := dynn.Zoo()[sel].New(1, 7)
	r, err := m.Resolve(sigFuzzSample(tok))
	if err != nil {
		t.Fatalf("%s: re-resolve on fresh instance failed: %v", m.Name(), err)
	}
	cm := gpusim.NewCostModel(gpusim.RTXPlatform())
	it := graph.ExpandTraining(m.Registry(), r, m.WeightStates(), true)
	an := sentinel.NewAnalysis(trace.FromIteration(m.Name(), it, cm), cm)
	budget := 9 * an.MaxSingleOpBytes() / 4
	blocks := an.Partition(budget)
	if blocks == nil {
		t.Fatalf("%s: partition infeasible at the double-buffer floor %d", m.Name(), budget)
	}
	return sentinel.NewBlockPlan(an, blocks)
}

// FuzzPlanSignature fuzzes the plan-cache keying contract over the full model
// zoo: PathSignature must be injective on (model, operator sequence). For two
// arbitrary resolutions it checks, both directions at once,
//
//	PathSignature(a) == PathSignature(b)  ⇔  identical operator sequences
//
// ("unequal resolved paths ⇒ unequal signatures" is the ⇐ contrapositive),
// and whenever the signatures agree it compiles both resolved plans from
// scratch and requires them bit-identical — the property that makes serving a
// cached plan to a signature-equal path sound.
func FuzzPlanSignature(f *testing.F) {
	f.Add(byte(0), byte(0), []byte{}, []byte{})
	f.Add(byte(1), byte(1), []byte("the quick brown fox"), []byte("the quick brown fox"))
	f.Add(byte(2), byte(2), []byte{1, 2, 3, 4}, []byte{4, 3, 2, 1})
	f.Add(byte(3), byte(7), []byte{0xff, 0x80}, []byte{0x7f, 0x00})
	f.Fuzz(func(t *testing.T, selA, selB byte, tokA, tokB []byte) {
		if len(tokA) > 64 {
			tokA = tokA[:64]
		}
		if len(tokB) > 64 {
			tokB = tokB[:64]
		}
		zoo := sigFuzzZoo()
		ia, ib := int(selA)%len(zoo), int(selB)%len(zoo)
		ra, err := zoo[ia].Resolve(sigFuzzSample(tokA))
		if err != nil {
			t.Fatalf("%s: resolve: %v", zoo[ia].Name(), err)
		}
		rb, err := zoo[ib].Resolve(sigFuzzSample(tokB))
		if err != nil {
			t.Fatalf("%s: resolve: %v", zoo[ib].Name(), err)
		}

		sigA, sigB := graph.PathSignature(ra), graph.PathSignature(rb)
		if again := graph.PathSignature(ra); again != sigA {
			t.Fatalf("signature not deterministic:\n %q\n %q", sigA, again)
		}
		seqEq := opSequence(ra) == opSequence(rb)
		if (sigA == sigB) != seqEq {
			t.Fatalf("signature/op-sequence disagreement (sigEq=%v seqEq=%v):\nsigA %q\nsigB %q",
				sigA == sigB, seqEq, sigA, sigB)
		}
		if graph.SignatureHash(sigA) != graph.SignatureHash(sigA) {
			t.Fatal("SignatureHash not deterministic")
		}

		if sigA != sigB {
			return
		}
		// Equal signatures ⇒ identical resolved plans, compiled independently.
		planA := sigFuzzPlan(t, ia, tokA)
		planB := sigFuzzPlan(t, ib, tokB)
		if !reflect.DeepEqual(planA, planB) {
			t.Fatalf("equal signatures produced different plans for %q:\n got %+v\nwant %+v",
				sigA, planB, planA)
		}
	})
}
