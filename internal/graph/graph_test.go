package graph

import (
	"testing"
	"testing/quick"

	"dynnoffload/internal/idiom"
	"dynnoffload/internal/tensor"
)

// miniArch builds a small static architecture: op A, branch(2 arms of 1/2
// ops), repeat(1..3 of one op), op Z.
func miniArch(t *testing.T) (*Static, *tensor.Registry) {
	t.Helper()
	var reg tensor.Registry
	mk := func(name string) *Op {
		in := reg.New(name+".in", tensor.Activation, tensor.F32, 4, 4)
		out := reg.New(name+".out", tensor.Activation, tensor.F32, 4, 4)
		return NewOp("add", 16, []*tensor.Meta{in}, []*tensor.Meta{out})
	}
	s := &Static{
		ModelName: "mini",
		NumSites:  2,
		Elems: []Elem{
			OpElem{Op: mk("a")},
			Branch{Site: 0, Arms: [][]Elem{
				{OpElem{Op: mk("b0")}},
				{OpElem{Op: mk("b1")}, OpElem{Op: mk("b2")}},
			}},
			Repeat{Site: 1, Body: []Elem{OpElem{Op: mk("r")}}, Min: 1, Max: 3},
			OpElem{Op: mk("z")},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return s, &reg
}

func TestResolveCounts(t *testing.T) {
	s, _ := miniArch(t)
	cases := []struct {
		decisions []int
		wantOps   int
	}{
		{[]int{0, 0}, 1 + 1 + 1 + 1}, // arm0 (1 op), repeat x1
		{[]int{1, 0}, 1 + 2 + 1 + 1},
		{[]int{0, 2}, 1 + 1 + 3 + 1}, // repeat x3
		{[]int{1, 2}, 1 + 2 + 3 + 1},
	}
	for _, c := range cases {
		r, err := Resolve(s, c.decisions)
		if err != nil {
			t.Fatalf("Resolve(%v): %v", c.decisions, err)
		}
		if len(r.Ops) != c.wantOps {
			t.Errorf("Resolve(%v) = %d ops, want %d", c.decisions, len(r.Ops), c.wantOps)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	s, _ := miniArch(t)
	if _, err := Resolve(s, []int{0}); err == nil {
		t.Error("wrong decision count must error")
	}
	if _, err := Resolve(s, []int{5, 0}); err == nil {
		t.Error("out-of-range branch decision must error")
	}
	if _, err := Resolve(s, []int{0, 9}); err == nil {
		t.Error("out-of-range repeat decision must error")
	}
}

func TestDecisionRange(t *testing.T) {
	s, _ := miniArch(t)
	r := s.DecisionRange()
	if r[0] != 2 || r[1] != 3 {
		t.Errorf("DecisionRange = %v, want [2 3]", r)
	}
}

func TestOpCountProgramOrder(t *testing.T) {
	s, _ := miniArch(t)
	// a + (b0 + b1 + b2) + r + z = 6 (all arms counted once, repeat once)
	if got := s.OpCount(); got != 6 {
		t.Errorf("OpCount = %d, want 6", got)
	}
}

func TestValidateCatchesBadSites(t *testing.T) {
	var reg tensor.Registry
	in := reg.New("i", tensor.Activation, tensor.F32, 1)
	op := NewOp("add", 1, []*tensor.Meta{in}, []*tensor.Meta{in})
	bad := &Static{ModelName: "bad", NumSites: 1, Elems: []Elem{
		Branch{Site: 3, Arms: [][]Elem{{OpElem{Op: op}}, {OpElem{Op: op}}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range site must fail validation")
	}
	missing := &Static{ModelName: "missing", NumSites: 2, Elems: []Elem{
		Branch{Site: 0, Arms: [][]Elem{{OpElem{Op: op}}, {OpElem{Op: op}}}},
	}}
	if err := missing.Validate(); err == nil {
		t.Error("missing site must fail validation")
	}
	oneArm := &Static{ModelName: "onearm", NumSites: 1, Elems: []Elem{
		Branch{Site: 0, Arms: [][]Elem{{OpElem{Op: op}}}},
	}}
	if err := oneArm.Validate(); err == nil {
		t.Error("single-arm branch must fail validation")
	}
}

func TestAFMLayout(t *testing.T) {
	s, _ := miniArch(t)
	afm := BuildAFM(s)
	// rows: a, ctrl(branch), b0, b1, b2, ctrl(repeat), r, z = 8
	if afm.NumRows() != 8 {
		t.Fatalf("AFM rows = %d, want 8", afm.NumRows())
	}
	ctrl := afm.ControlRows()
	if len(ctrl) != 2 || ctrl[0] != 1 || ctrl[1] != 5 {
		t.Errorf("control rows = %v, want [1 5]", ctrl)
	}
	for _, row := range afm.Rows {
		if len(row) != idiom.SigLen {
			t.Fatalf("row width %d", len(row))
		}
	}
}

func TestAFMPooledFeatures(t *testing.T) {
	s, _ := miniArch(t)
	afm := BuildAFM(s)
	feats := afm.PooledFeatures(4)
	if len(feats) != 4*idiom.SigLen {
		t.Fatalf("pooled width %d", len(feats))
	}
	// Sum over segments equals sum over rows.
	var fromFeats, fromRows float64
	for _, v := range feats {
		fromFeats += v
	}
	for _, row := range afm.Rows {
		for _, v := range row {
			fromRows += v
		}
	}
	if fromFeats != fromRows {
		t.Errorf("pooling lost mass: %v vs %v", fromFeats, fromRows)
	}
}

func TestGlobalIDAFM(t *testing.T) {
	s, _ := miniArch(t)
	g := BuildGlobalIDAFM(s)
	if len(g.IDs) != 8 {
		t.Fatalf("global-ID rows = %d, want 8", len(g.IDs))
	}
	vocab := idiom.Default.NumOperators()
	feats := g.PooledFeatures(2, vocab)
	if len(feats) != 2*vocab {
		t.Fatalf("feature width %d", len(feats))
	}
	var total float64
	for _, v := range feats {
		total += v
	}
	if total != 6 { // six op occurrences
		t.Errorf("one-hot mass = %v, want 6", total)
	}
}

func TestEnumeratePaths(t *testing.T) {
	s, _ := miniArch(t)
	paths, err := EnumeratePaths(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2*3 {
		t.Fatalf("paths = %d, want 6", len(paths))
	}
	// Each path's stats must match a direct resolve.
	for _, p := range paths {
		r, err := Resolve(s, p.Decisions)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats().OpCount != p.Stats.OpCount {
			t.Errorf("path stats mismatch for %v", p.Decisions)
		}
	}
}

func TestMatchStatsNearest(t *testing.T) {
	s, _ := miniArch(t)
	paths, _ := EnumeratePaths(s)
	for i := range paths {
		best, exact := MatchStats(paths, paths[i].Stats)
		if !exact {
			t.Errorf("own stats must match exactly")
		}
		if best.Stats.OpCount != paths[i].Stats.OpCount {
			t.Errorf("matched wrong path")
		}
	}
}

func TestControlBits(t *testing.T) {
	s, _ := miniArch(t)
	r, _ := Resolve(s, []int{1, 2})
	bits := r.ControlBits(s)
	if !bits[0] {
		t.Error("arm 1 of 2 must set the bit")
	}
	if !bits[1] {
		t.Error("repeat decision 2 of [0..2] must set the bit")
	}
	r0, _ := Resolve(s, []int{0, 0})
	bits0 := r0.ControlBits(s)
	if bits0[0] || bits0[1] {
		t.Error("default decisions must clear bits")
	}
}

func TestExpandTraining(t *testing.T) {
	var reg tensor.Registry
	w := reg.New("w", tensor.Weight, tensor.F32, 4, 4)
	ws := NewWeightState(&reg, w, true)
	x := reg.New("x", tensor.Input, tensor.F32, 2, 4)
	y := reg.New("y", tensor.Activation, tensor.F32, 2, 4)
	z := reg.New("z", tensor.Activation, tensor.F32, 2, 4)
	ops := []*Op{
		NewOp("matmul", 64, []*tensor.Meta{x, w}, []*tensor.Meta{y}),
		NewOp("relu", 8, []*tensor.Meta{y}, []*tensor.Meta{z}),
	}
	r := &Resolved{ModelName: "t", Ops: ops}
	it := ExpandTraining(&reg, r, []*WeightState{ws}, true)

	if len(it.Forward) != 2 {
		t.Fatalf("forward ops = %d", len(it.Forward))
	}
	if len(it.Backward) != 2 {
		t.Fatalf("backward ops = %d, want 2", len(it.Backward))
	}
	if len(it.Optimizer) != 1 {
		t.Fatalf("optimizer ops = %d, want 1", len(it.Optimizer))
	}
	// Backward order mirrors forward (relu's grad first).
	if it.Backward[0].Name != "elementwise_grad" {
		t.Errorf("first backward op = %s", it.Backward[0].Name)
	}
	if it.Backward[1].Name != "matmul_grad_a" {
		t.Errorf("second backward op = %s", it.Backward[1].Name)
	}
	// Backward FLOPs are 2x forward.
	if it.Backward[1].FLOPs != 128 {
		t.Errorf("backward flops = %d, want 128", it.Backward[1].FLOPs)
	}
	// The matmul's grad op must write into the shared weight gradient.
	found := false
	for _, out := range it.Backward[1].Outputs {
		if out.ID == ws.Grad.ID {
			found = true
		}
	}
	if !found {
		t.Error("weight gradient not produced by backward")
	}
	// Optimizer consumes weight, grad, and both moments.
	if len(it.Optimizer[0].Inputs) != 4 {
		t.Errorf("adam inputs = %d, want 4", len(it.Optimizer[0].Inputs))
	}
	if it.Optimizer[0].Name != "adam_update" {
		t.Errorf("optimizer op = %s", it.Optimizer[0].Name)
	}
}

func TestWeightStateBytes(t *testing.T) {
	var reg tensor.Registry
	w := reg.New("w", tensor.Weight, tensor.F32, 10) // 40 B
	adam := NewWeightState(&reg, w, true)
	if adam.Bytes() != 160 { // w + grad + m + v
		t.Errorf("adam state bytes = %d, want 160", adam.Bytes())
	}
	sgd := NewWeightState(&reg, w, false)
	if sgd.Bytes() != 80 {
		t.Errorf("sgd state bytes = %d, want 80", sgd.Bytes())
	}
}

func TestProducerMap(t *testing.T) {
	var reg tensor.Registry
	a := reg.New("a", tensor.Activation, tensor.F32, 1)
	b := reg.New("b", tensor.Activation, tensor.F32, 1)
	ops := []*Op{
		NewOp("add", 1, nil, []*tensor.Meta{a}),
		NewOp("add", 1, []*tensor.Meta{a}, []*tensor.Meta{b}),
		NewOp("add", 1, []*tensor.Meta{b}, []*tensor.Meta{a}), // second producer ignored
	}
	pm := ProducerMap(ops)
	if pm[a.ID] != 0 || pm[b.ID] != 1 {
		t.Errorf("ProducerMap = %v", pm)
	}
}

func TestOpBytesDeduplicated(t *testing.T) {
	var reg tensor.Registry
	y := reg.New("y", tensor.Activation, tensor.F32, 8) // 32 B
	op := NewOp("relu", 8, []*tensor.Meta{y}, []*tensor.Meta{y})
	if op.Bytes() != 32 {
		t.Errorf("in-place op bytes = %d, want 32", op.Bytes())
	}
}

func TestStatsDistanceProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		s1 := Stats{OpCount: int(a)}
		s2 := Stats{OpCount: int(b)}
		d12 := StatsDistance(s1, s2)
		d21 := StatsDistance(s2, s1)
		return d12 == d21 && d12 >= 0 && StatsDistance(s1, s1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResolveDeterministic(t *testing.T) {
	s, _ := miniArch(t)
	f := func(d0raw, d1raw uint8) bool {
		d := []int{int(d0raw % 2), int(d1raw % 3)}
		r1, err1 := Resolve(s, d)
		r2, err2 := Resolve(s, d)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(r1.Ops) != len(r2.Ops) {
			return false
		}
		for i := range r1.Ops {
			if r1.Ops[i] != r2.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
