package graph

import (
	"fmt"

	"dynnoffload/internal/idiom"
)

// Resolved is the linear forward operator sequence obtained by resolving all
// control flow of a static architecture with a concrete decision vector.
type Resolved struct {
	ModelName string
	Ops       []*Op
	Decisions []int // indexed by site ID; sites never reached keep their value
	Reached   []bool
}

// Resolve linearizes the static architecture under the given decisions
// (indexed by site ID). It returns an error if a decision is out of range for
// a site that is reached.
func Resolve(s *Static, decisions []int) (*Resolved, error) {
	if len(decisions) != s.NumSites {
		return nil, fmt.Errorf("graph: got %d decisions, want %d", len(decisions), s.NumSites)
	}
	r := &Resolved{
		ModelName: s.ModelName,
		Decisions: append([]int(nil), decisions...),
		Reached:   make([]bool, s.NumSites),
	}
	var walk func(elems []Elem) error
	walk = func(elems []Elem) error {
		for _, e := range elems {
			switch v := e.(type) {
			case OpElem:
				r.Ops = append(r.Ops, v.Op)
			case Branch:
				d := decisions[v.Site]
				if d < 0 || d >= len(v.Arms) {
					return fmt.Errorf("graph: site %d decision %d out of [0,%d)", v.Site, d, len(v.Arms))
				}
				r.Reached[v.Site] = true
				if err := walk(v.Arms[d]); err != nil {
					return err
				}
			case Repeat:
				d := decisions[v.Site]
				count := v.Min + d
				if d < 0 || count > v.Max {
					return fmt.Errorf("graph: site %d repeat decision %d out of range", v.Site, d)
				}
				r.Reached[v.Site] = true
				for i := 0; i < count; i++ {
					if err := walk(v.Body); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := walk(s.Elems); err != nil {
		return nil, err
	}
	return r, nil
}

// Stats are the bookkeeping aggregates the paper's output-mapping traverse
// records (§IV-B): operator count, per-idiom totals, and input-dimension
// totals.
type Stats struct {
	OpCount int
	Sig     idiom.Signature // summed signatures (idiom counts + dim sums)
}

// Stats computes the bookkeeping aggregate of the resolved sequence.
func (r *Resolved) Stats() Stats {
	var st Stats
	st.OpCount = len(r.Ops)
	for _, op := range r.Ops {
		st.Sig = st.Sig.Add(op.Sig)
	}
	return st
}

// ControlBits flattens the decision vector into one boolean per control site
// (branch: non-default arm taken; repeat: upper half of the range). Used by
// the Table I Jaccard-distance study.
func (r *Resolved) ControlBits(s *Static) []bool {
	ranges := s.DecisionRange()
	bits := make([]bool, s.NumSites)
	for site, d := range r.Decisions {
		if !r.Reached[site] {
			continue
		}
		bits[site] = d > (ranges[site]-1)/2
	}
	return bits
}

// TotalFLOPs sums operator FLOPs over the resolved sequence.
func (r *Resolved) TotalFLOPs() int64 {
	var f int64
	for _, op := range r.Ops {
		f += op.FLOPs
	}
	return f
}
