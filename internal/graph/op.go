// Package graph models DyNN dataflow graphs: a *static architecture* (the
// program text, with unresolved control flow) and *resolved graphs* (the
// per-input linear operator sequence). It also builds the paper's
// architecture feature matrix (AFM, §IV-A2), enumerates resolution paths for
// mapping pilot-model output back onto the graph (§IV-B), and expands a
// resolved forward pass into a full training iteration (forward + backward +
// optimizer).
package graph

import (
	"fmt"

	"dynnoffload/internal/idiom"
	"dynnoffload/internal/tensor"
)

// Op is one operator instance in a dataflow graph. Sig carries the
// idiom-based nine-element signature with dimension elements filled from the
// operator's input shapes.
type Op struct {
	Name    string
	Sig     idiom.Signature
	FLOPs   int64
	Inputs  []*tensor.Meta
	Outputs []*tensor.Meta
}

// Bytes returns the total bytes touched (inputs + outputs, duplicates counted
// once), which drives the memory-bandwidth term of the cost model.
func (o *Op) Bytes() int64 {
	all := make([]*tensor.Meta, 0, len(o.Inputs)+len(o.Outputs))
	all = append(all, o.Inputs...)
	all = append(all, o.Outputs...)
	return tensor.TotalBytes(all)
}

// InputShapes returns the shapes of all inputs (for signature dims).
func (o *Op) InputShapes() [][]int {
	shapes := make([][]int, 0, len(o.Inputs))
	for _, t := range o.Inputs {
		shapes = append(shapes, t.Shape)
	}
	return shapes
}

// NewOp builds an operator, looking up its idiom signature in the default
// registry and filling the dimension elements from the input shapes.
func NewOp(name string, flops int64, inputs, outputs []*tensor.Meta) *Op {
	op := &Op{Name: name, FLOPs: flops, Inputs: inputs, Outputs: outputs}
	sig := idiom.Default.MustSignature(name)
	op.Sig = sig.WithDims(op.InputShapes()...)
	return op
}

func (o *Op) String() string {
	return fmt.Sprintf("%s(in=%d out=%d flops=%d)", o.Name, len(o.Inputs), len(o.Outputs), o.FLOPs)
}
