package graph

import "dynnoffload/internal/idiom"

// AFM is the architecture feature matrix (§IV-A2): one nine-element row per
// operator occurrence in program order, with an all-zero dummy row at each
// control-statement location. Operators inside branch arms appear in program
// order; a repeat body appears once (as in the source text).
type AFM struct {
	Rows [][]float64
}

// BuildAFM constructs the AFM of a static architecture.
func BuildAFM(s *Static) *AFM {
	afm := &AFM{}
	var walk func(elems []Elem)
	appendRow := func(sig idiom.Signature) {
		row := make([]float64, idiom.SigLen)
		copy(row, sig[:])
		afm.Rows = append(afm.Rows, row)
	}
	walk = func(elems []Elem) {
		for _, e := range elems {
			switch v := e.(type) {
			case OpElem:
				appendRow(v.Op.Sig)
			case Branch:
				appendRow(idiom.ControlFlowRow)
				for _, arm := range v.Arms {
					walk(arm)
				}
			case Repeat:
				appendRow(idiom.ControlFlowRow)
				walk(v.Body)
			}
		}
	}
	walk(s.Elems)
	return afm
}

// NumRows returns the row count.
func (a *AFM) NumRows() int { return len(a.Rows) }

// ControlRows returns the indices of dummy (control-flow) rows.
func (a *AFM) ControlRows() []int {
	var out []int
	for i, row := range a.Rows {
		zero := true
		for _, v := range row {
			if v != 0 {
				zero = false
				break
			}
		}
		if zero {
			out = append(out, i)
		}
	}
	return out
}

// PooledFeatures compresses the AFM into a fixed-length feature vector for
// the pilot model: the rows are split into `segments` contiguous groups and
// each group's rows are summed, yielding segments×SigLen features. This keeps
// the pilot input width constant across architectures of different sizes
// while preserving the coarse idiom layout of the network (§IV-A goals: few,
// informative features).
func (a *AFM) PooledFeatures(segments int) []float64 {
	out := make([]float64, segments*idiom.SigLen)
	n := len(a.Rows)
	if n == 0 {
		return out
	}
	for i, row := range a.Rows {
		seg := i * segments / n
		base := seg * idiom.SigLen
		for j, v := range row {
			out[base+j] += v
		}
	}
	return out
}

// GlobalIDFeatures is the Fig 11 baseline representation: instead of idiom
// signatures, each row contributes a one-hot of the operator's global ID
// pooled into segments (control rows contribute nothing). The feature width
// is segments×vocab, which grows with the operator vocabulary — the paper's
// point: this representation needs far more model capacity for the same
// accuracy.
type GlobalIDAFM struct {
	IDs   []int // -1 marks control rows
	names []string
}

// BuildGlobalIDAFM records each operator occurrence's global registry ID in
// program order, mirroring BuildAFM's row layout.
func BuildGlobalIDAFM(s *Static) *GlobalIDAFM {
	g := &GlobalIDAFM{}
	var walk func(elems []Elem)
	walk = func(elems []Elem) {
		for _, e := range elems {
			switch v := e.(type) {
			case OpElem:
				id, ok := idiom.Default.GlobalID(v.Op.Name)
				if !ok {
					id = -1
				}
				g.IDs = append(g.IDs, id)
				g.names = append(g.names, v.Op.Name)
			case Branch:
				g.IDs = append(g.IDs, -1)
				g.names = append(g.names, "")
				for _, arm := range v.Arms {
					walk(arm)
				}
			case Repeat:
				g.IDs = append(g.IDs, -1)
				g.names = append(g.names, "")
				walk(v.Body)
			}
		}
	}
	walk(s.Elems)
	return g
}

// PooledFeatures pools one-hot rows into segments×vocab features.
func (g *GlobalIDAFM) PooledFeatures(segments, vocab int) []float64 {
	out := make([]float64, segments*vocab)
	n := len(g.IDs)
	if n == 0 {
		return out
	}
	for i, id := range g.IDs {
		if id < 0 || id >= vocab {
			continue
		}
		seg := i * segments / n
		out[seg*vocab+id]++
	}
	return out
}
