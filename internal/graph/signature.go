package graph

import (
	"math/bits"
	"strconv"
	"strings"
)

// This file defines the canonical control-flow signature of a resolved path —
// the key of the runtime's resolved-plan cache (DyCL-style: dynamic control
// flow rewritten into enumerable static sub-graphs, each served from one
// compiled plan). Two resolved graphs get equal signatures exactly when their
// model and operator sequences are identical, so the signature is strictly
// more canonical than the decision-vector path key: decision vectors that
// differ only at unreached sites — or that route through different sites into
// the same operator sequence — collapse onto one signature and therefore one
// immutable plan.

// PathSignature canonicalizes a resolved path into a deterministic string.
// The encoding is injective on (model name, operator sequence): it writes the
// model name, the operator count, and each operator's identity token
// (name, FLOPs, and the nine-element idiom/dimension signature), run-length
// compressed over consecutive repeats so deep stacked models stay compact.
//
// Properties the plan-cache and fuzz layers rely on:
//
//   - equal signatures ⇒ identical operator sequences ⇒ identical resolved
//     plans (a plan is a pure function of the operator sequence and the
//     execution context);
//   - unequal operator sequences ⇒ unequal signatures (the token stream is a
//     prefix-free encoding of the sequence: the leading count pins the
//     sequence length, every token is delimited, and run lengths are
//     explicit).
func PathSignature(r *Resolved) string {
	var sb strings.Builder
	sb.Grow(64 + 24*len(r.Ops))
	sb.WriteString(r.ModelName)
	sb.WriteByte('#')
	sb.WriteString(strconv.Itoa(len(r.Ops)))
	prev := ""
	run := 0
	flush := func() {
		if run == 0 {
			return
		}
		sb.WriteByte('|')
		sb.WriteString(prev)
		if run > 1 {
			sb.WriteByte('x')
			sb.WriteString(strconv.Itoa(run))
		}
	}
	for _, op := range r.Ops {
		tok := opToken(op)
		if tok == prev {
			run++
			continue
		}
		flush()
		prev, run = tok, 1
	}
	flush()
	return sb.String()
}

// opToken renders one operator's identity: name, FLOPs, and the idiom
// signature (which already folds in the input-dimension sums, so shape
// differences separate signatures without serializing every tensor). Run
// detection compares these rendered tokens, so two operators collapse into a
// run exactly when their tokens — and therefore their decoded identities —
// are equal.
func opToken(op *Op) string {
	var sb strings.Builder
	sb.Grow(24)
	sb.WriteString(op.Name)
	sb.WriteByte(':')
	sb.WriteString(strconv.FormatInt(op.FLOPs, 10))
	for _, v := range op.Sig {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return sb.String()
}

// SignatureHash is a 64-bit FNV-1a fold of a signature string, for callers
// that need a fixed-width fingerprint (cache shard selection, compact keys).
func SignatureHash(sig string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(sig); i++ {
		h ^= uint64(sig[i])
		h *= prime64
	}
	return h
}

// SignatureHash128 folds one or more strings into a 128-bit FNV-1a
// fingerprint (hi, lo). The plan-cache key layer uses it to replace the full
// signature+fingerprint string — whose comparison walked hundreds of bytes on
// every L2 hit — with a fixed 16-byte digest. Each part is terminated by a
// delimiter byte folded into the state, so ("ab","c") and ("a","bc") hash
// differently: the encoding stays prefix-free across parts.
//
// 128 bits keeps accidental collisions out of reach for any real path
// population (millions of distinct signatures sit at ~2^-80 collision odds),
// which is what lets the resolved-plan cache key drop the injective string.
func SignatureHash128(parts ...string) (hi, lo uint64) {
	// FNV-1a 128-bit offset basis and prime (2^88 + 2^8 + 0x3b), computed on
	// a 128-bit state carried as two 64-bit limbs.
	const (
		offsetHi = 0x6C62272E07BB0142
		offsetLo = 0x62B821756295C58D
		primeHi  = 1 << 24 // prime = primeHi<<64 + primeLo
		primeLo  = 0x13B
	)
	hi, lo = offsetHi, offsetLo
	mix := func(b byte) {
		lo ^= uint64(b)
		// (hi,lo) *= prime, mod 2^128.
		carryHi, newLo := bits.Mul64(lo, primeLo)
		newHi := carryHi + hi*primeLo + lo*primeHi
		hi, lo = newHi, newLo
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			mix(p[i])
		}
		mix(0x1E) // record separator: delimits parts prefix-free
	}
	return hi, lo
}
