package graph

import "fmt"

// Elem is one element of a static architecture: an operator, a branch
// (conditional control flow), or a repeat (data-dependent iteration count,
// e.g. AlphaFold recycling or tree depth).
type Elem interface{ isElem() }

// OpElem wraps a single operator occurrence.
type OpElem struct{ Op *Op }

// Branch is an unresolved conditional: exactly one arm executes, selected by
// the control decision for Site.
type Branch struct {
	Site int
	Arms [][]Elem
}

// Repeat executes Body a data-dependent number of times in [Min, Max],
// selected by the control decision for Site (decision d runs Min+d times).
type Repeat struct {
	Site     int
	Body     []Elem
	Min, Max int
}

func (OpElem) isElem() {}
func (Branch) isElem() {}
func (Repeat) isElem() {}

// Static is a DyNN's static architecture: the program-order element list plus
// the number of control-flow sites. Site IDs must be dense in [0, NumSites).
type Static struct {
	ModelName string
	Elems     []Elem
	NumSites  int
}

// Validate checks site-ID density and arm/repeat sanity.
func (s *Static) Validate() error {
	seen := make([]bool, s.NumSites)
	var walk func(elems []Elem) error
	walk = func(elems []Elem) error {
		for _, e := range elems {
			switch v := e.(type) {
			case OpElem:
				if v.Op == nil {
					return fmt.Errorf("graph: nil op in %s", s.ModelName)
				}
			case Branch:
				if v.Site < 0 || v.Site >= s.NumSites {
					return fmt.Errorf("graph: branch site %d out of range [0,%d)", v.Site, s.NumSites)
				}
				if seen[v.Site] {
					return fmt.Errorf("graph: duplicate site %d", v.Site)
				}
				seen[v.Site] = true
				if len(v.Arms) < 2 {
					return fmt.Errorf("graph: branch site %d has %d arms, want >= 2", v.Site, len(v.Arms))
				}
				for _, arm := range v.Arms {
					if err := walk(arm); err != nil {
						return err
					}
				}
			case Repeat:
				if v.Site < 0 || v.Site >= s.NumSites {
					return fmt.Errorf("graph: repeat site %d out of range [0,%d)", v.Site, s.NumSites)
				}
				if seen[v.Site] {
					return fmt.Errorf("graph: duplicate site %d", v.Site)
				}
				seen[v.Site] = true
				if v.Min < 0 || v.Max < v.Min {
					return fmt.Errorf("graph: repeat site %d has bad range [%d,%d]", v.Site, v.Min, v.Max)
				}
				if err := walk(v.Body); err != nil {
					return err
				}
			default:
				return fmt.Errorf("graph: unknown elem type %T", e)
			}
		}
		return nil
	}
	if err := walk(s.Elems); err != nil {
		return err
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("graph: site %d never appears", i)
		}
	}
	return nil
}

// DecisionRange returns, for each control site, the number of valid decision
// values (branch: arm count; repeat: Max-Min+1). Indexed by site ID.
func (s *Static) DecisionRange() []int {
	ranges := make([]int, s.NumSites)
	var walk func(elems []Elem)
	walk = func(elems []Elem) {
		for _, e := range elems {
			switch v := e.(type) {
			case Branch:
				ranges[v.Site] = len(v.Arms)
				for _, arm := range v.Arms {
					walk(arm)
				}
			case Repeat:
				ranges[v.Site] = v.Max - v.Min + 1
				walk(v.Body)
			}
		}
	}
	walk(s.Elems)
	return ranges
}

// OpCount returns the number of operator occurrences in program order (every
// branch arm counted, repeats counted once), i.e. the number of non-dummy
// AFM rows.
func (s *Static) OpCount() int {
	n := 0
	var walk func(elems []Elem)
	walk = func(elems []Elem) {
		for _, e := range elems {
			switch v := e.(type) {
			case OpElem:
				n++
			case Branch:
				for _, arm := range v.Arms {
					walk(arm)
				}
			case Repeat:
				walk(v.Body)
			}
		}
	}
	walk(s.Elems)
	return n
}
