package graph

import (
	"dynnoffload/internal/tensor"
)

// WeightState groups the persistent training state of one weight tensor:
// its gradient accumulator and optimizer moments. Models create these once;
// they are shared across samples (unlike activations).
type WeightState struct {
	Weight *tensor.Meta
	Grad   *tensor.Meta
	M, V   *tensor.Meta // Adam moments; nil for plain SGD
}

// NewWeightState allocates gradient and Adam-moment tensors for w.
func NewWeightState(reg *tensor.Registry, w *tensor.Meta, adam bool) *WeightState {
	ws := &WeightState{
		Weight: w,
		Grad:   reg.New(w.Name+".grad", tensor.Gradient, w.DType, w.Shape...),
	}
	if adam {
		ws.M = reg.New(w.Name+".adam_m", tensor.OptState, w.DType, w.Shape...)
		ws.V = reg.New(w.Name+".adam_v", tensor.OptState, w.DType, w.Shape...)
	}
	return ws
}

// Bytes returns the persistent state bytes (weight + grad + moments).
func (ws *WeightState) Bytes() int64 {
	b := ws.Weight.Bytes() + ws.Grad.Bytes()
	if ws.M != nil {
		b += ws.M.Bytes() + ws.V.Bytes()
	}
	return b
}

// gradOpName maps a forward operator to its registered backward operator.
var gradOpName = map[string]string{
	"matmul":             "matmul_grad_a",
	"linear":             "matmul_grad_b",
	"attention_scores":   "matmul_grad_a",
	"attention_context":  "matmul_grad_b",
	"conv2d":             "conv2d_grad",
	"conv1d":             "conv2d_grad",
	"depthwise_conv":     "conv2d_grad",
	"conv_transpose":     "conv2d_grad",
	"lstm_cell":          "lstm_cell_grad",
	"gru_cell":           "lstm_cell_grad",
	"tree_compose":       "lstm_cell_grad",
	"layernorm":          "layernorm_grad",
	"batchnorm":          "layernorm_grad",
	"softmax":            "softmax_grad",
	"attention_softmax":  "softmax_grad",
	"embedding":          "embedding_grad",
	"index_select":       "embedding_grad",
	"gather_rows":        "embedding_grad",
	"expert_combine":     "expert_dispatch",
	"triangle_mult":      "matmul_grad_a",
	"outer_product_mean": "matmul_grad_b",
}

func backwardName(fwd string) string {
	if g, ok := gradOpName[fwd]; ok {
		return g
	}
	return "elementwise_grad"
}

// Iteration is one full training iteration over a resolved forward graph:
// forward ops, generated backward ops, and optimizer updates. It also carries
// the tensor bookkeeping the offloading policies need.
type Iteration struct {
	Forward   []*Op
	Backward  []*Op
	Optimizer []*Op
}

// Ops returns the concatenated execution sequence.
func (it *Iteration) Ops() []*Op {
	out := make([]*Op, 0, len(it.Forward)+len(it.Backward)+len(it.Optimizer))
	out = append(out, it.Forward...)
	out = append(out, it.Backward...)
	out = append(out, it.Optimizer...)
	return out
}

// ExpandTraining generates the full training iteration for a resolved forward
// pass (§: tensor kinds matter — DTR may only rematerialize activations; the
// optimizer phase touches weights, gradients, and moments).
//
// Backward generation mirrors the forward sequence in reverse: each forward
// op gets one gradient op consuming the upstream gradient plus the forward
// op's saved inputs, producing gradients for activation inputs (fresh
// tensors) and accumulating into the shared gradient tensors of weight
// inputs. Gradient-op FLOPs are twice the forward FLOPs, the usual 2:1
// backward/forward ratio.
func ExpandTraining(reg *tensor.Registry, r *Resolved, states []*WeightState, adam bool) *Iteration {
	it := &Iteration{Forward: r.Ops}

	byWeight := make(map[int64]*WeightState, len(states))
	for _, ws := range states {
		byWeight[ws.Weight.ID] = ws
	}

	// Upstream gradient tensors for activations, keyed by forward tensor ID.
	actGrad := map[int64]*tensor.Meta{}
	gradOf := func(t *tensor.Meta) *tensor.Meta {
		if g, ok := actGrad[t.ID]; ok {
			return g
		}
		g := reg.New(t.Name+".grad", tensor.Gradient, t.DType, t.Shape...)
		actGrad[t.ID] = g
		return g
	}

	// producedGrads tracks gradient tensors already written by an earlier
	// backward op. With weight-shared Repeat bodies (AlphaFold recycling),
	// an aliased tensor's gradient can otherwise be read before any op
	// produced it; such reads start an accumulation, so the first reader
	// zero-initializes (also produces) the gradient.
	producedGrads := map[int64]bool{}

	for i := len(r.Ops) - 1; i >= 0; i-- {
		fwd := r.Ops[i]
		name := backwardName(fwd.Name)

		inputs := make([]*tensor.Meta, 0, len(fwd.Inputs)+len(fwd.Outputs))
		var initGrads []*tensor.Meta
		for _, out := range fwd.Outputs {
			g := gradOf(out)
			inputs = append(inputs, g)
			if !producedGrads[g.ID] {
				initGrads = append(initGrads, g)
				producedGrads[g.ID] = true
			}
		}
		inputs = append(inputs, fwd.Inputs...)

		outputs := append([]*tensor.Meta{}, initGrads...)
		for _, in := range fwd.Inputs {
			switch in.Kind {
			case tensor.Weight:
				if ws, ok := byWeight[in.ID]; ok {
					outputs = append(outputs, ws.Grad)
					producedGrads[ws.Grad.ID] = true
				}
			case tensor.Activation:
				g := gradOf(in)
				outputs = append(outputs, g)
				producedGrads[g.ID] = true
			}
		}
		if len(outputs) == 0 {
			// Gradients flow nowhere (e.g. op over constants/inputs only);
			// no backward op needed.
			continue
		}
		it.Backward = append(it.Backward, NewOp(name, 2*fwd.FLOPs, inputs, outputs))
	}

	updName := "sgd_update"
	if adam {
		updName = "adam_update"
	}
	for _, ws := range states {
		inputs := []*tensor.Meta{ws.Weight, ws.Grad}
		if adam && ws.M != nil {
			inputs = append(inputs, ws.M, ws.V)
		}
		flops := ws.Weight.Elems() * 4
		it.Optimizer = append(it.Optimizer, NewOp(updName, flops, inputs, []*tensor.Meta{ws.Weight}))
	}
	return it
}

// ProducerMap maps each tensor ID to the index of the op (in ops) that
// produces it, the structure DTR needs for recursive rematerialization.
func ProducerMap(ops []*Op) map[int64]int {
	m := map[int64]int{}
	for i, op := range ops {
		for _, out := range op.Outputs {
			if _, ok := m[out.ID]; !ok {
				m[out.ID] = i
			}
		}
	}
	return m
}

// IterationStats aggregates signature bookkeeping over a full iteration.
func (it *Iteration) Stats() Stats {
	var st Stats
	for _, op := range it.Ops() {
		st.OpCount++
		st.Sig = st.Sig.Add(op.Sig)
	}
	return st
}
