package graph

import (
	"fmt"
	"math"
)

// Path is one complete resolution of a static architecture together with its
// bookkeeping aggregate, used to map pilot-model output back to control-flow
// decisions (§IV-B).
type Path struct {
	Decisions []int
	Resolved  *Resolved
	Stats     Stats
}

// MaxEnumeratedPaths bounds path enumeration. The paper notes that "a large
// DyNN does not have many control flows", so enumeration stays cheap; the
// bound is a safety valve for misuse.
const MaxEnumeratedPaths = 1 << 16

// EnumeratePaths lists every distinct resolution of s, trying all decision
// values for each control site actually reached. Unreached sites keep
// decision 0.
func EnumeratePaths(s *Static) ([]Path, error) {
	var paths []Path
	decisions := make([]int, s.NumSites)

	// DFS over elements with explicit continuation stack so nested branches
	// enumerate only along the traversed arm.
	var walk func(stack [][]Elem) error
	walk = func(stack [][]Elem) error {
		// Find the next element: pop empty frames.
		for len(stack) > 0 && len(stack[len(stack)-1]) == 0 {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if len(paths) >= MaxEnumeratedPaths {
				return fmt.Errorf("graph: more than %d paths in %s", MaxEnumeratedPaths, s.ModelName)
			}
			r, err := Resolve(s, decisions)
			if err != nil {
				return err
			}
			paths = append(paths, Path{
				Decisions: append([]int(nil), decisions...),
				Resolved:  r,
				Stats:     r.Stats(),
			})
			return nil
		}
		top := stack[len(stack)-1]
		head, rest := top[0], top[1:]
		base := append(stack[:len(stack)-1:len(stack)-1], rest)

		switch v := head.(type) {
		case OpElem:
			return walk(base)
		case Branch:
			for d := range v.Arms {
				decisions[v.Site] = d
				next := append(base[:len(base):len(base)], v.Arms[d])
				if err := walk(next); err != nil {
					return err
				}
			}
			decisions[v.Site] = 0
			return nil
		case Repeat:
			for d := 0; d <= v.Max-v.Min; d++ {
				decisions[v.Site] = d
				next := base
				for i := 0; i < v.Min+d; i++ {
					next = append(next[:len(next):len(next)], v.Body)
				}
				if err := walk(next); err != nil {
					return err
				}
			}
			decisions[v.Site] = 0
			return nil
		}
		return fmt.Errorf("graph: unknown elem %T", head)
	}
	if err := walk([][]Elem{s.Elems}); err != nil {
		return nil, err
	}
	return paths, nil
}

// MatchStats finds the path whose aggregate bookkeeping record is nearest to
// the target under a per-element normalized distance (§IV-B: an exact match
// is expected because pilot-training labels are constructed to match; when
// the regression output is noisy, the closest path by bookkeeping record is
// chosen). exact reports whether the best match was within tolerance on every
// element.
func MatchStats(paths []Path, target Stats) (best *Path, exact bool) {
	bestDist := math.Inf(1)
	for i := range paths {
		p := &paths[i]
		d := StatsDistance(p.Stats, target)
		if d < bestDist {
			bestDist = d
			best = p
		}
	}
	return best, bestDist < MatchTolerance
}

// MatchTolerance bounds the summed relative error for a match to count as
// exact.
const MatchTolerance = 0.02

// StatsDistance is the summed relative error over operator count and the
// nine signature aggregates.
func StatsDistance(a, b Stats) float64 {
	d := relErr(float64(a.OpCount), float64(b.OpCount))
	for i := range a.Sig {
		d += relErr(a.Sig[i], b.Sig[i])
	}
	return d
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}
