package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempModule lays out a two-package module: b imports a, and a carries
// one errdiscipline violation (unscoped analyzer, fires anywhere).
func writeTempModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"a/a.go": `package a

import "errors"

// ErrGone is a sentinel.
var ErrGone = errors.New("gone")

// IsGone compares errors with == (seeded errdiscipline violation).
func IsGone(err error) bool { return err == ErrGone }
`,
		"b/b.go": `package b

import "tmpmod/a"

// Check forwards to a.
func Check(err error) bool { return a.IsGone(err) }
`,
	}
	for rel, src := range files {
		fn := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(fn), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fn, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestAnalyzeCacheRoundTrip pins the incremental driver's contract: a cold
// run analyzes everything, a warm run serves every package from cache with
// identical findings and loads nothing, and editing a dependency invalidates
// its importers.
func TestAnalyzeCacheRoundTrip(t *testing.T) {
	root := writeTempModule(t)
	opts := Options{CacheDir: filepath.Join(root, ".cache"), Jobs: 2}

	cold, err := Analyze(root, []string{"./..."}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Packages != 2 || cold.Stats.CacheMisses != 2 || cold.Stats.CacheHits != 0 {
		t.Fatalf("cold stats = %+v, want 2 packages, 2 misses", cold.Stats)
	}
	if cold.Stats.LoadedPackages != 2 {
		t.Fatalf("cold loaded %d packages, want 2", cold.Stats.LoadedPackages)
	}
	if len(cold.Findings) != 1 || cold.Findings[0].Analyzer != "errdiscipline" {
		t.Fatalf("cold findings = %v", cold.Findings)
	}

	warm, err := Analyze(root, []string{"./..."}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != 2 || warm.Stats.CacheMisses != 0 || warm.Stats.LoadedPackages != 0 {
		t.Fatalf("warm stats = %+v, want 2 hits, 0 misses, 0 loaded", warm.Stats)
	}
	if len(warm.Findings) != 1 || warm.Findings[0].String() != cold.Findings[0].String() {
		t.Fatalf("warm findings = %v, want %v", warm.Findings, cold.Findings)
	}

	// Editing a invalidates both a and its importer b.
	an := filepath.Join(root, "a", "a.go")
	src, err := os.ReadFile(an)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(src), "return err == ErrGone",
		"return err == ErrGone || err != ErrGone", 1)
	if edited == string(src) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(an, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	inval, err := Analyze(root, []string{"./..."}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inval.Stats.CacheMisses != 2 {
		t.Fatalf("post-edit stats = %+v, want 2 misses (dep invalidation)", inval.Stats)
	}
	if len(inval.Findings) != 2 {
		t.Fatalf("post-edit findings = %v, want 2", inval.Findings)
	}
}

// TestAnalyzeSinglePackageInvalidation edits only the leaf importer: the
// dependency stays cached, the importer re-analyzes.
func TestAnalyzeSinglePackageInvalidation(t *testing.T) {
	root := writeTempModule(t)
	opts := Options{CacheDir: filepath.Join(root, ".cache")}
	if _, err := Analyze(root, []string{"./..."}, opts); err != nil {
		t.Fatal(err)
	}
	bn := filepath.Join(root, "b", "b.go")
	src, _ := os.ReadFile(bn)
	if err := os.WriteFile(bn, append(src, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(root, []string{"./..."}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 1 || res.Stats.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit (a) and 1 miss (b)", res.Stats)
	}
	// b's re-check still needs a's types: a loads but is not re-analyzed.
	if res.Stats.LoadedPackages != 2 {
		t.Fatalf("loaded %d, want 2 (miss plus its dep)", res.Stats.LoadedPackages)
	}
}

// TestAnalyzeNoCache runs the driver with caching disabled: every run is a
// full analysis and no cache directory appears.
func TestAnalyzeNoCache(t *testing.T) {
	root := writeTempModule(t)
	for i := 0; i < 2; i++ {
		res, err := Analyze(root, []string{"./..."}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.CacheHits != 0 || res.Stats.CacheMisses != 2 {
			t.Fatalf("run %d stats = %+v, want all misses", i, res.Stats)
		}
		if len(res.Findings) != 1 {
			t.Fatalf("run %d findings = %v", i, res.Findings)
		}
	}
}

// TestWriteSARIF pins the SARIF 2.1.0 shape GitHub code scanning consumes:
// schema/version headers, a rules table covering the analyzer set, and
// results with rule indices and %SRCROOT%-relative locations.
func TestWriteSARIF(t *testing.T) {
	findings := []Finding{
		{Analyzer: "allocleak", File: filepath.Join("/repo", "internal", "serve", "serve.go"),
			Line: 261, Col: 20, Message: "leak"},
		{Analyzer: "dynnlint", File: filepath.Join("/repo", "x.go"), Line: 3, Col: 1, Message: "bad directive"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/repo", All(), findings); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Schema != "https://json.schemastore.org/sarif-2.1.0.json" || log.Version != "2.1.0" {
		t.Fatalf("schema/version = %q/%q", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "dynnlint" {
		t.Fatalf("runs = %+v", log.Runs)
	}
	run := log.Runs[0]
	// Rules cover every analyzer plus the dynnlint pseudo-rule.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Fatalf("%d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "allocleak" || r.Level != "error" || r.Message.Text != "leak" {
		t.Fatalf("result 0 = %+v", r)
	}
	if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != "allocleak" {
		t.Fatalf("ruleIndex %d resolves to %q, want allocleak", r.RuleIndex, got)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/serve/serve.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Fatalf("artifact location = %+v", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 261 || loc.Region.StartColumn != 20 {
		t.Fatalf("region = %+v", loc.Region)
	}
}
