package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// rootIdent strips parens, indexing, field selection, and dereference from an
// lvalue and returns the base identifier, or nil when the base is not a plain
// identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// unparen removes any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// objectOf resolves an identifier to its object via Uses then Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// calleeFunc returns the *types.Func a call resolves to, or nil for builtins,
// conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether the call is to a package-level function
// pkgPath.name (no receiver).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorExpr reports whether e has an interface type satisfying error.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		return false
	}
	return types.Implements(t, errorIface)
}

// isNil reports whether e is the predeclared nil (possibly via a named
// constant — types records nilness on the expression).
func isNil(info *types.Info, e ast.Expr) bool {
	return info.Types[e].IsNil()
}

// isZeroConst reports whether e is a numeric constant expression equal to 0
// (the conventional bit-exact "unset" sentinel for float fields).
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv := info.Types[e]
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isFloat reports whether t is (or is an alias/defined form of) a float type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pkgPathHasPrefix reports whether path is pkg or a subpackage of pkg.
func pkgPathHasPrefix(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}
