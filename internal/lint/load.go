package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked (non-test) package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages with zero non-stdlib
// dependencies: module-internal imports resolve to already-checked packages,
// everything else falls through to the stdlib source importer.
//
// The loader may type-check independent packages from multiple goroutines:
// the package map and the stdlib importer (which is not concurrency-safe) are
// guarded by mu. The FileSet is safe for concurrent use on its own.
type Loader struct {
	fset *token.FileSet
	std  types.ImporterFrom
	mu   sync.Mutex
	pkgs map[string]*Package // by import path
}

// NewLoader creates a loader backed by the GOROOT source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: map[string]*Package{},
	}
}

// Import implements types.Importer over the loader's package set plus the
// stdlib fallback.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom. The stdlib fallback is serialized
// because the source importer keeps unsynchronized internal state; module
// packages resolve from the (guarded) package map.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// store publishes a checked package for importers; safe for concurrent use.
func (l *Loader) store(pkg *Package) {
	l.mu.Lock()
	l.pkgs[pkg.Path] = pkg
	l.mu.Unlock()
}

// lookup fetches a previously stored package; safe for concurrent use.
func (l *Loader) lookup(path string) (*Package, bool) {
	l.mu.Lock()
	p, ok := l.pkgs[path]
	l.mu.Unlock()
	return p, ok
}

// LoadModule expands patterns ("./...", "./internal/core", "cmd/dynnlint")
// relative to root — the directory holding go.mod — and loads every matched
// package in dependency order. Test files and testdata directories are
// skipped: dynnlint checks the code that ships.
func LoadModule(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}

	l := NewLoader()
	parsed := map[string]*parsedDir{}
	var order []string // import paths with Go files, pattern order
	for _, dir := range dirs {
		p, err := l.parseDir(root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue
		}
		parsed[p.path] = p
		order = append(order, p.path)
	}

	// Type-check in dependency order: module-internal imports must be
	// checked before their importers.
	var out []*Package
	checking := map[string]bool{}
	var check func(path string) error
	check = func(path string) error {
		if _, done := l.pkgs[path]; done {
			return nil
		}
		p, ok := parsed[path]
		if !ok {
			// A module-internal import outside the requested patterns:
			// parse it on demand so the requested packages type-check.
			rel := strings.TrimPrefix(path, modPath)
			rel = strings.TrimPrefix(rel, "/")
			var err error
			p, err = l.parseDir(root, modPath, filepath.Join(root, rel))
			if err != nil || p == nil {
				return fmt.Errorf("lint: cannot load module import %q: %v", path, err)
			}
			parsed[path] = p
		}
		if checking[path] {
			return fmt.Errorf("lint: import cycle through %q", path)
		}
		checking[path] = true
		defer delete(checking, path)
		for _, imp := range p.imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				if err := check(imp); err != nil {
					return err
				}
			}
		}
		pkg, err := l.typeCheck(p)
		if err != nil {
			return err
		}
		l.pkgs[path] = pkg
		return nil
	}
	for _, path := range order {
		if err := check(path); err != nil {
			return nil, err
		}
	}
	for _, path := range order {
		out = append(out, l.pkgs[path])
	}
	return out, nil
}

// LoadDir type-checks a single directory as importPath. Fixture tests use it
// to place testdata packages at chosen import paths so path-scoped analyzers
// apply.
func LoadDir(dir, importPath string) (*Package, error) {
	l := NewLoader()
	p, err := l.parseDirAs(dir, importPath)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.typeCheck(p)
}

// LoadDirWithDeps type-checks dir as importPath like LoadDir, but resolves
// module-internal imports against the real tree rooted at root (the directory
// holding go.mod). Fixture packages use it to import production packages such
// as internal/gpusim or internal/obsv so type-driven analyzers see the real
// method sets.
func LoadDirWithDeps(root, dir, importPath string) (*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := NewLoader()
	checking := map[string]bool{}
	var load func(ip string) error
	load = func(ip string) error {
		if _, ok := l.pkgs[ip]; ok {
			return nil
		}
		if checking[ip] {
			return fmt.Errorf("lint: import cycle through %q", ip)
		}
		checking[ip] = true
		defer delete(checking, ip)
		rel := strings.TrimPrefix(strings.TrimPrefix(ip, modPath), "/")
		p, err := l.parseDirAs(filepath.Join(root, filepath.FromSlash(rel)), ip)
		if err != nil || p == nil {
			return fmt.Errorf("lint: cannot load module import %q: %v", ip, err)
		}
		for _, imp := range p.imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				if err := load(imp); err != nil {
					return err
				}
			}
		}
		pkg, err := l.typeCheck(p)
		if err != nil {
			return err
		}
		l.pkgs[ip] = pkg
		return nil
	}

	p, err := l.parseDirAs(dir, importPath)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	for _, imp := range p.imports {
		if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
			if err := load(imp); err != nil {
				return nil, err
			}
		}
	}
	return l.typeCheck(p)
}

type parsedDir struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string
}

func (l *Loader) parseDir(root, modPath, dir string) (*parsedDir, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	return l.parseDirAs(dir, path)
}

func (l *Loader) parseDirAs(dir, importPath string) (*parsedDir, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &parsedDir{path: importPath, dir: dir}
	seen := map[string]bool{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if !seen[ip] {
				seen[ip] = true
				p.imports = append(p.imports, ip)
			}
		}
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	return p, nil
}

func (l *Loader) typeCheck(p *parsedDir) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(p.path, l.fset, p.files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", p.path, typeErrs[0])
	}
	return &Package{
		Path:  p.path,
		Dir:   p.dir,
		Fset:  l.fset,
		Files: p.files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// modulePath reads the module declaration from go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// expandPatterns resolves package patterns to directories under root.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			// Only directories that contain non-test Go files become packages.
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				n := e.Name()
				if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
					add(path)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
