package lint

import (
	"go/ast"
	"go/token"
)

// Floatcmp flags == / != between floating-point operands in the simulator
// and metrics packages: exact bit comparison silently diverges under
// reassociation or a different math library, which is how replay-style
// simulators drift. Comparison against the constant 0 is exempt — zero is
// bit-exact and the conventional "unset" sentinel for config fields.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid exact float equality in simulator/metrics code (compare with a tolerance)",
	Run:  runFloatcmp,
}

func runFloatcmp(pass *Pass) {
	if !inDeterministicScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.Info.TypeOf(be.X), pass.Info.TypeOf(be.Y)
			if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
				return true
			}
			if isZeroConst(pass.Info, be.X) || isZeroConst(pass.Info, be.Y) {
				return true
			}
			pass.Report(be.OpPos, "exact float comparison (%s); use a tolerance (math.Abs(a-b) < eps)", be.Op)
			return true
		})
	}
}
