package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//dynnlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed at the end of the offending line or on the line directly above it.
const ignorePrefix = "//dynnlint:ignore"

type directive struct {
	analyzers map[string]bool
	line      int
	file      string
}

type suppressions struct {
	// byFileLine maps file -> line -> directives active on that line.
	byFileLine map[string]map[int][]directive
	malformed  []Finding
}

// collectDirectives scans the package's comments for ignore directives and
// validates them: the analyzer list must name known analyzers and the reason
// must be non-empty. Violations become unsuppressable "dynnlint" findings.
func collectDirectives(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) *suppressions {
	known := map[string]bool{}
	for _, an := range analyzers {
		known[an.Name] = true
	}
	s := &suppressions{byFileLine: map[string]map[int][]directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Analyzer: "dynnlint",
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed ignore directive: want //dynnlint:ignore <analyzer> <reason>",
					})
					continue
				}
				d := directive{analyzers: map[string]bool{}, line: pos.Line, file: pos.Filename}
				bad := false
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						s.malformed = append(s.malformed, Finding{
							Analyzer: "dynnlint",
							Pos:      pos,
							File:     pos.Filename,
							Line:     pos.Line,
							Col:      pos.Column,
							Message:  "ignore directive names unknown analyzer " + strconv.Quote(name),
						})
						bad = true
						continue
					}
					d.analyzers[name] = true
				}
				if bad {
					continue
				}
				lines := s.byFileLine[pos.Filename]
				if lines == nil {
					lines = map[int][]directive{}
					s.byFileLine[pos.Filename] = lines
				}
				// A directive covers its own line (trailing comment) and the
				// next line (comment directly above the code).
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return s
}

func (s *suppressions) suppresses(f Finding) bool {
	for _, d := range s.byFileLine[f.File][f.Line] {
		if d.analyzers[f.Analyzer] {
			return true
		}
	}
	return false
}
