// Package lint is the dynnlint static-analysis framework: a pure-stdlib
// (go/ast, go/parser, go/types) analyzer driver with project-specific passes
// that enforce the repo's determinism, lock-safety, and error-discipline
// contracts. The parallel epoch runtime promises bit-identical aggregates at
// any worker count; these analyzers make that promise machine-checked instead
// of review-checked.
//
// Findings are suppressed with an inline directive on the offending line or
// the line directly above it:
//
//	//dynnlint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one analyzer hit.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path (scoping decisions key off it).
	Path string

	findings *[]Finding
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Run applies the analyzers to the loaded packages, filters suppressed
// findings via //dynnlint:ignore directives, and returns the survivors
// sorted by position. Malformed directives surface as findings from the
// pseudo-analyzer "dynnlint" and cannot be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		all = append(all, runPackage(pkg, analyzers)...)
	}
	sortFindings(all)
	return all
}

// runPackage applies the analyzers to one package and returns its surviving
// findings (suppression applied, malformed directives appended), unsorted.
// It touches only the package's own AST/types plus read-only imported type
// information, so distinct packages may run concurrently.
func runPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	sup := collectDirectives(pkg.Fset, pkg.Files, analyzers)
	var raw []Finding
	for _, an := range analyzers {
		pass := &Pass{
			Analyzer: an,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			findings: &raw,
		}
		an.Run(pass)
	}
	var out []Finding
	for _, f := range raw {
		if !sup.suppresses(f) {
			out = append(out, f)
		}
	}
	return append(out, sup.malformed...)
}

// sortFindings orders findings by file, line, column, analyzer.
func sortFindings(all []Finding) {
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		return all[i].Analyzer < all[j].Analyzer
	})
}
