package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot is the repo root relative to this package, for fixtures whose
// imports resolve against the real tree.
var moduleRoot = filepath.Join("..", "..")

// cfgFixtures drives the CFG/dataflow analyzer fixture suites. Each fixture
// loads at an import path that places it in the analyzer's scope; withDeps
// fixtures import production packages (gpusim, obsv) resolved from the real
// tree. The allocleak fixtures are hermetic: they define a stand-in Allocator
// and load at the gpusim import path so the analyzer adopts it.
var cfgFixtures = []struct {
	analyzer       string
	flaggedPath    string
	cleanPath      string
	suppressedPath string
	withDeps       bool
}{
	{"allocleak", "dynnoffload/internal/gpusim", "dynnoffload/internal/gpusim", "dynnoffload/internal/gpusim", false},
	{"clockunits", inScopePath, inScopePath, inScopePath, true},
	{"spanbalance", outOfScopePath, outOfScopePath, outOfScopePath, true},
	{"facade", "dynnoffload/cmd/dynnfix", "dynnoffload/cmd/dynntrace", "dynnoffload/cmd/dynnfix", true},
}

func loadCFGFixture(t *testing.T, rel, importPath string, withDeps bool) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", rel)
	var (
		pkg *Package
		err error
	)
	if withDeps {
		pkg, err = LoadDirWithDeps(moduleRoot, dir, importPath)
	} else {
		pkg, err = LoadDir(dir, importPath)
	}
	if err != nil {
		t.Fatalf("load fixture %s: %v", rel, err)
	}
	return pkg
}

// TestDataflowFlaggedFixtures checks each CFG/dataflow analyzer catches every
// seeded violation, byte-for-byte against the golden expectations, and that
// no other analyzer fires on the fixture.
func TestDataflowFlaggedFixtures(t *testing.T) {
	for _, tc := range cfgFixtures {
		t.Run(tc.analyzer, func(t *testing.T) {
			rel := filepath.Join(tc.analyzer, "flagged")
			pkg := loadCFGFixture(t, rel, tc.flaggedPath, tc.withDeps)
			got := render(Run([]*Package{pkg}, All()))
			diffLines(t, rel, got, readGolden(t, rel))
			for _, line := range got {
				if !strings.Contains(line, " "+tc.analyzer+": ") {
					t.Errorf("unexpected cross-analyzer finding in %s: %s", rel, line)
				}
			}
		})
	}
}

// TestDataflowCleanFixtures checks the clean twins stay silent under the full
// analyzer suite: balanced releases, deferred closes, ownership transfers,
// and whitelisted imports must all pass.
func TestDataflowCleanFixtures(t *testing.T) {
	for _, tc := range cfgFixtures {
		t.Run(tc.analyzer, func(t *testing.T) {
			rel := filepath.Join(tc.analyzer, "clean")
			pkg := loadCFGFixture(t, rel, tc.cleanPath, tc.withDeps)
			if got := render(Run([]*Package{pkg}, All())); len(got) != 0 {
				t.Errorf("clean fixture produced findings:\n  %s", strings.Join(got, "\n  "))
			}
		})
	}
}

// TestDataflowSuppressedFixtures checks a //dynnlint:ignore directive with a
// reason silences each CFG/dataflow analyzer.
func TestDataflowSuppressedFixtures(t *testing.T) {
	for _, tc := range cfgFixtures {
		t.Run(tc.analyzer, func(t *testing.T) {
			rel := filepath.Join(tc.analyzer, "suppressed")
			pkg := loadCFGFixture(t, rel, tc.suppressedPath, tc.withDeps)
			if got := render(Run([]*Package{pkg}, All())); len(got) != 0 {
				t.Errorf("suppressed fixture leaked findings:\n  %s", strings.Join(got, "\n  "))
			}
			// The violation must exist when the directive is ignored: rerun
			// with suppression defeated by checking the flagged twin reports
			// for this analyzer (covered in TestDataflowFlaggedFixtures).
		})
	}
}

// TestDataflowAnalyzersScopeOut loads scope-sensitive fixtures at paths
// outside their scope: nothing may fire.
func TestDataflowAnalyzersScopeOut(t *testing.T) {
	// clockunits is scoped to the deterministic packages.
	pkg := loadCFGFixture(t, filepath.Join("clockunits", "flagged"), outOfScopePath, true)
	if got := render(Run([]*Package{pkg}, ByName([]string{"clockunits"}))); len(got) != 0 {
		t.Errorf("clockunits fired outside the deterministic scope:\n  %s", strings.Join(got, "\n  "))
	}
	// facade is scoped to cmd/ binaries.
	pkg = loadCFGFixture(t, filepath.Join("facade", "flagged"), outOfScopePath, true)
	if got := render(Run([]*Package{pkg}, ByName([]string{"facade"}))); len(got) != 0 {
		t.Errorf("facade fired outside cmd/:\n  %s", strings.Join(got, "\n  "))
	}
}
