package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow layer under the flow-sensitive analyzers
// (allocleak, spanbalance): a per-function CFG built from go/ast, with
// branch edges annotated by their condition so guard-style facts ("acquired
// iff err == nil") can be refined at the branch instead of merged away.
//
// The graph is statement-granular: each basic block holds a run of
// straight-line statements; terminators (if/for/switch/return/branch) split
// blocks and add labeled edges. Deferred calls are collected per function and
// replayed by the analyzers at every exit, which is how `defer a.Free(id)`
// satisfies a release-on-all-paths obligation.

// cfgEdge is one control transfer. When cond is non-nil the edge is taken
// only when cond evaluates to (!negate); the else/false edge of the same
// branch carries the identical cond with negate flipped.
type cfgEdge struct {
	to     *cfgBlock
	cond   ast.Expr
	negate bool
}

// cfgBlock is a run of straight-line statements with outgoing edges.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []cfgEdge
	// returns holds the return statement terminating this block, if any.
	ret *ast.ReturnStmt
	// exits marks the block as flowing to the synthetic function exit
	// (either a return or falling off the end of the body).
	exits bool
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// defers are the deferred calls in source order; analyzers replay them
	// (in reverse, like the runtime) at every exit.
	defers []*ast.CallExpr
}

// loopFrame tracks the jump targets of the innermost enclosing loops and
// switches for break/continue resolution.
type loopFrame struct {
	label   string
	breakTo *cfgBlock
	contTo  *cfgBlock // nil for switch/select frames
	isLoop  bool
}

// cfgBuilder accumulates blocks while walking a function body.
type cfgBuilder struct {
	g            *funcCFG
	cur          *cfgBlock
	frames       []loopFrame
	pendingLabel string
}

// buildCFG constructs the CFG of a function body. The builder is
// conservative: constructs it cannot model precisely (goto, labeled
// fallthrough chains) fall back to edges that over-approximate reachability,
// which for the leak analyses means at worst a missed report, never a false
// one on code the builder does model.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	b.cur = b.newBlock()
	g.entry = b.cur
	b.stmtList(body.List)
	if b.cur != nil {
		b.cur.exits = true
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// edge links from→to. A nil from (dead code after a terminator) is ignored.
func edge(from, to *cfgBlock, cond ast.Expr, negate bool) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, negate: negate})
}

// emit appends a straight-line node to the current block.
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt translates one statement, advancing b.cur (nil when control cannot
// continue past the statement).
func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable code after return/branch: parse it into a detached
		// block so nested defers are still collected, but leave it
		// unconnected.
		b.cur = b.newBlock()
		b.cur.exits = false
		defer func() { b.cur = nil }()
	}
	switch v := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(v.List)
	case *ast.IfStmt:
		b.ifStmt(v)
	case *ast.ForStmt:
		b.forStmt(v)
	case *ast.RangeStmt:
		b.rangeStmt(v)
	case *ast.SwitchStmt:
		b.switchStmt(v)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(v)
	case *ast.SelectStmt:
		b.selectStmt(v)
	case *ast.ReturnStmt:
		b.emit(v)
		b.cur.ret = v
		b.cur.exits = true
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(v)
	case *ast.DeferStmt:
		b.g.defers = append(b.g.defers, v.Call)
		b.emit(v)
	case *ast.LabeledStmt:
		// Record the label on the enclosing frame stack by translating the
		// labeled statement with the label visible to loop constructs.
		b.labeledStmt(v)
	case *ast.GoStmt:
		b.emit(v)
	default:
		b.emit(s)
	}
}

func (b *cfgBuilder) ifStmt(v *ast.IfStmt) {
	if v.Init != nil {
		b.emit(v.Init)
	}
	b.emit(&condNode{cond: v.Cond})
	condBlk := b.cur

	thenBlk := b.newBlock()
	edge(condBlk, thenBlk, v.Cond, false)
	b.cur = thenBlk
	b.stmtList(v.Body.List)
	thenEnd := b.cur

	var elseEnd *cfgBlock
	hasElse := v.Else != nil
	var elseBlk *cfgBlock
	if hasElse {
		elseBlk = b.newBlock()
		edge(condBlk, elseBlk, v.Cond, true)
		b.cur = elseBlk
		b.stmt(v.Else)
		elseEnd = b.cur
	}

	after := b.newBlock()
	edge(thenEnd, after, nil, false)
	if hasElse {
		edge(elseEnd, after, nil, false)
	} else {
		edge(condBlk, after, v.Cond, true)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(v *ast.ForStmt) {
	if v.Init != nil {
		b.emit(v.Init)
	}
	head := b.newBlock()
	edge(b.cur, head, nil, false)
	if v.Cond != nil {
		head.nodes = append(head.nodes, &condNode{cond: v.Cond})
	}

	body := b.newBlock()
	after := b.newBlock()
	if v.Cond != nil {
		edge(head, body, v.Cond, false)
		edge(head, after, v.Cond, true)
	} else {
		edge(head, body, nil, false)
		// for {} without break never reaches after; a break edge adds it.
	}

	b.pushFrame("", after, head, true)
	b.cur = body
	b.stmtList(v.Body.List)
	if v.Post != nil {
		b.emit(v.Post)
	}
	edge(b.cur, head, nil, false)
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(v *ast.RangeStmt) {
	head := b.newBlock()
	edge(b.cur, head, nil, false)
	head.nodes = append(head.nodes, v) // the range header itself (defines key/value)

	body := b.newBlock()
	after := b.newBlock()
	edge(head, body, nil, false)
	edge(head, after, nil, false) // zero-iteration path

	b.pushFrame("", after, head, true)
	b.cur = body
	b.stmtList(v.Body.List)
	edge(b.cur, head, nil, false)
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) switchStmt(v *ast.SwitchStmt) {
	if v.Init != nil {
		b.emit(v.Init)
	}
	if v.Tag != nil {
		b.emit(&condNode{cond: v.Tag})
	}
	head := b.cur
	after := b.newBlock()
	b.pushFrame("", after, nil, false)
	hasDefault := false
	var caseEnds []*cfgBlock
	for _, c := range v.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		edge(head, blk, nil, false)
		b.cur = blk
		b.stmtList(cc.Body)
		caseEnds = append(caseEnds, b.cur)
	}
	// fallthrough is modeled as an ordinary edge case→case via branchStmt.
	for _, end := range caseEnds {
		edge(end, after, nil, false)
	}
	if !hasDefault {
		edge(head, after, nil, false)
	}
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(v *ast.TypeSwitchStmt) {
	if v.Init != nil {
		b.emit(v.Init)
	}
	b.emit(v.Assign)
	head := b.cur
	after := b.newBlock()
	b.pushFrame("", after, nil, false)
	hasDefault := false
	for _, c := range v.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		edge(head, blk, nil, false)
		b.cur = blk
		b.stmtList(cc.Body)
		edge(b.cur, after, nil, false)
	}
	if !hasDefault {
		edge(head, after, nil, false)
	}
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) selectStmt(v *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock()
	b.pushFrame("", after, nil, false)
	for _, c := range v.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock()
		edge(head, blk, nil, false)
		b.cur = blk
		if cc.Comm != nil {
			b.emit(cc.Comm)
		}
		b.stmtList(cc.Body)
		edge(b.cur, after, nil, false)
	}
	if len(v.Body.List) == 0 {
		edge(head, after, nil, false)
	}
	b.popFrame()
	b.cur = after
}

func (b *cfgBuilder) branchStmt(v *ast.BranchStmt) {
	label := ""
	if v.Label != nil {
		label = v.Label.Name
	}
	switch v.Tok {
	case token.BREAK:
		if f := b.findFrame(label, false); f != nil {
			edge(b.cur, f.breakTo, nil, false)
		}
		b.cur = nil
	case token.CONTINUE:
		if f := b.findFrame(label, true); f != nil {
			edge(b.cur, f.contTo, nil, false)
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled approximately: control continues to the switch's after
		// block via the case-end edge added by switchStmt. Acceptable
		// over-approximation (facts merge at after).
		b.cur = nil
	case token.GOTO:
		// Rare in this codebase; treat as an opaque exit so analyses stay
		// silent rather than wrong.
		b.cur.exits = true
		b.cur = nil
	}
}

func (b *cfgBuilder) labeledStmt(v *ast.LabeledStmt) {
	switch inner := v.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Translate the inner statement, then rename the frame it pushed.
		b.pendingLabel = v.Label.Name
		b.stmt(inner)
		b.pendingLabel = ""
	default:
		b.stmt(v.Stmt)
	}
}

func (b *cfgBuilder) pushFrame(label string, breakTo, contTo *cfgBlock, isLoop bool) {
	if b.pendingLabel != "" {
		label = b.pendingLabel
		b.pendingLabel = ""
	}
	b.frames = append(b.frames, loopFrame{label: label, breakTo: breakTo, contTo: contTo, isLoop: isLoop})
}

func (b *cfgBuilder) popFrame() {
	b.frames = b.frames[:len(b.frames)-1]
}

// findFrame resolves break/continue targets: an empty label matches the
// innermost applicable frame (any for break, loops for continue); a label
// matches the frame carrying it.
func (b *cfgBuilder) findFrame(label string, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// condNode wraps a branch condition so transfer functions see its
// sub-expressions (an acquisition call inside an if-condition must still
// register) without it being a statement.
type condNode struct {
	cond ast.Expr
}

func (c *condNode) Pos() token.Pos { return c.cond.Pos() }
func (c *condNode) End() token.Pos { return c.cond.End() }
