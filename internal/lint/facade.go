package lint

import (
	"strconv"
	"strings"
)

// ToolingImports whitelists the internal packages each harness/tooling binary
// may reach past the facade. Binaries absent from this map are user-facing
// CLIs and must import only the public dynnoffload package. The table is
// shared with the repo-level facade boundary test so the analyzer and the
// test can never drift apart.
var ToolingImports = map[string][]string{
	// The bench harness IS the experiment layer; it drives internal/expt
	// directly and shares its recorder plumbing.
	"dynnbench": {
		"dynnoffload/internal/core",
		"dynnoffload/internal/expt",
		"dynnoffload/internal/faults",
		"dynnoffload/internal/obsv",
	},
	// The repo linter walks internal packages by construction.
	"dynnlint": {"dynnoffload/internal/lint"},
	// The trace viewer decodes internal/obsv's span schema.
	"dynntrace": {"dynnoffload/internal/obsv"},
	// The pilot training tool pokes at pilot internals on purpose.
	"pilottrain": {
		"dynnoffload/internal/dynn",
		"dynnoffload/internal/gpusim",
		"dynnoffload/internal/nn",
		"dynnoffload/internal/pilot",
	},
}

// Facade enforces the command/facade boundary as a first-class analyzer:
// packages under cmd/ may import dynnoffload/internal/... only through the
// ToolingImports whitelist; everything else must go through the public
// dynnoffload facade re-exports.
var Facade = &Analyzer{
	Name: "facade",
	Doc:  "keep cmd/* binaries behind the public dynnoffload facade (whitelisted tooling excepted)",
	Run:  runFacade,
}

const cmdPrefix = "dynnoffload/cmd/"

func runFacade(pass *Pass) {
	if !strings.HasPrefix(pass.Path, cmdPrefix) {
		return
	}
	name := strings.TrimPrefix(pass.Path, cmdPrefix)
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	allowed := map[string]bool{}
	for _, p := range ToolingImports[name] {
		allowed[p] = true
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !strings.HasPrefix(path, "dynnoffload/internal") {
				continue
			}
			if !allowed[path] {
				pass.Report(imp.Pos(), "cmd/%s imports %s past the public facade; use a dynnoffload re-export or extend lint.ToolingImports with a rationale",
					name, path)
			}
		}
	}
}
