package lint

import (
	"go/ast"
	"go/types"
)

// Lockcheck flags by-value copies of types that contain synchronization
// state: sync.Mutex / sync.RWMutex / sync.WaitGroup / sync.Once / sync.Cond /
// sync.Map / sync.Pool or any sync/atomic value type, directly or through
// nested struct/array fields. A copied lock guards nothing — the sharded
// mis-prediction cache stripes are exactly this shape.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "forbid by-value receivers, params, assignments, and range values of lock-bearing structs",
	Run:  runLockcheck,
}

var syncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Map": true, "Pool": true,
}

var atomicTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// hasLock reports whether t holds synchronization state by value.
func hasLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				if syncTypes[obj.Name()] {
					return true
				}
			case "sync/atomic":
				if atomicTypes[obj.Name()] {
					return true
				}
			}
		}
		return hasLock(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return hasLock(u.Elem(), seen)
	}
	return false
}

func lockByValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return hasLock(t, map[types.Type]bool{})
}

func runLockcheck(pass *Pass) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Info.TypeOf(field.Type)
			if lockByValue(t) {
				pass.Report(field.Pos(), "%s passes %s by value; a copied lock guards nothing — use a pointer", what, t)
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(v.Recv, "receiver")
				checkFieldList(v.Type.Params, "parameter")
			case *ast.FuncLit:
				checkFieldList(v.Type.Params, "parameter")
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					if len(v.Lhs) == len(v.Rhs) {
						if id, ok := v.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if !copiesExistingValue(rhs) {
						continue
					}
					if t := pass.Info.TypeOf(rhs); lockByValue(t) {
						pass.Report(v.Pos(), "assignment copies lock-bearing value of type %s; use a pointer", t)
					}
				}
			case *ast.RangeStmt:
				if v.Value != nil {
					if t := pass.Info.TypeOf(v.Value); lockByValue(t) {
						pass.Report(v.Value.Pos(), "range copies lock-bearing value of type %s per iteration; range by index instead", t)
					}
				}
			}
			return true
		})
	}
}

// copiesExistingValue reports whether e evaluates to an already-stored value
// (so assigning it copies), as opposed to a fresh composite literal or a call
// result the callee handed over.
func copiesExistingValue(e ast.Expr) bool {
	switch unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
