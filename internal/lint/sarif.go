package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 output, shaped the way GitHub code scanning consumes it:
// one run, one driver, rules indexed by analyzer, results with physical
// locations whose URIs are %SRCROOT%-relative. Only the fields GitHub reads
// are emitted; the schema allows (and ignores) the omissions.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. File paths are emitted
// relative to root with forward slashes (uriBaseId %SRCROOT%), which is what
// GitHub's upload-sarif action expects for repo-rooted annotations. The rules
// table always covers the full analyzer set passed in, plus the "dynnlint"
// pseudo-rule for malformed suppression directives, so rule indices are
// stable whether or not a given analyzer fired.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := []sarifRule{{
		ID:               "dynnlint",
		ShortDescription: sarifMessage{Text: "malformed //dynnlint:ignore directive"},
	}}
	index := map[string]int{"dynnlint": 0}
	ans := append([]*Analyzer(nil), analyzers...)
	sort.Slice(ans, func(i, j int) bool { return ans[i].Name < ans[j].Name })
	for _, an := range ans {
		index[an.Name] = len(rules)
		rules = append(rules, sarifRule{ID: an.Name, ShortDescription: sarifMessage{Text: an.Doc}})
	}

	results := []sarifResult{}
	for _, f := range findings {
		uri := f.File
		if rel, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		uri = filepath.ToSlash(uri)
		idx, ok := index[f.Analyzer]
		if !ok {
			// An unregistered analyzer name (shouldn't happen): grow the
			// rules table rather than emit a dangling index.
			idx = len(rules)
			index[f.Analyzer] = idx
			rules = append(rules, sarifRule{ID: f.Analyzer, ShortDescription: sarifMessage{Text: f.Analyzer}})
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "dynnlint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
