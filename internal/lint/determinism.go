package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterministicPackages are the packages whose results feed the bit-identical
// epoch-aggregate contract (core.ParallelRunEpoch) and the paper's
// pilot-vs-profiling comparison: any run-to-run variance here invalidates the
// replay guarantee.
var DeterministicPackages = []string{
	"dynnoffload/internal/core",
	"dynnoffload/internal/faults",
	"dynnoffload/internal/gpusim",
	"dynnoffload/internal/sentinel",
	"dynnoffload/internal/metrics",
	"dynnoffload/internal/pilot",
	"dynnoffload/internal/online",
	"dynnoffload/internal/serve",
	"dynnoffload/internal/distributed",
	"dynnoffload/internal/obsv",
}

func inDeterministicScope(path string) bool {
	for _, p := range DeterministicPackages {
		if pkgPathHasPrefix(path, p) {
			return true
		}
	}
	return false
}

// Determinism flags nondeterminism sources inside the deterministic
// packages: map-range loops that accumulate or append into variables
// declared outside the loop (iteration order is randomized), direct
// wall-clock reads (time.Now / time.Since — timing belongs in internal/obsv
// recorders, which are observability-only), and calls to math/rand's global,
// auto-seeded source.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid order-dependent map iteration, wall-clock reads, and unseeded randomness in deterministic packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !inDeterministicScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, v)
			case *ast.CallExpr:
				checkClockAndRand(pass, v)
			}
			return true
		})
	}
}

// checkClockAndRand flags wall-clock and global-RNG calls.
func checkClockAndRand(pass *Pass, call *ast.CallExpr) {
	if isPkgFunc(pass.Info, call, "time", "Now", "Since", "Until") {
		pass.Report(call.Pos(), "wall-clock read (%s) in deterministic package; route timing through internal/obsv",
			calleeFunc(pass.Info, call).Name())
		return
	}
	for _, pkg := range []string{"math/rand", "math/rand/v2"} {
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkg {
			continue
		}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			continue // methods on an explicitly-seeded *rand.Rand are fine
		}
		if f.Name() == "New" || f.Name() == "NewSource" || f.Name() == "NewChaCha8" || f.Name() == "NewPCG" {
			continue // constructing a seeded source
		}
		pass.Report(call.Pos(), "call to %s.%s uses the global auto-seeded RNG; use a seeded source (internal/mathx RNG)",
			pkg, f.Name())
	}
}

// checkMapRange flags statements inside a range-over-map body that fold the
// (randomly ordered) iteration into state declared outside the loop. Writes
// keyed by the loop variables (m2[k] = v) are order-independent and pass.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	loopVars := rangeVars(pass.Info, rs)
	outside := func(e ast.Expr) *ast.Ident {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		obj := objectOf(pass.Info, id)
		if obj == nil || obj.Pos() == token.NoPos {
			return nil
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return nil // declared by or inside the loop
		}
		return id
	}
	keyedByLoopVar := func(e ast.Expr) bool {
		idx, ok := unparen(e).(*ast.IndexExpr)
		if !ok {
			return false
		}
		found := false
		ast.Inspect(idx.Index, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[objectOf(pass.Info, id)] {
				found = true
			}
			return !found
		})
		return found
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				id := outside(lhs)
				if id == nil || id.Name == "_" || keyedByLoopVar(lhs) {
					continue
				}
				what := "assigns to"
				if st.Tok != token.ASSIGN {
					what = "accumulates into"
				} else if len(st.Rhs) == 1 {
					if call, ok := unparen(st.Rhs[0]).(*ast.CallExpr); ok {
						if fid, ok := unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
							what = "appends into"
						}
					}
				}
				pass.Report(st.Pos(), "map-range body %s %q declared outside the loop; iteration order is random — sort the keys first", what, id.Name)
			}
		case *ast.IncDecStmt:
			if id := outside(st.X); id != nil && !keyedByLoopVar(st.X) {
				pass.Report(st.Pos(), "map-range body accumulates into %q declared outside the loop; iteration order is random — sort the keys first", id.Name)
			}
		}
		return true
	})
}

// rangeVars collects the loop's key/value variable objects.
func rangeVars(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := objectOf(info, id); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}
