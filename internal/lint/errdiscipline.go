package lint

import (
	"go/ast"
	"go/token"
)

// Errdiscipline flags error handling that breaks under wrapping: comparing
// error values with == / != (other than nil checks) and matching on
// err.Error() text. The runtime's sentinel family (core.ErrPilotNotTrained,
// ErrUnknownPath, ErrCapacityExceeded, ...) is wrapped with %w at every
// layer, so only errors.Is / errors.As see through the chain.
var Errdiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "forbid ==/!= on errors and string matching on err.Error(); use errors.Is/errors.As",
	Run:  runErrdiscipline,
}

// stringsMatchFuncs are the strings-package predicates that turn err.Error()
// into fragile text matching.
var stringsMatchFuncs = []string{
	"Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index", "LastIndex", "Count",
}

func runErrdiscipline(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				x, y := unparen(v.X), unparen(v.Y)
				if isErrorTextCall(pass, x) || isErrorTextCall(pass, y) {
					pass.Report(v.OpPos, "comparing err.Error() text; match with errors.Is against a typed sentinel")
					return true
				}
				if isErrorExpr(pass.Info, x) && isErrorExpr(pass.Info, y) &&
					!isNil(pass.Info, x) && !isNil(pass.Info, y) {
					pass.Report(v.OpPos, "error compared with %s; wrapped sentinels need errors.Is", v.Op)
				}
			case *ast.CallExpr:
				if !isPkgFunc(pass.Info, v, "strings", stringsMatchFuncs...) {
					return true
				}
				for _, arg := range v.Args {
					if isErrorTextCall(pass, arg) {
						pass.Report(v.Pos(), "string-matching err.Error(); match with errors.Is/errors.As instead")
						break
					}
				}
			}
			return true
		})
	}
}

// isErrorTextCall reports whether e is a call of Error() on an error value.
func isErrorTextCall(pass *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorExpr(pass.Info, sel.X)
}
