package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Allocleak checks the gpusim.Allocator ownership discipline with a
// flow-sensitive dataflow over the per-function CFG: every successful
// Alloc/TryAlloc/Reserve must reach a matching Free on all paths — including
// early error returns — unless ownership demonstrably transfers out of the
// function (the block id is returned, stored, or handed to a callee that is
// not a pure borrower). Inside gpusim itself it also enforces the accounting
// funnel: account/unaccount may only be called from (*Allocator).alloc and
// (*Allocator).Free, so the usage/high-water invariants cannot be bypassed.
var Allocleak = &Analyzer{
	Name: "allocleak",
	Doc:  "require every successful Allocator acquisition to reach Free (or a documented ownership transfer) on all paths",
	Run:  runAllocleak,
}

const gpusimPath = "dynnoffload/internal/gpusim"

// acqSpec describes one Allocator acquisition method.
type acqSpec struct {
	idArg    int  // index of the block-id argument
	errGuard bool // success signalled by nil error (else by true bool)
}

var acquireMethods = map[string]acqSpec{
	"Alloc":    {idArg: 0, errGuard: false},
	"TryAlloc": {idArg: 0, errGuard: true},
	"Reserve":  {idArg: 1, errGuard: true},
}

func runAllocleak(pass *Pass) {
	if !importsGpusim(pass) {
		return
	}
	sums := buildAllocSummaries(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Path == gpusimPath || strings.HasPrefix(pass.Path, gpusimPath+"/") {
				checkAccountFunnel(pass, fd)
			}
			if hasAllocatorReceiver(pass.Info, fd) {
				continue // the Allocator's own methods are the implementation
			}
			analyzeAllocFunc(pass, fd, sums)
		}
	}
}

// importsGpusim reports whether the package under analysis is gpusim or
// imports it (the only packages where Allocator facts can originate).
func importsGpusim(pass *Pass) bool {
	if pkgPathHasPrefix(pass.Path, gpusimPath) {
		return true
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == gpusimPath {
			return true
		}
	}
	return false
}

// isAllocatorType reports whether t is gpusim.Allocator or a pointer to it.
func isAllocatorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Allocator" && obj.Pkg() != nil && obj.Pkg().Path() == gpusimPath
}

// allocatorCall decomposes a call on an Allocator receiver into the receiver
// expression and method name; ok is false for anything else.
func allocatorCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if !isAllocatorType(info.TypeOf(sel.X)) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// hasAllocatorReceiver reports whether fd is a method on gpusim.Allocator.
func hasAllocatorReceiver(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return isAllocatorType(info.TypeOf(fd.Recv.List[0].Type))
}

// checkAccountFunnel enforces that account/unaccount are reached only through
// (*Allocator).alloc and (*Allocator).Free.
func checkAccountFunnel(pass *Pass, fd *ast.FuncDecl) {
	allowed := hasAllocatorReceiver(pass.Info, fd) && (fd.Name.Name == "alloc" || fd.Name.Name == "Free" ||
		fd.Name.Name == "account" || fd.Name.Name == "unaccount")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, name, ok := allocatorCall(pass.Info, call); ok && (name == "account" || name == "unaccount") && !allowed {
			pass.Report(call.Pos(), "%s bypasses the alloc/Free accounting funnel; route the placement through alloc or Free so usage and high-water stay balanced", name)
		}
		return true
	})
}

// --- interprocedural summaries -------------------------------------------

// paramEffect classifies what a same-package function does with a parameter
// that carries live allocator facts at a call site.
type paramEffect int

const (
	paramBorrows paramEffect = iota // read-only: facts stay live in the caller
	paramFrees                      // callee releases the blocks
	paramEscapes                    // callee stores/returns/forwards it: ownership transfer
)

// acquireSummary says a function acquires blocks on its allocator-typed
// parameter and transfers them to the caller through a result.
type acquireSummary struct {
	allocParam int    // which parameter is the allocator
	resultIdx  int    // which result carries the acquired holders
	idSuffix   string // selector path from a carrier element to the block id, e.g. ".id"
	desc       string // method used, for the report text
}

// allocSummaries indexes the same-package interprocedural facts.
type allocSummaries struct {
	acquires map[*types.Func]*acquireSummary
	effects  map[*types.Func][]paramEffect
	decls    map[*types.Func]*ast.FuncDecl
}

func buildAllocSummaries(pass *Pass) *allocSummaries {
	s := &allocSummaries{
		acquires: map[*types.Func]*acquireSummary{},
		effects:  map[*types.Func][]paramEffect{},
		decls:    map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			s.decls[fn] = fd
		}
	}
	for fn, fd := range s.decls {
		s.effects[fn] = paramEffects(pass.Info, fd, s)
		if sum := acquireTransfer(pass.Info, fd); sum != nil {
			s.acquires[fn] = sum
		}
	}
	// One refinement round so A's "forwards to B" resolves against B's
	// now-known effects (call graphs here are shallow: dispatch→selectBatch,
	// dispatch→serviceTime).
	for fn, fd := range s.decls {
		s.effects[fn] = paramEffects(pass.Info, fd, s)
	}
	return s
}

// paramEffects computes, per parameter, the strongest thing the function does
// with it from an ownership standpoint.
func paramEffects(info *types.Info, fd *ast.FuncDecl, sums *allocSummaries) []paramEffect {
	var params []*types.Var
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					params = append(params, v)
				}
			}
		}
	}
	effects := make([]paramEffect, len(params))
	idx := map[types.Object]int{}
	for i, p := range params {
		idx[p] = i
	}
	subst := rangeSubsts(info, fd.Body)
	// rootParam matches any expression rooted at a param (or an element of a
	// param slice): right for Free(req.id), where the id lives inside the
	// element. plainParam matches only the param value itself: passing r.ex
	// onward hands over a field, not the element's ownership.
	rootParam := func(e ast.Expr) (int, bool) {
		id := rootIdent(unparen(e))
		if id == nil {
			return 0, false
		}
		obj := objectOf(info, id)
		if o, ok := subst[obj]; ok {
			obj = o
		}
		i, ok := idx[obj]
		return i, ok
	}
	plainParam := func(e ast.Expr) (int, bool) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		obj := objectOf(info, id)
		if o, ok := subst[obj]; ok {
			obj = o
		}
		i, ok := idx[obj]
		return i, ok
	}
	mark := func(i int, e paramEffect) {
		if e > effects[i] {
			effects[i] = e
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if _, name, ok := allocatorCall(info, v); ok {
				// The allocator receiver itself being a param is a borrow.
				if name == "Free" && len(v.Args) == 1 {
					if i, ok := rootParam(v.Args[0]); ok {
						mark(i, paramFrees)
					}
				}
				return true
			}
			callee := calleeFunc(info, v)
			for argIdx, arg := range v.Args {
				i, ok := plainParam(arg)
				if !ok {
					continue
				}
				if callee != nil {
					if effs, known := sums.effects[callee]; known && argIdx < len(effs) {
						mark(i, effs[argIdx])
						continue
					}
					if isPureBuiltinLike(callee) {
						continue
					}
				}
				if bi, ok := unparen(v.Fun).(*ast.Ident); ok && (bi.Name == "len" || bi.Name == "cap" || bi.Name == "append" || bi.Name == "copy") {
					continue
				}
				mark(i, paramEscapes)
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if i, ok := plainParam(res); ok {
					mark(i, paramEscapes)
				}
			}
		case *ast.AssignStmt:
			// Storing a param into anything non-local transfers it.
			for ai, rhs := range v.Rhs {
				i, ok := plainParam(rhs)
				if !ok || ai >= len(v.Lhs) {
					continue
				}
				if isNonLocalStore(info, fd, v.Lhs[ai]) {
					mark(i, paramEscapes)
				}
			}
		}
		return true
	})
	return effects
}

// isPureBuiltinLike covers stdlib helpers that never take ownership.
func isPureBuiltinLike(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sort", "fmt", "strings", "math":
		return true
	}
	return false
}

// acquireTransfer detects the selectBatch shape: the function acquires on an
// allocator parameter, appends the holder into a slice, and returns that
// slice — the caller inherits the release obligation.
func acquireTransfer(info *types.Info, fd *ast.FuncDecl) *acquireSummary {
	allocParams := map[types.Object]int{}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isAllocatorType(obj.Type()) {
					allocParams[obj] = i
				}
				i++
			}
		}
	}
	if len(allocParams) == 0 {
		return nil
	}
	subst := rangeSubsts(info, fd.Body)
	var sum *acquireSummary
	// Only the if-statement form is summarized: the acquisition call sits in
	// the condition, so appends inside the then-branch are exactly the
	// success-path carriers (rest/overflow appends elsewhere don't hold
	// reserved blocks).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || sum != nil {
			return true
		}
		var acq *ast.CallExpr
		var pIdx int
		ast.Inspect(ifStmt.Cond, func(cn ast.Node) bool {
			call, ok := cn.(*ast.CallExpr)
			if !ok || acq != nil {
				return true
			}
			recv, name, ok := allocatorCall(info, call)
			if !ok {
				return true
			}
			spec, isAcq := acquireMethods[name]
			if !isAcq || spec.idArg >= len(call.Args) {
				return true
			}
			rid := rootIdent(recv)
			if rid == nil {
				return true
			}
			if i, isParam := allocParams[objectOf(info, rid)]; isParam {
				acq, pIdx = call, i
			}
			return true
		})
		if acq == nil {
			return true
		}
		name := unparen(acq.Fun).(*ast.SelectorExpr).Sel.Name
		spec := acquireMethods[name]
		idExpr := acq.Args[spec.idArg]
		hid := rootIdent(idExpr)
		if hid == nil {
			return true
		}
		holder := objectOf(info, hid)
		if _, ranged := subst[holder]; !ranged {
			return true // only the ranged-holder shape transfers
		}
		suffix := selectorSuffix(idExpr)
		carriers := appendCarriers(info, ifStmt.Body)
		for carrier, elems := range carriers {
			if !elems[holder] {
				continue
			}
			if ri, returned := returnedResultIndex(info, fd, carrier); returned {
				sum = &acquireSummary{allocParam: pIdx, resultIdx: ri, idSuffix: suffix, desc: name}
			}
		}
		return true
	})
	return sum
}

// selectorSuffix returns the selector path below the root identifier of e,
// e.g. ".id" for r.id, "" for a plain identifier.
func selectorSuffix(e ast.Expr) string {
	var parts []string
	for {
		switch v := unparen(e).(type) {
		case *ast.SelectorExpr:
			parts = append([]string{v.Sel.Name}, parts...)
			e = v.X
		case *ast.Ident:
			if len(parts) == 0 {
				return ""
			}
			return "." + strings.Join(parts, ".")
		default:
			return ""
		}
	}
}

// appendCarriers maps each slice variable to the set of element objects
// appended into it anywhere in the body (flow-insensitive; used only to
// recognize ownership transfer, so over-approximation is safe).
func appendCarriers(info *types.Info, body *ast.BlockStmt) map[types.Object]map[types.Object]bool {
	out := map[types.Object]map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			fid, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || fid.Name != "append" || len(call.Args) < 2 {
				continue
			}
			lid := rootIdent(as.Lhs[i])
			if lid == nil {
				continue
			}
			carrier := objectOf(info, lid)
			if carrier == nil {
				continue
			}
			for _, arg := range call.Args[1:] {
				aid := rootIdent(unparen(arg))
				if aid == nil {
					continue
				}
				if elem := objectOf(info, aid); elem != nil {
					if out[carrier] == nil {
						out[carrier] = map[types.Object]bool{}
					}
					out[carrier][elem] = true
				}
			}
		}
		return true
	})
	return out
}

// returnedResultIndex reports whether obj is returned from fd and at which
// result position (covering both explicit returns and named results).
func returnedResultIndex(info *types.Info, fd *ast.FuncDecl, obj types.Object) (int, bool) {
	idx, found := -1, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			if id := rootIdent(unparen(res)); id != nil && objectOf(info, id) == obj {
				idx, found = i, true
			}
		}
		return true
	})
	if found {
		return idx, true
	}
	// Named result returned by a bare return.
	if fd.Type.Results != nil {
		i := 0
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					return i, true
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	return 0, false
}

// rangeSubsts maps each range value/key variable to the root object of the
// expression being ranged over, so `r` in `for _, r := range batch` keys the
// same facts as elements of `batch`.
func rangeSubsts(info *types.Info, body *ast.BlockStmt) map[types.Object]types.Object {
	out := map[types.Object]types.Object{}
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		src := rootIdent(unparen(rs.X))
		if src == nil {
			return true
		}
		srcObj := objectOf(info, src)
		if srcObj == nil {
			return true
		}
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := objectOf(info, id); obj != nil {
					out[obj] = srcObj
				}
			}
		}
		return true
	})
	return out
}

// --- the per-function dataflow -------------------------------------------

// guardKind says how a fact's acquisition success is signalled.
type guardKind int

const (
	guardNone guardKind = iota // definitely acquired
	guardBool                  // acquired iff guard var is true
	guardErr                   // acquired iff guard var is nil
)

// allocFact is one outstanding release obligation.
type allocFact struct {
	key      string // allocKey + "|" + idKey: identity for merge and kill
	allocKey string
	idKey    string
	pos      token.Pos
	desc     string
	guard    types.Object // nil once definite
	gkind    guardKind
	holder   types.Object // root object of the id expression (escape kills)
	carrier  types.Object // carrier slice for summary-produced group facts
	fromsum  bool
}

// factSet is the dataflow state: outstanding facts keyed by identity.
type factSet map[string]allocFact

func (s factSet) clone() factSet {
	out := make(factSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s factSet) equal(o factSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		ov, ok := o[k]
		if !ok || ov.guard != v.guard {
			return false
		}
	}
	return true
}

// allocAnalysis bundles the per-function analysis context.
type allocAnalysis struct {
	pass     *Pass
	fd       *ast.FuncDecl
	sums     *allocSummaries
	subst    map[types.Object]types.Object
	carriers map[types.Object]map[types.Object]bool
	keys     map[types.Object]string
	nextKey  int
	leaks    map[string]allocFact // reported once per fact identity
}

func analyzeAllocFunc(pass *Pass, fd *ast.FuncDecl, sums *allocSummaries) {
	a := &allocAnalysis{
		pass:     pass,
		fd:       fd,
		sums:     sums,
		subst:    rangeSubsts(pass.Info, fd.Body),
		carriers: appendCarriers(pass.Info, fd.Body),
		keys:     map[types.Object]string{},
		leaks:    map[string]allocFact{},
	}
	g := buildCFG(fd.Body)

	in := make([]factSet, len(g.blocks))
	out := make([]factSet, len(g.blocks))
	for i := range g.blocks {
		in[i], out[i] = factSet{}, factSet{}
	}
	// Worklist union-merge to fixpoint; facts only refine monotonically
	// (guarded → definite or dropped), so this terminates quickly.
	work := []int{g.entry.index}
	queued := map[int]bool{g.entry.index: true}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		queued[bi] = false
		blk := g.blocks[bi]
		state := in[bi].clone()
		for _, n := range blk.nodes {
			a.transfer(state, n)
		}
		if !state.equal(out[bi]) || len(out[bi]) == 0 {
			out[bi] = state
			for _, e := range blk.succs {
				next := a.refine(state, e)
				merged := in[e.to.index]
				changed := false
				for k, v := range next {
					// Union merge; a definite fact (guard resolved) wins over
					// a still-guarded one so a leak on any path survives.
					old, ok := merged[k]
					if !ok || (old.guard != nil && v.guard == nil) {
						merged[k] = v
						changed = true
					}
				}
				if changed && !queued[e.to.index] {
					queued[e.to.index] = true
					work = append(work, e.to.index)
				}
			}
		}
	}

	// Exits: replay defers, then whatever survives leaked on some path.
	for i, blk := range g.blocks {
		if !blk.exits {
			continue
		}
		state := out[i].clone()
		if blk.ret != nil {
			a.killReturned(state, blk.ret)
		}
		for _, d := range g.defers {
			a.applyCall(state, d, true)
		}
		for _, f := range state {
			if f.guard != nil {
				continue // success never established on this path
			}
			a.leaks[f.key] = f
		}
	}
	keys := make([]string, 0, len(a.leaks))
	for k := range a.leaks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := a.leaks[k]
		pass.Report(f.pos, "%s acquisition can leave the function without a matching Free (leak on at least one path); release it on every path or transfer ownership explicitly", f.desc)
	}
}

// objKey returns a stable short key for a types.Object.
func (a *allocAnalysis) objKey(obj types.Object) string {
	if k, ok := a.keys[obj]; ok {
		return k
	}
	a.nextKey++
	k := fmt.Sprintf("o%d", a.nextKey)
	a.keys[obj] = k
	return k
}

// exprKey canonicalizes an expression for fact matching, substituting range
// variables with elem(<source>) so the acquiring loop and the freeing loop
// agree on identity even with distinct loop variables.
func (a *allocAnalysis) exprKey(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		obj := objectOf(a.pass.Info, v)
		if obj == nil {
			return "?" + v.Name
		}
		if src, ok := a.subst[obj]; ok {
			return "elem(" + a.objKey(src) + ")"
		}
		return a.objKey(obj)
	case *ast.SelectorExpr:
		return a.exprKey(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return a.exprKey(v.X) + "[" + a.exprKey(v.Index) + "]"
	case *ast.StarExpr:
		return a.exprKey(v.X)
	case *ast.BasicLit:
		return v.Value
	default:
		return fmt.Sprintf("@%d", e.Pos()) // never matches anything else
	}
}

// transfer applies one CFG node to the state.
func (a *allocAnalysis) transfer(state factSet, n ast.Node) {
	switch v := n.(type) {
	case *ast.AssignStmt:
		a.assign(state, v)
	case *ast.ExprStmt:
		if call, ok := unparen(v.X).(*ast.CallExpr); ok {
			a.applyCall(state, call, false)
		}
	case *ast.DeferStmt:
		// Replayed at exits; not applied in-line.
	case *ast.GoStmt:
		a.applyCall(state, v.Call, false)
	case *ast.ReturnStmt:
		a.killReturned(state, v)
	case *condNode:
		a.applyNestedCalls(state, v.cond)
	case *ast.RangeStmt:
		a.rangeRelease(state, v)
	case *ast.IncDecStmt:
		// No ownership effect.
	default:
		if stmt, ok := n.(ast.Stmt); ok {
			ast.Inspect(stmt, func(nn ast.Node) bool {
				if call, ok := nn.(*ast.CallExpr); ok {
					a.applyCall(state, call, false)
					return false
				}
				return true
			})
		}
	}
}

// assign handles acquisitions bound to guard variables, summary calls, and
// escape-by-store kills.
func (a *allocAnalysis) assign(state factSet, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 {
		if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if recv, name, ok := allocatorCall(a.pass.Info, call); ok {
				if spec, isAcq := acquireMethods[name]; isAcq && spec.idArg < len(call.Args) {
					f := a.newFact(recv, call.Args[spec.idArg], name, call.Pos())
					if len(as.Lhs) == 1 {
						if gid, ok := unparen(as.Lhs[0]).(*ast.Ident); ok && gid.Name != "_" {
							f.guard = objectOf(a.pass.Info, gid)
							if spec.errGuard {
								f.gkind = guardErr
							} else {
								f.gkind = guardBool
							}
						}
					}
					state[f.key] = f
					return
				}
				if name == "Free" {
					a.applyCall(state, call, false)
					return
				}
			}
			if callee := calleeFunc(a.pass.Info, call); callee != nil {
				if sum, ok := a.sums.acquires[callee]; ok && sum.allocParam < len(call.Args) {
					a.addSummaryFact(state, call, sum, as.Lhs)
					a.applyCall(state, call, false)
					return
				}
			}
			a.applyCall(state, call, false)
		}
	}
	// Guard variable reassigned before the branch resolved: the fact can no
	// longer be refined — treat as definitely acquired (conservative).
	for _, lhs := range as.Lhs {
		lid, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := objectOf(a.pass.Info, lid)
		for k, f := range state {
			if f.guard != nil && f.guard == obj && as.Tok != token.DEFINE {
				f.guard, f.gkind = nil, guardNone
				state[k] = f
			}
		}
	}
	// Escape by store: the holder/carrier value itself (a plain identifier —
	// storing one of its fields hands over the field, not the obligation)
	// written into a field, index, or non-local.
	for i, rhs := range as.Rhs {
		obj := plainIdentObj(a.pass.Info, rhs)
		if obj == nil || i >= len(as.Lhs) {
			continue
		}
		if isNonLocalStore(a.pass.Info, a.fd, as.Lhs[i]) {
			a.killByObject(state, obj)
		}
	}
	// Escape by append into a non-local slice: l.held = append(l.held, id)
	// hands the obligation to the structure that now holds the id.
	for i, rhs := range as.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) || len(call.Args) < 2 {
			continue
		}
		fid, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || fid.Name != "append" {
			continue
		}
		if _, isBuiltin := objectOf(a.pass.Info, fid).(*types.Builtin); !isBuiltin {
			continue
		}
		if !isNonLocalStore(a.pass.Info, a.fd, as.Lhs[i]) {
			continue
		}
		for _, arg := range call.Args[1:] {
			if obj := plainIdentObj(a.pass.Info, arg); obj != nil {
				a.killByObject(state, obj)
			}
		}
	}
	// Escape via composite literal on the RHS (struct{field: holder}).
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(nn ast.Node) bool {
			cl, ok := nn.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, el := range cl.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if obj := plainIdentObj(a.pass.Info, e); obj != nil {
					a.killByObject(state, obj)
				}
			}
			return true
		})
	}
}

// plainIdentObj resolves e to an object only when e is a bare identifier.
func plainIdentObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return objectOf(info, id)
}

// newFact builds a fact for a direct acquisition call. The holder is the raw
// root object of the id expression (a loop variable stays itself: escape
// kills compare against what appears in appends and stores).
func (a *allocAnalysis) newFact(recv, idExpr ast.Expr, method string, pos token.Pos) allocFact {
	allocKey := a.exprKey(recv)
	idKey := a.exprKey(idExpr)
	var holder types.Object
	if id := rootIdent(unparen(idExpr)); id != nil {
		holder = objectOf(a.pass.Info, id)
	}
	return allocFact{
		key:      allocKey + "|" + idKey,
		allocKey: allocKey,
		idKey:    idKey,
		pos:      pos,
		desc:     "Allocator." + method,
		holder:   holder,
	}
}

// addSummaryFact materializes the caller-side obligation of an
// acquire-transfer callee: the returned carrier's elements hold reserved
// blocks on the allocator argument.
func (a *allocAnalysis) addSummaryFact(state factSet, call *ast.CallExpr, sum *acquireSummary, lhs []ast.Expr) {
	allocKey := a.exprKey(call.Args[sum.allocParam])
	if sum.resultIdx >= len(lhs) {
		return
	}
	cid, ok := unparen(lhs[sum.resultIdx]).(*ast.Ident)
	if !ok || cid.Name == "_" {
		// Acquired blocks bound to nothing: unreleasable.
		f := allocFact{
			key: allocKey + "|discarded@" + fmt.Sprint(call.Pos()), allocKey: allocKey,
			idKey: "discarded", pos: call.Pos(), desc: "Allocator." + sum.desc + " (via " + calleeFunc(a.pass.Info, call).Name() + ")",
		}
		state[f.key] = f
		return
	}
	carrier := objectOf(a.pass.Info, cid)
	idKey := "elem(" + a.objKey(carrier) + ")" + sum.idSuffix
	f := allocFact{
		key:      allocKey + "|" + idKey,
		allocKey: allocKey,
		idKey:    idKey,
		pos:      call.Pos(),
		desc:     "Allocator." + sum.desc + " (via " + calleeFunc(a.pass.Info, call).Name() + ")",
		holder:   carrier,
		carrier:  carrier,
		fromsum:  true,
	}
	state[f.key] = f
}

// applyCall processes release and escape effects of one call.
func (a *allocAnalysis) applyCall(state factSet, call *ast.CallExpr, inDefer bool) {
	if recv, name, ok := allocatorCall(a.pass.Info, call); ok {
		if name == "Free" && len(call.Args) == 1 {
			allocKey := a.exprKey(recv)
			idKey := a.exprKey(call.Args[0])
			delete(state, allocKey+"|"+idKey)
			return
		}
		if _, isAcq := acquireMethods[name]; isAcq && !inDefer {
			// Bare acquisition with the result discarded.
			spec := acquireMethods[name]
			if spec.idArg < len(call.Args) {
				f := a.newFact(recv, call.Args[spec.idArg], name, call.Pos())
				state[f.key] = f
			}
			return
		}
		return
	}
	callee := calleeFunc(a.pass.Info, call)
	var effs []paramEffect
	known := false
	if callee != nil {
		effs, known = a.sums.effects[callee]
	}
	if fid, ok := unparen(call.Fun).(*ast.Ident); ok {
		switch fid.Name {
		case "len", "cap", "append", "copy", "delete", "print", "println":
			return
		}
	}
	for argIdx, arg := range call.Args {
		obj := plainIdentObj(a.pass.Info, arg)
		if obj == nil {
			continue
		}
		if src, ok := a.subst[obj]; ok {
			obj = src
		}
		eff := paramEscapes
		if known && argIdx < len(effs) {
			eff = effs[argIdx]
		} else if callee != nil && isPureBuiltinLike(callee) {
			eff = paramBorrows
		}
		if eff == paramBorrows {
			continue
		}
		a.killByObject(state, obj) // freed by callee or ownership transferred
	}
}

// rangeRelease recognizes the group-release idiom: `for _, r := range C {
// A.Free(r.id) }` releases everything C carries, including the zero-iteration
// case (empty carrier = empty group). Only unconditional top-level Free
// statements count — a Free behind an if inside the loop still leaves the
// group partially held.
func (a *allocAnalysis) rangeRelease(state factSet, rs *ast.RangeStmt) {
	if plainIdentObj(a.pass.Info, rs.X) == nil {
		return
	}
	for _, stmt := range rs.Body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := unparen(es.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		recv, name, ok := allocatorCall(a.pass.Info, call)
		if !ok || name != "Free" || len(call.Args) != 1 {
			continue
		}
		// exprKey substitutes the loop variable with elem(C), matching the
		// carrier-borne fact's idKey exactly.
		delete(state, a.exprKey(recv)+"|"+a.exprKey(call.Args[0]))
	}
}

// applyNestedCalls lets non-acquisition calls inside a condition apply their
// effects (acquisitions in conditions are handled on the edges).
func (a *allocAnalysis) applyNestedCalls(state factSet, cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, name, ok := allocatorCall(a.pass.Info, call); ok {
			if _, isAcq := acquireMethods[name]; isAcq {
				return false // edge refinement owns these
			}
		}
		a.applyCall(state, call, false)
		return false
	})
}

// killByObject drops facts whose holder or carrier is obj, including holders
// reachable through a carrier obj appends into.
func (a *allocAnalysis) killByObject(state factSet, obj types.Object) {
	for k, f := range state {
		if f.holder == obj || f.carrier == obj {
			delete(state, k)
			continue
		}
		if elems, ok := a.carriers[obj]; ok && f.holder != nil && elems[f.holder] {
			delete(state, k)
		}
	}
}

// killReturned drops facts transferred to the caller through return values.
func (a *allocAnalysis) killReturned(state factSet, ret *ast.ReturnStmt) {
	for _, res := range ret.Results {
		if id := rootIdent(unparen(res)); id != nil {
			if obj := objectOf(a.pass.Info, id); obj != nil {
				a.killByObject(state, obj)
			}
		}
	}
	if len(ret.Results) == 0 && a.fd.Type.Results != nil {
		for _, field := range a.fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := a.pass.Info.Defs[name]; obj != nil {
					a.killByObject(state, obj)
				}
			}
		}
	}
}

// refine applies a branch edge's condition to the state: guarded facts become
// definite or vanish, and acquisitions inside the condition materialize on
// the success edge.
func (a *allocAnalysis) refine(state factSet, e cfgEdge) factSet {
	out := state.clone()
	if e.cond == nil {
		return out
	}
	val := !e.negate
	for k, f := range out {
		if f.guard == nil {
			continue
		}
		switch truth := guardTruth(a.pass.Info, e.cond, val, f.guard, f.gkind); truth {
		case truthAcquired:
			f.guard, f.gkind = nil, guardNone
			out[k] = f
		case truthNotAcquired:
			delete(out, k)
		}
	}
	// Acquisitions embedded in the condition itself.
	a.condAcquisitions(out, e.cond, val)
	// A proven-empty carrier holds no acquisitions: the `if len(batch) == 0
	// { return err }` guard after a transferring call is leak-free.
	a.refineLen(out, e.cond, val)
	return out
}

// refineLen kills carrier-borne facts on edges where the carrier is provably
// empty.
func (a *allocAnalysis) refineLen(state factSet, cond ast.Expr, val bool) {
	switch v := unparen(cond).(type) {
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			a.refineLen(state, v.X, !val)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			if val {
				a.refineLen(state, v.X, true)
				a.refineLen(state, v.Y, true)
			}
		case token.LOR:
			if !val {
				a.refineLen(state, v.X, false)
				a.refineLen(state, v.Y, false)
			}
		default:
			obj, empty := emptyLenComparison(a.pass.Info, v, val)
			if obj == nil || !empty {
				return
			}
			for k, f := range state {
				if f.carrier == obj {
					delete(state, k)
				}
			}
		}
	}
}

// emptyLenComparison decodes `len(x) OP n` (either operand order) under the
// assumption the comparison evaluates to val, reporting whether it proves
// len(x) == 0.
func emptyLenComparison(info *types.Info, cmp *ast.BinaryExpr, val bool) (types.Object, bool) {
	lenCall := func(e ast.Expr) types.Object {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return nil
		}
		fid, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || fid.Name != "len" {
			return nil
		}
		return plainIdentObj(info, call.Args[0])
	}
	intConst := func(e ast.Expr) (int64, bool) {
		tv := info.Types[unparen(e)]
		if tv.Value == nil {
			return 0, false
		}
		n, ok := constantInt64(tv)
		return n, ok
	}
	obj := lenCall(cmp.X)
	op := cmp.Op
	var n int64
	var ok bool
	if obj != nil {
		n, ok = intConst(cmp.Y)
	} else if obj = lenCall(cmp.Y); obj != nil {
		n, ok = intConst(cmp.X)
		op = flipCmp(op) // normalize to len(x) OP n
	}
	if obj == nil || !ok {
		return nil, false
	}
	// Under "len(x) OP n == val", is len(x) == 0 forced? (len is >= 0.)
	switch op {
	case token.EQL:
		return obj, val && n == 0
	case token.NEQ:
		return obj, !val && n == 0
	case token.LSS: // len < n
		return obj, val && n == 1
	case token.LEQ: // len <= n
		return obj, val && n == 0
	case token.GTR: // len > n
		return obj, !val && n == 0
	case token.GEQ: // len >= n
		return obj, !val && n == 1
	}
	return nil, false
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// constantInt64 extracts an int64 from a constant type-and-value.
func constantInt64(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

type truthResult int

const (
	truthUnknown truthResult = iota
	truthAcquired
	truthNotAcquired
)

// guardTruth decides, under "cond evaluates to val", whether the guard var
// proves or disproves acquisition.
func guardTruth(info *types.Info, cond ast.Expr, val bool, guard types.Object, kind guardKind) truthResult {
	switch v := unparen(cond).(type) {
	case *ast.Ident:
		if kind == guardBool && objectOf(info, v) == guard {
			if val {
				return truthAcquired
			}
			return truthNotAcquired
		}
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			return guardTruth(info, v.X, !val, guard, kind)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			if val { // both conjuncts true
				if r := guardTruth(info, v.X, true, guard, kind); r != truthUnknown {
					return r
				}
				return guardTruth(info, v.Y, true, guard, kind)
			}
		case token.LOR:
			if !val { // both disjuncts false
				if r := guardTruth(info, v.X, false, guard, kind); r != truthUnknown {
					return r
				}
				return guardTruth(info, v.Y, false, guard, kind)
			}
		case token.EQL, token.NEQ:
			if kind != guardErr {
				return truthUnknown
			}
			var g ast.Expr
			var other ast.Expr
			if id, ok := unparen(v.X).(*ast.Ident); ok && objectOf(info, id) == guard {
				g, other = v.X, v.Y
			} else if id, ok := unparen(v.Y).(*ast.Ident); ok && objectOf(info, id) == guard {
				g, other = v.Y, v.X
			}
			if g == nil || !isNil(info, other) {
				return truthUnknown
			}
			isNilTrue := (v.Op == token.EQL) == val // guard == nil holds
			if isNilTrue {
				return truthAcquired
			}
			return truthNotAcquired
		}
	}
	return truthUnknown
}

// condAcquisitions adds definite facts for acquisition calls whose success is
// implied by the edge's condition value (e.g. the true edge of
// `ledger.Reserve(...) == nil && ...`).
func (a *allocAnalysis) condAcquisitions(state factSet, cond ast.Expr, val bool) {
	switch v := unparen(cond).(type) {
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			a.condAcquisitions(state, v.X, !val)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			if val {
				a.condAcquisitions(state, v.X, true)
				a.condAcquisitions(state, v.Y, true)
			}
		case token.LOR:
			if !val {
				a.condAcquisitions(state, v.X, false)
				a.condAcquisitions(state, v.Y, false)
			}
		case token.EQL, token.NEQ:
			call, other := a.callOperand(v.X, v.Y)
			if call == nil || !isNil(a.pass.Info, other) {
				return
			}
			recv, name, ok := allocatorCall(a.pass.Info, call)
			if !ok {
				return
			}
			spec, isAcq := acquireMethods[name]
			if !isAcq || !spec.errGuard || spec.idArg >= len(call.Args) {
				return
			}
			if (v.Op == token.EQL) == val { // err == nil on this edge
				f := a.newFact(recv, call.Args[spec.idArg], name, call.Pos())
				state[f.key] = f
			}
		}
	case *ast.CallExpr:
		recv, name, ok := allocatorCall(a.pass.Info, v)
		if !ok {
			return
		}
		spec, isAcq := acquireMethods[name]
		if !isAcq || spec.errGuard || spec.idArg >= len(v.Args) {
			return
		}
		if val { // bool-returning acquisition true on this edge
			f := a.newFact(recv, v.Args[spec.idArg], name, v.Pos())
			state[f.key] = f
		}
	}
}

// callOperand picks out (call, otherOperand) from a binary comparison.
func (a *allocAnalysis) callOperand(x, y ast.Expr) (*ast.CallExpr, ast.Expr) {
	if c, ok := unparen(x).(*ast.CallExpr); ok {
		return c, y
	}
	if c, ok := unparen(y).(*ast.CallExpr); ok {
		return c, x
	}
	return nil, nil
}

// isNonLocalStore reports whether the lvalue writes outside the function's
// locals (field, index, dereference, package-level var).
func isNonLocalStore(info *types.Info, fd *ast.FuncDecl, lhs ast.Expr) bool {
	switch v := unparen(lhs).(type) {
	case *ast.Ident:
		obj := objectOf(info, v)
		if obj == nil {
			return true
		}
		// Package-level variable?
		return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = v
		return true
	}
	return false
}
