// Package fixture mirrors the gpusim Allocator surface so the allocleak
// fixtures are hermetic: loaded at the gpusim import path, the analyzer
// treats this Allocator as the real one. It seeds every violation class —
// leak on an error return, leak on every path, leak on one branch, and
// accounting-funnel bypasses.
package fixture

import "errors"

var errNoSpace = errors.New("no space")

// Allocator is the fixture stand-in for gpusim.Allocator.
type Allocator struct {
	used, limit int64
}

func (a *Allocator) account(owner string, size int64)   { a.used += size }
func (a *Allocator) unaccount(owner string, size int64) { a.used -= size }

func (a *Allocator) alloc(owner string, id, size int64) bool {
	if a.used+size > a.limit {
		return false
	}
	a.account(owner, size)
	return true
}

// Alloc acquires with a bool success flag.
func (a *Allocator) Alloc(id, size int64) bool { return a.alloc("", id, size) }

// TryAlloc acquires with an error.
func (a *Allocator) TryAlloc(id, size int64) error {
	if !a.alloc("", id, size) {
		return errNoSpace
	}
	return nil
}

// Reserve acquires against an owner quota.
func (a *Allocator) Reserve(owner string, id, size int64) error {
	return a.TryAlloc(id, size)
}

// Free releases an acquisition.
func (a *Allocator) Free(id int64) { a.unaccount("", 0) }

// LeakOnError frees on success but forgets the block when the odd-id check
// bails out early.
func LeakOnError(a *Allocator, id, size int64) error {
	if !a.Alloc(id, size) {
		return errNoSpace
	}
	if id%2 != 0 {
		return errNoSpace
	}
	a.Free(id)
	return nil
}

// LeakAlways acquires and never frees at all.
func LeakAlways(a *Allocator, id, size int64) error {
	if err := a.TryAlloc(id, size); err != nil {
		return err
	}
	return nil
}

// LeakOneBranch frees only when the id clears the threshold.
func LeakOneBranch(a *Allocator, owner string, id, size int64) error {
	if err := a.Reserve(owner, id, size); err != nil {
		return err
	}
	if id > 10 {
		a.Free(id)
	}
	return nil
}

// EvictBypass unaccounts outside the alloc/Free funnel from a method.
func (a *Allocator) EvictBypass(size int64) {
	a.unaccount("evict", size)
}

// RebalanceBypass accounts outside the funnel from a free function.
func RebalanceBypass(a *Allocator, size int64) {
	a.account("rebalance", size)
}
