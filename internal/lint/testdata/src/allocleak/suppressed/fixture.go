// Package fixture pins the allocleak suppression contract: a documented
// lifetime-pin acquisition is silenced with //dynnlint:ignore and a reason.
package fixture

// Allocator is the fixture stand-in for gpusim.Allocator.
type Allocator struct {
	used int64
}

// Alloc acquires with a bool success flag.
func (a *Allocator) Alloc(id, size int64) bool {
	a.used += size
	return true
}

// Free releases an acquisition.
func (a *Allocator) Free(id int64) { a.used -= 0 }

// PinForever intentionally never frees: the block lives until process exit.
func PinForever(a *Allocator, id, size int64) bool {
	//dynnlint:ignore allocleak pinned for the process lifetime; Allocator.Reset releases it
	return a.Alloc(id, size)
}
