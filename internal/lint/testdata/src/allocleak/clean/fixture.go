// Package fixture is the clean twin of the allocleak flagged fixture: every
// acquisition is released on all paths or ownership demonstrably transfers —
// deferred Free, per-branch Free, the admit/rest split idiom with a caller
// group-release, and an escape into a ledger.
package fixture

import "errors"

var errNoSpace = errors.New("no space")

// Allocator is the fixture stand-in for gpusim.Allocator.
type Allocator struct {
	used, limit int64
}

func (a *Allocator) account(owner string, size int64)   { a.used += size }
func (a *Allocator) unaccount(owner string, size int64) { a.used -= size }

func (a *Allocator) alloc(owner string, id, size int64) bool {
	if a.used+size > a.limit {
		return false
	}
	a.account(owner, size)
	return true
}

// Alloc acquires with a bool success flag.
func (a *Allocator) Alloc(id, size int64) bool { return a.alloc("", id, size) }

// TryAlloc acquires with an error.
func (a *Allocator) TryAlloc(id, size int64) error {
	if !a.alloc("", id, size) {
		return errNoSpace
	}
	return nil
}

// Reserve acquires against an owner quota.
func (a *Allocator) Reserve(owner string, id, size int64) error {
	return a.TryAlloc(id, size)
}

// Free releases an acquisition.
func (a *Allocator) Free(id int64) { a.unaccount("", 0) }

// DeferredFree releases on every path through a defer.
func DeferredFree(a *Allocator, id, size int64) error {
	if err := a.TryAlloc(id, size); err != nil {
		return err
	}
	defer a.Free(id)
	if id%2 != 0 {
		return errNoSpace
	}
	return nil
}

// BranchedFree releases explicitly on each path.
func BranchedFree(a *Allocator, id, size int64) error {
	if !a.Alloc(id, size) {
		return errNoSpace
	}
	if id > 10 {
		a.Free(id)
		return nil
	}
	a.Free(id)
	return nil
}

type req struct {
	id int64
}

// Admit splits pending requests into admitted (reserved) and rest: ownership
// of the reserved ids transfers to the returned admitted slice.
func Admit(a *Allocator, owner string, pend []req) ([]req, []req) {
	var admitted, rest []req
	for _, r := range pend {
		if a.Reserve(owner, r.id, 1) == nil {
			admitted = append(admitted, r)
		} else {
			rest = append(rest, r)
		}
	}
	return admitted, rest
}

// Drain admits then group-releases every admitted request.
func Drain(a *Allocator, owner string, pend []req) int {
	admitted, rest := Admit(a, owner, pend)
	for _, r := range admitted {
		a.Free(r.id)
	}
	return len(rest)
}

type ledger struct {
	held []int64
}

// Hold transfers ownership of the block into the ledger.
func (l *ledger) Hold(a *Allocator, id, size int64) bool {
	if !a.Alloc(id, size) {
		return false
	}
	l.held = append(l.held, id)
	return true
}

// Release drains the ledger.
func (l *ledger) Release(a *Allocator) {
	for _, id := range l.held {
		a.Free(id)
	}
	l.held = nil
}
