// Package fixture confines panics to the conventional carve-outs — init and
// Must* helpers — and returns errors everywhere else.
package fixture

import "errors"

var registry = map[string]int{}

func init() {
	if len(registry) != 0 {
		panic("registry pre-populated")
	}
}

// MustSize panics by the Must* convention — exempt.
func MustSize(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// Size returns an error like a library should.
func Size(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}
