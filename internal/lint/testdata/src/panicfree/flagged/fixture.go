// Package fixture panics from ordinary library functions — both sites are
// panicfree violations.
package fixture

import "fmt"

// Explode panics on bad input instead of returning an error.
func Explode(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n))
	}
	return n
}

// Method panics from a method, which is just as fatal to epoch workers.
type Box struct{ v int }

// Get panics on an empty box.
func (b *Box) Get() int {
	if b.v == 0 {
		panic("empty box")
	}
	return b.v
}
