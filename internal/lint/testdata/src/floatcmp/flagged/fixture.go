// Package fixture seeds exact float comparisons for the floatcmp analyzer.
package fixture

// Same compares float64 bit-exactly.
func Same(a, b float64) bool { return a == b }

// Moved compares float32 with !=.
func Moved(a, b float32) bool { return a != b }

// Mixed has one float operand (untyped constant converts).
func Mixed(a float64) bool { return a == 0.25 }
