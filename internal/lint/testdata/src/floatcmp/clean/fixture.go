// Package fixture compares floats with tolerances or against the bit-exact
// zero sentinel — nothing for floatcmp to report.
package fixture

import "math"

const eps = 1e-9

// Close compares under a tolerance.
func Close(a, b float64) bool { return math.Abs(a-b) < eps }

// Unset tests the conventional zero "unset" sentinel — exempt.
func Unset(v float64) bool { return v == 0 }

// SameInt compares integers; floatcmp ignores non-float operands.
func SameInt(a, b int) bool { return a == b }
