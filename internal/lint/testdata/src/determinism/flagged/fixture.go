// Package fixture seeds every determinism violation class: map-range
// accumulation, map-range append, wall-clock reads, and the global RNG.
package fixture

import (
	"math/rand"
	"time"
)

// Sum folds map values in iteration order — the aggregate depends on the
// randomized range order when summation overflows or feeds floats.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Keys appends in iteration order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Count increments an outer counter from a map range.
func Count(m map[int]bool) int {
	n := 0
	for k := range m {
		if m[k] {
			n++
		}
	}
	return n
}

// Stamp reads the wall clock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// Age reads the wall clock through time.Since.
func Age(t0 time.Time) time.Duration { return time.Since(t0) }

// Jitter draws from the global auto-seeded RNG.
func Jitter() float64 { return rand.Float64() }
