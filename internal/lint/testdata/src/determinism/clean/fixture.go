// Package fixture shows the deterministic counterparts the analyzer must
// stay silent on: keyed map writes, loop-local state, and seeded RNGs.
package fixture

import (
	"math/rand"
	"sort"
)

// Invert writes keyed by the loop variables — order-independent.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Local keeps all mutation on variables declared inside the loop body.
func Local(m map[string]int) {
	for _, v := range m {
		doubled := v * 2
		_ = doubled
	}
}

// SortedSum ranges a slice (not a map), after sorting.
func SortedSum(xs []float64) float64 {
	sort.Float64s(xs)
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}

// Draw uses an explicitly seeded source — reproducible.
func Draw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
