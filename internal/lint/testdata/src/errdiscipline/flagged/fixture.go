// Package fixture seeds every errdiscipline violation class: text equality,
// strings-package matching on err.Error(), and ==/!= between errors.
package fixture

import (
	"errors"
	"strings"
)

var errBoom = errors.New("boom")

// TextMatch compares error text with ==.
func TextMatch(err error) bool { return err.Error() == "boom" }

// Contains string-matches error text.
func Contains(err error) bool { return strings.Contains(err.Error(), "boom") }

// Prefix string-matches error text through HasPrefix.
func Prefix(err error) bool { return strings.HasPrefix(err.Error(), "boom") }

// DirectCompare tests error identity with ==, which breaks under %w wrapping.
func DirectCompare(err error) bool { return err == errBoom }

// NotCompare tests error identity with !=.
func NotCompare(err error) bool { return err != errBoom }
