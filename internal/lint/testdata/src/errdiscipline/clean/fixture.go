// Package fixture handles errors with errors.Is/As and nil checks — nothing
// for errdiscipline to report.
package fixture

import (
	"errors"
	"fmt"
)

var errBoom = errors.New("boom")

// IsBoom sees through wrapping.
func IsBoom(err error) bool { return errors.Is(err, errBoom) }

// Happened nil-checks — exempt.
func Happened(err error) bool { return err != nil }

// Wrap rewraps with %w so errors.Is keeps working downstream.
func Wrap(err error) error { return fmt.Errorf("fixture: %w", err) }
