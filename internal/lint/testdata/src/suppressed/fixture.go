// Package fixture exercises the suppression directive: the line-above form,
// the trailing-comment form, and a malformed directive with no reason, which
// must itself be reported while leaving its target finding alive.
package fixture

import (
	"math/rand"
	"time"
)

// Stamp suppresses its clock read with a directive on the line above.
func Stamp() int64 {
	//dynnlint:ignore determinism fixture exercises the line-above suppression form
	return time.Now().UnixNano()
}

// Jitter suppresses its RNG draw with a trailing directive.
func Jitter() float64 {
	return rand.Float64() //dynnlint:ignore determinism fixture exercises the trailing suppression form
}

// Explode carries a directive with no reason: the directive is malformed, so
// the panic below must still be reported alongside the directive finding.
func Explode() {
	//dynnlint:ignore panicfree
	panic("kept")
}
