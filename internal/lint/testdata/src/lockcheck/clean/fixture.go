// Package fixture handles lock-bearing values only through pointers and
// indices — nothing for lockcheck to report.
package fixture

import "sync"

// Counter carries a mutex by value; all access below is by pointer.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add locks through the pointer receiver.
func (c *Counter) Add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Total follows pointers.
func Total(cs []*Counter) int {
	t := 0
	for _, c := range cs {
		t += c.n
	}
	return t
}

// ByIndex ranges a value slice by index, never copying an element.
func ByIndex(cs []Counter) int {
	t := 0
	for i := range cs {
		t += cs[i].n
	}
	return t
}
