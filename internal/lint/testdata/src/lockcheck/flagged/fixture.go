// Package fixture seeds every lockcheck violation class: by-value receiver,
// by-value parameter, copying assignment, and by-value range.
package fixture

import "sync"

// Counter carries a mutex by value; copying it copies the lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add is the legitimate pointer-receiver user of the mutex.
func (c *Counter) Add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Snapshot copies the receiver.
func (c Counter) Snapshot() int { return c.n }

// Merge copies the first parameter.
func Merge(a Counter, b *Counter) int { return a.n + b.n }

// Clone copies through a dereference assignment.
func Clone(c *Counter) int {
	d := *c
	return d.n
}

// Each copies one Counter per iteration.
func Each(cs []Counter) int {
	t := 0
	for _, c := range cs {
		t += c.n
	}
	return t
}
