// Package fixture pins the spanbalance suppression contract: an envelope
// intentionally handed to the caller open is silenced with a reason.
package fixture

import "dynnoffload/internal/obsv"

// OpenEnvelope registers a sample and returns it with the envelope open.
func OpenEnvelope(t *obsv.Tracer, idx int) *obsv.SampleTrace {
	st := t.Sample(idx)
	//dynnlint:ignore spanbalance envelope intentionally stays open; the caller stops it after annotating
	st.StartWall()
	return st
}
