// Package fixture seeds the spanbalance violation classes: an envelope lost
// on an early error return, and one opened inside a goroutine literal and
// never closed in that body.
package fixture

import "dynnoffload/internal/obsv"

// LeakOnError opens the wall envelope and loses it on the error path.
func LeakOnError(t *obsv.Tracer, idx int, work func() error) error {
	st := t.Sample(idx)
	st.StartWall()
	if err := work(); err != nil {
		return err
	}
	st.StopWall()
	return nil
}

// LeakInCallback opens an envelope inside a goroutine literal and never
// closes it there.
func LeakInCallback(t *obsv.Tracer, n int) {
	for i := 0; i < n; i++ {
		go func(idx int) {
			st := t.Sample(idx)
			st.StartWall()
		}(i)
	}
}
