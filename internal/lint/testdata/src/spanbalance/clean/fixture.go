// Package fixture is the clean twin of the spanbalance flagged fixture:
// envelopes close on every path — by defer, per branch, and inside each
// function literal that opened one.
package fixture

import "dynnoffload/internal/obsv"

// DeferredStop closes the envelope on every path through a defer.
func DeferredStop(t *obsv.Tracer, idx int, work func() error) error {
	st := t.Sample(idx)
	st.StartWall()
	defer st.StopWall()
	return work()
}

// BranchedStop closes the envelope explicitly on each path.
func BranchedStop(t *obsv.Tracer, idx int, fast bool) {
	st := t.Sample(idx)
	st.StartWall()
	if fast {
		st.StopWall()
		return
	}
	st.StopWall()
}

// BalancedCallback opens and closes within the same literal body.
func BalancedCallback(t *obsv.Tracer, n int) {
	for i := 0; i < n; i++ {
		go func(idx int) {
			st := t.Sample(idx)
			st.StartWall()
			defer st.StopWall()
		}(i)
	}
}
