// Package fixture seeds every clockunits violation class: simulated-vs-wall
// comparison, sim+wall addition, bytes-vs-time comparison, and a wall value
// folded into a simulated accumulator.
package fixture

import (
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
)

// DeviceBudget compares the simulated busy horizon against a host stopwatch:
// the two clocks must never meet.
func DeviceBudget(s *gpusim.Streams, sw obsv.Stopwatch, ready, dur int64) bool {
	busy := s.RunCompute(ready, dur)
	host := sw.ElapsedNS()
	return busy < host
}

// GrandTotal adds the wall-clock overhead into a simulated sum.
func GrandTotal(b gpusim.Breakdown) int64 {
	device := b.ComputeNS + b.ExposedXferNS
	return device + b.OverheadNS
}

// BytesVsTime compares traffic against device time.
func BytesVsTime(b gpusim.Breakdown) bool {
	return b.H2DBytes > b.ComputeNS
}

// Accumulate folds the wall overhead into a simulated accumulator.
func Accumulate(b gpusim.Breakdown) int64 {
	var busy int64
	busy = b.ComputeNS
	busy += b.OverheadNS
	return busy
}
