// Package fixture pins the clockunits suppression contract: the one
// sanctioned sim+wall sum is silenced with //dynnlint:ignore and a reason.
package fixture

import "dynnoffload/internal/gpusim"

// WallTotal mirrors Breakdown.TotalNS, the documented sim+wall total.
func WallTotal(b gpusim.Breakdown) int64 {
	//dynnlint:ignore clockunits mirrors Breakdown.TotalNS, the sanctioned sim+wall total
	return b.ComputeNS + b.OverheadNS
}
