// Package fixture is the clean twin of the clockunits flagged fixture: sums
// and comparisons stay within one dimension, and multiplication/division
// (which legitimately change dimension) are left alone.
package fixture

import (
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
)

// DeviceTime sums the simulated components only.
func DeviceTime(b gpusim.Breakdown) int64 {
	return b.ComputeNS + b.ExposedXferNS + b.RematNS + b.FaultNS
}

// HostTime sums the wall-clock components only.
func HostTime(b gpusim.Breakdown, sw obsv.Stopwatch) int64 {
	return b.OverheadNS + sw.ElapsedNS()
}

// BytesPerSecond changes dimension through division, which is sanctioned.
func BytesPerSecond(b gpusim.Breakdown) int64 {
	if b.ComputeNS == 0 {
		return 0
	}
	return b.H2DBytes * 1000000000 / b.ComputeNS
}

// Horizon keeps simulated stream times with simulated stream times.
func Horizon(s *gpusim.Streams, ready, dur int64) int64 {
	h2d := s.RunH2D(ready, dur)
	compute := s.RunCompute(h2d, dur)
	return compute - h2d
}
