// Command dynntrace's clean fixture: the trace viewer is whitelisted in
// lint.ToolingImports for dynnoffload/internal/obsv, so this import passes.
package main

import "dynnoffload/internal/obsv"

func main() {
	sw := obsv.StartTimer()
	_ = sw.ElapsedNS()
}
