// Command dynnfix's suppressed fixture: a non-whitelisted internal import
// silenced with //dynnlint:ignore and a reason.
package main

import (
	//dynnlint:ignore facade prototype wiring; graduating to a public re-export next release
	"dynnoffload/internal/obsv"
)

func main() {
	_ = obsv.StartTimer()
}
