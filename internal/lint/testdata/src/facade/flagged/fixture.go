// Command dynnfix is the facade flagged fixture: a user-facing binary (not in
// lint.ToolingImports) reaching into internal packages directly.
package main

import (
	"dynnoffload/internal/gpusim"
	"dynnoffload/internal/obsv"
)

func main() {
	_ = gpusim.NewAllocator(1 << 20)
	_ = obsv.StartTimer()
}
