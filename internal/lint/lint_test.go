package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// inScopePath places a fixture inside the deterministic-package scope so
// path-scoped analyzers (determinism, floatcmp) apply to it.
const inScopePath = "dynnoffload/internal/core/fixture"

// outOfScopePath places a fixture outside the deterministic scope.
const outOfScopePath = "dynnoffload/internal/expt/fixture"

func loadFixture(t *testing.T, rel, importPath string) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", rel), importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", rel, err)
	}
	return pkg
}

// render normalizes findings to the golden-file format: one
// "file:line: analyzer: message" line per finding, in reporting order.
func render(findings []Finding) []string {
	out := make([]string, 0, len(findings))
	for _, f := range findings {
		out = append(out, fmt.Sprintf("%s:%d: %s: %s",
			filepath.Base(f.File), f.Line, f.Analyzer, f.Message))
	}
	return out
}

func readGolden(t *testing.T, rel string) []string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "src", rel, "expected.txt"))
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, line)
		}
	}
	return out
}

func diffLines(t *testing.T, name string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d findings, want %d\ngot:\n  %s\nwant:\n  %s", name,
			len(got), len(want), strings.Join(got, "\n  "), strings.Join(want, "\n  "))
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: finding %d =\n  %s\nwant\n  %s", name, i, got[i], want[i])
		}
	}
}

// TestFlaggedFixtures checks each analyzer catches every seeded violation in
// its flagged fixture, byte-for-byte against the golden expectations.
func TestFlaggedFixtures(t *testing.T) {
	for _, tc := range []struct {
		analyzer string
	}{
		{"determinism"}, {"lockcheck"}, {"floatcmp"}, {"errdiscipline"}, {"panicfree"},
	} {
		t.Run(tc.analyzer, func(t *testing.T) {
			rel := filepath.Join(tc.analyzer, "flagged")
			pkg := loadFixture(t, rel, inScopePath)
			got := render(Run([]*Package{pkg}, All()))
			diffLines(t, rel, got, readGolden(t, rel))
			for _, line := range got {
				if !strings.Contains(line, " "+tc.analyzer+": ") {
					t.Errorf("unexpected cross-analyzer finding in %s: %s", rel, line)
				}
			}
		})
	}
}

// TestCleanFixtures checks every analyzer stays silent on the clean twins.
func TestCleanFixtures(t *testing.T) {
	for _, analyzer := range []string{
		"determinism", "lockcheck", "floatcmp", "errdiscipline", "panicfree",
	} {
		t.Run(analyzer, func(t *testing.T) {
			rel := filepath.Join(analyzer, "clean")
			pkg := loadFixture(t, rel, inScopePath)
			if got := render(Run([]*Package{pkg}, All())); len(got) != 0 {
				t.Errorf("clean fixture produced findings:\n  %s", strings.Join(got, "\n  "))
			}
		})
	}
}

// TestScopedAnalyzersIgnoreOutOfScopePackages loads the determinism and
// floatcmp flagged fixtures under a non-deterministic import path: the
// path-scoped analyzers must not fire there.
func TestScopedAnalyzersIgnoreOutOfScopePackages(t *testing.T) {
	for _, analyzer := range []string{"determinism", "floatcmp"} {
		rel := filepath.Join(analyzer, "flagged")
		pkg := loadFixture(t, rel, outOfScopePath)
		findings := Run([]*Package{pkg}, ByName([]string{analyzer}))
		if len(findings) != 0 {
			t.Errorf("%s fired outside its scope:\n  %s",
				analyzer, strings.Join(render(findings), "\n  "))
		}
	}
}

// TestSuppressionDirectives checks both directive forms silence their
// findings, and that a reason-less directive is reported by the "dynnlint"
// pseudo-analyzer while its target finding survives.
func TestSuppressionDirectives(t *testing.T) {
	pkg := loadFixture(t, "suppressed", inScopePath)
	got := render(Run([]*Package{pkg}, All()))
	diffLines(t, "suppressed", got, readGolden(t, "suppressed"))

	joined := strings.Join(got, "\n")
	if strings.Contains(joined, "determinism") {
		t.Error("suppressed determinism findings leaked through")
	}
	if !strings.Contains(joined, "dynnlint:") {
		t.Error("malformed directive was not reported")
	}
	if !strings.Contains(joined, "panicfree:") {
		t.Error("finding behind the malformed directive was dropped")
	}
}

// TestFindingJSONShape pins the machine-readable output contract the driver's
// -json flag exposes.
func TestFindingJSONShape(t *testing.T) {
	f := Finding{Analyzer: "floatcmp", File: "x.go", Line: 3, Col: 9, Message: "m"}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"floatcmp","file":"x.go","line":3,"col":9,"message":"m"}`
	if string(b) != want {
		t.Errorf("JSON = %s, want %s", b, want)
	}
}

// TestByName pins analyzer selection for the driver's -analyzers flag.
func TestByName(t *testing.T) {
	if got := len(ByName(nil)); got != len(All()) {
		t.Errorf("ByName(nil) = %d analyzers, want all %d", got, len(All()))
	}
	sel := ByName([]string{"panicfree", "nosuch"})
	if len(sel) != 1 || sel[0].Name != "panicfree" {
		t.Errorf("ByName selection = %v", render(nil))
	}
}
