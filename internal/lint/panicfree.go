package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Panicfree flags panic() in library packages: a panicking library turns a
// per-sample problem into a process kill for every in-flight epoch worker.
// Libraries return errors; panics are reserved for init-time registration
// (func init) and explicit Must* wrappers. Package main is exempt.
var Panicfree = &Analyzer{
	Name: "panicfree",
	Doc:  "forbid panic() in library code outside init and Must* helpers",
	Run:  runPanicfree,
}

func runPanicfree(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if panicAllowed(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				pass.Report(call.Pos(), "panic in library function %s; return an error (panics are for init and Must* only)", fd.Name.Name)
				return true
			})
		}
	}
}

// panicAllowed reports whether a function may panic by convention: package
// init and Must*-named helpers (including their methods).
func panicAllowed(fd *ast.FuncDecl) bool {
	if fd.Recv == nil && fd.Name.Name == "init" {
		return true
	}
	return strings.HasPrefix(fd.Name.Name, "Must")
}
