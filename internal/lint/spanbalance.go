package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Spanbalance pairs begin/end tracing calls over the per-function CFG: once a
// SampleTrace's wall envelope is opened with StartWall, every path out of the
// function must close it with StopWall on the same receiver (a deferred
// StopWall counts). An unbalanced envelope silently corrupts the span's wall
// annotations instead of crashing, which is exactly the failure mode the
// tracer's determinism contract cannot tolerate.
//
// The pair table is data, not code: new begin/end disciplines (e.g. a future
// Tracer.Push/Pop) are one entry each.
var Spanbalance = &Analyzer{
	Name: "spanbalance",
	Doc:  "require every span/envelope begin call to reach its matching end call on all paths",
	Run:  runSpanbalance,
}

const obsvPath = "dynnoffload/internal/obsv"

// spanPair describes one begin/end discipline on a receiver type.
type spanPair struct {
	pkg      string // package path of the receiver's named type
	typeName string // receiver type name
	begin    string
	end      string
}

var spanPairs = []spanPair{
	{pkg: obsvPath, typeName: "SampleTrace", begin: "StartWall", end: "StopWall"},
}

func runSpanbalance(pass *Pass) {
	if !importsObsv(pass) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The tracer's own methods implement the discipline.
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if named := namedOf(pass.Info.TypeOf(fd.Recv.List[0].Type)); named != nil {
					if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == obsvPath {
						continue
					}
				}
			}
			analyzeSpanFunc(pass, fd)
			// Every function literal gets its own CFG (including literals
			// nested in literals — fanOut callbacks inside goroutines): a
			// body opening an envelope must close it within that body.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					analyzeSpanBody(pass, fl.Body)
				}
				return true
			})
		}
	}
}

func importsObsv(pass *Pass) bool {
	if pkgPathHasPrefix(pass.Path, obsvPath) {
		return true
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == obsvPath {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers to the named type underneath, if any.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// spanFact is one open envelope: begun here, not yet ended.
type spanFact struct {
	key  string
	pos  token.Pos
	pair spanPair
}

func analyzeSpanFunc(pass *Pass, fd *ast.FuncDecl) {
	analyzeSpanBody(pass, fd.Body)
}

func analyzeSpanBody(pass *Pass, body *ast.BlockStmt) {
	sa := &spanAnalysis{pass: pass, keys: map[types.Object]string{}}
	g := buildCFG(body)

	in := make([]map[string]spanFact, len(g.blocks))
	for i := range g.blocks {
		in[i] = map[string]spanFact{}
	}
	work := []int{g.entry.index}
	queued := map[int]bool{g.entry.index: true}
	out := make([]map[string]spanFact, len(g.blocks))
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		queued[bi] = false
		state := map[string]spanFact{}
		for k, v := range in[bi] {
			state[k] = v
		}
		for _, n := range g.blocks[bi].nodes {
			sa.transfer(state, n)
		}
		out[bi] = state
		for _, e := range g.blocks[bi].succs {
			changed := false
			dst := in[e.to.index]
			for k, v := range state {
				if _, ok := dst[k]; !ok {
					dst[k] = v
					changed = true
				}
			}
			if changed && !queued[e.to.index] {
				queued[e.to.index] = true
				work = append(work, e.to.index)
			}
		}
	}

	leaks := map[string]spanFact{}
	for i, blk := range g.blocks {
		if !blk.exits || out[i] == nil {
			continue
		}
		state := map[string]spanFact{}
		for k, v := range out[i] {
			state[k] = v
		}
		for _, d := range g.defers {
			sa.applyEnd(state, d)
		}
		for k, f := range state {
			leaks[k] = f
		}
	}
	keys := make([]string, 0, len(leaks))
	for k := range leaks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := leaks[k]
		pass.Report(f.pos, "%s.%s without a matching %s on every path; close the envelope before returning (defer works)",
			f.pair.typeName, f.pair.begin, f.pair.end)
	}
}

type spanAnalysis struct {
	pass    *Pass
	keys    map[types.Object]string
	nextKey int
}

func (sa *spanAnalysis) exprKey(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		obj := objectOf(sa.pass.Info, v)
		if obj == nil {
			return "?" + v.Name
		}
		if k, ok := sa.keys[obj]; ok {
			return k
		}
		sa.nextKey++
		k := "o" + itoa(sa.nextKey)
		sa.keys[obj] = k
		return k
	case *ast.SelectorExpr:
		return sa.exprKey(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return sa.exprKey(v.X) + "[" + sa.exprKey(v.Index) + "]"
	case *ast.StarExpr:
		return sa.exprKey(v.X)
	default:
		return "@" + itoa(int(e.Pos()))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// pairCall matches a call against the pair table; beginning reports the pair
// and which side the call is.
func (sa *spanAnalysis) pairCall(call *ast.CallExpr) (recv ast.Expr, p spanPair, isBegin, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, spanPair{}, false, false
	}
	named := namedOf(sa.pass.Info.TypeOf(sel.X))
	if named == nil || named.Obj().Pkg() == nil {
		return nil, spanPair{}, false, false
	}
	for _, sp := range spanPairs {
		if named.Obj().Pkg().Path() != sp.pkg || named.Obj().Name() != sp.typeName {
			continue
		}
		switch sel.Sel.Name {
		case sp.begin:
			return sel.X, sp, true, true
		case sp.end:
			return sel.X, sp, false, true
		}
	}
	return nil, spanPair{}, false, false
}

func (sa *spanAnalysis) transfer(state map[string]spanFact, n ast.Node) {
	var scan ast.Node
	switch v := n.(type) {
	case *ast.DeferStmt:
		return // replayed at exits
	case *condNode:
		scan = v.cond
	default:
		scan = n
	}
	ast.Inspect(scan, func(nn ast.Node) bool {
		if _, ok := nn.(*ast.FuncLit); ok {
			return false // analyzed separately
		}
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, p, isBegin, ok := sa.pairCall(call)
		if !ok {
			return true
		}
		key := sa.exprKey(recv) + "|" + p.typeName + "." + p.begin
		if isBegin {
			state[key] = spanFact{key: key, pos: call.Pos(), pair: p}
		} else {
			delete(state, key)
		}
		return true
	})
}

// applyEnd closes envelopes ended by a deferred call.
func (sa *spanAnalysis) applyEnd(state map[string]spanFact, call *ast.CallExpr) {
	recv, p, isBegin, ok := sa.pairCall(call)
	if !ok || isBegin {
		return
	}
	delete(state, sa.exprKey(recv)+"|"+p.typeName+"."+p.begin)
}
