package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Clockunits is a lightweight units-of-measure pass for the deterministic
// packages: int64s are tagged as simulated nanoseconds (Streams busy-until
// times, DES event times), wall-clock nanoseconds (Stopwatch reads,
// Breakdown.OverheadNS), or bytes, and additive arithmetic or comparisons
// that mix dimensions are flagged. A wall-clock value leaking into
// simulated-time arithmetic is the bug class behind "latency is simulated
// device time only" — it corrupts replays silently instead of crashing.
//
// The tagging is deliberately conservative: *NS names are a generic
// nanosecond flavor compatible with both clocks, multiplication/division
// change dimension and reset to unknown, and unknown mixes with anything.
// Only provably-cross-dimension operations report.
var Clockunits = &Analyzer{
	Name: "clockunits",
	Doc:  "flag arithmetic/comparisons mixing simulated-ns, wall-ns, and byte quantities",
	Run:  runClockunits,
}

type unit int

const (
	unitUnknown unit = iota
	unitGenericNS
	unitSimNS
	unitWallNS
	unitBytes
)

func (u unit) String() string {
	switch u {
	case unitSimNS:
		return "simulated-ns"
	case unitWallNS:
		return "wall-ns"
	case unitGenericNS:
		return "ns"
	case unitBytes:
		return "bytes"
	}
	return "unknown"
}

// methodUnits tags known accessor results: pkg → type → method → unit.
var methodUnits = map[string]map[string]map[string]unit{
	gpusimPath: {
		"Streams": {
			"Now": unitSimNS, "Run": unitSimNS, "RunSpan": unitSimNS,
			"Try": unitSimNS, "TrySpan": unitSimNS, "Busy": unitSimNS,
			"RunCompute": unitSimNS, "RunH2D": unitSimNS, "RunD2H": unitSimNS,
		},
		"Allocator": {
			"FreeBytes": unitBytes, "LargestExtent": unitBytes, "UsedBytes": unitBytes,
			"HighWater": unitBytes, "OwnerUsed": unitBytes, "OwnerHighWater": unitBytes,
			"Quota": unitBytes,
		},
		"Breakdown": {"DeviceNS": unitSimNS},
	},
	obsvPath: {
		"Stopwatch":             {"ElapsedNS": unitWallNS},
		"AttributionComponents": {"TotalNS": unitSimNS},
	},
}

// fieldUnits tags known struct fields: pkg → type → field → unit. Fields not
// listed fall back to the name-suffix heuristic.
var fieldUnits = map[string]map[string]map[string]unit{
	gpusimPath: {
		"Breakdown": {
			"ComputeNS": unitSimNS, "ExposedXferNS": unitSimNS, "OverlapXferNS": unitSimNS,
			"RematNS": unitSimNS, "FaultNS": unitSimNS,
			"OverheadNS": unitWallNS,
			"H2DBytes":   unitBytes, "D2HBytes": unitBytes, "PeakGPUBytes": unitBytes,
		},
		"Streams":   {"Compute": unitSimNS, "H2D": unitSimNS, "D2H": unitSimNS},
		"Allocator": {"Capacity": unitBytes},
	},
	obsvPath: {
		"Span": {"StartNS": unitSimNS, "DurNS": unitSimNS, "WallNS": unitWallNS},
		"AttributionComponents": {
			"QueueNS": unitSimNS, "QuotaNS": unitSimNS, "PilotNS": unitSimNS,
			"PilotRetrainNS": unitSimNS,
			"ComputeNS":      unitSimNS, "ExposedNS": unitSimNS, "RematNS": unitSimNS,
			"FaultNS": unitSimNS, "AllReduceNS": unitSimNS, "BatchNS": unitSimNS,
		},
		"AttributionComponent": {"NS": unitSimNS},
		"FlightEvent":          {"AtNS": unitSimNS, "DurNS": unitSimNS, "Bytes": unitBytes},
		"FlightSnapshot":       {"AtNS": unitSimNS},
		"RequestView":          {"StartNS": unitSimNS, "EndNS": unitSimNS, "QueueNS": unitSimNS},
	},
}

func runClockunits(pass *Pass) {
	if !inDeterministicScope(pass.Path) {
		return
	}
	uc := &unitChecker{pass: pass, summaries: map[*types.Func]funcUnitSummary{}}
	// Two rounds so same-package helper summaries (serviceTime, max64) are
	// visible when the callers are checked.
	for round := 0; round < 2; round++ {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					uc.summarize(fd)
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				uc.check(fd)
			}
		}
	}
}

// funcUnitSummary is what a call to a same-package function yields.
type funcUnitSummary struct {
	parametric bool // returns one of its int64 params: unit joins the args'
	u          unit
}

type unitChecker struct {
	pass      *Pass
	summaries map[*types.Func]funcUnitSummary
	locals    map[types.Object]unit // per-function, rebuilt in inferLocals
}

// suffixUnit is the naming-convention fallback.
func suffixUnit(name string) unit {
	switch {
	case strings.HasSuffix(name, "NS"):
		return unitGenericNS
	case strings.HasSuffix(name, "Bytes"), name == "bytes":
		return unitBytes
	}
	return unitUnknown
}

// isIntExpr restricts the analysis to integer quantities.
func (uc *unitChecker) isIntExpr(e ast.Expr) bool {
	t := uc.pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// exprUnit resolves the unit of an expression under the current locals.
func (uc *unitChecker) exprUnit(e ast.Expr) unit {
	e = unparen(e)
	if !uc.isIntExpr(e) {
		if _, isCall := e.(*ast.CallExpr); !isCall {
			return unitUnknown
		}
	}
	// Constants carry no dimension.
	if tv, ok := uc.pass.Info.Types[e]; ok && tv.Value != nil {
		return unitUnknown
	}
	switch v := e.(type) {
	case *ast.Ident:
		if obj := objectOf(uc.pass.Info, v); obj != nil {
			if u, ok := uc.locals[obj]; ok && u != unitUnknown {
				return u
			}
		}
		return suffixUnit(v.Name)
	case *ast.SelectorExpr:
		if named := namedOf(uc.pass.Info.TypeOf(v.X)); named != nil && named.Obj().Pkg() != nil {
			if byType, ok := fieldUnits[named.Obj().Pkg().Path()]; ok {
				if byField, ok := byType[named.Obj().Name()]; ok {
					if u, ok := byField[v.Sel.Name]; ok {
						return u
					}
				}
			}
		}
		return suffixUnit(v.Sel.Name)
	case *ast.CallExpr:
		return uc.callUnit(v)
	case *ast.UnaryExpr:
		if v.Op == token.SUB || v.Op == token.ADD {
			return uc.exprUnit(v.X)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.ADD, token.SUB:
			return joinUnits(uc.exprUnit(v.X), uc.exprUnit(v.Y))
		}
		return unitUnknown
	case *ast.IndexExpr:
		return uc.exprUnit(v.X)
	}
	return unitUnknown
}

// joinUnits combines operand units into a result unit, staying conservative:
// agreement keeps the unit, any ns-family mix degrades to generic ns, and
// anything touching unknown (or bytes vs ns, which is reported separately)
// yields unknown.
func joinUnits(a, b unit) unit {
	if a == b {
		return a
	}
	if a == unitUnknown || b == unitUnknown {
		return unitUnknown
	}
	if isNSUnit(a) && isNSUnit(b) {
		return unitGenericNS
	}
	return unitUnknown
}

func isNSUnit(u unit) bool {
	return u == unitSimNS || u == unitWallNS || u == unitGenericNS
}

// callUnit resolves a call's result unit: the accessor table, then
// same-package summaries, then the callee-name suffix.
func (uc *unitChecker) callUnit(call *ast.CallExpr) unit {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if named := namedOf(uc.pass.Info.TypeOf(sel.X)); named != nil && named.Obj().Pkg() != nil {
			if byType, ok := methodUnits[named.Obj().Pkg().Path()]; ok {
				if byMethod, ok := byType[named.Obj().Name()]; ok {
					if u, ok := byMethod[sel.Sel.Name]; ok {
						return u
					}
				}
			}
		}
	}
	if fn := calleeFunc(uc.pass.Info, call); fn != nil {
		if sum, ok := uc.summaries[fn]; ok {
			if !sum.parametric {
				return sum.u
			}
			u := unitUnknown
			first := true
			for _, arg := range call.Args {
				if !uc.isIntExpr(arg) {
					continue
				}
				au := uc.exprUnit(arg)
				if first {
					u, first = au, false
				} else {
					u = joinUnits(u, au)
				}
			}
			return u
		}
		return suffixUnit(fn.Name())
	}
	return unitUnknown
}

// inferLocals propagates units into local variables from their assignments;
// conflicting reassignment degrades via joinUnits.
func (uc *unitChecker) inferLocals(fd *ast.FuncDecl) {
	uc.locals = map[types.Object]unit{}
	// Parameters and results start from their name suffixes only (already
	// handled by the ident fallback), so just walk assignments. Two passes
	// resolve var-to-var chains.
	for round := 0; round < 2; round++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) {
				return true
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i, lhs := range as.Lhs {
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := objectOf(uc.pass.Info, id)
					if obj == nil || !uc.isIntExpr(lhs) {
						continue
					}
					uc.mergeLocal(obj, uc.exprUnit(as.Rhs[i]))
				}
			} else if len(as.Rhs) == 1 {
				// Multi-value: start, end := streams.RunSpan(...)
				call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				u := uc.callUnit(call)
				if u == unitUnknown {
					return true
				}
				for _, lhs := range as.Lhs {
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" || !uc.isIntExpr(lhs) {
						continue
					}
					if obj := objectOf(uc.pass.Info, id); obj != nil {
						uc.mergeLocal(obj, u)
					}
				}
			}
			return true
		})
	}
}

func (uc *unitChecker) mergeLocal(obj types.Object, u unit) {
	if u == unitUnknown {
		return
	}
	if old, ok := uc.locals[obj]; ok && old != u {
		uc.locals[obj] = joinUnits(old, u)
		return
	}
	uc.locals[obj] = u
}

// summarize records what calling fd yields, for same-package callers.
func (uc *unitChecker) summarize(fd *ast.FuncDecl) {
	fn, _ := uc.pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil || fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return
	}
	uc.inferLocals(fd)
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := uc.pass.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	parametric := true
	u := unitUnknown
	first := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		res := unparen(ret.Results[0])
		if id, ok := res.(*ast.Ident); !ok || !params[objectOf(uc.pass.Info, id)] {
			parametric = false
		}
		ru := uc.exprUnit(ret.Results[0])
		if first {
			u, first = ru, false
		} else {
			u = joinUnits(u, ru)
		}
		return true
	})
	if first {
		return // no value-carrying returns (named results only): stay unknown
	}
	if parametric {
		uc.summaries[fn] = funcUnitSummary{parametric: true}
		return
	}
	uc.summaries[fn] = funcUnitSummary{u: u}
}

// check walks one function reporting cross-dimension additive arithmetic and
// comparisons.
func (uc *unitChecker) check(fd *ast.FuncDecl) {
	uc.inferLocals(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			switch v.Op {
			case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				uc.reportMix(v.OpPos, v.Op, v.X, v.Y)
			}
		case *ast.AssignStmt:
			if (v.Tok == token.ADD_ASSIGN || v.Tok == token.SUB_ASSIGN) && len(v.Lhs) == 1 && len(v.Rhs) == 1 {
				uc.reportMix(v.TokPos, v.Tok, v.Lhs[0], v.Rhs[0])
			}
		}
		return true
	})
}

func (uc *unitChecker) reportMix(pos token.Pos, op token.Token, x, y ast.Expr) {
	if !uc.isIntExpr(x) || !uc.isIntExpr(y) {
		return
	}
	ux, uy := uc.exprUnit(x), uc.exprUnit(y)
	if !unitsConflict(ux, uy) {
		return
	}
	uc.pass.Report(pos, "%s mixes %s with %s; convert explicitly or keep the dimensions apart (simulated and wall clocks must never meet)",
		op, ux, uy)
}

// unitsConflict reports a provable cross-dimension mix.
func unitsConflict(a, b unit) bool {
	if a == unitUnknown || b == unitUnknown || a == b {
		return false
	}
	if a == unitBytes || b == unitBytes {
		return true // bytes vs any ns flavor
	}
	return (a == unitSimNS && b == unitWallNS) || (a == unitWallNS && b == unitSimNS)
}
